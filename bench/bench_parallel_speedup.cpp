// Serial vs parallel branch-and-bound on the seeded random designs: wall
// time, explored nodes, and the (identical) optimum cost at each size --
// plus a scheduler face-off (work-stealing vs fixed-depth split) on an
// unbalanced hub-and-spoke tree.
//
// Both schedulers share the incumbent bound through an atomic and carry
// the DFS-ordinal tie-break, so every *completed* run is bit-identical
// to the serial search; the bench asserts that on every run (non-zero
// exit on mismatch).  Speedup therefore comes purely from wall-clock
// parallelism; the bench prints both times plus node counts so runs on
// different machines stay comparable.  On a multi-core host expect
// >= 2x at 4 threads on the largest sizes; on a single hardware thread
// both columns converge.
//
// The unbalanced workload is where the schedulers separate: an unseeded
// deep tree whose strong incumbents live far from the serial DFS
// frontier.  The fixed split drains its task list in DFS order, so all
// workers cluster at the head of the list and inherit the serial
// order's pathology -- node counts stay near serial.  Work-stealing
// keeps worker 0 on the serial frontier but hands thieves the *front*
// of a victim's deque, i.e. the subtrees farthest from it, so some
// worker reaches the incumbent region early and the published bound
// collapses the rest of the tree.  The bench requires work-stealing to
// complete no slower than fixed-split (with noise tolerance) -- on this
// workload it typically finishes in a fraction of fixed-split's time
// and node count.
//
// Usage: bench_parallel_speedup [max-inner] [per-size] [threads] [limit-s]
//                               [--json=PATH]
// With --json the per-size serial/parallel node counts and the
// hub-and-spoke face-off are recorded as "eblocks-bench-partition/1"
// records; the serial rows are deterministic and diffed against the
// committed baseline by scripts/compare_bench.py.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_json.h"
#include "blocks/catalog.h"
#include "partition/exhaustive.h"
#include "partition/multitype.h"
#include "partition/paredown.h"
#include "randgen/generator.h"

namespace {

using namespace eblocks;

/// max/mean of the per-worker explored-node counts: the
/// hardware-independent witness of load balance (1.0 = perfect).
double imbalance(const std::vector<std::uint64_t>& perWorker) {
  if (perWorker.empty()) return 1.0;
  std::uint64_t mx = 0, sum = 0;
  for (const std::uint64_t v : perWorker) {
    mx = std::max(mx, v);
    sum += v;
  }
  const double mean =
      static_cast<double>(sum) / static_cast<double>(perWorker.size());
  return mean > 0 ? static_cast<double>(mx) / mean : 1.0;
}

bool identicalRuns(const partition::PartitionRun& a,
                   const partition::PartitionRun& b, int inner) {
  if (a.result.totalAfter(inner) != b.result.totalAfter(inner) ||
      a.result.partitions.size() != b.result.partitions.size())
    return false;
  for (std::size_t i = 0; i < a.result.partitions.size(); ++i)
    if (a.result.partitions[i].toVector() != b.result.partitions[i].toVector())
      return false;
  return true;
}

/// The unbalanced-tree workload: one 3-input hub placed first in DFS
/// order, fed by three input chains and feeding two output chains.  With
/// no seed the initial bound is the weak "replace nothing" incumbent, so
/// pruning depends entirely on incumbents discovered during the search.
Network hubAndSpoke(int chainLen) {
  const auto& cat = blocks::defaultCatalog();
  Network net("hub_spoke_" + std::to_string(chainLen));
  const BlockId hub = net.addBlock("hub", cat.or3());
  int id = 0;
  for (int c = 0; c < 3; ++c) {
    BlockId prev = net.addBlock("s" + std::to_string(c), cat.button());
    for (int i = 0; i < chainLen; ++i) {
      const BlockId b = net.addBlock("c" + std::to_string(id++),
                                     cat.inverter());
      net.connect(prev, 0, b, 0);
      prev = b;
    }
    net.connect(prev, 0, hub, c);
  }
  for (int c = 0; c < 2; ++c) {
    BlockId prev = hub;
    for (int i = 0; i < chainLen; ++i) {
      const BlockId b = net.addBlock("d" + std::to_string(id++),
                                     cat.inverter());
      net.connect(prev, 0, b, 0);
      prev = b;
    }
    net.connect(prev, 0,
                net.addBlock("led" + std::to_string(c), cat.led()), 0);
  }
  return net;
}

/// Serial vs both schedulers on the hub-and-spoke tree.  Returns false
/// when a completed run diverges from serial or work-stealing falls
/// behind fixed-split beyond the noise tolerance.
bool unbalancedFaceOff(int threads, double limit,
                       eblocks::bench::BenchJson& json) {
  const Network net = hubAndSpoke(2);
  const int n = static_cast<int>(net.innerBlocks().size());
  const partition::PartitionProblem problem(net, {});

  partition::ExhaustiveOptions base;
  base.timeLimitSeconds = limit;  // no seed: the bound must be discovered
  // The face-off measures how the schedulers cope with a *weakly
  // bounded* unbalanced tree, so the admissible pruning layer is
  // disabled here -- with it on, this workload collapses to a few
  // thousand nodes and both schedulers finish instantly
  // (bench_exhaustive_blowup measures that effect).
  base.pruningBound = false;

  partition::ExhaustiveOptions serialOptions = base;
  serialOptions.threads = 1;
  const auto serial = partition::exhaustiveSearch(problem, serialOptions);

  partition::ExhaustiveOptions fixedOptions = base;
  fixedOptions.threads = threads;
  fixedOptions.scheduler = partition::SearchScheduler::kFixedSplit;
  const auto fixed = partition::exhaustiveSearch(problem, fixedOptions);

  partition::ExhaustiveOptions stealOptions = base;
  stealOptions.threads = threads;
  stealOptions.scheduler = partition::SearchScheduler::kWorkStealing;
  const auto steal = partition::exhaustiveSearch(problem, stealOptions);

  std::printf("\nUnbalanced hub-and-spoke tree (%d inner, unseeded, "
              "unpruned, %d threads, limit %.0fs)\n", n, threads, limit);
  const auto row = [&](const char* label,
                       const partition::PartitionRun& run) {
    std::printf("  %-13s %8.3fs %14llu nodes  cost %2d  imbalance %.2f%s\n",
                label, run.seconds,
                static_cast<unsigned long long>(run.explored),
                run.result.totalAfter(n), imbalance(run.workerExplored),
                run.timedOut ? "  DID NOT FINISH" : "");
  };
  row("serial", serial);
  row("fixed-split", fixed);
  row("work-stealing", steal);
  json.add(eblocks::bench::BenchRecord{
      .workload = "hub_spoke/serial/threads=1",
      .deterministic = !serial.timedOut,
      .nodes = serial.explored,
      .nodesUnpruned = 0,
      .pruned = serial.pruned,
      .seconds = serial.seconds,
      .cost = static_cast<double>(serial.result.totalAfter(n))});
  json.add(eblocks::bench::BenchRecord{
      .workload = "hub_spoke/steal/threads=" + std::to_string(threads),
      .deterministic = false,  // steal timing varies node counts
      .nodes = steal.explored,
      .nodesUnpruned = 0,
      .pruned = steal.pruned,
      .seconds = steal.seconds,
      .cost = static_cast<double>(steal.result.totalAfter(n))});

  if (serial.timedOut) {
    std::printf("  serial hit the limit; raise [limit-s] to compare "
                "schedulers here\n");
    return true;
  }
  bool ok = true;
  if (steal.timedOut) {
    std::printf("  ERROR: work-stealing hit the limit on a workload "
                "serial completed\n");
    ok = false;
  } else if (!identicalRuns(serial, steal, n)) {
    std::printf("  ERROR: work-stealing diverged from serial\n");
    ok = false;
  }
  if (!fixed.timedOut && !identicalRuns(serial, fixed, n)) {
    std::printf("  ERROR: fixed-split diverged from serial\n");
    ok = false;
  }
  // Throughput: completion time, counting a DNF as the full limit (a
  // lower bound on its true cost).  Work-stealing wins this workload by
  // 4-7x, so the generous tolerance still catches a real regression
  // while OS scheduling noise on a contended CI runner cannot red the
  // build.
  const double fixedTime = fixed.timedOut ? limit : fixed.seconds;
  if (steal.seconds > fixedTime * 1.5 + 0.25) {
    std::printf("  ERROR: work-stealing slower than fixed-split beyond "
                "tolerance\n");
    ok = false;
  }
  std::printf("  work-stealing vs fixed-split: %.2fx\n",
              steal.seconds > 0 ? fixedTime / steal.seconds : 0.0);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eblocks;
  const std::string jsonPath = bench::BenchJson::extractPath(argc, argv);
  bench::BenchJson json("bench_parallel_speedup", jsonPath);
  const int maxInner = argc > 1 ? std::atoi(argv[1]) : 17;
  const int perSize = argc > 2 ? std::atoi(argv[2]) : 3;
  const int threads = argc > 3 ? std::atoi(argv[3])
                               : partition::resolveSearchThreads(0);
  const double limit = argc > 4 ? std::atof(argv[4]) : 60.0;

  std::printf("Parallel branch-and-bound speedup (PareDown-seeded "
              "exhaustive search, work-stealing scheduler)\n");
  std::printf("per size: %d random designs, %d worker threads vs serial, "
              "limit %.0fs each\n\n", perSize, threads, limit);
  std::printf("%5s | %12s %12s %8s | %14s %14s | %6s %4s\n", "Inner",
              "Serial(s)", "Parallel(s)", "Speedup", "SerialNodes",
              "ParallelNodes", "Cost", "Same");

  bool allIdentical = true;
  for (int n = 11; n <= maxInner; n += 2) {
    double serialTime = 0, parallelTime = 0;
    double serialNodes = 0, parallelNodes = 0;
    double serialPruned = 0;
    int cost = 0, costSum = 0;
    bool identical = true, completed = true;
    for (int d = 0; d < perSize; ++d) {
      const auto net = randgen::randomNetwork(
          {.innerBlocks = n,
           .seed = static_cast<std::uint32_t>(4242 * n + d)});
      const partition::PartitionProblem problem(net, {});
      const auto seed = partition::pareDown(problem).result;

      partition::ExhaustiveOptions serialOptions;
      serialOptions.threads = 1;
      serialOptions.timeLimitSeconds = limit;
      serialOptions.seed = seed;
      const auto serial =
          partition::exhaustiveSearch(problem, serialOptions);

      partition::ExhaustiveOptions parallelOptions = serialOptions;
      parallelOptions.threads = threads;
      const auto parallel =
          partition::exhaustiveSearch(problem, parallelOptions);

      serialTime += serial.seconds;
      parallelTime += parallel.seconds;
      serialNodes += static_cast<double>(serial.explored);
      parallelNodes += static_cast<double>(parallel.explored);
      serialPruned += static_cast<double>(serial.pruned);
      cost = parallel.result.totalAfter(n);
      costSum += cost;
      completed = completed && !serial.timedOut && !parallel.timedOut;
      identical = identical && identicalRuns(serial, parallel, n);
    }
    allIdentical = allIdentical && identical;
    std::printf("%5d | %12.4f %12.4f %7.2fx | %14.0f %14.0f | %6d %4s\n", n,
                serialTime / perSize, parallelTime / perSize,
                parallelTime > 0 ? serialTime / parallelTime : 0.0,
                serialNodes / perSize, parallelNodes / perSize, cost,
                identical ? "yes" : "NO");
    json.add(bench::BenchRecord{
        .workload = "random/n=" + std::to_string(n) +
                    "/per=" + std::to_string(perSize) + "/serial",
        .deterministic = completed,
        .nodes = static_cast<std::uint64_t>(serialNodes),
        .nodesUnpruned = 0,
        .pruned = static_cast<std::uint64_t>(serialPruned),
        .seconds = serialTime,
        .cost = static_cast<double>(costSum)});
    json.add(bench::BenchRecord{
        .workload = "random/n=" + std::to_string(n) +
                    "/per=" + std::to_string(perSize) + "/threads=" +
                    std::to_string(threads),
        .deterministic = false,  // steal timing varies node counts
        .nodes = static_cast<std::uint64_t>(parallelNodes),
        .nodesUnpruned = 0,
        .pruned = 0,
        .seconds = parallelTime,
        .cost = static_cast<double>(costSum)});
  }

  // The multi-type search shares the same engine; spot-check one size.
  {
    partition::ProgCostModel model;
    model.preDefinedBlockCost = 1.0;
    model.options = {partition::ProgBlockOption{"prog_2x2", 2, 2, 1.5},
                     partition::ProgBlockOption{"prog_2x3", 2, 3, 2.0}};
    const auto net = randgen::randomNetwork({.innerBlocks = 12,
                                             .seed = 20260726});
    const int n = static_cast<int>(net.innerBlocks().size());
    partition::MultiTypeExhaustiveOptions serialOptions;
    serialOptions.threads = 1;
    serialOptions.timeLimitSeconds = limit;
    const auto serial =
        partition::multiTypeExhaustive(net, model, serialOptions);
    partition::MultiTypeExhaustiveOptions parallelOptions = serialOptions;
    parallelOptions.threads = threads;
    const auto parallel =
        partition::multiTypeExhaustive(net, model, parallelOptions);
    const bool same = serial.result.totalCost(n, model) ==
                      parallel.result.totalCost(n, model);
    allIdentical = allIdentical && same;
    std::printf("\nmulti-type @12 inner: serial %.4fs, parallel %.4fs "
                "(%.2fx), cost %.1f, identical: %s\n",
                serial.seconds, parallel.seconds,
                parallel.seconds > 0 ? serial.seconds / parallel.seconds
                                     : 0.0,
                parallel.result.totalCost(n, model), same ? "yes" : "NO");
  }

  allIdentical = unbalancedFaceOff(threads, limit, json) && allIdentical;
  allIdentical = json.write() && allIdentical;

  std::printf("\nall results identical to serial (and work-stealing >= "
              "fixed-split): %s\n", allIdentical ? "yes" : "NO");
  return allIdentical ? 0 : 1;
}
