// Serial vs parallel branch-and-bound on the seeded random designs: wall
// time, explored nodes, and the (identical) optimum cost at each size.
//
// The parallel search splits the tree into a work queue of subtrees and
// shares the incumbent bound through an atomic, with a DFS-order
// tie-break that keeps the result bit-identical to the serial search.
// Speedup therefore comes purely from wall-clock parallelism; the bench
// prints both times plus node counts so runs on different machines stay
// comparable.  On a multi-core host expect >= 2x at 4 threads on the
// largest sizes; on a single hardware thread both columns converge.
//
// Usage: bench_parallel_speedup [max-inner] [per-size] [threads] [limit-s]
#include <cstdio>
#include <cstdlib>

#include "partition/exhaustive.h"
#include "partition/multitype.h"
#include "partition/paredown.h"
#include "randgen/generator.h"

int main(int argc, char** argv) {
  using namespace eblocks;
  const int maxInner = argc > 1 ? std::atoi(argv[1]) : 17;
  const int perSize = argc > 2 ? std::atoi(argv[2]) : 3;
  const int threads = argc > 3 ? std::atoi(argv[3])
                               : partition::resolveSearchThreads(0);
  const double limit = argc > 4 ? std::atof(argv[4]) : 60.0;

  std::printf("Parallel branch-and-bound speedup (PareDown-seeded "
              "exhaustive search)\n");
  std::printf("per size: %d random designs, %d worker threads vs serial, "
              "limit %.0fs each\n\n", perSize, threads, limit);
  std::printf("%5s | %12s %12s %8s | %14s %14s | %6s %4s\n", "Inner",
              "Serial(s)", "Parallel(s)", "Speedup", "SerialNodes",
              "ParallelNodes", "Cost", "Same");

  bool allIdentical = true;
  for (int n = 11; n <= maxInner; n += 2) {
    double serialTime = 0, parallelTime = 0;
    double serialNodes = 0, parallelNodes = 0;
    int cost = 0;
    bool identical = true;
    for (int d = 0; d < perSize; ++d) {
      const auto net = randgen::randomNetwork(
          {.innerBlocks = n,
           .seed = static_cast<std::uint32_t>(4242 * n + d)});
      const partition::PartitionProblem problem(net, {});
      const auto seed = partition::pareDown(problem).result;

      partition::ExhaustiveOptions serialOptions;
      serialOptions.threads = 1;
      serialOptions.timeLimitSeconds = limit;
      serialOptions.seed = seed;
      const auto serial =
          partition::exhaustiveSearch(problem, serialOptions);

      partition::ExhaustiveOptions parallelOptions = serialOptions;
      parallelOptions.threads = threads;
      const auto parallel =
          partition::exhaustiveSearch(problem, parallelOptions);

      serialTime += serial.seconds;
      parallelTime += parallel.seconds;
      serialNodes += static_cast<double>(serial.explored);
      parallelNodes += static_cast<double>(parallel.explored);
      cost = parallel.result.totalAfter(n);
      if (serial.result.totalAfter(n) != parallel.result.totalAfter(n) ||
          serial.result.partitions.size() !=
              parallel.result.partitions.size())
        identical = false;
      else
        for (std::size_t i = 0; i < serial.result.partitions.size(); ++i)
          if (serial.result.partitions[i].toVector() !=
              parallel.result.partitions[i].toVector())
            identical = false;
    }
    allIdentical = allIdentical && identical;
    std::printf("%5d | %12.4f %12.4f %7.2fx | %14.0f %14.0f | %6d %4s\n", n,
                serialTime / perSize, parallelTime / perSize,
                parallelTime > 0 ? serialTime / parallelTime : 0.0,
                serialNodes / perSize, parallelNodes / perSize, cost,
                identical ? "yes" : "NO");
  }

  // The multi-type search shares the same engine; spot-check one size.
  {
    partition::ProgCostModel model;
    model.preDefinedBlockCost = 1.0;
    model.options = {partition::ProgBlockOption{"prog_2x2", 2, 2, 1.5},
                     partition::ProgBlockOption{"prog_2x3", 2, 3, 2.0}};
    const auto net = randgen::randomNetwork({.innerBlocks = 12,
                                             .seed = 20260726});
    const int n = static_cast<int>(net.innerBlocks().size());
    partition::MultiTypeExhaustiveOptions serialOptions;
    serialOptions.threads = 1;
    serialOptions.timeLimitSeconds = limit;
    const auto serial =
        partition::multiTypeExhaustive(net, model, serialOptions);
    partition::MultiTypeExhaustiveOptions parallelOptions = serialOptions;
    parallelOptions.threads = threads;
    const auto parallel =
        partition::multiTypeExhaustive(net, model, parallelOptions);
    const bool same = serial.result.totalCost(n, model) ==
                      parallel.result.totalCost(n, model);
    allIdentical = allIdentical && same;
    std::printf("\nmulti-type @12 inner: serial %.4fs, parallel %.4fs "
                "(%.2fx), cost %.1f, identical: %s\n",
                serial.seconds, parallel.seconds,
                parallel.seconds > 0 ? serial.seconds / parallel.seconds
                                     : 0.0,
                parallel.result.totalCost(n, model), same ? "yes" : "NO");
  }

  std::printf("\nall results identical to serial: %s\n",
              allIdentical ? "yes" : "NO");
  return allIdentical ? 0 : 1;
}
