// Verification throughput: per-stimulus scalar checkEquivalence vs the
// bit-parallel batch checker (sim/batch_equivalence.h) on a pinned corpus
// over the library designs.  The batch checker packs 64 stimulus lanes
// per machine word through the behavior interpreter, so the headline
// number is stimuli/second and the acceptance bar is a >=10x speedup.
//
// Usage: bench_verify [scripts] [events] [--json=PATH]
//   scripts  stimulus scripts per design (default 256)
//   events   events per script (default 40)
//
// JSON records ("eblocks-bench-partition/1", see docs/benchmarks.md):
//   verify/<design>/steps   deterministic; nodes = stimulus steps checked
//                           (identical for the scalar and batch sweeps by
//                           the verdict-identity contract -- any drift is
//                           a checker regression, not noise)
//   verify/<design>/batch   informational; seconds + cost = speedup
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_json.h"
#include "designs/library.h"
#include "sim/batch_equivalence.h"
#include "sim/equivalence.h"
#include "sim/stimulus.h"

namespace {

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string jsonPath =
      eblocks::bench::BenchJson::extractPath(argc, argv);
  eblocks::bench::BenchJson json("bench_verify", jsonPath);
  const int scripts = argc > 1 ? std::atoi(argv[1]) : 256;
  const int events = argc > 2 ? std::atoi(argv[2]) : 40;
  constexpr std::uint32_t kCorpusSeed = 2026;

  std::printf("Equivalence-check throughput: scalar vs batch (%d scripts x "
              "%d events per design)\n\n", scripts, events);
  std::printf("%-26s %8s | %10s %12s | %10s %12s | %8s\n", "Design", "Steps",
              "Scalar[s]", "Scalar st/s", "Batch[s]", "Batch st/s",
              "Speedup");

  double scalarTotal = 0.0, batchTotal = 0.0;
  std::uint64_t stimuliTotal = 0;
  std::uint32_t seed = kCorpusSeed;
  for (const auto& entry : eblocks::designs::designLibrary()) {
    const eblocks::Network& net = entry.network;
    const std::vector<eblocks::sim::Stimulus> corpus =
        eblocks::sim::randomStimulusCorpus(net, scripts, events, seed++);
    std::uint64_t steps = 0;
    for (const auto& s : corpus) steps += s.steps().size();

    const double s0 = now();
    std::uint64_t mismatches = 0;
    for (const auto& s : corpus)
      if (eblocks::sim::checkEquivalence(net, net, s)) ++mismatches;
    const double scalarSec = now() - s0;

    const double b0 = now();
    if (eblocks::sim::batchCheckEquivalence(net, net, corpus)) ++mismatches;
    const double batchSec = now() - b0;

    if (mismatches) {
      std::fprintf(stderr, "bench_verify: self-check mismatch on '%s'\n",
                   entry.name.c_str());
      return 1;
    }

    const double n = static_cast<double>(corpus.size());
    const double speedup = batchSec > 0 ? scalarSec / batchSec : 0.0;
    std::printf("%-26s %8llu | %10.4f %12.0f | %10.4f %12.0f | %7.1fx\n",
                entry.name.c_str(), static_cast<unsigned long long>(steps),
                scalarSec, n / scalarSec, batchSec, n / batchSec, speedup);
    scalarTotal += scalarSec;
    batchTotal += batchSec;
    stimuliTotal += corpus.size();

    eblocks::bench::BenchRecord det;
    det.workload = "verify/" + entry.name + "/steps";
    det.deterministic = true;
    det.nodes = steps;
    det.seconds = scalarSec;
    json.add(det);
    eblocks::bench::BenchRecord info;
    info.workload = "verify/" + entry.name + "/batch";
    info.deterministic = false;
    info.nodes = steps;
    info.seconds = batchSec;
    info.cost = speedup;
    json.add(info);
  }

  const double overall = batchTotal > 0 ? scalarTotal / batchTotal : 0.0;
  std::printf("\nOverall: %llu stimuli; scalar %.0f st/s, batch %.0f st/s, "
              "speedup %.1fx (acceptance bar: >=10x)\n",
              static_cast<unsigned long long>(stimuliTotal),
              stimuliTotal / scalarTotal, stimuliTotal / batchTotal, overall);
  return json.write() ? 0 : 1;
}
