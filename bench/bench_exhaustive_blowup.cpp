// Reproduces the Section-4.1 claim: exhaustive search's runtime "naturally
// increased exponentially" -- around a minute at 11 inner blocks on the
// paper's 2 GHz Athlon, unfinished after 4 hours at 14.  Modern hardware
// and our branch-and-bound pruning shift the absolute numbers, but the
// exponential shape (and the contrast with PareDown's microseconds) is the
// reproducible claim.  We report explored search nodes alongside time: the
// node counts are hardware-independent evidence of the blow-up.
//
// Usage: bench_exhaustive_blowup [max-inner] [per-size] [limit-seconds]
#include <cstdio>
#include <cstdlib>

#include "partition/exhaustive.h"
#include "partition/paredown.h"
#include "randgen/generator.h"

int main(int argc, char** argv) {
  const int maxInner = argc > 1 ? std::atoi(argv[1]) : 14;
  const int perSize = argc > 2 ? std::atoi(argv[2]) : 5;
  const double limit = argc > 3 ? std::atof(argv[3]) : 20.0;

  std::printf("Exhaustive-search blow-up (Section 4.1)\n");
  std::printf("per size: %d random designs, limit %.0fs each; exhaustive "
              "runs WITHOUT the PareDown seed to mirror the paper's plain "
              "search\n\n", perSize, limit);
  std::printf("%5s | %14s %14s %10s | %14s %12s\n", "Inner", "Exh.Nodes(avg)",
              "Exh.Time(avg)", "Timeouts", "PD.Nodes(avg)", "PD.Time(avg)");

  for (int n = 6; n <= maxInner; ++n) {
    double exNodes = 0, exTime = 0, pdNodes = 0, pdTime = 0;
    int timeouts = 0;
    for (int d = 0; d < perSize; ++d) {
      const auto net = eblocks::randgen::randomNetwork(
          {.innerBlocks = n,
           .seed = static_cast<std::uint32_t>(777 * n + d)});
      const eblocks::partition::PartitionProblem problem(net, {});
      eblocks::partition::ExhaustiveOptions options;
      options.timeLimitSeconds = limit;
      options.threads = 1;  // the paper's plain serial search
      const auto ex = eblocks::partition::exhaustiveSearch(problem, options);
      exNodes += static_cast<double>(ex.explored);
      exTime += ex.seconds;
      timeouts += ex.timedOut ? 1 : 0;
      const auto pd = eblocks::partition::pareDown(problem);
      pdNodes += static_cast<double>(pd.explored);
      pdTime += pd.seconds;
    }
    std::printf("%5d | %14.0f %12.4fs %10d | %14.1f %10.6fs\n", n,
                exNodes / perSize, exTime / perSize, timeouts,
                pdNodes / perSize, pdTime / perSize);
  }
  return 0;
}
