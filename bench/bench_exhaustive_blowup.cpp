// Reproduces the Section-4.1 claim: exhaustive search's runtime "naturally
// increased exponentially" -- around a minute at 11 inner blocks on the
// paper's 2 GHz Athlon, unfinished after 4 hours at 14.  Modern hardware
// shifts the absolute numbers, but the exponential shape of the *unpruned*
// search (and the contrast with PareDown's microseconds) is the
// reproducible claim.  We report explored search nodes alongside time: the
// node counts are hardware-independent evidence of the blow-up.
//
// On top of the paper's table this bench ablates the admissible
// lower-bound layer (ExhaustiveOptions::pruningBound): each design runs
// the serial search with the bound off and on, asserts the results are
// bit-identical (non-zero exit on mismatch), and prints the node-count
// ratio.  Two workload families: the paper's edge-counting mode and
// kSignals, where the unpruned search has no irreducible-I/O rule at all
// and the bound bites hardest.
//
// Usage: bench_exhaustive_blowup [max-inner] [per-size] [limit-seconds]
//                                [--json=PATH]
// With --json the per-size aggregates are recorded as
// "eblocks-bench-partition/1" records (see docs/benchmarks.md); rows
// where every run completed are flagged deterministic and diffed against
// the committed baseline by scripts/compare_bench.py.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_json.h"
#include "partition/exhaustive.h"
#include "partition/paredown.h"
#include "randgen/generator.h"

namespace {

using namespace eblocks;

bool sameResult(const partition::PartitionRun& a,
                const partition::PartitionRun& b) {
  if (a.result.partitions.size() != b.result.partitions.size()) return false;
  for (std::size_t i = 0; i < a.result.partitions.size(); ++i)
    if (!(a.result.partitions[i] == b.result.partitions[i])) return false;
  return true;
}

/// One family = one counting mode over the seeded random designs.
/// Returns false when a completed pruned run diverged from unpruned.
bool runFamily(CountingMode mode, int maxInner, int perSize, double limit,
               bench::BenchJson& json) {
  std::printf("family=%s\n", toString(mode));
  std::printf("%5s | %15s %14s %7s %10s %8s | %12s | %12s\n", "Inner",
              "Unpruned.Nodes", "Pruned.Nodes", "Ratio", "PrunedSubt",
              "Timeouts", "Pruned.Time", "PD.Time");
  bool ok = true;
  for (int n = 6; n <= maxInner; ++n) {
    double unNodes = 0, prNodes = 0, prSubtrees = 0;
    double unTime = 0, prTime = 0, pdTime = 0;
    double cost = 0;
    int timeouts = 0;
    for (int d = 0; d < perSize; ++d) {
      const auto net = randgen::randomNetwork(
          {.innerBlocks = n, .seed = static_cast<std::uint32_t>(777 * n + d)});
      const partition::PartitionProblem problem(
          net, partition::ProgBlockSpec{.inputs = 2, .outputs = 2,
                                        .mode = mode});
      partition::ExhaustiveOptions unpruned;
      unpruned.timeLimitSeconds = limit;
      unpruned.threads = 1;  // the paper's plain serial search
      unpruned.pruningBound = false;
      const auto un = partition::exhaustiveSearch(problem, unpruned);

      partition::ExhaustiveOptions pruned = unpruned;
      pruned.pruningBound = true;
      const auto pr = partition::exhaustiveSearch(problem, pruned);

      unNodes += static_cast<double>(un.explored);
      prNodes += static_cast<double>(pr.explored);
      prSubtrees += static_cast<double>(pr.pruned);
      unTime += un.seconds;
      prTime += pr.seconds;
      cost += pr.result.totalAfter(n);
      timeouts += (un.timedOut ? 1 : 0) + (pr.timedOut ? 1 : 0);
      if (!un.timedOut && !pr.timedOut && !sameResult(un, pr)) {
        std::printf("!! n=%d seed=%u: pruned result diverged from unpruned\n",
                    n, 777 * n + d);
        ok = false;
      }
      const auto pd = partition::pareDown(problem);
      pdTime += pd.seconds;
    }
    std::printf("%5d | %15.0f %14.0f %6.1fx %10.0f %8d | %11.4fs | %10.6fs\n",
                n, unNodes / perSize, prNodes / perSize,
                prNodes > 0 ? unNodes / prNodes : 0.0,
                prSubtrees / perSize, timeouts, prTime / perSize,
                pdTime / perSize);
    json.add(bench::BenchRecord{
        .workload = std::string(toString(mode)) + "/n=" + std::to_string(n) +
                    "/per=" + std::to_string(perSize),
        .deterministic = timeouts == 0,
        .nodes = static_cast<std::uint64_t>(prNodes),
        .nodesUnpruned = static_cast<std::uint64_t>(unNodes),
        .pruned = static_cast<std::uint64_t>(prSubtrees),
        .seconds = prTime,
        .cost = cost});
  }
  std::printf("\n");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string jsonPath = bench::BenchJson::extractPath(argc, argv);
  bench::BenchJson json("bench_exhaustive_blowup", jsonPath);
  const int maxInner = argc > 1 ? std::atoi(argv[1]) : 14;
  const int perSize = argc > 2 ? std::atoi(argv[2]) : 5;
  const double limit = argc > 3 ? std::atof(argv[3]) : 20.0;

  std::printf("Exhaustive-search blow-up (Section 4.1) and the admissible "
              "lower-bound ablation\n");
  std::printf("per size: %d random designs, limit %.0fs per run; serial, "
              "no PareDown seed (the paper's plain search); pruned and "
              "unpruned runs must return identical results\n\n",
              perSize, limit);

  bool ok = runFamily(CountingMode::kEdges, maxInner, perSize, limit, json);
  ok = runFamily(CountingMode::kSignals, maxInner, perSize, limit, json) &&
       ok;
  if (!json.write()) ok = false;
  if (ok) std::printf("pruned == unpruned on every completed run\n");
  return ok ? 0 : 1;
}
