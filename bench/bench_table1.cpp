// Reproduces Table 1: exhaustive search vs PareDown on the 15 library
// designs.  Prints the paper's columns (inner blocks before/after,
// programmable blocks, time, block overhead, % overhead) plus the paper's
// reported values for side-by-side comparison.
//
// Usage: bench_table1 [exhaustive-time-limit-seconds] [--json=PATH]
//   Designs whose exhaustive run exceeds the limit print "--", like the
//   paper's rows for 19+ inner blocks.  With --json every design's run is
//   recorded as an "eblocks-bench-partition/1" record (non-deterministic:
//   the exhaustive run is parallel and time-limited; see
//   docs/benchmarks.md).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_json.h"
#include "designs/library.h"
#include "partition/exhaustive.h"
#include "partition/paredown.h"
#include "partition/verify.h"

namespace {

std::string ms(double seconds) {
  if (seconds < 0.001) return "<1ms";
  if (seconds < 1.0) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0fms", seconds * 1e3);
    return buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2fs", seconds);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string jsonPath =
      eblocks::bench::BenchJson::extractPath(argc, argv);
  eblocks::bench::BenchJson json("bench_table1", jsonPath);
  const double timeLimit = argc > 1 ? std::atof(argv[1]) : 60.0;
  std::printf("Table 1 reproduction: library designs, programmable block "
              "2x2, edge counting\n");
  std::printf("(exhaustive time limit: %.0fs; '--' = not finished, like the "
              "paper's missing rows)\n\n", timeLimit);
  std::printf(
      "%-26s %5s | %10s %9s %9s | %10s %9s %9s | %8s %9s | paper(E T/P, P T/P)\n",
      "Design", "Inner", "Exh.Total", "Exh.Prog", "Exh.Time", "PD.Total",
      "PD.Prog", "PD.Time", "Overhead", "%Overhead");

  for (const auto& entry : eblocks::designs::designLibrary()) {
    const eblocks::partition::PartitionProblem problem(entry.network, {});
    const int n = problem.innerCount();

    const auto pd = eblocks::partition::pareDown(problem);
    {
      const auto violations =
          eblocks::partition::verifyPartitioning(problem, pd.result);
      if (!violations.empty()) {
        std::printf("!! %s: PareDown result invalid: %s\n",
                    entry.name.c_str(), violations.front().c_str());
        return 1;
      }
    }

    eblocks::partition::ExhaustiveOptions exOptions;
    exOptions.timeLimitSeconds = timeLimit;
    exOptions.seed = pd.result;
    const auto ex = eblocks::partition::exhaustiveSearch(problem, exOptions);

    const int pdTotal = pd.result.totalAfter(n);
    const int pdProg = pd.result.programmableBlocks();
    char exTotal[16] = "--", exProg[16] = "--", exTime[16] = "--";
    char overhead[16] = "--", pctOverhead[16] = "--";
    if (ex.optimal) {
      std::snprintf(exTotal, sizeof exTotal, "%d", ex.result.totalAfter(n));
      std::snprintf(exProg, sizeof exProg, "%d",
                    ex.result.programmableBlocks());
      std::snprintf(exTime, sizeof exTime, "%s", ms(ex.seconds).c_str());
      const int over = pdTotal - ex.result.totalAfter(n);
      std::snprintf(overhead, sizeof overhead, "%d", over);
      std::snprintf(pctOverhead, sizeof pctOverhead, "%.0f%%",
                    ex.result.totalAfter(n) > 0
                        ? 100.0 * over / ex.result.totalAfter(n)
                        : 0.0);
    }
    const auto& paper = entry.paper;
    char paperCol[48];
    if (paper.exhaustiveTotal >= 0)
      std::snprintf(paperCol, sizeof paperCol, "(%d/%d, %d/%d)",
                    paper.exhaustiveTotal, paper.exhaustiveProg,
                    paper.paredownTotal, paper.paredownProg);
    else
      std::snprintf(paperCol, sizeof paperCol, "(--/--, %d/%d)",
                    paper.paredownTotal, paper.paredownProg);

    std::printf(
        "%-26s %5d | %10s %9s %9s | %10d %9d %9s | %8s %9s | %s\n",
        entry.name.c_str(), n, exTotal, exProg, exTime, pdTotal, pdProg,
        ms(pd.seconds).c_str(), overhead, pctOverhead, paperCol);

    std::string workload = "table1/" + entry.name;
    for (char& c : workload)
      if (c == ' ') c = '_';
    json.add(eblocks::bench::BenchRecord{
        .workload = workload,
        .deterministic = false,  // parallel, time-limited
        .nodes = ex.explored,
        .nodesUnpruned = 0,
        .pruned = ex.pruned,
        .seconds = ex.seconds,
        .cost = static_cast<double>(ex.optimal ? ex.result.totalAfter(n)
                                               : pdTotal)});
  }
  return json.write() ? 0 : 1;
}
