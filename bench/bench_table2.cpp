// Reproduces Table 2: exhaustive search vs PareDown over randomly generated
// designs, bucketed by inner-block count.  For each bucket we report the
// averages the paper reports: post-partition totals, programmable-block
// counts, times, block overhead and % overhead (overhead columns only for
// buckets where exhaustive completes).
//
// Usage: bench_table2 [designs-per-small-bucket] [exhaustive-limit-seconds]
//   Defaults: 60 designs per bucket up to n=13 (paper used hundreds to
//   thousands), 30 designs for the heuristic-only buckets, 10s limit.
#include <cstdio>
#include <cstdlib>

#include "partition/exhaustive.h"
#include "partition/paredown.h"
#include "randgen/generator.h"

namespace {

struct Bucket {
  int inner;
  bool exhaustive;  // paper has exhaustive data up to 13 inner blocks
};

constexpr Bucket kBuckets[] = {
    {3, true},  {4, true},  {5, true},  {6, true},  {7, true},
    {8, true},  {9, true},  {10, true}, {11, true}, {12, true},
    {13, true}, {14, false}, {15, false}, {20, false}, {25, false},
    {35, false}, {45, false},
};

std::string ms(double seconds) {
  char buf[32];
  if (seconds < 0.001)
    std::snprintf(buf, sizeof buf, "<1ms");
  else if (seconds < 1.0)
    std::snprintf(buf, sizeof buf, "%.2fms", seconds * 1e3);
  else if (seconds < 60)
    std::snprintf(buf, sizeof buf, "%.2fs", seconds);
  else
    std::snprintf(buf, sizeof buf, "%.2fmin", seconds / 60);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const int perBucketSmall = argc > 1 ? std::atoi(argv[1]) : 60;
  const double exLimit = argc > 2 ? std::atof(argv[2]) : 10.0;
  const int perBucketLarge = std::max(10, perBucketSmall / 2);

  std::printf("Table 2 reproduction: random designs, programmable block "
              "2x2, edge counting\n");
  std::printf("(exhaustive limit %.0fs/design; buckets >13 inner are "
              "heuristic-only, as in the paper)\n\n", exLimit);
  std::printf("%5s %8s | %9s %9s %10s | %9s %9s %10s | %9s %10s\n", "Inner",
              "Designs", "Exh.Total", "Exh.Prog", "Exh.Time", "PD.Total",
              "PD.Prog", "PD.Time", "Overhead", "%Overhead");

  for (const Bucket& bucket : kBuckets) {
    const int designs = bucket.exhaustive ? perBucketSmall : perBucketLarge;
    double exTotal = 0, exProg = 0, exTime = 0;
    double pdTotal = 0, pdProg = 0, pdTime = 0;
    int exCompleted = 0;
    for (int d = 0; d < designs; ++d) {
      const auto net = eblocks::randgen::randomNetwork(
          {.innerBlocks = bucket.inner,
           .seed = static_cast<std::uint32_t>(1000 * bucket.inner + d)});
      const eblocks::partition::PartitionProblem problem(net, {});
      const int n = problem.innerCount();

      const auto pd = eblocks::partition::pareDown(problem);
      pdTotal += pd.result.totalAfter(n);
      pdProg += pd.result.programmableBlocks();
      pdTime += pd.seconds;

      if (bucket.exhaustive) {
        eblocks::partition::ExhaustiveOptions exOptions;
        exOptions.timeLimitSeconds = exLimit;
        exOptions.seed = pd.result;
        const auto ex =
            eblocks::partition::exhaustiveSearch(problem, exOptions);
        if (ex.optimal) {
          exTotal += ex.result.totalAfter(n);
          exProg += ex.result.programmableBlocks();
          exTime += ex.seconds;
          ++exCompleted;
        }
      }
    }
    pdTotal /= designs;
    pdProg /= designs;
    pdTime /= designs;
    if (bucket.exhaustive && exCompleted > 0) {
      exTotal /= exCompleted;
      exProg /= exCompleted;
      exTime /= exCompleted;
      const double overhead = pdTotal - exTotal;
      std::printf(
          "%5d %8d | %9.2f %9.2f %10s | %9.2f %9.2f %10s | %9.2f %9.0f%%\n",
          bucket.inner, designs, exTotal, exProg, ms(exTime).c_str(), pdTotal,
          pdProg, ms(pdTime).c_str(), overhead,
          exTotal > 0 ? 100.0 * overhead / exTotal : 0.0);
      if (exCompleted < designs)
        std::printf("      (exhaustive finished %d/%d designs within the "
                    "limit)\n", exCompleted, designs);
    } else {
      std::printf(
          "%5d %8d | %9s %9s %10s | %9.2f %9.2f %10s | %9s %10s\n",
          bucket.inner, designs, "--", "--", "--", pdTotal, pdProg,
          ms(pdTime).c_str(), "--", "--");
    }
  }
  return 0;
}
