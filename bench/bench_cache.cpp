// Solution-cache payoff: cold exact synthesis vs cache-served synthesis
// on a repeated + renamed design mix (cache/solution_store.h).
//
// Two workload tiers, one shared store:
//
//  - The Table-1 designs, each requested `repeats` times alternating the
//    original network with freshly relabeled isomorphic copies -- the mix
//    a design team iterating on one system produces.  These designs are
//    small enough that the fixed synthesis overhead (verification gate,
//    codegen) dominates both paths, so their story is the HIT RATE:
//    renamed copies must hit through the canonical hash.
//  - Scaled networks (randgen largeNetwork presets, pinned seeds) where
//    the exact branch-and-bound runs 10^6+ nodes.  Here the search is
//    the cost, the cache deletes it, and the headline speedup lives.
//    Acceptance bar: >=100x mean-cold over mean-hit on this tier.
//
// Every repeat must be an exact hit, and every hit is checked against the
// cold run: identical binary frame on verbatim repeats, identical cost on
// renamed ones.  Any miss or mismatch fails the bench.
//
// Usage: bench_cache [repeats] [--json=PATH]
//   repeats  cache-served requests per design (default 32)
//
// JSON records ("eblocks-bench-partition/1", see docs/benchmarks.md):
//   cache/<design>/cold   deterministic; nodes = explored (seeded serial
//                         search), cost = inner blocks after synthesis
//   cache/<design>/warm   informational; seconds = mean hit latency,
//                         cost = cold/warm speedup
//   cache/mix/hit_rate    informational; nodes = hits, cost = hit rate
//                         over the whole repeated+renamed mix
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_json.h"
#include "cache/solution_store.h"
#include "designs/library.h"
#include "io/binary.h"
#include "randgen/generator.h"
#include "synth/synthesizer.h"

namespace {

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct MixResult {
  double coldSec = 0.0;  ///< one cold synthesis, no cache
  double hitSec = 0.0;   ///< mean cache-served synthesis over the repeats
  bool ok = false;
};

/// One design's repeated+renamed mix against the shared store: cold run,
/// populate, then `repeats` requests alternating verbatim and relabeled.
MixResult runMix(const std::string& name, const eblocks::Network& net,
                 eblocks::synth::SynthOptions options, int repeats,
                 eblocks::bench::BenchJson& json) {
  using eblocks::synth::CacheOutcome;
  MixResult mix;

  const auto cache = options.cache;
  options.cache = nullptr;
  const double c0 = now();
  const eblocks::synth::SynthResult cold =
      eblocks::synth::synthesize(net, options);
  mix.coldSec = now() - c0;
  const std::string coldFrame = eblocks::io::writeNetworkBinary(cold.network);

  options.cache = cache;
  (void)eblocks::synth::synthesize(net, options);  // populate

  double warmSec = 0.0;
  for (int r = 0; r < repeats; ++r) {
    const bool renamed = (r % 2) != 0;
    const eblocks::Network request =
        renamed ? eblocks::randgen::relabeledCopy(
                      net, static_cast<std::uint32_t>(r))
                : net;
    const double w0 = now();
    const eblocks::synth::SynthResult hit =
        eblocks::synth::synthesize(request, options);
    warmSec += now() - w0;

    if (hit.cacheOutcome != CacheOutcome::kHit) {
      std::fprintf(stderr, "bench_cache: '%s' repeat %d missed\n",
                   name.c_str(), r);
      return mix;
    }
    const bool identical =
        renamed ? hit.innerAfter == cold.innerAfter &&
                      hit.programmableBlocks == cold.programmableBlocks
                : eblocks::io::writeNetworkBinary(hit.network) == coldFrame;
    if (!identical) {
      std::fprintf(stderr, "bench_cache: '%s' repeat %d not identical\n",
                   name.c_str(), r);
      return mix;
    }
  }
  mix.hitSec = warmSec / repeats;
  mix.ok = true;

  const double speedup = mix.hitSec > 0 ? mix.coldSec / mix.hitSec : 0.0;
  std::printf("%-26s %10s %10llu | %12.6f %12.6f | %8.0fx\n", name.c_str(),
              options.algorithm.c_str(),
              static_cast<unsigned long long>(cold.run.explored), mix.coldSec,
              mix.hitSec, speedup);

  eblocks::bench::BenchRecord det;
  det.workload = "cache/" + name + "/cold";
  det.deterministic = true;
  det.nodes = cold.run.explored;
  det.pruned = cold.run.pruned;
  det.seconds = mix.coldSec;
  det.cost = cold.innerAfter;
  json.add(det);
  eblocks::bench::BenchRecord info;
  info.workload = "cache/" + name + "/warm";
  info.deterministic = false;
  info.nodes = static_cast<std::uint64_t>(repeats);
  info.seconds = mix.hitSec;
  info.cost = speedup;
  json.add(info);
  return mix;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string jsonPath =
      eblocks::bench::BenchJson::extractPath(argc, argv);
  eblocks::bench::BenchJson json("bench_cache", jsonPath);
  const int repeats = argc > 1 ? std::atoi(argv[1]) : 32;

  const auto store = std::make_shared<eblocks::cache::SolutionStore>(
      eblocks::cache::StoreOptions{});

  std::printf("Solution cache: cold exact synthesis vs cache hits "
              "(%d repeats per design, half renamed)\n\n", repeats);
  std::printf("%-26s %10s %10s | %12s %12s | %9s\n", "Design", "Algo",
              "Explored", "Cold[s]", "Hit[s]", "Speedup");

  for (const auto& entry : eblocks::designs::designLibrary()) {
    eblocks::synth::SynthOptions options;
    // Designs past the exhaustive horizon ride along under the
    // deterministic fm heuristic; the exact-search story is below.
    options.algorithm = entry.innerBlocks <= 16 ? "exhaustive" : "fm";
    options.engine.threads = 1;
    options.cache = store;
    if (!runMix(entry.name, entry.network, options, repeats, json).ok)
      return 1;
  }

  // The headline tier: pinned scaled networks where the exact search
  // runs long enough to dominate, so hit latency is pure savings.
  struct Scaled { int inner; std::uint32_t seed; };
  double coldTotal = 0.0, hitTotal = 0.0;
  int scaledCount = 0;
  for (const Scaled& s : {Scaled{20, 36}, Scaled{22, 7}, Scaled{23, 7}}) {
    const eblocks::Network net = eblocks::randgen::randomNetwork(
        eblocks::randgen::GeneratorOptions::largeNetwork(s.inner, s.seed));
    eblocks::synth::SynthOptions options;
    options.algorithm = "exhaustive";
    options.engine.threads = 1;
    options.cache = store;
    const std::string name = "scaled/n=" + std::to_string(s.inner) +
                             "/seed=" + std::to_string(s.seed);
    const MixResult mix = runMix(name, net, options, repeats, json);
    if (!mix.ok) return 1;
    coldTotal += mix.coldSec;
    hitTotal += mix.hitSec;
    ++scaledCount;
  }

  const auto stats = store->stats();
  const double rate =
      stats.hits + stats.misses > 0
          ? static_cast<double>(stats.hits) / (stats.hits + stats.misses)
          : 0.0;
  const double overall = hitTotal > 0 ? coldTotal / hitTotal : 0.0;
  std::printf("\nMix: %llu hits / %llu lookups (%.1f%% hit rate).  Scaled "
              "tier: mean cold %.4fs, mean hit %.6fs, speedup %.0fx "
              "(acceptance bar: >=100x)\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.hits + stats.misses),
              100.0 * rate, coldTotal / scaledCount, hitTotal / scaledCount,
              overall);
  if (overall < 100.0) {
    std::fprintf(stderr, "bench_cache: scaled-tier speedup %.0fx is below "
                         "the 100x acceptance bar\n", overall);
    return 1;
  }

  eblocks::bench::BenchRecord mix;
  mix.workload = "cache/mix/hit_rate";
  mix.deterministic = false;
  mix.nodes = stats.hits;
  mix.seconds = hitTotal;
  mix.cost = rate;
  json.add(mix);
  return json.write() ? 0 : 1;
}
