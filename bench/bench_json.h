// Machine-readable bench output: a bench collects flat records and
// writes one JSON file ("eblocks-bench-partition/1" schema, documented
// in docs/benchmarks.md) that scripts/compare_bench.py diffs against the
// committed baseline in bench/baselines/ and CI uploads as an artifact.
// Node counts -- not wall times -- are the regression signal: for
// `deterministic` records (seeded serial searches) they are identical
// across machines, compilers, and runs.
//
// Opt in per run with `--json=PATH` anywhere on the command line;
// BenchJson::extractPath() removes it before positional parsing.
#ifndef EBLOCKS_BENCH_BENCH_JSON_H_
#define EBLOCKS_BENCH_BENCH_JSON_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace eblocks::bench {

struct BenchRecord {
  std::string workload;  ///< family + parameters; unique within a bench
  /// True when `nodes` reproduces exactly run-to-run (seeded serial
  /// search, no timeout).  compare_bench.py only diffs deterministic
  /// records; the rest are informational.
  bool deterministic = false;
  std::uint64_t nodes = 0;          ///< explored search nodes
  std::uint64_t nodesUnpruned = 0;  ///< ablation twin (0 = not measured)
  std::uint64_t pruned = 0;  ///< subtrees cut by the admissible bound
  double seconds = 0.0;      ///< wall time (informational only)
  double cost = 0.0;         ///< solution cost (blocks or model cost)
};

/// Collects records for one bench binary and writes them as JSON.
class BenchJson {
 public:
  /// Pulls `--json=PATH` out of argv (compacting it) so the benches'
  /// positional parsing stays untouched.  Returns "" when absent.
  static std::string extractPath(int& argc, char** argv) {
    std::string path;
    int w = 1;
    for (int r = 1; r < argc; ++r) {
      const std::string arg = argv[r];
      if (arg.rfind("--json=", 0) == 0)
        path = arg.substr(7);
      else
        argv[w++] = argv[r];
    }
    argc = w;
    return path;
  }

  BenchJson(std::string benchName, std::string path)
      : bench_(std::move(benchName)), path_(std::move(path)) {}

  bool enabled() const { return !path_.empty(); }

  void add(BenchRecord record) { records_.push_back(std::move(record)); }

  /// Writes the collected records; true on success (and when disabled).
  bool write() const {
    if (!enabled()) return true;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "bench-json: cannot write '%s'\n", path_.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"schema\": \"eblocks-bench-partition/1\",\n");
    std::fprintf(f, "  \"records\": [");
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const BenchRecord& r = records_[i];
      std::fprintf(f, "%s\n    {", i ? "," : "");
      std::fprintf(f, "\"bench\": \"%s\", ", bench_.c_str());
      std::fprintf(f, "\"workload\": \"%s\", ", r.workload.c_str());
      std::fprintf(f, "\"deterministic\": %s, ",
                   r.deterministic ? "true" : "false");
      std::fprintf(f, "\"nodes\": %llu, ",
                   static_cast<unsigned long long>(r.nodes));
      if (r.nodesUnpruned)
        std::fprintf(f, "\"nodes_unpruned\": %llu, ",
                     static_cast<unsigned long long>(r.nodesUnpruned));
      std::fprintf(f, "\"pruned\": %llu, ",
                   static_cast<unsigned long long>(r.pruned));
      std::fprintf(f, "\"seconds\": %.6f, ", r.seconds);
      std::fprintf(f, "\"cost\": %g}", r.cost);
    }
    std::fprintf(f, "\n  ]\n}\n");
    const bool ok = std::fclose(f) == 0;
    if (ok)
      std::printf("bench-json: wrote %zu records to %s\n", records_.size(),
                  path_.c_str());
    return ok;
  }

 private:
  std::string bench_;
  std::string path_;
  std::vector<BenchRecord> records_;
};

}  // namespace eblocks::bench

#endif  // EBLOCKS_BENCH_BENCH_JSON_H_
