// Google-benchmark microbenchmarks for the hot paths underlying the
// partitioners: I/O counting, border detection, PortCounter move
// throughput, and the end-to-end PareDown run.
//
// Beyond the google-benchmark timings, the binary measures a fixed
// deterministic PortCounter move workload (adds+removes over a seeded
// random walk, kEdges vs kSignals, with and without frozen-set
// tracking), prints adds+removes/sec, and verifies the per-move hot
// path performs ZERO heap allocations after warm-up by counting global
// operator new calls around the timed window (non-zero exits 1 -- that
// exit code, not the JSON diff, is what enforces the zero-alloc
// invariant).  With --json=PATH those workloads are recorded as
// eblocks-bench-partition/1 records: `nodes` is the fixed move count
// (the field scripts/compare_bench.py diffs), `cost` a deterministic
// io-trace checksum of the walk (a symmetric miscount cannot hide in
// it), `pruned` the observed allocation count, and the timing fields
// informational.
//
// Usage: bench_micro [--json=PATH] [google-benchmark flags]
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <new>
#include <random>
#include <string>
#include <vector>

#include "bench_json.h"
#include "core/failpoint.h"
#include "core/subgraph.h"
#include "partition/paredown.h"
#include "partition/port_counter.h"
#include "randgen/generator.h"
#include "sim/simulator.h"

// Global allocation counter: the zero-alloc claim on the PortCounter
// move path is verified by counting every operator new in the process
// during the timed window (single-threaded, so the window is exact).
// The replacement new/delete pair routes through malloc/free, which is
// self-consistent; GCC's -Wmismatched-new-delete cannot see that once
// it inlines the replacement into callers, so silence the false
// positive for this TU.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
namespace {
std::atomic<std::uint64_t> gAllocCount{0};
}  // namespace

void* operator new(std::size_t size) {
  gAllocCount.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace eblocks;

const Network& netOf(int inner) {
  static std::map<int, Network> cache;
  auto it = cache.find(inner);
  if (it == cache.end())
    it = cache
             .emplace(inner, randgen::randomNetwork(
                                 {.innerBlocks = inner,
                                  .seed = static_cast<std::uint32_t>(inner)}))
             .first;
  return it->second;
}

/// The fixed random walk every move benchmark replays: block i of the
/// walk is toggled (added if absent, removed if present), so the counter
/// state -- and therefore the walk's io() trace -- is identical run to
/// run and kernel to kernel.
std::vector<BlockId> moveWalk(const Network& net, std::size_t moves) {
  const std::vector<BlockId> inner = net.innerBlocks();
  std::mt19937 rng(12345);
  std::uniform_int_distribution<std::size_t> pick(0, inner.size() - 1);
  std::vector<BlockId> walk(moves);
  for (std::size_t i = 0; i < moves; ++i) walk[i] = inner[pick(rng)];
  return walk;
}

void runWalk(partition::PortCounter& counter,
             const std::vector<BlockId>& walk) {
  for (const BlockId b : walk) {
    if (counter.contains(b))
      counter.remove(b);
    else
      counter.add(b);
  }
}

/// runWalk plus a checksum of the io() trace after every move.  The
/// walk toggles each block an even number of times across warm-up +
/// timed pass, so the *final* io() is vacuously 0/0; the running
/// checksum is the deterministic fingerprint that a miscounting kernel
/// -- even one symmetric in add/remove -- cannot reproduce.
std::uint64_t runWalkChecksum(partition::PortCounter& counter,
                              const std::vector<BlockId>& walk) {
  std::uint64_t checksum = 0;
  for (const BlockId b : walk) {
    if (counter.contains(b))
      counter.remove(b);
    else
      counter.add(b);
    checksum = checksum * 31 +
               static_cast<std::uint64_t>(
                   counter.io().inputs * 1000 + counter.io().outputs);
  }
  return checksum;
}

void BM_CountIoEdges(benchmark::State& state) {
  const Network& net = netOf(static_cast<int>(state.range(0)));
  const BitSet inner = net.innerSet();
  for (auto _ : state)
    benchmark::DoNotOptimize(countIo(net, inner, CountingMode::kEdges));
}
BENCHMARK(BM_CountIoEdges)->Arg(10)->Arg(100)->Arg(465);

void BM_CountIoSignals(benchmark::State& state) {
  const Network& net = netOf(static_cast<int>(state.range(0)));
  const BitSet inner = net.innerSet();
  for (auto _ : state)
    benchmark::DoNotOptimize(countIo(net, inner, CountingMode::kSignals));
}
BENCHMARK(BM_CountIoSignals)->Arg(10)->Arg(100)->Arg(465);

void BM_BorderBlocks(benchmark::State& state) {
  const Network& net = netOf(static_cast<int>(state.range(0)));
  const BitSet inner = net.innerSet();
  for (auto _ : state)
    benchmark::DoNotOptimize(borderBlocks(net, inner));
}
BENCHMARK(BM_BorderBlocks)->Arg(10)->Arg(100)->Arg(465);

void BM_Convexity(benchmark::State& state) {
  const Network& net = netOf(static_cast<int>(state.range(0)));
  const BitSet inner = net.innerSet();
  for (auto _ : state) benchmark::DoNotOptimize(isConvex(net, inner));
}
BENCHMARK(BM_Convexity)->Arg(10)->Arg(100)->Arg(465);

/// PortCounter move throughput: toggle membership along the fixed walk.
/// Items processed = moves (one add or remove each).
void BM_PortCounterMoves(benchmark::State& state, CountingMode mode,
                         bool withFrozen) {
  const Network& net = netOf(static_cast<int>(state.range(0)));
  const std::vector<BlockId> walk = moveWalk(net, 4096);
  BitSet frozen(net.blockCount());
  for (BlockId b = 0; b < net.blockCount(); ++b)
    if (!net.isInner(b)) frozen.set(b);
  partition::PortCounter counter(net, mode, partition::BorderTracking::kOff,
                                 withFrozen ? &frozen : nullptr);
  for (auto _ : state) {
    runWalk(counter, walk);
    benchmark::DoNotOptimize(counter.io());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(walk.size()));
}
BENCHMARK_CAPTURE(BM_PortCounterMoves, edges, CountingMode::kEdges, false)
    ->Arg(100)->Arg(465);
BENCHMARK_CAPTURE(BM_PortCounterMoves, signals, CountingMode::kSignals, false)
    ->Arg(100)->Arg(465);
BENCHMARK_CAPTURE(BM_PortCounterMoves, signals_fixed, CountingMode::kSignals,
                  true)
    ->Arg(100)->Arg(465);

/// A disarmed failpoint check: one relaxed atomic load and a
/// predictable branch.  This is the price every syscall-shaped edge in
/// the cache/io/server pays in production, so it must stay in the
/// low-nanosecond range.
void BM_FailpointDisabledCheck(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(
        static_cast<bool>(core::failpoint::check(
            core::failpoint::name::kCacheFsync)));
}
BENCHMARK(BM_FailpointDisabledCheck);

void BM_PareDownEndToEnd(benchmark::State& state) {
  const Network& net = netOf(static_cast<int>(state.range(0)));
  const partition::PartitionProblem problem(net, {});
  for (auto _ : state)
    benchmark::DoNotOptimize(partition::pareDown(problem));
}
BENCHMARK(BM_PareDownEndToEnd)->Arg(10)->Arg(50)->Arg(200)->Arg(465)
    ->Unit(benchmark::kMillisecond);

void BM_SimulatorSettle(benchmark::State& state) {
  const Network& net = netOf(static_cast<int>(state.range(0)));
  sim::SimOptions options;
  options.recordTrace = false;
  sim::Simulator simulator(net, options);
  std::vector<std::string> sensors;
  for (BlockId b = 0; b < net.blockCount(); ++b)
    if (net.isSensor(b)) sensors.push_back(net.block(b).name);
  std::int64_t v = 0;
  for (auto _ : state) {
    simulator.setSensor(sensors[static_cast<std::size_t>(v) % sensors.size()],
                        v & 1);
    simulator.settle();
    ++v;
  }
}
BENCHMARK(BM_SimulatorSettle)->Arg(50)->Arg(200)
    ->Unit(benchmark::kMicrosecond);

/// One deterministic move workload for the JSON record + zero-alloc
/// verification.  Returns false when the timed window allocated.
bool runMoveWorkload(const char* name, int inner, CountingMode mode,
                     bool withFrozen, eblocks::bench::BenchJson& json) {
  constexpr std::size_t kMoves = 1u << 18;  // 262144 adds+removes
  const Network& net = netOf(inner);
  const std::vector<BlockId> walk = moveWalk(net, kMoves);
  BitSet frozen(net.blockCount());
  for (BlockId b = 0; b < net.blockCount(); ++b)
    if (!net.isInner(b)) frozen.set(b);
  partition::PortCounter counter(net, mode, partition::BorderTracking::kOff,
                                 withFrozen ? &frozen : nullptr);
  // Warm up one full pass so every internal buffer reaches steady-state
  // capacity, then time (and allocation-count) a second identical pass.
  runWalk(counter, walk);
  const std::uint64_t allocsBefore =
      gAllocCount.load(std::memory_order_relaxed);
  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t checksum = runWalkChecksum(counter, walk);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const std::uint64_t allocs =
      gAllocCount.load(std::memory_order_relaxed) - allocsBefore;
  const double mps = static_cast<double>(kMoves) / seconds / 1e6;
  // The io-trace checksum, folded to double-exact range (< 2^53) since
  // BenchRecord::cost is a double.
  const double fingerprint = static_cast<double>(checksum % 900000007ull);
  std::printf("%-28s n=%-4d %8.2f Mmoves/s  (%zu moves, %.4fs, "
              "%llu allocs, io-checksum=%.0f)\n",
              name, inner, mps, kMoves, seconds,
              static_cast<unsigned long long>(allocs), fingerprint);
  json.add(eblocks::bench::BenchRecord{
      .workload = std::string("moves/") + name + "/n=" + std::to_string(inner),
      .deterministic = true,  // the move count is fixed by construction
      .nodes = kMoves,
      .nodesUnpruned = 0,
      .pruned = allocs,  // steady-state allocations: must stay 0
      .seconds = seconds,
      .cost = fingerprint});
  if (allocs != 0)
    std::fprintf(stderr,
                 "!! %s n=%d: %llu heap allocations on the move hot path "
                 "(expected 0)\n",
                 name, inner, static_cast<unsigned long long>(allocs));
  return allocs == 0;
}

/// The zero-overhead-when-disabled guard for the failpoint subsystem
/// (docs/robustness.md): 2^22 disarmed checks must fire nothing and
/// allocate nothing, and the per-check cost lands in the JSON record so
/// compare_bench.py flags a regression if the fast path ever grows a
/// lock or an allocation.  `pruned` carries fired + allocs (must stay
/// 0); `cost` is 0 by construction.
bool runFailpointWorkload(eblocks::bench::BenchJson& json) {
  constexpr std::uint64_t kChecks = 1u << 22;
  core::failpoint::clearAll();
  std::uint64_t fired = 0;
  // Warm-up pass, then the timed + allocation-counted pass.
  for (std::uint64_t i = 0; i < kChecks / 16; ++i)
    if (core::failpoint::check(core::failpoint::name::kCacheFsync)) ++fired;
  const std::uint64_t allocsBefore =
      gAllocCount.load(std::memory_order_relaxed);
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < kChecks; ++i)
    if (core::failpoint::check(core::failpoint::name::kCacheFsync)) ++fired;
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const std::uint64_t allocs =
      gAllocCount.load(std::memory_order_relaxed) - allocsBefore;
  const double nsPerCheck = seconds / static_cast<double>(kChecks) * 1e9;
  std::printf("%-28s %8.2f ns/check  (%llu checks, %.4fs, "
              "%llu fired, %llu allocs)\n",
              "failpoint/disabled", nsPerCheck,
              static_cast<unsigned long long>(kChecks), seconds,
              static_cast<unsigned long long>(fired),
              static_cast<unsigned long long>(allocs));
  json.add(eblocks::bench::BenchRecord{
      .workload = "failpoint/disabled/checks",
      .deterministic = true,
      .nodes = kChecks,
      .nodesUnpruned = 0,
      .pruned = fired + allocs,  // both must stay 0
      .seconds = seconds,
      .cost = 0.0});
  if (fired != 0 || allocs != 0)
    std::fprintf(stderr,
                 "!! failpoint/disabled: %llu fired, %llu allocs on the "
                 "disarmed check path (expected 0)\n",
                 static_cast<unsigned long long>(fired),
                 static_cast<unsigned long long>(allocs));
  return fired == 0 && allocs == 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string jsonPath =
      eblocks::bench::BenchJson::extractPath(argc, argv);
  eblocks::bench::BenchJson json("bench_micro", jsonPath);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\nPortCounter move throughput (deterministic walk, "
              "steady state must be allocation-free):\n");
  bool ok = true;
  for (const int n : {100, 465}) {
    ok = runMoveWorkload("edges", n, CountingMode::kEdges, false, json) && ok;
    ok = runMoveWorkload("signals", n, CountingMode::kSignals, false, json) &&
         ok;
    ok = runMoveWorkload("signals_fixed", n, CountingMode::kSignals, true,
                         json) &&
         ok;
  }
  std::printf("\nFailpoint disarmed-check overhead (must fire nothing, "
              "allocate nothing):\n");
  ok = runFailpointWorkload(json) && ok;
  if (!json.write()) ok = false;
  return ok ? 0 : 1;
}
