// Google-benchmark microbenchmarks for the hot paths underlying the
// partitioners: I/O counting, border detection, rank computation, and the
// end-to-end PareDown run.
#include <benchmark/benchmark.h>

#include <map>

#include "core/subgraph.h"
#include "partition/paredown.h"
#include "randgen/generator.h"
#include "sim/simulator.h"

namespace {

using namespace eblocks;

const Network& netOf(int inner) {
  static std::map<int, Network> cache;
  auto it = cache.find(inner);
  if (it == cache.end())
    it = cache
             .emplace(inner, randgen::randomNetwork(
                                 {.innerBlocks = inner,
                                  .seed = static_cast<std::uint32_t>(inner)}))
             .first;
  return it->second;
}

void BM_CountIoEdges(benchmark::State& state) {
  const Network& net = netOf(static_cast<int>(state.range(0)));
  const BitSet inner = net.innerSet();
  for (auto _ : state)
    benchmark::DoNotOptimize(countIo(net, inner, CountingMode::kEdges));
}
BENCHMARK(BM_CountIoEdges)->Arg(10)->Arg(100)->Arg(465);

void BM_CountIoSignals(benchmark::State& state) {
  const Network& net = netOf(static_cast<int>(state.range(0)));
  const BitSet inner = net.innerSet();
  for (auto _ : state)
    benchmark::DoNotOptimize(countIo(net, inner, CountingMode::kSignals));
}
BENCHMARK(BM_CountIoSignals)->Arg(10)->Arg(100)->Arg(465);

void BM_BorderBlocks(benchmark::State& state) {
  const Network& net = netOf(static_cast<int>(state.range(0)));
  const BitSet inner = net.innerSet();
  for (auto _ : state)
    benchmark::DoNotOptimize(borderBlocks(net, inner));
}
BENCHMARK(BM_BorderBlocks)->Arg(10)->Arg(100)->Arg(465);

void BM_Convexity(benchmark::State& state) {
  const Network& net = netOf(static_cast<int>(state.range(0)));
  const BitSet inner = net.innerSet();
  for (auto _ : state) benchmark::DoNotOptimize(isConvex(net, inner));
}
BENCHMARK(BM_Convexity)->Arg(10)->Arg(100)->Arg(465);

void BM_PareDownEndToEnd(benchmark::State& state) {
  const Network& net = netOf(static_cast<int>(state.range(0)));
  const partition::PartitionProblem problem(net, {});
  for (auto _ : state)
    benchmark::DoNotOptimize(partition::pareDown(problem));
}
BENCHMARK(BM_PareDownEndToEnd)->Arg(10)->Arg(50)->Arg(200)->Arg(465)
    ->Unit(benchmark::kMillisecond);

void BM_SimulatorSettle(benchmark::State& state) {
  const Network& net = netOf(static_cast<int>(state.range(0)));
  sim::SimOptions options;
  options.recordTrace = false;
  sim::Simulator simulator(net, options);
  std::vector<std::string> sensors;
  for (BlockId b = 0; b < net.blockCount(); ++b)
    if (net.isSensor(b)) sensors.push_back(net.block(b).name);
  std::int64_t v = 0;
  for (auto _ : state) {
    simulator.setSensor(sensors[static_cast<std::size_t>(v) % sensors.size()],
                        v & 1);
    simulator.settle();
    ++v;
  }
}
BENCHMARK(BM_SimulatorSettle)->Arg(50)->Arg(200)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
