// Daemon load bench: the synthesis server (src/server/) measured over
// real loopback sockets in three phases.
//
//  - Identity sweep: every library design served once (serial paredown,
//    cache off) and byte-compared against the one-shot synthesize()
//    pipeline.  The served node counts are the deterministic regression
//    signal -- the wire must not change the search.
//  - Throughput: `clients` concurrent connections each firing
//    `requests` pipelined requests at a multi-executor server; reports
//    requests/second and p50/p99 latency (informational), plus the
//    completed count as a deterministic no-drop witness: every accepted
//    job gets exactly one reply.
//  - Backpressure: one executor, queue of one, a burst of slow jobs.
//    The overflow must be shed with kOverloaded + retry-after, and
//    honoring the hint must eventually land every request.
//
// Usage: bench_load [clients] [requests] [--json=PATH]
//   clients   concurrent connections in the throughput phase (default 8)
//   requests  pipelined requests per connection (default 16)
//
// JSON records ("eblocks-bench-partition/1", see docs/benchmarks.md):
//   serve/identity/<design>     deterministic; nodes = explored over the
//                               wire, cost = inner blocks after synthesis
//   serve/load/completed        deterministic; nodes = replies received
//                               (clients * requests -- the no-drop bar)
//   serve/load/rps              informational; cost = requests/second
//   serve/load/p50_ms           informational; cost = median latency
//   serve/load/p99_ms           informational; cost = tail latency
//   serve/backpressure/served   deterministic; nodes = jobs landed after
//                               retry, cost = 1 when >=1 reject was seen
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "designs/library.h"
#include "io/binary.h"
#include "randgen/generator.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "synth/synthesizer.h"

namespace {

using namespace eblocks;

constexpr int kCallTimeoutMs = 120000;

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

server::ServerOptions serverOptions(int executors, std::size_t queue) {
  server::ServerOptions options;
  options.host = "127.0.0.1";
  options.port = 0;  // free port per phase
  options.executors = executors;
  options.queueCapacity = queue;
  options.retryAfterSeconds = 0.05;
  return options;
}

server::SynthRequest paredownRequest(std::uint64_t id, const Network& net) {
  server::SynthRequest request;
  request.id = id;
  request.algorithm = "paredown";
  request.threads = 1;
  request.useCache = false;
  request.networkFrame = io::writeNetworkBinary(net);
  return request;
}

/// The local pipeline a served request must match byte for byte
/// (modulo the wall-clock field of the run frame).
bool identicalToLocal(const Network& net, const server::SynthRequest& request,
                      const server::SynthResponse& response) {
  synth::SynthOptions options;
  options.algorithm = request.algorithm;
  options.spec.inputs = request.inputs;
  options.spec.outputs = request.outputs;
  options.engine.threads = request.threads;
  options.engine.timeLimitSeconds = request.timeLimitSeconds;
  options.engine.pruningBound = request.prune;
  options.emitC = false;
  const synth::SynthResult local = synth::synthesize(net, options);
  if (response.networkFrame != io::writeNetworkBinary(local.network))
    return false;
  auto moduloTime = [](partition::PartitionRun run) {
    run.seconds = 0.0;
    return io::writePartitionRunBinary(run);
  };
  return moduloTime(io::readPartitionRunBinary(response.runFrame)) ==
         moduloTime(local.run);
}

/// Phase 1: every library design over the wire, checked against the
/// local pipeline; the explored counts become deterministic records.
bool identitySweep(bench::BenchJson& json) {
  server::Server daemon(serverOptions(/*executors=*/2, /*queue=*/8));
  std::string error;
  if (!daemon.start(&error)) {
    std::fprintf(stderr, "bench_load: %s\n", error.c_str());
    return false;
  }
  server::Client client;
  if (!client.connectTo("127.0.0.1", daemon.port(), &error)) {
    std::fprintf(stderr, "bench_load: %s\n", error.c_str());
    return false;
  }

  std::printf("%-26s %10s %10s | %10s\n", "Design", "Explored", "Blocks",
              "Wire[ms]");
  std::uint64_t id = 0;
  for (const auto& entry : designs::designLibrary()) {
    const server::SynthRequest request = paredownRequest(++id, entry.network);
    const double t0 = now();
    const server::CallResult result = client.call(request, kCallTimeoutMs);
    const double ms = (now() - t0) * 1e3;
    if (!result.ok()) {
      std::fprintf(stderr, "bench_load: '%s' failed: %s\n",
                   entry.name.c_str(),
                   result.error ? result.error->message.c_str() : "timeout");
      return false;
    }
    if (!identicalToLocal(entry.network, request, *result.response)) {
      std::fprintf(stderr, "bench_load: '%s' served result differs from "
                           "one-shot synthesize()\n", entry.name.c_str());
      return false;
    }
    const partition::PartitionRun run =
        io::readPartitionRunBinary(result.response->runFrame);
    std::printf("%-26s %10llu %10u | %10.2f\n", entry.name.c_str(),
                static_cast<unsigned long long>(run.explored),
                result.response->programmableBlocks, ms);

    bench::BenchRecord record;
    record.workload = "serve/identity/" + entry.name;
    record.deterministic = true;
    record.nodes = run.explored;
    record.pruned = run.pruned;
    record.seconds = ms / 1e3;
    record.cost = result.response->innerAfter;
    json.add(record);
  }
  return true;
}

/// Phase 2: `clients` connections x `requests` pipelined requests.
bool throughput(int clients, int requests, bench::BenchJson& json) {
  server::Server daemon(serverOptions(/*executors=*/4, /*queue=*/256));
  std::string error;
  if (!daemon.start(&error)) {
    std::fprintf(stderr, "bench_load: %s\n", error.c_str());
    return false;
  }

  const std::vector<designs::DesignEntry> library = designs::designLibrary();
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  const double t0 = now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      server::Client client;
      std::string connectError;
      if (!client.connectTo("127.0.0.1", daemon.port(), &connectError)) {
        ++failures;
        return;
      }
      for (int r = 0; r < requests; ++r) {
        const Network& net =
            library[static_cast<std::size_t>(c + r) % library.size()].network;
        const std::uint64_t id = static_cast<std::uint64_t>(r + 1);
        const double s0 = now();
        const server::CallResult result =
            client.call(paredownRequest(id, net), kCallTimeoutMs);
        if (!result.ok() || result.response->id != id) {
          ++failures;
          return;
        }
        latencies[static_cast<std::size_t>(c)].push_back((now() - s0) * 1e3);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed = now() - t0;
  if (failures.load() != 0) {
    std::fprintf(stderr, "bench_load: %d client thread(s) failed\n",
                 failures.load());
    return false;
  }

  std::vector<double> all;
  for (const auto& perClient : latencies)
    all.insert(all.end(), perClient.begin(), perClient.end());
  std::sort(all.begin(), all.end());
  const std::uint64_t completed = all.size();
  const double rps = elapsed > 0 ? static_cast<double>(completed) / elapsed
                                 : 0.0;
  auto percentile = [&](double p) {
    const std::size_t i = static_cast<std::size_t>(
        p * static_cast<double>(all.size() - 1) + 0.5);
    return all[i];
  };
  const double p50 = percentile(0.50), p99 = percentile(0.99);
  std::printf("\nThroughput: %d clients x %d requests = %llu replies in "
              "%.3fs -> %.0f req/s, p50 %.2f ms, p99 %.2f ms\n",
              clients, requests, static_cast<unsigned long long>(completed),
              elapsed, rps, p50, p99);

  const server::ServerStats stats = daemon.stats();
  if (stats.accepted != stats.completed || completed != stats.completed) {
    std::fprintf(stderr, "bench_load: drop detected (accepted=%llu "
                         "completed=%llu replies=%llu)\n",
                 static_cast<unsigned long long>(stats.accepted),
                 static_cast<unsigned long long>(stats.completed),
                 static_cast<unsigned long long>(completed));
    return false;
  }

  bench::BenchRecord det;
  det.workload = "serve/load/completed";
  det.deterministic = true;
  det.nodes = completed;
  det.seconds = elapsed;
  det.cost = clients;
  json.add(det);
  for (const auto& [name, value] :
       {std::pair<const char*, double>{"serve/load/rps", rps},
        {"serve/load/p50_ms", p50},
        {"serve/load/p99_ms", p99}}) {
    bench::BenchRecord info;
    info.workload = name;
    info.deterministic = false;
    info.nodes = completed;
    info.seconds = elapsed;
    info.cost = value;
    json.add(info);
  }
  return true;
}

/// Phase 3: a burst against a one-deep queue; the shed requests carry a
/// retry-after hint that, honored, lands every job.
bool backpressure(bench::BenchJson& json) {
  server::Server daemon(serverOptions(/*executors=*/1, /*queue=*/1));
  std::string error;
  if (!daemon.start(&error)) {
    std::fprintf(stderr, "bench_load: %s\n", error.c_str());
    return false;
  }
  server::Client client;
  if (!client.connectTo("127.0.0.1", daemon.port(), &error)) {
    std::fprintf(stderr, "bench_load: %s\n", error.c_str());
    return false;
  }

  // Slow jobs: an unpruned exhaustive search on a large random network
  // runs until its (short) time limit, holding the executor busy.
  randgen::GeneratorOptions gen;
  gen.innerBlocks = 34;
  gen.seed = 7;
  const Network hard = randgen::randomNetwork(gen);
  constexpr int kJobs = 8;
  std::uint64_t rejected = 0, served = 0;
  for (std::uint64_t id = 1; id <= kJobs; ++id) {
    server::SynthRequest request = paredownRequest(id, hard);
    request.algorithm = "exhaustive";
    request.prune = false;
    request.timeLimitSeconds = 0.1;
    for (;;) {
      const server::CallResult result = client.call(request, kCallTimeoutMs);
      if (result.ok()) {
        ++served;
        break;
      }
      if (!result.error ||
          result.error->code != server::ErrorCode::kOverloaded) {
        std::fprintf(stderr, "bench_load: unexpected reply to job %llu\n",
                     static_cast<unsigned long long>(id));
        return false;
      }
      ++rejected;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(result.error->retryAfterMs));
    }
    // Pipeline two extra copies immediately: the first occupies the
    // executor, the second the one-deep queue, so job 2's admission is
    // rejected no matter how quickly the executor pops -- the client
    // drops their out-of-band replies by id.
    if (id == 1) {
      for (std::uint64_t crowdId : {100ull, 101ull}) {
        server::SynthRequest crowd = request;
        crowd.id = crowdId;
        (void)client.sendFrame(encodeRequest(crowd));
      }
    }
  }
  const server::ServerStats stats = daemon.stats();
  std::printf("\nBackpressure: %llu served, %llu shed with retry-after "
              "(accepted=%llu completed=%llu)\n",
              static_cast<unsigned long long>(served),
              static_cast<unsigned long long>(rejected),
              static_cast<unsigned long long>(stats.accepted),
              static_cast<unsigned long long>(stats.completed));
  if (served != kJobs) {
    std::fprintf(stderr, "bench_load: retry loop lost a job\n");
    return false;
  }

  bench::BenchRecord record;
  record.workload = "serve/backpressure/served";
  record.deterministic = true;
  record.nodes = served;
  record.cost = rejected > 0 ? 1.0 : 0.0;
  json.add(record);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string jsonPath = bench::BenchJson::extractPath(argc, argv);
  bench::BenchJson json("bench_load", jsonPath);
  const int clients = argc > 1 ? std::atoi(argv[1]) : 8;
  const int requests = argc > 2 ? std::atoi(argv[2]) : 16;
  if (clients < 1 || requests < 1) {
    std::fprintf(stderr, "usage: bench_load [clients] [requests] "
                         "[--json=PATH]\n");
    return 1;
  }

  std::printf("Daemon load: identity sweep, %d-client throughput, "
              "backpressure\n\n", clients);
  if (!identitySweep(json)) return 1;
  if (!throughput(clients, requests, json)) return 1;
  if (!backpressure(json)) return 1;
  return json.write() ? 0 : 1;
}
