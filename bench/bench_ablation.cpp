// Ablation studies over PareDown's design choices (not in the paper, but
// answering the questions its Section 4.2 raises):
//   1. algorithm face-off: aggregation vs PareDown vs exhaustive optimum;
//   2. tiebreak order: the paper's (indegree, outdegree, level) vs
//      alternatives, measured by average total after partitioning;
//   3. counting mode: edge-counted vs signal-counted ports;
//   4. programmable block size sweep (the paper's "future work" item on
//      multiple block types).
//
// Usage: bench_ablation [designs-per-point]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "partition/aggregation.h"
#include "partition/exhaustive.h"
#include "partition/paredown.h"
#include "randgen/generator.h"

namespace {

using namespace eblocks;
using namespace eblocks::partition;

double averageTotal(int inner, int designs, CountingMode mode,
                    int specIn, int specOut,
                    PartitionRun (*algo)(const PartitionProblem&)) {
  double total = 0;
  for (int d = 0; d < designs; ++d) {
    const auto net = randgen::randomNetwork(
        {.innerBlocks = inner,
         .seed = static_cast<std::uint32_t>(31 * inner + d)});
    const PartitionProblem problem(net,
                                   ProgBlockSpec{specIn, specOut, mode});
    total += algo(problem).result.totalAfter(problem.innerCount());
  }
  return total / designs;
}

PartitionRun runPareDown(const PartitionProblem& p) { return pareDown(p); }
PartitionRun runAggregation(const PartitionProblem& p) {
  return aggregation(p);
}
PartitionRun runExhaustive(const PartitionProblem& p) {
  ExhaustiveOptions options;
  options.timeLimitSeconds = 10;
  options.seed = pareDown(p).result;
  return exhaustiveSearch(p, options);
}

}  // namespace

int main(int argc, char** argv) {
  const int designs = argc > 1 ? std::atoi(argv[1]) : 40;

  std::printf("Ablation 1: algorithm face-off (avg total after "
              "partitioning, %d designs per point, 2x2 edges)\n\n", designs);
  std::printf("%5s | %12s %12s %12s\n", "Inner", "Aggregation", "PareDown",
              "Exhaustive");
  for (int n : {4, 6, 8, 10}) {
    std::printf("%5d | %12.2f %12.2f %12.2f\n", n,
                averageTotal(n, designs, CountingMode::kEdges, 2, 2,
                             runAggregation),
                averageTotal(n, designs, CountingMode::kEdges, 2, 2,
                             runPareDown),
                averageTotal(n, designs, CountingMode::kEdges, 2, 2,
                             runExhaustive));
  }

  std::printf("\nAblation 2: counting mode (PareDown avg total; signal "
              "counting shares fanout ports so more merges fit)\n\n");
  std::printf("%5s | %12s %12s\n", "Inner", "Edges", "Signals");
  for (int n : {6, 10, 15, 20}) {
    std::printf("%5d | %12.2f %12.2f\n", n,
                averageTotal(n, designs, CountingMode::kEdges, 2, 2,
                             runPareDown),
                averageTotal(n, designs, CountingMode::kSignals, 2, 2,
                             runPareDown));
  }

  std::printf("\nAblation 3: programmable block size sweep (PareDown avg "
              "total; the paper's future-work axis)\n\n");
  std::printf("%5s | %8s %8s %8s %8s\n", "Inner", "2x2", "3x2", "2x3",
              "4x4");
  for (int n : {10, 15, 20}) {
    std::printf("%5d | %8.2f %8.2f %8.2f %8.2f\n", n,
                averageTotal(n, designs, CountingMode::kEdges, 2, 2,
                             runPareDown),
                averageTotal(n, designs, CountingMode::kEdges, 3, 2,
                             runPareDown),
                averageTotal(n, designs, CountingMode::kEdges, 2, 3,
                             runPareDown),
                averageTotal(n, designs, CountingMode::kEdges, 4, 4,
                             runPareDown));
  }

  std::printf("\nAblation 4: Figure 4's literal zero-block 'return' vs the "
              "robust drop-and-continue\n(the literal reading abandons "
              "every remaining block after one doomed round)\n\n");
  std::printf("%5s | %14s %14s\n", "Inner", "strict (paper)", "robust (ours)");
  for (int n : {10, 20, 35, 50}) {
    double strictTotal = 0, robustTotal = 0;
    for (int d = 0; d < designs; ++d) {
      const auto net = randgen::randomNetwork(
          {.innerBlocks = n,
           .seed = static_cast<std::uint32_t>(53 * n + d)});
      const PartitionProblem problem(net, ProgBlockSpec{});
      PareDownOptions strict;
      strict.strictFigure4 = true;
      strictTotal +=
          pareDown(problem, strict).result.totalAfter(problem.innerCount());
      robustTotal +=
          pareDown(problem).result.totalAfter(problem.innerCount());
    }
    std::printf("%5d | %14.2f %14.2f\n", n, strictTotal / designs,
                robustTotal / designs);
  }

  std::printf("\nAblation 5: classical convexity constraint on the "
              "exhaustive optimum\n(the packet protocol tolerates "
              "non-convex partitions; requiring convexity can\nonly cost "
              "blocks)\n\n");
  std::printf("%5s | %12s %14s\n", "Inner", "relaxed", "require convex");
  for (int n : {6, 8, 10}) {
    double relaxed = 0, convex = 0;
    for (int d = 0; d < designs; ++d) {
      const auto net = randgen::randomNetwork(
          {.innerBlocks = n,
           .seed = static_cast<std::uint32_t>(59 * n + d)});
      const PartitionProblem problem(net, ProgBlockSpec{});
      ExhaustiveOptions loose;
      loose.timeLimitSeconds = 10;
      ExhaustiveOptions strict = loose;
      strict.requireConvex = true;
      relaxed += exhaustiveSearch(problem, loose)
                     .result.totalAfter(problem.innerCount());
      convex += exhaustiveSearch(problem, strict)
                    .result.totalAfter(problem.innerCount());
    }
    std::printf("%5d | %12.2f %14.2f\n", n, relaxed / designs,
                convex / designs);
  }
  return 0;
}
