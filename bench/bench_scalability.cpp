// Scalability of the partitioner family, plus the paper's Section-5.2
// claims.
//
// 1. Scaling curve (the heuristic-family tentpole): dense random
//    networks from 30 to 200 inner blocks -- an order of magnitude past
//    the exact search's ceiling -- through paredown, greedy, greedy+fm,
//    and a budgeted lns chain.  All four are deterministic (serial,
//    seeded, node-budgeted, no deadline), so their probe/node counts
//    are machine-independent regression signals.
// 2. Warm start: cold vs fm-seeded serial exhaustive search.  Dense
//    random designs show the measured node reduction; the two largest
//    tractable Table-1 rows document the structural equality (their
//    first DFS dive is already optimal, so the seed cannot prune
//    anything -- see docs/benchmarks.md).
// 3. The Section-5.2 PareDown curve ("465 inner nodes in 80 seconds on
//    a 2 GHz Athlon XP") and the Section-4.2 O(n^2) worst case.
//
// Usage: bench_scalability [max-inner] [--json=PATH]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_json.h"
#include "blocks/catalog.h"
#include "designs/library.h"
#include "partition/exhaustive.h"
#include "partition/fm_refine.h"
#include "partition/greedy_seed.h"
#include "partition/lns.h"
#include "partition/paredown.h"
#include "randgen/generator.h"

using namespace eblocks;
using namespace eblocks::partition;

namespace {

void printRow(const char* algo, int n, const PartitionRun& run) {
  std::printf("  %-8s | %9d %9d %12llu %10.4fs\n", algo,
              run.result.totalAfter(n), run.result.programmableBlocks(),
              static_cast<unsigned long long>(run.explored), run.seconds);
}

void record(bench::BenchJson& json, const std::string& workload, int n,
            const PartitionRun& run, bool deterministic) {
  bench::BenchRecord r;
  r.workload = workload;
  r.deterministic = deterministic && !run.timedOut;
  r.nodes = run.explored;
  r.pruned = run.pruned;
  r.seconds = run.seconds;
  r.cost = run.result.totalAfter(n);
  json.add(std::move(r));
}

}  // namespace

int main(int argc, char** argv) {
  const std::string jsonPath = bench::BenchJson::extractPath(argc, argv);
  bench::BenchJson json("bench_scalability", jsonPath);
  const int maxInner = argc > 1 ? std::atoi(argv[1]) : 1000;

  std::printf("Heuristic family scaling curve (dense largeNetwork preset, "
              "edge counting)\n");
  std::printf("lns budget: 30 rounds x 20k repair nodes, no deadline -- "
              "deterministic\n\n");
  for (const int n : {30, 60, 100, 150, 200}) {
    if (n > maxInner) break;
    const Network net =
        randgen::randomNetwork(randgen::GeneratorOptions::largeNetwork(
            n, static_cast<std::uint32_t>(n)));
    const PartitionProblem problem(net, {});
    std::printf("inner=%d\n", n);
    std::printf("  %-8s | %9s %9s %12s %11s\n", "algo", "total", "prog",
                "probes", "time");

    const PartitionRun pd = pareDown(problem);
    printRow("paredown", n, pd);
    record(json, "scale/n" + std::to_string(n) + "/paredown", n, pd, true);

    const PartitionRun greedy = greedySeed(problem);
    printRow("greedy", n, greedy);
    record(json, "scale/n" + std::to_string(n) + "/greedy", n, greedy, true);

    PartitionRun fm = fmRefine(problem, greedy.result);
    fm.explored += greedy.explored;
    fm.seconds += greedy.seconds;
    printRow("fm", n, fm);
    record(json, "scale/n" + std::to_string(n) + "/fm", n, fm, true);

    LnsOptions lnsOptions;
    lnsOptions.timeLimitSeconds = 0;  // node-budgeted, not wall-clocked
    lnsOptions.maxRounds = 30;
    lnsOptions.repairNodeBudget = 20000;
    PartitionRun lns = lnsSearch(problem, fm.result, lnsOptions);
    lns.explored += fm.explored;
    lns.seconds += fm.seconds;
    printRow("fm+lns", n, lns);
    record(json, "scale/n" + std::to_string(n) + "/lns", n, lns, true);
  }

  const auto warmRow = [&](const std::string& name, const Network& net) {
    const PartitionProblem problem(net, {});
    const int n = problem.innerCount();
    ExhaustiveOptions cold;
    cold.threads = 1;
    const PartitionRun unseeded = exhaustiveSearch(problem, cold);
    ExhaustiveOptions warm = cold;
    warm.seed = fmRefine(problem, greedySeed(problem).result).result;
    const PartitionRun seeded = exhaustiveSearch(problem, warm);
    const double saved =
        unseeded.explored
            ? 100.0 *
                  static_cast<double>(unseeded.explored - seeded.explored) /
                  static_cast<double>(unseeded.explored)
            : 0.0;
    std::printf("%-22s | %9d %12llu %12llu %8.1f%%\n", name.c_str(),
                unseeded.result.totalAfter(n),
                static_cast<unsigned long long>(unseeded.explored),
                static_cast<unsigned long long>(seeded.explored), saved);
    record(json, "warm/" + name + "/cold", n, unseeded, true);
    record(json, "warm/" + name + "/seeded", n, seeded, true);
  };
  if (maxInner >= 16) {
    std::printf("\nWarm start: cold vs fm-seeded serial exhaustive "
                "(identical optimum, fewer nodes)\n");
    std::printf("%-22s | %9s %12s %12s %9s\n", "design", "optimum",
                "cold nodes", "warm nodes", "saved");
    for (const int n : {14, 16})
      for (const std::uint32_t seed : {2u, 3u})
        warmRow("rand_n" + std::to_string(n) + "_s" + std::to_string(seed),
                randgen::randomNetwork(
                    randgen::GeneratorOptions::largeNetwork(n, seed)));
    warmRow("podium_timer_3", designs::figure5());
    warmRow("noise_at_night", designs::byName("Noise At Night Detector"));
  }

  std::printf("\nPareDown scalability (Section 5.2; paper: 465 inner nodes "
              "in 80 s on a 2 GHz Athlon XP)\n\n");
  std::printf("%6s | %12s %14s %12s %9s\n", "Inner", "Time", "FitChecks",
              "Partitions", "Total");
  for (int n : {25, 50, 100, 200, 465, 700, 1000}) {
    if (n > maxInner) break;
    const auto net = randgen::randomNetwork(
        {.innerBlocks = n, .seed = static_cast<std::uint32_t>(n)});
    const PartitionProblem problem(net, {});
    const auto run = pareDown(problem);
    std::printf("%6d | %10.4fs %14llu %12d %9d\n", n, run.seconds,
                static_cast<unsigned long long>(run.explored),
                run.result.programmableBlocks(), run.result.totalAfter(n));
  }

  std::printf("\nWorst-case O(n^2) shape (independent unmergeable gates):\n");
  std::printf("%6s | %12s %14s %16s\n", "Inner", "Time", "FitChecks",
              "n*(n+1)/2 bound");
  for (int n : {50, 100, 200, 400}) {
    if (n > maxInner) break;
    // Independent 2-sensor gates: every candidate pares to single blocks.
    Network net;
    const auto& cat = blocks::defaultCatalog();
    for (int i = 0; i < n; ++i) {
      const std::string s = std::to_string(i);
      const auto a = net.addBlock("sa" + s, cat.button());
      const auto b = net.addBlock("sb" + s, cat.button());
      const auto g = net.addBlock("g" + s, cat.or2());
      const auto o = net.addBlock("o" + s, cat.led());
      net.connect(a, 0, g, 0);
      net.connect(b, 0, g, 1);
      net.connect(g, 0, o, 0);
    }
    const PartitionProblem problem(net, {});
    const auto run = pareDown(problem);
    std::printf("%6d | %10.4fs %14llu %16d\n", n, run.seconds,
                static_cast<unsigned long long>(run.explored),
                n * (n + 1) / 2 + n);
  }

  if (!json.write()) return 1;
  return 0;
}
