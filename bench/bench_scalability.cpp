// Reproduces the Section-5.2 scalability claim: "the decomposition method
// produced a result for a design with 465 inner nodes in 80 seconds" on a
// 2 GHz Athlon XP, and the O(n^2) worst-case analysis of Section 4.2.
//
// Usage: bench_scalability [max-inner]
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "blocks/catalog.h"
#include "partition/paredown.h"
#include "randgen/generator.h"

int main(int argc, char** argv) {
  const int maxInner = argc > 1 ? std::atoi(argv[1]) : 1000;

  std::printf("PareDown scalability (Section 5.2; paper: 465 inner nodes in "
              "80 s on a 2 GHz Athlon XP)\n\n");
  std::printf("%6s | %12s %14s %12s %9s\n", "Inner", "Time", "FitChecks",
              "Partitions", "Total");

  for (int n : {25, 50, 100, 200, 465, 700, 1000}) {
    if (n > maxInner) break;
    const auto net = eblocks::randgen::randomNetwork(
        {.innerBlocks = n, .seed = static_cast<std::uint32_t>(n)});
    const eblocks::partition::PartitionProblem problem(net, {});
    const auto run = eblocks::partition::pareDown(problem);
    std::printf("%6d | %10.4fs %14llu %12d %9d\n", n, run.seconds,
                static_cast<unsigned long long>(run.explored),
                run.result.programmableBlocks(), run.result.totalAfter(n));
  }

  std::printf("\nWorst-case O(n^2) shape (independent unmergeable gates):\n");
  std::printf("%6s | %12s %14s %16s\n", "Inner", "Time", "FitChecks",
              "n*(n+1)/2 bound");
  for (int n : {50, 100, 200, 400}) {
    if (n > maxInner) break;
    // Independent 2-sensor gates: every candidate pares to single blocks.
    eblocks::Network net;
    const auto& cat = eblocks::blocks::defaultCatalog();
    for (int i = 0; i < n; ++i) {
      const std::string s = std::to_string(i);
      const auto a = net.addBlock("sa" + s, cat.button());
      const auto b = net.addBlock("sb" + s, cat.button());
      const auto g = net.addBlock("g" + s, cat.or2());
      const auto o = net.addBlock("o" + s, cat.led());
      net.connect(a, 0, g, 0);
      net.connect(b, 0, g, 1);
      net.connect(g, 0, o, 0);
    }
    const eblocks::partition::PartitionProblem problem(net, {});
    const auto run = eblocks::partition::pareDown(problem);
    std::printf("%6d | %10.4fs %14llu %16d\n", n, run.seconds,
                static_cast<unsigned long long>(run.explored),
                n * (n + 1) / 2 + n);
  }
  return 0;
}
