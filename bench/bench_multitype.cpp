// The paper's future-work experiment (Section 6): multiple programmable
// block types with varying costs.  Sweeps option portfolios and cost
// ratios over random designs and reports the achieved network cost.
//
// Usage: bench_multitype [designs-per-point]
#include <cstdio>
#include <cstdlib>

#include "partition/multitype.h"
#include "randgen/generator.h"

using namespace eblocks;
using namespace eblocks::partition;

namespace {

double averageCost(int inner, int designs, const ProgCostModel& model) {
  double total = 0;
  for (int d = 0; d < designs; ++d) {
    const Network net = randgen::randomNetwork(
        {.innerBlocks = inner,
         .seed = static_cast<std::uint32_t>(41 * inner + d)});
    const TypedPartitionRun run = multiTypePareDown(net, model);
    total += run.result.totalCost(static_cast<int>(net.innerBlocks().size()),
                                  model);
  }
  return total / designs;
}

ProgCostModel portfolio(std::initializer_list<ProgBlockOption> options) {
  ProgCostModel m;
  m.options = options;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const int designs = argc > 1 ? std::atoi(argv[1]) : 40;

  std::printf("Multi-type partitioning (paper future work, Section 6); "
              "avg network cost, %d designs/point,\npre-defined block "
              "cost = 1.0\n\n", designs);

  const ProgCostModel only22 = portfolio({{"2x2", 2, 2, 1.5}});
  const ProgCostModel mix = portfolio(
      {{"2x2", 2, 2, 1.5}, {"3x2", 3, 2, 1.9}, {"4x4", 4, 4, 2.6}});
  const ProgCostModel bigOnly = portfolio({{"4x4", 4, 4, 2.6}});

  std::printf("Portfolio sweep:\n");
  std::printf("%5s | %12s %18s %12s\n", "Inner", "only 2x2",
              "2x2 + 3x2 + 4x4", "only 4x4");
  for (int n : {8, 12, 20, 30, 45}) {
    std::printf("%5d | %12.2f %18.2f %12.2f\n", n,
                averageCost(n, designs, only22),
                averageCost(n, designs, mix),
                averageCost(n, designs, bigOnly));
  }

  std::printf("\nCost-ratio sweep (2x2 block, cost relative to a "
              "pre-defined block):\n");
  std::printf("%5s |", "Inner");
  const double ratios[] = {1.1, 1.5, 1.9, 2.5, 3.5};
  for (double r : ratios) std::printf(" %8.1f", r);
  std::printf("\n");
  for (int n : {12, 30}) {
    std::printf("%5d |", n);
    for (double r : ratios) {
      const ProgCostModel m = portfolio({{"2x2", 2, 2, r}});
      std::printf(" %8.2f", averageCost(n, designs, m));
    }
    std::printf("\n");
  }
  std::printf("\n(ratios >= 2 make pair replacements uneconomical; the "
              "curve flattens toward\nthe do-nothing cost, reproducing the "
              "paper's premise that the programmable\nblock must cost less "
              "than two pre-defined blocks.)\n");
  return 0;
}
