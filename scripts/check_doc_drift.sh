#!/usr/bin/env bash
# Doc-drift check: the command tables embedded in the docs must match the
# live shell output, byte for byte.
#
# Docs opt in with a marker comment immediately before a fenced code
# block:
#
#   <!-- doc-drift:help -->        the shell's `help` output
#   <!-- doc-drift:algorithms -->  the shell's `algorithms` output
#   <!-- doc-drift:cache -->       `cache on` + bare `cache` status output
#   <!-- doc-drift:server -->      `eblocksd --help` (docs/server.md)
#   <!-- doc-drift:robustness -->  `eblocksd --failpoints` (docs/robustness.md)
#
# The script replays the command through the shell REPL (or runs the
# daemon binary) and diffs the fenced block against the live output; any
# mismatch fails (non-zero exit), so renaming a command, adding an
# algorithm, or editing a description without updating the docs breaks
# CI.
#
# Usage: scripts/check_doc_drift.sh <path-to-example_shell_repl> \
#            [repo-root] [path-to-eblocksd]
set -euo pipefail

repl=${1:?usage: check_doc_drift.sh <example_shell_repl> [repo-root] [eblocksd]}
root=${2:-$(cd "$(dirname "$0")/.." && pwd)}
# The daemon usually sits next to the examples in the same build tree.
eblocksd=${3:-$(dirname "$repl")/../src/eblocksd}

if [[ ! -x "$repl" ]]; then
  echo "doc-drift: shell binary '$repl' not found or not executable" >&2
  exit 2
fi

# Runs one shell command and prints its output (banner stripped).
live_output() {
  printf '%s\nquit\n' "$1" | "$repl" | grep -v '^eblocks shell'
}

# Prints the fenced code block that follows "<!-- doc-drift:NAME -->".
doc_block() { # file marker
  awk -v marker="<!-- doc-drift:$2 -->" '
    $0 ~ marker { seen = 1; next }
    seen && /^```/ { if (inblock) exit; inblock = 1; next }
    inblock { print }
  ' "$1"
}

fail=0
check() { # file marker command
  local file="$1" marker="$2" command="$3"
  if ! grep -q "<!-- doc-drift:$marker -->" "$file"; then
    echo "doc-drift: marker '$marker' missing from $file" >&2
    fail=1
    return
  fi
  if ! diff -u --label "$file ($marker)" --label "shell '$command' output" \
      <(doc_block "$file" "$marker") <(live_output "$command"); then
    echo "doc-drift: $file block '$marker' is stale" >&2
    fail=1
  fi
}

check "$root/docs/pipeline.md" help help
check "$root/docs/partitioning.md" algorithms algorithms
# The caching guide embeds the `cache` status format (attach, then query
# an empty in-memory store); live_output feeds both lines to one REPL.
check "$root/docs/caching.md" cache $'cache on\ncache'

# The server handbook embeds the daemon's usage text, diffed against the
# binary itself rather than the REPL.
if [[ ! -x "$eblocksd" ]]; then
  echo "doc-drift: daemon binary '$eblocksd' not found or not executable" >&2
  fail=1
elif ! grep -q "<!-- doc-drift:server -->" "$root/docs/server.md"; then
  echo "doc-drift: marker 'server' missing from $root/docs/server.md" >&2
  fail=1
elif ! diff -u --label "docs/server.md (server)" \
    --label "eblocksd --help output" \
    <(doc_block "$root/docs/server.md" server) <("$eblocksd" --help); then
  echo "doc-drift: docs/server.md block 'server' is stale" >&2
  fail=1
fi

# The robustness guide embeds the failpoint catalog: the registered
# sites in the live binary must match the documented list byte for byte,
# so adding a failure site without cataloguing it breaks CI.
if [[ -x "$eblocksd" ]]; then
  if ! grep -q "<!-- doc-drift:robustness -->" "$root/docs/robustness.md"; then
    echo "doc-drift: marker 'robustness' missing from $root/docs/robustness.md" >&2
    fail=1
  elif ! diff -u --label "docs/robustness.md (robustness)" \
      --label "eblocksd --failpoints output" \
      <(doc_block "$root/docs/robustness.md" robustness) \
      <("$eblocksd" --failpoints); then
    echo "doc-drift: docs/robustness.md block 'robustness' is stale" >&2
    fail=1
  fi
fi

# Beyond the embedded registry dump: every registered strategy name must
# be discussed in the partitioning guide's prose (as `name`), so adding
# a strategy without documenting it breaks CI even if the fenced block
# was regenerated.
while read -r name; do
  [[ -z "$name" ]] && continue
  if ! grep -q "\`$name\`" "$root/docs/partitioning.md"; then
    echo "doc-drift: strategy '$name' is registered but never mentioned" \
         "as \`$name\` in docs/partitioning.md" >&2
    fail=1
  fi
done < <(live_output algorithms | awk '{print $1}' | sort -u)

if [[ $fail -ne 0 ]]; then
  echo "doc-drift: FAILED -- update the fenced blocks to match the shell" >&2
  exit 1
fi
echo "doc-drift: docs match the live shell output"
