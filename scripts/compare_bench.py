#!/usr/bin/env python3
"""Diff machine-readable bench output against the committed baseline.

The benches emit "eblocks-bench-partition/1" JSON (see bench/bench_json.h
and docs/benchmarks.md).  This script merges one or more current output
files, compares every *deterministic* record against the baseline by
(bench, workload) key, and prints a GitHub-annotation warning for each
node-count regression beyond the threshold.  Node counts -- not wall
times -- are the signal: deterministic records (seeded serial searches)
reproduce exactly across machines and compilers, so any growth is a real
search regression, not noise.

Regressions WARN, they do not fail the build (exit 0): a legitimate
algorithm change may trade nodes for soundness, and the committed
baseline is updated in the same PR.  Only malformed input exits non-zero.

Usage:
  scripts/compare_bench.py --baseline bench/baselines/BENCH_partition.json \
      [--threshold 0.2] [--merged-out BENCH_partition.json] \
      current1.json [current2.json ...]
"""

import argparse
import json
import sys

SCHEMA = "eblocks-bench-partition/1"


def load_records(path):
    """Returns {(bench, workload): record} from one JSON file."""
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != SCHEMA:
        sys.exit(f"error: {path}: expected schema '{SCHEMA}', "
                 f"got '{doc.get('schema')}'")
    records = {}
    for record in doc.get("records", []):
        key = (record["bench"], record["workload"])
        if key in records:
            sys.exit(f"error: {path}: duplicate record {key}")
        records[key] = record
    return records


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed baseline JSON")
    parser.add_argument("--threshold", type=float, default=0.2,
                        help="warn when nodes grow beyond this fraction "
                             "(default 0.2 = 20%%)")
    parser.add_argument("--merged-out", default=None,
                        help="write the merged current records to this "
                             "path (the CI artifact)")
    parser.add_argument("current", nargs="+",
                        help="bench output files to compare")
    args = parser.parse_args()

    baseline = load_records(args.baseline)
    current = {}
    for path in args.current:
        for key, record in load_records(path).items():
            if key in current:
                sys.exit(f"error: {path}: record {key} already seen in "
                         f"another current file")
            current[key] = record

    if args.merged_out:
        merged = [current[key] for key in sorted(current)]
        with open(args.merged_out, "w", encoding="utf-8") as f:
            json.dump({"schema": SCHEMA, "records": merged}, f, indent=2)
            f.write("\n")
        print(f"merged {len(merged)} records -> {args.merged_out}")

    warnings = 0
    improvements = 0
    compared = 0
    for key, base in sorted(baseline.items()):
        if not base.get("deterministic"):
            continue
        bench, workload = key
        cur = current.get(key)
        if cur is None:
            print(f"::warning::bench {bench} workload '{workload}' missing "
                  f"from current output (bench args changed without "
                  f"updating the baseline?)")
            warnings += 1
            continue
        if not cur.get("deterministic"):
            print(f"::warning::bench {bench} workload '{workload}' is no "
                  f"longer deterministic (timeout during the run?); "
                  f"node comparison skipped")
            warnings += 1
            continue
        compared += 1
        base_nodes, cur_nodes = base["nodes"], cur["nodes"]
        if base_nodes == 0:
            continue
        ratio = cur_nodes / base_nodes
        if ratio > 1.0 + args.threshold:
            print(f"::warning::bench {bench} workload '{workload}': "
                  f"explored nodes regressed {base_nodes} -> {cur_nodes} "
                  f"({ratio:.2f}x, threshold {1 + args.threshold:.2f}x). "
                  f"If intentional, regenerate bench/baselines/ (see "
                  f"docs/benchmarks.md).")
            warnings += 1
        elif ratio < 1.0 - args.threshold:
            print(f"improvement: {bench} '{workload}': "
                  f"{base_nodes} -> {cur_nodes} nodes ({ratio:.2f}x)")
            improvements += 1

    for key in sorted(set(current) - set(baseline)):
        print(f"note: new workload {key} not in the baseline; add it by "
              f"regenerating bench/baselines/")

    print(f"compare_bench: {compared} deterministic workloads compared, "
          f"{improvements} improved, {warnings} warning(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
