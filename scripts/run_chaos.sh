#!/usr/bin/env bash
# Chaos sweep: drive the randomized failpoint schedules in
# tests/integration/chaos_test.cpp across many seeds, one process per
# seed so a crash or hang in one schedule cannot mask the others.
#
# Every failing seed is printed at the end; replay one with
#   EBLOCKS_CHAOS_SEED=<seed> build/tests/integration_tests \
#       --gtest_filter='Chaos.*'
#
# Also smoke-tests the installed daemon's fault-injection surface:
# `eblocksd --failpoints` must list the catalog, and a daemon started
# with an EBLOCKS_FAILPOINTS schedule must come up and shut down
# cleanly on SIGTERM.
#
# Usage: scripts/run_chaos.sh <path-to-integration_tests> [seeds] \
#            [rounds-per-seed] [path-to-eblocksd]
set -uo pipefail

tests=${1:?usage: run_chaos.sh <integration_tests> [seeds] [rounds] [eblocksd]}
seeds=${2:-50}
rounds=${3:-2}
eblocksd=${4:-$(dirname "$tests")/../src/eblocksd}

if [[ ! -x "$tests" ]]; then
  echo "chaos: test binary '$tests' not found or not executable" >&2
  exit 2
fi

failed=()
for ((seed = 1; seed <= seeds; ++seed)); do
  if ! EBLOCKS_CHAOS_SEED=$seed EBLOCKS_CHAOS_ROUNDS=$rounds \
      timeout 600 "$tests" --gtest_filter='Chaos.*' \
      --gtest_brief=1 >/dev/null 2>&1; then
    echo "chaos: seed $seed FAILED" >&2
    failed+=("$seed")
  fi
  if (( seed % 10 == 0 )); then
    echo "chaos: ${seed}/${seeds} seeds done, ${#failed[@]} failed"
  fi
done

# Daemon smoke: the failpoint catalog prints, a bad schedule is refused
# at startup, and a good schedule still yields a clean SIGTERM exit.
if [[ -x "$eblocksd" ]]; then
  if ! "$eblocksd" --failpoints | grep -q '^cache\.fsync'; then
    echo "chaos: eblocksd --failpoints did not list the catalog" >&2
    failed+=("daemon-catalog")
  fi
  if EBLOCKS_FAILPOINTS='no.such.site=error' "$eblocksd" --addr 127.0.0.1:0 \
      >/dev/null 2>&1; then
    echo "chaos: eblocksd accepted an invalid EBLOCKS_FAILPOINTS" >&2
    failed+=("daemon-bad-schedule")
  fi
  EBLOCKS_FAILPOINTS='server.read=partial:8*every-4;cache.fsync=error:eio*once' \
    "$eblocksd" --addr 127.0.0.1:0 >/dev/null 2>&1 &
  daemon=$!
  sleep 1
  if ! kill -0 "$daemon" 2>/dev/null; then
    echo "chaos: eblocksd died under a benign schedule" >&2
    failed+=("daemon-schedule")
  else
    kill -TERM "$daemon"
    if ! wait "$daemon"; then
      echo "chaos: eblocksd did not exit cleanly on SIGTERM" >&2
      failed+=("daemon-sigterm")
    fi
  fi
else
  echo "chaos: skipping daemon smoke ('$eblocksd' not found)"
fi

if (( ${#failed[@]} > 0 )); then
  echo "chaos: FAILED seeds/stages: ${failed[*]}" >&2
  exit 1
fi
echo "chaos: all ${seeds} seeds passed"
