// Differential fuzz verification loop (the PR-6 tentpole): random design
// -> synthesize -> three-way agreement, seeded and reproducible:
//
//   1. original network vs synthesized network, through the bit-parallel
//      batch equivalence checker (sim/batch_equivalence.h);
//   2. synthesized network vs the compiled output of codegen/c_emitter:
//      every programmable block's activations in the scalar simulator are
//      captured (Simulator::setActivationHook) and replayed against the
//      host-compiled C harness in lockstep ('setq' staging + eval/tick).
//
// On a mismatch, the failing round's seed and serialized stimulus script
// are dumped to an artifact file whose path (and content) ctest prints on
// failure; Stimulus::fromText(artifact) replays it (docs/verification.md).
//
// DifferentialFuzz.LongFuzz is the nightly extended sweep: it is skipped
// unless EBLOCKS_LONG_FUZZ is set (the `fuzz.long`-labeled nightly ctest
// entry sets it; see tests/CMakeLists.txt).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "codegen/c_emitter.h"
#include "randgen/generator.h"
#include "sim/batch_equivalence.h"
#include "sim/simulator.h"
#include "synth/synthesizer.h"

namespace eblocks::sim {
namespace {

bool hostCompilerAvailable() {
  return std::system("cc --version > /dev/null 2>&1") == 0;
}

std::string artifactPath() {
  return ::testing::TempDir() + "/eb_fuzz_failure_" +
         ::testing::UnitTest::GetInstance()->current_test_info()->name() +
         "_" + std::to_string(static_cast<long>(::getpid())) + ".txt";
}

/// Writes the repro bundle next to the test and reports it; ctest's
/// --output-on-failure prints both the path and the artifact itself.
void reportFuzzFailure(const FuzzFailure& f, const std::string& where) {
  const std::string path = artifactPath();
  std::ofstream(path) << f.artifact();
  ADD_FAILURE() << where << ": " << f.describe()
                << "\nrepro artifact written to " << path << ":\n"
                << f.artifact();
}

/// Captures one programmable block's activation sequence during a scalar
/// simulation and mirrors it as generated-C harness commands: input-port
/// deltas are staged with quiet 'setq' writes, then a single 'eval' (packet
/// activation) or 'tick' (two-pass tick) runs -- exactly the update
/// granularity the simulator gave the block.  `expected` accumulates the
/// output lines the compiled harness must print.
class LockstepRecorder {
 public:
  LockstepRecorder(const Simulator& sim, BlockId block, int inputs,
                   int outputs)
      : sim_(&sim),
        block_(block),
        outputs_(outputs),
        prevIn_(static_cast<std::size_t>(inputs), 0) {}

  void onActivate(bool isTick) {
    std::vector<std::int64_t> cur(prevIn_.size());
    for (std::size_t k = 0; k < cur.size(); ++k)
      cur[k] = sim_->probe(block_, "in" + std::to_string(k));
    if (!isTick && expectSecondPass_ && cur == prevIn_) {
      // The cascade pass of a two-pass tick: the harness 'tick' command
      // already runs it and prints afterwards.
      expectSecondPass_ = false;
      appendOutputs();
      return;
    }
    expectSecondPass_ = false;
    for (std::size_t k = 0; k < cur.size(); ++k)
      if (cur[k] != prevIn_[k])
        script_ += "setq " + std::to_string(k) + " " +
                   std::to_string(cur[k]) + "\n";
    prevIn_ = cur;
    if (isTick) {
      script_ += "tick\n";
      expectSecondPass_ = true;
    } else {
      script_ += "eval\n";
      appendOutputs();
    }
  }

  const std::string& script() const { return script_; }
  const std::string& expected() const { return expected_; }

 private:
  void appendOutputs() {
    for (int k = 0; k < outputs_; ++k)
      expected_ += std::to_string(sim_->probe(
                       block_, "out" + std::to_string(k))) +
                   (k + 1 == outputs_ ? "\n" : " ");
    if (outputs_ == 0) expected_ += "\n";
  }

  const Simulator* sim_;
  BlockId block_;
  int outputs_;
  std::vector<std::int64_t> prevIn_;
  bool expectSecondPass_ = false;
  std::string script_;
  std::string expected_;
};

/// Compiles `cSource` with the test harness and feeds it `script`;
/// returns stdout (pattern shared with generated_c_test.cpp).
std::string runGeneratedC(const std::string& cSource,
                          const std::string& script, const std::string& tag) {
  const std::string dir = ::testing::TempDir();
  const std::string base =
      dir + "/eb_dfuzz_" + tag + "_" +
      std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream f(base + ".c");
    f << cSource;
  }
  {
    std::ofstream f(base + "_in.txt");
    f << script;
  }
  const std::string compile = "cc -std=c99 -O1 -DEB_TEST_HARNESS -o " + base +
                              " " + base + ".c 2> " + base + "_cc.log";
  if (std::system(compile.c_str()) != 0) {
    std::ifstream log(base + "_cc.log");
    std::stringstream ss;
    ss << log.rdbuf();
    ADD_FAILURE() << "cc failed:\n" << ss.str();
    return {};
  }
  const std::string run = base + " < " + base + "_in.txt > " + base + "_out.txt";
  EXPECT_EQ(std::system(run.c_str()), 0);
  std::ifstream out(base + "_out.txt");
  std::stringstream ss;
  ss << out.rdbuf();
  return ss.str();
}

/// One fuzz round over one random design: synthesize, batch-check the
/// networks, then lockstep every synthesized block against its compiled C.
void runDesignRound(std::uint32_t designSeed, int innerBlocks, int scripts,
                    int events, bool withCompiledC) {
  randgen::GeneratorOptions gen;
  gen.seed = designSeed;
  gen.innerBlocks = innerBlocks;
  const Network original = randgen::randomNetwork(gen);
  const synth::SynthResult synthesized = synth::synthesize(original);

  // Leg 1: original vs synthesized, batch, with a repro artifact on
  // failure.  Seed derivation is shared with randomStimulusCorpus below.
  const std::uint32_t corpusSeed = designSeed * 101u + 3u;
  if (const auto failure = batchFuzzEquivalenceDetailed(
          original, synthesized.network, scripts, events, corpusSeed))
    reportFuzzFailure(*failure,
                      "design seed " + std::to_string(designSeed) +
                          ": original vs synthesized");

  if (!withCompiledC || synthesized.blocks.empty()) return;

  // Leg 2: synthesized network vs compiled C, per programmable block.
  // The same corpus the batch leg generated, replayed scalar with the
  // activation hook recording each block's lockstep script.
  std::vector<LockstepRecorder> recorders;
  std::vector<BlockId> recorderOf(synthesized.network.blockCount(),
                                  kNoBlock);
  Simulator scalar(synthesized.network);
  for (std::size_t i = 0; i < synthesized.blocks.size(); ++i) {
    const auto id = synthesized.network.findBlock(
        synthesized.blocks[i].instanceName);
    ASSERT_TRUE(id.has_value()) << synthesized.blocks[i].instanceName;
    recorderOf[*id] = static_cast<BlockId>(i);
    recorders.emplace_back(scalar, *id,
                           synthesized.blocks[i].merged.inputCount(),
                           synthesized.blocks[i].merged.outputCount());
  }
  scalar.setActivationHook([&](BlockId b, bool isTick) {
    if (recorderOf[b] != kNoBlock) recorders[recorderOf[b]].onActivate(isTick);
  });
  scalar.reset();  // re-run power-up with the hook attached
  for (const Stimulus& script :
       randomStimulusCorpus(original, scripts, events, corpusSeed)) {
    for (const StimulusStep& s : script.steps()) {
      if (s.kind == StimulusStep::Kind::kSetSensor) {
        scalar.setSensor(s.sensor, s.value);
        scalar.settle();
      } else {
        scalar.tick();
      }
    }
  }
  for (std::size_t i = 0; i < synthesized.blocks.size(); ++i) {
    codegen::CEmitOptions emit;
    emit.emitTestHarness = true;
    const std::string c = codegen::emitC(synthesized.blocks[i].merged, emit);
    EXPECT_EQ(runGeneratedC(c, recorders[i].script(),
                            std::to_string(designSeed) + "_" +
                                std::to_string(i)),
              recorders[i].expected())
        << "design seed " << designSeed << ", block "
        << synthesized.blocks[i].instanceName
        << ": compiled C diverged from the simulated synthesized network";
  }
}

TEST(DifferentialFuzz, ThreeWayAgreementOnRandomDesigns) {
  const bool compiledC = hostCompilerAvailable();
  for (std::uint32_t seed = 1; seed <= 6; ++seed)
    runDesignRound(seed, 4 + static_cast<int>(seed % 5), 16, 15, compiledC);
}

TEST(DifferentialFuzz, ArtifactRoundTripsThroughStimulus) {
  // The repro path documented in docs/verification.md: parse the artifact,
  // replay with the scalar checker, observe the same mismatch.
  randgen::GeneratorOptions gen;
  gen.seed = 11;
  gen.innerBlocks = 6;
  const Network original = randgen::randomNetwork(gen);
  const synth::SynthResult synthesized = synth::synthesize(original);
  const auto failure = batchFuzzEquivalenceDetailed(
      original, synthesized.network, 8, 12, 77);
  // Synthesis is behavior-preserving, so normally no failure: exercise the
  // round trip on whichever outcome we got.
  if (failure) {
    const Stimulus replay = Stimulus::fromText(failure->artifact());
    const auto again = checkEquivalence(original, synthesized.network,
                                             replay);
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again->stepIndex, failure->mismatch.stepIndex);
    EXPECT_EQ(again->output, failure->mismatch.output);
  } else {
    EXPECT_FALSE(fuzzEquivalence(original, synthesized.network, 8, 12, 77)
                     .has_value());
  }
}

// Known limitation, pinned so the exclusion list below stays honest:
// synthesis preserves settled values but not transient waveforms (merging
// collapses hop delays), and level/edge-sensitive blocks -- trip,
// trip_reset, toggle's rising-edge detector -- can latch a transient that
// exists only under one delay assignment.  Design seed 107 has exactly
// that shape: a reconvergent fan-in (one branch through an extra delay_1)
// produces a one-instant pulse at a trip input in the original network;
// the merged network never sees the pulse, and the trip outputs diverge
// forever after.  The steady states agree on both sides -- only the
// latched transient differs.  See docs/verification.md, "Known
// limitation: transient capture".
TEST(DifferentialFuzz, TransientLatchDivergenceIsCharacterized) {
  randgen::GeneratorOptions gen;
  gen.seed = 107;
  gen.innerBlocks = 4 + 107 % 12;
  const Network original = randgen::randomNetwork(gen);
  const auto synthesized = synth::synthesize(original);
  const std::uint32_t corpusSeed = 107u * 101u + 3u;
  const auto batch = batchFuzzEquivalenceDetailed(
      original, synthesized.network, kLanes, 30, corpusSeed);
  const auto scalar = fuzzEquivalenceDetailed(original, synthesized.network,
                                              kLanes, 30, corpusSeed);
  ASSERT_TRUE(batch.has_value());
  ASSERT_TRUE(scalar.has_value());
  EXPECT_EQ(batch->round, scalar->round);
  EXPECT_EQ(batch->script, scalar->script);
  EXPECT_EQ(batch->mismatch.stepIndex, scalar->mismatch.stepIndex);
  EXPECT_EQ(batch->mismatch.output, scalar->mismatch.output);
  // The artifact alone reproduces it, deterministically.
  const auto replay = checkEquivalence(original, synthesized.network,
                                       Stimulus::fromText(batch->artifact()));
  ASSERT_TRUE(replay.has_value());
  EXPECT_EQ(replay->stepIndex, batch->mismatch.stepIndex);
}

// Nightly extended sweep (ctest label fuzz.long, CONFIGURATIONS nightly).
// The seed list is every seed in [100, 126] whose design is free of the
// transient-capture hazard characterized above (107 and 122 are the two
// whose verdict legitimately diverges; both are latch-glitch designs).
TEST(DifferentialFuzz, LongFuzz) {
  if (std::getenv("EBLOCKS_LONG_FUZZ") == nullptr)
    GTEST_SKIP() << "set EBLOCKS_LONG_FUZZ=1 (nightly fuzz.long ctest entry)";
  const bool compiledC = hostCompilerAvailable();
  static constexpr std::uint32_t kSeeds[] = {
      100, 101, 102, 103, 104, 105, 106, 108, 109, 110, 111, 112, 113,
      114, 115, 116, 117, 118, 119, 120, 121, 123, 124, 125, 126};
  for (const std::uint32_t seed : kSeeds)
    runDesignRound(seed, 4 + static_cast<int>(seed % 12), kLanes, 30,
                   compiledC);
}

}  // namespace
}  // namespace eblocks::sim
