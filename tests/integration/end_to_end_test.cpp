// Full-pipeline integration tests: capture -> partition -> codegen ->
// synthesized network -> simulation, across algorithms and counting modes.
#include <gtest/gtest.h>

#include "designs/library.h"
#include "io/dot.h"
#include "io/netlist.h"
#include "randgen/generator.h"
#include "sim/equivalence.h"
#include "synth/synthesizer.h"

namespace eblocks {
namespace {

TEST(EndToEnd, NetlistToSynthesizedSimulation) {
  // A user could ship a netlist file; load it, synthesize, simulate.
  const std::string netlist =
      "network press counter\n"
      "block press button\n"
      "block tog1 toggle\n"
      "block tog2 toggle\n"
      "block lamp led\n"
      "connect press.0 tog1.0\n"
      "connect tog1.0 tog2.0\n"
      "connect tog2.0 lamp.0\n";
  const Network original = io::readNetlist(netlist);
  const synth::SynthResult r = synth::synthesize(original);
  EXPECT_EQ(r.innerAfter, 1);

  sim::Simulator simulator(r.network);
  auto press = [&] {
    simulator.apply("press", 1);
    simulator.apply("press", 0);
    return simulator.outputValue("lamp");
  };
  EXPECT_EQ(press(), 1);
  EXPECT_EQ(press(), 1);
  EXPECT_EQ(press(), 0);
  EXPECT_EQ(press(), 0);
}

TEST(EndToEnd, ChainedSynthesisIsIdempotent) {
  // Synthesizing an already-synthesized network finds nothing new: the
  // programmable blocks are not inner blocks.
  const synth::SynthResult first = synth::synthesize(designs::figure5());
  const synth::SynthResult second = synth::synthesize(first.network);
  EXPECT_EQ(second.programmableBlocks, 0);
  EXPECT_EQ(second.network.blockCount(), first.network.blockCount());
}

TEST(EndToEnd, DotExportOfSynthesizedNetworkShowsProgBlocks) {
  const synth::SynthResult r = synth::synthesize(designs::figure5());
  const std::string dot = io::toDot(r.network);
  EXPECT_NE(dot.find("peripheries=2"), std::string::npos);  // programmable
}

TEST(EndToEnd, AllAlgorithmsProduceEquivalentNetworks) {
  const Network original = randgen::randomNetwork({.innerBlocks = 12,
                                                   .seed = 2024});
  for (const char* algorithm : {"paredown", "exhaustive", "aggregation"}) {
    synth::SynthOptions options;
    options.algorithm = algorithm;
    options.engine.timeLimitSeconds = 10;
    const synth::SynthResult r = synth::synthesize(original, options);
    const auto mismatch =
        sim::fuzzEquivalence(original, r.network, 2, 40, 555);
    EXPECT_FALSE(mismatch.has_value())
        << algorithm << ": " << mismatch->describe();
  }
}

TEST(EndToEnd, WiderProgrammableBlocksStayCorrect) {
  // PareDown is a heuristic, so cost monotonicity in the port budget is not
  // guaranteed; correctness is.  Check equivalence and the trivial bound
  // for growing port budgets.
  const Network original = randgen::randomNetwork({.innerBlocks = 15,
                                                   .seed = 77});
  for (int ports = 2; ports <= 4; ++ports) {
    synth::SynthOptions options;
    options.spec.inputs = ports;
    options.spec.outputs = ports;
    const synth::SynthResult r = synth::synthesize(original, options);
    EXPECT_LE(r.innerAfter, r.originalInner) << ports;
    const auto mismatch =
        sim::fuzzEquivalence(original, r.network, 1, 40, 3);
    EXPECT_FALSE(mismatch.has_value()) << mismatch->describe();
  }
}

}  // namespace
}  // namespace eblocks
