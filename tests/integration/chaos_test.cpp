// The chaos harness (docs/robustness.md): randomized failpoint
// schedules against a live in-process daemon over real sockets.
//
// Each round seeds a deterministic schedule generator, arms a random
// mix of failure sites -- benign faults (partial reads/writes, EINTR,
// delays) may recur forever; destructive faults (connection resets,
// ENOSPC, torn cache records) are bounded triggers -- then drives
// concurrent retrying clients through it.  The invariants, every round:
//
//   - no crash, no hang (the test completing under its ctest timeout);
//   - every answered request is BYTE-IDENTICAL to the fault-free
//     baseline -- a torn or corrupt cache record may cost a recompute
//     but may never change an answer;
//   - every accepted job is answered exactly once (checked against the
//     server's counters after the drain);
//   - the server still serves cleanly once the schedule is disarmed.
//
// Failing rounds print their seed: EBLOCKS_CHAOS_SEED replays one seed,
// EBLOCKS_CHAOS_ROUNDS widens the sweep (the nightly soak runs 100;
// scripts/run_chaos.sh sweeps >= 50 seeds across processes).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "../server/server_test_util.h"
#include "core/failpoint.h"
#include "designs/library.h"
#include "server/client.h"
#include "server/server.h"

namespace eblocks::server {
namespace {

namespace fp = core::failpoint;
namespace fs = std::filesystem;
using testutil::paredownRequest;
using testutil::quickOptions;

constexpr int kCallTimeoutMs = 30000;

int envInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value && value[0] ? std::atoi(value) : fallback;
}

struct FailpointGuard {
  FailpointGuard() { fp::clearAll(); }
  ~FailpointGuard() { fp::clearAll(); }
};

/// Deterministic schedule generator: same seed, same schedule, same
/// injected-fault sequence (every random trigger embeds the seed too).
class ScheduleGen {
 public:
  explicit ScheduleGen(std::uint32_t seed) : state_(seed ? seed : 1u) {}

  std::uint32_t next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 17;
    state_ ^= state_ << 5;
    return state_;
  }
  std::uint32_t range(std::uint32_t lo, std::uint32_t hi) {  // inclusive
    return lo + next() % (hi - lo + 1);
  }
  bool chance(std::uint32_t percent) { return next() % 100 < percent; }

  std::string schedule(std::uint32_t seed) {
    std::vector<std::string> entries;
    // Benign faults: may recur for the whole round.  server.poll MUST
    // stay EINTR (any other errno is the loop's unrecoverable exit).
    if (chance(60))
      entries.push_back("server.read=partial:" +
                        std::to_string(range(1, 16)) + "*every-" +
                        std::to_string(range(2, 5)));
    if (chance(60))
      entries.push_back("server.write=partial:" +
                        std::to_string(range(1, 16)) + "*every-" +
                        std::to_string(range(2, 5)));
    if (chance(50))
      entries.push_back("client.send=partial:" +
                        std::to_string(range(1, 8)) + "*every-" +
                        std::to_string(range(2, 5)));
    if (chance(50))
      entries.push_back("client.recv=error:eintr*every-" +
                        std::to_string(range(2, 6)));
    if (chance(40))
      entries.push_back("server.poll=error:eintr*every-" +
                        std::to_string(range(3, 7)));
    if (chance(30))
      entries.push_back("client.recv=delay:" + std::to_string(range(1, 3)) +
                        "*rand-" + std::to_string(range(5, 20)) + "-" +
                        std::to_string(seed));
    // Destructive faults: bounded triggers only, so the round always
    // has a path to completion.
    if (chance(40))
      entries.push_back("client.recv=error:econnreset*times-" +
                        std::to_string(range(1, 2)));
    if (chance(25))
      entries.push_back("client.connect=error*times-" +
                        std::to_string(range(1, 2)));
    if (chance(25))
      entries.push_back("server.accept=error:emfile*once");
    // Cache faults: writes fail (degraded-to-miss), records tear
    // (checksum catches them), reads die (recompute).
    if (chance(50))
      entries.push_back("cache.tmp.write=error:enospc*times-" +
                        std::to_string(range(1, 3)));
    if (chance(30)) entries.push_back("cache.fsync=error:eio*once");
    if (chance(30)) entries.push_back("cache.rename=error:eio*once");
    if (chance(40))
      entries.push_back("cache.tmp.torn=partial:" +
                        std::to_string(range(4, 32)) + "*once");
    if (chance(30))
      entries.push_back("cache.read=error:eio*times-" +
                        std::to_string(range(1, 2)));
    if (chance(20)) entries.push_back("cache.record.decode=error*once");

    std::string joined;
    for (const std::string& entry : entries) {
      if (!joined.empty()) joined += ";";
      joined += entry;
    }
    return joined;
  }

 private:
  std::uint32_t state_;
};

/// The fault-free reference: (request content) -> the two result frames.
struct Baseline {
  SynthRequest request;  ///< id is rewritten per submission
  std::string networkFrame;
  std::string runFrame;
};

TEST(Chaos, RandomizedSchedulesKeepAnswersByteIdentical) {
  const FailpointGuard guard;
  const int rounds = envInt("EBLOCKS_CHAOS_ROUNDS", 5);
  const std::uint32_t baseSeed =
      static_cast<std::uint32_t>(envInt("EBLOCKS_CHAOS_SEED", 1));

  const std::string cacheDir =
      ::testing::TempDir() + "eblocks_chaos_cache";
  fs::remove_all(cacheDir);
  ServerOptions options = quickOptions(2, 8);
  options.cacheEnabled = true;
  options.cacheDir = cacheDir;
  // Replays would mask recomputation: this test wants every submission
  // to run the full pipeline (cache included) under fault and still
  // produce identical bytes.  The replay path gets its own chaos test.
  options.idempotencyBytes = 0;
  Server server(options);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  // Fault-free baselines, computed through the same server (first pass
  // also warms the disk cache, so chaos rounds exercise hits AND the
  // degraded paths when reads fail).
  const auto library = designs::designLibrary();
  ASSERT_GE(library.size(), 3u);
  std::vector<Baseline> baselines;
  {
    Client client;
    ASSERT_TRUE(client.connectTo("127.0.0.1", server.port(), &error))
        << error;
    std::uint64_t id = 1;
    for (int d = 0; d < 3; ++d) {
      SynthRequest request =
          paredownRequest(id++, library[static_cast<std::size_t>(d)].network);
      request.useCache = true;
      const CallResult result = client.call(request, kCallTimeoutMs);
      ASSERT_TRUE(result.ok()) << library[static_cast<std::size_t>(d)].name;
      baselines.push_back(Baseline{request, result.response->networkFrame,
                                   result.response->runFrame});
    }
    SynthRequest exact = paredownRequest(id++, designs::figure5());
    exact.algorithm = "exhaustive";
    exact.useCache = true;
    const CallResult result = client.call(exact, kCallTimeoutMs);
    ASSERT_TRUE(result.ok());
    baselines.push_back(Baseline{exact, result.response->networkFrame,
                                 result.response->runFrame});
  }

  for (int round = 0; round < rounds; ++round) {
    const std::uint32_t seed = baseSeed + static_cast<std::uint32_t>(round);
    ScheduleGen gen(seed * 2654435761u);
    const std::string schedule = gen.schedule(seed);
    SCOPED_TRACE("chaos seed " + std::to_string(seed) + " schedule '" +
                 schedule + "'");
    ASSERT_TRUE(fp::install(schedule, &error)) << error;

    constexpr int kClients = 3;
    constexpr int kRequestsPerClient = 3;
    std::atomic<int> failures{0};
    std::vector<std::thread> workers;
    for (int c = 0; c < kClients; ++c) {
      workers.emplace_back([&, c, seed] {
        Client client;
        std::string connectError;
        RetryPolicy policy;
        policy.maxAttempts = 10;
        policy.initialBackoffMs = 5.0;
        policy.maxBackoffMs = 200.0;
        policy.attemptTimeoutMs = kCallTimeoutMs;
        policy.rngSeed = seed + static_cast<std::uint32_t>(c);
        if (!client.connectTo("127.0.0.1", server.port(), &connectError)) {
          // An injected connect refusal; callWithRetry reconnects.
          client.close();
        }
        for (int i = 0; i < kRequestsPerClient; ++i) {
          const Baseline& base = baselines[static_cast<std::size_t>(
              (c * kRequestsPerClient + i) % static_cast<int>(
                                                 baselines.size()))];
          SynthRequest request = base.request;
          request.id = static_cast<std::uint64_t>(1000 + c * 100 + i);
          const CallResult result = client.callWithRetry(request, policy);
          if (!result.ok()) {
            ++failures;
            ADD_FAILURE() << "chaos seed " << seed << " client " << c
                          << " request " << i << ": "
                          << (result.error ? result.error->message
                                           : "no reply after retries");
            continue;
          }
          // The core invariant: same bytes as the fault-free run.  A
          // cache fault may force a recompute, which legitimately
          // differs in wall-clock seconds -- so the run frame is
          // compared modulo time, like expectBitIdentical does.
          if (result.response->networkFrame != base.networkFrame ||
              testutil::runFrameModuloTime(result.response->runFrame) !=
                  testutil::runFrameModuloTime(base.runFrame)) {
            ++failures;
            ADD_FAILURE() << "chaos seed " << seed
                          << ": answer diverged from baseline";
          }
        }
      });
    }
    for (std::thread& w : workers) w.join();
    fp::clearAll();
    ASSERT_EQ(failures.load(), 0) << "chaos seed " << seed << " failed";
    // Disarmed, the daemon must serve cleanly -- no wedged connection,
    // no leaked queue slot, no poisoned cache.
    testutil::expectServerStillServes(server, designs::figure5());
  }

  server.stop();
  // Exactly-once accounting: every accepted job reached exactly one
  // terminal state.  (Replays are disabled, so completed counts jobs.)
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted,
            stats.completed + stats.cancelled + stats.synthFailed);
  fs::remove_all(cacheDir);
}

TEST(Chaos, ReplayAndLadderStayStableUnderFaults) {
  // The idempotent-replay chaos: ladder answers are wall-clock shaped,
  // so their retry stability rests entirely on the replay table.  Under
  // an aggressive lost-reply schedule, a ladder request submitted once
  // and retried many times must yield ONE payload, byte-stable across
  // every retry and every connection.
  const FailpointGuard guard;
  const int rounds = envInt("EBLOCKS_CHAOS_ROUNDS", 5);
  const std::uint32_t baseSeed =
      static_cast<std::uint32_t>(envInt("EBLOCKS_CHAOS_SEED", 1));

  ServerOptions options = quickOptions(2, 8);
  options.progressIntervalSeconds = 10.0;  // only replies on the wire
  Server server(options);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  for (int round = 0; round < rounds; ++round) {
    const std::uint32_t seed = baseSeed + static_cast<std::uint32_t>(round);
    SCOPED_TRACE("chaos seed " + std::to_string(seed));
    ScheduleGen gen(seed * 0x9e3779b9u);
    // Lost replies, slow dribbling reads, interrupted sends.
    const std::string schedule =
        "client.recv=error:econnreset*times-" +
        std::to_string(gen.range(1, 3)) +
        ";client.send=partial:" + std::to_string(gen.range(2, 8)) +
        "*every-" + std::to_string(gen.range(2, 4)) +
        ";server.write=partial:" + std::to_string(gen.range(4, 12)) +
        "*every-" + std::to_string(gen.range(2, 4));
    ASSERT_TRUE(fp::install(schedule, &error)) << error;

    SynthRequest ladder = paredownRequest(1, designs::figure5());
    ladder.algorithm = "ladder";
    ladder.timeLimitSeconds = 1e-9;  // pinned to the greedy rung

    Client client;
    if (!client.connectTo("127.0.0.1", server.port(), &error)) client.close();
    RetryPolicy policy;
    policy.maxAttempts = 10;
    policy.initialBackoffMs = 5.0;
    policy.attemptTimeoutMs = kCallTimeoutMs;
    policy.rngSeed = seed;

    std::string firstNetworkFrame, firstRunFrame, firstTier;
    for (int attempt = 0; attempt < 4; ++attempt) {
      SynthRequest request = ladder;
      request.id = static_cast<std::uint64_t>(10 * (round + 1) + attempt);
      const CallResult result = client.callWithRetry(request, policy);
      ASSERT_TRUE(result.ok())
          << "chaos seed " << seed << " attempt " << attempt << ": "
          << (result.error ? result.error->message : "no reply");
      if (attempt == 0) {
        firstNetworkFrame = result.response->networkFrame;
        firstRunFrame = result.response->runFrame;
        firstTier = result.response->degradedTier;
        EXPECT_EQ(firstTier, "greedy");
      } else {
        EXPECT_EQ(result.response->networkFrame, firstNetworkFrame);
        EXPECT_EQ(result.response->runFrame, firstRunFrame);
        EXPECT_EQ(result.response->degradedTier, firstTier);
      }
    }
    fp::clearAll();
  }
  EXPECT_GT(server.stats().idempotentReplays, 0u);
  testutil::expectServerStillServes(server, designs::figure5());
}

}  // namespace
}  // namespace eblocks::server
