// Co-simulation of emitted C against the behavior interpreter: the
// generated C program for a synthesized block is compiled with the host
// C compiler and driven with the same input vectors as the interpreter;
// outputs must match step for step.  This is the software stand-in for the
// paper's "compile and download onto the physical PIC block" validation.
#include <gtest/gtest.h>
#include <unistd.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <random>
#include <sstream>

#include "behavior/interpreter.h"
#include "codegen/c_emitter.h"
#include "codegen/merge_program.h"
#include "core/levels.h"
#include "designs/library.h"
#include "synth/synthesizer.h"

namespace eblocks {
namespace {

bool hostCompilerAvailable() {
  return std::system("cc --version > /dev/null 2>&1") == 0;
}

/// Compiles `cSource` (with the test harness enabled) and runs it against
/// `script` (lines of harness commands); returns stdout.  Artifact names
/// carry the test name and pid: `ctest -j` schedules the suites of this
/// binary concurrently with other processes sharing TempDir(), and fixed
/// names let one test execute another's freshly compiled binary.
std::string runGeneratedC(const std::string& cSource,
                          const std::string& script) {
  const std::string dir = ::testing::TempDir();
  const std::string tag =
      std::string("eb_gen_") +
      ::testing::UnitTest::GetInstance()->current_test_info()->name() +
      "_" + std::to_string(static_cast<long>(::getpid()));
  const std::string cPath = dir + "/" + tag + ".c";
  const std::string binPath = dir + "/" + tag;
  const std::string inPath = dir + "/" + tag + "_in.txt";
  const std::string outPath = dir + "/" + tag + "_out.txt";
  {
    std::ofstream f(cPath);
    f << cSource;
  }
  {
    std::ofstream f(inPath);
    f << script;
  }
  const std::string compile =
      "cc -std=c99 -O1 -DEB_TEST_HARNESS -o " + binPath + " " + cPath +
      " 2> " + dir + "/" + tag + "_cc.log";
  if (std::system(compile.c_str()) != 0) {
    std::ifstream log(dir + "/" + tag + "_cc.log");
    std::stringstream ss;
    ss << log.rdbuf();
    ADD_FAILURE() << "cc failed:\n" << ss.str();
    return {};
  }
  const std::string run = binPath + " < " + inPath + " > " + outPath;
  EXPECT_EQ(std::system(run.c_str()), 0);
  std::ifstream out(outPath);
  std::stringstream ss;
  ss << out.rdbuf();
  return ss.str();
}

/// Interpreter reference for the same command script.
std::string runInterpreter(const codegen::MergedProgram& merged,
                           const std::string& script) {
  behavior::Environment env;
  for (int i = 0; i < merged.inputCount(); ++i)
    env.set("in" + std::to_string(i), 0);
  for (int i = 0; i < merged.outputCount(); ++i)
    env.set("out" + std::to_string(i), 0);
  env.set("tick", 0);
  behavior::initializeState(merged.program, env);
  std::istringstream in(script);
  std::ostringstream out;
  std::string cmd;
  while (in >> cmd) {
    if (cmd == "set") {
      int port, value;
      in >> port >> value;
      env.set("in" + std::to_string(port), value);
      env.set("tick", 0);
    } else if (cmd == "tick") {
      // Mirror the harness: tick pass followed by cascade pass.
      env.set("tick", 1);
      behavior::execute(merged.program, env);
      env.set("tick", 0);
    } else {  // eval
      env.set("tick", 0);
    }
    behavior::execute(merged.program, env);
    for (int k = 0; k < merged.outputCount(); ++k)
      out << env.get("out" + std::to_string(k))
          << (k + 1 == merged.outputCount() ? '\n' : ' ');
    if (merged.outputCount() == 0) out << '\n';
  }
  return out.str();
}

std::string randomScript(int inputs, int steps, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::ostringstream out;
  for (int i = 0; i < steps; ++i) {
    const int kind = static_cast<int>(rng() % 4);
    if (kind == 0 || inputs == 0) {
      out << (kind == 1 ? "eval\n" : "tick\n");
    } else {
      out << "set " << rng() % static_cast<unsigned>(inputs) << " "
          << rng() % 2 << "\n";
    }
  }
  return out.str();
}

class GeneratedC : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!hostCompilerAvailable()) GTEST_SKIP() << "no host C compiler";
  }
};

TEST_F(GeneratedC, Figure5PartitionsMatchInterpreter) {
  const Network net = designs::figure5();
  const synth::SynthResult r = synth::synthesize(net);
  ASSERT_EQ(r.blocks.size(), 2u);
  for (const auto& block : r.blocks) {
    codegen::CEmitOptions options;
    options.emitTestHarness = true;
    const std::string c = codegen::emitC(block.merged, options);
    const std::string script =
        randomScript(block.merged.inputCount(), 400, 0xC0FFEE);
    EXPECT_EQ(runGeneratedC(c, script), runInterpreter(block.merged, script))
        << block.instanceName;
  }
}

TEST_F(GeneratedC, WholeLibrarySpotChecks) {
  int checked = 0;
  for (const auto& entry : designs::designLibrary()) {
    const synth::SynthResult r = synth::synthesize(entry.network);
    if (r.blocks.empty()) continue;
    const auto& block = r.blocks.front();
    codegen::CEmitOptions options;
    options.emitTestHarness = true;
    const std::string c = codegen::emitC(block.merged, options);
    const std::string script =
        randomScript(block.merged.inputCount(), 200,
                     static_cast<std::uint32_t>(checked) + 17u);
    EXPECT_EQ(runGeneratedC(c, script), runInterpreter(block.merged, script))
        << entry.name;
    if (++checked >= 4) break;  // keep the suite fast
  }
  EXPECT_GT(checked, 0);
}

}  // namespace
}  // namespace eblocks
