#include "shell/shell.h"

#include <gtest/gtest.h>

#include <sstream>

namespace eblocks::shell {
namespace {

std::string runScript(const std::string& script) {
  Shell shell;
  std::istringstream in(script);
  std::ostringstream out;
  shell.run(in, out);
  return out.str();
}

std::string exec(Shell& shell, const std::string& line) {
  std::ostringstream out;
  shell.execute(line, out);
  return out.str();
}

TEST(Shell, BuildSimulateByHand) {
  const std::string out = runScript(
      "new demo\n"
      "block s button\n"
      "block inv not\n"
      "block lamp led\n"
      "connect s.0 inv.0\n"
      "connect inv.0 lamp.0\n"
      "sim\n"
      "outputs\n"
      "set s 1\n");
  EXPECT_NE(out.find("new design 'demo'"), std::string::npos);
  EXPECT_NE(out.find("placed inv (not)"), std::string::npos);
  EXPECT_NE(out.find("lamp = 1"), std::string::npos);  // after power-up
  EXPECT_NE(out.find("lamp = 0"), std::string::npos);  // after set s 1
}

TEST(Shell, LoadLibraryDesignAndSynthesize) {
  const std::string out = runScript(
      "design Podium Timer 3\n"
      "synth paredown 2 2\n"
      "use synth\n"
      "sim\n"
      "outputs\n");
  EXPECT_NE(out.find("loaded 'Podium Timer 3' (12 blocks, 8 inner)"),
            std::string::npos);
  EXPECT_NE(out.find("8 -> 3"), std::string::npos);
  EXPECT_NE(out.find("green_led = 0"), std::string::npos);
}

TEST(Shell, PressAndTickDriveSequentialLogic) {
  Shell shell;
  exec(shell, "design Podium Timer 3");
  exec(shell, "sim");
  exec(shell, "press start_button");
  std::string out;
  for (int i = 0; i < 12; ++i) out = exec(shell, "tick");
  EXPECT_NE(out.find("green_led = 1"), std::string::npos) << out;
}

TEST(Shell, ProbeReadsInternals) {
  Shell shell;
  exec(shell, "design Podium Timer 3");
  exec(shell, "sim");
  exec(shell, "press start_button");
  const std::string out = exec(shell, "probe running q");
  EXPECT_NE(out.find("running.q = 1"), std::string::npos) << out;
}

TEST(Shell, EmitCForSynthesizedBlock) {
  Shell shell;
  exec(shell, "design Garage Open At Night");
  // byName doesn't include Garage; expect an error message instead.
  const std::string err = exec(shell, "report");
  EXPECT_NE(err.find("error"), std::string::npos);

  exec(shell, "design Ignition Illuminator");
  exec(shell, "synth");
  const std::string c = exec(shell, "emitc prog0");
  EXPECT_NE(c.find("eb_eval"), std::string::npos);
  EXPECT_NE(c.find("#include <stdint.h>"), std::string::npos);
}

TEST(Shell, NetlistRoundTripThroughShell) {
  Shell shell;
  exec(shell, "design Two Button Light");
  const std::string netlist = exec(shell, "netlist");
  EXPECT_NE(netlist.find("network Two Button Light"), std::string::npos);
  EXPECT_NE(netlist.find("block light_state toggle"), std::string::npos);
}

TEST(Shell, ValidateReportsProblems) {
  Shell shell;
  exec(shell, "new partial");
  exec(shell, "block s button");
  exec(shell, "block g and2");
  exec(shell, "connect s.0 g.0");
  const std::string out = exec(shell, "validate");
  EXPECT_NE(out.find("problem:"), std::string::npos);
}

TEST(Shell, ErrorsAreReportedNotThrown) {
  Shell shell;
  EXPECT_NE(exec(shell, "block x warp_core").find("error"),
            std::string::npos);
  EXPECT_NE(exec(shell, "connect a.0 b.0").find("error"), std::string::npos);
  EXPECT_NE(exec(shell, "design No Such Design").find("error"),
            std::string::npos);
  EXPECT_NE(exec(shell, "frobnicate").find("unknown command"),
            std::string::npos);
  EXPECT_NE(exec(shell, "use synth").find("error"), std::string::npos);
  EXPECT_NE(exec(shell, "synth bogus").find("error"), std::string::npos);
}

TEST(Shell, AlgorithmsListsRegistry) {
  Shell shell;
  const std::string out = exec(shell, "algorithms");
  EXPECT_NE(out.find("paredown"), std::string::npos);
  EXPECT_NE(out.find("exhaustive"), std::string::npos);
  EXPECT_NE(out.find("aggregation"), std::string::npos);
}

TEST(Shell, SynthByRegistryNameWithThreads) {
  Shell shell;
  exec(shell, "design Podium Timer 3");
  const std::string out = exec(shell, "synth exhaustive 2 2 2");
  EXPECT_NE(out.find("exhaustive"), std::string::npos) << out;
  EXPECT_NE(out.find("8 -> 3"), std::string::npos) << out;
}

TEST(Shell, SynthSchedulerArgument) {
  Shell shell;
  exec(shell, "design Podium Timer 3");
  // Both schedulers reach the identical optimum; bogus names error out.
  const std::string steal = exec(shell, "synth exhaustive 2 2 2 steal");
  EXPECT_NE(steal.find("8 -> 3"), std::string::npos) << steal;
  const std::string split =
      exec(shell, "synth exhaustive 2 2 2 fixed-split");
  EXPECT_NE(split.find("8 -> 3"), std::string::npos) << split;
  EXPECT_NE(exec(shell, "synth exhaustive 2 2 2 bogus").find("error"),
            std::string::npos);
  // The scheduler is positional but must also parse when the numeric
  // groups are omitted -- and bad names must error, not pass silently.
  const std::string noThreads =
      exec(shell, "synth exhaustive 2 2 fixed-split");
  EXPECT_NE(noThreads.find("8 -> 3"), std::string::npos) << noThreads;
  const std::string bare = exec(shell, "synth exhaustive steal");
  EXPECT_NE(bare.find("8 -> 3"), std::string::npos) << bare;
  EXPECT_NE(exec(shell, "synth exhaustive 2 2 bogus").find("error"),
            std::string::npos);
  // A half-given ports group must error, not silently default.
  EXPECT_NE(exec(shell, "synth exhaustive 3 steal").find("usage"),
            std::string::npos);
}

TEST(Shell, SynthPruningFlagArgument) {
  Shell shell;
  exec(shell, "design Podium Timer 3");
  // Both settings reach the identical optimum; the flag parses with and
  // without the numeric groups, in either order with the scheduler.
  const std::string on = exec(shell, "synth exhaustive 2 2 2 prune");
  EXPECT_NE(on.find("8 -> 3"), std::string::npos) << on;
  const std::string off = exec(shell, "synth exhaustive 2 2 2 no-prune");
  EXPECT_NE(off.find("8 -> 3"), std::string::npos) << off;
  const std::string bare = exec(shell, "synth exhaustive no-prune");
  EXPECT_NE(bare.find("8 -> 3"), std::string::npos) << bare;
  const std::string both = exec(shell, "synth exhaustive 2 2 2 steal prune");
  EXPECT_NE(both.find("8 -> 3"), std::string::npos) << both;
  const std::string swapped =
      exec(shell, "synth exhaustive 2 2 2 prune steal");
  EXPECT_NE(swapped.find("8 -> 3"), std::string::npos) << swapped;
}

TEST(Shell, SynthHeuristicKeywordArguments) {
  Shell shell;
  exec(shell, "design Podium Timer 3");
  // The heuristic strategies parse by name and accept the trailing
  // keywords in any order, mixed with the PR 4 scheduler/pruning words.
  const std::string fm = exec(shell, "synth fm");
  EXPECT_NE(fm.find("(fm)"), std::string::npos) << fm;
  const std::string greedy = exec(shell, "synth greedy 2 2");
  EXPECT_NE(greedy.find("(greedy)"), std::string::npos) << greedy;
  const std::string lns =
      exec(shell, "synth lns limit=5 pocket=4 rounds=6");
  EXPECT_NE(lns.find("(lns)"), std::string::npos) << lns;
  const std::string swapped =
      exec(shell, "synth lns rounds=6 limit=5 pocket=4");
  EXPECT_NE(swapped.find("(lns)"), std::string::npos) << swapped;
  const std::string mixed =
      exec(shell, "synth exhaustive 2 2 2 limit=5 steal prune");
  EXPECT_NE(mixed.find("8 -> 3"), std::string::npos) << mixed;
}

TEST(Shell, SynthHeuristicKeywordErrorPaths) {
  Shell shell;
  exec(shell, "design Podium Timer 3");
  // Bad values error out; so do duplicates -- never a silent default.
  EXPECT_NE(exec(shell, "synth lns limit=abc").find("error: limit="),
            std::string::npos);
  EXPECT_NE(exec(shell, "synth lns limit=-1").find("error: limit="),
            std::string::npos);
  EXPECT_NE(exec(shell, "synth lns pocket=2x").find("error: pocket="),
            std::string::npos);
  EXPECT_NE(exec(shell, "synth lns pocket=-4").find("error: pocket="),
            std::string::npos);
  EXPECT_NE(exec(shell, "synth lns rounds=").find("error: rounds="),
            std::string::npos);
  EXPECT_NE(exec(shell, "synth lns limit=5 limit=6")
                .find("error: unknown synth option"),
            std::string::npos);
  EXPECT_NE(exec(shell, "synth lns pocket=4 pocket=4")
                .find("error: unknown synth option"),
            std::string::npos);
  // None of the failed parses may have run a synthesis.
  EXPECT_NE(exec(shell, "report").find("error: no synthesis has run"),
            std::string::npos);
}

TEST(Shell, SynthArgumentErrorPaths) {
  Shell shell;
  exec(shell, "design Podium Timer 3");
  // Unknown algorithm name.
  EXPECT_NE(exec(shell, "synth warp-speed").find("error: unknown algorithm"),
            std::string::npos);
  // Negative thread count.
  EXPECT_NE(exec(shell, "synth exhaustive 2 2 -3").find(
                "error: thread count"),
            std::string::npos);
  // Unknown trailing keyword (neither a scheduler nor a pruning flag).
  EXPECT_NE(exec(shell, "synth exhaustive 2 2 2 frobnicate")
                .find("error: unknown synth option"),
            std::string::npos);
  // Duplicate keywords must error, not silently override.
  EXPECT_NE(exec(shell, "synth exhaustive steal split")
                .find("error: unknown synth option"),
            std::string::npos);
  EXPECT_NE(exec(shell, "synth exhaustive prune no-prune")
                .find("error: unknown synth option"),
            std::string::npos);
  // A half-given ports group still errors with usage.
  EXPECT_NE(exec(shell, "synth exhaustive 3 prune").find("usage"),
            std::string::npos);
  // None of the failed parses may have run a synthesis.
  EXPECT_NE(exec(shell, "report").find("error: no synthesis has run"),
            std::string::npos);
}

TEST(Shell, QuitStopsExecution) {
  Shell shell;
  std::ostringstream out;
  EXPECT_TRUE(shell.execute("help", out));
  EXPECT_FALSE(shell.execute("quit", out));
}

TEST(Shell, UseSourceSwitchesBack) {
  Shell shell;
  exec(shell, "design Ignition Illuminator");
  exec(shell, "synth");
  EXPECT_NE(exec(shell, "use synth").find("_synth"), std::string::npos);
  EXPECT_EQ(exec(shell, "use source").find("_synth"), std::string::npos);
}

TEST(Shell, DotExportsActiveNetwork) {
  Shell shell;
  exec(shell, "design Ignition Illuminator");
  EXPECT_NE(exec(shell, "dot").find("digraph"), std::string::npos);
}

TEST(Shell, CommentsAndBlankLinesIgnored) {
  const std::string out = runScript("# a comment\n\nhelp\n");
  EXPECT_NE(out.find("commands:"), std::string::npos);
}

}  // namespace
}  // namespace eblocks::shell
