// Semantic tests of every catalog behavior, executed directly through the
// interpreter with a tiny activation harness (mirroring the simulator's
// contract but without packets).
#include <gtest/gtest.h>

#include "behavior/interpreter.h"
#include "behavior/parser.h"
#include "blocks/catalog.h"

namespace eblocks::blocks {
namespace {

/// Interpreter harness for a single block type.
class BlockHarness {
 public:
  explicit BlockHarness(const BlockTypePtr& type)
      : type_(type), program_(behavior::parse(type->behaviorSource())) {
    for (int i = 0; i < type_->inputCount(); ++i)
      env_.set(type_->inputName(i), 0);
    for (int i = 0; i < type_->outputCount(); ++i)
      env_.set(type_->outputName(i), 0);
    env_.set("tick", 0);
    if (type_->blockClass() == BlockClass::kSensor) env_.set("env", 0);
    behavior::initializeState(program_, env_);
  }

  void in(const std::string& port, std::int64_t v) { env_.set(port, v); }

  std::int64_t eval() {
    env_.set("tick", 0);
    behavior::execute(program_, env_);
    return type_->outputCount() > 0 ? env_.get(type_->outputName(0)) : 0;
  }

  std::int64_t tick() {
    env_.set("tick", 1);
    behavior::execute(program_, env_);
    return type_->outputCount() > 0 ? env_.get(type_->outputName(0)) : 0;
  }

  std::int64_t out(int port = 0) { return env_.get(type_->outputName(port)); }
  std::int64_t var(const std::string& name) { return env_.get(name); }

 private:
  BlockTypePtr type_;
  behavior::Program program_;
  behavior::Environment env_;
};

TEST(Semantics, SensorForwardsEnv) {
  BlockHarness h(defaultCatalog().button());
  h.in("env", 1);
  EXPECT_EQ(h.eval(), 1);
  h.in("env", 0);
  EXPECT_EQ(h.eval(), 0);
}

TEST(Semantics, OutputBlockRecordsDisplay) {
  BlockHarness h(defaultCatalog().led());
  h.in("a", 1);
  h.eval();
  EXPECT_EQ(h.var("display"), 1);
}

struct Gate2Case {
  const char* name;
  int expected[4];  // f(00), f(01), f(10), f(11)
};

class Gate2Semantics : public ::testing::TestWithParam<Gate2Case> {};

TEST_P(Gate2Semantics, TruthTable) {
  const Gate2Case& c = GetParam();
  BlockHarness h(defaultCatalog().get(c.name));
  int idx = 0;
  for (int a = 0; a <= 1; ++a)
    for (int b = 0; b <= 1; ++b) {
      h.in("a", a);
      h.in("b", b);
      EXPECT_EQ(h.eval(), c.expected[idx]) << c.name << "(" << a << "," << b
                                           << ")";
      ++idx;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, Gate2Semantics,
    ::testing::Values(Gate2Case{"and2", {0, 0, 0, 1}},
                      Gate2Case{"or2", {0, 1, 1, 1}},
                      Gate2Case{"xor2", {0, 1, 1, 0}},
                      Gate2Case{"nand2", {1, 1, 1, 0}},
                      Gate2Case{"nor2", {1, 0, 0, 0}}),
    [](const auto& paramInfo) { return paramInfo.param.name; });

TEST(Semantics, Logic2ArbitraryTable) {
  // tt = 0b1001 (XNOR): f(0,0)=1, f(0,1)=0, f(1,0)=0, f(1,1)=1.
  BlockHarness h(defaultCatalog().logic2(0b1001));
  const int want[2][2] = {{1, 0}, {0, 1}};
  for (int a = 0; a <= 1; ++a)
    for (int b = 0; b <= 1; ++b) {
      h.in("a", a);
      h.in("b", b);
      EXPECT_EQ(h.eval(), want[a][b]);
    }
}

TEST(Semantics, Logic3AllTablesSpotCheck) {
  // majority3: out = 1 iff at least two inputs are 1.
  BlockHarness h(defaultCatalog().majority3());
  for (int a = 0; a <= 1; ++a)
    for (int b = 0; b <= 1; ++b)
      for (int c = 0; c <= 1; ++c) {
        h.in("a", a);
        h.in("b", b);
        h.in("c", c);
        EXPECT_EQ(h.eval(), (a + b + c >= 2) ? 1 : 0);
      }
}

TEST(Semantics, NotAndYes) {
  BlockHarness inv(defaultCatalog().inverter());
  inv.in("a", 0);
  EXPECT_EQ(inv.eval(), 1);
  inv.in("a", 1);
  EXPECT_EQ(inv.eval(), 0);
  BlockHarness buf(defaultCatalog().buffer());
  buf.in("a", 1);
  EXPECT_EQ(buf.eval(), 1);
}

TEST(Semantics, ToggleFlipsOnRisingEdgeOnly) {
  BlockHarness h(defaultCatalog().toggle());
  h.in("a", 1);
  EXPECT_EQ(h.eval(), 1);
  EXPECT_EQ(h.eval(), 1);  // still high: no new edge
  h.in("a", 0);
  EXPECT_EQ(h.eval(), 1);
  h.in("a", 1);
  EXPECT_EQ(h.eval(), 0);
}

TEST(Semantics, TripLatchesForever) {
  BlockHarness h(defaultCatalog().trip());
  EXPECT_EQ(h.eval(), 0);
  h.in("a", 1);
  EXPECT_EQ(h.eval(), 1);
  h.in("a", 0);
  EXPECT_EQ(h.eval(), 1);  // latched
}

TEST(Semantics, TripResetClears) {
  BlockHarness h(defaultCatalog().tripReset());
  h.in("a", 1);
  EXPECT_EQ(h.eval(), 1);
  h.in("a", 0);
  h.in("r", 1);
  EXPECT_EQ(h.eval(), 0);
  h.in("r", 0);
  EXPECT_EQ(h.eval(), 0);
}

TEST(Semantics, PulseGeneratorShape) {
  BlockHarness h(defaultCatalog().pulseGen(3));
  h.in("a", 1);
  EXPECT_EQ(h.eval(), 1);  // pulse starts on rising edge
  h.in("a", 0);
  EXPECT_EQ(h.eval(), 1);
  EXPECT_EQ(h.tick(), 1);  // count 3 -> 2
  EXPECT_EQ(h.tick(), 1);  // 2 -> 1
  EXPECT_EQ(h.tick(), 0);  // 1 -> 0: pulse ends
  EXPECT_EQ(h.tick(), 0);
}

TEST(Semantics, PulseRetriggersOnNewEdge) {
  BlockHarness h(defaultCatalog().pulseGen(2));
  h.in("a", 1);
  h.eval();
  h.tick();
  h.in("a", 0);
  h.eval();
  h.in("a", 1);
  EXPECT_EQ(h.eval(), 1);  // restarted
  EXPECT_EQ(h.tick(), 1);
  EXPECT_EQ(h.tick(), 0);
}

TEST(Semantics, DelayFollowsAfterStablePeriod) {
  BlockHarness h(defaultCatalog().delay(3));
  h.in("a", 1);
  EXPECT_EQ(h.eval(), 0);  // change noticed; countdown starts
  EXPECT_EQ(h.tick(), 0);  // 2 left
  EXPECT_EQ(h.tick(), 0);  // 1 left
  EXPECT_EQ(h.tick(), 1);  // stable for 3 ticks: output follows
  h.in("a", 0);
  EXPECT_EQ(h.eval(), 1);
  EXPECT_EQ(h.tick(), 1);
  EXPECT_EQ(h.tick(), 1);
  EXPECT_EQ(h.tick(), 0);
}

TEST(Semantics, DelayRestartsOnFlap) {
  BlockHarness h(defaultCatalog().delay(2));
  h.in("a", 1);
  h.eval();
  h.tick();           // 1 left
  h.in("a", 0);
  h.eval();           // flap: countdown restarts targeting 0
  h.in("a", 1);
  h.eval();           // restart again targeting 1
  EXPECT_EQ(h.out(), 0);
  h.tick();
  EXPECT_EQ(h.tick(), 1);
}

TEST(Semantics, ZeroDelayActsCombinational) {
  BlockHarness h(defaultCatalog().delay(0));
  h.in("a", 1);
  EXPECT_EQ(h.eval(), 1);
  h.in("a", 0);
  EXPECT_EQ(h.eval(), 0);
}

TEST(Semantics, ProlongerHoldsAfterFall) {
  BlockHarness h(defaultCatalog().prolonger(2));
  h.in("a", 1);
  EXPECT_EQ(h.eval(), 1);
  h.in("a", 0);
  EXPECT_EQ(h.eval(), 1);  // held
  EXPECT_EQ(h.tick(), 1);  // 1 left
  EXPECT_EQ(h.tick(), 0);  // expired
}

TEST(Semantics, ProlongerRearmsWhileHigh) {
  BlockHarness h(defaultCatalog().prolonger(2));
  h.in("a", 1);
  h.eval();
  h.in("a", 0);
  h.tick();
  h.in("a", 1);
  h.eval();  // recharges the hold counter
  h.in("a", 0);
  EXPECT_EQ(h.eval(), 1);
  EXPECT_EQ(h.tick(), 1);
  EXPECT_EQ(h.tick(), 0);
}

TEST(Semantics, SplitterCopiesToAllPorts) {
  BlockHarness h(defaultCatalog().splitter(3));
  h.in("a", 1);
  h.eval();
  EXPECT_EQ(h.out(0), 1);
  EXPECT_EQ(h.out(1), 1);
  EXPECT_EQ(h.out(2), 1);
}

TEST(Semantics, CommunicationBlockIsIdentity) {
  BlockHarness h(defaultCatalog().rfLink());
  h.in("a", 1);
  EXPECT_EQ(h.eval(), 1);
  h.in("a", 0);
  EXPECT_EQ(h.eval(), 0);
}

}  // namespace
}  // namespace eblocks::blocks
