#include "blocks/catalog.h"

#include <gtest/gtest.h>

#include "behavior/parser.h"

namespace eblocks::blocks {
namespace {

TEST(Catalog, SensorsHaveNoInputsOneOutput) {
  const Catalog& cat = defaultCatalog();
  for (const char* name :
       {"button", "contact_switch", "light_sensor", "motion_sensor",
        "sound_sensor", "magnetic_sensor", "temperature_sensor"}) {
    const BlockTypePtr t = cat.get(name);
    EXPECT_EQ(t->blockClass(), BlockClass::kSensor) << name;
    EXPECT_EQ(t->inputCount(), 0) << name;
    EXPECT_EQ(t->outputCount(), 1) << name;
  }
}

TEST(Catalog, OutputsHaveOneInputNoOutputs) {
  const Catalog& cat = defaultCatalog();
  for (const char* name : {"led", "beeper", "relay"}) {
    const BlockTypePtr t = cat.get(name);
    EXPECT_EQ(t->blockClass(), BlockClass::kOutput) << name;
    EXPECT_EQ(t->inputCount(), 1) << name;
    EXPECT_EQ(t->outputCount(), 0) << name;
  }
}

TEST(Catalog, CombinationalGatesAreNotSequential) {
  const Catalog& cat = defaultCatalog();
  for (const char* name : {"and2", "or2", "xor2", "nand2", "nor2", "not",
                           "yes", "and3", "or3", "majority3"}) {
    EXPECT_FALSE(cat.get(name)->sequential()) << name;
    EXPECT_EQ(cat.get(name)->blockClass(), BlockClass::kCompute) << name;
  }
}

TEST(Catalog, SequentialBlocksAreMarked) {
  const Catalog& cat = defaultCatalog();
  for (const char* name : {"toggle", "trip", "trip_reset"})
    EXPECT_TRUE(cat.get(name)->sequential()) << name;
  EXPECT_TRUE(cat.delay(5)->sequential());
  EXPECT_TRUE(cat.pulseGen(3)->sequential());
  EXPECT_TRUE(cat.prolonger(4)->sequential());
}

TEST(Catalog, AllBehaviorsParse) {
  const Catalog& cat = defaultCatalog();
  for (const std::string& name : cat.names())
    EXPECT_NO_THROW(behavior::parse(cat.get(name)->behaviorSource())) << name;
}

TEST(Catalog, ParameterizedTypesAreCachedByName) {
  const Catalog& cat = defaultCatalog();
  EXPECT_EQ(cat.delay(5).get(), cat.delay(5).get());
  EXPECT_NE(cat.delay(5).get(), cat.delay(6).get());
  EXPECT_EQ(cat.delay(5)->name(), "delay_5");
}

TEST(Catalog, GetResolvesParameterizedNames) {
  const Catalog& cat = defaultCatalog();
  EXPECT_EQ(cat.get("delay_7").get(), cat.delay(7).get());
  EXPECT_EQ(cat.get("pulse_3").get(), cat.pulseGen(3).get());
  EXPECT_EQ(cat.get("prolong_2").get(), cat.prolonger(2).get());
  EXPECT_EQ(cat.get("logic2_6").get(), cat.logic2(6).get());
  EXPECT_EQ(cat.get("logic3_128").get(), cat.logic3(128).get());
  EXPECT_EQ(cat.get("prog_2x2").get(), cat.programmable(2, 2).get());
}

TEST(Catalog, UnknownNameThrows) {
  EXPECT_THROW(defaultCatalog().get("warp_core"), std::out_of_range);
  EXPECT_THROW(defaultCatalog().get("delay_x"), std::out_of_range);
}

TEST(Catalog, TruthTableBoundsChecked) {
  EXPECT_THROW(defaultCatalog().logic2(16), std::invalid_argument);
  EXPECT_THROW(defaultCatalog().logic3(256), std::invalid_argument);
}

TEST(Catalog, ParameterValidation) {
  EXPECT_THROW(defaultCatalog().delay(-1), std::invalid_argument);
  EXPECT_THROW(defaultCatalog().pulseGen(0), std::invalid_argument);
  EXPECT_THROW(defaultCatalog().prolonger(0), std::invalid_argument);
  EXPECT_THROW(defaultCatalog().splitter(4), std::invalid_argument);
  EXPECT_THROW(defaultCatalog().programmable(0, 1), std::invalid_argument);
}

TEST(Catalog, ProgrammableBlockShape) {
  const BlockTypePtr p = defaultCatalog().programmable(2, 2);
  EXPECT_TRUE(p->programmable());
  EXPECT_EQ(p->inputCount(), 2);
  EXPECT_EQ(p->outputCount(), 2);
  EXPECT_EQ(p->inputName(0), "in0");
  EXPECT_EQ(p->outputName(1), "out1");
  EXPECT_TRUE(p->behaviorSource().empty());
}

TEST(Catalog, SplitterShapes) {
  const BlockTypePtr s2 = defaultCatalog().splitter(2);
  EXPECT_EQ(s2->inputCount(), 1);
  EXPECT_EQ(s2->outputCount(), 2);
  const BlockTypePtr s3 = defaultCatalog().splitter(3);
  EXPECT_EQ(s3->outputCount(), 3);
}

TEST(Catalog, CommunicationBlocksAreWires) {
  const Catalog& cat = defaultCatalog();
  for (const char* name : {"rf_link", "x10_link"}) {
    const BlockTypePtr t = cat.get(name);
    EXPECT_EQ(t->blockClass(), BlockClass::kCommunication) << name;
    EXPECT_EQ(t->inputCount(), 1) << name;
    EXPECT_EQ(t->outputCount(), 1) << name;
  }
}

TEST(BlockType, ClassInvariantsEnforced) {
  EXPECT_THROW(BlockType("bad", BlockClass::kSensor, {"a"}, {"out"}, ""),
               std::invalid_argument);
  EXPECT_THROW(BlockType("bad", BlockClass::kOutput, {"a"}, {"out"}, ""),
               std::invalid_argument);
  EXPECT_THROW(BlockType("bad", BlockClass::kSensor, {}, {"out"}, "", false,
                         /*programmable=*/true),
               std::invalid_argument);
}

}  // namespace
}  // namespace eblocks::blocks
