// The failpoint subsystem: schedule grammar, trigger semantics, the
// zero-cost disabled fast path, and the install/clear lifecycle.
#include "core/failpoint.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <string>

namespace eblocks::core::failpoint {
namespace {

// Every test starts and ends disarmed; the suite must never leak an
// armed site into another test binary's process state.
class Failpoint : public ::testing::Test {
 protected:
  void SetUp() override { clearAll(); }
  void TearDown() override { clearAll(); }
};

TEST_F(Failpoint, DisabledCheckIsFalsy) {
  EXPECT_FALSE(check(name::kCacheRename));
  EXPECT_FALSE(check(name::kServerRead));
  // Unknown names are fine at check() time (the load short-circuits);
  // only install/set validate against the catalog.
  EXPECT_FALSE(check("no.such.site"));
}

TEST_F(Failpoint, SetFiresAndClearStops) {
  Spec spec;
  spec.mode = Mode::kError;
  spec.arg = EIO;
  ASSERT_TRUE(set(name::kCacheRename, spec));
  const Hit hit = check(name::kCacheRename);
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit.mode, Mode::kError);
  EXPECT_EQ(hit.arg, static_cast<std::uint64_t>(EIO));
  // Other sites stay cold.
  EXPECT_FALSE(check(name::kCacheFsync));
  clear(name::kCacheRename);
  EXPECT_FALSE(check(name::kCacheRename));
}

TEST_F(Failpoint, RejectsUnknownSiteAndBadSpec) {
  Spec spec;
  spec.mode = Mode::kError;
  EXPECT_FALSE(set("no.such.site", spec));
  Spec zeroPartial;
  zeroPartial.mode = Mode::kPartial;
  zeroPartial.arg = 0;  // a 0-byte clamp would turn writes into EOFs
  EXPECT_FALSE(set(name::kServerRead, zeroPartial));
  EXPECT_FALSE(check(name::kServerRead));
}

TEST_F(Failpoint, OnceTriggerFiresExactlyOnce) {
  ASSERT_TRUE(install("cache.rename=error:eio*once"));
  EXPECT_TRUE(check(name::kCacheRename));
  EXPECT_FALSE(check(name::kCacheRename));
  EXPECT_FALSE(check(name::kCacheRename));
}

TEST_F(Failpoint, TimesTriggerFiresFirstN) {
  ASSERT_TRUE(install("server.read=error:eintr*times-3"));
  int fired = 0;
  for (int i = 0; i < 10; ++i)
    if (check(name::kServerRead)) ++fired;
  EXPECT_EQ(fired, 3);
}

TEST_F(Failpoint, EveryNTriggerIsPeriodic) {
  ASSERT_TRUE(install("client.recv=partial:1*every-3"));
  // Fires on the 3rd, 6th, 9th, 12th evaluation.
  int fired = 0;
  for (int i = 0; i < 12; ++i)
    if (check(name::kClientRecv)) ++fired;
  EXPECT_EQ(fired, 4);
}

TEST_F(Failpoint, RandomTriggerIsSeededAndDeterministic) {
  ASSERT_TRUE(install("server.write=error:epipe*rand-50-7"));
  std::string pattern1;
  for (int i = 0; i < 64; ++i)
    pattern1 += check(name::kServerWrite) ? '1' : '0';
  clearAll();
  ASSERT_TRUE(install("server.write=error:epipe*rand-50-7"));
  std::string pattern2;
  for (int i = 0; i < 64; ++i)
    pattern2 += check(name::kServerWrite) ? '1' : '0';
  EXPECT_EQ(pattern1, pattern2) << "same seed must replay the same faults";
  EXPECT_NE(pattern1.find('1'), std::string::npos);
  EXPECT_NE(pattern1.find('0'), std::string::npos);
}

TEST_F(Failpoint, ScheduleInstallsMultipleEntriesAtomically) {
  ASSERT_TRUE(install(
      "cache.fsync=error:enospc*once;server.read=partial:2;client.send=off"));
  EXPECT_TRUE(check(name::kCacheFsync));
  const Hit partial = check(name::kServerRead);
  ASSERT_TRUE(partial);
  EXPECT_EQ(partial.mode, Mode::kPartial);
  EXPECT_EQ(partial.arg, 2u);
  EXPECT_FALSE(check(name::kClientSend));

  // A bad entry anywhere rejects the whole schedule: nothing changes.
  clearAll();
  std::string error;
  EXPECT_FALSE(install("server.read=partial:2;bogus.site=error", &error));
  EXPECT_NE(error.find("bogus.site"), std::string::npos) << error;
  EXPECT_FALSE(check(name::kServerRead));
}

TEST_F(Failpoint, InstallParsesNamedAndNumericErrnos) {
  ASSERT_TRUE(install("server.accept=error:econnaborted"));
  EXPECT_EQ(check(name::kServerAccept).arg,
            static_cast<std::uint64_t>(ECONNABORTED));
  ASSERT_TRUE(install("server.accept=error:11"));
  EXPECT_EQ(check(name::kServerAccept).arg, 11u);
  std::string error;
  EXPECT_FALSE(install("server.accept=error:notanerrno", &error));
}

TEST_F(Failpoint, OffEntryDisarmsASite) {
  ASSERT_TRUE(install("cache.read=error:eio"));
  EXPECT_TRUE(check(name::kCacheRead));
  ASSERT_TRUE(install("cache.read=off"));
  EXPECT_FALSE(check(name::kCacheRead));
}

TEST_F(Failpoint, StatsCountEvaluationsAndTriggers) {
  const SiteStats before = stats(name::kIoReadNetwork);
  ASSERT_TRUE(install("io.read.network=error*times-2"));
  for (int i = 0; i < 5; ++i) (void)check(name::kIoReadNetwork);
  const SiteStats after = stats(name::kIoReadNetwork);
  EXPECT_EQ(after.evaluations - before.evaluations, 5u);
  EXPECT_EQ(after.triggers - before.triggers, 2u);
}

TEST_F(Failpoint, DelayHitSleeps) {
  ASSERT_TRUE(install("client.recv=delay:30*once"));
  const Hit hit = check(name::kClientRecv);
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit.mode, Mode::kDelay);
  const auto t0 = std::chrono::steady_clock::now();
  sleepFor(hit);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_GE(elapsed.count(), 25);
  // sleepFor() ignores non-delay hits.
  Hit errorHit;
  errorHit.mode = Mode::kError;
  sleepFor(errorHit);  // returns immediately; the test would hang otherwise
}

TEST_F(Failpoint, CatalogIsSortedAndMatchesKnown) {
  const auto& entries = catalog();
  ASSERT_FALSE(entries.empty());
  for (std::size_t i = 1; i < entries.size(); ++i)
    EXPECT_LT(entries[i - 1].name, entries[i].name);
  for (const auto& entry : entries) {
    EXPECT_TRUE(known(entry.name)) << entry.name;
    EXPECT_FALSE(entry.description.empty()) << entry.name;
  }
  EXPECT_FALSE(known("no.such.site"));
}

TEST_F(Failpoint, InstallFromEnvHonorsUnsetAndBadValues) {
  ::unsetenv("EBLOCKS_FAILPOINTS");
  EXPECT_TRUE(installFromEnv());
  ::setenv("EBLOCKS_FAILPOINTS", "cache.rename=error:eio*once", 1);
  EXPECT_TRUE(installFromEnv());
  EXPECT_TRUE(check(name::kCacheRename));
  clearAll();
  ::setenv("EBLOCKS_FAILPOINTS", "garbage", 1);
  std::string error;
  EXPECT_FALSE(installFromEnv(&error));
  EXPECT_FALSE(error.empty());
  ::unsetenv("EBLOCKS_FAILPOINTS");
}

}  // namespace
}  // namespace eblocks::core::failpoint
