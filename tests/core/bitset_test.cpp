#include "core/bitset.h"

#include <gtest/gtest.h>

#include <random>
#include <set>

namespace eblocks {
namespace {

TEST(BitSet, StartsEmpty) {
  BitSet s(100);
  EXPECT_EQ(s.size(), 100u);
  EXPECT_EQ(s.count(), 0u);
  EXPECT_TRUE(s.none());
  EXPECT_FALSE(s.any());
  EXPECT_EQ(s.findFirst(), 100u);
}

TEST(BitSet, SetResetTest) {
  BitSet s(70);
  s.set(0);
  s.set(63);
  s.set(64);
  s.set(69);
  EXPECT_TRUE(s.test(0));
  EXPECT_TRUE(s.test(63));
  EXPECT_TRUE(s.test(64));
  EXPECT_TRUE(s.test(69));
  EXPECT_FALSE(s.test(1));
  EXPECT_EQ(s.count(), 4u);
  s.reset(63);
  EXPECT_FALSE(s.test(63));
  EXPECT_EQ(s.count(), 3u);
}

TEST(BitSet, FindFirstCrossesWords) {
  BitSet s(200);
  s.set(130);
  EXPECT_EQ(s.findFirst(), 130u);
  s.set(64);
  EXPECT_EQ(s.findFirst(), 64u);
  s.set(3);
  EXPECT_EQ(s.findFirst(), 3u);
}

TEST(BitSet, UnionIntersectionDifference) {
  BitSet a(128), b(128);
  a.set(1);
  a.set(100);
  b.set(100);
  b.set(127);
  BitSet u = a;
  u |= b;
  EXPECT_EQ(u.toVector(), (std::vector<std::uint32_t>{1, 100, 127}));
  BitSet i = a;
  i &= b;
  EXPECT_EQ(i.toVector(), (std::vector<std::uint32_t>{100}));
  BitSet d = a;
  d.andNot(b);
  EXPECT_EQ(d.toVector(), (std::vector<std::uint32_t>{1}));
}

TEST(BitSet, EqualityIncludesUniverseSize) {
  BitSet a(10), b(10), c(11);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  a.set(3);
  EXPECT_FALSE(a == b);
  b.set(3);
  EXPECT_EQ(a, b);
}

TEST(BitSet, ClearRemovesEverything) {
  BitSet s(66);
  s.set(2);
  s.set(65);
  s.clear();
  EXPECT_TRUE(s.none());
  EXPECT_EQ(s.size(), 66u);
}

TEST(BitSet, ForEachVisitsAscending) {
  BitSet s(300);
  const std::vector<std::uint32_t> want = {0, 5, 64, 128, 255, 299};
  for (auto v : want) s.set(v);
  std::vector<std::uint32_t> got;
  s.forEach([&](std::size_t i) { got.push_back(static_cast<std::uint32_t>(i)); });
  EXPECT_EQ(got, want);
}

TEST(BitSet, RandomizedAgainstStdSet) {
  std::mt19937 rng(42);
  const std::size_t n = 257;
  BitSet s(n);
  std::set<std::size_t> ref;
  for (int step = 0; step < 2000; ++step) {
    const std::size_t i = rng() % n;
    if (rng() & 1) {
      s.set(i);
      ref.insert(i);
    } else {
      s.reset(i);
      ref.erase(i);
    }
    ASSERT_EQ(s.count(), ref.size());
    ASSERT_EQ(s.findFirst(), ref.empty() ? n : *ref.begin());
  }
  std::vector<std::uint32_t> want(ref.begin(), ref.end());
  EXPECT_EQ(s.toVector(), want);
}

}  // namespace
}  // namespace eblocks
