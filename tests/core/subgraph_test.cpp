#include "core/subgraph.h"

#include <gtest/gtest.h>

#include "blocks/catalog.h"
#include "designs/library.h"

namespace eblocks {
namespace {

using blocks::defaultCatalog;

BitSet setOf(const Network& net, std::initializer_list<BlockId> ids) {
  BitSet s = net.emptySet();
  for (BlockId b : ids) s.set(b);
  return s;
}

// Figure-5 ids: paper node k = id k-1.
constexpr BlockId N(int paperNode) { return static_cast<BlockId>(paperNode - 1); }

class SubgraphFigure5 : public ::testing::Test {
 protected:
  Network net = designs::figure5();
};

TEST_F(SubgraphFigure5, CountIoEdgesFullInnerSet) {
  const BitSet all = net.innerSet();
  const IoCount io = countIo(net, all, CountingMode::kEdges);
  EXPECT_EQ(io.inputs, 2);   // 1->2, 1->5
  EXPECT_EQ(io.outputs, 3);  // 7->10, 8->11, 9->12 ("three outputs")
}

TEST_F(SubgraphFigure5, CountIoEdgesPartition2345) {
  const BitSet p = setOf(net, {N(2), N(3), N(4), N(5)});
  const IoCount io = countIo(net, p, CountingMode::kEdges);
  EXPECT_EQ(io.inputs, 2);   // 1->2, 1->5
  EXPECT_EQ(io.outputs, 2);  // 3->7, 5->6
}

TEST_F(SubgraphFigure5, CountIoSignalsSharesFanout) {
  // Node 1 drives nodes 2 and 5: two edges but one signal.
  const BitSet all = net.innerSet();
  const IoCount io = countIo(net, all, CountingMode::kSignals);
  EXPECT_EQ(io.inputs, 1);
  EXPECT_EQ(io.outputs, 3);
}

TEST_F(SubgraphFigure5, CountIoSignalsInternalFanoutStillCounts) {
  // {6}: node 6 drives 8 and 9 (both outside) from one port -> 1 signal out,
  // but 2 edges.
  const BitSet p = setOf(net, {N(6)});
  EXPECT_EQ(countIo(net, p, CountingMode::kSignals).outputs, 1);
  EXPECT_EQ(countIo(net, p, CountingMode::kEdges).outputs, 2);
}

TEST_F(SubgraphFigure5, BorderBlocksOfFullInnerSet) {
  const BitSet all = net.innerSet();
  EXPECT_EQ(borderBlocks(net, all),
            (std::vector<BlockId>{N(2), N(8), N(9)}));
}

TEST_F(SubgraphFigure5, BorderAfterRemoving9) {
  BitSet p = net.innerSet();
  p.reset(N(9));
  EXPECT_EQ(borderBlocks(net, p), (std::vector<BlockId>{N(2), N(8)}));
}

TEST_F(SubgraphFigure5, RanksMatchFigure5a) {
  const BitSet all = net.innerSet();
  EXPECT_EQ(removalRank(net, all, N(2)), 1);
  EXPECT_EQ(removalRank(net, all, N(8)), 1);
  EXPECT_EQ(removalRank(net, all, N(9)), 0);
}

TEST_F(SubgraphFigure5, RanksMatchFigure5c) {
  BitSet p = net.innerSet();
  p.reset(N(9));
  p.reset(N(8));
  EXPECT_EQ(removalRank(net, p, N(6)), -1);
  EXPECT_EQ(removalRank(net, p, N(7)), -1);
}

TEST_F(SubgraphFigure5, ConvexSets) {
  EXPECT_TRUE(isConvex(net, net.innerSet()));
  EXPECT_TRUE(isConvex(net, setOf(net, {N(2), N(3), N(4), N(5)})));
  EXPECT_TRUE(isConvex(net, setOf(net, {N(6), N(8), N(9)})));
  // {2,3} is not convex: 2 -> 4 -> 3 runs through node 4.
  EXPECT_FALSE(isConvex(net, setOf(net, {N(2), N(3)})));
  // {6,8} is convex even though 7 also feeds 8 (no path 6..7..8 exits and
  // re-enters from inside the set).
  EXPECT_TRUE(isConvex(net, setOf(net, {N(6), N(8)})));
}

TEST(Subgraph, BorderDefinitionBothDirections) {
  // a -> b -> c; {b}: both neighbors outside; a: inputs vacuously outside.
  const auto& cat = defaultCatalog();
  Network net;
  const BlockId s = net.addBlock("s", cat.button());
  const BlockId a = net.addBlock("a", cat.inverter());
  const BlockId b = net.addBlock("b", cat.inverter());
  const BlockId c = net.addBlock("c", cat.inverter());
  const BlockId o = net.addBlock("o", cat.led());
  net.connect(s, 0, a, 0);
  net.connect(a, 0, b, 0);
  net.connect(b, 0, c, 0);
  net.connect(c, 0, o, 0);
  BitSet abc = net.emptySet();
  abc.set(a);
  abc.set(b);
  abc.set(c);
  // a: every input (from s) outside -> border.  c: every output outside ->
  // border.  b: both sides inside -> not border.
  EXPECT_TRUE(isBorderBlock(net, abc, a));
  EXPECT_FALSE(isBorderBlock(net, abc, b));
  EXPECT_TRUE(isBorderBlock(net, abc, c));
}

TEST(Subgraph, RankIsCutDelta) {
  // Removing a block with x outside edges and y inside edges changes the
  // partition cut by y - x.  Verify directly against countIo.
  const Network net = designs::figure5();
  BitSet p = net.innerSet();
  const IoCount before = countIo(net, p, CountingMode::kEdges);
  const int rank = removalRank(net, p, N(9));
  BitSet after = p;
  after.reset(N(9));
  const IoCount ioAfter = countIo(net, after, CountingMode::kEdges);
  EXPECT_EQ((ioAfter.inputs + ioAfter.outputs) -
                (before.inputs + before.outputs),
            rank);
}

TEST(Subgraph, NonConvexThroughOutsideBlock) {
  // a -> x -> b plus a -> b would make {a, b} convex only if x were inside.
  const auto& cat = defaultCatalog();
  Network net;
  const BlockId s = net.addBlock("s", cat.button());
  const BlockId a = net.addBlock("a", cat.splitter(2));
  const BlockId x = net.addBlock("x", cat.inverter());
  const BlockId b = net.addBlock("b", cat.and2());
  const BlockId o = net.addBlock("o", cat.led());
  net.connect(s, 0, a, 0);
  net.connect(a, 0, x, 0);
  net.connect(a, 1, b, 0);
  net.connect(x, 0, b, 1);
  net.connect(b, 0, o, 0);
  BitSet ab = net.emptySet();
  ab.set(a);
  ab.set(b);
  EXPECT_FALSE(isConvex(net, ab));
  BitSet axb = ab;
  axb.set(x);
  EXPECT_TRUE(isConvex(net, axb));
}

TEST(Subgraph, CountingModeToString) {
  EXPECT_STREQ(toString(CountingMode::kEdges), "edges");
  EXPECT_STREQ(toString(CountingMode::kSignals), "signals");
}

}  // namespace
}  // namespace eblocks
