#include "core/network.h"

#include <gtest/gtest.h>

#include "blocks/catalog.h"

namespace eblocks {
namespace {

using blocks::defaultCatalog;

Network chain3() {
  const auto& cat = defaultCatalog();
  Network net("chain");
  const BlockId s = net.addBlock("s", cat.button());
  const BlockId a = net.addBlock("a", cat.inverter());
  const BlockId b = net.addBlock("b", cat.buffer());
  const BlockId o = net.addBlock("o", cat.led());
  net.connect(s, 0, a, 0);
  net.connect(a, 0, b, 0);
  net.connect(b, 0, o, 0);
  return net;
}

TEST(Network, AddBlockAssignsDenseIds) {
  Network net;
  const auto& cat = defaultCatalog();
  EXPECT_EQ(net.addBlock("x", cat.button()), 0u);
  EXPECT_EQ(net.addBlock("y", cat.led()), 1u);
  EXPECT_EQ(net.blockCount(), 2u);
  EXPECT_EQ(net.block(0).name, "x");
}

TEST(Network, EmptyNameGetsGenerated) {
  Network net;
  const BlockId b = net.addBlock("", defaultCatalog().button());
  EXPECT_EQ(net.block(b).name, "button_0");
}

TEST(Network, DuplicateNameRejected) {
  Network net;
  net.addBlock("x", defaultCatalog().button());
  EXPECT_THROW(net.addBlock("x", defaultCatalog().led()),
               std::invalid_argument);
}

TEST(Network, NullTypeRejected) {
  Network net;
  EXPECT_THROW(net.addBlock("x", nullptr), std::invalid_argument);
}

TEST(Network, ConnectValidatesPorts) {
  Network net;
  const auto& cat = defaultCatalog();
  const BlockId s = net.addBlock("s", cat.button());
  const BlockId g = net.addBlock("g", cat.and2());
  EXPECT_NO_THROW(net.connect(s, 0, g, 0));
  EXPECT_THROW(net.connect(s, 1, g, 1), std::invalid_argument);  // no out 1
  EXPECT_THROW(net.connect(s, 0, g, 2), std::invalid_argument);  // no in 2
  EXPECT_THROW(net.connect(s, 0, g, 0), std::invalid_argument);  // re-driven
}

TEST(Network, ConnectIntoSensorRejected) {
  Network net;
  const auto& cat = defaultCatalog();
  const BlockId s1 = net.addBlock("s1", cat.button());
  const BlockId s2 = net.addBlock("s2", cat.button());
  // Sensors have no input ports, so any port index is out of range.
  EXPECT_THROW(net.connect(s1, 0, s2, 0), std::invalid_argument);
}

TEST(Network, SelfLoopRejected) {
  Network net;
  const BlockId g = net.addBlock("g", defaultCatalog().and2());
  EXPECT_THROW(net.connect(g, 0, g, 1), std::invalid_argument);
}

TEST(Network, DriverAndFanout) {
  Network net = chain3();
  const BlockId a = *net.findBlock("a");
  const BlockId b = *net.findBlock("b");
  const auto drv = net.driverOf(b, 0);
  ASSERT_TRUE(drv.has_value());
  EXPECT_EQ(drv->from.block, a);
  const auto fan = net.fanoutOf(a, 0);
  ASSERT_EQ(fan.size(), 1u);
  EXPECT_EQ(fan[0].to.block, b);
  EXPECT_FALSE(net.driverOf(a, 0)->from.block == b);
}

TEST(Network, Classification) {
  Network net = chain3();
  EXPECT_TRUE(net.isSensor(*net.findBlock("s")));
  EXPECT_TRUE(net.isOutput(*net.findBlock("o")));
  EXPECT_TRUE(net.isInner(*net.findBlock("a")));
  EXPECT_FALSE(net.isInner(*net.findBlock("s")));
  EXPECT_EQ(net.innerBlocks().size(), 2u);
  EXPECT_EQ(net.innerSet().count(), 2u);
}

TEST(Network, CommunicationBlocksAreNotInner) {
  Network net;
  const auto& cat = defaultCatalog();
  const BlockId s = net.addBlock("s", cat.button());
  const BlockId rf = net.addBlock("rf", cat.rfLink());
  const BlockId o = net.addBlock("o", cat.led());
  net.connect(s, 0, rf, 0);
  net.connect(rf, 0, o, 0);
  EXPECT_FALSE(net.isInner(rf));
  EXPECT_TRUE(net.innerBlocks().empty());
}

TEST(Network, ProgrammableBlocksAreNotInner) {
  Network net;
  const BlockId p = net.addBlock("p", defaultCatalog().programmable(2, 2));
  EXPECT_FALSE(net.isInner(p));
}

TEST(Network, TopoOrderRespectsEdges) {
  Network net = chain3();
  const auto order = net.topoOrder();
  ASSERT_EQ(order.size(), 4u);
  std::vector<std::size_t> pos(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (const Connection& c : net.connections())
    EXPECT_LT(pos[c.from.block], pos[c.to.block]);
}

TEST(Network, IndegreeOutdegree) {
  Network net = chain3();
  const BlockId a = *net.findBlock("a");
  EXPECT_EQ(net.indegree(a), 1);
  EXPECT_EQ(net.outdegree(a), 1);
  EXPECT_EQ(net.indegree(*net.findBlock("s")), 0);
}

TEST(Network, ValidateCleanNetwork) {
  EXPECT_TRUE(chain3().validate().empty());
}

TEST(Network, ValidateFindsUnconnectedInput) {
  Network net;
  const auto& cat = defaultCatalog();
  const BlockId s = net.addBlock("s", cat.button());
  const BlockId g = net.addBlock("g", cat.and2());
  const BlockId o = net.addBlock("o", cat.led());
  net.connect(s, 0, g, 0);
  net.connect(g, 0, o, 0);
  const auto problems = net.validate();
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("'b' of 'g'"), std::string::npos);
}

TEST(Network, ValidateFindsDanglingBlock) {
  Network net;
  const auto& cat = defaultCatalog();
  const BlockId s = net.addBlock("s", cat.button());
  const BlockId inv = net.addBlock("inv", cat.inverter());
  net.connect(s, 0, inv, 0);
  const auto problems = net.validate();
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("drives nothing"), std::string::npos);
}

TEST(Network, FindBlock) {
  Network net = chain3();
  EXPECT_TRUE(net.findBlock("a").has_value());
  EXPECT_FALSE(net.findBlock("nope").has_value());
}

}  // namespace
}  // namespace eblocks
