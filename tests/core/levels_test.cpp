#include "core/levels.h"

#include <gtest/gtest.h>

#include "blocks/catalog.h"
#include "designs/library.h"

namespace eblocks {
namespace {

using blocks::defaultCatalog;

TEST(Levels, ChainLevelsIncrease) {
  const auto& cat = defaultCatalog();
  Network net;
  const BlockId s = net.addBlock("s", cat.button());
  const BlockId a = net.addBlock("a", cat.inverter());
  const BlockId b = net.addBlock("b", cat.buffer());
  const BlockId o = net.addBlock("o", cat.led());
  net.connect(s, 0, a, 0);
  net.connect(a, 0, b, 0);
  net.connect(b, 0, o, 0);
  const auto lv = computeLevels(net);
  EXPECT_EQ(lv[s], 0);
  EXPECT_EQ(lv[a], 1);
  EXPECT_EQ(lv[b], 2);
  EXPECT_EQ(lv[o], 3);
}

TEST(Levels, ReconvergenceKeepsGreatestLevel) {
  // s -> a -> g and s -> g: g must take the longer path's level.
  const auto& cat = defaultCatalog();
  Network net;
  const BlockId s = net.addBlock("s", cat.button());
  const BlockId a = net.addBlock("a", cat.inverter());
  const BlockId g = net.addBlock("g", cat.and2());
  const BlockId o = net.addBlock("o", cat.led());
  net.connect(s, 0, a, 0);
  net.connect(s, 0, g, 0);
  net.connect(a, 0, g, 1);
  net.connect(g, 0, o, 0);
  const auto lv = computeLevels(net);
  EXPECT_EQ(lv[g], 2);  // via a, not the direct sensor edge
}

TEST(Levels, Figure5Levels) {
  // Paper node k = id k-1.  Longest paths from the sensor:
  //   2:1, 4:2, 3:3, 7:4, 5:2, 6:3, 8:5, 9:4.
  const Network net = designs::figure5();
  const auto lv = computeLevels(net);
  EXPECT_EQ(lv[0], 0);   // sensor (node 1)
  EXPECT_EQ(lv[1], 1);   // node 2
  EXPECT_EQ(lv[2], 3);   // node 3
  EXPECT_EQ(lv[3], 2);   // node 4
  EXPECT_EQ(lv[4], 2);   // node 5
  EXPECT_EQ(lv[5], 3);   // node 6
  EXPECT_EQ(lv[6], 4);   // node 7
  EXPECT_EQ(lv[7], 5);   // node 8
  EXPECT_EQ(lv[8], 4);   // node 9
}

TEST(Levels, MultipleSensorsAllLevelZero) {
  const auto& cat = defaultCatalog();
  Network net;
  const BlockId s1 = net.addBlock("s1", cat.button());
  const BlockId s2 = net.addBlock("s2", cat.button());
  const BlockId g = net.addBlock("g", cat.or2());
  const BlockId o = net.addBlock("o", cat.led());
  net.connect(s1, 0, g, 0);
  net.connect(s2, 0, g, 1);
  net.connect(g, 0, o, 0);
  const auto lv = computeLevels(net);
  EXPECT_EQ(lv[s1], 0);
  EXPECT_EQ(lv[s2], 0);
  EXPECT_EQ(lv[g], 1);
}

}  // namespace
}  // namespace eblocks
