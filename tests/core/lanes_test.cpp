#include "core/lanes.h"

#include <gtest/gtest.h>

namespace eblocks {
namespace {

TEST(Lanes, FirstLanesMask) {
  EXPECT_EQ(firstLanes(0), 0u);
  EXPECT_EQ(firstLanes(1), 1u);
  EXPECT_EQ(firstLanes(3), 0b111u);
  EXPECT_EQ(firstLanes(kLanes), kAllLanes);
}

TEST(Lanes, DefaultIsPackedZero) {
  const LaneVector v;
  EXPECT_TRUE(v.packed());
  EXPECT_EQ(v.bits(), 0u);
  for (int i = 0; i < kLanes; ++i) EXPECT_EQ(v.lane(i), 0);
}

TEST(Lanes, SplatStaysPackedForBits) {
  EXPECT_TRUE(LaneVector::splat(0).packed());
  EXPECT_TRUE(LaneVector::splat(1).packed());
  EXPECT_EQ(LaneVector::splat(1).bits(), kAllLanes);
  const LaneVector wide = LaneVector::splat(42);
  EXPECT_FALSE(wide.packed());
  EXPECT_EQ(wide.lane(0), 42);
  EXPECT_EQ(wide.lane(kLanes - 1), 42);
}

TEST(Lanes, SetLaneWidensOnlyWhenNeeded) {
  LaneVector v;
  v.setLane(3, 1);
  EXPECT_TRUE(v.packed());
  EXPECT_EQ(v.bits(), 0b1000u);
  v.setLane(5, 7);
  EXPECT_FALSE(v.packed());
  EXPECT_EQ(v.lane(3), 1);
  EXPECT_EQ(v.lane(5), 7);
  EXPECT_EQ(v.lane(4), 0);
}

TEST(Lanes, TruthyCoversBothForms) {
  LaneVector v = LaneVector::fromBits(0b101u);
  EXPECT_EQ(v.truthy(), 0b101u);
  v.setLane(4, -9);
  EXPECT_EQ(v.truthy(), 0b10101u);
}

TEST(Lanes, MergeFromPackedStaysPacked) {
  LaneVector dst = LaneVector::fromBits(0b1100u);
  dst.mergeFrom(LaneVector::fromBits(0b0011u), 0b0101u);
  EXPECT_TRUE(dst.packed());
  EXPECT_EQ(dst.bits(), 0b1001u);
}

TEST(Lanes, MergeFromMixedWidens) {
  LaneVector dst = LaneVector::fromBits(0b11u);
  dst.mergeFrom(LaneVector::splat(5), LaneMask{1} << 1);
  EXPECT_FALSE(dst.packed());
  EXPECT_EQ(dst.lane(0), 1);
  EXPECT_EQ(dst.lane(1), 5);
  EXPECT_EQ(dst.lane(2), 0);
}

TEST(Lanes, LaneDiffPackedAndWide) {
  const LaneVector a = LaneVector::fromBits(0b0110u);
  const LaneVector b = LaneVector::fromBits(0b1100u);
  EXPECT_EQ(laneDiff(a, b), 0b1010u);
  LaneVector w = a;
  w.setLane(10, 3);
  EXPECT_EQ(laneDiff(w, a), LaneMask{1} << 10);
  EXPECT_EQ(laneDiff(w, w), 0u);
}

TEST(Lanes, WidenPreservesValues) {
  LaneVector v = LaneVector::fromBits(0b101u);
  v.widen();
  EXPECT_FALSE(v.packed());
  EXPECT_EQ(v.lane(0), 1);
  EXPECT_EQ(v.lane(1), 0);
  EXPECT_EQ(v.lane(2), 1);
  EXPECT_EQ(v.lane(63), 0);
}

TEST(Lanes, SetWideAllowsAliasing) {
  LaneVector v = LaneVector::splat(9);
  v.setWide(v.wide());
  EXPECT_EQ(v.lane(0), 9);
  EXPECT_EQ(v.lane(kLanes - 1), 9);
}

}  // namespace
}  // namespace eblocks
