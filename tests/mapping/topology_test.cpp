#include "mapping/topology.h"

#include <gtest/gtest.h>

namespace eblocks::mapping {
namespace {

TEST(Topology, AddNodesAndLinks) {
  Topology t("house");
  const PhysId a = t.addNode("hall", 2, 2);
  const PhysId b = t.addNode("porch", 1, 1);
  t.addLink(a, b);
  EXPECT_EQ(t.nodeCount(), 2u);
  ASSERT_EQ(t.links().size(), 1u);
  EXPECT_EQ(t.links()[0].from, a);
  EXPECT_EQ(t.links()[0].to, b);
  EXPECT_EQ(t.linksFrom(a).size(), 1u);
  EXPECT_EQ(t.linksInto(b).size(), 1u);
  EXPECT_TRUE(t.linksFrom(b).empty());
}

TEST(Topology, DuplexAddsBothDirections) {
  Topology t;
  const PhysId a = t.addNode("a", 2, 2);
  const PhysId b = t.addNode("b", 2, 2);
  t.addDuplexLink(a, b);
  EXPECT_EQ(t.links().size(), 2u);
  EXPECT_EQ(t.linksFrom(a).size(), 1u);
  EXPECT_EQ(t.linksFrom(b).size(), 1u);
}

TEST(Topology, ParallelCablesAllowed) {
  Topology t;
  const PhysId a = t.addNode("a", 2, 2);
  const PhysId b = t.addNode("b", 2, 2);
  t.addLink(a, b);
  t.addLink(a, b);
  EXPECT_EQ(t.linksFrom(a).size(), 2u);
}

TEST(Topology, Validation) {
  Topology t;
  const PhysId a = t.addNode("a", 2, 2);
  EXPECT_THROW(t.addNode("a", 1, 1), std::invalid_argument);
  EXPECT_THROW(t.addNode("b", -1, 1), std::invalid_argument);
  EXPECT_THROW(t.addLink(a, a), std::invalid_argument);
  EXPECT_THROW(t.addLink(a, 99), std::invalid_argument);
}

TEST(Topology, FindNode) {
  Topology t;
  t.addNode("kitchen", 2, 2);
  EXPECT_TRUE(t.findNode("kitchen").has_value());
  EXPECT_FALSE(t.findNode("attic").has_value());
}

TEST(Topology, LineBuilder) {
  const Topology t = Topology::line(4);
  EXPECT_EQ(t.nodeCount(), 4u);
  EXPECT_EQ(t.links().size(), 6u);  // 3 neighbor pairs, duplex
}

TEST(Topology, RingBuilder) {
  const Topology t = Topology::ring(5);
  EXPECT_EQ(t.nodeCount(), 5u);
  EXPECT_EQ(t.links().size(), 10u);  // 5 pairs, duplex
}

TEST(Topology, GridBuilder) {
  const Topology t = Topology::grid(2, 3);
  EXPECT_EQ(t.nodeCount(), 6u);
  // Edges: horizontal 2*2=4, vertical 3*1=3 -> 7 pairs, duplex = 14.
  EXPECT_EQ(t.links().size(), 14u);
  EXPECT_TRUE(t.findNode("n1_2").has_value());
}

}  // namespace
}  // namespace eblocks::mapping
