#include "mapping/mapper.h"

#include <gtest/gtest.h>

#include "blocks/catalog.h"
#include "designs/library.h"
#include "randgen/generator.h"
#include "synth/synthesizer.h"

namespace eblocks::mapping {
namespace {

using blocks::defaultCatalog;

Network chain3() {
  const auto& cat = defaultCatalog();
  Network net("chain");
  const BlockId s = net.addBlock("s", cat.button());
  const BlockId a = net.addBlock("a", cat.inverter());
  const BlockId o = net.addBlock("o", cat.led());
  net.connect(s, 0, a, 0);
  net.connect(a, 0, o, 0);
  return net;
}

TEST(Mapper, ChainOntoLine) {
  const Network net = chain3();
  const Topology topo = Topology::line(3);
  const auto m = mapNetwork(net, topo);
  ASSERT_TRUE(m.has_value());
  EXPECT_TRUE(verifyMapping(net, topo, *m).empty());
}

TEST(Mapper, ImpossibleWhenTooFewNodes) {
  const Network net = chain3();
  const Topology topo = Topology::line(2);
  EXPECT_FALSE(mapNetwork(net, topo).has_value());
}

TEST(Mapper, ImpossibleWithoutCables) {
  const Network net = chain3();
  Topology topo("island");
  topo.addNode("x", 2, 2);
  topo.addNode("y", 2, 2);
  topo.addNode("z", 2, 2);
  EXPECT_FALSE(mapNetwork(net, topo).has_value());
}

TEST(Mapper, PortBudgetsRespected) {
  // A 2-input gate cannot live on a 1-input node.
  const auto& cat = defaultCatalog();
  Network net;
  const BlockId s1 = net.addBlock("s1", cat.button());
  const BlockId s2 = net.addBlock("s2", cat.button());
  const BlockId g = net.addBlock("g", cat.and2());
  const BlockId o = net.addBlock("o", cat.led());
  net.connect(s1, 0, g, 0);
  net.connect(s2, 0, g, 1);
  net.connect(g, 0, o, 0);
  // A star topology where only the hub has 2 inputs works; with the hub
  // capped at 1 input the mapping must fail.
  for (const int hubInputs : {2, 1}) {
    Topology topo("star");
    const PhysId hub = topo.addNode("hub", hubInputs, 2);
    for (int i = 0; i < 3; ++i) {
      const PhysId leaf = topo.addNode("leaf" + std::to_string(i), 2, 2);
      topo.addDuplexLink(hub, leaf);
    }
    const auto m = mapNetwork(net, topo);
    if (hubInputs == 2) {
      ASSERT_TRUE(m.has_value());
      EXPECT_TRUE(verifyMapping(net, topo, *m).empty());
      // The gate must sit on the hub (only node with degree 3).
      EXPECT_EQ(m->placement[g], hub);
    } else {
      EXPECT_FALSE(m.has_value());
    }
  }
}

TEST(Mapper, PinnedDevicesStayPut) {
  const Network net = chain3();
  const Topology topo = Topology::line(3);
  MappingOptions options;
  options.pinned[*net.findBlock("s")] = *topo.findNode("n2");
  const auto m = mapNetwork(net, topo, options);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->placement[*net.findBlock("s")], *topo.findNode("n2"));
  EXPECT_TRUE(verifyMapping(net, topo, *m).empty());
}

TEST(Mapper, ConflictingPinsFail) {
  const Network net = chain3();
  const Topology topo = Topology::line(3);
  MappingOptions options;
  options.pinned[*net.findBlock("s")] = 0;
  options.pinned[*net.findBlock("a")] = 0;  // same spot
  EXPECT_FALSE(mapNetwork(net, topo, options).has_value());
}

TEST(Mapper, InfeasiblePinPlacementFails) {
  // Pin the two ends of a connected pair to opposite ends of a line with
  // no direct cable.
  const Network net = chain3();
  const Topology topo = Topology::line(4);
  MappingOptions options;
  options.pinned[*net.findBlock("s")] = 0;
  options.pinned[*net.findBlock("a")] = 3;  // s->a needs a cable 0->3
  EXPECT_FALSE(mapNetwork(net, topo, options).has_value());
}

TEST(Mapper, CableCapacityIsOneSignal) {
  // Two parallel sensor->led pairs across a single duplex trunk: each
  // direction has one cable, but two signals need to cross left-to-right.
  const auto& cat = defaultCatalog();
  Network net;
  const BlockId s1 = net.addBlock("s1", cat.button());
  const BlockId s2 = net.addBlock("s2", cat.button());
  const BlockId o1 = net.addBlock("o1", cat.led());
  const BlockId o2 = net.addBlock("o2", cat.led());
  net.connect(s1, 0, o1, 0);
  net.connect(s2, 0, o2, 0);
  Topology topo("trunk");
  const PhysId west0 = topo.addNode("west0", 2, 2);
  const PhysId west1 = topo.addNode("west1", 2, 2);
  const PhysId east0 = topo.addNode("east0", 2, 2);
  const PhysId east1 = topo.addNode("east1", 2, 2);
  topo.addLink(west0, east0);  // the only west->east cables
  topo.addLink(west1, east1);
  MappingOptions options;
  options.pinned[s1] = west0;
  options.pinned[s2] = west1;
  const auto m = mapNetwork(net, topo, options);
  ASSERT_TRUE(m.has_value());  // routable: o1 east0, o2 east1
  EXPECT_TRUE(verifyMapping(net, topo, *m).empty());
  // Remove one cable: now only one signal can cross.
  Topology thin("thin");
  const PhysId w0 = thin.addNode("west0", 2, 2);
  const PhysId w1 = thin.addNode("west1", 2, 2);
  thin.addNode("east0", 2, 2);
  thin.addNode("east1", 2, 2);
  thin.addLink(w0, 2);
  MappingOptions pins;
  pins.pinned[s1] = w0;
  pins.pinned[s2] = w1;
  EXPECT_FALSE(mapNetwork(net, thin, pins).has_value());
}

TEST(Mapper, SynthesizedFigure5OntoGrid) {
  // End-to-end: synthesize Podium Timer 3 (7 blocks remain), then deploy
  // it on a 3x3 grid of 2x2-port nodes.  The synthesized prog0 absorbs
  // both button edges (edge-counted ports), so the button-to-prog0 hop
  // needs TWO parallel cables: a plain grid (one cable per direction per
  // neighbor pair) is correctly rejected, a double-cabled grid works.
  const synth::SynthResult r = synth::synthesize(designs::figure5());
  ASSERT_EQ(r.network.blockCount(), 7u);
  const Topology plain = Topology::grid(3, 3);
  EXPECT_FALSE(mapNetwork(r.network, plain).has_value());
  // (Also geometrically infeasible even with parallel cables: prog1 needs
  // four distinct neighbors -- the grid center -- while prog0 and the trip
  // block would additionally have to be adjacent to each other.)

  // A 7-node full mesh with two parallel cables per ordered pair hosts it.
  Topology mesh("mesh7");
  for (int i = 0; i < 7; ++i) mesh.addNode("m" + std::to_string(i), 2, 2);
  for (PhysId a = 0; a < 7; ++a)
    for (PhysId b = 0; b < 7; ++b)
      if (a != b) {
        mesh.addLink(a, b);
        mesh.addLink(a, b);
      }
  const auto m = mapNetwork(r.network, mesh);
  ASSERT_TRUE(m.has_value());
  EXPECT_TRUE(verifyMapping(r.network, mesh, *m).empty());
}

TEST(Mapper, RandomNetworksOntoRichTopology) {
  // A topology that contains the logical graph by construction (one node
  // per block, links mirroring connections, plus slack) is always
  // mappable.
  for (std::uint32_t seed = 1; seed <= 5; ++seed) {
    const Network net = randgen::randomNetwork({.innerBlocks = 8,
                                                .seed = seed});
    Topology topo("mirror");
    for (BlockId b = 0; b < net.blockCount(); ++b)
      topo.addNode("p" + std::to_string(b), net.indegree(b),
                   net.outdegree(b));
    for (const Connection& c : net.connections())
      topo.addLink(c.from.block, c.to.block);
    const auto m = mapNetwork(net, topo);
    ASSERT_TRUE(m.has_value()) << "seed " << seed;
    EXPECT_TRUE(verifyMapping(net, topo, *m).empty()) << "seed " << seed;
  }
}

TEST(Mapper, TimeLimitGivesUpGracefully) {
  const Network net = randgen::randomNetwork({.innerBlocks = 18, .seed = 2});
  // Dense-ish topology with few cables: long search, probably infeasible.
  Topology topo("sparse");
  for (std::size_t i = 0; i < net.blockCount(); ++i)
    topo.addNode("p" + std::to_string(i), 3, 3);
  for (PhysId i = 0; i + 1 < topo.nodeCount(); i += 2)
    topo.addDuplexLink(i, i + 1);
  MappingOptions options;
  options.timeLimitSeconds = 0.05;
  EXPECT_FALSE(mapNetwork(net, topo, options).has_value());
}

TEST(Mapper, VerifierCatchesCorruption) {
  const Network net = chain3();
  const Topology topo = Topology::line(3);
  auto m = mapNetwork(net, topo);
  ASSERT_TRUE(m.has_value());
  Mapping bad = *m;
  bad.placement[0] = bad.placement[1];  // two blocks on one node
  EXPECT_FALSE(verifyMapping(net, topo, bad).empty());
  Mapping badCable = *m;
  badCable.cableOf[0] = 9999;
  EXPECT_FALSE(verifyMapping(net, topo, badCable).empty());
}

}  // namespace
}  // namespace eblocks::mapping
