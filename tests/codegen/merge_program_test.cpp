#include "codegen/merge_program.h"

#include <gtest/gtest.h>

#include "behavior/interpreter.h"
#include "behavior/printer.h"
#include "blocks/catalog.h"
#include "core/levels.h"
#include "designs/library.h"

namespace eblocks::codegen {
namespace {

using blocks::defaultCatalog;

struct Fixture {
  Network net;
  BitSet partition;
  std::vector<int> levels;

  MergedProgram merge(CountingMode mode = CountingMode::kEdges) const {
    return mergePartitionProgram(net, partition, levels, mode);
  }
};

/// s -> inv -> tog -> led, partition {inv, tog}.
Fixture chainFixture() {
  const auto& cat = defaultCatalog();
  Fixture f;
  const BlockId s = f.net.addBlock("s", cat.button());
  const BlockId inv = f.net.addBlock("inv", cat.inverter());
  const BlockId tog = f.net.addBlock("tog", cat.toggle());
  const BlockId led = f.net.addBlock("led", cat.led());
  f.net.connect(s, 0, inv, 0);
  f.net.connect(inv, 0, tog, 0);
  f.net.connect(tog, 0, led, 0);
  f.partition = f.net.emptySet();
  f.partition.set(inv);
  f.partition.set(tog);
  f.levels = computeLevels(f.net);
  return f;
}

TEST(MergeProgram, ChainPortShapes) {
  const Fixture f = chainFixture();
  const MergedProgram m = f.merge();
  EXPECT_EQ(m.inputCount(), 1);
  EXPECT_EQ(m.outputCount(), 1);
  ASSERT_EQ(m.members.size(), 2u);
  EXPECT_EQ(f.net.block(m.members[0]).name, "inv");  // level 1 before 2
  EXPECT_EQ(f.net.block(m.members[1]).name, "tog");
}

TEST(MergeProgram, ChainBehavesLikeOriginal) {
  const Fixture f = chainFixture();
  const MergedProgram m = f.merge();
  behavior::Environment env;
  env.set("in0", 0);
  env.set("out0", 0);
  env.set("tick", 0);
  behavior::initializeState(m.program, env);
  auto activate = [&](std::int64_t v) {
    env.set("in0", v);
    behavior::execute(m.program, env);
    return env.get("out0");
  };
  // Input low -> inverter high: toggle sees a rising edge at power-on once
  // the wire goes high.
  EXPECT_EQ(activate(0), 1);
  EXPECT_EQ(activate(1), 1);  // inverter low: no rising edge
  EXPECT_EQ(activate(0), 0);  // rising edge again: toggles off
}

TEST(MergeProgram, StateVariablesGetMemberPrefix) {
  const Fixture f = chainFixture();
  const MergedProgram m = f.merge();
  const std::string src = behavior::toSource(m.program);
  const BlockId tog = *f.net.findBlock("tog");
  const std::string prefix = "b" + std::to_string(tog) + "_q";
  EXPECT_NE(src.find(prefix), std::string::npos) << src;
  // No raw port names of the member blocks survive.
  EXPECT_EQ(src.find("out = "), std::string::npos) << src;
}

TEST(MergeProgram, InternalWireCarriesSignal) {
  const Fixture f = chainFixture();
  const MergedProgram m = f.merge();
  const BlockId inv = *f.net.findBlock("inv");
  const std::string wire = "w" + std::to_string(inv) + "_0";
  const std::string src = behavior::toSource(m.program);
  EXPECT_NE(src.find("var " + wire + " = 0;"), std::string::npos) << src;
}

TEST(MergeProgram, TwoStateBlocksDontCollide) {
  // Two toggles in one partition both declare `q` and `prev`.
  const auto& cat = defaultCatalog();
  Network net;
  const BlockId s = net.addBlock("s", cat.button());
  const BlockId t1 = net.addBlock("t1", cat.toggle());
  const BlockId t2 = net.addBlock("t2", cat.toggle());
  const BlockId led = net.addBlock("led", cat.led());
  net.connect(s, 0, t1, 0);
  net.connect(t1, 0, t2, 0);
  net.connect(t2, 0, led, 0);
  BitSet p = net.emptySet();
  p.set(t1);
  p.set(t2);
  const MergedProgram m =
      mergePartitionProgram(net, p, computeLevels(net), CountingMode::kEdges);
  behavior::Environment env;
  env.set("in0", 0);
  env.set("out0", 0);
  env.set("tick", 0);
  behavior::initializeState(m.program, env);
  auto press = [&] {
    env.set("in0", 1);
    behavior::execute(m.program, env);
    env.set("in0", 0);
    behavior::execute(m.program, env);
    return env.get("out0");
  };
  EXPECT_EQ(press(), 1);
  EXPECT_EQ(press(), 1);
  EXPECT_EQ(press(), 0);
  EXPECT_EQ(press(), 0);
}

TEST(MergeProgram, EdgesModeGivesEachCrossingEdgeAPort) {
  // Figure 5 partition {2,3,4,5}: inputs are the edges 1->2 and 1->5 (same
  // sensor), so edges mode uses two ports, signals mode one.
  const Network net = designs::figure5();
  BitSet p = net.emptySet();
  for (int node : {2, 3, 4, 5}) p.set(static_cast<std::size_t>(node - 1));
  const auto levels = computeLevels(net);
  const MergedProgram edges =
      mergePartitionProgram(net, p, levels, CountingMode::kEdges);
  const MergedProgram signals =
      mergePartitionProgram(net, p, levels, CountingMode::kSignals);
  EXPECT_EQ(edges.inputCount(), 2);
  EXPECT_EQ(signals.inputCount(), 1);
  EXPECT_EQ(edges.outputCount(), 2);
  EXPECT_EQ(signals.outputCount(), 2);
  // In signals mode that single port serves both original connections.
  EXPECT_EQ(signals.inputEdges[0].size(), 2u);
}

TEST(MergeProgram, UndrivenMemberInputThrows) {
  const auto& cat = defaultCatalog();
  Network net;
  const BlockId g = net.addBlock("g", cat.and2());
  const BlockId s = net.addBlock("s", cat.button());
  net.connect(s, 0, g, 0);  // port 1 left undriven
  BitSet p = net.emptySet();
  p.set(g);
  // Add a second member so the partition is non-trivial.
  const BlockId inv = net.addBlock("inv", cat.inverter());
  net.connect(g, 0, inv, 0);
  p.set(inv);
  EXPECT_THROW(
      mergePartitionProgram(net, p, computeLevels(net), CountingMode::kEdges),
      CodegenError);
}

TEST(MergeProgram, TickIsSharedNotRenamed) {
  const auto& cat = defaultCatalog();
  Network net;
  const BlockId s = net.addBlock("s", cat.button());
  const BlockId d = net.addBlock("d", cat.delay(2));
  const BlockId pr = net.addBlock("pr", cat.prolonger(2));
  const BlockId led = net.addBlock("led", cat.led());
  net.connect(s, 0, d, 0);
  net.connect(d, 0, pr, 0);
  net.connect(pr, 0, led, 0);
  BitSet p = net.emptySet();
  p.set(d);
  p.set(pr);
  const MergedProgram m =
      mergePartitionProgram(net, p, computeLevels(net), CountingMode::kEdges);
  const std::string src = behavior::toSource(m.program);
  EXPECT_NE(src.find("tick == 1"), std::string::npos);
  EXPECT_EQ(src.find("_tick"), std::string::npos);
}

TEST(MergeProgram, OutputEdgeMapsCoverAllBoundaryConnections) {
  const Network net = designs::figure5();
  BitSet p = net.emptySet();
  for (int node : {6, 8, 9}) p.set(static_cast<std::size_t>(node - 1));
  const MergedProgram m = mergePartitionProgram(
      net, p, computeLevels(net), CountingMode::kEdges);
  // {6,8,9}: inputs 5->6 and 7->8; outputs 8->11 and 9->12.
  EXPECT_EQ(m.inputCount(), 2);
  EXPECT_EQ(m.outputCount(), 2);
  int boundaryOut = 0;
  for (const auto& edges : m.outputEdges)
    boundaryOut += static_cast<int>(edges.size());
  EXPECT_EQ(boundaryOut, 2);
}

}  // namespace
}  // namespace eblocks::codegen
