#include "codegen/c_emitter.h"

#include <gtest/gtest.h>

#include "blocks/catalog.h"
#include "core/levels.h"
#include "designs/library.h"

namespace eblocks::codegen {
namespace {

using blocks::defaultCatalog;

MergedProgram figure5Partition2345() {
  static const Network net = designs::figure5();
  BitSet p = net.emptySet();
  for (int node : {2, 3, 4, 5}) p.set(static_cast<std::size_t>(node - 1));
  return mergePartitionProgram(net, p, computeLevels(net),
                               CountingMode::kEdges);
}

TEST(CEmitter, EmitsCompleteTranslationUnit) {
  const std::string c = emitC(figure5Partition2345());
  EXPECT_NE(c.find("#include <stdint.h>"), std::string::npos);
  EXPECT_NE(c.find("typedef struct"), std::string::npos);
  EXPECT_NE(c.find("void eb_reset(eb_state_t* st)"), std::string::npos);
  EXPECT_NE(c.find("void eb_eval(eb_state_t* st,"), std::string::npos);
  EXPECT_NE(c.find("#define EB_NUM_IN 2"), std::string::npos);
  EXPECT_NE(c.find("#define EB_NUM_OUT 2"), std::string::npos);
}

TEST(CEmitter, StateVariablesLiveInStruct) {
  const std::string c = emitC(figure5Partition2345());
  // Node 2 is a toggle: its state must appear as struct fields and be
  // accessed through st->.
  EXPECT_NE(c.find("int32_t b1_q;"), std::string::npos) << c;
  EXPECT_NE(c.find("st->b1_q"), std::string::npos);
}

TEST(CEmitter, PortsMapToArrays) {
  const std::string c = emitC(figure5Partition2345());
  EXPECT_NE(c.find("in[0]"), std::string::npos);
  EXPECT_NE(c.find("in[1]"), std::string::npos);
  EXPECT_NE(c.find("out[0] ="), std::string::npos);
  EXPECT_NE(c.find("out[1] ="), std::string::npos);
}

TEST(CEmitter, CustomPrefix) {
  CEmitOptions options;
  options.symbolPrefix = "pt3";
  const std::string c = emitC(figure5Partition2345(), options);
  EXPECT_NE(c.find("pt3_state_t"), std::string::npos);
  EXPECT_NE(c.find("PT3_NUM_IN"), std::string::npos);
  EXPECT_EQ(c.find("eb_state_t"), std::string::npos);
}

TEST(CEmitter, SkeletonAndHarnessAreOptIn) {
  const MergedProgram m = figure5Partition2345();
  const std::string plain = emitC(m);
  EXPECT_EQ(plain.find("FIRMWARE_MAIN"), std::string::npos);
  EXPECT_EQ(plain.find("TEST_HARNESS"), std::string::npos);
  CEmitOptions options;
  options.emitMainSkeleton = true;
  options.emitTestHarness = true;
  const std::string full = emitC(m, options);
  EXPECT_NE(full.find("EB_FIRMWARE_MAIN"), std::string::npos);
  EXPECT_NE(full.find("EB_TEST_HARNESS"), std::string::npos);
  EXPECT_NE(full.find("eb_rx_packet"), std::string::npos);
}

TEST(CEmitter, UnknownNameThrows) {
  MergedProgram m;
  m.program = behavior::Program{};
  m.program.statements.push_back(
      behavior::makeAssign("mystery", behavior::makeIntLit(1)));
  EXPECT_THROW(emitC(m), CodegenError);
}

TEST(CEmitter, HeaderListsMembersAndPorts) {
  const std::string c = emitC(figure5Partition2345());
  EXPECT_NE(c.find("2 input(s), 2 output(s)"), std::string::npos);
  EXPECT_NE(c.find("PIC16F628"), std::string::npos);
}

}  // namespace
}  // namespace eblocks::codegen
