#include "behavior/printer.h"

#include <gtest/gtest.h>

#include "behavior/parser.h"

namespace eblocks::behavior {
namespace {

std::string roundTrip(const std::string& src) {
  return toSource(parse(src));
}

TEST(Printer, SimpleStatements) {
  EXPECT_EQ(roundTrip("x=1;"), "x = 1;\n");
  EXPECT_EQ(roundTrip("var q=0;"), "var q = 0;\n");
}

TEST(Printer, ExpressionParenthesization) {
  // Compound subexpressions are parenthesized; atoms are bare.
  EXPECT_EQ(roundTrip("x = 1 + 2 * 3;"), "x = 1 + (2 * 3);\n");
  EXPECT_EQ(roundTrip("x = (1 + 2) * 3;"), "x = (1 + 2) * 3;\n");
  EXPECT_EQ(roundTrip("x = !a;"), "x = !a;\n");
  EXPECT_EQ(roundTrip("x = !(a && b);"), "x = !(a && b);\n");
}

TEST(Printer, IfElseLayout) {
  EXPECT_EQ(roundTrip("if(a){x=1;}else{x=0;}"),
            "if (a) {\n  x = 1;\n} else {\n  x = 0;\n}\n");
}

TEST(Printer, NestedIndentation) {
  EXPECT_EQ(roundTrip("if(a){if(b){x=1;}}"),
            "if (a) {\n  if (b) {\n    x = 1;\n  }\n}\n");
}

TEST(Printer, PreservesSemantics) {
  // Printing then reparsing yields an identical print (fixed point).
  const char* src =
      "var count = 0;\n"
      "if (a == 1 && prev == 0) { count = 5; }\n"
      "if (tick == 1 && count > 0) { count = count - 1; }\n"
      "if (count > 0) { out = 1; } else { out = 0; }\n";
  const std::string once = roundTrip(src);
  EXPECT_EQ(once, roundTrip(once));
}

TEST(Printer, UnaryMinusOfAtomAndCompound) {
  EXPECT_EQ(roundTrip("x = -a;"), "x = -a;\n");
  EXPECT_EQ(roundTrip("x = -(a + 1);"), "x = -(a + 1);\n");
}

}  // namespace
}  // namespace eblocks::behavior
