#include "behavior/interpreter.h"

#include <gtest/gtest.h>

#include "behavior/parser.h"

namespace eblocks::behavior {
namespace {

std::int64_t evalExpr(const std::string& src, Environment env = {}) {
  return evaluate(*parseExpression(src), env);
}

TEST(Interpreter, Arithmetic) {
  EXPECT_EQ(evalExpr("1 + 2 * 3"), 7);
  EXPECT_EQ(evalExpr("(1 + 2) * 3"), 9);
  EXPECT_EQ(evalExpr("7 / 2"), 3);
  EXPECT_EQ(evalExpr("7 % 2"), 1);
  EXPECT_EQ(evalExpr("-4 + 1"), -3);
}

TEST(Interpreter, Comparisons) {
  EXPECT_EQ(evalExpr("1 < 2"), 1);
  EXPECT_EQ(evalExpr("2 <= 2"), 1);
  EXPECT_EQ(evalExpr("3 > 4"), 0);
  EXPECT_EQ(evalExpr("3 >= 4"), 0);
  EXPECT_EQ(evalExpr("5 == 5"), 1);
  EXPECT_EQ(evalExpr("5 != 5"), 0);
}

TEST(Interpreter, LogicNormalizesToBool) {
  EXPECT_EQ(evalExpr("2 && 3"), 1);
  EXPECT_EQ(evalExpr("0 || 7"), 1);
  EXPECT_EQ(evalExpr("!5"), 0);
  EXPECT_EQ(evalExpr("!0"), 1);
}

TEST(Interpreter, ShortCircuitPreventsDivByZero) {
  EXPECT_EQ(evalExpr("0 && (1 / 0)"), 0);
  EXPECT_EQ(evalExpr("1 || (1 / 0)"), 1);
}

TEST(Interpreter, DivisionByZeroThrows) {
  EXPECT_THROW(evalExpr("1 / 0"), EvalError);
  EXPECT_THROW(evalExpr("1 % 0"), EvalError);
}

TEST(Interpreter, UnboundVariableThrows) {
  EXPECT_THROW(evalExpr("nope"), EvalError);
}

TEST(Interpreter, VariableLookup) {
  Environment env;
  env.set("a", 5);
  EXPECT_EQ(evalExpr("a * a", env), 25);
}

TEST(Interpreter, ExecuteAssignsAndBranches) {
  Environment env;
  env.set("a", 1);
  const Program p = parse("if (a) { x = 10; } else { x = 20; }");
  execute(p, env);
  EXPECT_EQ(env.get("x"), 10);
  env.set("a", 0);
  execute(p, env);
  EXPECT_EQ(env.get("x"), 20);
}

TEST(Interpreter, InitializeStateRunsOnlyDecls) {
  Environment env;
  const Program p = parse("var q = 7;\nout = q + 1;");
  initializeState(p, env);
  EXPECT_EQ(env.get("q"), 7);
  EXPECT_FALSE(env.has("out"));
}

TEST(Interpreter, ExecuteSkipsDecls) {
  Environment env;
  const Program p = parse("var q = 7;\nq = q + 1;");
  initializeState(p, env);
  execute(p, env);
  execute(p, env);
  EXPECT_EQ(env.get("q"), 9);  // 7 + 1 + 1; decl did not reset it
}

TEST(Interpreter, ToggleBehaviorOverActivations) {
  Environment env;
  const Program p = parse(
      "var q = 0;\nvar prev = 0;\n"
      "if (a == 1 && prev == 0) { q = !q; }\nprev = a;\nout = q;\n");
  initializeState(p, env);
  auto activate = [&](std::int64_t a) {
    env.set("a", a);
    execute(p, env);
    return env.get("out");
  };
  EXPECT_EQ(activate(0), 0);
  EXPECT_EQ(activate(1), 1);  // rising edge
  EXPECT_EQ(activate(1), 1);  // held: no new edge
  EXPECT_EQ(activate(0), 1);
  EXPECT_EQ(activate(1), 0);  // second rising edge
}

TEST(Interpreter, DeclInitializersSeeEarlierDecls) {
  Environment env;
  const Program p = parse("var a = 2;\nvar b = a * 3;");
  initializeState(p, env);
  EXPECT_EQ(env.get("b"), 6);
}

TEST(Interpreter, NestedIfExecution) {
  Environment env;
  env.set("a", 1);
  env.set("b", 0);
  const Program p = parse(
      "if (a) { if (b) { r = 1; } else { r = 2; } } else { r = 3; }");
  execute(p, env);
  EXPECT_EQ(env.get("r"), 2);
}

}  // namespace
}  // namespace eblocks::behavior
