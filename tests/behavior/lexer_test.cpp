#include "behavior/lexer.h"

#include <gtest/gtest.h>

namespace eblocks::behavior {
namespace {

std::vector<TokenKind> kinds(const std::string& src) {
  std::vector<TokenKind> out;
  for (const Token& t : lex(src)) out.push_back(t.kind);
  return out;
}

TEST(Lexer, EmptyInputYieldsEnd) {
  EXPECT_EQ(kinds(""), (std::vector<TokenKind>{TokenKind::kEnd}));
}

TEST(Lexer, Keywords) {
  EXPECT_EQ(kinds("var if else true false"),
            (std::vector<TokenKind>{TokenKind::kKwVar, TokenKind::kKwIf,
                                    TokenKind::kKwElse, TokenKind::kKwTrue,
                                    TokenKind::kKwFalse, TokenKind::kEnd}));
}

TEST(Lexer, IdentifiersAndKeywordPrefixes) {
  const auto toks = lex("variable iffy x_1 _x");
  ASSERT_EQ(toks.size(), 5u);
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(toks[static_cast<std::size_t>(i)].kind, TokenKind::kIdent);
  EXPECT_EQ(toks[0].text, "variable");
  EXPECT_EQ(toks[1].text, "iffy");
}

TEST(Lexer, IntegerLiterals) {
  const auto toks = lex("0 42 2147483647");
  EXPECT_EQ(toks[0].intValue, 0);
  EXPECT_EQ(toks[1].intValue, 42);
  EXPECT_EQ(toks[2].intValue, 2147483647);
}

TEST(Lexer, IntegerOverflowRejected) {
  EXPECT_THROW(lex("99999999999"), LexError);
}

TEST(Lexer, TwoCharOperators) {
  EXPECT_EQ(kinds("== != <= >= && ||"),
            (std::vector<TokenKind>{TokenKind::kEq, TokenKind::kNe,
                                    TokenKind::kLe, TokenKind::kGe,
                                    TokenKind::kAndAnd, TokenKind::kOrOr,
                                    TokenKind::kEnd}));
}

TEST(Lexer, SingleCharOperators) {
  EXPECT_EQ(kinds("= < > + - * / % ! ( ) { } ;"),
            (std::vector<TokenKind>{
                TokenKind::kAssign, TokenKind::kLt, TokenKind::kGt,
                TokenKind::kPlus, TokenKind::kMinus, TokenKind::kStar,
                TokenKind::kSlash, TokenKind::kPercent, TokenKind::kBang,
                TokenKind::kLParen, TokenKind::kRParen, TokenKind::kLBrace,
                TokenKind::kRBrace, TokenKind::kSemicolon, TokenKind::kEnd}));
}

TEST(Lexer, CommentsBothStyles) {
  EXPECT_EQ(kinds("a # comment to end\nb // another\nc"),
            (std::vector<TokenKind>{TokenKind::kIdent, TokenKind::kIdent,
                                    TokenKind::kIdent, TokenKind::kEnd}));
}

TEST(Lexer, LineAndColumnTracking) {
  const auto toks = lex("a\n  bb\n");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[0].column, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[1].column, 3);
}

TEST(Lexer, UnknownCharacterReportsPosition) {
  try {
    lex("a = b @ c;");
    FAIL() << "expected LexError";
  } catch (const LexError& e) {
    EXPECT_EQ(e.line(), 1);
    EXPECT_EQ(e.column(), 7);
  }
}

TEST(Lexer, NoSpacesNeeded) {
  EXPECT_EQ(kinds("a=b&&!c;"),
            (std::vector<TokenKind>{TokenKind::kIdent, TokenKind::kAssign,
                                    TokenKind::kIdent, TokenKind::kAndAnd,
                                    TokenKind::kBang, TokenKind::kIdent,
                                    TokenKind::kSemicolon, TokenKind::kEnd}));
}

}  // namespace
}  // namespace eblocks::behavior
