#include <gtest/gtest.h>

#include "behavior/interpreter.h"
#include "behavior/merge.h"
#include "behavior/parser.h"
#include "behavior/printer.h"
#include "behavior/rename.h"

namespace eblocks::behavior {
namespace {

TEST(Rename, RenamesRefsAssignsAndDecls) {
  Program p = parse("var q = 0;\nq = q + in;\nout = q;");
  renameVars(p, {{"q", "b3_q"}, {"in", "w1_0"}, {"out", "w2_0"}});
  const std::string src = toSource(p);
  EXPECT_EQ(src,
            "var b3_q = 0;\n"
            "b3_q = b3_q + w1_0;\n"
            "w2_0 = b3_q;\n");
}

TEST(Rename, UntouchedNamesSurvive) {
  Program p = parse("out = a && tick;");
  renameVars(p, {{"a", "x"}});
  EXPECT_EQ(toSource(p), "out = x && tick;\n");
}

TEST(Rename, RenameInsideNestedIf) {
  Program p = parse("if (a) { if (b) { c = a; } }");
  renameVars(p, {{"a", "A"}, {"c", "C"}});
  EXPECT_EQ(toSource(p), "if (A) {\n  if (b) {\n    C = A;\n  }\n}\n");
}

TEST(Rename, NoChainedRenaming) {
  // a->b and b->c applied simultaneously must not turn a into c.
  Program p = parse("x = a + b;");
  renameVars(p, {{"a", "b"}, {"b", "c"}});
  EXPECT_EQ(toSource(p), "x = b + c;\n");
}

TEST(Merge, HoistsDeclsKeepsBodyOrder) {
  std::vector<Program> parts;
  parts.push_back(parse("var p1 = 1;\nx = p1;"));
  parts.push_back(parse("var p2 = 2;\ny = x + p2;"));
  const Program merged = mergePrograms(std::move(parts));
  EXPECT_EQ(toSource(merged),
            "var p1 = 1;\n"
            "var p2 = 2;\n"
            "x = p1;\n"
            "y = x + p2;\n");
}

TEST(Merge, DuplicateDeclThrows) {
  std::vector<Program> parts;
  parts.push_back(parse("var q = 1;"));
  parts.push_back(parse("var q = 2;"));
  EXPECT_THROW(mergePrograms(std::move(parts)), std::invalid_argument);
}

TEST(Merge, MergedProgramExecutesLikeSequence) {
  // Two toggle blocks chained: t1 feeds t2 through wire w.  After renaming
  // and merging, driving `a` must update both in one activation.
  Program t1 = parse(
      "var q = 0;\nvar prev = 0;\n"
      "if (a == 1 && prev == 0) { q = !q; }\nprev = a;\nout = q;\n");
  Program t2 = t1.cloneProgram();
  renameVars(t1, {{"q", "t1_q"}, {"prev", "t1_prev"}, {"out", "w"}});
  renameVars(t2, {{"q", "t2_q"}, {"prev", "t2_prev"}, {"a", "w"},
                  {"out", "out"}});
  std::vector<Program> parts;
  parts.push_back(std::move(t1));
  parts.push_back(std::move(t2));
  const Program merged = mergePrograms(std::move(parts));

  Environment env;
  env.set("a", 0);
  env.set("w", 0);
  initializeState(merged, env);
  auto pulse = [&] {
    env.set("a", 1);
    execute(merged, env);
    env.set("a", 0);
    execute(merged, env);
    return env.get("out");
  };
  // t1 toggles on every press; t2 toggles on every rising edge of t1's
  // output, i.e. every second press.
  EXPECT_EQ(pulse(), 1);
  EXPECT_EQ(pulse(), 1);
  EXPECT_EQ(pulse(), 0);  // wait: t1 1->0->1; t2 saw edges at presses 1,3
  EXPECT_EQ(pulse(), 0);
  EXPECT_EQ(pulse(), 1);
}

TEST(Clone, DeepCopyIsIndependent) {
  Program p = parse("var q = 1;\nout = q;");
  Program copy = p.cloneProgram();
  renameVars(copy, {{"q", "z"}});
  EXPECT_EQ(toSource(p), "var q = 1;\nout = q;\n");
  EXPECT_EQ(toSource(copy), "var z = 1;\nout = z;\n");
}

TEST(Collect, DeclaredReferencedAssigned) {
  const Program p = parse("var q = 0;\nq = q + a;\nif (b) { out = q; }");
  EXPECT_EQ(declaredVars(p), (std::vector<std::string>{"q"}));
  const auto refs = referencedNames(p);
  EXPECT_TRUE(refs.contains("a"));
  EXPECT_TRUE(refs.contains("b"));
  EXPECT_TRUE(refs.contains("q"));
  EXPECT_FALSE(refs.contains("out"));
  const auto assigns = assignedNames(p);
  EXPECT_TRUE(assigns.contains("q"));
  EXPECT_TRUE(assigns.contains("out"));
  EXPECT_FALSE(assigns.contains("a"));
}

}  // namespace
}  // namespace eblocks::behavior
