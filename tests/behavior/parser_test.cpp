#include "behavior/parser.h"

#include <gtest/gtest.h>

#include "behavior/printer.h"

namespace eblocks::behavior {
namespace {

TEST(Parser, EmptyProgram) {
  EXPECT_TRUE(parse("").statements.empty());
}

TEST(Parser, VarDecl) {
  const Program p = parse("var q = 3;");
  ASSERT_EQ(p.statements.size(), 1u);
  EXPECT_EQ(p.statements[0]->kind, StmtKind::kVarDecl);
  EXPECT_EQ(p.statements[0]->name, "q");
  EXPECT_EQ(p.statements[0]->expr->intValue, 3);
}

TEST(Parser, Assignment) {
  const Program p = parse("out = a;");
  ASSERT_EQ(p.statements.size(), 1u);
  EXPECT_EQ(p.statements[0]->kind, StmtKind::kAssign);
  EXPECT_EQ(p.statements[0]->name, "out");
  EXPECT_EQ(p.statements[0]->expr->kind, ExprKind::kVarRef);
}

TEST(Parser, IfElse) {
  const Program p = parse("if (a) { x = 1; } else { x = 0; }");
  ASSERT_EQ(p.statements.size(), 1u);
  const Stmt& s = *p.statements[0];
  EXPECT_EQ(s.kind, StmtKind::kIf);
  EXPECT_EQ(s.thenBody.size(), 1u);
  EXPECT_EQ(s.elseBody.size(), 1u);
}

TEST(Parser, ElseIfChain) {
  const Program p =
      parse("if (a) { x = 1; } else if (b) { x = 2; } else { x = 3; }");
  const Stmt& s = *p.statements[0];
  ASSERT_EQ(s.elseBody.size(), 1u);
  EXPECT_EQ(s.elseBody[0]->kind, StmtKind::kIf);
  EXPECT_EQ(s.elseBody[0]->elseBody.size(), 1u);
}

TEST(Parser, PrecedenceMulOverAdd) {
  const ExprPtr e = parseExpression("1 + 2 * 3");
  EXPECT_EQ(e->bop, BinaryOp::kAdd);
  EXPECT_EQ(e->rhs->bop, BinaryOp::kMul);
}

TEST(Parser, PrecedenceComparisonOverLogic) {
  const ExprPtr e = parseExpression("a < 2 && b >= 3");
  EXPECT_EQ(e->bop, BinaryOp::kAnd);
  EXPECT_EQ(e->lhs->bop, BinaryOp::kLt);
  EXPECT_EQ(e->rhs->bop, BinaryOp::kGe);
}

TEST(Parser, PrecedenceAndOverOr) {
  const ExprPtr e = parseExpression("a || b && c");
  EXPECT_EQ(e->bop, BinaryOp::kOr);
  EXPECT_EQ(e->rhs->bop, BinaryOp::kAnd);
}

TEST(Parser, ParenthesesOverride) {
  const ExprPtr e = parseExpression("(1 + 2) * 3");
  EXPECT_EQ(e->bop, BinaryOp::kMul);
  EXPECT_EQ(e->lhs->bop, BinaryOp::kAdd);
}

TEST(Parser, UnaryChains) {
  const ExprPtr e = parseExpression("!!a");
  EXPECT_EQ(e->kind, ExprKind::kUnary);
  EXPECT_EQ(e->lhs->kind, ExprKind::kUnary);
  EXPECT_EQ(e->lhs->lhs->name, "a");
}

TEST(Parser, NegativeLiteralIsUnaryMinus) {
  const ExprPtr e = parseExpression("-5");
  EXPECT_EQ(e->kind, ExprKind::kUnary);
  EXPECT_EQ(e->uop, UnaryOp::kNeg);
}

TEST(Parser, TrueFalseAreLiterals) {
  EXPECT_EQ(parseExpression("true")->intValue, 1);
  EXPECT_EQ(parseExpression("false")->intValue, 0);
}

TEST(Parser, LeftAssociativity) {
  const ExprPtr e = parseExpression("1 - 2 - 3");  // (1-2)-3
  EXPECT_EQ(e->bop, BinaryOp::kSub);
  EXPECT_EQ(e->lhs->bop, BinaryOp::kSub);
  EXPECT_EQ(e->rhs->intValue, 3);
}

TEST(Parser, MissingSemicolonFails) {
  EXPECT_THROW(parse("a = 1"), ParseError);
}

TEST(Parser, UnterminatedBlockFails) {
  EXPECT_THROW(parse("if (a) { x = 1;"), ParseError);
}

TEST(Parser, NestedVarDeclRejected) {
  EXPECT_THROW(parse("if (a) { var q = 1; }"), ParseError);
}

TEST(Parser, GarbageExpressionFails) {
  EXPECT_THROW(parse("x = * 2;"), ParseError);
  EXPECT_THROW(parse("x = ;"), ParseError);
}

TEST(Parser, ErrorCarriesPosition) {
  try {
    parse("x = 1;\ny = ;\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
  }
}

TEST(Parser, RoundTripThroughPrinter) {
  const char* src =
      "var q = 0;\n"
      "var prev = 0;\n"
      "if (a == 1 && prev == 0) { q = !q; }\n"
      "prev = a;\n"
      "out = q;\n";
  const Program p1 = parse(src);
  const std::string printed = toSource(p1);
  const Program p2 = parse(printed);
  EXPECT_EQ(printed, toSource(p2));  // printer is a fixed point
}

}  // namespace
}  // namespace eblocks::behavior
