#include "io/netlist.h"

#include <gtest/gtest.h>

#include <random>

#include "designs/library.h"
#include "randgen/generator.h"
#include "synth/synthesizer.h"

namespace eblocks::io {
namespace {

TEST(Netlist, RoundTripGarage) {
  const Network original = designs::garageOpenAtNight();
  const std::string text = writeNetlist(original);
  const Network parsed = readNetlist(text);
  EXPECT_EQ(parsed.name(), original.name());
  ASSERT_EQ(parsed.blockCount(), original.blockCount());
  for (BlockId b = 0; b < original.blockCount(); ++b) {
    EXPECT_EQ(parsed.block(b).name, original.block(b).name);
    EXPECT_EQ(parsed.block(b).type->name(), original.block(b).type->name());
  }
  ASSERT_EQ(parsed.connections().size(), original.connections().size());
  for (std::size_t i = 0; i < original.connections().size(); ++i)
    EXPECT_EQ(parsed.connections()[i], original.connections()[i]);
}

TEST(Netlist, RoundTripWholeLibrary) {
  for (const auto& e : designs::designLibrary()) {
    const std::string text = writeNetlist(e.network);
    const Network parsed = readNetlist(text);
    EXPECT_EQ(parsed.blockCount(), e.network.blockCount()) << e.name;
    EXPECT_EQ(parsed.connections().size(), e.network.connections().size())
        << e.name;
    EXPECT_EQ(writeNetlist(parsed), text) << e.name;
  }
}

TEST(Netlist, ParameterizedTypesRoundTrip) {
  const std::string text =
      "network param test\n"
      "block s button\n"
      "block d delay_7\n"
      "block o led\n"
      "connect s.0 d.0\n"
      "connect d.0 o.0\n";
  const Network net = readNetlist(text);
  EXPECT_EQ(net.block(1).type->name(), "delay_7");
  EXPECT_EQ(net.name(), "param test");
}

TEST(Netlist, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "# header comment\n"
      "network x\n"
      "\n"
      "block s button   # trailing comment\n"
      "block o led\n"
      "connect s.0 o.0\n";
  EXPECT_EQ(readNetlist(text).blockCount(), 2u);
}

TEST(Netlist, ErrorsCarryLineNumbers) {
  const auto expectError = [](const std::string& text,
                              const std::string& needle) {
    try {
      readNetlist(text);
      FAIL() << "expected NetlistError for: " << text;
    } catch (const NetlistError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expectError("network x\nblock s warp_core\n", "line 2");
  expectError("network x\nblock s button\nconnect s.0 ghost.0\n", "line 3");
  expectError("frobnicate\n", "unknown keyword");
  expectError("network x\nblock s button\nconnect s0 o.0\n",
              "expected <block>.<port>");
  expectError("network x\nnetwork y\n", "once");
}

TEST(Netlist, SynthesizedBlocksRefuseSerialization) {
  const auto r = synth::synthesize(designs::garageOpenAtNight());
  EXPECT_THROW(writeNetlist(r.network), NetlistError);
}

TEST(Netlist, ConnectionErrorsPropagateWithContext) {
  const std::string doubleDriven =
      "network x\n"
      "block s1 button\n"
      "block s2 button\n"
      "block o led\n"
      "connect s1.0 o.0\n"
      "connect s2.0 o.0\n";
  try {
    readNetlist(doubleDriven);
    FAIL() << "expected NetlistError";
  } catch (const NetlistError& e) {
    EXPECT_NE(std::string(e.what()).find("line 6"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("already driven"),
              std::string::npos);
  }
}

TEST(Netlist, FuzzedGarbageNeverCrashes) {
  // Random byte soup and random token recombinations must either parse or
  // throw NetlistError -- never crash or corrupt memory.
  std::mt19937 rng(0xF422);
  const char* vocab[] = {"network", "block",  "connect", "button", "led",
                         "and2",    "s.0",    "o.0",     "x",      "#",
                         ".",       "0",      "-1",      "delay_",  "\t"};
  for (int round = 0; round < 300; ++round) {
    std::string text;
    const int lines = static_cast<int>(rng() % 8);
    for (int l = 0; l < lines; ++l) {
      const int tokens = static_cast<int>(rng() % 5);
      for (int t = 0; t < tokens; ++t) {
        text += vocab[rng() % std::size(vocab)];
        text += ' ';
      }
      text += '\n';
    }
    try {
      (void)readNetlist(text);
    } catch (const NetlistError&) {
      // expected for malformed input
    }
  }
}

TEST(Netlist, RandomNetworksRoundTrip) {
  for (std::uint32_t seed = 1; seed <= 10; ++seed) {
    const Network net = randgen::randomNetwork({.innerBlocks = 15,
                                                .seed = seed});
    const std::string text = writeNetlist(net);
    const Network parsed = readNetlist(text);
    EXPECT_EQ(writeNetlist(parsed), text) << "seed " << seed;
  }
}

}  // namespace
}  // namespace eblocks::io
