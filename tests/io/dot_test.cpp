#include "io/dot.h"

#include <gtest/gtest.h>

#include "designs/library.h"
#include "partition/paredown.h"

namespace eblocks::io {
namespace {

TEST(Dot, PlainExportNamesEveryBlock) {
  const Network net = designs::garageOpenAtNight();
  const std::string dot = toDot(net);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  for (BlockId b = 0; b < net.blockCount(); ++b)
    EXPECT_NE(dot.find(net.block(b).name), std::string::npos);
  // One edge line per connection.
  std::size_t arrows = 0, pos = 0;
  while ((pos = dot.find(" -> ", pos)) != std::string::npos) {
    ++arrows;
    pos += 4;
  }
  EXPECT_EQ(arrows, net.connections().size());
}

TEST(Dot, ShapesFollowBlockClass) {
  const Network net = designs::garageOpenAtNight();
  const std::string dot = toDot(net);
  EXPECT_NE(dot.find("shape=house"), std::string::npos);     // sensors
  EXPECT_NE(dot.find("shape=invhouse"), std::string::npos);  // outputs
  EXPECT_NE(dot.find("shape=box"), std::string::npos);       // compute
}

TEST(Dot, PartitionsBecomeClusters) {
  const Network net = designs::figure5();
  const partition::PartitionProblem problem(net, {});
  const auto run = partition::pareDown(problem);
  const std::string dot = toDot(net, run.result.partitions);
  EXPECT_NE(dot.find("subgraph cluster_p0"), std::string::npos);
  EXPECT_NE(dot.find("subgraph cluster_p1"), std::string::npos);
  EXPECT_NE(dot.find("label=\"partition 0\""), std::string::npos);
}

}  // namespace
}  // namespace eblocks::io
