// Round-trip and rejection battery for the binary format (io/binary.h).
//
// Two properties carry the solution cache's correctness:
//   1. Fidelity -- every design the pipeline produces (Table-1 designs,
//      random corpora including the largeNetwork presets, synthesized
//      networks with embedded programmable types) survives
//      text -> binary -> text and binary -> Network -> binary
//      bit-identically.
//   2. Rejection -- a damaged frame (truncated at ANY length, ANY single
//      bit flipped, wrong magic/version/tag) is a clean BinaryError,
//      never a silent misparse.  The whole file runs under the ASan/
//      UBSan CI job, so "never UB" is machine-checked, not asserted.
//
// The golden-fixture tests at the bottom pin the byte-exact frames of two
// paper designs under tests/data/ -- any unversioned format change fails
// there first -- and the version tests document the compatibility policy
// (readers accept [kBinaryMinVersion, kBinaryVersion], reject outside).
#include "io/binary.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>

#include "designs/library.h"
#include "io/netlist.h"
#include "randgen/generator.h"
#include "synth/synthesizer.h"

namespace eblocks::io {
namespace {

std::string goldenPath(const std::string& file) {
  return std::string(EBLOCKS_TEST_DATA_DIR) + "/" + file;
}

std::string readFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Same digest as the production writer; lets tests tamper with a frame
// and then re-seal it, so the damage under test (and not the checksum)
// is what the reader rejects.
std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string resealed(std::string frame) {
  const std::uint64_t h = fnv1a64(
      std::string_view(frame).substr(0, frame.size() - 8));
  for (int i = 0; i < 8; ++i)
    frame[frame.size() - 8 + static_cast<std::size_t>(i)] =
        static_cast<char>((h >> (8 * i)) & 0xff);
  return frame;
}

void expectNetworkRoundTrip(const Network& net, const std::string& label) {
  const std::string frame = writeNetworkBinary(net);
  const Network parsed = readNetworkBinary(frame);
  // binary -> Network -> binary is bit-identical...
  EXPECT_EQ(writeNetworkBinary(parsed), frame) << label;
  // ...and so is the netlist text on either side.
  EXPECT_EQ(writeNetlist(parsed), writeNetlist(net)) << label;
}

TEST(BinaryNetwork, RoundTripsEveryTable1Design) {
  for (const auto& e : designs::designLibrary())
    expectNetworkRoundTrip(e.network, e.name);
  expectNetworkRoundTrip(designs::figure5(), "figure5");
  expectNetworkRoundTrip(designs::garageOpenAtNight(), "garage");
}

TEST(BinaryNetwork, TextToBinaryToTextIsIdentity) {
  for (const auto& e : designs::designLibrary()) {
    const std::string text = writeNetlist(e.network);
    EXPECT_EQ(binaryToNetlist(netlistToBinary(text)), text) << e.name;
  }
}

// 50 random designs: 35 across the Table-2 size range plus 15 from the
// largeNetwork preset (the 100+-inner regime the heuristic partitioners
// target).
TEST(BinaryNetwork, RoundTrips50RandomDesigns) {
  for (int i = 0; i < 35; ++i) {
    randgen::GeneratorOptions options;
    options.innerBlocks = 3 + (i * 7) % 43;
    options.seed = 1000 + static_cast<std::uint32_t>(i);
    expectNetworkRoundTrip(randgen::randomNetwork(options),
                           "random#" + std::to_string(i));
  }
  for (int i = 0; i < 15; ++i) {
    const auto options = randgen::GeneratorOptions::largeNetwork(
        60 + i * 5, 2000 + static_cast<std::uint32_t>(i));
    expectNetworkRoundTrip(randgen::randomNetwork(options),
                           "large#" + std::to_string(i));
  }
}

// Synthesized networks embed programmable types with merged behavior
// programs -- the case the text netlist cannot express (its writer
// throws).  The binary format must round-trip them bit-identically.
TEST(BinaryNetwork, RoundTripsSynthesizedProgrammableBlocks) {
  synth::SynthOptions options;
  options.algorithm = "paredown";
  const synth::SynthResult result =
      synth::synthesize(designs::garageOpenAtNight(), options);
  ASSERT_GT(result.programmableBlocks, 0);
  EXPECT_THROW(writeNetlist(result.network), NetlistError);

  const std::string frame = writeNetworkBinary(result.network);
  const Network parsed = readNetworkBinary(frame);
  EXPECT_EQ(writeNetworkBinary(parsed), frame);
  ASSERT_EQ(parsed.blockCount(), result.network.blockCount());
  for (BlockId b = 0; b < parsed.blockCount(); ++b) {
    EXPECT_EQ(parsed.block(b).name, result.network.block(b).name);
    EXPECT_EQ(parsed.block(b).type->behaviorSource(),
              result.network.block(b).type->behaviorSource());
    EXPECT_EQ(parsed.block(b).type->programmable(),
              result.network.block(b).type->programmable());
  }
}

TEST(BinaryPartitionRun, RoundTripsBitIdentically) {
  partition::PartitionRun run;
  run.algorithm = "exhaustive";
  BitSet a(12), b(12);
  a.set(1); a.set(2); a.set(7);
  b.set(3); b.set(11);
  run.result.partitions = {a, b};
  run.seconds = 0.03125;
  run.optimal = true;
  run.explored = 12345;
  run.pruned = 678;
  run.workerExplored = {6000, 6345};
  run.workerPruned = {300, 378};

  const std::string frame = writePartitionRunBinary(run);
  const partition::PartitionRun parsed = readPartitionRunBinary(frame);
  EXPECT_EQ(parsed.algorithm, run.algorithm);
  ASSERT_EQ(parsed.result.partitions.size(), run.result.partitions.size());
  EXPECT_EQ(parsed.result.partitions[0], run.result.partitions[0]);
  EXPECT_EQ(parsed.result.partitions[1], run.result.partitions[1]);
  EXPECT_EQ(parsed.seconds, run.seconds);
  EXPECT_EQ(parsed.optimal, run.optimal);
  EXPECT_EQ(parsed.timedOut, run.timedOut);
  EXPECT_EQ(parsed.explored, run.explored);
  EXPECT_EQ(parsed.pruned, run.pruned);
  EXPECT_EQ(parsed.workerExplored, run.workerExplored);
  EXPECT_EQ(parsed.workerPruned, run.workerPruned);
  EXPECT_EQ(writePartitionRunBinary(parsed), frame);
}

TEST(BinaryPartitionRun, RoundTripsEmptyPartitioning) {
  partition::PartitionRun run;
  run.algorithm = "paredown";
  const std::string frame = writePartitionRunBinary(run);
  const partition::PartitionRun parsed = readPartitionRunBinary(frame);
  EXPECT_TRUE(parsed.result.partitions.empty());
  EXPECT_EQ(writePartitionRunBinary(parsed), frame);
}

// --- rejection ------------------------------------------------------------

TEST(BinaryRejection, EveryTruncationThrows) {
  const std::string frame =
      writeNetworkBinary(designs::garageOpenAtNight());
  for (std::size_t len = 0; len < frame.size(); ++len)
    EXPECT_THROW(readNetworkBinary(frame.substr(0, len)), BinaryError)
        << "truncated to " << len << " bytes";
}

TEST(BinaryRejection, EverySingleBitFlipThrows) {
  const std::string frame =
      writeNetworkBinary(designs::garageOpenAtNight());
  for (std::size_t bit = 0; bit < frame.size() * 8; ++bit) {
    std::string damaged = frame;
    damaged[bit / 8] = static_cast<char>(
        static_cast<std::uint8_t>(damaged[bit / 8]) ^ (1u << (bit % 8)));
    EXPECT_THROW(readNetworkBinary(damaged), BinaryError)
        << "bit " << bit << " flipped undetected";
  }
}

TEST(BinaryRejection, EverySingleBitFlipThrowsOnPartitionRun) {
  partition::PartitionRun run;
  run.algorithm = "fm";
  BitSet p(8);
  p.set(0); p.set(5);
  run.result.partitions = {p};
  const std::string frame = writePartitionRunBinary(run);
  for (std::size_t bit = 0; bit < frame.size() * 8; ++bit) {
    std::string damaged = frame;
    damaged[bit / 8] = static_cast<char>(
        static_cast<std::uint8_t>(damaged[bit / 8]) ^ (1u << (bit % 8)));
    EXPECT_THROW(readPartitionRunBinary(damaged), BinaryError)
        << "bit " << bit << " flipped undetected";
  }
}

TEST(BinaryRejection, WrongMagicThrows) {
  std::string frame = writeNetworkBinary(designs::garageOpenAtNight());
  frame[0] = 'X';
  EXPECT_THROW(readNetworkBinary(resealed(std::move(frame))), BinaryError);
}

TEST(BinaryRejection, WrongSectionTagThrows) {
  const std::string frame =
      writeNetworkBinary(designs::garageOpenAtNight());
  EXPECT_THROW(readPartitionRunBinary(frame), BinaryError);
}

TEST(BinaryRejection, NonzeroReservedByteThrows) {
  std::string frame = writeNetworkBinary(designs::garageOpenAtNight());
  frame[7] = 1;
  EXPECT_THROW(readNetworkBinary(resealed(std::move(frame))), BinaryError);
}

TEST(BinaryRejection, EmptyAndGarbageInputThrow) {
  EXPECT_THROW(readNetworkBinary(""), BinaryError);
  EXPECT_THROW(readNetworkBinary("not a frame at all"), BinaryError);
  EXPECT_THROW(readNetworkBinary(std::string(1024, '\xff')), BinaryError);
}

// --- versioning policy ------------------------------------------------------
//
// Readers accept [kBinaryMinVersion, kBinaryVersion].  A layout change
// bumps kBinaryVersion and either keeps a decode path for the old layout
// or raises kBinaryMinVersion, so out-of-window frames fail with a clear
// version message -- never a misparse.  These tests hold both edges of
// the window in place; docs/formats.md states the policy in prose.

TEST(BinaryVersioning, OlderThanMinVersionRejected) {
  // Version 0 predates kBinaryMinVersion: a correctly-checksummed frame
  // claiming it must still be rejected, by version and not by checksum.
  BinaryWriter w;
  w.str("stale");
  const std::string frame =
      w.finish(SectionTag::kNetwork, /*version=*/kBinaryMinVersion - 1);
  try {
    readNetworkBinary(frame);
    FAIL() << "version 0 frame was accepted";
  } catch (const BinaryError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST(BinaryVersioning, NewerThanCurrentVersionRejected) {
  BinaryWriter w;
  w.str("from the future");
  const std::string frame =
      w.finish(SectionTag::kNetwork, /*version=*/kBinaryVersion + 1);
  try {
    readNetworkBinary(frame);
    FAIL() << "future-version frame was accepted";
  } catch (const BinaryError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

// --- golden fixtures --------------------------------------------------------
//
// The pinned byte-exact frames of two paper designs.  If an intentional
// format change lands, bump kBinaryVersion and regenerate these files in
// the same commit (scripts in the files' header comment are not needed:
// write writeNetworkBinary() output for the two designs); if this test
// fails WITHOUT a version bump, the change silently broke every frame
// already on disk -- fix the code, not the fixture.

TEST(BinaryGolden, GarageFrameIsPinned) {
  const std::string golden = readFileOrEmpty(goldenPath("garage.eblk"));
  ASSERT_FALSE(golden.empty()) << "missing fixture " << goldenPath("garage.eblk");
  EXPECT_EQ(writeNetworkBinary(designs::garageOpenAtNight()), golden);
  const Network parsed = readNetworkBinary(golden);
  EXPECT_EQ(writeNetlist(parsed),
            writeNetlist(designs::garageOpenAtNight()));
}

TEST(BinaryGolden, Figure5FrameIsPinned) {
  const std::string golden = readFileOrEmpty(goldenPath("figure5.eblk"));
  ASSERT_FALSE(golden.empty()) << "missing fixture "
                               << goldenPath("figure5.eblk");
  EXPECT_EQ(writeNetworkBinary(designs::figure5()), golden);
  const Network parsed = readNetworkBinary(golden);
  EXPECT_EQ(writeNetlist(parsed), writeNetlist(designs::figure5()));
}

}  // namespace
}  // namespace eblocks::io
