#include "io/vcd.h"

#include <gtest/gtest.h>

#include "designs/library.h"

namespace eblocks::io {
namespace {

TEST(Vcd, StructureAndHeader) {
  const Network net = designs::garageOpenAtNight();
  sim::Simulator simulator(net);
  simulator.apply("garage_door", 1);
  const std::string vcd = toVcd(simulator);
  EXPECT_NE(vcd.find("$timescale"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 1 ! bedroom_led $end"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
  EXPECT_NE(vcd.find("$dumpvars"), std::string::npos);
  EXPECT_NE(vcd.find("0!"), std::string::npos);  // initial value
}

TEST(Vcd, RecordsChangesWithTimestamps) {
  const Network net = designs::garageOpenAtNight();
  sim::Simulator simulator(net);
  simulator.apply("garage_door", 1);  // led rises
  simulator.apply("garage_door", 0);  // led falls
  const std::string vcd = toVcd(simulator);
  const std::size_t rise = vcd.find("1!");
  const std::size_t fall = vcd.rfind("0!");
  ASSERT_NE(rise, std::string::npos);
  ASSERT_NE(fall, std::string::npos);
  EXPECT_LT(rise, fall);
  // Each change is preceded by a #time line.
  const std::size_t hash = vcd.rfind('#', rise);
  ASSERT_NE(hash, std::string::npos);
  EXPECT_GT(std::stoull(vcd.substr(hash + 1)), 0u);
}

TEST(Vcd, MultipleOutputsGetDistinctIds) {
  const Network net = designs::figure5();
  sim::Simulator simulator(net);
  const std::string vcd = toVcd(simulator);
  EXPECT_NE(vcd.find("$var wire 1 ! green_led $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 1 \" yellow_led $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 1 # red_led $end"), std::string::npos);
}

TEST(Vcd, QuietRunStillWellFormed) {
  const Network net = designs::figure5();
  sim::Simulator simulator(net);
  const std::string vcd = toVcd(simulator);
  // Ends with a final timestamp even when no changes happened.
  EXPECT_NE(vcd.rfind('#'), std::string::npos);
}

}  // namespace
}  // namespace eblocks::io
