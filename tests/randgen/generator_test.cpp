#include "randgen/generator.h"

#include <gtest/gtest.h>

#include "core/levels.h"

namespace eblocks::randgen {
namespace {

TEST(Generator, ProducesRequestedInnerCount) {
  for (int n : {1, 3, 10, 45, 120}) {
    const Network net = randomNetwork({.innerBlocks = n, .seed = 1});
    EXPECT_EQ(static_cast<int>(net.innerBlocks().size()), n);
  }
}

TEST(Generator, NetworksAreWellFormed) {
  for (std::uint32_t seed = 1; seed <= 25; ++seed) {
    const Network net = randomNetwork({.innerBlocks = 15, .seed = seed});
    const auto problems = net.validate();
    EXPECT_TRUE(problems.empty()) << "seed " << seed << ": "
                                  << problems.front();
    EXPECT_TRUE(net.isAcyclic());
  }
}

TEST(Generator, ReproducibleFromSeed) {
  const Network a = randomNetwork({.innerBlocks = 20, .seed = 9});
  const Network b = randomNetwork({.innerBlocks = 20, .seed = 9});
  ASSERT_EQ(a.blockCount(), b.blockCount());
  ASSERT_EQ(a.connections().size(), b.connections().size());
  for (std::size_t i = 0; i < a.blockCount(); ++i) {
    EXPECT_EQ(a.block(static_cast<BlockId>(i)).name,
              b.block(static_cast<BlockId>(i)).name);
    EXPECT_EQ(a.block(static_cast<BlockId>(i)).type->name(),
              b.block(static_cast<BlockId>(i)).type->name());
  }
  for (std::size_t i = 0; i < a.connections().size(); ++i)
    EXPECT_EQ(a.connections()[i], b.connections()[i]);
}

TEST(Generator, DifferentSeedsDiffer) {
  const Network a = randomNetwork({.innerBlocks = 20, .seed = 1});
  const Network b = randomNetwork({.innerBlocks = 20, .seed = 2});
  bool differs = a.blockCount() != b.blockCount();
  if (!differs)
    for (std::size_t i = 0; i < a.blockCount(); ++i)
      if (a.block(static_cast<BlockId>(i)).type->name() !=
          b.block(static_cast<BlockId>(i)).type->name()) {
        differs = true;
        break;
      }
  EXPECT_TRUE(differs);
}

TEST(Generator, LocalityWindowControlsDepth) {
  GeneratorOptions deep{.innerBlocks = 40, .seed = 4};
  deep.localityWindow = 0.05;
  deep.sensorInputProb = 0.05;
  GeneratorOptions shallow = deep;
  shallow.localityWindow = 1.0;
  shallow.sensorInputProb = 0.5;
  const auto depthOf = [](const Network& net) {
    int maxLevel = 0;
    for (int lv : computeLevels(net)) maxLevel = std::max(maxLevel, lv);
    return maxLevel;
  };
  EXPECT_GT(depthOf(randomNetwork(deep)), depthOf(randomNetwork(shallow)));
}

TEST(Generator, SensorReuseReducesSensorCount) {
  GeneratorOptions loner{.innerBlocks = 40, .seed = 6};
  loner.sensorReuseProb = 0.0;
  GeneratorOptions sharer = loner;
  sharer.sensorReuseProb = 0.9;
  const auto sensorsOf = [](const Network& net) {
    int n = 0;
    for (BlockId b = 0; b < net.blockCount(); ++b)
      if (net.isSensor(b)) ++n;
    return n;
  };
  EXPECT_GT(sensorsOf(randomNetwork(loner)),
            sensorsOf(randomNetwork(sharer)));
}

TEST(Generator, RejectsBadArguments) {
  EXPECT_THROW(randomNetwork({.innerBlocks = 0}), std::invalid_argument);
  GeneratorOptions bad{.innerBlocks = 5};
  bad.oneInputWeight = bad.twoInputWeight = bad.threeInputWeight = 0;
  EXPECT_THROW(randomNetwork(bad), std::invalid_argument);
}

TEST(Generator, FaninMixRoughlyFollowsWeights) {
  GeneratorOptions options{.innerBlocks = 300, .seed = 10};
  options.oneInputWeight = 1.0;
  options.twoInputWeight = 0.0;
  options.threeInputWeight = 0.0;
  const Network net = randomNetwork(options);
  for (BlockId b : net.innerBlocks())
    EXPECT_EQ(net.block(b).type->inputCount(), 1);
}

}  // namespace
}  // namespace eblocks::randgen
