#include "designs/library.h"

#include <gtest/gtest.h>

#include "partition/exhaustive.h"
#include "partition/paredown.h"

namespace eblocks::designs {
namespace {

TEST(DesignLibrary, HasFifteenEntriesInTableOrder) {
  const auto lib = designLibrary();
  ASSERT_EQ(lib.size(), 15u);
  EXPECT_EQ(lib[0].name, "Ignition Illuminator");
  EXPECT_EQ(lib[10].name, "Podium Timer 3");
  EXPECT_EQ(lib[14].name, "Timed Passage");
}

TEST(DesignLibrary, InnerBlockCountsMatchTable1) {
  const int expected[] = {2, 2, 2, 2, 3, 3, 3, 3, 5, 6, 8, 10, 19, 19, 23};
  const auto lib = designLibrary();
  for (std::size_t i = 0; i < lib.size(); ++i)
    EXPECT_EQ(static_cast<int>(lib[i].network.innerBlocks().size()),
              expected[i])
        << lib[i].name;
  for (std::size_t i = 0; i < lib.size(); ++i)
    EXPECT_EQ(lib[i].innerBlocks, expected[i]);
}

TEST(DesignLibrary, AllDesignsAreWellFormed) {
  for (const auto& e : designLibrary()) {
    const auto problems = e.network.validate();
    EXPECT_TRUE(problems.empty()) << e.name << ": " << problems.front();
    EXPECT_TRUE(e.network.isAcyclic()) << e.name;
  }
}

TEST(DesignLibrary, ByNameFindsEveryEntry) {
  for (const auto& e : designLibrary())
    EXPECT_EQ(byName(e.name).name(), e.name);
  EXPECT_THROW(byName("Flux Capacitor"), std::out_of_range);
}

TEST(DesignLibrary, PareDownReproducesForcedRows) {
  // Rows whose outcome is structurally forced (or-chains and the Figure 5
  // walkthrough) must match the paper exactly.
  for (const char* name :
       {"Any Window Open Alarm", "Doorbell Extender 1", "Doorbell Extender 2",
        "Motion on Property Alert"}) {
    const Network net = byName(name);
    const partition::PartitionProblem problem(net, {});
    const auto run = partition::pareDown(problem);
    EXPECT_EQ(run.result.programmableBlocks(), 0) << name;
  }
  {
    const Network net = byName("Podium Timer 3");
    const partition::PartitionProblem problem(net, {});
    const auto run = partition::pareDown(problem);
    EXPECT_EQ(run.result.totalAfter(8), 3);
    EXPECT_EQ(run.result.programmableBlocks(), 2);
  }
}

TEST(DesignLibrary, PareDownMatchesRecordedExpectations) {
  // Full sweep against the PaperRow fields we ship (our measured values;
  // deviations from the paper are documented in docs/benchmarks.md).
  for (const auto& e : designLibrary()) {
    if (e.paper.paredownTotal < 0) continue;
    const partition::PartitionProblem problem(e.network, {});
    const auto run = partition::pareDown(problem);
    EXPECT_LE(run.result.totalAfter(e.innerBlocks), e.innerBlocks) << e.name;
  }
}

TEST(DesignLibrary, SmallDesignsExhaustiveOptimal) {
  // For every design with <= 10 inner blocks, exhaustive completes and is
  // at least as good as PareDown.
  for (const auto& e : designLibrary()) {
    if (e.innerBlocks > 10) continue;
    const partition::PartitionProblem problem(e.network, {});
    const auto exact = partition::exhaustiveSearch(problem);
    ASSERT_TRUE(exact.optimal) << e.name;
    const auto heuristic = partition::pareDown(problem);
    EXPECT_LE(exact.result.totalAfter(e.innerBlocks),
              heuristic.result.totalAfter(e.innerBlocks))
        << e.name;
  }
}

TEST(DesignLibrary, Figure5MatchesDocumentedEdgeList) {
  const Network net = figure5();
  ASSERT_EQ(net.blockCount(), 12u);
  const auto edge = [&](int from, int to) {
    for (const Connection& c : net.connections())
      if (c.from.block == static_cast<BlockId>(from - 1) &&
          c.to.block == static_cast<BlockId>(to - 1))
        return true;
    return false;
  };
  for (auto [f, t] : std::initializer_list<std::pair<int, int>>{
           {1, 2}, {1, 5}, {2, 4}, {2, 5}, {4, 3}, {3, 7}, {5, 6},
           {6, 8}, {6, 9}, {7, 8}, {7, 10}, {8, 11}, {9, 12}})
    EXPECT_TRUE(edge(f, t)) << f << "->" << t;
  EXPECT_EQ(net.connections().size(), 13u);
}

TEST(DesignLibrary, GarageMatchesFigure1Inventory) {
  const Network net = garageOpenAtNight();
  // Figure 1: contact switch sensor, light sensor, 2-input logic, LED --
  // plus the inverter realizing the "at night" polarity.
  EXPECT_EQ(net.blockCount(), 5u);
  EXPECT_EQ(net.innerBlocks().size(), 2u);
  EXPECT_TRUE(net.validate().empty());
}

}  // namespace
}  // namespace eblocks::designs
