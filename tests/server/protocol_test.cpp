// Wire-protocol unit tests: every message round-trips, and every way a
// frame can be damaged -- truncation at each byte boundary, every
// single-bit flip, oversized declared lengths, unknown codes and flag
// bits, trailing payload bytes -- decodes to a clean ProtocolError /
// BinaryError, never a silent misparse (the same battery binary.h's
// disk formats pass, because it is the same frame discipline).
#include "server/protocol.h"

#include <gtest/gtest.h>

#include <string>

#include "designs/library.h"
#include "io/binary.h"

namespace eblocks::server {
namespace {

SynthRequest sampleRequest() {
  SynthRequest request;
  request.id = 41;
  request.algorithm = "exhaustive";
  request.inputs = 3;
  request.outputs = 2;
  request.threads = 4;
  request.timeLimitSeconds = 2.5;
  request.prune = false;
  request.useCache = true;
  request.networkFrame = io::writeNetworkBinary(designs::figure5());
  return request;
}

TEST(Protocol, RequestRoundTrip) {
  const SynthRequest in = sampleRequest();
  const SynthRequest out = decodeRequest(encodeRequest(in));
  EXPECT_EQ(out.id, in.id);
  EXPECT_EQ(out.algorithm, in.algorithm);
  EXPECT_EQ(out.inputs, in.inputs);
  EXPECT_EQ(out.outputs, in.outputs);
  EXPECT_EQ(out.threads, in.threads);
  EXPECT_EQ(out.timeLimitSeconds, in.timeLimitSeconds);
  EXPECT_EQ(out.prune, in.prune);
  EXPECT_EQ(out.useCache, in.useCache);
  EXPECT_EQ(out.networkFrame, in.networkFrame);
}

TEST(Protocol, ResponseRoundTrip) {
  SynthResponse in;
  in.id = 7;
  in.cacheOutcome = 2;
  in.originalInner = 12;
  in.innerAfter = 4;
  in.programmableBlocks = 2;
  in.seconds = 0.125;
  in.degradedTier = "lns";
  in.networkFrame = "fake-network-frame-bytes";
  in.runFrame = "fake-run-frame-bytes";
  const SynthResponse out = decodeResponse(encodeResponse(in));
  EXPECT_EQ(out.id, in.id);
  EXPECT_EQ(out.cacheOutcome, in.cacheOutcome);
  EXPECT_EQ(out.originalInner, in.originalInner);
  EXPECT_EQ(out.innerAfter, in.innerAfter);
  EXPECT_EQ(out.programmableBlocks, in.programmableBlocks);
  EXPECT_EQ(out.seconds, in.seconds);
  EXPECT_EQ(out.degradedTier, in.degradedTier);
  EXPECT_EQ(out.networkFrame, in.networkFrame);
  EXPECT_EQ(out.runFrame, in.runFrame);

  // The undegraded norm: the field defaults empty and round-trips empty.
  in.degradedTier.clear();
  EXPECT_EQ(decodeResponse(encodeResponse(in)).degradedTier, "");
}

TEST(Protocol, ProgressRoundTrip) {
  Progress in;
  in.id = 9;
  in.state = Progress::State::kRunning;
  in.queuePosition = 3;
  in.exploredNodes = 0x2000;
  in.elapsedSeconds = 1.75;
  const Progress out = decodeProgress(encodeProgress(in));
  EXPECT_EQ(out.id, in.id);
  EXPECT_EQ(out.state, in.state);
  EXPECT_EQ(out.queuePosition, in.queuePosition);
  EXPECT_EQ(out.exploredNodes, in.exploredNodes);
  EXPECT_EQ(out.elapsedSeconds, in.elapsedSeconds);
}

TEST(Protocol, ErrorRoundTrip) {
  ErrorReply in;
  in.id = 5;
  in.code = ErrorCode::kOverloaded;
  in.retryAfterMs = 250;
  in.message = "job queue is full; retry later";
  const ErrorReply out = decodeError(encodeError(in));
  EXPECT_EQ(out.id, in.id);
  EXPECT_EQ(out.code, in.code);
  EXPECT_EQ(out.retryAfterMs, in.retryAfterMs);
  EXPECT_EQ(out.message, in.message);
}

TEST(Protocol, CancelRoundTrip) {
  CancelRequest in;
  in.id = 77;
  EXPECT_EQ(decodeCancel(encodeCancel(in)).id, in.id);
}

TEST(Protocol, ErrorCodeNamesAreStable) {
  EXPECT_STREQ(toString(ErrorCode::kBadFrame), "bad-frame");
  EXPECT_STREQ(toString(ErrorCode::kOverloaded), "overloaded");
  EXPECT_STREQ(toString(ErrorCode::kShuttingDown), "shutting-down");
  EXPECT_STREQ(toString(ErrorCode::kDuplicateRequest), "duplicate-request");
}

// --- framing ------------------------------------------------------------

TEST(Protocol, PeekNeedsSixteenBytes) {
  const std::string frame = encodeCancel(CancelRequest{1});
  for (std::size_t n = 0; n < 16; ++n)
    EXPECT_FALSE(peekFrameHeader(std::string_view(frame).substr(0, n)))
        << "prefix " << n;
}

TEST(Protocol, PeekReportsTagAndSize) {
  const std::string frame = encodeRequest(sampleRequest());
  const auto header = peekFrameHeader(frame);
  ASSERT_TRUE(header);
  EXPECT_EQ(header->tag, io::SectionTag::kServerRequest);
  EXPECT_EQ(header->version, io::kBinaryVersion);
  EXPECT_EQ(frameSize(*header), frame.size());
}

TEST(Protocol, PeekRejectsBadMagic) {
  std::string frame = encodeCancel(CancelRequest{1});
  frame[0] ^= 0x01;
  EXPECT_THROW(peekFrameHeader(frame), ProtocolError);
}

TEST(Protocol, PeekRejectsVersionOutsideWindow) {
  std::string low = encodeCancel(CancelRequest{1});
  low[4] = static_cast<char>(io::kBinaryMinVersion - 1);
  low[5] = 0;
  EXPECT_THROW(peekFrameHeader(low), ProtocolError);
  std::string high = encodeCancel(CancelRequest{1});
  high[4] = static_cast<char>((io::kBinaryVersion + 1) & 0xff);
  high[5] = static_cast<char>((io::kBinaryVersion + 1) >> 8);
  EXPECT_THROW(peekFrameHeader(high), ProtocolError);
}

TEST(Protocol, PeekRejectsReservedByte) {
  std::string frame = encodeCancel(CancelRequest{1});
  frame[7] = 1;
  EXPECT_THROW(peekFrameHeader(frame), ProtocolError);
}

TEST(Protocol, PeekRejectsOversizedPayloadBeforeBuffering) {
  // A hostile header claiming a 1 TiB payload must be rejected from the
  // first 16 bytes alone -- the reassembly loop never waits for (or
  // allocates) the declared bytes.
  std::string frame = encodeCancel(CancelRequest{1});
  const std::uint64_t huge = 1ull << 40;
  for (int i = 0; i < 8; ++i)
    frame[8 + i] = static_cast<char>((huge >> (8 * i)) & 0xff);
  EXPECT_THROW(peekFrameHeader(std::string_view(frame).substr(0, 16)),
               ProtocolError);
}

TEST(Protocol, TruncationAtEveryBoundaryIsClean) {
  const std::string frame = encodeRequest(sampleRequest());
  for (std::size_t n = 0; n < frame.size(); ++n) {
    SCOPED_TRACE(n);
    EXPECT_THROW(decodeRequest(frame.substr(0, n)), io::BinaryError);
  }
}

TEST(Protocol, EveryBitFlipIsClean) {
  // The FNV-1a trailer closes the frame: any single-bit flip -- header,
  // payload, or checksum itself -- must decode to a clean error.
  const std::string frame = encodeError(
      ErrorReply{3, ErrorCode::kCancelled, 0, "request cancelled"});
  for (std::size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string damaged = frame;
      damaged[byte] = static_cast<char>(damaged[byte] ^ (1 << bit));
      EXPECT_THROW(decodeError(damaged), io::BinaryError)
          << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(Protocol, WrongTagRejected) {
  const std::string frame = encodeCancel(CancelRequest{1});
  EXPECT_THROW(decodeRequest(frame), io::BinaryError);
  EXPECT_THROW(decodeResponse(frame), io::BinaryError);
  EXPECT_THROW(decodeProgress(frame), io::BinaryError);
  EXPECT_THROW(decodeError(frame), io::BinaryError);
}

// --- payload validation -------------------------------------------------

TEST(Protocol, UnknownRequestFlagBitsRejected) {
  // Re-encode the sample request with an extra (future) flag bit set:
  // today's decoder must reject it rather than silently ignore it.
  const SynthRequest request = sampleRequest();
  io::BinaryWriter w;
  w.varint(request.id);
  w.str(request.algorithm);
  w.varint(static_cast<std::uint64_t>(request.inputs));
  w.varint(static_cast<std::uint64_t>(request.outputs));
  w.varint(static_cast<std::uint64_t>(request.threads));
  w.f64(request.timeLimitSeconds);
  w.u8(0x04 | 0x03);  // unknown bit 2
  w.str(request.networkFrame);
  EXPECT_THROW(decodeRequest(w.finish(io::SectionTag::kServerRequest)),
               ProtocolError);
}

TEST(Protocol, UnknownErrorCodeRejected) {
  io::BinaryWriter w;
  w.varint(1);    // id
  w.varint(99);   // unknown code
  w.varint(0);    // retryAfterMs
  w.str("boom");
  EXPECT_THROW(decodeError(w.finish(io::SectionTag::kServerError)),
               ProtocolError);
}

TEST(Protocol, UnknownProgressStateRejected) {
  io::BinaryWriter w;
  w.varint(1);
  w.u8(7);  // unknown state
  w.varint(0);
  w.varint(0);
  w.f64(0.0);
  EXPECT_THROW(decodeProgress(w.finish(io::SectionTag::kServerProgress)),
               ProtocolError);
}

TEST(Protocol, AbsurdOptionValuesRejected) {
  io::BinaryWriter w;
  w.varint(1);
  w.str("paredown");
  w.varint(1ull << 32);  // inputs far beyond any real port budget
  w.varint(2);
  w.varint(1);
  w.f64(1.0);
  w.u8(0x3);
  w.str("");
  EXPECT_THROW(decodeRequest(w.finish(io::SectionTag::kServerRequest)),
               ProtocolError);
}

TEST(Protocol, TrailingPayloadBytesRejected) {
  io::BinaryWriter w;
  w.varint(42);
  w.u8(0);  // trailing junk after the cancel id
  EXPECT_THROW(decodeCancel(w.finish(io::SectionTag::kServerCancel)),
               ProtocolError);
}

}  // namespace
}  // namespace eblocks::server
