// Shared helpers for the server test suite: start a daemon on a free
// port, build requests from library designs, and compare served results
// against one-shot synthesize() runs.
#ifndef EBLOCKS_TESTS_SERVER_SERVER_TEST_UTIL_H_
#define EBLOCKS_TESTS_SERVER_SERVER_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>

#include "core/network.h"
#include "io/binary.h"
#include "randgen/generator.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "synth/synthesizer.h"

namespace eblocks::server::testutil {

/// A server on a free loopback port, torn down with the fixture.
inline ServerOptions quickOptions(int executors, std::size_t queueCapacity) {
  ServerOptions options;
  options.host = "127.0.0.1";
  options.port = 0;
  options.executors = executors;
  options.queueCapacity = queueCapacity;
  options.progressIntervalSeconds = 0.05;  // fast ticks for tests
  options.retryAfterSeconds = 0.05;
  return options;
}

/// A deterministic request: serial paredown, pruned, cache off --
/// bit-identical across runs and machines.
inline SynthRequest paredownRequest(std::uint64_t id, const Network& net) {
  SynthRequest request;
  request.id = id;
  request.algorithm = "paredown";
  request.threads = 1;
  request.useCache = false;
  request.networkFrame = io::writeNetworkBinary(net);
  return request;
}

/// A network hard enough that an unpruned serial exhaustive search
/// cannot finish within any test-scale time limit (the bench_exhaustive_
/// blowup regime), making slowRequest's duration the limit itself.
inline Network hardNetwork() {
  randgen::GeneratorOptions options;
  options.innerBlocks = 34;
  options.seed = 7;
  return randgen::randomNetwork(options);
}

/// A controllable-duration request: unpruned exhaustive search on a
/// hard network runs until the wall-clock limit (returning its best
/// incumbent with timedOut set), so `seconds` is how long the job
/// occupies an executor -- and the cancel flag, riding the same
/// periodic check as the deadline, cuts it short at any moment.
inline SynthRequest slowRequest(std::uint64_t id, const Network& net,
                                double seconds) {
  SynthRequest request = paredownRequest(id, net);
  request.algorithm = "exhaustive";
  request.prune = false;
  request.timeLimitSeconds = seconds;
  return request;
}

/// The one-shot synthesize() a served paredownRequest must match.
inline synth::SynthResult localSynthesize(const Network& net,
                                          const SynthRequest& request) {
  synth::SynthOptions options;
  options.algorithm = request.algorithm;
  options.spec.inputs = request.inputs;
  options.spec.outputs = request.outputs;
  options.engine.threads = request.threads;
  options.engine.timeLimitSeconds = request.timeLimitSeconds;
  options.engine.pruningBound = request.prune;
  options.emitC = false;
  return synth::synthesize(net, options);
}

/// A run frame with the wall-clock field zeroed: everything else --
/// algorithm, partitions, explored/pruned counters, worker stripes --
/// must match byte for byte between a served and a local run.
inline std::string runFrameModuloTime(std::string_view runFrame) {
  partition::PartitionRun run = io::readPartitionRunBinary(runFrame);
  run.seconds = 0.0;
  return io::writePartitionRunBinary(run);
}

/// Asserts a served response is bit-identical (modulo wall time) to the
/// local pipeline on the same request.
inline void expectBitIdentical(const Network& net,
                               const SynthRequest& request,
                               const SynthResponse& response) {
  const synth::SynthResult local = localSynthesize(net, request);
  EXPECT_EQ(response.networkFrame, io::writeNetworkBinary(local.network));
  EXPECT_EQ(runFrameModuloTime(response.runFrame),
            runFrameModuloTime(io::writePartitionRunBinary(local.run)));
  EXPECT_EQ(response.originalInner, local.originalInner);
  EXPECT_EQ(response.innerAfter, local.innerAfter);
  EXPECT_EQ(response.programmableBlocks, local.programmableBlocks);
}

/// End-to-end liveness probe: the server still accepts a connection and
/// serves a fresh deterministic request correctly.
inline void expectServerStillServes(const Server& server, const Network& net) {
  Client client;
  std::string error;
  ASSERT_TRUE(client.connectTo("127.0.0.1", server.port(), &error)) << error;
  const SynthRequest request = paredownRequest(990, net);
  const CallResult result = client.call(request, /*timeoutMs=*/30000);
  ASSERT_TRUE(result.ok()) << (result.error ? result.error->message
                                            : "timeout");
  expectBitIdentical(net, request, *result.response);
}

}  // namespace eblocks::server::testutil

#endif  // EBLOCKS_TESTS_SERVER_SERVER_TEST_UTIL_H_
