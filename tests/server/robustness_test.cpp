// The robustness layer end to end (docs/robustness.md): the retrying
// client's backoff/reconnect behavior, the server's idempotent-replay
// table, the degradation ladder's tier riding the wire, and injected
// socket faults (core/failpoint.h) that both sides must absorb without
// a wrong answer.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/failpoint.h"
#include "designs/library.h"
#include "server/client.h"
#include "server/server.h"
#include "server_test_util.h"
#include "synth/synthesizer.h"

namespace eblocks::server {
namespace {

namespace fp = core::failpoint;
using testutil::expectBitIdentical;
using testutil::paredownRequest;
using testutil::quickOptions;

constexpr int kCallTimeoutMs = 60000;

/// Disarms every failpoint on scope exit, so a failing ASSERT cannot
/// leak an armed site into the next test.
struct FailpointGuard {
  FailpointGuard() { fp::clearAll(); }
  ~FailpointGuard() { fp::clearAll(); }
};

void expectSameResponsePayload(const SynthResponse& a,
                               const SynthResponse& b) {
  // Everything but the id (which is the caller's) must be byte-equal --
  // a replay is the original completed answer, not a recomputation.
  EXPECT_EQ(a.cacheOutcome, b.cacheOutcome);
  EXPECT_EQ(a.originalInner, b.originalInner);
  EXPECT_EQ(a.innerAfter, b.innerAfter);
  EXPECT_EQ(a.programmableBlocks, b.programmableBlocks);
  EXPECT_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.degradedTier, b.degradedTier);
  EXPECT_EQ(a.networkFrame, b.networkFrame);
  EXPECT_EQ(a.runFrame, b.runFrame);
}

TEST(Robustness, IdempotentReplayAcrossConnectionsAndIds) {
  Server server(quickOptions(1, 4));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  const Network net = designs::figure5();

  Client first;
  ASSERT_TRUE(first.connectTo("127.0.0.1", server.port(), &error)) << error;
  const CallResult original = first.call(paredownRequest(1, net),
                                         kCallTimeoutMs);
  ASSERT_TRUE(original.ok());

  // Same request content from a different connection under a different
  // id: answered from the table, never queued, payload byte-identical.
  Client second;
  ASSERT_TRUE(second.connectTo("127.0.0.1", server.port(), &error)) << error;
  const CallResult replay = second.call(paredownRequest(42, net),
                                        kCallTimeoutMs);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay.response->id, 42u);
  expectSameResponsePayload(*original.response, *replay.response);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.idempotentReplays, 1u);
  EXPECT_EQ(stats.completed, 2u);  // replays count as completed

  // Different content (another design) must NOT replay.
  const CallResult other = second.call(
      paredownRequest(43, designs::byName("Timed Passage")), kCallTimeoutMs);
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(server.stats().idempotentReplays, 1u);
}

TEST(Robustness, IsomorphicDesignsNeverReplayEachOther) {
  // The replay key must be the exact request bytes, never the
  // rename-invariant structure hash: the Table-1 pair Ignition
  // Illuminator / Night Lamp Controller are isomorphic (they collide on
  // structureHash by design), but their synthesized networks carry
  // different block names -- serving one's completed answer for the
  // other would be a wrong result with matching structure.  This was a
  // live bug: under TSan's slowdown the first job completed before the
  // second arrived and the collision served the wrong design.
  Server server(quickOptions(1, 4));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  Client client;
  ASSERT_TRUE(client.connectTo("127.0.0.1", server.port(), &error)) << error;

  const Network ignition = designs::byName("Ignition Illuminator");
  const Network nightLamp = designs::byName("Night Lamp Controller");
  const CallResult first = client.call(paredownRequest(1, ignition),
                                       kCallTimeoutMs);
  ASSERT_TRUE(first.ok());
  const CallResult second = client.call(paredownRequest(2, nightLamp),
                                        kCallTimeoutMs);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(server.stats().idempotentReplays, 0u);
  EXPECT_EQ(server.stats().accepted, 2u);
  expectBitIdentical(nightLamp, paredownRequest(2, nightLamp),
                     *second.response);

  // Same design under a seeded renaming: still no replay -- the frame
  // bytes differ even though every hash the solution cache uses agrees.
  const Network renamed = randgen::relabeledCopy(ignition, 7);
  const CallResult third = client.call(paredownRequest(3, renamed),
                                       kCallTimeoutMs);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(server.stats().idempotentReplays, 0u);
  expectBitIdentical(renamed, paredownRequest(3, renamed), *third.response);
}

TEST(Robustness, LostReplyIsReplayedToTheRetryingClient) {
  // The scenario the idempotency table exists for: the server computes
  // and answers, the reply is lost in transit (injected connection
  // reset on the client's recv), and the client retries on a fresh
  // connection.  The retry must be served from the table -- the job is
  // never recomputed -- and the payload is the original, byte for byte.
  const FailpointGuard guard;
  ServerOptions options = quickOptions(1, 4);
  options.progressIntervalSeconds = 10.0;  // only the response frame flows
  Server server(options);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  const Network net = designs::figure5();

  // A clean reference payload, served before any fault is armed.
  Client reference;
  ASSERT_TRUE(reference.connectTo("127.0.0.1", server.port(), &error))
      << error;
  const CallResult clean = reference.call(paredownRequest(1, net),
                                          kCallTimeoutMs);
  ASSERT_TRUE(clean.ok());
  const std::uint64_t replaysBefore = server.stats().idempotentReplays;

  Client client;
  ASSERT_TRUE(client.connectTo("127.0.0.1", server.port(), &error)) << error;
  // The first recv of the reply dies with ECONNRESET; every later recv
  // is healthy.  callWithRetry drops the connection, reconnects, and
  // resubmits.
  ASSERT_TRUE(fp::install("client.recv=error:econnreset*once"));
  std::vector<std::string> reasons;
  RetryPolicy policy;
  policy.maxAttempts = 4;
  policy.initialBackoffMs = 5.0;
  policy.attemptTimeoutMs = kCallTimeoutMs;
  policy.onRetry = [&](int, double, const std::string& reason) {
    reasons.push_back(reason);
  };
  const CallResult retried = client.callWithRetry(paredownRequest(2, net),
                                                  policy);
  ASSERT_TRUE(retried.ok()) << (retried.error ? retried.error->message
                                              : "no reply");
  ASSERT_FALSE(reasons.empty());
  EXPECT_EQ(reasons.front(), "connection lost");
  expectSameResponsePayload(*clean.response, *retried.response);
  EXPECT_GT(server.stats().idempotentReplays, replaysBefore);
}

TEST(Robustness, CallWithRetryRidesOutOverload) {
  // One executor, queue of one, occupied by a slow job + a queued one:
  // the paredown call gets kOverloaded with a retry hint until capacity
  // frees, and callWithRetry lands it without the caller doing anything.
  ServerOptions options = quickOptions(1, 1);
  options.idempotencyBytes = 0;  // keep the queue, not the table, in play
  Server server(options);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  const Network hard = testutil::hardNetwork();
  Client blocker;
  ASSERT_TRUE(blocker.connectTo("127.0.0.1", server.port(), &error)) << error;
  ASSERT_TRUE(
      blocker.sendFrame(encodeRequest(testutil::slowRequest(1, hard, 0.5))));
  // Wait until the first job occupies the executor before queueing the
  // second, so the second deterministically fills the queue instead of
  // racing the executor's pop.
  while (server.stats().runningNow == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_TRUE(
      blocker.sendFrame(encodeRequest(testutil::slowRequest(2, hard, 0.5))));
  while (server.stats().queuedNow == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  Client client;
  ASSERT_TRUE(client.connectTo("127.0.0.1", server.port(), &error)) << error;
  int overloadRetries = 0;
  RetryPolicy policy;
  policy.maxAttempts = 30;
  policy.initialBackoffMs = 20.0;
  policy.maxBackoffMs = 100.0;
  policy.attemptTimeoutMs = kCallTimeoutMs;
  policy.onRetry = [&](int, double sleepMs, const std::string& reason) {
    if (reason == toString(ErrorCode::kOverloaded)) {
      ++overloadRetries;
      // The sleep honors the server's retryAfterMs hint (50ms in
      // quickOptions) modulo the +/-25% jitter band.
      EXPECT_GE(sleepMs, 50.0 * 0.75);
    }
  };
  const Network net = designs::figure5();
  const CallResult result = client.callWithRetry(paredownRequest(7, net),
                                                 policy);
  ASSERT_TRUE(result.ok()) << (result.error ? result.error->message
                                            : "no reply");
  expectBitIdentical(net, paredownRequest(7, net), *result.response);
  EXPECT_GE(overloadRetries, 1);
  // Consume the blocker's replies so the drain is clean.
  for (int got = 0; got < 2;) {
    const auto msg = blocker.nextMessage(kCallTimeoutMs, &error);
    ASSERT_TRUE(msg) << error;
    if (msg->kind != ServerMessage::Kind::kProgress) ++got;
  }
}

TEST(Robustness, RetryGivesUpOnDeterministicRejections) {
  Server server(quickOptions(1, 4));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  Client client;
  ASSERT_TRUE(client.connectTo("127.0.0.1", server.port(), &error)) << error;

  SynthRequest bad = paredownRequest(1, designs::figure5());
  bad.algorithm = "no-such-strategy";
  int retries = 0;
  RetryPolicy policy;
  policy.attemptTimeoutMs = kCallTimeoutMs;
  policy.onRetry = [&](int, double, const std::string&) { ++retries; };
  const CallResult result = client.callWithRetry(bad, policy);
  ASSERT_TRUE(result.error.has_value());
  EXPECT_EQ(result.error->code, ErrorCode::kBadRequest);
  EXPECT_EQ(retries, 0) << "a deterministic rejection must not be retried";
}

TEST(Robustness, DegradedTierRidesTheWire) {
  Server server(quickOptions(1, 4));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  Client client;
  ASSERT_TRUE(client.connectTo("127.0.0.1", server.port(), &error)) << error;
  const Network net = designs::figure5();

  // A starved ladder run reports its rung...
  SynthRequest starved = paredownRequest(1, net);
  starved.algorithm = "ladder";
  starved.timeLimitSeconds = 1e-9;
  const CallResult degraded = client.call(starved, kCallTimeoutMs);
  ASSERT_TRUE(degraded.ok());
  EXPECT_EQ(degraded.response->degradedTier, "greedy");

  // ...an unlimited ladder run completes exactly (tier unset)...
  SynthRequest unlimited = paredownRequest(2, net);
  unlimited.algorithm = "ladder";
  unlimited.timeLimitSeconds = 0.0;
  const CallResult exact = client.call(unlimited, kCallTimeoutMs);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact.response->degradedTier, "");

  // ...and non-ladder strategies never set the field.
  const CallResult plain = client.call(paredownRequest(3, net),
                                       kCallTimeoutMs);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain.response->degradedTier, "");
}

TEST(Robustness, LadderRetryIsStableThroughTheIdempotencyTable) {
  // Ladder results are wall-clock dependent, so the solution cache
  // refuses them; retry stability comes from the idempotency table
  // instead.  A re-submitted starved ladder request must return the
  // SAME bytes, not a fresh (possibly different-tier) run.
  Server server(quickOptions(1, 4));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  Client client;
  ASSERT_TRUE(client.connectTo("127.0.0.1", server.port(), &error)) << error;

  SynthRequest request = paredownRequest(1, designs::figure5());
  request.algorithm = "ladder";
  request.timeLimitSeconds = 1e-9;
  const CallResult first = client.call(request, kCallTimeoutMs);
  ASSERT_TRUE(first.ok());
  request.id = 2;
  const CallResult second = client.call(request, kCallTimeoutMs);
  ASSERT_TRUE(second.ok());
  expectSameResponsePayload(*first.response, *second.response);
  EXPECT_EQ(server.stats().idempotentReplays, 1u);
}

TEST(Robustness, InjectedSocketFaultsAreAbsorbedBitIdentically) {
  // Periodic partial reads/writes and EINTRs on BOTH sides of the wire:
  // the continuation loops reassemble every frame and the answers stay
  // bit-identical to a healthy run.  (Bounded or periodic triggers only:
  // an always-on fatal fault would rightly kill the connection.)
  const FailpointGuard guard;
  Server server(quickOptions(2, 8));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  Client client;
  ASSERT_TRUE(client.connectTo("127.0.0.1", server.port(), &error)) << error;

  ASSERT_TRUE(fp::install(
      "server.read=partial:5*every-3;server.write=partial:7*every-2;"
      "server.poll=error:eintr*every-5;client.send=partial:3*every-2;"
      "client.recv=error:eintr*every-4"));
  const Network net = designs::figure5();
  for (std::uint64_t id = 1; id <= 5; ++id) {
    const SynthRequest request = paredownRequest(id, net);
    const CallResult result = client.call(request, kCallTimeoutMs);
    ASSERT_TRUE(result.ok()) << "id " << id
                             << (result.error ? result.error->message : "");
    expectBitIdentical(net, request, *result.response);
  }
}

TEST(Robustness, ConnectRetryAfterInjectedRefusal) {
  // connect() fails once; callWithRetry's reconnect path recovers.
  const FailpointGuard guard;
  Server server(quickOptions(1, 4));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.connectTo("127.0.0.1", server.port(), &error)) << error;
  client.close();  // force callWithRetry through connectTo()
  ASSERT_TRUE(fp::install("client.connect=error*once"));
  RetryPolicy policy;
  policy.maxAttempts = 3;
  policy.initialBackoffMs = 5.0;
  policy.attemptTimeoutMs = kCallTimeoutMs;
  const Network net = designs::figure5();
  const CallResult result = client.callWithRetry(paredownRequest(9, net),
                                                 policy);
  ASSERT_TRUE(result.ok()) << (result.error ? result.error->message
                                            : "no reply");
  expectBitIdentical(net, paredownRequest(9, net), *result.response);
}

}  // namespace
}  // namespace eblocks::server
