// End-to-end daemon tests over real loopback sockets: bit-identity with
// one-shot synthesize() (single and 8-way concurrent), the bounded-
// queue backpressure contract (reject-with-retry-after, never drop an
// accepted job), client cancellation of queued and running jobs,
// disconnect-mid-job cleanup, progress streaming, the shared solution
// cache behind the wire, and graceful drain.
#include "server/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "designs/library.h"
#include "server/client.h"
#include "server_test_util.h"
#include "synth/synthesizer.h"

namespace eblocks::server {
namespace {

using namespace std::chrono_literals;
using testutil::expectBitIdentical;
using testutil::paredownRequest;
using testutil::quickOptions;
using testutil::slowRequest;

constexpr int kCallTimeoutMs = 60000;

TEST(Server, StartsOnFreePortAndStops) {
  Server server(quickOptions(1, 4));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  EXPECT_GT(server.port(), 0);
  EXPECT_TRUE(server.running());
  server.stop();
  EXPECT_FALSE(server.running());
  server.stop();  // idempotent
}

TEST(Server, ServesBitIdenticalToOneShotSynthesize) {
  Server server(quickOptions(2, 8));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.connectTo("127.0.0.1", server.port(), &error)) << error;
  const Network net = designs::figure5();
  const SynthRequest request = paredownRequest(1, net);
  const CallResult result = client.call(request, kCallTimeoutMs);
  ASSERT_TRUE(result.ok()) << (result.error ? result.error->message
                                            : "timeout");
  EXPECT_EQ(result.response->id, request.id);
  expectBitIdentical(net, request, *result.response);
  EXPECT_EQ(result.response->cacheOutcome,
            static_cast<std::uint8_t>(synth::CacheOutcome::kDisabled));
}

TEST(Server, ServesExhaustiveBitIdentical) {
  Server server(quickOptions(1, 4));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.connectTo("127.0.0.1", server.port(), &error)) << error;
  const Network net = designs::figure5();
  SynthRequest request = paredownRequest(2, net);
  request.algorithm = "exhaustive";
  const CallResult result = client.call(request, kCallTimeoutMs);
  ASSERT_TRUE(result.ok()) << (result.error ? result.error->message
                                            : "timeout");
  expectBitIdentical(net, request, *result.response);

  // Two workers: the *answer* is thread-count invariant even though the
  // explored/pruned stripes depend on the stealing schedule, so compare
  // the served run to a local one modulo those counters.
  SynthRequest threaded = paredownRequest(3, net);
  threaded.algorithm = "exhaustive";
  threaded.threads = 2;
  const CallResult served = client.call(threaded, kCallTimeoutMs);
  ASSERT_TRUE(served.ok()) << (served.error ? served.error->message
                                            : "timeout");
  const synth::SynthResult local = testutil::localSynthesize(net, threaded);
  EXPECT_EQ(served.response->networkFrame,
            io::writeNetworkBinary(local.network));
  auto modulo = [](partition::PartitionRun run) {
    run.seconds = 0.0;
    run.explored = run.pruned = 0;
    run.workerExplored.clear();
    run.workerPruned.clear();
    return io::writePartitionRunBinary(run);
  };
  EXPECT_EQ(modulo(io::readPartitionRunBinary(served.response->runFrame)),
            modulo(local.run));
}

TEST(Server, EightConcurrentConnectionsBitIdentical) {
  // The acceptance bar: >= 8 concurrent requests over 8 connections,
  // every served result bit-identical to the local pipeline.
  Server server(quickOptions(4, 16));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  const std::vector<designs::DesignEntry> library = designs::designLibrary();
  ASSERT_GE(library.size(), 8u);
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int i = 0; i < 8; ++i) {
    clients.emplace_back([&, i] {
      Client client;
      std::string connectError;
      if (!client.connectTo("127.0.0.1", server.port(), &connectError)) {
        ++failures;
        return;
      }
      const Network& net = library[static_cast<std::size_t>(i)].network;
      const SynthRequest request =
          paredownRequest(static_cast<std::uint64_t>(100 + i), net);
      const CallResult result = client.call(request, kCallTimeoutMs);
      if (!result.ok() || result.response->id != request.id) {
        ++failures;
        return;
      }
      expectBitIdentical(net, request, *result.response);
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, 8u);
  EXPECT_EQ(stats.completed, 8u);
}

TEST(Server, MultiplexesRequestsOnOneConnection) {
  Server server(quickOptions(2, 8));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.connectTo("127.0.0.1", server.port(), &error)) << error;
  const Network net = designs::figure5();
  // Fire three requests back to back, then collect the three responses
  // (order is completion order, matched back by id).
  for (std::uint64_t id = 1; id <= 3; ++id)
    ASSERT_TRUE(client.sendFrame(encodeRequest(paredownRequest(id, net))));
  std::vector<bool> seen(4, false);
  for (int got = 0; got < 3;) {
    const auto msg = client.nextMessage(kCallTimeoutMs, &error);
    ASSERT_TRUE(msg) << error;
    if (msg->kind != ServerMessage::Kind::kResponse) continue;
    ASSERT_GE(msg->response.id, 1u);
    ASSERT_LE(msg->response.id, 3u);
    EXPECT_FALSE(seen[msg->response.id]) << "duplicate reply";
    seen[msg->response.id] = true;
    expectBitIdentical(net, paredownRequest(msg->response.id, net),
                       msg->response);
    ++got;
  }
}

TEST(Server, BackpressureRejectsButNeverDropsAccepted) {
  // One executor, queue of one: firing five slow jobs at once must
  // overflow -- the overflow gets kOverloaded with a retry hint, and
  // every *accepted* job still completes.  Retrying on the hint
  // eventually lands every request.  The replay table would answer the
  // identical re-submits without ever touching the queue, hiding the
  // backpressure under test -- disable it.
  ServerOptions options = quickOptions(1, 1);
  options.idempotencyBytes = 0;
  Server server(options);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  const Network net = testutil::hardNetwork();
  std::uint64_t rejected = 0;
  int completedCalls = 0;
  Client client;
  ASSERT_TRUE(client.connectTo("127.0.0.1", server.port(), &error)) << error;
  for (std::uint64_t id = 1; id <= 5; ++id) {
    for (;;) {
      const CallResult result =
          client.call(slowRequest(id, net, 0.15), kCallTimeoutMs);
      if (result.ok()) {
        ++completedCalls;
        break;
      }
      ASSERT_TRUE(result.error) << "call timed out";
      ASSERT_EQ(result.error->code, ErrorCode::kOverloaded)
          << result.error->message;
      ++rejected;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(result.error->retryAfterMs));
    }
  }
  EXPECT_EQ(completedCalls, 5);

  // Overflow the queue deliberately: a burst from a second connection
  // while a slow job runs must shed at least one request.
  Client burst;
  ASSERT_TRUE(burst.connectTo("127.0.0.1", server.port(), &error)) << error;
  for (std::uint64_t id = 10; id <= 15; ++id)
    ASSERT_TRUE(burst.sendFrame(encodeRequest(slowRequest(id, net, 0.15))));
  std::uint64_t burstRejected = 0;
  int burstAnswered = 0;
  while (burstAnswered < 6) {
    const auto msg = burst.nextMessage(kCallTimeoutMs, &error);
    ASSERT_TRUE(msg) << error;
    if (msg->kind == ServerMessage::Kind::kError) {
      ASSERT_EQ(msg->error.code, ErrorCode::kOverloaded);
      EXPECT_GT(msg->error.retryAfterMs, 0u);
      ++burstRejected;
      ++burstAnswered;
    } else if (msg->kind == ServerMessage::Kind::kResponse) {
      ++burstAnswered;
    }
  }
  EXPECT_GT(burstRejected, 0u) << "burst never hit the bounded queue";
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.rejectedOverload, rejected + burstRejected);
  // The no-drop invariant: accepted == completed once everything quiesced.
  EXPECT_EQ(stats.accepted, stats.completed);
}

TEST(Server, StreamsProgressTicks) {
  Server server(quickOptions(1, 4));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.connectTo("127.0.0.1", server.port(), &error)) << error;
  const CallResult result =
      client.call(slowRequest(1, testutil::hardNetwork(), 0.4), kCallTimeoutMs);
  ASSERT_TRUE(result.ok()) << (result.error ? result.error->message
                                            : "timeout");
  ASSERT_FALSE(result.progress.empty()) << "no progress ticks streamed";
  const Progress& last = result.progress.back();
  EXPECT_EQ(last.state, Progress::State::kRunning);
  EXPECT_GT(last.elapsedSeconds, 0.0);
}

TEST(Server, CancelRunningJobRepliesCancelled) {
  Server server(quickOptions(1, 4));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.connectTo("127.0.0.1", server.port(), &error)) << error;
  // A job that would run for minutes; the cancel must cut it short via
  // the search's periodic check, not wait out the limit.
  ASSERT_TRUE(client.sendFrame(
      encodeRequest(slowRequest(1, testutil::hardNetwork(), 120.0))));
  // Wait until a progress tick proves it is running, then cancel.
  for (;;) {
    const auto msg = client.nextMessage(kCallTimeoutMs, &error);
    ASSERT_TRUE(msg) << error;
    ASSERT_EQ(msg->kind, ServerMessage::Kind::kProgress);
    if (msg->progress.state == Progress::State::kRunning) break;
  }
  const auto cancelledAt = std::chrono::steady_clock::now();
  ASSERT_TRUE(client.cancelRequest(1));
  for (;;) {
    const auto msg = client.nextMessage(kCallTimeoutMs, &error);
    ASSERT_TRUE(msg) << error;
    if (msg->kind == ServerMessage::Kind::kProgress) continue;
    ASSERT_EQ(msg->kind, ServerMessage::Kind::kError);
    EXPECT_EQ(msg->error.code, ErrorCode::kCancelled);
    break;
  }
  // Far below the 120 s limit: the flag rode the timeout plumbing.
  EXPECT_LT(std::chrono::steady_clock::now() - cancelledAt, 30s);
}

TEST(Server, CancelQueuedJobRepliesImmediately) {
  Server server(quickOptions(1, 4));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.connectTo("127.0.0.1", server.port(), &error)) << error;
  const Network net = testutil::hardNetwork();
  ASSERT_TRUE(client.sendFrame(encodeRequest(slowRequest(1, net, 0.5))));
  ASSERT_TRUE(client.sendFrame(encodeRequest(slowRequest(2, net, 0.5))));
  ASSERT_TRUE(client.cancelRequest(2));
  // The queued job's cancel is answered by the loop without waiting for
  // an executor; job 1 keeps running undisturbed.
  bool sawCancelled2 = false, sawResponse1 = false;
  while (!sawCancelled2 || !sawResponse1) {
    const auto msg = client.nextMessage(kCallTimeoutMs, &error);
    ASSERT_TRUE(msg) << error;
    if (msg->kind == ServerMessage::Kind::kError) {
      EXPECT_EQ(msg->error.id, 2u);
      EXPECT_EQ(msg->error.code, ErrorCode::kCancelled);
      sawCancelled2 = true;
    } else if (msg->kind == ServerMessage::Kind::kResponse) {
      EXPECT_EQ(msg->response.id, 1u);
      sawResponse1 = true;
    }
  }
}

TEST(Server, CancelUnknownIdRejected) {
  Server server(quickOptions(1, 4));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.connectTo("127.0.0.1", server.port(), &error)) << error;
  ASSERT_TRUE(client.cancelRequest(99));
  const auto msg = client.nextMessage(kCallTimeoutMs, &error);
  ASSERT_TRUE(msg) << error;
  ASSERT_EQ(msg->kind, ServerMessage::Kind::kError);
  EXPECT_EQ(msg->error.code, ErrorCode::kUnknownRequest);
}

TEST(Server, DuplicateRequestIdRejected) {
  Server server(quickOptions(1, 4));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.connectTo("127.0.0.1", server.port(), &error)) << error;
  const Network net = testutil::hardNetwork();
  ASSERT_TRUE(client.sendFrame(encodeRequest(slowRequest(7, net, 0.5))));
  ASSERT_TRUE(client.sendFrame(encodeRequest(slowRequest(7, net, 0.5))));
  bool sawDuplicate = false, sawResponse = false;
  while (!sawDuplicate || !sawResponse) {
    const auto msg = client.nextMessage(kCallTimeoutMs, &error);
    ASSERT_TRUE(msg) << error;
    if (msg->kind == ServerMessage::Kind::kError) {
      EXPECT_EQ(msg->error.code, ErrorCode::kDuplicateRequest);
      sawDuplicate = true;
    } else if (msg->kind == ServerMessage::Kind::kResponse) {
      EXPECT_EQ(msg->response.id, 7u);
      sawResponse = true;
    }
  }
}

TEST(Server, BadRequestContentRejectedCleanly) {
  Server server(quickOptions(1, 4));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.connectTo("127.0.0.1", server.port(), &error)) << error;
  const Network net = designs::figure5();

  SynthRequest unknownAlgorithm = paredownRequest(1, net);
  unknownAlgorithm.algorithm = "simulated-annealing";
  CallResult result = client.call(unknownAlgorithm, kCallTimeoutMs);
  ASSERT_TRUE(result.error) << "expected kBadRequest";
  EXPECT_EQ(result.error->code, ErrorCode::kBadRequest);

  SynthRequest badNetwork = paredownRequest(2, net);
  badNetwork.networkFrame = "these bytes are not an EBLK network frame";
  result = client.call(badNetwork, kCallTimeoutMs);
  ASSERT_TRUE(result.error) << "expected kBadRequest";
  EXPECT_EQ(result.error->code, ErrorCode::kBadRequest);

  SynthRequest badBudget = paredownRequest(3, net);
  badBudget.inputs = 0;
  result = client.call(badBudget, kCallTimeoutMs);
  ASSERT_TRUE(result.error) << "expected kBadRequest";
  EXPECT_EQ(result.error->code, ErrorCode::kBadRequest);

  // The connection survived all three rejections.
  const SynthRequest good = paredownRequest(4, net);
  result = client.call(good, kCallTimeoutMs);
  ASSERT_TRUE(result.ok());
  expectBitIdentical(net, good, *result.response);
}

TEST(Server, DisconnectMidJobCancelsAndServerSurvives) {
  Server server(quickOptions(1, 4));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  {
    Client doomed;
    ASSERT_TRUE(doomed.connectTo("127.0.0.1", server.port(), &error))
        << error;
    ASSERT_TRUE(doomed.sendFrame(
        encodeRequest(slowRequest(1, testutil::hardNetwork(), 120.0))));
    // Let the job reach an executor, then vanish without a goodbye.
    std::this_thread::sleep_for(200ms);
  }
  // The orphaned job must be cancelled via the search's periodic check,
  // freeing the lone executor long before the 120 s limit.
  const auto deadline = std::chrono::steady_clock::now() + 30s;
  while (server.stats().cancelled == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(20ms);
  EXPECT_EQ(server.stats().cancelled, 1u);
  testutil::expectServerStillServes(server, designs::figure5());
}

TEST(Server, SharedCacheBehindTheWire) {
  ServerOptions options = quickOptions(1, 4);
  options.cacheEnabled = true;  // in-memory store shared by all requests
  // The replay table would answer the identical warm request before the
  // solution cache ever saw it; this test is about the cache, so turn
  // replays off (server_test below covers them separately).
  options.idempotencyBytes = 0;
  Server server(options);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.connectTo("127.0.0.1", server.port(), &error)) << error;
  const Network net = designs::figure5();

  SynthRequest first = paredownRequest(1, net);
  first.useCache = true;
  const CallResult cold = client.call(first, kCallTimeoutMs);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold.response->cacheOutcome,
            static_cast<std::uint8_t>(synth::CacheOutcome::kMiss));

  SynthRequest second = paredownRequest(2, net);
  second.useCache = true;
  const CallResult warm = client.call(second, kCallTimeoutMs);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm.response->cacheOutcome,
            static_cast<std::uint8_t>(synth::CacheOutcome::kHit));
  // A cache hit is bit-identical to the cold run, wall time included --
  // the stored record IS the cold run.
  EXPECT_EQ(warm.response->networkFrame, cold.response->networkFrame);
  EXPECT_EQ(warm.response->runFrame, cold.response->runFrame);

  // Per-request opt-out: same design, cache off, fresh run.
  SynthRequest optOut = paredownRequest(3, net);
  optOut.useCache = false;
  const CallResult fresh = client.call(optOut, kCallTimeoutMs);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh.response->cacheOutcome,
            static_cast<std::uint8_t>(synth::CacheOutcome::kDisabled));
  EXPECT_EQ(fresh.response->networkFrame, cold.response->networkFrame);
}

TEST(Server, GracefulDrainFlushesInFlightReplies) {
  Server server(quickOptions(1, 4));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.connectTo("127.0.0.1", server.port(), &error)) << error;
  const Network net = testutil::hardNetwork();
  const SynthRequest request = slowRequest(1, net, 0.3);
  ASSERT_TRUE(client.sendFrame(encodeRequest(request)));
  std::this_thread::sleep_for(50ms);  // let the job start

  std::thread stopper([&server] { server.stop(); });
  // The drain must wait for the in-flight job and flush its reply.
  bool sawReply = false;
  for (;;) {
    const auto msg = client.nextMessage(kCallTimeoutMs, &error);
    if (!msg) break;  // server closed the connection after the flush
    if (msg->kind == ServerMessage::Kind::kResponse) {
      EXPECT_EQ(msg->response.id, 1u);
      sawReply = true;
    }
  }
  stopper.join();
  EXPECT_TRUE(sawReply) << "drain dropped an accepted job's reply";
  EXPECT_EQ(server.stats().completed, 1u);
}

TEST(Server, DrainingRejectsNewRequestsWithShuttingDown) {
  Server server(quickOptions(1, 4));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.connectTo("127.0.0.1", server.port(), &error)) << error;
  const Network net = testutil::hardNetwork();
  ASSERT_TRUE(client.sendFrame(encodeRequest(slowRequest(1, net, 120.0))));
  std::this_thread::sleep_for(100ms);  // job is running

  // The running job holds the drain open: a request arriving mid-drain
  // is refused as kShuttingDown, then the client releases the drain by
  // cancelling its long job.
  std::thread stopper([&server] { server.stop(); });
  std::this_thread::sleep_for(100ms);  // draining flag is set
  ASSERT_TRUE(client.sendFrame(encodeRequest(paredownRequest(2, net))));
  bool sawShuttingDown = false, sawCancelled = false;
  for (;;) {
    const auto msg = client.nextMessage(kCallTimeoutMs, &error);
    if (!msg) break;  // connection closed once the drain finished
    if (msg->kind != ServerMessage::Kind::kError) continue;
    if (msg->error.code == ErrorCode::kShuttingDown) {
      sawShuttingDown = true;
      ASSERT_TRUE(client.cancelRequest(1));
    }
    if (msg->error.code == ErrorCode::kCancelled) sawCancelled = true;
  }
  stopper.join();
  EXPECT_TRUE(sawShuttingDown);
  EXPECT_TRUE(sawCancelled);
}

}  // namespace
}  // namespace eblocks::server
