// Adversarial wire-input tests: raw bytes straight at the socket --
// wrong protocols, hostile length fields, corrupted checksums, unknown
// tags, truncated frames, drip-fed frames, mid-request disconnects.
// The contract under attack is always the same: the server answers with
// a clean kBadFrame (or just drops the connection), never crashes,
// never wedges a worker, and keeps serving well-formed clients.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "designs/library.h"
#include "io/binary.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server_test_util.h"

namespace eblocks::server {
namespace {

using namespace std::chrono_literals;
using testutil::paredownRequest;
using testutil::quickOptions;

class MalformedInput : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<Server>(quickOptions(1, 4));
    std::string error;
    ASSERT_TRUE(server_->start(&error)) << error;
  }

  /// Sends raw bytes and expects the kBadFrame reply followed by the
  /// server closing the connection.
  void expectBadFrameAndClose(const std::string& bytes) {
    Client client;
    std::string error;
    ASSERT_TRUE(client.connectTo("127.0.0.1", server_->port(), &error))
        << error;
    ASSERT_TRUE(client.sendFrame(bytes, &error)) << error;
    const auto msg = client.nextMessage(30000, &error);
    ASSERT_TRUE(msg) << error;
    ASSERT_EQ(msg->kind, ServerMessage::Kind::kError);
    EXPECT_EQ(msg->error.code, ErrorCode::kBadFrame);
    // After the error flushes, the server closes.
    EXPECT_FALSE(client.nextFrame(30000, &error));
    EXPECT_EQ(error, "connection closed by server");
  }

  std::unique_ptr<Server> server_;
};

TEST_F(MalformedInput, HttpRequestGetsBadFrame) {
  // The classic wrong-protocol probe: readable ASCII has no EBLK magic.
  expectBadFrameAndClose("GET / HTTP/1.0\r\nHost: example\r\n\r\n");
  testutil::expectServerStillServes(*server_, designs::figure5());
}

TEST_F(MalformedInput, OversizedDeclaredLengthRejectedFromHeaderAlone) {
  // 16 header bytes claiming a 1 TiB payload: the reject must come from
  // the header peek, without the server waiting for (or buffering) the
  // declared bytes.
  std::string header = encodeCancel(CancelRequest{1}).substr(0, 16);
  const std::uint64_t huge = 1ull << 40;
  for (int i = 0; i < 8; ++i)
    header[8 + i] = static_cast<char>((huge >> (8 * i)) & 0xff);
  expectBadFrameAndClose(header);
  testutil::expectServerStillServes(*server_, designs::figure5());
}

TEST_F(MalformedInput, CorruptedChecksumGetsBadFrame) {
  std::string frame = encodeRequest(paredownRequest(1, designs::figure5()));
  frame[frame.size() / 2] =
      static_cast<char>(frame[frame.size() / 2] ^ 0x10);  // payload bit flip
  expectBadFrameAndClose(frame);
  testutil::expectServerStillServes(*server_, designs::figure5());
}

TEST_F(MalformedInput, BadVersionGetsBadFrame) {
  std::string frame = encodeCancel(CancelRequest{1});
  frame[4] = static_cast<char>(0xff);
  frame[5] = static_cast<char>(0xff);
  expectBadFrameAndClose(frame);
  testutil::expectServerStillServes(*server_, designs::figure5());
}

TEST_F(MalformedInput, DiskFormatTagSentToServerGetsBadFrame) {
  // A perfectly valid *network* frame is still not a server message.
  expectBadFrameAndClose(io::writeNetworkBinary(designs::figure5()));
  testutil::expectServerStillServes(*server_, designs::figure5());
}

TEST_F(MalformedInput, TruncatedFrameThenDisconnectIsHarmless) {
  const std::string frame =
      encodeRequest(paredownRequest(1, designs::figure5()));
  {
    Client client;
    std::string error;
    ASSERT_TRUE(client.connectTo("127.0.0.1", server_->port(), &error))
        << error;
    // Half a frame, then vanish: the server is left holding an
    // incomplete read buffer it must simply discard.
    ASSERT_TRUE(client.sendFrame(frame.substr(0, frame.size() / 2), &error))
        << error;
    std::this_thread::sleep_for(100ms);
  }
  testutil::expectServerStillServes(*server_, designs::figure5());
}

TEST_F(MalformedInput, DripFedFrameStillAssembles) {
  // The inverse attack surface: a *valid* frame arriving one fragment
  // at a time must reassemble and be served normally.
  Client client;
  std::string error;
  ASSERT_TRUE(client.connectTo("127.0.0.1", server_->port(), &error))
      << error;
  const Network net = designs::figure5();
  const SynthRequest request = paredownRequest(1, net);
  const std::string frame = encodeRequest(request);
  const std::size_t chunk = frame.size() / 7 + 1;
  for (std::size_t off = 0; off < frame.size(); off += chunk) {
    ASSERT_TRUE(
        client.sendFrame(frame.substr(off, chunk), &error)) << error;
    std::this_thread::sleep_for(10ms);
  }
  for (;;) {
    const auto msg = client.nextMessage(30000, &error);
    ASSERT_TRUE(msg) << error;
    if (msg->kind == ServerMessage::Kind::kProgress) continue;
    ASSERT_EQ(msg->kind, ServerMessage::Kind::kResponse);
    testutil::expectBitIdentical(net, request, msg->response);
    break;
  }
}

TEST_F(MalformedInput, GarbageFloodNeverWedgesTheServer) {
  // Several hostile connections in a row, each a different malformation;
  // afterwards the server must still serve a clean request with one
  // executor -- proof no worker thread was wedged or leaked.
  const std::string valid =
      encodeRequest(paredownRequest(1, designs::figure5()));
  const std::string attacks[] = {
      std::string(64, '\0'),
      std::string("EBLK"),  // magic alone, then EOF
      valid.substr(0, 20),
      [&] {
        std::string f = valid;
        f[6] = 100;  // unknown tag byte
        return f;
      }(),
  };
  for (const std::string& attack : attacks) {
    Client client;
    std::string error;
    ASSERT_TRUE(client.connectTo("127.0.0.1", server_->port(), &error))
        << error;
    ASSERT_TRUE(client.sendFrame(attack, &error)) << error;
    // Whatever the server does (error frame, close, or silent wait for
    // more bytes), disconnecting must leave it healthy.
    client.nextFrame(200, &error);
  }
  testutil::expectServerStillServes(*server_, designs::figure5());
  EXPECT_EQ(server_->stats().synthFailed, 0u);
}

}  // namespace
}  // namespace eblocks::server
