// The crucial end-to-end property: synthesis preserves behavior.  Every
// library design and a population of random designs are synthesized and
// co-simulated against their originals under scripted and fuzzed stimuli.
#include <gtest/gtest.h>

#include "designs/library.h"
#include "randgen/generator.h"
#include "sim/equivalence.h"
#include "synth/synthesizer.h"

namespace eblocks::synth {
namespace {

TEST(SynthEquivalence, GarageScripted) {
  const Network original = designs::garageOpenAtNight();
  const SynthResult r = synthesize(original);
  sim::Stimulus st;
  st.set("garage_door", 1)
      .set("daylight", 1)
      .set("daylight", 0)
      .set("garage_door", 0)
      .tick(3)
      .set("garage_door", 1);
  const auto mismatch = sim::checkEquivalence(original, r.network, st);
  EXPECT_FALSE(mismatch.has_value()) << mismatch->describe();
}

TEST(SynthEquivalence, Figure5Scripted) {
  const Network original = designs::figure5();
  const SynthResult r = synthesize(original);
  sim::Stimulus st;
  st.set("start_button", 1).tick(4).set("start_button", 0).tick(10);
  st.set("start_button", 1).tick(2).set("start_button", 0).tick(12);
  const auto mismatch = sim::checkEquivalence(original, r.network, st);
  EXPECT_FALSE(mismatch.has_value()) << mismatch->describe();
}

class LibraryEquivalence
    : public ::testing::TestWithParam<std::string> {};

TEST_P(LibraryEquivalence, FuzzedStimuli) {
  const Network original = designs::byName(GetParam());
  for (const char* algorithm : {"paredown", "aggregation"}) {
    SynthOptions options;
    options.algorithm = algorithm;
    const SynthResult r = synthesize(original, options);
    const auto mismatch =
        sim::fuzzEquivalence(original, r.network, 3, 60, 0xE81);
    EXPECT_FALSE(mismatch.has_value())
        << GetParam() << " [" << algorithm << "]: " << mismatch->describe();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDesigns, LibraryEquivalence,
    ::testing::Values("Ignition Illuminator", "Night Lamp Controller",
                      "Entry Gate Detector", "Carpool Alert",
                      "Cafeteria Food Alert", "Podium Timer 2",
                      "Any Window Open Alarm", "Two Button Light",
                      "Doorbell Extender 1", "Doorbell Extender 2",
                      "Podium Timer 3", "Noise At Night Detector",
                      "Two-Zone Security", "Motion on Property Alert",
                      "Timed Passage"),
    [](const auto& paramInfo) {
      std::string n = paramInfo.param;
      for (char& c : n)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return n;
    });

struct RandomCase {
  int innerBlocks;
  std::uint32_t seed;
};

class RandomEquivalence : public ::testing::TestWithParam<RandomCase> {};

TEST_P(RandomEquivalence, SynthesisPreservesBehavior) {
  const Network original = randgen::randomNetwork(randgen::GeneratorOptions{
      .innerBlocks = GetParam().innerBlocks, .seed = GetParam().seed});
  const SynthResult r = synthesize(original);
  const auto mismatch =
      sim::fuzzEquivalence(original, r.network, 2, 50, GetParam().seed);
  EXPECT_FALSE(mismatch.has_value()) << mismatch->describe();
}

INSTANTIATE_TEST_SUITE_P(
    RandomDesigns, RandomEquivalence,
    ::testing::Values(RandomCase{4, 101}, RandomCase{6, 102},
                      RandomCase{8, 103}, RandomCase{10, 104},
                      RandomCase{14, 105}, RandomCase{18, 106},
                      RandomCase{25, 107}, RandomCase{32, 108}),
    [](const auto& paramInfo) {
      return "n" + std::to_string(paramInfo.param.innerBlocks) + "_s" +
             std::to_string(paramInfo.param.seed);
    });

TEST(SynthEquivalence, SignalsModeAlsoPreservesBehavior) {
  SynthOptions options;
  options.spec.mode = CountingMode::kSignals;
  const Network original = designs::figure5();
  const SynthResult r = synthesize(original, options);
  const auto mismatch = sim::fuzzEquivalence(original, r.network, 3, 60, 7);
  EXPECT_FALSE(mismatch.has_value()) << mismatch->describe();
}

}  // namespace
}  // namespace eblocks::synth
