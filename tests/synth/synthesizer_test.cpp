#include "synth/synthesizer.h"

#include <gtest/gtest.h>

#include "blocks/catalog.h"
#include "designs/library.h"

namespace eblocks::synth {
namespace {

using blocks::defaultCatalog;

TEST(Synthesizer, GarageBecomesOneProgrammableBlock) {
  const Network source = designs::garageOpenAtNight();
  const SynthResult r = synthesize(source);
  EXPECT_EQ(r.originalInner, 2);
  EXPECT_EQ(r.innerAfter, 1);
  EXPECT_EQ(r.programmableBlocks, 1);
  ASSERT_EQ(r.blocks.size(), 1u);
  EXPECT_EQ(r.blocks[0].replaced.size(), 2u);
  // The synthesized network: 2 sensors + 1 prog + 1 led = 4 blocks.
  EXPECT_EQ(r.network.blockCount(), 4u);
  EXPECT_TRUE(r.network.findBlock("prog0").has_value());
  // Sensors and outputs survive by name.
  EXPECT_TRUE(r.network.findBlock("garage_door").has_value());
  EXPECT_TRUE(r.network.findBlock("bedroom_led").has_value());
}

TEST(Synthesizer, Figure5PareDownShape) {
  const SynthResult r = synthesize(designs::figure5());
  EXPECT_EQ(r.originalInner, 8);
  EXPECT_EQ(r.innerAfter, 3);
  EXPECT_EQ(r.programmableBlocks, 2);
  // Network: 1 sensor + 3 LEDs + 2 prog + node 7 = 7 blocks.
  EXPECT_EQ(r.network.blockCount(), 7u);
  const auto problems = r.network.validate();
  EXPECT_TRUE(problems.empty()) << problems.front();
}

TEST(Synthesizer, SynthesizedNetworkIsWellFormed) {
  for (const auto& entry : designs::designLibrary()) {
    const SynthResult r = synthesize(entry.network);
    const auto problems = r.network.validate();
    EXPECT_TRUE(problems.empty())
        << entry.name << ": " << problems.front();
  }
}

TEST(Synthesizer, CSourcesEmittedPerBlock) {
  const SynthResult r = synthesize(designs::figure5());
  for (const auto& b : r.blocks) {
    EXPECT_FALSE(b.cSource.empty());
    EXPECT_NE(b.cSource.find("eb_eval"), std::string::npos);
  }
}

TEST(Synthesizer, EmitCOptOut) {
  SynthOptions options;
  options.emitC = false;
  const SynthResult r = synthesize(designs::figure5(), options);
  for (const auto& b : r.blocks) EXPECT_TRUE(b.cSource.empty());
}

TEST(Synthesizer, ExhaustiveAlgorithmSelectable) {
  SynthOptions options;
  options.algorithm = "exhaustive";
  const SynthResult r = synthesize(designs::figure5(), options);
  EXPECT_EQ(r.run.algorithm, "exhaustive");
  EXPECT_EQ(r.innerAfter, 3);
}

TEST(Synthesizer, AggregationAlgorithmSelectable) {
  SynthOptions options;
  options.algorithm = "aggregation";
  const SynthResult r = synthesize(designs::figure5(), options);
  EXPECT_EQ(r.run.algorithm, "aggregation");
  // Aggregation may be worse but must stay valid.
  EXPECT_TRUE(r.network.validate().empty());
}

TEST(Synthesizer, PartitionRunCountersPlumbedThroughSynthResult) {
  // The PartitionRun record -- explored, pruned, and the per-worker
  // vectors -- must survive the trip through synthesize() so callers can
  // report search effort without re-running the partitioner.
  SynthOptions options;
  options.algorithm = "exhaustive";
  options.engine.threads = 1;
  const SynthResult on = synthesize(designs::figure5(), options);
  EXPECT_GT(on.run.explored, 0u);
  options.engine.pruningBound = false;
  const SynthResult off = synthesize(designs::figure5(), options);
  EXPECT_EQ(off.run.pruned, 0u);
  EXPECT_LE(on.run.explored, off.run.explored);
  EXPECT_EQ(on.innerAfter, off.innerAfter);
  // Parallel runs carry the per-worker counters, kept parallel.
  options.engine.pruningBound = true;
  options.engine.threads = 4;
  const SynthResult parallel = synthesize(designs::figure5(), options);
  EXPECT_EQ(parallel.run.workerPruned.size(),
            parallel.run.workerExplored.size());
}

TEST(Synthesizer, UnknownAlgorithmThrowsWithRegistryNames) {
  SynthOptions options;
  options.algorithm = "simulated-annealing";
  try {
    synthesize(designs::figure5(), options);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("simulated-annealing"), std::string::npos);
    EXPECT_NE(what.find("paredown"), std::string::npos);
  }
}

TEST(Synthesizer, RejectsMalformedSource) {
  const auto& cat = defaultCatalog();
  Network net;
  net.addBlock("s", cat.button());
  net.addBlock("g", cat.and2());  // inputs undriven, drives nothing
  EXPECT_THROW(synthesize(net), std::invalid_argument);
}

TEST(Synthesizer, NoPartitionsMeansStructuralCopy) {
  const Network source = designs::byName("Any Window Open Alarm");
  const SynthResult r = synthesize(source);
  EXPECT_EQ(r.programmableBlocks, 0);
  EXPECT_EQ(r.network.blockCount(), source.blockCount());
  EXPECT_EQ(r.network.connections().size(), source.connections().size());
}

TEST(Synthesizer, ReportMentionsEveryProgrammableBlock) {
  const SynthResult r = synthesize(designs::figure5());
  const std::string report = r.report();
  EXPECT_NE(report.find("8 -> 3"), std::string::npos) << report;
  for (const auto& b : r.blocks)
    EXPECT_NE(report.find(b.instanceName), std::string::npos);
}

TEST(Synthesizer, ProgrammableTypesRecordTargetSpec) {
  const SynthResult r = synthesize(designs::figure5());
  for (const auto& b : r.blocks) {
    const auto id = r.network.findBlock(b.instanceName);
    ASSERT_TRUE(id.has_value());
    const BlockType& t = *r.network.block(*id).type;
    EXPECT_TRUE(t.programmable());
    EXPECT_NE(t.name().find("prog_2x2"), std::string::npos);
    EXPECT_LE(t.inputCount(), 2);
    EXPECT_LE(t.outputCount(), 2);
  }
}

}  // namespace
}  // namespace eblocks::synth
