// The solution store's correctness battery (cache/solution_store.h).
//
// The cache's one promise: synthesis THROUGH the cache is observably
// identical to synthesis without it -- bit-identical networks, programs,
// and partitions -- just faster.  Exact hits are compared byte-for-byte
// against fresh runs (Table-1 designs and a 25-design random corpus);
// near-miss warm starts must preserve bit-identity while exploring
// fewer-or-equal nodes (the engine's warm-start contract); renamed
// variants must hit through the canonical hash; damaged record files
// must degrade to a miss, never a crash; and eight threads hammering a
// single store must be clean under the TSan CI job (which runs every
// cache.* test).
#include "cache/solution_store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/failpoint.h"
#include "designs/library.h"
#include "io/binary.h"
#include "partition/engine.h"
#include "randgen/generator.h"
#include "synth/synthesizer.h"

namespace eblocks::cache {
namespace {

namespace fs = std::filesystem;

void expectSamePartitions(const partition::Partitioning& a,
                          const partition::Partitioning& b) {
  ASSERT_EQ(a.partitions.size(), b.partitions.size());
  for (std::size_t i = 0; i < a.partitions.size(); ++i)
    EXPECT_EQ(a.partitions[i].toVector(), b.partitions[i].toVector());
}

/// Bit-identical synthesis results: same binary network frame, same
/// partitions, same generated C.
void expectBitIdentical(const synth::SynthResult& a,
                        const synth::SynthResult& b,
                        const std::string& label) {
  EXPECT_EQ(io::writeNetworkBinary(a.network),
            io::writeNetworkBinary(b.network))
      << label;
  expectSamePartitions(a.run.result, b.run.result);
  ASSERT_EQ(a.blocks.size(), b.blocks.size()) << label;
  for (std::size_t i = 0; i < a.blocks.size(); ++i)
    EXPECT_EQ(a.blocks[i].cSource, b.blocks[i].cSource) << label;
}

/// A fresh empty directory under the test temp root.
std::string freshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "eblocks_store_" + name;
  fs::remove_all(dir);
  return dir;
}

partition::PartitionRun runFor(const Network& net,
                               const std::string& algorithm,
                               const partition::ProgBlockSpec& spec = {},
                               const partition::EngineOptions& engine = {}) {
  const partition::PartitionProblem problem(net, spec);
  return partition::runPartitioner(algorithm, problem, engine);
}

// --- exact hits are bit-identical -----------------------------------------

TEST(SolutionStore, ExactHitBitIdenticalOnTable1) {
  const auto store = std::make_shared<SolutionStore>(StoreOptions{});
  for (const auto& e : designs::designLibrary()) {
    synth::SynthOptions options;
    options.algorithm = e.innerBlocks <= 16 ? "exhaustive" : "fm";
    options.engine.threads = 1;

    const synth::SynthResult fresh = synth::synthesize(e.network, options);

    options.cache = store;
    // The first pass may itself HIT: the library contains a semantically
    // identical pair ("Ignition Illuminator" / "Night Lamp Controller"),
    // and serving one's record for the other is the cache working as
    // designed -- bit-identity below is the contract either way.
    const synth::SynthResult cold = synth::synthesize(e.network, options);
    const synth::SynthResult warm = synth::synthesize(e.network, options);
    EXPECT_EQ(warm.cacheOutcome, synth::CacheOutcome::kHit) << e.name;

    expectBitIdentical(cold, fresh, e.name);
    expectBitIdentical(warm, fresh, e.name);
  }
  EXPECT_GE(store->stats().hits, designs::designLibrary().size());
}

TEST(SolutionStore, ExactHitBitIdenticalOn25RandomDesigns) {
  const auto store = std::make_shared<SolutionStore>(StoreOptions{});
  for (int i = 0; i < 25; ++i) {
    randgen::GeneratorOptions gen;
    gen.innerBlocks = 4 + (i * 3) % 25;
    gen.seed = 9000 + static_cast<std::uint32_t>(i);
    const Network net = randgen::randomNetwork(gen);
    const std::string label = "random#" + std::to_string(i);

    synth::SynthOptions options;
    options.algorithm = "fm";
    const synth::SynthResult fresh = synth::synthesize(net, options);

    options.cache = store;
    (void)synth::synthesize(net, options);  // populate
    const synth::SynthResult warm = synth::synthesize(net, options);
    EXPECT_EQ(warm.cacheOutcome, synth::CacheOutcome::kHit) << label;
    expectBitIdentical(warm, fresh, label);
  }
}

// --- renamed variants hit through the canonical hash -----------------------

TEST(SolutionStore, RenamedReorderedVariantHits) {
  const auto store = std::make_shared<SolutionStore>(StoreOptions{});
  const Network original = designs::garageOpenAtNight();

  synth::SynthOptions options;
  options.algorithm = "exhaustive";
  options.engine.threads = 1;
  options.cache = store;
  const synth::SynthResult first = synth::synthesize(original, options);
  EXPECT_NE(first.cacheOutcome, synth::CacheOutcome::kHit);

  for (std::uint32_t seed = 1; seed <= 3; ++seed) {
    const Network variant = randgen::relabeledCopy(original, seed, "blk");
    const synth::SynthResult hit = synth::synthesize(variant, options);
    EXPECT_EQ(hit.cacheOutcome, synth::CacheOutcome::kHit)
        << "variant seed " << seed;
    // The translated result is verified inside synthesize(); equal cost
    // proves the hit carried the stored optimum, not just any solution.
    EXPECT_EQ(hit.innerAfter, first.innerAfter);
    EXPECT_EQ(hit.programmableBlocks, first.programmableBlocks);
  }
  EXPECT_EQ(store->stats().hits, 3u);
}

// --- near-miss warm starts ---------------------------------------------------

TEST(SolutionStore, NearMissWarmStartKeepsBitIdentityWithFewerNodes) {
  const Network net = randgen::randomNetwork(
      randgen::GeneratorOptions::largeNetwork(14, 5));

  synth::SynthOptions tight;
  tight.algorithm = "exhaustive";
  tight.engine.threads = 1;

  synth::SynthOptions loose = tight;
  loose.spec.inputs = 3;
  loose.spec.outputs = 3;

  // Cacheless baseline for the loose request.
  const synth::SynthResult baseline = synth::synthesize(net, loose);

  // Store the tight-budget solution, then make the loose request: the
  // exact key differs (different spec) but the structure matches and the
  // stored budget is <= the requested one -> warm start.
  const auto store = std::make_shared<SolutionStore>(StoreOptions{});
  tight.cache = store;
  (void)synth::synthesize(net, tight);
  loose.cache = store;
  const synth::SynthResult warm = synth::synthesize(net, loose);

  EXPECT_EQ(warm.cacheOutcome, synth::CacheOutcome::kWarmStart);
  expectBitIdentical(warm, baseline, "near-miss warm start");
  EXPECT_LE(warm.run.explored, baseline.run.explored);
  EXPECT_EQ(store->stats().warmStarts, 1u);
}

TEST(SolutionStore, NearMissRefusesTighterBudgetsAndOtherModes) {
  const Network net = designs::garageOpenAtNight();
  const auto store = std::make_shared<SolutionStore>(StoreOptions{});

  partition::ProgBlockSpec loose;
  loose.inputs = 3;
  loose.outputs = 3;
  store->insert(net, "exhaustive", loose, {},
                runFor(net, "exhaustive", loose));

  // A 3x3 solution is not necessarily valid at 2x2: no warm start.
  EXPECT_FALSE(store->nearMiss(net, partition::ProgBlockSpec{}, {}));

  // Same budget, different counting mode: no warm start either.
  partition::ProgBlockSpec signals = loose;
  signals.mode = CountingMode::kSignals;
  EXPECT_FALSE(store->nearMiss(net, signals, {}));
}

// --- cacheability policy ------------------------------------------------------

TEST(SolutionStore, RefusesTimedOutAndNondeterministicRuns) {
  const Network net = designs::garageOpenAtNight();
  SolutionStore store{StoreOptions{}};

  partition::PartitionRun run = runFor(net, "paredown");
  partition::PartitionRun timedOut = run;
  timedOut.timedOut = true;
  store.insert(net, "paredown", {}, {}, timedOut);
  EXPECT_EQ(store.recordCount(), 0u);

  // lns driven by the wall clock (rounds == 0) is not reproducible.
  store.insert(net, "lns", {}, {}, run);
  EXPECT_EQ(store.recordCount(), 0u);

  // Unknown custom strategies never qualify.
  store.insert(net, "my_custom_strategy", {}, {}, run);
  EXPECT_EQ(store.recordCount(), 0u);

  // Fixed-round lns does qualify.
  partition::EngineOptions lns;
  lns.lnsRounds = 4;
  store.insert(net, "lns", {}, lns, run);
  EXPECT_EQ(store.recordCount(), 1u);
}

// --- persistence ---------------------------------------------------------------

TEST(SolutionStore, RecordsSurviveAcrossStoreInstances) {
  const std::string dir = freshDir("persist");
  const Network net = designs::garageOpenAtNight();
  const partition::PartitionRun run = runFor(net, "paredown");

  {
    SolutionStore store{StoreOptions{dir}};
    store.insert(net, "paredown", {}, {}, run);
    EXPECT_EQ(store.recordCount(), 1u);
  }

  SolutionStore reopened{StoreOptions{dir}};
  EXPECT_EQ(reopened.recordCount(), 1u);
  const auto hit = reopened.lookup(net, "paredown", {}, {});
  ASSERT_TRUE(hit.has_value());
  expectSamePartitions(hit->result, run.result);
  EXPECT_EQ(hit->explored, run.explored);
  fs::remove_all(dir);
}

// --- corruption degrades to a miss ----------------------------------------------

TEST(SolutionStore, CorruptRecordFilesDegradeToMissNotCrash) {
  const Network net = designs::garageOpenAtNight();
  const partition::PartitionRun run = runFor(net, "paredown");

  const auto damage = [&](const std::string& mode,
                          void (*vandal)(const fs::path&)) {
    const std::string dir = freshDir("corrupt_" + mode);
    {
      SolutionStore store{StoreOptions{dir}};
      store.insert(net, "paredown", {}, {}, run);
    }
    fs::path victim;
    for (const auto& de : fs::directory_iterator(dir))
      if (de.path().extension() == ".eblk") victim = de.path();
    ASSERT_FALSE(victim.empty()) << mode;
    vandal(victim);

    // Reopening over the damage: the record is dropped, not trusted.
    SolutionStore reopened{StoreOptions{dir}};
    EXPECT_EQ(reopened.recordCount(), 0u) << mode;
    EXPECT_GE(reopened.stats().corrupt, 1u) << mode;
    EXPECT_FALSE(reopened.lookup(net, "paredown", {}, {}).has_value())
        << mode;
    // And the store still works: a re-insert serves hits again.
    reopened.insert(net, "paredown", {}, {}, run);
    EXPECT_TRUE(reopened.lookup(net, "paredown", {}, {}).has_value())
        << mode;
    fs::remove_all(dir);
  };

  damage("truncated", [](const fs::path& p) {
    fs::resize_file(p, fs::file_size(p) / 2);
  });
  damage("bitflip", [](const fs::path& p) {
    std::fstream f(p, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(0, std::ios::end);
    const std::streamoff mid = f.tellg() / 2;
    f.seekg(mid);
    char c = 0;
    f.get(c);
    f.seekp(mid);
    f.put(static_cast<char>(c ^ 0x40));
  });
  damage("garbage", [](const fs::path& p) {
    std::ofstream f(p, std::ios::binary | std::ios::trunc);
    f << "this is not an EBLK frame";
  });
}

TEST(SolutionStore, RotAfterIndexingIsAMissOnTheLiveStore) {
  const std::string dir = freshDir("liverot");
  const Network net = designs::garageOpenAtNight();
  SolutionStore store{StoreOptions{dir}};
  store.insert(net, "paredown", {}, {}, runFor(net, "paredown"));

  for (const auto& de : fs::directory_iterator(dir))
    if (de.path().extension() == ".eblk")
      fs::resize_file(de.path(), fs::file_size(de.path()) / 3);

  // Same store instance, already-indexed entry, rotten file: miss.
  EXPECT_FALSE(store.lookup(net, "paredown", {}, {}).has_value());
  EXPECT_GE(store.stats().corrupt, 1u);
  fs::remove_all(dir);
}

TEST(SolutionStore, LeftoverTempFilesAreSweptAtOpen) {
  const std::string dir = freshDir("tmpsweep");
  fs::create_directories(dir);
  const fs::path leftover = fs::path(dir) / "deadbeef.eblk.tmp7";
  std::ofstream(leftover, std::ios::binary) << "half-written";
  ASSERT_TRUE(fs::exists(leftover));

  SolutionStore store{StoreOptions{dir}};
  EXPECT_FALSE(fs::exists(leftover));
  EXPECT_EQ(store.recordCount(), 0u);
  fs::remove_all(dir);
}

// --- LRU byte budget --------------------------------------------------------------

TEST(SolutionStore, EvictsLeastRecentlyUsedWhenOverBudget) {
  const Network a = designs::garageOpenAtNight();
  const Network b = designs::figure5();
  const Network c = designs::byName("Noise At Night Detector");
  const partition::PartitionRun runA = runFor(a, "paredown");
  const partition::PartitionRun runB = runFor(b, "paredown");
  const partition::PartitionRun runC = runFor(c, "paredown");

  // Measure the three record sizes with an unlimited store.
  std::uint64_t total = 0;
  {
    SolutionStore sizer{StoreOptions{}};
    sizer.insert(a, "paredown", {}, {}, runA);
    sizer.insert(b, "paredown", {}, {}, runB);
    sizer.insert(c, "paredown", {}, {}, runC);
    ASSERT_EQ(sizer.recordCount(), 3u);
    total = sizer.totalBytes();
  }

  // A budget one byte short of all three forces exactly one eviction --
  // and touching A after inserting B makes B the LRU victim.
  StoreOptions capped;
  capped.maxBytes = total - 1;
  SolutionStore store{capped};
  store.insert(a, "paredown", {}, {}, runA);
  store.insert(b, "paredown", {}, {}, runB);
  EXPECT_TRUE(store.lookup(a, "paredown", {}, {}).has_value());
  store.insert(c, "paredown", {}, {}, runC);

  EXPECT_EQ(store.stats().evictions, 1u);
  EXPECT_TRUE(store.lookup(a, "paredown", {}, {}).has_value());
  EXPECT_TRUE(store.lookup(c, "paredown", {}, {}).has_value());
  EXPECT_FALSE(store.lookup(b, "paredown", {}, {}).has_value());
}

// --- concurrency ------------------------------------------------------------------

TEST(SolutionStore, EightThreadsHammerOneStore) {
  // Four designs, runs precomputed serially; the threads exercise only
  // the store (insert / exact lookup / renamed-variant lookup / near
  // miss), concurrently, against one on-disk instance.
  const std::string dir = freshDir("hammer");
  std::vector<Network> nets;
  std::vector<partition::PartitionRun> runs;
  for (int i = 0; i < 4; ++i) {
    randgen::GeneratorOptions gen;
    gen.innerBlocks = 6 + i * 2;
    gen.seed = 4200 + static_cast<std::uint32_t>(i);
    nets.push_back(randgen::randomNetwork(gen));
    runs.push_back(runFor(nets.back(), "fm"));
  }
  partition::ProgBlockSpec loose;
  loose.inputs = 3;
  loose.outputs = 3;

  SolutionStore store{StoreOptions{dir}};
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t)
    workers.emplace_back([&, t] {
      for (int i = 0; i < 30; ++i) {
        const std::size_t d = static_cast<std::size_t>((t + i) % 4);
        store.insert(nets[d], "fm", {}, {}, runs[d]);
        const auto hit = store.lookup(nets[d], "fm", {}, {});
        if (hit) {
          // Never a wrong answer, only ever the stored one.
          if (hit->result.partitions.size() !=
              runs[d].result.partitions.size())
            ADD_FAILURE() << "lookup returned a foreign result";
        }
        const Network variant = randgen::relabeledCopy(
            nets[d], static_cast<std::uint32_t>(t * 100 + i));
        (void)store.lookup(variant, "fm", {}, {});
        (void)store.nearMiss(nets[d], loose, {});
      }
    });
  for (std::thread& w : workers) w.join();

  const StoreStats s = store.stats();
  EXPECT_EQ(s.corrupt, 0u);
  EXPECT_EQ(store.recordCount(), 4u);
  // Every iteration after the first insert of each design must hit, in
  // both original and relabeled form: 8 threads x 30 iters x 2 lookups.
  EXPECT_GE(s.hits, 8u * 30u * 2u - 8u);
  fs::remove_all(dir);
}

// --- failpoint regressions: injected IO faults degrade to a miss ----------
//
// The atomic-write contract under fault: any failure between open() and
// rename() -- ENOSPC, a short write, fsync, the rename itself -- counts
// one writeFailure, deletes the tmp file, and the caller never sees an
// error.  A *torn* write that lies about success is the one fault the
// writer cannot catch; the checksum catches it at read time and the
// record degrades to a miss.  core/failpoint.h is the injection vehicle.

namespace fp = core::failpoint;

/// Disarms every failpoint on scope exit, so a failing ASSERT cannot
/// leak an armed site into the rest of the suite.
struct FailpointGuard {
  FailpointGuard() { fp::clearAll(); }
  ~FailpointGuard() { fp::clearAll(); }
};

TEST(SolutionStore, FailpointEnospcIsADegradedToMissNeverAnError) {
  const FailpointGuard guard;
  const std::string dir = freshDir("fp_enospc");
  const Network net = designs::figure5();
  const partition::PartitionRun run = runFor(net, "paredown");

  SolutionStore store{StoreOptions{dir}};
  ASSERT_TRUE(fp::install("cache.tmp.write=error:enospc*once"));
  store.insert(net, "paredown", {}, {}, run);  // must not throw
  EXPECT_EQ(store.stats().writeFailures, 1u);
  // The failed insert left nothing behind -- no record, no tmp litter.
  EXPECT_EQ(fs::exists(dir) ? std::distance(fs::directory_iterator(dir),
                                            fs::directory_iterator{})
                            : 0,
            0);
  // Degraded to a miss; the next insert (disk healthy again) lands.
  store.insert(net, "paredown", {}, {}, run);
  const auto hit = store.lookup(net, "paredown", {}, {});
  ASSERT_TRUE(hit.has_value());
  expectSamePartitions(hit->result, run.result);
  fs::remove_all(dir);
}

TEST(SolutionStore, FailpointShortWriteFsyncAndRenameAllDegradeToMiss) {
  const FailpointGuard guard;
  const Network net = designs::figure5();
  const partition::PartitionRun run = runFor(net, "paredown");
  const char* schedules[] = {
      "cache.tmp.write=partial:4*once",  // short write, not at EOF
      "cache.fsync=error:eio*once",      // durability barrier fails
      "cache.rename=error:eio*once",     // publish fails
  };
  int i = 0;
  for (const char* schedule : schedules) {
    const std::string dir = freshDir("fp_write" + std::to_string(i++));
    SolutionStore store{StoreOptions{dir}};
    ASSERT_TRUE(fp::install(schedule)) << schedule;
    store.insert(net, "paredown", {}, {}, run);
    EXPECT_EQ(store.stats().writeFailures, 1u) << schedule;
    EXPECT_EQ(store.recordCount(), 0u) << schedule;
    // No tmp file may survive a failed write -- the open()-time sweep
    // must never be the thing that saves us.
    for (const auto& entry : fs::directory_iterator(dir))
      ADD_FAILURE() << schedule << " left " << entry.path();
    fp::clearAll();
    fs::remove_all(dir);
  }
}

TEST(SolutionStore, FailpointTornRecordIsNeverServed) {
  const FailpointGuard guard;
  const std::string dir = freshDir("fp_torn");
  const Network net = designs::figure5();
  const partition::PartitionRun run = runFor(net, "paredown");
  {
    SolutionStore store{StoreOptions{dir}};
    // The write tears to 8 bytes but reports success: the record is
    // published damaged, exactly like a crash between write and fsync
    // on a lying disk.
    ASSERT_TRUE(fp::install("cache.tmp.torn=partial:8*once"));
    store.insert(net, "paredown", {}, {}, run);
    EXPECT_EQ(store.stats().writeFailures, 0u);  // the writer was lied to
  }
  fp::clearAll();
  // A fresh store indexes the directory; the torn record must degrade
  // to a miss (counted corrupt), never be served, never crash.
  SolutionStore reopened{StoreOptions{dir}};
  const auto hit = reopened.lookup(net, "paredown", {}, {});
  EXPECT_FALSE(hit.has_value());
  EXPECT_GE(reopened.stats().corrupt + reopened.stats().misses, 1u);
  fs::remove_all(dir);
}

TEST(SolutionStore, FailpointReadFaultsDegradeToMissThenRecover) {
  const FailpointGuard guard;
  const std::string dir = freshDir("fp_read");
  const Network net = designs::figure5();
  const partition::PartitionRun run = runFor(net, "paredown");
  SolutionStore store{StoreOptions{dir}};
  store.insert(net, "paredown", {}, {}, run);

  ASSERT_TRUE(fp::install("cache.read=error:eio*once"));
  EXPECT_FALSE(store.lookup(net, "paredown", {}, {}).has_value());

  ASSERT_TRUE(fp::install("cache.read=partial:6*once"));
  EXPECT_FALSE(store.lookup(net, "paredown", {}, {}).has_value());

  ASSERT_TRUE(fp::install("cache.record.decode=error*once"));
  EXPECT_FALSE(store.lookup(net, "paredown", {}, {}).has_value());

  // All faults cleared: if the read faults dropped the entry, the next
  // insert restores it; either way the store still works.
  fp::clearAll();
  store.insert(net, "paredown", {}, {}, run);
  const auto healthy = store.lookup(net, "paredown", {}, {});
  ASSERT_TRUE(healthy.has_value());
  expectSamePartitions(healthy->result, run.result);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace eblocks::cache
