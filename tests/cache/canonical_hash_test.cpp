// Property battery for the canonical content hash (cache/canonical_hash.h).
//
// The hash is the cache's load-bearing wall: every invariance it promises
// (instance renaming, block declaration order, connection declaration
// order, behavior signal spelling) is a class of repeated request the
// store must HIT, and every sensitivity it promises (an arc moved, a type
// substituted, a result-affecting option changed) is a class of request
// that must NOT collide.  Both directions are pinned here, plus run-to-run
// and cross-thread stability, and a golden fixture that freezes the hash
// values of two paper designs so accidental algorithm drift -- which would
// orphan every record ever written to disk -- fails loudly.
#include "cache/canonical_hash.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "blocks/catalog.h"
#include "designs/library.h"
#include "randgen/generator.h"

namespace eblocks::cache {
namespace {

using blocks::defaultCatalog;

Network garage() { return designs::garageOpenAtNight(); }

// --- invariance -------------------------------------------------------------

TEST(StructureHash, InvariantUnderRelabeling) {
  for (const auto& e : designs::designLibrary()) {
    const Hash128 h = structureHash(e.network);
    for (std::uint32_t seed = 1; seed <= 5; ++seed)
      EXPECT_EQ(structureHash(randgen::relabeledCopy(e.network, seed)), h)
          << e.name << " seed " << seed;
  }
}

TEST(StructureHash, InvariantUnderRelabelingOnRandomDesigns) {
  for (int i = 0; i < 20; ++i) {
    randgen::GeneratorOptions options;
    options.innerBlocks = 4 + (i * 5) % 40;
    options.seed = 77 + static_cast<std::uint32_t>(i);
    const Network net = randgen::randomNetwork(options);
    const Hash128 h = structureHash(net);
    EXPECT_EQ(structureHash(randgen::relabeledCopy(net, 7 + i)), h)
        << "random#" << i;
  }
}

TEST(StructureHash, InvariantUnderConnectionDeclarationOrder) {
  const auto build = [](bool reversedArcs) {
    Network net("order");
    const auto& cat = defaultCatalog();
    const BlockId s0 = net.addBlock("s0", cat.button());
    const BlockId s1 = net.addBlock("s1", cat.button());
    const BlockId g = net.addBlock("g", cat.and2());
    const BlockId o = net.addBlock("o", cat.led());
    if (reversedArcs) {
      net.connect(g, 0, o, 0);
      net.connect(s1, 0, g, 1);
      net.connect(s0, 0, g, 0);
    } else {
      net.connect(s0, 0, g, 0);
      net.connect(s1, 0, g, 1);
      net.connect(g, 0, o, 0);
    }
    return net;
  };
  EXPECT_EQ(structureHash(build(false)), structureHash(build(true)));
}

// Two hand-rolled types computing the same function with every signal --
// ports and internal `var` state -- spelled differently.  The canonical
// behavior rename must make them indistinguishable.
TEST(StructureHash, InvariantUnderBehaviorSignalRenaming) {
  const auto makeNet = [](const BlockTypePtr& type) {
    Network net("sigrename");
    const auto& cat = defaultCatalog();
    const BlockId s0 = net.addBlock("in0", cat.button());
    const BlockId s1 = net.addBlock("in1", cat.button());
    const BlockId x = net.addBlock("x", type);
    const BlockId o = net.addBlock("out0", cat.led());
    net.connect(s0, 0, x, 0);
    net.connect(s1, 0, x, 1);
    net.connect(x, 0, o, 0);
    return net;
  };
  const auto t1 = std::make_shared<const BlockType>(
      "custom_latch_v1", BlockClass::kCompute,
      std::vector<std::string>{"a", "b"}, std::vector<std::string>{"out"},
      "var seen = 0;\n"
      "if (a == 1 && b == 1) { seen = 1; }\n"
      "if (seen == 1) { out = 1; } else { out = 0; }\n",
      /*sequential=*/true);
  const auto t2 = std::make_shared<const BlockType>(
      "custom_latch_v2", BlockClass::kCompute,
      std::vector<std::string>{"p", "q"}, std::vector<std::string>{"res"},
      "var armed = 0;\n"
      "if (p == 1 && q == 1) { armed = 1; }\n"
      "if (armed == 1) { res = 1; } else { res = 0; }\n",
      /*sequential=*/true);
  EXPECT_EQ(structureHash(makeNet(t1)), structureHash(makeNet(t2)));
}

// --- sensitivity --------------------------------------------------------------

TEST(StructureHash, SingleArcEditChangesHash) {
  const auto build = [](bool rerouted) {
    Network net("arcedit");
    const auto& cat = defaultCatalog();
    const BlockId s0 = net.addBlock("s0", cat.button());
    const BlockId s1 = net.addBlock("s1", cat.button());
    const BlockId g = net.addBlock("g", cat.and2());
    const BlockId o = net.addBlock("o", cat.led());
    net.connect(s0, 0, g, 0);
    // The single edit: g's second input comes from s1 or from s0's fanout.
    net.connect(rerouted ? s0 : s1, 0, g, 1);
    net.connect(g, 0, o, 0);
    return net;
  };
  EXPECT_NE(structureHash(build(false)), structureHash(build(true)));
}

TEST(StructureHash, TypeSubstitutionChangesHash) {
  const auto build = [](const BlockTypePtr& gate) {
    Network net("typeedit");
    const auto& cat = defaultCatalog();
    const BlockId s0 = net.addBlock("s0", cat.button());
    const BlockId s1 = net.addBlock("s1", cat.button());
    const BlockId g = net.addBlock("g", gate);
    const BlockId o = net.addBlock("o", cat.led());
    net.connect(s0, 0, g, 0);
    net.connect(s1, 0, g, 1);
    net.connect(g, 0, o, 0);
    return net;
  };
  EXPECT_NE(structureHash(build(defaultCatalog().and2())),
            structureHash(build(defaultCatalog().or2())));
  EXPECT_NE(structureHash(build(defaultCatalog().logic2(0b1000))),
            structureHash(build(defaultCatalog().logic2(0b1110))));
}

// The hash keys on computation, not catalog spelling: two designs the
// partitioner cannot tell apart are SUPPOSED to collide -- that is the
// cache's hit-rate lever, and translation + verification make serving
// one's record for the other sound.  The library contains exactly one
// such pair: "Ignition Illuminator" (contact switches -> inverter ->
// and2 -> led) and "Night Lamp Controller" (light/motion sensors ->
// inverter -> and2 -> relay) share that shape block-for-block.  Every
// other design must stay distinct.
TEST(StructureHash, LibraryDesignsDistinctUpToSemantics) {
  EXPECT_EQ(structureHash(designs::byName("Ignition Illuminator")),
            structureHash(designs::byName("Night Lamp Controller")));

  std::map<std::string, std::string> byHash;
  for (const auto& e : designs::designLibrary()) {
    const auto [it, inserted] =
        byHash.emplace(toHex(structureHash(e.network)), e.name);
    if (!inserted) {
      EXPECT_TRUE(it->second == "Ignition Illuminator" &&
                  e.name == "Night Lamp Controller")
          << e.name << " collides with " << it->second;
    }
  }
}

// --- options fingerprint -------------------------------------------------------

TEST(OptionsFingerprint, ResultAffectingKnobsSeparate) {
  const partition::ProgBlockSpec spec;
  const partition::EngineOptions engine;
  const std::uint64_t base = optionsFingerprint("exhaustive", spec, engine);

  EXPECT_NE(optionsFingerprint("paredown", spec, engine), base);

  partition::ProgBlockSpec wider = spec;
  wider.inputs = 3;
  EXPECT_NE(optionsFingerprint("exhaustive", wider, engine), base);
  wider = spec;
  wider.outputs = 3;
  EXPECT_NE(optionsFingerprint("exhaustive", wider, engine), base);
  wider = spec;
  wider.mode = CountingMode::kSignals;
  EXPECT_NE(optionsFingerprint("exhaustive", wider, engine), base);

  partition::EngineOptions convex = engine;
  convex.requireConvex = true;
  EXPECT_NE(optionsFingerprint("exhaustive", spec, convex), base);
}

TEST(OptionsFingerprint, AcceleratorKnobsNormalizeAway) {
  const partition::ProgBlockSpec spec;
  const partition::EngineOptions engine;
  const std::uint64_t base = optionsFingerprint("exhaustive", spec, engine);

  // Every knob here is bit-identity-preserving by the engine's contract:
  // a request at 8 threads must hit a record computed at 1.
  partition::EngineOptions accel = engine;
  accel.threads = 8;
  accel.timeLimitSeconds = 3600.0;
  accel.scheduler = partition::SearchScheduler::kFixedSplit;
  accel.seedFromPareDown = false;
  accel.pruningBound = false;
  accel.initialIncumbent = partition::Partitioning{};
  EXPECT_EQ(optionsFingerprint("exhaustive", spec, accel), base);
}

TEST(OptionsFingerprint, LnsKnobsOnlyCountForLns) {
  const partition::ProgBlockSpec spec;
  partition::EngineOptions engine;
  engine.lnsRounds = 4;
  partition::EngineOptions other = engine;
  other.rngSeed = 99;
  other.lnsPocket = 6;
  // Inert for the deterministic strategies...
  EXPECT_EQ(optionsFingerprint("exhaustive", spec, other),
            optionsFingerprint("exhaustive", spec, engine));
  // ...but part of lns's identity.
  EXPECT_NE(optionsFingerprint("lns", spec, other),
            optionsFingerprint("lns", spec, engine));
}

// --- stability -------------------------------------------------------------------

TEST(StructureHash, StableAcrossRepeatedRunsAndThreads) {
  const Network net = garage();
  const Hash128 serial = structureHash(net);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(structureHash(net), serial);

  std::vector<Hash128> results(8);
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t)
    workers.emplace_back([&results, &net, t] {
      Hash128 h = structureHash(net);
      for (int i = 0; i < 20; ++i)
        if (structureHash(net) != h) h = Hash128{};  // poison on instability
      results[static_cast<std::size_t>(t)] = h;
    });
  for (std::thread& w : workers) w.join();
  for (const Hash128& h : results) EXPECT_EQ(h, serial);
}

// --- isomorphism map ---------------------------------------------------------------

TEST(IsomorphismMap, ExactOnRelabeledCopies) {
  for (int i = 0; i < 10; ++i) {
    randgen::GeneratorOptions options;
    options.innerBlocks = 5 + i * 3;
    options.seed = 500 + static_cast<std::uint32_t>(i);
    const Network from = randgen::randomNetwork(options);
    const Network to = randgen::relabeledCopy(from, 31 + i);

    const auto map = isomorphismMap(from, to);
    ASSERT_TRUE(map.has_value()) << "random#" << i;
    // A valid map is a permutation carrying every arc onto an arc.
    std::set<BlockId> image(map->begin(), map->end());
    EXPECT_EQ(image.size(), from.blockCount()) << "not a permutation";
    std::set<Connection> target;
    for (const Connection& c : to.connections()) target.insert(c);
    for (const Connection& c : from.connections()) {
      const Connection mapped{{(*map)[c.from.block], c.from.port},
                              {(*map)[c.to.block], c.to.port}};
      EXPECT_TRUE(target.count(mapped))
          << "arc lost by the map in random#" << i;
    }
  }
}

TEST(IsomorphismMap, RefusesDifferentDesigns) {
  EXPECT_FALSE(isomorphismMap(garage(), designs::figure5()).has_value());
}

// --- golden fixture ------------------------------------------------------------------
//
// Frozen hash values for two paper designs.  These change ONLY with a
// deliberate hash-algorithm revision -- which orphans every store record
// on disk, so it must be a conscious, documented act (see docs/caching.md),
// not a refactoring accident.

TEST(StructureHashGolden, PinnedPaperDesignHashes) {
  EXPECT_EQ(toHex(structureHash(garage())),
            "211894e1df4d3dfcaea987062d6633ce");
  EXPECT_EQ(toHex(structureHash(designs::figure5())),
            "506898765bdbf53ea2bbe22427e0271a");
}

}  // namespace
}  // namespace eblocks::cache
