#include "partition/validity.h"

#include <gtest/gtest.h>

#include "blocks/catalog.h"
#include "designs/library.h"

namespace eblocks::partition {
namespace {

using blocks::defaultCatalog;

constexpr BlockId N(int paperNode) {
  return static_cast<BlockId>(paperNode - 1);
}

BitSet setOf(const Network& net, std::initializer_list<BlockId> ids) {
  BitSet s = net.emptySet();
  for (BlockId b : ids) s.set(b);
  return s;
}

TEST(Validity, FitsRespectsSpecLimits) {
  const Network net = designs::figure5();
  const BitSet p = setOf(net, {N(2), N(3), N(4), N(5)});
  EXPECT_TRUE(fitsProgrammable(net, p, ProgBlockSpec{2, 2}));
  EXPECT_FALSE(fitsProgrammable(net, p, ProgBlockSpec{1, 2}));
  EXPECT_FALSE(fitsProgrammable(net, p, ProgBlockSpec{2, 1}));
}

TEST(Validity, FullInnerSetNeedsThreeOutputs) {
  const Network net = designs::figure5();
  EXPECT_FALSE(fitsProgrammable(net, net.innerSet(), ProgBlockSpec{2, 2}));
  EXPECT_TRUE(fitsProgrammable(net, net.innerSet(), ProgBlockSpec{2, 3}));
}

TEST(Validity, SingleBlockPartitionRejectedByFullCheck) {
  const Network net = designs::figure5();
  const PartitionProblem problem(net, ProgBlockSpec{});
  EXPECT_FALSE(isValidPartition(problem, setOf(net, {N(7)})));
  EXPECT_TRUE(isValidPartition(problem, setOf(net, {N(6), N(8), N(9)})));
}

TEST(Validity, NonInnerMembersRejected) {
  const Network net = designs::figure5();
  const PartitionProblem problem(net, ProgBlockSpec{});
  // Include the sensor (id 0): invalid regardless of fit.
  EXPECT_FALSE(isValidPartition(problem, setOf(net, {0, N(2)})));
}

TEST(Validity, NonConvexRejectedUnlessRelaxed) {
  const Network net = designs::figure5();
  const PartitionProblem problem(net, ProgBlockSpec{});
  // {2,3}: path 2 -> 4 -> 3 leaves and re-enters.
  const BitSet p = setOf(net, {N(2), N(3)});
  EXPECT_FALSE(isValidPartition(problem, p, /*requireConvex=*/true));
  // Relaxing convexity: fit still fails or passes purely on I/O.
  const IoCount io = countIo(net, p, CountingMode::kEdges);
  const bool fits = io.inputs <= 2 && io.outputs <= 2;
  EXPECT_EQ(isValidPartition(problem, p, /*requireConvex=*/false), fits);
}

TEST(Validity, SignalsModeCountsSharedFanoutOnce) {
  // Build: sensor fans to two inverters; each drives its own LED.  In
  // edges mode the pair needs 2 inputs; in signals mode only 1.
  const auto& cat = defaultCatalog();
  Network net;
  const BlockId s = net.addBlock("s", cat.button());
  const BlockId i1 = net.addBlock("i1", cat.inverter());
  const BlockId i2 = net.addBlock("i2", cat.inverter());
  const BlockId o1 = net.addBlock("o1", cat.led());
  const BlockId o2 = net.addBlock("o2", cat.led());
  net.connect(s, 0, i1, 0);
  net.connect(s, 0, i2, 0);
  net.connect(i1, 0, o1, 0);
  net.connect(i2, 0, o2, 0);
  BitSet pair = net.emptySet();
  pair.set(i1);
  pair.set(i2);
  ProgBlockSpec edges{1, 2, CountingMode::kEdges};
  ProgBlockSpec signals{1, 2, CountingMode::kSignals};
  EXPECT_FALSE(fitsProgrammable(net, pair, edges));
  EXPECT_TRUE(fitsProgrammable(net, pair, signals));
}

}  // namespace
}  // namespace eblocks::partition
