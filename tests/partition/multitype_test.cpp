#include "partition/multitype.h"

#include <gtest/gtest.h>

#include "blocks/catalog.h"
#include "designs/library.h"
#include "partition/paredown.h"
#include "randgen/generator.h"

namespace eblocks::partition {
namespace {

using blocks::defaultCatalog;

ProgCostModel modelOf(std::initializer_list<ProgBlockOption> options,
                      double preCost = 1.0) {
  ProgCostModel m;
  m.preDefinedBlockCost = preCost;
  m.options = options;
  return m;
}

TEST(MultiType, PaperDefaultMatchesClassicPareDown) {
  // One 2x2 option with cost in (1, 2) reproduces the base problem: pairs
  // and larger are beneficial, singles are not.
  for (std::uint32_t seed = 1; seed <= 8; ++seed) {
    const Network net = randgen::randomNetwork({.innerBlocks = 12,
                                                .seed = seed});
    const TypedPartitionRun typed =
        multiTypePareDown(net, ProgCostModel::paperDefault());
    const PartitionProblem problem(net, ProgBlockSpec{});
    const PartitionRun classic = pareDown(problem);
    ASSERT_EQ(typed.result.partitions.size(),
              classic.result.partitions.size())
        << "seed " << seed;
    for (std::size_t i = 0; i < typed.result.partitions.size(); ++i)
      EXPECT_EQ(typed.result.partitions[i].toVector(),
                classic.result.partitions[i].toVector());
  }
}

TEST(MultiType, CheapestFittingOptionPrefersPrice) {
  const Network net = designs::figure5();
  BitSet pair = net.emptySet();
  pair.set(5);  // node 6
  pair.set(8);  // node 9
  const auto model = modelOf({{"big", 4, 4, 3.0}, {"small", 2, 2, 1.2}});
  const auto idx = cheapestFittingOption(net, pair, model);
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(model.options[static_cast<std::size_t>(*idx)].name, "small");
}

TEST(MultiType, NoFittingOptionReturnsNull) {
  const Network net = designs::figure5();
  const auto model = modelOf({{"tiny", 1, 1, 1.2}});
  EXPECT_FALSE(
      cheapestFittingOption(net, net.innerSet(), model).has_value());
}

TEST(MultiType, WiderOptionSwallowsFigure5Whole) {
  // A 2-in/3-out option fits all eight inner blocks of Podium Timer 3 at
  // once; with any cost below 8 the whole design becomes one block.
  const Network net = designs::figure5();
  const auto model = modelOf({{"prog_2x2", 2, 2, 1.5},
                              {"prog_2x3", 2, 3, 2.0}});
  const TypedPartitionRun run = multiTypePareDown(net, model);
  ASSERT_EQ(run.result.partitions.size(), 1u);
  EXPECT_EQ(run.result.partitions[0].count(), 8u);
  EXPECT_EQ(model.options[static_cast<std::size_t>(run.result.optionIndex[0])]
                .name,
            "prog_2x3");
  EXPECT_DOUBLE_EQ(run.result.totalCost(8, model), 2.0);
}

TEST(MultiType, ExpensiveProgrammableRaisesTheBar) {
  // cost(prog) = 3.0: pairs (worth 2.0) are no longer beneficial; only
  // partitions of >= 4 blocks pay off.  s->a->b->o chains of length 2
  // stay unreplaced.
  const auto& cat = defaultCatalog();
  Network net;
  const BlockId s = net.addBlock("s", cat.button());
  const BlockId a = net.addBlock("a", cat.inverter());
  const BlockId b = net.addBlock("b", cat.toggle());
  const BlockId o = net.addBlock("o", cat.led());
  net.connect(s, 0, a, 0);
  net.connect(a, 0, b, 0);
  net.connect(b, 0, o, 0);
  const auto cheap = modelOf({{"prog", 2, 2, 1.5}});
  const auto pricey = modelOf({{"prog", 2, 2, 3.0}});
  EXPECT_EQ(multiTypePareDown(net, cheap).result.partitions.size(), 1u);
  EXPECT_TRUE(multiTypePareDown(net, pricey).result.partitions.empty());
}

TEST(MultiType, HeuristicResultsAlwaysVerify) {
  const auto model = modelOf({{"prog_2x2", 2, 2, 1.5},
                              {"prog_3x2", 3, 2, 1.9},
                              {"prog_4x4", 4, 4, 2.8}});
  for (std::uint32_t seed = 1; seed <= 10; ++seed) {
    const Network net = randgen::randomNetwork({.innerBlocks = 20,
                                                .seed = seed});
    const TypedPartitionRun run = multiTypePareDown(net, model);
    const auto violations = verifyTypedPartitioning(net, model, run.result);
    EXPECT_TRUE(violations.empty())
        << "seed " << seed << ": " << violations.front();
  }
}

TEST(MultiType, ExhaustiveNeverCostsMoreThanHeuristic) {
  const auto model = modelOf({{"prog_2x2", 2, 2, 1.5},
                              {"prog_2x3", 2, 3, 2.0}});
  for (std::uint32_t seed = 1; seed <= 6; ++seed) {
    const Network net = randgen::randomNetwork({.innerBlocks = 8,
                                                .seed = seed});
    const int n = static_cast<int>(net.innerBlocks().size());
    const TypedPartitionRun heuristic = multiTypePareDown(net, model);
    const TypedPartitionRun exact = multiTypeExhaustive(net, model);
    ASSERT_TRUE(exact.optimal);
    EXPECT_LE(exact.result.totalCost(n, model) - 1e-9,
              heuristic.result.totalCost(n, model))
        << "seed " << seed;
    EXPECT_TRUE(verifyTypedPartitioning(net, model, exact.result).empty());
  }
}

TEST(MultiType, ExhaustivePicksMixOfBlockSizes) {
  // Figure 5: optimal with {2x2 @1.5, 2x3 @2.0} is the single 2x3 block
  // (cost 2.0 beats any 2x2 decomposition, whose best is 1 + 2*1.5 = 4).
  const Network net = designs::figure5();
  const auto model = modelOf({{"prog_2x2", 2, 2, 1.5},
                              {"prog_2x3", 2, 3, 2.0}});
  const TypedPartitionRun run = multiTypeExhaustive(net, model);
  ASSERT_TRUE(run.optimal);
  EXPECT_DOUBLE_EQ(run.result.totalCost(8, model), 2.0);
}

TEST(MultiType, TimeLimitStillVerifies) {
  const auto model = modelOf({{"prog_2x2", 2, 2, 1.5},
                              {"prog_4x4", 4, 4, 2.5}});
  const Network net = randgen::randomNetwork({.innerBlocks = 24, .seed = 5});
  MultiTypeExhaustiveOptions options;
  options.timeLimitSeconds = 0.02;
  options.seed = multiTypePareDown(net, model).result;
  const TypedPartitionRun run = multiTypeExhaustive(net, model, options);
  EXPECT_TRUE(run.timedOut);
  EXPECT_TRUE(verifyTypedPartitioning(net, model, run.result).empty());
}

TEST(MultiType, VerifierCatchesViolations) {
  const Network net = designs::figure5();
  const auto model = modelOf({{"prog_2x2", 2, 2, 1.5}});
  TypedPartitioning bad;
  bad.partitions.push_back(net.innerSet());  // needs 3 outputs: no fit
  bad.optionIndex.push_back(0);
  EXPECT_FALSE(verifyTypedPartitioning(net, model, bad).empty());

  TypedPartitioning mismatched;
  mismatched.partitions.push_back(net.innerSet());
  EXPECT_FALSE(verifyTypedPartitioning(net, model, mismatched).empty());

  TypedPartitioning badIndex;
  BitSet pair = net.emptySet();
  pair.set(5);
  pair.set(8);
  badIndex.partitions.push_back(pair);
  badIndex.optionIndex.push_back(7);  // out of range
  EXPECT_FALSE(verifyTypedPartitioning(net, model, badIndex).empty());
}

TEST(MultiType, CostAccounting) {
  const auto model = modelOf({{"prog_2x2", 2, 2, 1.5}});
  const Network net = designs::figure5();
  const TypedPartitionRun run = multiTypePareDown(net, model);
  // Classic result: partitions {2,3,4,5} and {6,8,9}, node 7 left.
  ASSERT_EQ(run.result.partitions.size(), 2u);
  EXPECT_EQ(run.result.coveredBlocks(), 7);
  EXPECT_DOUBLE_EQ(run.result.totalCost(8, model), 1.0 + 1.5 + 1.5);
}

}  // namespace
}  // namespace eblocks::partition
