// The incremental validity kernel must agree with the from-scratch
// countIo() / borderBlocks() / removalRank() references after every
// single add/remove, in both counting modes, on reproducible random
// networks -- and the incremental algorithms built on it must never fall
// back to the full-scan references on their hot paths.
#include "partition/port_counter.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "blocks/catalog.h"
#include "designs/library.h"
#include "partition/multitype.h"
#include "partition/paredown.h"
#include "randgen/generator.h"

namespace eblocks::partition {
namespace {

using blocks::defaultCatalog;

void expectMatchesReference(const Network& net, const PortCounter& counter,
                            const BitSet& reference, CountingMode mode,
                            int step) {
  const IoCount expected = countIo(net, reference, mode);
  EXPECT_EQ(counter.io().inputs, expected.inputs)
      << toString(mode) << " inputs diverged at step " << step;
  EXPECT_EQ(counter.io().outputs, expected.outputs)
      << toString(mode) << " outputs diverged at step " << step;
  EXPECT_EQ(counter.members(), reference);
  EXPECT_EQ(counter.memberCount(), static_cast<int>(reference.count()));
}

class PortCounterModes : public ::testing::TestWithParam<CountingMode> {};

TEST_P(PortCounterModes, RandomizedAddRemoveMatchesFromScratchCount) {
  const CountingMode mode = GetParam();
  for (const std::uint32_t netSeed : {11u, 12u, 13u, 14u, 15u}) {
    const Network net = randgen::randomNetwork(
        {.innerBlocks = 14, .seed = netSeed});
    const std::vector<BlockId> inner = net.innerBlocks();
    PortCounter counter(net, mode);
    BitSet reference = net.emptySet();
    std::mt19937 rng(netSeed * 7919);
    std::uniform_int_distribution<std::size_t> pick(0, inner.size() - 1);
    for (int step = 0; step < 400; ++step) {
      const BlockId b = inner[pick(rng)];
      if (counter.contains(b)) {
        counter.remove(b);
        reference.reset(b);
      } else {
        counter.add(b);
        reference.set(b);
      }
      expectMatchesReference(net, counter, reference, mode, step);
    }
  }
}

TEST_P(PortCounterModes, AssignMatchesIncrementalBuild) {
  const CountingMode mode = GetParam();
  const Network net = randgen::randomNetwork({.innerBlocks = 18, .seed = 42});
  std::mt19937 rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    BitSet subset = net.emptySet();
    for (BlockId b : net.innerBlocks())
      if (rng() % 2) subset.set(b);
    PortCounter counter(net, mode);
    counter.assign(subset);
    expectMatchesReference(net, counter, subset, mode, trial);
  }
}

TEST_P(PortCounterModes, ClearResetsEverything) {
  const CountingMode mode = GetParam();
  const Network net = designs::figure5();
  PortCounter counter(net, mode);
  counter.assign(net.innerSet());
  counter.clear();
  EXPECT_EQ(counter.memberCount(), 0);
  EXPECT_EQ(counter.io().inputs, 0);
  EXPECT_EQ(counter.io().outputs, 0);
  EXPECT_TRUE(counter.members().none());
  // Reusable after clear().
  counter.add(1);
  expectMatchesReference(net, counter, [&] {
    BitSet s = net.emptySet();
    s.set(1);
    return s;
  }(), mode, 0);
}

TEST_P(PortCounterModes, AddThenRemoveIsIdentity) {
  const CountingMode mode = GetParam();
  const Network net = randgen::randomNetwork({.innerBlocks = 10, .seed = 7});
  PortCounter counter(net, mode);
  BitSet base = net.emptySet();
  const std::vector<BlockId> inner = net.innerBlocks();
  for (std::size_t i = 0; i < inner.size(); i += 2) {
    counter.add(inner[i]);
    base.set(inner[i]);
  }
  const IoCount before = counter.io();
  for (std::size_t i = 1; i < inner.size(); i += 2) {
    counter.add(inner[i]);
    counter.remove(inner[i]);
  }
  EXPECT_EQ(counter.io().inputs, before.inputs);
  EXPECT_EQ(counter.io().outputs, before.outputs);
  EXPECT_EQ(counter.members(), base);
}

// From-scratch reference for fixedIo(): the crossing I/O whose outside
// endpoint block is frozen, counted per connection (kEdges) or per
// distinct endpoint (kSignals).
IoCount referenceFixedIo(const Network& net, const BitSet& members,
                         const BitSet& frozen, CountingMode mode) {
  IoCount io;
  std::vector<std::uint64_t> inSrcs, outSrcs;
  for (const Connection& c : net.connections()) {
    const bool fromIn = members.test(c.from.block);
    const bool toIn = members.test(c.to.block);
    if (fromIn == toIn) continue;  // not crossing
    const auto key = [](const Endpoint& e) {
      return (static_cast<std::uint64_t>(e.block) << 16) | e.port;
    };
    if (toIn && frozen.test(c.from.block)) {
      if (mode == CountingMode::kEdges)
        ++io.inputs;
      else
        inSrcs.push_back(key(c.from));
    }
    if (fromIn && frozen.test(c.to.block)) {
      if (mode == CountingMode::kEdges)
        ++io.outputs;
      else
        outSrcs.push_back(key(c.from));
    }
  }
  if (mode == CountingMode::kSignals) {
    std::sort(inSrcs.begin(), inSrcs.end());
    io.inputs = static_cast<int>(
        std::unique(inSrcs.begin(), inSrcs.end()) - inSrcs.begin());
    std::sort(outSrcs.begin(), outSrcs.end());
    io.outputs = static_cast<int>(
        std::unique(outSrcs.begin(), outSrcs.end()) - outSrcs.begin());
  }
  return io;
}

TEST_P(PortCounterModes, RandomizedFixedIoMatchesFromScratchReference) {
  // Mimics the branch-and-bound's usage: non-inner blocks are frozen
  // from the start, inner blocks flip between member / frozen-outside /
  // free in random (non-LIFO) order, and after every operation fixedIo()
  // must equal the from-scratch irreducible count -- and stay
  // component-wise <= io().
  const CountingMode mode = GetParam();
  for (const std::uint32_t netSeed : {21u, 22u, 23u}) {
    const Network net =
        randgen::randomNetwork({.innerBlocks = 14, .seed = netSeed});
    const std::vector<BlockId> inner = net.innerBlocks();
    BitSet frozen(net.blockCount());
    for (BlockId b = 0; b < net.blockCount(); ++b)
      if (!net.isInner(b)) frozen.set(b);
    PortCounter counter(net, mode, BorderTracking::kOff, &frozen);
    BitSet reference = net.emptySet();
    std::mt19937 rng(netSeed * 104729);
    std::uniform_int_distribution<std::size_t> pick(0, inner.size() - 1);
    for (int step = 0; step < 500; ++step) {
      const BlockId b = inner[pick(rng)];
      if (counter.contains(b)) {
        counter.remove(b);
        reference.reset(b);
      } else if (frozen.test(b)) {
        counter.unfreeze(b);
        frozen.reset(b);
      } else if (rng() % 2) {
        counter.add(b);
        reference.set(b);
      } else {
        frozen.set(b);
        counter.freeze(b);
      }
      expectMatchesReference(net, counter, reference, mode, step);
      const IoCount expected = referenceFixedIo(net, reference, frozen, mode);
      EXPECT_EQ(counter.fixedIo().inputs, expected.inputs)
          << toString(mode) << " fixed inputs diverged at step " << step;
      EXPECT_EQ(counter.fixedIo().outputs, expected.outputs)
          << toString(mode) << " fixed outputs diverged at step " << step;
      EXPECT_LE(counter.fixedIo().inputs, counter.io().inputs);
      EXPECT_LE(counter.fixedIo().outputs, counter.io().outputs);
    }
  }
}

TEST_P(PortCounterModes, FixedIoGrowsMonotonicallyUnderAddAndFreeze) {
  // The soundness argument rests on monotonicity: growing the member set
  // or the frozen set can never shrink fixedIo().  Drive a growth-only
  // walk and assert it.
  const CountingMode mode = GetParam();
  const Network net = randgen::randomNetwork({.innerBlocks = 12, .seed = 5});
  BitSet frozen(net.blockCount());
  for (BlockId b = 0; b < net.blockCount(); ++b)
    if (!net.isInner(b)) frozen.set(b);
  PortCounter counter(net, mode, BorderTracking::kOff, &frozen);
  std::mt19937 rng(31337);
  IoCount last;
  for (const BlockId b : net.innerBlocks()) {
    if (rng() % 2) {
      counter.add(b);
    } else {
      frozen.set(b);
      counter.freeze(b);
    }
    EXPECT_GE(counter.fixedIo().inputs, last.inputs);
    EXPECT_GE(counter.fixedIo().outputs, last.outputs);
    last = counter.fixedIo();
  }
}

TEST_P(PortCounterModes, ClearResetsFixedTracking) {
  const CountingMode mode = GetParam();
  const Network net = designs::figure5();
  BitSet frozen(net.blockCount());
  for (BlockId b = 0; b < net.blockCount(); ++b)
    if (!net.isInner(b)) frozen.set(b);
  PortCounter counter(net, mode, BorderTracking::kOff, &frozen);
  counter.assign(net.innerSet());
  EXPECT_TRUE(counter.tracksFixed());
  counter.clear();
  EXPECT_EQ(counter.fixedIo().inputs, 0);
  EXPECT_EQ(counter.fixedIo().outputs, 0);
  counter.add(net.innerBlocks().front());
  const IoCount expected = referenceFixedIo(
      net, counter.members(), frozen, mode);
  EXPECT_EQ(counter.fixedIo().inputs, expected.inputs);
  EXPECT_EQ(counter.fixedIo().outputs, expected.outputs);
}

INSTANTIATE_TEST_SUITE_P(BothModes, PortCounterModes,
                         ::testing::Values(CountingMode::kEdges,
                                           CountingMode::kSignals),
                         [](const auto& paramInfo) {
                           return std::string(toString(paramInfo.param));
                         });

void expectMatchesBorderReference(const Network& net,
                                  const PortCounter& counter,
                                  const BitSet& reference, int step) {
  // border() must equal the from-scratch borderBlocks() as a set, and
  // rank() must equal removalRank() for every member.
  std::vector<BlockId> incremental;
  counter.border().forEach(
      [&](std::size_t b) { incremental.push_back(static_cast<BlockId>(b)); });
  EXPECT_EQ(incremental, borderBlocks(net, reference))
      << "border diverged at step " << step;
  reference.forEach([&](std::size_t bi) {
    const BlockId b = static_cast<BlockId>(bi);
    EXPECT_EQ(counter.rank(b), removalRank(net, reference, b))
        << "rank of block " << b << " diverged at step " << step;
  });
}

TEST_P(PortCounterModes, RandomizedBorderAndRankMatchFromScratchScan) {
  const CountingMode mode = GetParam();
  for (const std::uint32_t netSeed : {21u, 22u, 23u, 24u, 25u}) {
    const Network net = randgen::randomNetwork(
        {.innerBlocks = 14, .seed = netSeed});
    const std::vector<BlockId> inner = net.innerBlocks();
    PortCounter counter(net, mode, BorderTracking::kOn);
    BitSet reference = net.emptySet();
    std::mt19937 rng(netSeed * 104729);
    std::uniform_int_distribution<std::size_t> pick(0, inner.size() - 1);
    for (int step = 0; step < 400; ++step) {
      const BlockId b = inner[pick(rng)];
      if (counter.contains(b)) {
        counter.remove(b);
        reference.reset(b);
      } else {
        counter.add(b);
        reference.set(b);
      }
      expectMatchesReference(net, counter, reference, mode, step);
      expectMatchesBorderReference(net, counter, reference, step);
    }
  }
}

TEST_P(PortCounterModes, BorderTrackingSurvivesAssignAndClear) {
  const CountingMode mode = GetParam();
  const Network net = randgen::randomNetwork({.innerBlocks = 16, .seed = 77});
  PortCounter counter(net, mode, BorderTracking::kOn);
  std::mt19937 rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    BitSet subset = net.emptySet();
    for (BlockId b : net.innerBlocks())
      if (rng() % 2) subset.set(b);
    counter.assign(subset);
    expectMatchesBorderReference(net, counter, subset, trial);
  }
  counter.clear();
  EXPECT_TRUE(counter.border().none());
  // Reusable after clear(): a lone member is trivially border.
  const BlockId first = net.innerBlocks().front();
  counter.add(first);
  EXPECT_TRUE(counter.border().test(first));
  EXPECT_EQ(counter.rank(first),
            removalRank(net, counter.members(), first));
}

TEST_P(PortCounterModes, DenseKernelMatchesReferencesOn25RandomDesigns) {
  // The dense-endpoint-index kernel must match every from-scratch
  // reference -- countIo(), borderBlocks(), removalRank(), and the
  // irreducible-I/O reference -- state for state across a randomized
  // add/remove/freeze walk, on 25 seeded designs spanning sizes 6..54.
  // This is the broad-coverage twin of the focused suites above, sized
  // per the CSR-kernel acceptance criteria.
  const CountingMode mode = GetParam();
  for (std::uint32_t seed = 1; seed <= 25; ++seed) {
    const int innerCount = 6 + static_cast<int>(seed % 17) * 3;
    const Network net = randgen::randomNetwork(
        {.innerBlocks = innerCount, .seed = seed});
    const std::vector<BlockId> inner = net.innerBlocks();
    BitSet frozen(net.blockCount());
    for (BlockId b = 0; b < net.blockCount(); ++b)
      if (!net.isInner(b)) frozen.set(b);
    PortCounter counter(net, mode, BorderTracking::kOn, &frozen);
    BitSet reference = net.emptySet();
    std::mt19937 rng(seed * 2654435761u);
    std::uniform_int_distribution<std::size_t> pick(0, inner.size() - 1);
    for (int step = 0; step < 120; ++step) {
      const BlockId b = inner[pick(rng)];
      if (counter.contains(b)) {
        counter.remove(b);
        reference.reset(b);
      } else if (frozen.test(b)) {
        counter.unfreeze(b);
        frozen.reset(b);
      } else if (rng() % 2) {
        counter.add(b);
        reference.set(b);
      } else {
        frozen.set(b);
        counter.freeze(b);
      }
      expectMatchesReference(net, counter, reference, mode, step);
      expectMatchesBorderReference(net, counter, reference, step);
      const IoCount expectedFixed =
          referenceFixedIo(net, reference, frozen, mode);
      EXPECT_EQ(counter.fixedIo().inputs, expectedFixed.inputs)
          << "seed " << seed << " step " << step;
      EXPECT_EQ(counter.fixedIo().outputs, expectedFixed.outputs)
          << "seed " << seed << " step " << step;
    }
  }
}

// The incremental PareDown paths must never fall back to the full-scan
// borderBlocks()/removalRank() references: the process-wide scan
// counters stay flat across entire runs, on the paper designs and on
// random networks (the trace observer included).
TEST(PortCounter, PareDownMakesNoFullScanBorderOrRankQueries) {
  std::vector<Network> nets;
  nets.push_back(designs::figure5());
  for (const std::uint32_t seed : {1u, 2u, 3u, 4u, 5u})
    nets.push_back(
        randgen::randomNetwork({.innerBlocks = 20, .seed = seed}));
  for (const Network& net : nets) {
    const PartitionProblem problem(net, ProgBlockSpec{});
    const SubgraphScanCounts before = subgraphScanCounts();
    PareDownOptions options;
    int steps = 0;
    options.trace = [&](const PareDownStep&) { ++steps; };
    const PartitionRun run = pareDown(problem, options);
    EXPECT_GT(steps, 0);
    EXPECT_GT(run.explored, 0u);
    const SubgraphScanCounts after = subgraphScanCounts();
    EXPECT_EQ(after.borderScans, before.borderScans) << net.name();
    EXPECT_EQ(after.rankScans, before.rankScans) << net.name();
  }
}

TEST(PortCounter, MultiTypePareDownMakesNoFullScanBorderOrRankQueries) {
  ProgCostModel model = ProgCostModel::paperDefault();
  for (const std::uint32_t seed : {11u, 12u, 13u}) {
    const Network net =
        randgen::randomNetwork({.innerBlocks = 20, .seed = seed});
    const SubgraphScanCounts before = subgraphScanCounts();
    const TypedPartitionRun run = multiTypePareDown(net, model);
    EXPECT_GT(run.explored, 0u);
    const SubgraphScanCounts after = subgraphScanCounts();
    EXPECT_EQ(after.borderScans, before.borderScans) << "seed " << seed;
    EXPECT_EQ(after.rankScans, before.rankScans) << "seed " << seed;
  }
}

TEST(PortCounter, SignalsModeSharesFanoutPorts) {
  // One inner block driving two external consumers from one output port
  // must count a single output signal but two output edges.
  const auto& cat = defaultCatalog();
  Network net;
  const BlockId s = net.addBlock("s", cat.button());
  const BlockId a = net.addBlock("a", cat.inverter());
  const BlockId b = net.addBlock("b", cat.inverter());
  const BlockId o1 = net.addBlock("o1", cat.led());
  const BlockId o2 = net.addBlock("o2", cat.led());
  net.connect(s, 0, a, 0);
  net.connect(a, 0, b, 0);
  net.connect(b, 0, o1, 0);
  net.connect(b, 0, o2, 0);

  PortCounter edges(net, CountingMode::kEdges);
  edges.add(a);
  edges.add(b);
  EXPECT_EQ(edges.io().inputs, 1);
  EXPECT_EQ(edges.io().outputs, 2);

  PortCounter signals(net, CountingMode::kSignals);
  signals.add(a);
  signals.add(b);
  EXPECT_EQ(signals.io().inputs, 1);
  EXPECT_EQ(signals.io().outputs, 1);
}

}  // namespace
}  // namespace eblocks::partition
