#include "partition/exhaustive.h"

#include <gtest/gtest.h>

#include "blocks/catalog.h"
#include "designs/library.h"
#include "partition/paredown.h"
#include "partition/verify.h"
#include "randgen/generator.h"

namespace eblocks::partition {
namespace {

using blocks::defaultCatalog;

TEST(Exhaustive, ChainOptimal) {
  const auto& cat = defaultCatalog();
  Network net;
  const BlockId s = net.addBlock("s", cat.button());
  const BlockId a = net.addBlock("a", cat.inverter());
  const BlockId b = net.addBlock("b", cat.toggle());
  const BlockId o = net.addBlock("o", cat.led());
  net.connect(s, 0, a, 0);
  net.connect(a, 0, b, 0);
  net.connect(b, 0, o, 0);
  const PartitionProblem problem(net, ProgBlockSpec{});
  const PartitionRun run = exhaustiveSearch(problem);
  EXPECT_TRUE(run.optimal);
  EXPECT_EQ(run.result.totalAfter(2), 1);
}

TEST(Exhaustive, Figure5OptimalCostIsThree) {
  const Network net = designs::figure5();
  const PartitionProblem problem(net, ProgBlockSpec{});
  const PartitionRun run = exhaustiveSearch(problem);
  EXPECT_TRUE(run.optimal);
  EXPECT_EQ(run.result.totalAfter(8), 3);  // Table 1: exhaustive total 3
  EXPECT_TRUE(verifyPartitioning(problem, run.result).empty());
}

TEST(Exhaustive, OrChainProvesNothingFits) {
  const Network net = designs::byName("Any Window Open Alarm");
  const PartitionProblem problem(net, ProgBlockSpec{});
  const PartitionRun run = exhaustiveSearch(problem);
  EXPECT_TRUE(run.optimal);
  EXPECT_TRUE(run.result.partitions.empty());
  EXPECT_EQ(run.result.totalAfter(3), 3);
}

TEST(Exhaustive, NeverWorseThanPareDown) {
  for (std::uint32_t seed = 1; seed <= 8; ++seed) {
    const randgen::GeneratorOptions gen{.innerBlocks = 9, .seed = seed};
    const Network net = randgen::randomNetwork(gen);
    const PartitionProblem problem(net, ProgBlockSpec{});
    const PartitionRun heuristic = pareDown(problem);
    const PartitionRun exact = exhaustiveSearch(problem);
    ASSERT_TRUE(exact.optimal) << "seed " << seed;
    EXPECT_LE(exact.result.totalAfter(9), heuristic.result.totalAfter(9))
        << "seed " << seed;
    EXPECT_TRUE(verifyPartitioning(problem, exact.result).empty());
  }
}

TEST(Exhaustive, SeedDoesNotChangeOptimum) {
  const randgen::GeneratorOptions gen{.innerBlocks = 9, .seed = 42};
  const Network net = randgen::randomNetwork(gen);
  const PartitionProblem problem(net, ProgBlockSpec{});
  // Serial runs: the explored-node comparison below is only deterministic
  // without worker scheduling in play.
  ExhaustiveOptions unseeded;
  unseeded.threads = 1;
  ExhaustiveOptions seeded;
  seeded.threads = 1;
  seeded.seed = pareDown(problem).result;
  const PartitionRun a = exhaustiveSearch(problem, unseeded);
  const PartitionRun b = exhaustiveSearch(problem, seeded);
  EXPECT_EQ(a.result.totalAfter(9), b.result.totalAfter(9));
  // Seeding may only shrink the explored node count.
  EXPECT_LE(b.explored, a.explored);
}

TEST(Exhaustive, TimeLimitReturnsBestSoFar) {
  const randgen::GeneratorOptions gen{.innerBlocks = 26, .seed = 3};
  const Network net = randgen::randomNetwork(gen);
  const PartitionProblem problem(net, ProgBlockSpec{});
  ExhaustiveOptions options;
  options.timeLimitSeconds = 0.02;
  const PartitionRun run = exhaustiveSearch(problem, options);
  EXPECT_TRUE(run.timedOut);
  EXPECT_FALSE(run.optimal);
  // Whatever it returns must still verify.
  EXPECT_TRUE(verifyPartitioning(problem, run.result).empty());
}

TEST(Exhaustive, InvalidSeedIsIgnored) {
  const Network net = designs::figure5();
  const PartitionProblem problem(net, ProgBlockSpec{});
  // A bogus seed: one partition with a single block.
  Partitioning bogus;
  BitSet single = net.emptySet();
  single.set(1);
  bogus.partitions.push_back(single);
  ExhaustiveOptions options;
  options.seed = bogus;
  const PartitionRun run = exhaustiveSearch(problem, options);
  EXPECT_EQ(run.result.totalAfter(8), 3);
  EXPECT_TRUE(verifyPartitioning(problem, run.result).empty());
}

TEST(Exhaustive, AcyclicQuotientOptionTightens) {
  // Two disjoint convex pairs wired a->c and d->b create a quotient cycle
  // when partitioned as {a,b} and {c,d}.
  const auto& cat = defaultCatalog();
  Network net;
  const BlockId s1 = net.addBlock("s1", cat.button());
  const BlockId s2 = net.addBlock("s2", cat.button());
  const BlockId a = net.addBlock("a", cat.inverter());
  const BlockId b = net.addBlock("b", cat.and2());
  const BlockId c = net.addBlock("c", cat.and2());
  const BlockId d = net.addBlock("d", cat.inverter());
  const BlockId o1 = net.addBlock("o1", cat.led());
  const BlockId o2 = net.addBlock("o2", cat.led());
  net.connect(s1, 0, a, 0);
  net.connect(s2, 0, d, 0);
  net.connect(a, 0, c, 0);
  net.connect(s1, 0, c, 1);
  net.connect(d, 0, b, 0);
  net.connect(s2, 0, b, 1);
  net.connect(b, 0, o1, 0);
  net.connect(c, 0, o2, 0);
  const PartitionProblem problem(net, ProgBlockSpec{});
  ExhaustiveOptions strict;
  strict.requireAcyclicQuotient = true;
  const PartitionRun loose = exhaustiveSearch(problem);
  const PartitionRun tight = exhaustiveSearch(problem, strict);
  EXPECT_LE(loose.result.totalAfter(4), tight.result.totalAfter(4));
  // The strict result's quotient must be acyclic by construction; verify
  // the loose one found at least as good a cost.
  EXPECT_TRUE(verifyPartitioning(problem, tight.result).empty());
}

TEST(Exhaustive, ExploredCounterGrowsWithProblemSize) {
  std::uint64_t prev = 0;
  for (int n : {4, 6, 8}) {
    const randgen::GeneratorOptions gen{.innerBlocks = n, .seed = 5};
    const Network net = randgen::randomNetwork(gen);
    const PartitionProblem problem(net, ProgBlockSpec{});
    ExhaustiveOptions serial;
    serial.threads = 1;  // deterministic node counts
    const PartitionRun run = exhaustiveSearch(problem, serial);
    EXPECT_GT(run.explored, prev);
    prev = run.explored;
  }
}

}  // namespace
}  // namespace eblocks::partition
