// The admissible lower-bound layer (ExhaustiveOptions::pruningBound) is
// a pure accelerator: with it on, the search must return results
// *bit-identical* to the unpruned search -- on the Table-1 designs and a
// population of random networks, at 1/2/4/8 threads, under both
// schedulers, in both counting modes -- while never exploring more
// nodes.  The unpruned serial search is the reference; every pruned
// configuration is compared against it.
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "designs/library.h"
#include "partition/engine.h"
#include "partition/exhaustive.h"
#include "partition/multitype.h"
#include "partition/paredown.h"
#include "partition/verify.h"
#include "randgen/generator.h"

namespace eblocks::partition {
namespace {

constexpr SearchScheduler kBothSchedulers[] = {
    SearchScheduler::kWorkStealing, SearchScheduler::kFixedSplit};
constexpr CountingMode kBothModes[] = {CountingMode::kEdges,
                                       CountingMode::kSignals};
constexpr int kThreadCounts[] = {1, 2, 4, 8};

void expectIdentical(const PartitionRun& reference, const PartitionRun& run,
                     int innerCount, const std::string& label) {
  EXPECT_EQ(reference.result.totalAfter(innerCount),
            run.result.totalAfter(innerCount))
      << label;
  ASSERT_EQ(reference.result.partitions.size(),
            run.result.partitions.size())
      << label;
  for (std::size_t i = 0; i < reference.result.partitions.size(); ++i)
    EXPECT_EQ(reference.result.partitions[i].toVector(),
              run.result.partitions[i].toVector())
        << label << " partition #" << i;
}

/// Runs the unpruned serial reference, then every pruned configuration,
/// asserting bit-identity and that pruning never explores more nodes
/// than the unpruned search at the same thread count = 1.
void checkAllConfigurations(const PartitionProblem& problem, int innerCount,
                            const std::string& label) {
  ExhaustiveOptions reference;
  reference.threads = 1;
  reference.pruningBound = false;
  reference.seed = pareDown(problem).result;
  const PartitionRun unpruned = exhaustiveSearch(problem, reference);
  ASSERT_TRUE(unpruned.optimal) << label;
  EXPECT_EQ(unpruned.pruned, 0u) << label;

  for (SearchScheduler scheduler : kBothSchedulers) {
    for (int threads : kThreadCounts) {
      ExhaustiveOptions options = reference;
      options.pruningBound = true;
      options.threads = threads;
      options.scheduler = scheduler;
      const PartitionRun pruned = exhaustiveSearch(problem, options);
      ASSERT_TRUE(pruned.optimal) << label;
      expectIdentical(unpruned, pruned, innerCount,
                      label + " @" + std::to_string(threads) + " threads, " +
                          toString(scheduler));
      EXPECT_TRUE(verifyPartitioning(problem, pruned.result).empty())
          << label;
      if (threads == 1) {
        EXPECT_LE(pruned.explored, unpruned.explored) << label;
      }
    }
  }
}

TEST(PruningBound, Table1DesignsBitIdenticalBothModes) {
  for (const auto& entry : designs::designLibrary()) {
    // Cap like the parallel-equivalence suite: the matrix below runs
    // 2 modes x 2 schedulers x 4 thread counts per design, and the
    // *unpruned* reference is the expensive leg on the big designs.
    if (entry.innerBlocks > 13) continue;
    for (CountingMode mode : kBothModes) {
      const PartitionProblem problem(
          entry.network,
          ProgBlockSpec{.inputs = 2, .outputs = 2, .mode = mode});
      checkAllConfigurations(problem, entry.innerBlocks,
                             entry.name + " [" + toString(mode) + "]");
    }
  }
}

TEST(PruningBound, RandomDesignsBitIdenticalBothModes) {
  // 25 fixed-seed networks, sizes cycling 8..10 inner blocks, the same
  // population the parallel-equivalence suite uses.
  for (std::uint32_t seed = 1; seed <= 25; ++seed) {
    const int inner = 8 + static_cast<int>(seed % 3);
    const Network net =
        randgen::randomNetwork({.innerBlocks = inner, .seed = seed});
    for (CountingMode mode : kBothModes) {
      const PartitionProblem problem(
          net, ProgBlockSpec{.inputs = 2, .outputs = 2, .mode = mode});
      checkAllConfigurations(problem, inner,
                             "seed " + std::to_string(seed) + " [" +
                                 toString(mode) + "]");
    }
  }
}

TEST(PruningBound, UnseededSearchBitIdentical) {
  // Without the PareDown seed the initial incumbent is weak, pruning
  // decisions happen against bounds discovered mid-search, and the
  // pruned/unpruned node-count gap is at its widest.
  const Network net = randgen::randomNetwork({.innerBlocks = 10, .seed = 77});
  for (CountingMode mode : kBothModes) {
    const PartitionProblem problem(
        net, ProgBlockSpec{.inputs = 2, .outputs = 2, .mode = mode});
    ExhaustiveOptions reference;
    reference.threads = 1;
    reference.pruningBound = false;
    const PartitionRun unpruned = exhaustiveSearch(problem, reference);
    for (SearchScheduler scheduler : kBothSchedulers) {
      for (int threads : kThreadCounts) {
        ExhaustiveOptions options;
        options.threads = threads;
        options.scheduler = scheduler;
        const PartitionRun pruned = exhaustiveSearch(problem, options);
        expectIdentical(unpruned, pruned, 10,
                        std::string("unseeded [") + toString(mode) + "] @" +
                            std::to_string(threads) + ", " +
                            toString(scheduler));
      }
    }
  }
}

TEST(PruningBound, ReducesExploredNodesAndReportsPrunedSubtrees) {
  // The layer must actually bite: on an unseeded random design the
  // pruned search explores strictly fewer nodes and accounts for the
  // difference in `pruned`.
  const Network net = randgen::randomNetwork({.innerBlocks = 11, .seed = 3});
  const PartitionProblem problem(net, ProgBlockSpec{});
  ExhaustiveOptions off;
  off.threads = 1;
  off.pruningBound = false;
  const PartitionRun unpruned = exhaustiveSearch(problem, off);
  ExhaustiveOptions on = off;
  on.pruningBound = true;
  const PartitionRun pruned = exhaustiveSearch(problem, on);
  EXPECT_LT(pruned.explored, unpruned.explored);
  EXPECT_GT(pruned.pruned, 0u);
  EXPECT_EQ(unpruned.pruned, 0u);
}

TEST(PruningBound, WorkerCountersParallelToWorkerExplored) {
  const Network net = randgen::randomNetwork({.innerBlocks = 10, .seed = 12});
  const PartitionProblem problem(net, ProgBlockSpec{});
  ExhaustiveOptions options;
  options.threads = 4;
  const PartitionRun run = exhaustiveSearch(problem, options);
  ASSERT_TRUE(run.optimal);
  EXPECT_EQ(run.workerPruned.size(), run.workerExplored.size());
  std::uint64_t sum = 0;
  for (const std::uint64_t p : run.workerPruned) sum += p;
  EXPECT_EQ(sum, run.pruned);
}

TEST(PruningBound, MultiTypeBitIdenticalAcrossThreadsAndSchedulers) {
  ProgCostModel model;
  model.preDefinedBlockCost = 1.0;
  model.options = {ProgBlockOption{"prog_2x2", 2, 2, 1.5},
                   ProgBlockOption{"prog_2x3", 2, 3, 2.0}};
  for (std::uint32_t seed = 1; seed <= 6; ++seed) {
    const Network net =
        randgen::randomNetwork({.innerBlocks = 9, .seed = seed});
    const int n = static_cast<int>(net.innerBlocks().size());
    MultiTypeExhaustiveOptions reference;
    reference.threads = 1;
    reference.pruningBound = false;
    const TypedPartitionRun unpruned =
        multiTypeExhaustive(net, model, reference);
    ASSERT_TRUE(unpruned.optimal) << "seed " << seed;
    EXPECT_EQ(unpruned.pruned, 0u);
    for (SearchScheduler scheduler : kBothSchedulers) {
      for (int threads : kThreadCounts) {
        MultiTypeExhaustiveOptions options;
        options.threads = threads;
        options.scheduler = scheduler;
        const TypedPartitionRun pruned =
            multiTypeExhaustive(net, model, options);
        ASSERT_TRUE(pruned.optimal) << "seed " << seed;
        const std::string label = "seed " + std::to_string(seed) + " @" +
                                  std::to_string(threads) + " " +
                                  toString(scheduler);
        EXPECT_DOUBLE_EQ(unpruned.result.totalCost(n, model),
                         pruned.result.totalCost(n, model))
            << label;
        ASSERT_EQ(unpruned.result.partitions.size(),
                  pruned.result.partitions.size())
            << label;
        for (std::size_t i = 0; i < unpruned.result.partitions.size(); ++i) {
          EXPECT_EQ(unpruned.result.partitions[i].toVector(),
                    pruned.result.partitions[i].toVector())
              << label;
          EXPECT_EQ(unpruned.result.optionIndex[i],
                    pruned.result.optionIndex[i])
              << label;
        }
        EXPECT_TRUE(
            verifyTypedPartitioning(net, model, pruned.result).empty())
            << label;
        if (threads == 1) {
          EXPECT_LE(pruned.explored, unpruned.explored) << label;
        }
      }
    }
  }
}

TEST(PruningBound, MultiTypeSignalsModeBitIdentical) {
  ProgCostModel model;
  model.preDefinedBlockCost = 1.0;
  model.mode = CountingMode::kSignals;
  model.options = {ProgBlockOption{"prog_2x2", 2, 2, 1.5}};
  const Network net = randgen::randomNetwork({.innerBlocks = 10, .seed = 9});
  const int n = static_cast<int>(net.innerBlocks().size());
  MultiTypeExhaustiveOptions reference;
  reference.threads = 1;
  reference.pruningBound = false;
  const TypedPartitionRun unpruned =
      multiTypeExhaustive(net, model, reference);
  MultiTypeExhaustiveOptions options;
  options.threads = 4;
  const TypedPartitionRun pruned = multiTypeExhaustive(net, model, options);
  EXPECT_DOUBLE_EQ(unpruned.result.totalCost(n, model),
                   pruned.result.totalCost(n, model));
  ASSERT_EQ(unpruned.result.partitions.size(),
            pruned.result.partitions.size());
  for (std::size_t i = 0; i < unpruned.result.partitions.size(); ++i)
    EXPECT_EQ(unpruned.result.partitions[i].toVector(),
              pruned.result.partitions[i].toVector());
  EXPECT_LE(pruned.explored, unpruned.explored);
}

TEST(PruningBound, EnginePlumbsThePruningFlag) {
  // runPartitioner must forward EngineOptions::pruningBound; both
  // settings reach the identical optimum and the disabled run reports
  // zero pruned subtrees.
  const Network net = designs::figure5();
  const PartitionProblem problem(net, ProgBlockSpec{});
  EngineOptions on;
  on.threads = 1;
  const PartitionRun prunedRun = runPartitioner("exhaustive", problem, on);
  EngineOptions off = on;
  off.pruningBound = false;
  const PartitionRun unprunedRun = runPartitioner("exhaustive", problem, off);
  EXPECT_EQ(unprunedRun.pruned, 0u);
  expectIdentical(unprunedRun, prunedRun, 8, "engine plumbing");
  EXPECT_LE(prunedRun.explored, unprunedRun.explored);
}

TEST(PruningBound, TimeLimitedRunStillReturnsVerifiedResult) {
  // The pruning layer must not disturb the timeout path: the best-so-far
  // result still verifies and is never worse than the seed.
  const Network net = randgen::randomNetwork({.innerBlocks = 26, .seed = 3});
  const PartitionProblem problem(net, ProgBlockSpec{});
  ExhaustiveOptions options;
  options.threads = 4;
  options.timeLimitSeconds = 0.02;
  options.seed = pareDown(problem).result;
  const PartitionRun run = exhaustiveSearch(problem, options);
  EXPECT_TRUE(run.timedOut);
  EXPECT_TRUE(verifyPartitioning(problem, run.result).empty());
  EXPECT_LE(run.result.totalAfter(26), options.seed->totalAfter(26));
}

}  // namespace
}  // namespace eblocks::partition
