// Golden test: the PareDown walkthrough of Figure 5 (Podium Timer 3).
//
// The paper narrates every decision the heuristic makes on this design;
// this test replays the full trace and checks each checkpoint:
//   (a) candidate {2..9}: 3 outputs, border {2,8,9} with ranks +1/+1/0,
//       remove 9;
//   (b) candidate {2..8}: invalid, border exactly {2,8} (6 and 7 excluded
//       because an output connects inside), equal ranks, indegree tiebreak
//       removes 8;
//   (c) candidate {2..7}: four outputs, ranks of 6 and 7 both -1, the
//       indegree and outdegree tiebreaks tie, the level tiebreak removes 7;
//   (d) remove 6; candidate {2,3,4,5} is valid -> partition 1;
//   (e) round 2 on {6,7,8,9}: invalid, remove 7, {6,8,9} valid ->
//       partition 2; round 3: {7} fits but is a single block -> dropped.
// Result: 8 inner blocks -> 3 (2 programmable + 1 pre-defined).
#include <gtest/gtest.h>

#include "designs/library.h"
#include "partition/paredown.h"

namespace eblocks::partition {
namespace {

// Paper node k = BlockId k-1.
constexpr BlockId N(int paperNode) {
  return static_cast<BlockId>(paperNode - 1);
}

std::vector<BlockId> ids(std::initializer_list<int> paperNodes) {
  std::vector<BlockId> out;
  for (int n : paperNodes) out.push_back(N(n));
  return out;
}

class PareDownFigure5 : public ::testing::Test {
 protected:
  PareDownFigure5() : net(designs::figure5()), problem(net, ProgBlockSpec{}) {
    PareDownOptions options;
    options.trace = [this](const PareDownStep& step) {
      steps.push_back(clone(step));
    };
    run = pareDown(problem, options);
  }

  static PareDownStep clone(const PareDownStep& s) {
    PareDownStep c;
    c.candidate = s.candidate;
    c.io = s.io;
    c.fits = s.fits;
    c.border = s.border;
    c.ranks = s.ranks;
    c.removed = s.removed;
    return c;
  }

  int rankOf(const PareDownStep& s, BlockId b) const {
    for (std::size_t i = 0; i < s.border.size(); ++i)
      if (s.border[i] == b) return s.ranks[i];
    ADD_FAILURE() << "block " << b << " not in border";
    return 999;
  }

  Network net;
  PartitionProblem problem;
  PartitionRun run;
  std::vector<PareDownStep> steps;
};

TEST_F(PareDownFigure5, TraceHasEightDecisions) {
  ASSERT_EQ(steps.size(), 8u);
}

TEST_F(PareDownFigure5, StepA_FullCandidateThreeOutputs) {
  const PareDownStep& s = steps[0];
  EXPECT_EQ(s.candidate.toVector().size(), 8u);
  EXPECT_FALSE(s.fits);
  EXPECT_EQ(s.io.inputs, 2);
  EXPECT_EQ(s.io.outputs, 3);  // "the shaded partition requires three outputs"
  EXPECT_EQ(s.border, ids({2, 8, 9}));
  EXPECT_EQ(rankOf(s, N(2)), 1);
  EXPECT_EQ(rankOf(s, N(8)), 1);
  EXPECT_EQ(rankOf(s, N(9)), 0);
  EXPECT_EQ(s.removed, N(9));  // least rank
}

TEST_F(PareDownFigure5, StepB_IndegreeTiebreakRemoves8) {
  const PareDownStep& s = steps[1];
  EXPECT_FALSE(s.fits);
  // "nodes 2 and 8 are considered for removal, being the border nodes
  //  (node 6 and 7 are not border nodes ...)"
  EXPECT_EQ(s.border, ids({2, 8}));
  EXPECT_EQ(rankOf(s, N(2)), rankOf(s, N(8)));
  EXPECT_EQ(net.indegree(N(8)), 2);
  EXPECT_EQ(net.indegree(N(2)), 1);
  EXPECT_EQ(s.removed, N(8));
}

TEST_F(PareDownFigure5, StepC_FourOutputsLevelTiebreakRemoves7) {
  const PareDownStep& s = steps[2];
  EXPECT_FALSE(s.fits);
  EXPECT_EQ(s.io.outputs, 4);  // "With a requirement of four outputs"
  EXPECT_EQ(rankOf(s, N(6)), -1);
  EXPECT_EQ(rankOf(s, N(7)), -1);
  // Indegree and outdegree tie; node 7's level (4) beats node 6's (3).
  EXPECT_EQ(net.indegree(N(6)), net.indegree(N(7)));
  EXPECT_EQ(net.outdegree(N(6)), net.outdegree(N(7)));
  EXPECT_GT(problem.levels()[N(7)], problem.levels()[N(6)]);
  EXPECT_EQ(s.removed, N(7));
}

TEST_F(PareDownFigure5, StepD_Removes6ThenAccepts2345) {
  EXPECT_EQ(steps[3].removed, N(6));
  const PareDownStep& accept = steps[4];
  EXPECT_TRUE(accept.fits);
  EXPECT_EQ(accept.candidate.toVector(),
            (std::vector<std::uint32_t>{N(2), N(3), N(4), N(5)}));
  EXPECT_EQ(accept.removed, kNoBlock);
}

TEST_F(PareDownFigure5, Round2_Removes7Accepts689) {
  const PareDownStep& s = steps[5];
  EXPECT_EQ(s.candidate.toVector(),
            (std::vector<std::uint32_t>{N(6), N(7), N(8), N(9)}));
  EXPECT_FALSE(s.fits);
  EXPECT_EQ(s.removed, N(7));
  const PareDownStep& accept = steps[6];
  EXPECT_TRUE(accept.fits);
  EXPECT_EQ(accept.candidate.toVector(),
            (std::vector<std::uint32_t>{N(6), N(8), N(9)}));
}

TEST_F(PareDownFigure5, Round3_SingleBlock7FitsButDropped) {
  const PareDownStep& s = steps[7];
  EXPECT_EQ(s.candidate.toVector(), (std::vector<std::uint32_t>{N(7)}));
  // "Though the partition fits in a programmable block, the partition is
  //  invalid for containing only a single block."
  EXPECT_TRUE(s.fits);
  EXPECT_LE(s.io.inputs, 2);
  EXPECT_LE(s.io.outputs, 2);
}

TEST_F(PareDownFigure5, FinalResultMatchesPaper) {
  // "the heuristic reduces the internal compute nodes from the initial
  //  user-defined 8 nodes to only 3" -- 2 programmable + node 7.
  ASSERT_EQ(run.result.partitions.size(), 2u);
  EXPECT_EQ(run.result.partitions[0].toVector(),
            (std::vector<std::uint32_t>{N(2), N(3), N(4), N(5)}));
  EXPECT_EQ(run.result.partitions[1].toVector(),
            (std::vector<std::uint32_t>{N(6), N(8), N(9)}));
  EXPECT_EQ(run.result.totalAfter(8), 3);
  EXPECT_EQ(run.result.programmableBlocks(), 2);
}

}  // namespace
}  // namespace eblocks::partition
