// The deadline degradation ladder (partition/ladder.h): a feasible
// partitioning at ANY deadline, the correct `degradedTier` annotation
// for how far the deadline let it climb, and bit-identity with the
// exact branch-and-bound when the deadline is generous.
#include "partition/ladder.h"

#include <gtest/gtest.h>

#include <atomic>

#include "designs/library.h"
#include "partition/engine.h"
#include "partition/exhaustive.h"
#include "partition/verify.h"
#include "randgen/generator.h"

namespace eblocks::partition {
namespace {

void expectSamePartitions(const Partitioning& a, const Partitioning& b,
                          const std::string& label) {
  ASSERT_EQ(a.partitions.size(), b.partitions.size()) << label;
  for (std::size_t i = 0; i < a.partitions.size(); ++i)
    EXPECT_EQ(a.partitions[i].toVector(), b.partitions[i].toVector())
        << label;
}

TEST(Ladder, NearZeroDeadlineIsFeasibleGreedyOnTable1) {
  // A deadline of a nanosecond buys exactly the unconditional rung:
  // greedy runs, nothing else gets a slice, and the run says so.
  for (const auto& entry : designs::designLibrary()) {
    const PartitionProblem problem(entry.network, ProgBlockSpec{});
    EngineOptions options;
    options.timeLimitSeconds = 1e-9;
    const PartitionRun run = degradationLadder(problem, options);
    EXPECT_TRUE(verifyPartitioning(problem, run.result).empty())
        << entry.name;
    EXPECT_EQ(run.algorithm, "ladder") << entry.name;
    EXPECT_EQ(run.degradedTier, "greedy") << entry.name;
    EXPECT_FALSE(run.optimal) << entry.name;
    EXPECT_TRUE(run.timedOut) << entry.name;
  }
}

TEST(Ladder, NearZeroDeadlineIsFeasibleOn25RandomDesigns) {
  randgen::GeneratorOptions gen;
  for (std::uint32_t seed = 1; seed <= 25; ++seed) {
    gen.innerBlocks = 6 + static_cast<int>(seed % 12);
    gen.seed = seed;
    const Network net = randgen::randomNetwork(gen);
    const PartitionProblem problem(net, ProgBlockSpec{});
    EngineOptions options;
    options.timeLimitSeconds = 1e-9;
    const PartitionRun run = degradationLadder(problem, options);
    EXPECT_TRUE(verifyPartitioning(problem, run.result).empty())
        << "seed " << seed;
    EXPECT_EQ(run.degradedTier, "greedy") << "seed " << seed;
  }
}

TEST(Ladder, GenerousDeadlineMatchesExactOptimumBitIdentically) {
  // With room to finish, the ladder's last rung completes: optimal,
  // degradedTier unset, and the partitioning is the branch-and-bound's
  // canonical optimum -- bit-identical, not merely equal-cost (the PR 7
  // warm-start guarantee: a completed seeded search returns the same
  // canonical solution as an unseeded one).
  for (const auto& entry : designs::designLibrary()) {
    if (entry.innerBlocks > 16) continue;  // keep the exact reference cheap
    const PartitionProblem problem(entry.network, ProgBlockSpec{});
    ExhaustiveOptions exact;
    exact.threads = 1;
    const PartitionRun reference = exhaustiveSearch(problem, exact);
    ASSERT_TRUE(reference.optimal) << entry.name;

    EngineOptions options;
    options.timeLimitSeconds = 0.0;  // <= 0 = unlimited
    options.threads = 1;
    const PartitionRun run = degradationLadder(problem, options);
    EXPECT_TRUE(run.optimal) << entry.name;
    EXPECT_FALSE(run.timedOut) << entry.name;
    EXPECT_EQ(run.degradedTier, "") << entry.name;
    expectSamePartitions(run.result, reference.result, entry.name);
  }
}

TEST(Ladder, RegisteredInEngineAndReachableByName) {
  const Network net = designs::figure5();
  const PartitionProblem problem(net, ProgBlockSpec{});
  EngineOptions options;
  options.timeLimitSeconds = 0.0;
  options.threads = 1;
  const PartitionRun run = runPartitioner("ladder", problem, options);
  EXPECT_EQ(run.algorithm, "ladder");
  EXPECT_TRUE(run.optimal);
  EXPECT_TRUE(verifyPartitioning(problem, run.result).empty());
}

TEST(Ladder, TierNamesAreMonotoneInDeadline) {
  // The tier can only climb as the deadline grows: greedy at nothing,
  // "" (exact) at unlimited.  Intermediate deadlines may land anywhere
  // in between depending on machine speed, so only the endpoints are
  // asserted exactly; every returned tier must be a known rung.
  const Network net = designs::figure5();
  const PartitionProblem problem(net, ProgBlockSpec{});
  const auto rank = [](const std::string& tier) {
    if (tier == "greedy") return 0;
    if (tier == "fm") return 1;
    if (tier == "lns") return 2;
    if (tier == "exact-anytime") return 3;
    if (tier.empty()) return 4;
    return -1;  // unknown tier name = failure
  };
  int previous = 0;
  for (const double deadline : {1e-9, 5.0, 0.0}) {
    EngineOptions options;
    options.timeLimitSeconds = deadline;
    options.threads = 1;
    const PartitionRun run = degradationLadder(problem, options);
    const int r = rank(run.degradedTier);
    ASSERT_GE(r, 0) << "unknown tier '" << run.degradedTier << "'";
    EXPECT_GE(r, previous) << "deadline " << deadline;
    previous = r;
    EXPECT_TRUE(verifyPartitioning(problem, run.result).empty());
  }
  EXPECT_EQ(previous, 4);  // unlimited must reach the exact rung
}

TEST(Ladder, CancelReturnsFeasibleImmediately) {
  const Network net = designs::figure5();
  const PartitionProblem problem(net, ProgBlockSpec{});
  std::atomic<bool> cancel{true};  // cancelled before it starts
  EngineOptions options;
  options.timeLimitSeconds = 0.0;
  options.cancel = &cancel;
  const PartitionRun run = degradationLadder(problem, options);
  // The unconditional greedy rung still delivers a feasible answer.
  EXPECT_TRUE(verifyPartitioning(problem, run.result).empty());
  EXPECT_EQ(run.degradedTier, "greedy");
  EXPECT_FALSE(run.optimal);
}

}  // namespace
}  // namespace eblocks::partition
