// The strategy registry: every partitioner reachable by name, engine
// options forwarded, custom strategies pluggable at runtime.
#include "partition/engine.h"

#include <gtest/gtest.h>

#include "designs/library.h"
#include "partition/exhaustive.h"
#include "partition/paredown.h"
#include "partition/verify.h"
#include "synth/synthesizer.h"

namespace eblocks::partition {
namespace {

TEST(Engine, BuiltInsAreRegistered) {
  const auto& registry = PartitionerRegistry::instance();
  EXPECT_EQ(registry.names(),
            (std::vector<std::string>{"aggregation", "exhaustive", "fm",
                                      "greedy", "ladder", "lns", "paredown"}));
  EXPECT_EQ(registry.typedNames(),
            (std::vector<std::string>{"exhaustive", "fm", "paredown"}));
  for (const std::string& name : registry.names()) {
    EXPECT_NE(registry.find(name), nullptr) << name;
    EXPECT_FALSE(registry.describe(name).empty()) << name;
  }
  EXPECT_EQ(registry.find("no-such-strategy"), nullptr);
  EXPECT_EQ(registry.findTyped("aggregation"), nullptr);
}

TEST(Engine, RunPartitionerMatchesDirectCalls) {
  const Network net = designs::figure5();
  const PartitionProblem problem(net, ProgBlockSpec{});
  const PartitionRun direct = pareDown(problem);
  const PartitionRun viaEngine = runPartitioner("paredown", problem);
  EXPECT_EQ(viaEngine.algorithm, "paredown");
  ASSERT_EQ(viaEngine.result.partitions.size(),
            direct.result.partitions.size());
  for (std::size_t i = 0; i < direct.result.partitions.size(); ++i)
    EXPECT_EQ(viaEngine.result.partitions[i].toVector(),
              direct.result.partitions[i].toVector());
}

TEST(Engine, UnknownNameThrowsListingRegistered) {
  const Network net = designs::figure5();
  const PartitionProblem problem(net, ProgBlockSpec{});
  try {
    runPartitioner("kernighan-lin", problem);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("kernighan-lin"), std::string::npos);
    EXPECT_NE(what.find("paredown"), std::string::npos);
    EXPECT_NE(what.find("exhaustive"), std::string::npos);
    EXPECT_NE(what.find("aggregation"), std::string::npos);
  }
}

TEST(Engine, ExhaustiveStrategySeedsFromPareDownByDefault) {
  // The engine's exhaustive run must start from PareDown's bound: it
  // explores exactly what an explicitly-seeded serial search explores
  // and never more than an unseeded one.  (Since the warm-start PR a
  // tying seed no longer displaces the canonical optimum, so on designs
  // whose first DFS dive is already optimal the counts are equal.)
  const Network net = designs::figure5();
  const PartitionProblem problem(net, ProgBlockSpec{});

  EngineOptions engineOptions;
  engineOptions.threads = 1;
  const PartitionRun viaEngine =
      runPartitioner("exhaustive", problem, engineOptions);

  ExhaustiveOptions seeded;
  seeded.threads = 1;
  seeded.timeLimitSeconds = engineOptions.timeLimitSeconds;
  seeded.seed = pareDown(problem).result;
  const PartitionRun direct = exhaustiveSearch(problem, seeded);

  EXPECT_EQ(viaEngine.explored, direct.explored);
  EXPECT_EQ(viaEngine.result.totalAfter(8), 3);

  ExhaustiveOptions unseeded;
  unseeded.threads = 1;
  const PartitionRun plain = exhaustiveSearch(problem, unseeded);
  EXPECT_LE(viaEngine.explored, plain.explored);
  // Seeding is purely an accelerator: the returned optimum is the
  // unseeded search's, bit for bit.
  ASSERT_EQ(viaEngine.result.partitions.size(),
            plain.result.partitions.size());
  for (std::size_t i = 0; i < plain.result.partitions.size(); ++i)
    EXPECT_EQ(viaEngine.result.partitions[i].toVector(),
              plain.result.partitions[i].toVector());

  EngineOptions noSeed = engineOptions;
  noSeed.seedFromPareDown = false;
  const PartitionRun viaEngineUnseeded =
      runPartitioner("exhaustive", problem, noSeed);
  EXPECT_EQ(viaEngineUnseeded.explored, plain.explored);
}

TEST(Engine, TypedStrategiesRunTheCostModel) {
  const Network net = designs::figure5();
  const ProgCostModel model = ProgCostModel::paperDefault();
  const TypedPartitionRun heuristic =
      runTypedPartitioner("paredown", net, model);
  EXPECT_EQ(heuristic.algorithm, "multitype-paredown");
  EXPECT_TRUE(verifyTypedPartitioning(net, model, heuristic.result).empty());

  EngineOptions engineOptions;
  engineOptions.threads = 1;
  const TypedPartitionRun exact =
      runTypedPartitioner("exhaustive", net, model, engineOptions);
  EXPECT_EQ(exact.algorithm, "multitype-exhaustive");
  EXPECT_TRUE(exact.optimal);
  EXPECT_LE(exact.result.totalCost(8, model),
            heuristic.result.totalCost(8, model));
}

// A minimal custom strategy: never partitions anything.  Registering it
// makes it reachable through synthesize() with zero further wiring.
class NullPartitioner final : public Partitioner {
 public:
  std::string name() const override { return "null"; }
  std::string description() const override {
    return "leaves every block unpartitioned (registry demo)";
  }
  PartitionRun run(const PartitionProblem&,
                   const EngineOptions&) const override {
    PartitionRun run;
    run.algorithm = "null";
    return run;
  }
};

TEST(Engine, CustomStrategyReachableThroughSynthesize) {
  PartitionerRegistry::instance().add(std::make_unique<NullPartitioner>());
  ASSERT_NE(PartitionerRegistry::instance().find("null"), nullptr);

  synth::SynthOptions options;
  options.algorithm = "null";
  const synth::SynthResult r =
      synth::synthesize(designs::figure5(), options);
  EXPECT_EQ(r.run.algorithm, "null");
  EXPECT_EQ(r.programmableBlocks, 0);
  EXPECT_EQ(r.innerAfter, 8);
}

}  // namespace
}  // namespace eblocks::partition
