// The parallel branch-and-bound must return the *identical* result to the
// serial search -- same optimum cost and bit-identical partitions -- at
// every thread count and under both schedulers (the default work-stealing
// one and the fixed-depth split), on the paper's Table-1 designs and on a
// population of fixed-seed random networks.
#include <gtest/gtest.h>

#include "designs/library.h"
#include "partition/exhaustive.h"
#include "partition/multitype.h"
#include "partition/paredown.h"
#include "partition/verify.h"
#include "randgen/generator.h"

namespace eblocks::partition {
namespace {

constexpr SearchScheduler kBothSchedulers[] = {
    SearchScheduler::kWorkStealing, SearchScheduler::kFixedSplit};

void expectIdenticalRuns(const PartitionRun& serial,
                         const PartitionRun& parallel,
                         int innerCount, const std::string& label) {
  EXPECT_EQ(serial.result.totalAfter(innerCount),
            parallel.result.totalAfter(innerCount))
      << label;
  ASSERT_EQ(serial.result.partitions.size(),
            parallel.result.partitions.size())
      << label;
  for (std::size_t i = 0; i < serial.result.partitions.size(); ++i)
    EXPECT_EQ(serial.result.partitions[i].toVector(),
              parallel.result.partitions[i].toVector())
        << label << " partition #" << i;
}

TEST(ParallelExhaustive, Table1DesignsMatchSerialBitForBit) {
  for (const auto& entry : designs::designLibrary()) {
    // The largest Table-1 reconstructions are exactly where the paper's
    // serial search blew up; bound them so the suite stays fast.  Every
    // run below completes optimally well inside the limit.
    if (entry.innerBlocks > 13) continue;
    const PartitionProblem problem(entry.network, ProgBlockSpec{});
    ExhaustiveOptions serialOptions;
    serialOptions.threads = 1;
    serialOptions.seed = pareDown(problem).result;
    const PartitionRun serial = exhaustiveSearch(problem, serialOptions);
    ASSERT_TRUE(serial.optimal) << entry.name;
    for (SearchScheduler scheduler : kBothSchedulers) {
      for (int threads : {2, 4, 8}) {
        ExhaustiveOptions parallelOptions = serialOptions;
        parallelOptions.threads = threads;
        parallelOptions.scheduler = scheduler;
        const PartitionRun parallel =
            exhaustiveSearch(problem, parallelOptions);
        ASSERT_TRUE(parallel.optimal) << entry.name;
        expectIdenticalRuns(serial, parallel, entry.innerBlocks,
                            entry.name + " @" + std::to_string(threads) +
                                " threads, " + toString(scheduler));
        EXPECT_TRUE(verifyPartitioning(problem, parallel.result).empty())
            << entry.name;
      }
    }
  }
}

TEST(ParallelExhaustive, RandomNetworksMatchSerialBitForBit) {
  // 25 fixed-seed networks; sizes cycle through 8..10 inner blocks.
  for (std::uint32_t seed = 1; seed <= 25; ++seed) {
    const int inner = 8 + static_cast<int>(seed % 3);
    const Network net =
        randgen::randomNetwork({.innerBlocks = inner, .seed = seed});
    const PartitionProblem problem(net, ProgBlockSpec{});
    ExhaustiveOptions serialOptions;
    serialOptions.threads = 1;
    serialOptions.seed = pareDown(problem).result;
    const PartitionRun serial = exhaustiveSearch(problem, serialOptions);
    ASSERT_TRUE(serial.optimal) << "seed " << seed;
    for (SearchScheduler scheduler : kBothSchedulers) {
      for (int threads : {2, 4, 8}) {
        ExhaustiveOptions parallelOptions = serialOptions;
        parallelOptions.threads = threads;
        parallelOptions.scheduler = scheduler;
        const PartitionRun parallel =
            exhaustiveSearch(problem, parallelOptions);
        ASSERT_TRUE(parallel.optimal) << "seed " << seed;
        expectIdenticalRuns(serial, parallel, inner,
                            "seed " + std::to_string(seed) + " @" +
                                std::to_string(threads) + " threads, " +
                                toString(scheduler));
      }
    }
  }
}

TEST(ParallelExhaustive, UnseededSearchAlsoMatches) {
  // Without the PareDown seed the initial bound is the weak "replace
  // nothing" incumbent, so the tie-break machinery does real work.
  const Network net = randgen::randomNetwork({.innerBlocks = 9, .seed = 99});
  const PartitionProblem problem(net, ProgBlockSpec{});
  ExhaustiveOptions serialOptions;
  serialOptions.threads = 1;
  const PartitionRun serial = exhaustiveSearch(problem, serialOptions);
  for (SearchScheduler scheduler : kBothSchedulers) {
    for (int threads : {2, 4, 8}) {
      ExhaustiveOptions parallelOptions;
      parallelOptions.threads = threads;
      parallelOptions.scheduler = scheduler;
      const PartitionRun parallel =
          exhaustiveSearch(problem, parallelOptions);
      expectIdenticalRuns(serial, parallel, 9,
                          std::string("unseeded @") +
                              std::to_string(threads) + ", " +
                              toString(scheduler));
    }
  }
}

TEST(ParallelExhaustive, SignalsModeMatches) {
  const Network net = randgen::randomNetwork({.innerBlocks = 9, .seed = 4});
  const PartitionProblem problem(
      net, ProgBlockSpec{.inputs = 2, .outputs = 2,
                         .mode = CountingMode::kSignals});
  ExhaustiveOptions serialOptions;
  serialOptions.threads = 1;
  const PartitionRun serial = exhaustiveSearch(problem, serialOptions);
  ExhaustiveOptions parallelOptions;
  parallelOptions.threads = 4;
  const PartitionRun parallel = exhaustiveSearch(problem, parallelOptions);
  expectIdenticalRuns(serial, parallel, 9, "signals mode");
}

TEST(ParallelExhaustive, TightTimeLimitStillReturnsVerifiedResult) {
  // The timeout path: workers must stop promptly, and whatever the
  // reduction assembles from the partial subtree results must verify.
  const Network net = randgen::randomNetwork({.innerBlocks = 26, .seed = 3});
  const PartitionProblem problem(net, ProgBlockSpec{});
  for (SearchScheduler scheduler : kBothSchedulers) {
    for (int threads : {2, 4, 8}) {
      ExhaustiveOptions options;
      options.threads = threads;
      options.scheduler = scheduler;
      options.timeLimitSeconds = 0.02;
      options.seed = pareDown(problem).result;
      const PartitionRun run = exhaustiveSearch(problem, options);
      EXPECT_TRUE(run.timedOut) << threads;
      EXPECT_FALSE(run.optimal) << threads;
      EXPECT_TRUE(verifyPartitioning(problem, run.result).empty())
          << threads;
      // With a feasible seed the timeout result is never worse than it.
      EXPECT_LE(run.result.totalAfter(26),
                options.seed->totalAfter(26))
          << threads;
    }
  }
}

TEST(ParallelExhaustive, DefaultThreadCountIsHardwareConcurrency) {
  EXPECT_GE(resolveSearchThreads(0), 1);
  EXPECT_EQ(resolveSearchThreads(1), 1);
  EXPECT_EQ(resolveSearchThreads(6), 6);
  // Default options (threads = 0) must produce the serial optimum too.
  const Network net = designs::figure5();
  const PartitionProblem problem(net, ProgBlockSpec{});
  const PartitionRun run = exhaustiveSearch(problem);
  EXPECT_TRUE(run.optimal);
  EXPECT_EQ(run.result.totalAfter(8), 3);
}

TEST(ParallelExhaustive, WorkStealingIsRepeatable) {
  // Which worker steals which subtree is racy; the result must not be.
  const Network net = randgen::randomNetwork({.innerBlocks = 10, .seed = 8});
  const PartitionProblem problem(net, ProgBlockSpec{});
  ExhaustiveOptions options;
  options.threads = 4;
  options.scheduler = SearchScheduler::kWorkStealing;
  const PartitionRun first = exhaustiveSearch(problem, options);
  ASSERT_TRUE(first.optimal);
  for (int rep = 0; rep < 3; ++rep) {
    const PartitionRun again = exhaustiveSearch(problem, options);
    ASSERT_TRUE(again.optimal);
    expectIdenticalRuns(first, again, 10,
                        "repeat " + std::to_string(rep));
  }
}

TEST(ParallelMultiType, MatchesSerialAcrossThreadCounts) {
  ProgCostModel model;
  model.preDefinedBlockCost = 1.0;
  model.options = {ProgBlockOption{"prog_2x2", 2, 2, 1.5},
                   ProgBlockOption{"prog_2x3", 2, 3, 2.0}};
  for (std::uint32_t seed = 1; seed <= 6; ++seed) {
    const Network net =
        randgen::randomNetwork({.innerBlocks = 8, .seed = seed});
    const int n = static_cast<int>(net.innerBlocks().size());
    MultiTypeExhaustiveOptions serialOptions;
    serialOptions.threads = 1;
    const TypedPartitionRun serial =
        multiTypeExhaustive(net, model, serialOptions);
    ASSERT_TRUE(serial.optimal) << "seed " << seed;
    for (SearchScheduler scheduler : kBothSchedulers) {
      for (int threads : {2, 4, 8}) {
        MultiTypeExhaustiveOptions parallelOptions;
        parallelOptions.threads = threads;
        parallelOptions.scheduler = scheduler;
        const TypedPartitionRun parallel =
            multiTypeExhaustive(net, model, parallelOptions);
        ASSERT_TRUE(parallel.optimal) << "seed " << seed;
        EXPECT_DOUBLE_EQ(serial.result.totalCost(n, model),
                         parallel.result.totalCost(n, model))
            << "seed " << seed << " @" << threads << " "
            << toString(scheduler);
        ASSERT_EQ(serial.result.partitions.size(),
                  parallel.result.partitions.size())
            << "seed " << seed << " @" << threads << " "
            << toString(scheduler);
        for (std::size_t i = 0; i < serial.result.partitions.size(); ++i) {
          EXPECT_EQ(serial.result.partitions[i].toVector(),
                    parallel.result.partitions[i].toVector());
          EXPECT_EQ(serial.result.optionIndex[i],
                    parallel.result.optionIndex[i]);
        }
        EXPECT_TRUE(
            verifyTypedPartitioning(net, model, parallel.result).empty());
      }
    }
  }
}

}  // namespace
}  // namespace eblocks::partition
