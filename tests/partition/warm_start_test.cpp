// Warm-start coupling: a heuristic incumbent seeds the exact searches'
// shared atomic incumbent.  Contract: the returned optimum is
// bit-identical to the unseeded search's at every thread count, and the
// seeded search explores fewer (or equal) nodes -- the heuristic as a
// pruning accelerator.  Also covers ExhaustiveOptions::nodeBudget, the
// LNS repair oracle's leash.
#include <gtest/gtest.h>

#include "designs/library.h"
#include "partition/engine.h"
#include "partition/exhaustive.h"
#include "partition/fm_refine.h"
#include "partition/greedy_seed.h"
#include "partition/multitype.h"
#include "partition/verify.h"
#include "randgen/generator.h"

namespace eblocks::partition {
namespace {

Partitioning fmSolution(const PartitionProblem& problem) {
  return fmRefine(problem, greedySeed(problem).result).result;
}

void expectSamePartitions(const Partitioning& a, const Partitioning& b) {
  ASSERT_EQ(a.partitions.size(), b.partitions.size());
  for (std::size_t i = 0; i < a.partitions.size(); ++i)
    EXPECT_EQ(a.partitions[i].toVector(), b.partitions[i].toVector());
}

TEST(WarmStart, BitIdenticalOptimumAcrossThreadCounts) {
  int tested = 0;
  for (const auto& entry : designs::designLibrary()) {
    if (entry.innerBlocks < 8 || entry.innerBlocks > 16) continue;
    const PartitionProblem problem(entry.network, ProgBlockSpec{});

    ExhaustiveOptions cold;
    cold.threads = 1;
    const PartitionRun baseline = exhaustiveSearch(problem, cold);
    ASSERT_TRUE(baseline.optimal) << entry.name;

    EngineOptions warm;
    warm.seedFromPareDown = false;
    warm.initialIncumbent = fmSolution(problem);
    for (const int threads : {1, 2, 4}) {
      warm.threads = threads;
      const PartitionRun run =
          runPartitioner("exhaustive", problem, warm);
      EXPECT_TRUE(run.optimal) << entry.name << " threads=" << threads;
      expectSamePartitions(run.result, baseline.result);
    }
    if (++tested == 2) break;  // two Table-1 rows keep the test quick
  }
  EXPECT_EQ(tested, 2);
}

TEST(WarmStart, ExploresFewerOrEqualNodesSerially) {
  // Contract half: on every tractable Table-1 row the seeded search is
  // bit-identical and never explores more.  (On these sparse rows the
  // DFS's join-first child order reaches the optimum on its very first
  // dive, so the counts are typically *equal* -- the seed cannot beat an
  // incumbent that is already optimal after one descent.)
  for (const auto& entry : designs::designLibrary()) {
    if (entry.innerBlocks > 16) continue;
    const PartitionProblem problem(entry.network, ProgBlockSpec{});

    ExhaustiveOptions cold;
    cold.threads = 1;
    const PartitionRun unseeded = exhaustiveSearch(problem, cold);

    ExhaustiveOptions warm = cold;
    warm.seed = fmSolution(problem);
    const PartitionRun seeded = exhaustiveSearch(problem, warm);

    expectSamePartitions(seeded.result, unseeded.result);
    EXPECT_LE(seeded.explored, unseeded.explored) << entry.name;
  }

  // Measured half: on dense random designs the first dive is not
  // optimal, the unseeded incumbent converges gradually, and the warm
  // bound prunes nodes the cold search pays for.
  int strictlyFewer = 0;
  for (const int inner : {12, 14, 16}) {
    for (const std::uint32_t seed : {1u, 2u, 3u}) {
      const Network net = randgen::randomNetwork(
          randgen::GeneratorOptions::largeNetwork(inner, seed));
      const PartitionProblem problem(net, ProgBlockSpec{});

      ExhaustiveOptions cold;
      cold.threads = 1;
      const PartitionRun unseeded = exhaustiveSearch(problem, cold);

      ExhaustiveOptions warm = cold;
      warm.seed = fmSolution(problem);
      const PartitionRun seeded = exhaustiveSearch(problem, warm);

      expectSamePartitions(seeded.result, unseeded.result);
      EXPECT_LE(seeded.explored, unseeded.explored)
          << "inner=" << inner << " seed=" << seed;
      if (seeded.explored < unseeded.explored) ++strictlyFewer;
    }
  }
  // The acceptance bar: a measured reduction on at least two designs.
  EXPECT_GE(strictlyFewer, 2);
}

TEST(WarmStart, EngineSeedsWithTheCheaperOfPareDownAndIncumbent) {
  const Network net = designs::byName("Noise At Night Detector");
  const PartitionProblem problem(net, ProgBlockSpec{});

  // A deliberately lousy incumbent (one pair) must not displace the
  // PareDown seed: explored counts match the PareDown-seeded search.
  EngineOptions engine;
  engine.threads = 1;
  const PartitionRun pareDownSeeded =
      runPartitioner("exhaustive", problem, engine);

  Partitioning lousy;
  const PartitionRun greedy = greedySeed(problem);
  lousy.partitions.push_back(greedy.result.partitions.front());
  EngineOptions withLousy = engine;
  withLousy.initialIncumbent = lousy;
  const PartitionRun run =
      runPartitioner("exhaustive", problem, withLousy);
  EXPECT_EQ(run.explored, pareDownSeeded.explored);
  expectSamePartitions(run.result, pareDownSeeded.result);
}

// Regression: a seed whose partitions overlap double-counts
// coveredBlocks(), so its totalAfter() understates the true cost; a
// trusted overlapping seed would over-tighten the bound, prune the real
// optimum, and be returned as "optimal".  The verify block must reject
// it outright -- the search then matches the unseeded baseline exactly.
TEST(WarmStart, OverlappingSeedIsRejected) {
  const Network net = designs::byName("Noise At Night Detector");
  const PartitionProblem problem(net, ProgBlockSpec{});

  ExhaustiveOptions cold;
  cold.threads = 1;
  const PartitionRun baseline = exhaustiveSearch(problem, cold);

  // Copies of one valid partition: each passes isValidPartition on its
  // own, together they cover the same blocks repeatedly.  Stack enough
  // that the double-counted cost undercuts the true optimum -- a trusted
  // seed would then prune every real solution and be returned verbatim.
  const PartitionRun greedy = greedySeed(problem);
  ASSERT_FALSE(greedy.result.partitions.empty());
  const int n = problem.innerCount();
  Partitioning overlapping;
  do {
    overlapping.partitions.push_back(greedy.result.partitions.front());
  } while (overlapping.totalAfter(n) >= baseline.result.totalAfter(n));

  ExhaustiveOptions warm = cold;
  warm.seed = overlapping;
  const PartitionRun run = exhaustiveSearch(problem, warm);
  EXPECT_TRUE(verifyPartitioning(problem, run.result).empty());
  EXPECT_TRUE(run.optimal);
  EXPECT_EQ(run.explored, baseline.explored);
  expectSamePartitions(run.result, baseline.result);
}

TEST(WarmStart, TypedIncumbentKeepsOptimumAndPrunes) {
  const ProgCostModel model = ProgCostModel::paperDefault();
  const Network net = designs::byName("Noise At Night Detector");
  const int n = static_cast<int>(net.innerBlocks().size());

  EngineOptions cold;
  cold.threads = 1;
  cold.seedFromPareDown = false;
  const TypedPartitionRun baseline =
      runTypedPartitioner("exhaustive", net, model, cold);
  ASSERT_TRUE(baseline.optimal);

  EngineOptions warm = cold;
  warm.initialTypedIncumbent =
      multiTypeFmRefine(net, model,
                        multiTypePareDown(net, model).result)
          .result;
  const TypedPartitionRun seeded =
      runTypedPartitioner("exhaustive", net, model, warm);
  EXPECT_TRUE(seeded.optimal);
  EXPECT_EQ(seeded.result.totalCost(n, model),
            baseline.result.totalCost(n, model));
  EXPECT_LE(seeded.explored, baseline.explored);
}

TEST(NodeBudget, ClipsTheSearchDeterministically) {
  const Network net = randgen::randomNetwork(
      randgen::GeneratorOptions::largeNetwork(40, 11));
  const PartitionProblem problem(net, ProgBlockSpec{});

  ExhaustiveOptions clipped;
  clipped.threads = 1;
  clipped.nodeBudget = 20000;
  const PartitionRun a = exhaustiveSearch(problem, clipped);
  EXPECT_TRUE(a.timedOut);
  EXPECT_FALSE(a.optimal);
  // The budget is checked every 4096 nodes, so the overshoot is bounded
  // by one granule.
  EXPECT_LE(a.explored, clipped.nodeBudget + 0x1000);
  EXPECT_TRUE(verifyPartitioning(problem, a.result).empty());

  // Serial runs abort at a machine-independent node: bit-repeatable.
  const PartitionRun b = exhaustiveSearch(problem, clipped);
  EXPECT_EQ(a.explored, b.explored);
  expectSamePartitions(a.result, b.result);
}

TEST(NodeBudget, ZeroMeansUnlimited) {
  const Network net = designs::figure5();
  const PartitionProblem problem(net, ProgBlockSpec{});
  ExhaustiveOptions options;
  options.threads = 1;
  options.nodeBudget = 0;
  const PartitionRun run = exhaustiveSearch(problem, options);
  EXPECT_TRUE(run.optimal);
  EXPECT_FALSE(run.timedOut);
}

}  // namespace
}  // namespace eblocks::partition
