#include "partition/aggregation.h"

#include <gtest/gtest.h>

#include "blocks/catalog.h"
#include "designs/library.h"
#include "partition/exhaustive.h"
#include "partition/paredown.h"
#include "partition/verify.h"
#include "randgen/generator.h"

namespace eblocks::partition {
namespace {

using blocks::defaultCatalog;

TEST(Aggregation, ChainMerges) {
  const auto& cat = defaultCatalog();
  Network net;
  const BlockId s = net.addBlock("s", cat.button());
  const BlockId a = net.addBlock("a", cat.inverter());
  const BlockId b = net.addBlock("b", cat.toggle());
  const BlockId o = net.addBlock("o", cat.led());
  net.connect(s, 0, a, 0);
  net.connect(a, 0, b, 0);
  net.connect(b, 0, o, 0);
  const PartitionProblem problem(net, ProgBlockSpec{});
  const PartitionRun run = aggregation(problem);
  EXPECT_EQ(run.result.totalAfter(2), 1);
}

TEST(Aggregation, ResultAlwaysVerifies) {
  for (std::uint32_t seed = 1; seed <= 10; ++seed) {
    const randgen::GeneratorOptions gen{.innerBlocks = 20, .seed = seed};
    const Network net = randgen::randomNetwork(gen);
    const PartitionProblem problem(net, ProgBlockSpec{});
    const PartitionRun run = aggregation(problem);
    const auto violations = verifyPartitioning(problem, run.result);
    EXPECT_TRUE(violations.empty()) << "seed " << seed << ": "
                                    << violations.front();
  }
}

TEST(Aggregation, NeverBetterThanExhaustive) {
  for (std::uint32_t seed = 1; seed <= 6; ++seed) {
    const randgen::GeneratorOptions gen{.innerBlocks = 8, .seed = seed};
    const Network net = randgen::randomNetwork(gen);
    const PartitionProblem problem(net, ProgBlockSpec{});
    const int n = problem.innerCount();
    EXPECT_GE(aggregation(problem).result.totalAfter(n),
              exhaustiveSearch(problem).result.totalAfter(n));
  }
}

TEST(Aggregation, LacksConvergenceLookahead) {
  // The diamond from Figure 5's first partition: 2 -> {4,5}, 4 -> 3,
  // 3 and 5 converge downstream.  PareDown's decomposition sees the
  // convergence; aggregation grows greedily from the input side and on
  // this full design ends with a worse (or equal) total -- across the
  // design library it must never beat PareDown on the Figure-5 graph.
  const Network net = designs::figure5();
  const PartitionProblem problem(net, ProgBlockSpec{});
  const PartitionRun agg = aggregation(problem);
  const PartitionRun pd = pareDown(problem);
  EXPECT_GE(agg.result.totalAfter(8), pd.result.totalAfter(8));
}

TEST(Aggregation, OrChainFindsNothing) {
  const Network net = designs::byName("Motion on Property Alert");
  const PartitionProblem problem(net, ProgBlockSpec{});
  const PartitionRun run = aggregation(problem);
  EXPECT_TRUE(run.result.partitions.empty());
}

}  // namespace
}  // namespace eblocks::partition
