// The CSR view must be a faithful, complete mirror of the Network it was
// built from: same adjacency in the same order, same degrees, same inner
// universe, and a dense endpoint index that maps distinct source
// endpoints to distinct in-range ids.  Cross-checked on the paper
// designs and 25+ seeded random networks -- the same oracle style the
// PortCounter suites use, so a CSR bug cannot hide behind a matching
// bug in the kernel.
#include "partition/compact_graph.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "designs/library.h"
#include "randgen/generator.h"

namespace eblocks::partition {
namespace {

void expectMirrorsNetwork(const Network& net) {
  const CompactGraph graph(net);
  ASSERT_EQ(graph.blockCount(), net.blockCount()) << net.name();

  // Adjacency: same neighbors in the same order as
  // Network::inputsOf/outputsOf, with each arc's endpoint id equal to
  // the id of the connection's source endpoint.
  for (BlockId b = 0; b < net.blockCount(); ++b) {
    const auto ins = net.inputsOf(b);
    const auto inArcs = graph.inArcs(b);
    ASSERT_EQ(inArcs.size(), ins.size()) << net.name() << " block " << b;
    for (std::size_t i = 0; i < ins.size(); ++i) {
      EXPECT_EQ(inArcs[i].neighbor, ins[i].from.block);
      EXPECT_EQ(inArcs[i].endpoint, graph.endpointId(ins[i].from));
    }
    const auto outs = net.outputsOf(b);
    const auto outArcs = graph.outArcs(b);
    ASSERT_EQ(outArcs.size(), outs.size()) << net.name() << " block " << b;
    for (std::size_t i = 0; i < outs.size(); ++i) {
      EXPECT_EQ(outArcs[i].neighbor, outs[i].to.block);
      EXPECT_EQ(outArcs[i].endpoint, graph.endpointId(outs[i].from));
    }
    EXPECT_EQ(graph.indegree(b), net.indegree(b));
    EXPECT_EQ(graph.outdegree(b), net.outdegree(b));
  }

  // Inner universe: innerBlocks() identical to the Network's, the dense
  // index is its inverse, and nonInnerSet() is its complement.
  EXPECT_EQ(graph.innerBlocks(), net.innerBlocks()) << net.name();
  EXPECT_EQ(graph.innerCount(), net.innerBlocks().size());
  for (BlockId b = 0; b < net.blockCount(); ++b) {
    EXPECT_EQ(graph.isInner(b), net.isInner(b)) << net.name() << " " << b;
    EXPECT_EQ(graph.nonInnerSet().test(b), !net.isInner(b));
    if (net.isInner(b)) {
      const std::int32_t idx = graph.innerIndex(b);
      ASSERT_GE(idx, 0);
      ASSERT_LT(static_cast<std::size_t>(idx), graph.innerCount());
      EXPECT_EQ(graph.innerBlocks()[static_cast<std::size_t>(idx)], b);
    } else {
      EXPECT_EQ(graph.innerIndex(b), -1);
    }
  }

  // Endpoint index: every connection's source endpoint maps to an
  // in-range id, distinct endpoints map to distinct ids, and identical
  // endpoints always map to the same id.
  std::set<std::pair<std::uint64_t, std::uint32_t>> seen;
  for (const Connection& c : net.connections()) {
    const std::uint32_t id = graph.endpointId(c.from);
    ASSERT_LT(id, graph.endpointCount());
    seen.insert({(static_cast<std::uint64_t>(c.from.block) << 16) |
                     c.from.port,
                 id});
  }
  std::set<std::uint32_t> ids;
  for (const auto& [endpoint, id] : seen) ids.insert(id);
  EXPECT_EQ(ids.size(), seen.size())
      << net.name() << ": endpoint ids not distinct";
}

TEST(CompactGraph, MirrorsPaperDesigns) {
  expectMirrorsNetwork(designs::figure5());
  for (const auto& entry : designs::designLibrary())
    expectMirrorsNetwork(entry.network);
}

TEST(CompactGraph, MirrorsRandomDesigns) {
  // 25 seeded random designs across a spread of sizes, as the issue's
  // acceptance criteria require -- the same generator the equivalence
  // suites draw from.
  for (std::uint32_t seed = 1; seed <= 25; ++seed) {
    const int inner = 6 + static_cast<int>(seed % 17) * 3;
    expectMirrorsNetwork(randgen::randomNetwork(
        {.innerBlocks = inner, .seed = seed}));
  }
}

TEST(CompactGraph, EndpointUniverseCoversAllOutputPorts) {
  // The dense universe is exactly one id per (block, output port), so
  // refcount arrays sized endpointCount() can never be indexed out of
  // range by a connection's source endpoint.
  const Network net = randgen::randomNetwork({.innerBlocks = 20, .seed = 9});
  const CompactGraph graph(net);
  std::size_t totalOutputPorts = 0;
  for (BlockId b = 0; b < net.blockCount(); ++b)
    totalOutputPorts +=
        static_cast<std::size_t>(net.block(b).type->outputCount());
  EXPECT_EQ(graph.endpointCount(), totalOutputPorts);
}

}  // namespace
}  // namespace eblocks::partition
