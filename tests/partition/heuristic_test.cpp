// The heuristic partitioner family: greedy seed, FM refinement, LNS.
// Validity in both counting modes, determinism, monotone improvement
// along the greedy -> fm -> lns chain, optimality gap against the exact
// branch-and-bound, and tractability on networks the exact search
// cannot touch.
#include <gtest/gtest.h>

#include "designs/library.h"
#include "partition/engine.h"
#include "partition/exhaustive.h"
#include "partition/fm_refine.h"
#include "partition/greedy_seed.h"
#include "partition/lns.h"
#include "partition/multitype.h"
#include "partition/verify.h"
#include "randgen/generator.h"

namespace eblocks::partition {
namespace {

ProgBlockSpec specFor(CountingMode mode) {
  ProgBlockSpec spec;
  spec.mode = mode;
  return spec;
}

/// Exact optimum (serial, so cheap designs stay cheap to verify).
int exactTotalAfter(const PartitionProblem& problem) {
  ExhaustiveOptions options;
  options.threads = 1;
  const PartitionRun run = exhaustiveSearch(problem, options);
  EXPECT_TRUE(run.optimal);
  return run.result.totalAfter(problem.innerCount());
}

TEST(Heuristics, GreedySeedValidOnLibraryBothModes) {
  for (const auto& entry : designs::designLibrary()) {
    for (const CountingMode mode :
         {CountingMode::kEdges, CountingMode::kSignals}) {
      const PartitionProblem problem(entry.network, specFor(mode));
      const PartitionRun run = greedySeed(problem);
      EXPECT_EQ(run.algorithm, "greedy");
      EXPECT_TRUE(verifyPartitioning(problem, run.result).empty())
          << entry.name << " mode=" << static_cast<int>(mode);
    }
  }
}

TEST(Heuristics, FmValidAndNeverWorseThanSeed) {
  for (const auto& entry : designs::designLibrary()) {
    for (const CountingMode mode :
         {CountingMode::kEdges, CountingMode::kSignals}) {
      const PartitionProblem problem(entry.network, specFor(mode));
      const PartitionRun seed = greedySeed(problem);
      const PartitionRun fm = fmRefine(problem, seed.result);
      EXPECT_TRUE(verifyPartitioning(problem, fm.result).empty())
          << entry.name;
      EXPECT_LE(fm.result.totalAfter(problem.innerCount()),
                seed.result.totalAfter(problem.innerCount()))
          << entry.name;
    }
  }
}

TEST(Heuristics, FmIsDeterministic) {
  const Network net = designs::byName("Timed Passage");
  const PartitionProblem problem(net, ProgBlockSpec{});
  const EngineOptions options;
  const PartitionRun a = runPartitioner("fm", problem, options);
  const PartitionRun b = runPartitioner("fm", problem, options);
  EXPECT_EQ(a.explored, b.explored);
  ASSERT_EQ(a.result.partitions.size(), b.result.partitions.size());
  for (std::size_t i = 0; i < a.result.partitions.size(); ++i)
    EXPECT_EQ(a.result.partitions[i].toVector(),
              b.result.partitions[i].toVector());
}

// The pinned optimality gap: on every Table-1 design small enough to
// solve exactly in a blink, fm lands within one programmable block of
// the optimum, and lns with a full-design pocket (one round = a seeded
// exact search) matches it bit-for-cost.
TEST(Heuristics, OptimalityGapOnTable1) {
  for (const auto& entry : designs::designLibrary()) {
    if (entry.innerBlocks > 14) continue;  // exact stays sub-second
    const PartitionProblem problem(entry.network, ProgBlockSpec{});
    const int optimum = exactTotalAfter(problem);

    const PartitionRun seed = greedySeed(problem);
    const PartitionRun fm = fmRefine(problem, seed.result);
    EXPECT_LE(fm.result.totalAfter(problem.innerCount()), optimum + 1)
        << entry.name;

    LnsOptions lns;
    lns.pocketSize = problem.innerCount();
    lns.maxRounds = 4;
    lns.repairNodeBudget = 0;  // generous: uncapped repair
    lns.timeLimitSeconds = 0;
    const PartitionRun anytime = lnsSearch(problem, fm.result, lns);
    EXPECT_TRUE(verifyPartitioning(problem, anytime.result).empty())
        << entry.name;
    EXPECT_TRUE(anytime.optimal) << entry.name;
    EXPECT_EQ(anytime.result.totalAfter(problem.innerCount()), optimum)
        << entry.name;
  }
}

// The same gap contract over 25 random small designs, in both modes.
TEST(Heuristics, OptimalityGapOnRandomDesigns) {
  for (int i = 0; i < 25; ++i) {
    randgen::GeneratorOptions gen;
    gen.innerBlocks = 6 + i % 7;  // 6..12
    gen.seed = 1000 + static_cast<std::uint32_t>(i);
    const Network net = randgen::randomNetwork(gen);
    const CountingMode mode =
        i % 2 == 0 ? CountingMode::kEdges : CountingMode::kSignals;
    const PartitionProblem problem(net, specFor(mode));
    const int optimum = exactTotalAfter(problem);

    const PartitionRun seed = greedySeed(problem);
    const PartitionRun fm = fmRefine(problem, seed.result);
    EXPECT_TRUE(verifyPartitioning(problem, fm.result).empty()) << i;
    // Random designs are adversarial for a pass-based refiner; the pin
    // is one block looser than the Table-1 rows'.
    EXPECT_LE(fm.result.totalAfter(problem.innerCount()), optimum + 2) << i;

    LnsOptions lns;
    lns.pocketSize = problem.innerCount();
    lns.maxRounds = 4;
    lns.repairNodeBudget = 0;
    lns.timeLimitSeconds = 0;
    const PartitionRun anytime = lnsSearch(problem, fm.result, lns);
    EXPECT_EQ(anytime.result.totalAfter(problem.innerCount()), optimum) << i;
  }
}

TEST(Heuristics, LnsNeverWorseThanItsInput) {
  for (const auto& entry : designs::designLibrary()) {
    const PartitionProblem problem(entry.network, ProgBlockSpec{});
    const PartitionRun seed = greedySeed(problem);
    const PartitionRun fm = fmRefine(problem, seed.result);
    LnsOptions options;
    options.maxRounds = 8;
    options.timeLimitSeconds = 0;
    options.rngSeed = 7;
    const PartitionRun lns = lnsSearch(problem, fm.result, options);
    EXPECT_TRUE(verifyPartitioning(problem, lns.result).empty())
        << entry.name;
    EXPECT_LE(lns.result.totalAfter(problem.innerCount()),
              fm.result.totalAfter(problem.innerCount()))
        << entry.name;
  }
}

// The tentpole's reason to exist: a network an order of magnitude past
// the exact search's ceiling is partitioned to a valid solution by fm in
// interactive time, and lns keeps improving it under a bounded budget.
TEST(Heuristics, LargeNetworkIsTractable) {
  const Network net =
      randgen::randomNetwork(randgen::GeneratorOptions::largeNetwork(120, 3));
  ASSERT_GE(net.innerBlocks().size(), 100u);
  for (const CountingMode mode :
       {CountingMode::kEdges, CountingMode::kSignals}) {
    const PartitionProblem problem(net, specFor(mode));
    const PartitionRun seed = greedySeed(problem);
    const PartitionRun fm = fmRefine(problem, seed.result);
    EXPECT_TRUE(verifyPartitioning(problem, fm.result).empty());
    EXPECT_LE(fm.result.totalAfter(problem.innerCount()),
              seed.result.totalAfter(problem.innerCount()));

    LnsOptions options;
    options.maxRounds = 40;
    options.timeLimitSeconds = 30;
    options.repairNodeBudget = 50000;
    const PartitionRun lns = lnsSearch(problem, fm.result, options);
    EXPECT_TRUE(verifyPartitioning(problem, lns.result).empty());
    EXPECT_LE(lns.result.totalAfter(problem.innerCount()),
              fm.result.totalAfter(problem.innerCount()));
  }
}

TEST(Heuristics, TypedFmRefinesUnderTheCostModel) {
  const ProgCostModel model = ProgCostModel::paperDefault();
  for (const auto& entry : designs::designLibrary()) {
    const TypedPartitionRun seed =
        multiTypePareDown(entry.network, model);
    const TypedPartitionRun fm =
        multiTypeFmRefine(entry.network, model, seed.result);
    EXPECT_TRUE(verifyTypedPartitioning(entry.network, model, fm.result)
                    .empty())
        << entry.name;
    const int n = static_cast<int>(entry.network.innerBlocks().size());
    EXPECT_LE(fm.result.totalCost(n, model), seed.result.totalCost(n, model))
        << entry.name;
  }
}

// Regression: bestMove() must not cost a probed bin that failed its
// feasibility check -- under the typed model a bin no option fits has no
// cheapest option to cost (empty-optional dereference).  Dense random
// networks under the paper's single tight 2x2 option make infeasible
// probes routine, so any slip here trips the sanitizer jobs.
TEST(Heuristics, TypedFmSurvivesRoutineInfeasibleProbes) {
  const ProgCostModel model = ProgCostModel::paperDefault();
  for (const std::uint32_t seed : {21u, 22u, 23u}) {
    const Network net = randgen::randomNetwork(
        randgen::GeneratorOptions::largeNetwork(40, seed));
    const TypedPartitionRun seeded = multiTypePareDown(net, model);
    const TypedPartitionRun fm =
        multiTypeFmRefine(net, model, seeded.result);
    EXPECT_TRUE(verifyTypedPartitioning(net, model, fm.result).empty())
        << "seed=" << seed;
    const int n = static_cast<int>(net.innerBlocks().size());
    EXPECT_LE(fm.result.totalCost(n, model),
              seeded.result.totalCost(n, model))
        << "seed=" << seed;
  }
}

// Regression: if the wall-clock deadline lapses between the round-start
// check and the repair launch, the repair must not inherit a
// non-positive time limit ("no limit") -- with an uncapped node budget
// and a full-design pocket that repair would run an unbounded exact
// search.  The tiny budget makes the lapse routine; the run must still
// come back promptly, flagged timed-out.
TEST(Heuristics, LnsHonorsDeadlineLapsingMidRound) {
  const Network net =
      randgen::randomNetwork(randgen::GeneratorOptions::largeNetwork(120, 3));
  const PartitionProblem problem(net, ProgBlockSpec{});
  const PartitionRun seed = greedySeed(problem);
  LnsOptions options;
  options.maxRounds = 0;                      // only the clock stops it
  options.stallRounds = 0;
  options.pocketSize = problem.innerCount();  // full-design pocket
  options.repairNodeBudget = 0;               // uncapped repair
  options.timeLimitSeconds = 1e-4;
  const PartitionRun run = lnsSearch(problem, seed.result, options);
  EXPECT_TRUE(run.timedOut);
  EXPECT_LE(run.seconds, 5.0);
  EXPECT_TRUE(verifyPartitioning(problem, run.result).empty());
}

TEST(Heuristics, TypedFmWithinGapOfTypedExhaustive) {
  const ProgCostModel model = ProgCostModel::paperDefault();
  for (const auto& entry : designs::designLibrary()) {
    if (entry.innerBlocks > 12) continue;
    MultiTypeExhaustiveOptions exact;
    exact.threads = 1;
    const TypedPartitionRun optimum =
        multiTypeExhaustive(entry.network, model, exact);
    ASSERT_TRUE(optimum.optimal) << entry.name;
    const TypedPartitionRun fm = runTypedPartitioner("fm", entry.network,
                                                     model);
    const int n = static_cast<int>(entry.network.innerBlocks().size());
    // Gap pinned at one programmable-block upgrade's worth of cost.
    EXPECT_LE(fm.result.totalCost(n, model),
              optimum.result.totalCost(n, model) + model.preDefinedBlockCost)
        << entry.name;
    EXPECT_GE(fm.result.totalCost(n, model),
              optimum.result.totalCost(n, model) - 1e-9)
        << entry.name;
  }
}

TEST(Heuristics, EngineStrategiesChainAndReport) {
  const Network net = designs::byName("Noise At Night Detector");
  const PartitionProblem problem(net, ProgBlockSpec{});
  const PartitionRun greedy = runPartitioner("greedy", problem);
  const PartitionRun fm = runPartitioner("fm", problem);
  EngineOptions lnsOptions;
  lnsOptions.lnsRounds = 8;
  const PartitionRun lns = runPartitioner("lns", problem, lnsOptions);
  EXPECT_EQ(greedy.algorithm, "greedy");
  EXPECT_EQ(fm.algorithm, "fm");
  EXPECT_EQ(lns.algorithm, "lns");
  const int n = problem.innerCount();
  EXPECT_LE(fm.result.totalAfter(n), greedy.result.totalAfter(n));
  EXPECT_LE(lns.result.totalAfter(n), fm.result.totalAfter(n));
}

}  // namespace
}  // namespace eblocks::partition
