// Property-based tests over randomly generated networks: invariants that
// must hold for every algorithm on every design.
#include <gtest/gtest.h>

#include "core/subgraph.h"
#include "partition/aggregation.h"
#include "partition/exhaustive.h"
#include "partition/paredown.h"
#include "partition/verify.h"
#include "randgen/generator.h"

namespace eblocks::partition {
namespace {

struct PropertyCase {
  int innerBlocks;
  std::uint32_t seed;
};

class PartitionProperties : public ::testing::TestWithParam<PropertyCase> {
 protected:
  PartitionProperties()
      : net(randgen::randomNetwork(randgen::GeneratorOptions{
            .innerBlocks = GetParam().innerBlocks,
            .seed = GetParam().seed})),
        problem(net, ProgBlockSpec{}) {}

  Network net;
  PartitionProblem problem;
};

TEST_P(PartitionProperties, GeneratedNetworksAreWellFormed) {
  const auto problems = net.validate();
  EXPECT_TRUE(problems.empty()) << problems.front();
  EXPECT_TRUE(net.isAcyclic());
}

TEST_P(PartitionProperties, PareDownVerifies) {
  const PartitionRun run = pareDown(problem);
  const auto violations = verifyPartitioning(problem, run.result);
  EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST_P(PartitionProperties, BorderRemovalPreservesConvexity) {
  // The lemma behind PareDown's first round: the full inner set is convex
  // (paths between inner blocks run through inner blocks only), and
  // removing a border block keeps a convex candidate convex.  Later rounds
  // start from punctured leftovers and may legitimately go non-convex,
  // which the packet protocol tolerates (validity.h); behavioral safety of
  // those partitions is covered by the synthesis equivalence fuzz tests.
  BitSet candidate = net.innerSet();
  if (candidate.none()) return;
  ASSERT_TRUE(isConvex(net, candidate));
  while (candidate.count() > 1) {
    const auto border = borderBlocks(net, candidate);
    ASSERT_FALSE(border.empty());
    candidate.reset(border.front());
    EXPECT_TRUE(isConvex(net, candidate));
  }
}

TEST_P(PartitionProperties, AggregationVerifies) {
  const PartitionRun run = aggregation(problem);
  const auto violations = verifyPartitioning(problem, run.result);
  EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST_P(PartitionProperties, CostAccountingConsistent) {
  const PartitionRun run = pareDown(problem);
  const int n = problem.innerCount();
  int covered = 0;
  for (const BitSet& p : run.result.partitions)
    covered += static_cast<int>(p.count());
  EXPECT_EQ(run.result.coveredBlocks(), covered);
  EXPECT_EQ(run.result.totalAfter(n),
            n - covered + static_cast<int>(run.result.partitions.size()));
  EXPECT_LE(run.result.totalAfter(n), n);  // never worse than doing nothing
}

TEST_P(PartitionProperties, EveryPartitionShrinksTheNetwork) {
  // Each partition has >= 2 members, so each replacement strictly reduces
  // the inner-block count.
  const PartitionRun run = pareDown(problem);
  for (const BitSet& p : run.result.partitions) EXPECT_GE(p.count(), 2u);
}

INSTANTIATE_TEST_SUITE_P(
    RandomDesigns, PartitionProperties,
    ::testing::Values(PropertyCase{3, 11}, PropertyCase{5, 12},
                      PropertyCase{8, 13}, PropertyCase{12, 14},
                      PropertyCase{17, 15}, PropertyCase{24, 16},
                      PropertyCase{33, 17}, PropertyCase{45, 18},
                      PropertyCase{60, 19}, PropertyCase{10, 20},
                      PropertyCase{10, 21}, PropertyCase{10, 22}),
    [](const auto& paramInfo) {
      return "n" + std::to_string(paramInfo.param.innerBlocks) + "_s" +
             std::to_string(paramInfo.param.seed);
    });

class ExhaustiveProperties : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(ExhaustiveProperties, OptimalAtLeastAsGoodAsBothHeuristics) {
  const Network net = randgen::randomNetwork(randgen::GeneratorOptions{
      .innerBlocks = GetParam().innerBlocks, .seed = GetParam().seed});
  const PartitionProblem problem(net, ProgBlockSpec{});
  const int n = problem.innerCount();
  const PartitionRun exact = exhaustiveSearch(problem);
  ASSERT_TRUE(exact.optimal);
  EXPECT_LE(exact.result.totalAfter(n), pareDown(problem).result.totalAfter(n));
  EXPECT_LE(exact.result.totalAfter(n),
            aggregation(problem).result.totalAfter(n));
}

INSTANTIATE_TEST_SUITE_P(
    SmallRandomDesigns, ExhaustiveProperties,
    ::testing::Values(PropertyCase{3, 31}, PropertyCase{4, 32},
                      PropertyCase{5, 33}, PropertyCase{6, 34},
                      PropertyCase{7, 35}, PropertyCase{8, 36},
                      PropertyCase{9, 37}, PropertyCase{10, 38}),
    [](const auto& paramInfo) {
      return "n" + std::to_string(paramInfo.param.innerBlocks) + "_s" +
             std::to_string(paramInfo.param.seed);
    });

}  // namespace
}  // namespace eblocks::partition
