#include "partition/paredown.h"

#include <gtest/gtest.h>

#include "blocks/catalog.h"
#include "designs/library.h"
#include "partition/verify.h"
#include "randgen/generator.h"

namespace eblocks::partition {
namespace {

using blocks::defaultCatalog;

TEST(PareDown, SimpleChainBecomesOnePartition) {
  // s -> a -> b -> o: {a,b} has 1 input and 1 output.
  const auto& cat = defaultCatalog();
  Network net;
  const BlockId s = net.addBlock("s", cat.button());
  const BlockId a = net.addBlock("a", cat.inverter());
  const BlockId b = net.addBlock("b", cat.toggle());
  const BlockId o = net.addBlock("o", cat.led());
  net.connect(s, 0, a, 0);
  net.connect(a, 0, b, 0);
  net.connect(b, 0, o, 0);
  const PartitionProblem problem(net, ProgBlockSpec{});
  const PartitionRun run = pareDown(problem);
  ASSERT_EQ(run.result.partitions.size(), 1u);
  EXPECT_EQ(run.result.partitions[0].count(), 2u);
  EXPECT_EQ(run.result.totalAfter(2), 1);
}

TEST(PareDown, OrChainIsPartitionProof) {
  // Doorbell-extender shape: no subset ever fits 2x2.
  const Network net = designs::byName("Doorbell Extender 1");
  const PartitionProblem problem(net, ProgBlockSpec{});
  const PartitionRun run = pareDown(problem);
  EXPECT_TRUE(run.result.partitions.empty());
  EXPECT_EQ(run.result.totalAfter(5), 5);
}

TEST(PareDown, EmptyNetworkYieldsNothing) {
  Network net;
  const PartitionProblem problem(net, ProgBlockSpec{});
  const PartitionRun run = pareDown(problem);
  EXPECT_TRUE(run.result.partitions.empty());
  EXPECT_EQ(run.result.totalAfter(0), 0);
}

TEST(PareDown, SingleInnerBlockNeverPartitioned) {
  const Network net = designs::garageOpenAtNight();  // 2 inner
  // Shrink the problem: 1x1 programmable block fits nothing here.
  const PartitionProblem problem(net, ProgBlockSpec{1, 1});
  const PartitionRun run = pareDown(problem);
  EXPECT_TRUE(run.result.partitions.empty());
}

TEST(PareDown, ResultAlwaysVerifies) {
  for (const auto& entry : designs::designLibrary()) {
    const PartitionProblem problem(entry.network, ProgBlockSpec{});
    const PartitionRun run = pareDown(problem);
    const auto violations = verifyPartitioning(problem, run.result);
    EXPECT_TRUE(violations.empty())
        << entry.name << ": " << violations.front();
  }
}

TEST(PareDown, MatchesPaperTable1Row11) {
  // Podium Timer 3: 8 -> total 3, prog 2.
  const Network net = designs::figure5();
  const PartitionProblem problem(net, ProgBlockSpec{});
  const PartitionRun run = pareDown(problem);
  EXPECT_EQ(run.result.totalAfter(8), 3);
  EXPECT_EQ(run.result.programmableBlocks(), 2);
}

TEST(PareDown, WiderBlockSwallowsWholeFigure5) {
  // With a 2-in/3-out programmable block the full inner set fits at once.
  const Network net = designs::figure5();
  const PartitionProblem problem(net, ProgBlockSpec{2, 3});
  const PartitionRun run = pareDown(problem);
  ASSERT_EQ(run.result.partitions.size(), 1u);
  EXPECT_EQ(run.result.partitions[0].count(), 8u);
  EXPECT_EQ(run.result.totalAfter(8), 1);
}

TEST(PareDown, DeterministicAcrossRuns) {
  const randgen::GeneratorOptions gen{.innerBlocks = 30, .seed = 77};
  const Network net = randgen::randomNetwork(gen);
  const PartitionProblem problem(net, ProgBlockSpec{});
  const PartitionRun a = pareDown(problem);
  const PartitionRun b = pareDown(problem);
  ASSERT_EQ(a.result.partitions.size(), b.result.partitions.size());
  for (std::size_t i = 0; i < a.result.partitions.size(); ++i)
    EXPECT_EQ(a.result.partitions[i].toVector(),
              b.result.partitions[i].toVector());
}

TEST(PareDown, WorstCaseQuadraticNotExponential) {
  // 60 independent 2-sensor gates: nothing merges; the explored counter
  // must stay O(n^2).
  const auto& cat = defaultCatalog();
  Network net;
  for (int i = 0; i < 60; ++i) {
    const std::string s = std::to_string(i);
    const BlockId a = net.addBlock("sa" + s, cat.button());
    const BlockId b = net.addBlock("sb" + s, cat.button());
    const BlockId g = net.addBlock("g" + s, cat.or2());
    const BlockId o = net.addBlock("o" + s, cat.led());
    net.connect(a, 0, g, 0);
    net.connect(b, 0, g, 1);
    net.connect(g, 0, o, 0);
  }
  const PartitionProblem problem(net, ProgBlockSpec{});
  const PartitionRun run = pareDown(problem);
  EXPECT_TRUE(run.result.partitions.empty());
  EXPECT_LE(run.explored, 60u * 61u / 2u + 60u);
}

TEST(PareDown, StrictFigure4AbandonsAfterDoomedRound) {
  // One three-input gate that fits nothing (2x2 budget, 3 sensor feeds)
  // followed by a perfectly mergeable chain.  The literal Figure-4
  // semantics abandon the chain once the gate's round pares to zero; the
  // robust default retires the gate and still finds the chain.
  const auto& cat = defaultCatalog();
  Network net;
  const BlockId s1 = net.addBlock("s1", cat.button());
  const BlockId s2 = net.addBlock("s2", cat.button());
  const BlockId s3 = net.addBlock("s3", cat.button());
  const BlockId g3 = net.addBlock("g3", cat.or3());
  const BlockId o1 = net.addBlock("o1", cat.led());
  net.connect(s1, 0, g3, 0);
  net.connect(s2, 0, g3, 1);
  net.connect(s3, 0, g3, 2);
  net.connect(g3, 0, o1, 0);
  const BlockId s4 = net.addBlock("s4", cat.button());
  const BlockId a = net.addBlock("a", cat.inverter());
  const BlockId b = net.addBlock("b", cat.toggle());
  const BlockId o2 = net.addBlock("o2", cat.led());
  net.connect(s4, 0, a, 0);
  net.connect(a, 0, b, 0);
  net.connect(b, 0, o2, 0);
  const PartitionProblem problem(net, ProgBlockSpec{});
  PareDownOptions strict;
  strict.strictFigure4 = true;
  const PartitionRun robust = pareDown(problem);
  const PartitionRun literal = pareDown(problem, strict);
  EXPECT_EQ(robust.result.partitions.size(), 1u);   // finds {a, b}
  EXPECT_LE(literal.result.partitions.size(), robust.result.partitions.size());
}

TEST(PareDown, TraceObserverSeesEveryDecision) {
  const Network net = designs::figure5();
  const PartitionProblem problem(net, ProgBlockSpec{});
  int calls = 0;
  PareDownOptions options;
  options.trace = [&](const PareDownStep&) { ++calls; };
  const PartitionRun run = pareDown(problem, options);
  EXPECT_EQ(calls, static_cast<int>(run.explored));
}

}  // namespace
}  // namespace eblocks::partition
