#include "sim/batch_equivalence.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "blocks/catalog.h"
#include "designs/library.h"
#include "randgen/generator.h"

namespace eblocks::sim {
namespace {

using blocks::defaultCatalog;

Network tripNet() {
  const auto& cat = defaultCatalog();
  Network net;
  const BlockId s = net.addBlock("s", cat.button());
  const BlockId g = net.addBlock("g", cat.trip());
  const BlockId o = net.addBlock("o", cat.led());
  net.connect(s, 0, g, 0);
  net.connect(g, 0, o, 0);
  return net;
}

Network toggleNet() {
  const auto& cat = defaultCatalog();
  Network net;
  const BlockId s = net.addBlock("s", cat.button());
  const BlockId g = net.addBlock("g", cat.toggle());
  const BlockId o = net.addBlock("o", cat.led());
  net.connect(s, 0, g, 0);
  net.connect(g, 0, o, 0);
  return net;
}

void expectSameVerdict(const std::optional<Mismatch>& batch,
                       const std::optional<Mismatch>& scalar) {
  ASSERT_EQ(batch.has_value(), scalar.has_value());
  if (!batch) return;
  EXPECT_EQ(batch->stepIndex, scalar->stepIndex);
  EXPECT_EQ(batch->output, scalar->output);
  EXPECT_EQ(batch->expected, scalar->expected);
  EXPECT_EQ(batch->actual, scalar->actual);
}

TEST(BatchEquivalence, CloneCorporaAgreeOnTable1Designs) {
  for (const designs::DesignEntry& entry : designs::designLibrary()) {
    const std::vector<Stimulus> scripts =
        randomStimulusCorpus(entry.network, 32, 15, 900);
    EXPECT_FALSE(
        batchCheckEquivalence(entry.network, entry.network, scripts)
            .has_value())
        << entry.name;
  }
}

// Acceptance: batch verdicts bit-identical to per-stimulus
// checkEquivalence on 25 random designs (clones, plus a mutated candidate
// below for the mismatch side).
TEST(BatchEquivalence, CloneCorporaAgreeOnRandomDesigns) {
  randgen::GeneratorOptions options;
  options.innerBlocks = 6;
  options.seed = 31;
  std::uint32_t seed = 4000;
  for (const Network& net : randgen::randomNetworkCorpus(25, options)) {
    const std::vector<Stimulus> scripts =
        randomStimulusCorpus(net, kLanes, 12, seed++);
    std::optional<Mismatch> scalar;
    for (const Stimulus& s : scripts)
      if ((scalar = checkEquivalence(net, net, s))) break;
    expectSameVerdict(batchCheckEquivalence(net, net, scripts), scalar);
  }
}

TEST(BatchEquivalence, MismatchFieldsMatchScalarChecker) {
  const Network a = tripNet();
  const Network b = toggleNet();
  // trip vs toggle diverge on the second press.
  std::vector<Stimulus> scripts;
  scripts.push_back(Stimulus{}.press("s"));  // both end up on: no mismatch
  scripts.push_back(Stimulus{}.press("s").press("s"));
  std::optional<Mismatch> scalar;
  for (const Stimulus& s : scripts)
    if ((scalar = checkEquivalence(a, b, s))) break;
  ASSERT_TRUE(scalar.has_value());
  expectSameVerdict(batchCheckEquivalence(a, b, scripts), scalar);
}

TEST(BatchEquivalence, ChunksBeyondKLanesKeepScriptOrder) {
  const Network a = tripNet();
  const Network b = toggleNet();
  std::vector<Stimulus> scripts;
  for (int i = 0; i < kLanes + 3; ++i)
    scripts.push_back(Stimulus{}.press("s"));  // benign in every lane
  scripts.push_back(Stimulus{}.press("s").press("s"));  // lane 3, chunk 2
  scripts.push_back(Stimulus{}.press("s").press("s"));  // later: must lose
  const auto batch = batchCheckEquivalence(a, b, scripts);
  const auto scalar =
      checkEquivalence(a, b, scripts[static_cast<std::size_t>(kLanes) + 3]);
  expectSameVerdict(batch, scalar);
}

TEST(BatchEquivalence, FuzzMatchesScalarFuzzRoundForRound) {
  const Network a = tripNet();
  const Network b = toggleNet();
  const auto scalar = fuzzEquivalence(a, b, 5, 30, 1234);
  ASSERT_TRUE(scalar.has_value());
  expectSameVerdict(batchFuzzEquivalence(a, b, 5, 30, 1234), scalar);
}

TEST(BatchEquivalence, DetailedFailureReproducesFromArtifact) {
  const Network a = tripNet();
  const Network b = toggleNet();
  const auto batch = batchFuzzEquivalenceDetailed(a, b, 5, 30, 1234);
  const auto scalar = fuzzEquivalenceDetailed(a, b, 5, 30, 1234);
  ASSERT_TRUE(batch.has_value());
  ASSERT_TRUE(scalar.has_value());
  EXPECT_EQ(batch->round, scalar->round);
  EXPECT_EQ(batch->roundSeed, fuzzRoundSeed(1234, batch->round));
  EXPECT_EQ(batch->script, scalar->script);
  expectSameVerdict(batch->mismatch, scalar->mismatch);
  // The artifact alone reproduces the failure: parse it back and replay.
  const Stimulus replay = Stimulus::fromText(batch->artifact());
  expectSameVerdict(checkEquivalence(a, b, replay), batch->mismatch);
  EXPECT_NE(batch->describe().find("round"), std::string::npos);
}

TEST(BatchEquivalence, CorpusVerdictsPerPair) {
  const Network a = tripNet();
  const Network b = toggleNet();
  std::vector<Stimulus> scripts;
  scripts.push_back(Stimulus{}.press("s").press("s"));
  const std::vector<EquivalencePair> pairs = {
      {&a, &a, "clone"},
      {&a, &b, "trip-vs-toggle"},
  };
  const auto verdicts = batchCheckCorpus(pairs, scripts);
  ASSERT_EQ(verdicts.size(), 2u);
  EXPECT_EQ(verdicts[0].label, "clone");
  EXPECT_FALSE(verdicts[0].mismatch.has_value());
  EXPECT_EQ(verdicts[1].label, "trip-vs-toggle");
  EXPECT_TRUE(verdicts[1].mismatch.has_value());
}

TEST(BatchEquivalence, NameSetMismatchesThrowLikeScalar) {
  const auto& cat = defaultCatalog();
  Network a;
  a.addBlock("s1", cat.button());
  Network b;
  b.addBlock("s2", cat.button());
  const std::vector<Stimulus> scripts(1);
  EXPECT_THROW(batchCheckEquivalence(a, b, scripts), std::invalid_argument);
}

TEST(BatchEquivalence, BehaviorFaultsPropagateLikeScalar) {
  // A division fault in some lane must surface as the scalar SimError, via
  // the scalar replay of the flagged lane.
  const auto& cat = defaultCatalog();
  const auto divider = std::make_shared<BlockType>(
      "divider", BlockClass::kCompute,
      std::vector<std::string>{"arm", "div"}, std::vector<std::string>{"out"},
      "var s = 0;\nif (arm) { s = 2 / div; }\nout = s;");
  auto build = [&] {
    Network net;
    const BlockId arm = net.addBlock("arm", cat.button());
    const BlockId div = net.addBlock("div", cat.button());
    const BlockId d = net.addBlock("d", divider);
    const BlockId o = net.addBlock("o", cat.led());
    net.connect(arm, 0, d, 0);
    net.connect(div, 0, d, 1);
    net.connect(d, 0, o, 0);
    return net;
  };
  const Network a = build();
  const Network b = build();
  std::vector<Stimulus> scripts;
  scripts.push_back(Stimulus{}.set("div", 1).set("arm", 1));  // clean lane
  scripts.push_back(Stimulus{}.set("arm", 1));                // faults
  EXPECT_THROW(checkEquivalence(a, b, scripts[1]), SimError);
  EXPECT_THROW(batchCheckEquivalence(a, b, scripts), SimError);
}

TEST(BatchEquivalence, FallsBackToScalarOnOpenPrograms) {
  // The batch simulator rejects non-closed programs at construction; the
  // checker must then produce the scalar loop's outcome (here: the scalar
  // activation error).
  const auto& cat = defaultCatalog();
  const auto open = std::make_shared<BlockType>(
      "open", BlockClass::kCompute, std::vector<std::string>{"a"},
      std::vector<std::string>{"out"}, "out = mystery;");
  auto build = [&] {
    Network net;
    const BlockId s = net.addBlock("s", cat.button());
    const BlockId g = net.addBlock("g", open);
    const BlockId o = net.addBlock("o", cat.led());
    net.connect(s, 0, g, 0);
    net.connect(g, 0, o, 0);
    return net;
  };
  const Network a = build();
  const Network b = build();
  std::vector<Stimulus> scripts;
  scripts.push_back(Stimulus{}.set("s", 1));
  EXPECT_THROW(checkEquivalence(a, b, scripts[0]), SimError);
  EXPECT_THROW(batchCheckEquivalence(a, b, scripts), SimError);
}

}  // namespace
}  // namespace eblocks::sim
