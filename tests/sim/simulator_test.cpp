#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "blocks/catalog.h"
#include "designs/library.h"

namespace eblocks::sim {
namespace {

using blocks::defaultCatalog;

TEST(Simulator, GarageOpenAtNightScenario) {
  const Network net = designs::garageOpenAtNight();
  Simulator simulator(net);
  // Initially: door closed, daylight 0 -> is_dark = 1, but door = 0.
  EXPECT_EQ(simulator.outputValue("bedroom_led"), 0);
  simulator.apply("garage_door", 1);  // door opens at night
  EXPECT_EQ(simulator.outputValue("bedroom_led"), 1);
  simulator.apply("daylight", 1);     // sun rises
  EXPECT_EQ(simulator.outputValue("bedroom_led"), 0);
  simulator.apply("daylight", 0);     // night again, door still open
  EXPECT_EQ(simulator.outputValue("bedroom_led"), 1);
  simulator.apply("garage_door", 0);
  EXPECT_EQ(simulator.outputValue("bedroom_led"), 0);
}

TEST(Simulator, PowerUpWavePropagatesConstants) {
  // s -> not -> led: after reset the inverter already shows 1.
  const auto& cat = defaultCatalog();
  Network net;
  const BlockId s = net.addBlock("s", cat.button());
  const BlockId inv = net.addBlock("inv", cat.inverter());
  const BlockId led = net.addBlock("led", cat.led());
  net.connect(s, 0, inv, 0);
  net.connect(inv, 0, led, 0);
  Simulator simulator(net);
  EXPECT_EQ(simulator.outputValue("led"), 1);
}

TEST(Simulator, SetSensorRequiresSensor) {
  const auto& cat = defaultCatalog();
  Network net;
  net.addBlock("s", cat.button());
  net.addBlock("inv", cat.inverter());
  Simulator simulator(net);
  EXPECT_THROW(simulator.setSensor("inv", 1), SimError);
  EXPECT_THROW(simulator.setSensor("ghost", 1), SimError);
}

TEST(Simulator, OutputValueRequiresOutputBlock) {
  const auto& cat = defaultCatalog();
  Network net;
  net.addBlock("s", cat.button());
  Simulator simulator(net);
  EXPECT_THROW(simulator.outputValue("s"), SimError);
}

TEST(Simulator, TraceRecordsDisplayChanges) {
  const Network net = designs::garageOpenAtNight();
  Simulator simulator(net);
  simulator.apply("garage_door", 1);
  simulator.apply("garage_door", 0);
  const auto& trace = simulator.trace();
  ASSERT_GE(trace.size(), 2u);
  EXPECT_EQ(trace[trace.size() - 2].value, 1);
  EXPECT_EQ(trace[trace.size() - 1].value, 0);
  EXPECT_LT(trace[trace.size() - 2].time, trace[trace.size() - 1].time);
}

TEST(Simulator, ResetRestoresInitialState) {
  const Network net = designs::garageOpenAtNight();
  Simulator simulator(net);
  simulator.apply("garage_door", 1);
  EXPECT_EQ(simulator.outputValue("bedroom_led"), 1);
  simulator.reset();
  EXPECT_EQ(simulator.outputValue("bedroom_led"), 0);
  EXPECT_LE(simulator.now(), 2u);  // reset wave settles within ~2 hops
}

TEST(Simulator, TickDrivesSequentialBlocks) {
  const auto& cat = defaultCatalog();
  Network net;
  const BlockId s = net.addBlock("s", cat.button());
  const BlockId dly = net.addBlock("dly", cat.delay(2));
  const BlockId led = net.addBlock("led", cat.led());
  net.connect(s, 0, dly, 0);
  net.connect(dly, 0, led, 0);
  Simulator simulator(net);
  simulator.apply("s", 1);
  EXPECT_EQ(simulator.outputValue("led"), 0);
  simulator.tick();
  EXPECT_EQ(simulator.outputValue("led"), 0);
  simulator.tick();
  EXPECT_EQ(simulator.outputValue("led"), 1);
}

TEST(Simulator, ToggleChainDividesByTwo) {
  const auto& cat = defaultCatalog();
  Network net;
  const BlockId s = net.addBlock("s", cat.button());
  const BlockId t1 = net.addBlock("t1", cat.toggle());
  const BlockId t2 = net.addBlock("t2", cat.toggle());
  const BlockId led = net.addBlock("led", cat.led());
  net.connect(s, 0, t1, 0);
  net.connect(t1, 0, t2, 0);
  net.connect(t2, 0, led, 0);
  Simulator simulator(net);
  auto press = [&] {
    simulator.apply("s", 1);
    simulator.apply("s", 0);
    return simulator.outputValue("led");
  };
  EXPECT_EQ(press(), 1);
  EXPECT_EQ(press(), 1);
  EXPECT_EQ(press(), 0);
  EXPECT_EQ(press(), 0);
  EXPECT_EQ(press(), 1);
}

TEST(Simulator, EmitOnChangeOnlyDeliversDeltas) {
  const auto& cat = defaultCatalog();
  Network net;
  const BlockId s = net.addBlock("s", cat.button());
  const BlockId buf = net.addBlock("buf", cat.buffer());
  const BlockId led = net.addBlock("led", cat.led());
  net.connect(s, 0, buf, 0);
  net.connect(buf, 0, led, 0);
  Simulator simulator(net);
  const auto before = simulator.packetsDelivered();
  simulator.apply("s", 0);  // no change: sensor output stays 0
  EXPECT_EQ(simulator.packetsDelivered(), before);
  simulator.apply("s", 1);
  EXPECT_GT(simulator.packetsDelivered(), before);
}

TEST(Simulator, HopLatencyAccumulates) {
  const auto& cat = defaultCatalog();
  Network net;
  const BlockId s = net.addBlock("s", cat.button());
  BlockId prev = s;
  for (int i = 0; i < 5; ++i) {
    const BlockId buf = net.addBlock("buf" + std::to_string(i), cat.buffer());
    net.connect(prev, 0, buf, 0);
    prev = buf;
  }
  const BlockId led = net.addBlock("led", cat.led());
  net.connect(prev, 0, led, 0);
  SimOptions opts;
  opts.hopLatency = 10;
  Simulator simulator(net, opts);
  const auto t0 = simulator.now();
  simulator.apply("s", 1);
  // 6 hops from sensor to led at 10 time units each.
  EXPECT_EQ(simulator.now() - t0, 60u);
}

TEST(Simulator, EventBudgetGuardsOscillation) {
  // A cyclic network that oscillates forever: not -> not -> back.
  // (Built by hand: inner cycle of two inverters with no sensor.)
  const auto& cat = defaultCatalog();
  Network net;
  const BlockId a = net.addBlock("a", cat.inverter());
  const BlockId b = net.addBlock("b", cat.buffer());
  net.connect(a, 0, b, 0);
  net.connect(b, 0, a, 0);
  SimOptions opts;
  opts.maxEventsPerSettle = 1000;
  EXPECT_THROW(Simulator(net, opts), SimError);
}

TEST(Simulator, BenignBlockLevelCycleSettles) {
  // Two buffers in a cycle hold their value: stable, not oscillating.
  const auto& cat = defaultCatalog();
  Network net;
  const BlockId a = net.addBlock("a", cat.buffer());
  const BlockId b = net.addBlock("b", cat.buffer());
  net.connect(a, 0, b, 0);
  net.connect(b, 0, a, 0);
  Simulator simulator(net);  // settles immediately: all zeros
  EXPECT_EQ(simulator.probe(a, "out"), 0);
}

TEST(Simulator, ProbeUnboundVariableReadsZero) {
  const auto& cat = defaultCatalog();
  Network net;
  net.addBlock("s", cat.button());
  Simulator simulator(net);
  EXPECT_EQ(simulator.probe(0, "no_such_var"), 0);
}

TEST(Simulator, InvalidBehaviorReportsBlockName) {
  Network net;
  auto bad = std::make_shared<const BlockType>(
      "bad_type", BlockClass::kCompute, std::vector<std::string>{"a"},
      std::vector<std::string>{"out"}, "out = ;");
  net.addBlock("broken", bad);
  try {
    Simulator simulator(net);
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("broken"), std::string::npos);
  }
}

TEST(Simulator, Figure5PodiumTimerRuns) {
  const Network net = designs::figure5();
  Simulator simulator(net);
  simulator.apply("start_button", 1);
  simulator.apply("start_button", 0);
  for (int i = 0; i < 12; ++i) simulator.tick();
  // After the warn and limit delays expire, the trip latch holds yellow on.
  EXPECT_EQ(simulator.outputValue("green_led"), 1);
}

}  // namespace
}  // namespace eblocks::sim
