#include "sim/equivalence.h"

#include <gtest/gtest.h>

#include "blocks/catalog.h"
#include "designs/library.h"

namespace eblocks::sim {
namespace {

using blocks::defaultCatalog;

TEST(Equivalence, IdenticalNetworksAgree) {
  const Network a = designs::garageOpenAtNight();
  const Network b = designs::garageOpenAtNight();
  Stimulus st;
  st.set("garage_door", 1).set("daylight", 1).set("garage_door", 0);
  EXPECT_FALSE(checkEquivalence(a, b, st).has_value());
}

TEST(Equivalence, StructurallyDifferentButBehaviorallyEqual) {
  // not(not(x)) == yes(x).
  const auto& cat = defaultCatalog();
  Network a;
  {
    const BlockId s = a.addBlock("s", cat.button());
    const BlockId inv1 = a.addBlock("inv1", cat.inverter());
    const BlockId inv2 = a.addBlock("inv2", cat.inverter());
    const BlockId o = a.addBlock("o", cat.led());
    a.connect(s, 0, inv1, 0);
    a.connect(inv1, 0, inv2, 0);
    a.connect(inv2, 0, o, 0);
  }
  Network b;
  {
    const BlockId s = b.addBlock("s", cat.button());
    const BlockId buf = b.addBlock("buf", cat.buffer());
    const BlockId o = b.addBlock("o", cat.led());
    b.connect(s, 0, buf, 0);
    b.connect(buf, 0, o, 0);
  }
  Stimulus st;
  st.set("s", 1).set("s", 0).set("s", 1);
  EXPECT_FALSE(checkEquivalence(a, b, st).has_value());
}

TEST(Equivalence, DetectsBehavioralDifference) {
  const auto& cat = defaultCatalog();
  Network a;
  {
    const BlockId s = a.addBlock("s", cat.button());
    const BlockId g = a.addBlock("g", cat.buffer());
    const BlockId o = a.addBlock("o", cat.led());
    a.connect(s, 0, g, 0);
    a.connect(g, 0, o, 0);
  }
  Network b;
  {
    const BlockId s = b.addBlock("s", cat.button());
    const BlockId g = b.addBlock("g", cat.inverter());
    const BlockId o = b.addBlock("o", cat.led());
    b.connect(s, 0, g, 0);
    b.connect(g, 0, o, 0);
  }
  Stimulus st;
  st.set("s", 1);
  const auto m = checkEquivalence(a, b, st);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->output, "o");
  EXPECT_EQ(m->expected, 1);
  EXPECT_EQ(m->actual, 0);
  EXPECT_EQ(m->stepIndex, 0);
  EXPECT_NE(m->describe().find("'o'"), std::string::npos);
}

TEST(Equivalence, MismatchedSensorSetsThrow) {
  const auto& cat = defaultCatalog();
  Network a;
  a.addBlock("s1", cat.button());
  Network b;
  b.addBlock("s2", cat.button());
  Stimulus st;
  EXPECT_THROW(checkEquivalence(a, b, st), std::invalid_argument);
}

TEST(Equivalence, MismatchedOutputSetsThrow) {
  const auto& cat = defaultCatalog();
  Network a;
  a.addBlock("s", cat.button());
  a.addBlock("o1", cat.led());
  Network b;
  b.addBlock("s", cat.button());
  b.addBlock("o2", cat.led());
  Stimulus st;
  EXPECT_THROW(checkEquivalence(a, b, st), std::invalid_argument);
}

TEST(Equivalence, FuzzAgreesOnClones) {
  const Network a = designs::figure5();
  const Network b = designs::figure5();
  EXPECT_FALSE(fuzzEquivalence(a, b, 3, 40, 99).has_value());
}

TEST(Equivalence, FuzzFindsSubtleStateDifference) {
  // trip vs toggle diverge on the second press.
  const auto& cat = defaultCatalog();
  Network a;
  {
    const BlockId s = a.addBlock("s", cat.button());
    const BlockId g = a.addBlock("g", cat.trip());
    const BlockId o = a.addBlock("o", cat.led());
    a.connect(s, 0, g, 0);
    a.connect(g, 0, o, 0);
  }
  Network b;
  {
    const BlockId s = b.addBlock("s", cat.button());
    const BlockId g = b.addBlock("g", cat.toggle());
    const BlockId o = b.addBlock("o", cat.led());
    b.connect(s, 0, g, 0);
    b.connect(g, 0, o, 0);
  }
  EXPECT_TRUE(fuzzEquivalence(a, b, 5, 30, 1234).has_value());
}

}  // namespace
}  // namespace eblocks::sim
