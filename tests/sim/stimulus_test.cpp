#include "sim/stimulus.h"

#include <gtest/gtest.h>

#include "blocks/catalog.h"
#include "designs/library.h"

namespace eblocks::sim {
namespace {

TEST(Stimulus, BuilderAccumulatesSteps) {
  Stimulus st;
  st.set("a", 1).tick(2).press("b");
  ASSERT_EQ(st.steps().size(), 5u);
  EXPECT_EQ(st.steps()[0].kind, StimulusStep::Kind::kSetSensor);
  EXPECT_EQ(st.steps()[1].kind, StimulusStep::Kind::kTick);
  EXPECT_EQ(st.steps()[2].kind, StimulusStep::Kind::kTick);
  EXPECT_EQ(st.steps()[3].value, 1);
  EXPECT_EQ(st.steps()[4].value, 0);
}

TEST(Stimulus, RunObservesEveryStepBoundary) {
  const Network net = designs::garageOpenAtNight();
  Simulator simulator(net);
  Stimulus st;
  st.set("garage_door", 1).set("daylight", 1).set("daylight", 0);
  const auto observed = st.run(simulator);
  // One output block, three steps.
  EXPECT_EQ(observed, (std::vector<std::int64_t>{1, 0, 1}));
}

TEST(Stimulus, RandomStimulusIsReproducible) {
  const Network net = designs::garageOpenAtNight();
  const Stimulus a = randomStimulus(net, 50, 7);
  const Stimulus b = randomStimulus(net, 50, 7);
  ASSERT_EQ(a.steps().size(), b.steps().size());
  for (std::size_t i = 0; i < a.steps().size(); ++i) {
    EXPECT_EQ(a.steps()[i].kind, b.steps()[i].kind);
    EXPECT_EQ(a.steps()[i].sensor, b.steps()[i].sensor);
    EXPECT_EQ(a.steps()[i].value, b.steps()[i].value);
  }
}

TEST(Stimulus, RandomStimulusDiffersAcrossSeeds) {
  const Network net = designs::garageOpenAtNight();
  const Stimulus a = randomStimulus(net, 50, 7);
  const Stimulus b = randomStimulus(net, 50, 8);
  bool differs = a.steps().size() != b.steps().size();
  for (std::size_t i = 0; !differs && i < a.steps().size(); ++i)
    differs = a.steps()[i].kind != b.steps()[i].kind ||
              a.steps()[i].sensor != b.steps()[i].sensor ||
              a.steps()[i].value != b.steps()[i].value;
  EXPECT_TRUE(differs);
}

TEST(Stimulus, RandomStimulusOnlyNamesRealSensors) {
  const Network net = designs::figure5();
  const Stimulus st = randomStimulus(net, 100, 3);
  for (const StimulusStep& s : st.steps()) {
    if (s.kind == StimulusStep::Kind::kSetSensor) {
      EXPECT_EQ(s.sensor, "start_button");
    }
  }
}

TEST(Stimulus, SensorlessNetworkGetsTicksOnly) {
  const auto& cat = blocks::defaultCatalog();
  Network net;
  net.addBlock("lonely", cat.buffer());
  const Stimulus st = randomStimulus(net, 10, 1);
  EXPECT_EQ(st.steps().size(), 10u);
  for (const StimulusStep& s : st.steps())
    EXPECT_EQ(s.kind, StimulusStep::Kind::kTick);
}

}  // namespace
}  // namespace eblocks::sim
