#include "sim/batch_simulator.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "blocks/catalog.h"
#include "designs/library.h"
#include "randgen/generator.h"
#include "sim/simulator.h"

namespace eblocks::sim {
namespace {

using blocks::defaultCatalog;

/// Advances `net` through `scripts` in the batch simulator and through one
/// scalar simulator per script, asserting identical output values at every
/// step boundary in every lane (idle lanes included: once a short script
/// ends, its lane must hold its final values).
void expectLockstep(const Network& net, const std::vector<Stimulus>& scripts) {
  BatchSimulator batch(net);
  const BatchScript packed = packStimuli(net, scripts);
  batch.reset(packed.allLanes());

  std::vector<Simulator> scalars;
  scalars.reserve(scripts.size());
  for (std::size_t i = 0; i < scripts.size(); ++i) scalars.emplace_back(net);

  std::vector<BlockId> outputs;
  for (BlockId b = 0; b < net.blockCount(); ++b)
    if (net.isOutput(b)) outputs.push_back(b);

  for (std::size_t i = 0; i < packed.steps.size(); ++i) {
    batch.apply(packed.steps[i]);
    for (int lane = 0; lane < packed.laneCount; ++lane) {
      const auto& steps = scripts[static_cast<std::size_t>(lane)].steps();
      if (i < steps.size()) {
        const StimulusStep& s = steps[i];
        Simulator& sim = scalars[static_cast<std::size_t>(lane)];
        if (s.kind == StimulusStep::Kind::kSetSensor) {
          sim.setSensor(s.sensor, s.value);
          sim.settle();
        } else {
          sim.tick();
        }
      }
      for (const BlockId o : outputs)
        ASSERT_EQ(batch.outputValue(o, lane),
                  scalars[static_cast<std::size_t>(lane)].outputValue(o))
            << "step " << i << " lane " << lane << " output '"
            << net.block(o).name << "' of " << net.name();
    }
  }
  EXPECT_EQ(batch.faultedLanes(), 0u);
}

TEST(BatchSimulator, Figure5Lockstep) {
  const Network net = designs::figure5();
  expectLockstep(net, randomStimulusCorpus(net, kLanes, 30, 77));
}

TEST(BatchSimulator, GarageLockstep) {
  const Network net = designs::garageOpenAtNight();
  expectLockstep(net, randomStimulusCorpus(net, kLanes, 30, 78));
}

TEST(BatchSimulator, Table1DesignsLockstep) {
  for (const designs::DesignEntry& entry : designs::designLibrary()) {
    const Network& net = entry.network;
    expectLockstep(net, randomStimulusCorpus(net, 16, 20, 500));
  }
}

// Satellite: 25 randgen designs, batch vs scalar, every lane and every
// step boundary.
TEST(BatchSimulator, RandomDesignsLockstep) {
  randgen::GeneratorOptions options;
  options.innerBlocks = 8;
  options.seed = 7;
  const std::vector<Network> corpus = randgen::randomNetworkCorpus(25, options);
  ASSERT_EQ(corpus.size(), 25u);
  std::uint32_t seed = 1000;
  for (const Network& net : corpus)
    expectLockstep(net, randomStimulusCorpus(net, kLanes, 20, seed++));
}

TEST(BatchSimulator, UnevenScriptLengthsIdleCleanly) {
  const Network net = designs::figure5();
  std::vector<Stimulus> scripts;
  scripts.push_back(Stimulus{}.set("start_button", 1).tick(4).set("start_button", 0));
  scripts.push_back(Stimulus{}.set("start_button", 1));
  scripts.push_back(Stimulus{});  // never does anything
  expectLockstep(net, scripts);
}

TEST(BatchSimulator, SetSensorRejectsNonSensors) {
  const Network net = designs::figure5();
  BatchSimulator batch(net);
  const auto led = net.findBlock("green_led");
  ASSERT_TRUE(led.has_value());
  EXPECT_THROW(batch.setSensor(*led, kAllLanes, LaneVector::splat(1)),
               SimError);
  EXPECT_THROW(batch.setSensor("nonexistent", kAllLanes, 1), SimError);
}

TEST(BatchSimulator, OutputValueRejectsNonOutputs) {
  const Network net = designs::figure5();
  BatchSimulator batch(net);
  const auto motion = net.findBlock("start_button");
  ASSERT_TRUE(motion.has_value());
  EXPECT_THROW(batch.outputValue(*motion, 0), SimError);
}

TEST(BatchSimulator, DivisionFaultsAreQuarantinedPerLane) {
  // if (arm) { out = 2 / div; }  -- faults only in lanes where arm=1 while
  // div=0; other lanes keep running.
  const auto& cat = defaultCatalog();
  const auto divider = std::make_shared<BlockType>(
      "divider", BlockClass::kCompute,
      std::vector<std::string>{"arm", "div"}, std::vector<std::string>{"out"},
      "var s = 0;\nif (arm) { s = 2 / div; }\nout = s;");
  Network net;
  const BlockId arm = net.addBlock("arm", cat.button());
  const BlockId div = net.addBlock("div", cat.button());
  const BlockId d = net.addBlock("d", divider);
  const BlockId o = net.addBlock("o", cat.led());
  net.connect(arm, 0, d, 0);
  net.connect(div, 0, d, 1);
  net.connect(d, 0, o, 0);

  BatchSimulator batch(net);
  batch.reset(firstLanes(3));
  // lane 0: div=1 then arm=1 -> 2/1, fine.  lane 1: arm=1 with div=0 ->
  // fault.  lane 2: idle, fine.
  batch.setSensor(div, LaneMask{1} << 0, LaneVector::splat(1));
  batch.settle();
  EXPECT_EQ(batch.faultedLanes(), 0u);
  batch.setSensor(arm, firstLanes(2), LaneVector::splat(1));
  batch.settle();
  EXPECT_EQ(batch.faultedLanes(), LaneMask{1} << 1);
  EXPECT_NE(batch.faultMessage().find("division"), std::string::npos);
  // The healthy lane's result is still exact.
  EXPECT_EQ(batch.outputValue(o, 0), 2);
  EXPECT_EQ(batch.outputValue(o, 2), 0);

  // The scalar simulator throws on the faulting script -- which is why
  // batch_equivalence replays flagged lanes rather than trusting them.
  Simulator scalar(net);
  scalar.setSensor(arm, 1);
  EXPECT_THROW(scalar.settle(), SimError);
}

TEST(BatchSimulator, RejectsOpenPrograms) {
  // Reads a name that is never a port, builtin, or assigned variable; the
  // scalar simulator would throw at activation, the batch simulator at
  // construction so callers can fall back.
  const auto& cat = defaultCatalog();
  const auto open = std::make_shared<BlockType>(
      "open", BlockClass::kCompute, std::vector<std::string>{"a"},
      std::vector<std::string>{"out"}, "out = mystery;");
  Network net;
  const BlockId s = net.addBlock("s", cat.button());
  const BlockId g = net.addBlock("g", open);
  const BlockId o = net.addBlock("o", cat.led());
  net.connect(s, 0, g, 0);
  net.connect(g, 0, o, 0);
  EXPECT_THROW(BatchSimulator{net}, SimError);
}

TEST(BatchSimulator, PackStimuliValidates) {
  const Network net = designs::figure5();
  std::vector<Stimulus> tooMany(static_cast<std::size_t>(kLanes) + 1);
  EXPECT_THROW(packStimuli(net, tooMany), std::invalid_argument);
  std::vector<Stimulus> unknown;
  unknown.push_back(Stimulus{}.set("no_such_sensor", 1));
  EXPECT_THROW(packStimuli(net, unknown), std::invalid_argument);
}

TEST(BatchSimulator, PackStimuliGroupsWritesPerSensor) {
  const Network net = designs::figure5();
  std::vector<Stimulus> scripts;
  scripts.push_back(Stimulus{}.set("start_button", 1));
  scripts.push_back(Stimulus{}.set("start_button", 0));
  scripts.push_back(Stimulus{}.tick());
  const BatchScript packed = packStimuli(net, scripts);
  ASSERT_EQ(packed.steps.size(), 1u);
  ASSERT_EQ(packed.steps[0].writes.size(), 1u);
  EXPECT_EQ(packed.steps[0].writes[0].lanes, 0b011u);
  EXPECT_EQ(packed.steps[0].tickLanes, 0b100u);
  EXPECT_EQ(packed.activeAtStep[0], 0b111u);
  EXPECT_EQ(packed.allLanes(), 0b111u);
}

}  // namespace
}  // namespace eblocks::sim
