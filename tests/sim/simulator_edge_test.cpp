// Scalar Simulator edge cases the batch lanes must match exactly:
// same-instant event batching, oscillating feedback, name errors, ticks on
// quiescent networks, and the recordTrace=false fast path.
#include <gtest/gtest.h>

#include "blocks/catalog.h"
#include "designs/library.h"
#include "sim/simulator.h"

namespace eblocks::sim {
namespace {

using blocks::defaultCatalog;

TEST(SimulatorEdge, SameInstantPacketsActivateDestinationOnce) {
  // splitter2 fans one press out to both and2 inputs; both packets arrive
  // in the same instant, so and2 must evaluate once, with both inputs
  // already updated (drain-then-evaluate), and settle at 1.
  const auto& cat = defaultCatalog();
  Network net;
  const BlockId s = net.addBlock("s", cat.button());
  const BlockId split = net.addBlock("split", cat.splitter(2));
  const BlockId g = net.addBlock("g", cat.and2());
  const BlockId o = net.addBlock("o", cat.led());
  net.connect(s, 0, split, 0);
  net.connect(split, 0, g, 0);
  net.connect(split, 1, g, 1);
  net.connect(g, 0, o, 0);

  Simulator sim(net);
  const std::uint64_t before = sim.activations();
  sim.setSensor(s, 1);
  sim.settle();
  EXPECT_EQ(sim.outputValue(o), 1);
  // s, split, g, o: exactly one activation each -- g did NOT evaluate per
  // arriving packet.
  EXPECT_EQ(sim.activations() - before, 4u);
}

TEST(SimulatorEdge, LaterSameInstantPacketWinsAPort) {
  // Two buttons feed or2 through paths of equal length; pressing both
  // then settling once delivers both packets in one instant.  Seq order
  // applies the later write last -- behaviorally visible only through the
  // settled value being computed from both updated ports.
  const auto& cat = defaultCatalog();
  Network net;
  const BlockId s1 = net.addBlock("s1", cat.button());
  const BlockId s2 = net.addBlock("s2", cat.button());
  const BlockId g = net.addBlock("g", cat.or2());
  const BlockId o = net.addBlock("o", cat.led());
  net.connect(s1, 0, g, 0);
  net.connect(s2, 0, g, 1);
  net.connect(g, 0, o, 0);

  Simulator sim(net);
  sim.setSensor(s1, 1);
  sim.setSensor(s2, 1);  // same instant as s1's packet
  const std::uint64_t before = sim.activations();
  sim.settle();
  EXPECT_EQ(sim.outputValue(o), 1);
  EXPECT_EQ(sim.activations() - before, 2u);  // g once, o once
  sim.setSensor(s1, 0);
  sim.setSensor(s2, 0);
  sim.settle();
  EXPECT_EQ(sim.outputValue(o), 0);
}

TEST(SimulatorEdge, OscillatingFeedbackExhaustsBudget) {
  // A ring with one net inversion (not -> yes -> back) can never settle;
  // the budget guard must fire (already at construction, whose reset()
  // settles the power-up wave).
  const auto& cat = defaultCatalog();
  Network net;
  const BlockId inv = net.addBlock("inv", cat.inverter());
  const BlockId buf = net.addBlock("buf", cat.buffer());
  const BlockId o = net.addBlock("o", cat.led());
  net.connect(inv, 0, buf, 0);
  net.connect(buf, 0, inv, 0);
  net.connect(inv, 0, o, 0);
  SimOptions opts;
  opts.maxEventsPerSettle = 100;
  EXPECT_THROW(Simulator(net, opts), SimError);
}

TEST(SimulatorEdge, UnknownNamesReportErrors) {
  const Network net = designs::garageOpenAtNight();
  Simulator sim(net);
  EXPECT_THROW(sim.setSensor("no_such_sensor", 1), SimError);
  EXPECT_THROW(sim.outputValue("no_such_output"), SimError);
}

TEST(SimulatorEdge, TickOnQuiescentCombinationalNetworkIsNoOp) {
  // No sequential blocks: a tick activates nothing and delivers nothing.
  const auto& cat = defaultCatalog();
  Network net;
  const BlockId s = net.addBlock("s", cat.button());
  const BlockId g = net.addBlock("g", cat.inverter());
  const BlockId o = net.addBlock("o", cat.led());
  net.connect(s, 0, g, 0);
  net.connect(g, 0, o, 0);

  Simulator sim(net);
  const std::int64_t out = sim.outputValue(o);
  const std::uint64_t activations = sim.activations();
  const std::uint64_t packets = sim.packetsDelivered();
  sim.tick();
  sim.tick();
  EXPECT_EQ(sim.outputValue(o), out);
  EXPECT_EQ(sim.activations(), activations);
  EXPECT_EQ(sim.packetsDelivered(), packets);
}

TEST(SimulatorEdge, TickOnQuiescentSequentialNetworkIsIdempotent) {
  // Sequential blocks do activate on ticks, but a settled toggle with no
  // input change must not emit anything.
  const auto& cat = defaultCatalog();
  Network net;
  const BlockId s = net.addBlock("s", cat.button());
  const BlockId g = net.addBlock("g", cat.toggle());
  const BlockId o = net.addBlock("o", cat.led());
  net.connect(s, 0, g, 0);
  net.connect(g, 0, o, 0);

  Simulator sim(net);
  sim.apply("s", 1);
  const std::int64_t out = sim.outputValue(o);
  const std::uint64_t packets = sim.packetsDelivered();
  sim.tick();
  EXPECT_EQ(sim.outputValue(o), out);
  EXPECT_EQ(sim.packetsDelivered(), packets);  // no packet traffic at all
}

// Satellite regression: with recordTrace=false the trace buffer must stay
// empty AND unallocated -- equivalence/fuzz runs pay nothing for tracing.
TEST(SimulatorEdge, DisabledTraceNeverAllocates) {
  const Network net = designs::figure5();
  SimOptions opts;
  opts.recordTrace = false;
  Simulator sim(net, opts);
  sim.apply("start_button", 1);
  for (int i = 0; i < 20; ++i) sim.tick();
  sim.apply("start_button", 0);
  EXPECT_TRUE(sim.trace().empty());
  EXPECT_EQ(sim.trace().capacity(), 0u);

  // Control: the same run with tracing on does record display changes.
  Simulator traced(net);
  traced.apply("start_button", 1);
  for (int i = 0; i < 20; ++i) traced.tick();
  traced.apply("start_button", 0);
  EXPECT_FALSE(traced.trace().empty());
}

}  // namespace
}  // namespace eblocks::sim
