// Quickstart: the paper's running example (Figure 1), end to end.
//
// Builds the garage-open-at-night system from catalog blocks, simulates it,
// synthesizes it onto programmable blocks with PareDown, verifies the
// optimized network behaves identically, and prints the generated C code
// that would be downloaded onto the physical programmable eBlock.
#include <cstdio>

#include "blocks/catalog.h"
#include "sim/equivalence.h"
#include "sim/simulator.h"
#include "synth/synthesizer.h"

using namespace eblocks;

int main() {
  // --- capture: draw the network -----------------------------------------
  const auto& cat = blocks::defaultCatalog();
  Network net("Garage Open At Night");
  const BlockId door = net.addBlock("garage_door", cat.contactSwitch());
  const BlockId light = net.addBlock("daylight", cat.lightSensor());
  const BlockId dark = net.addBlock("is_dark", cat.inverter());
  const BlockId bad = net.addBlock("open_at_night", cat.and2());
  const BlockId lamp = net.addBlock("bedroom_led", cat.led());
  net.connect(light, 0, dark, 0);
  net.connect(door, 0, bad, 0);
  net.connect(dark, 0, bad, 1);
  net.connect(bad, 0, lamp, 0);

  // --- simulate the pre-defined-block network ------------------------------
  std::printf("== Simulating the captured network\n");
  sim::Simulator simulator(net);
  simulator.apply("garage_door", 1);
  std::printf("door open at night  -> bedroom LED = %lld\n",
              static_cast<long long>(simulator.outputValue("bedroom_led")));
  simulator.apply("daylight", 1);
  std::printf("sun rises           -> bedroom LED = %lld\n",
              static_cast<long long>(simulator.outputValue("bedroom_led")));

  // --- synthesize ----------------------------------------------------------
  std::printf("\n== Synthesizing with PareDown (programmable block: 2 "
              "inputs, 2 outputs)\n");
  const synth::SynthResult result = synth::synthesize(net);
  std::printf("%s\n", result.report().c_str());

  // --- verify equivalence ---------------------------------------------------
  sim::Stimulus script;
  script.set("garage_door", 1)
      .set("daylight", 1)
      .set("daylight", 0)
      .set("garage_door", 0);
  if (const auto mismatch = sim::checkEquivalence(net, result.network, script)) {
    std::printf("MISMATCH: %s\n", mismatch->describe().c_str());
    return 1;
  }
  std::printf("equivalence check: original and synthesized networks agree "
              "on all %zu steps\n", script.steps().size());

  // --- show the generated C ------------------------------------------------
  for (const auto& block : result.blocks) {
    std::printf("\n== Generated C for %s (replaces:", block.instanceName.c_str());
    for (const auto& r : block.replaced) std::printf(" %s", r.c_str());
    std::printf(")\n%s", block.cSource.c_str());
  }
  return 0;
}
