// A realistic larger scenario: the Two-Zone Security system (19 inner
// blocks).  Demonstrates algorithm selection, the synthesized network's
// structure, netlist export of the source design, and a live simulation of
// an intrusion scenario on the synthesized network.
#include <cstdio>

#include "designs/library.h"
#include "io/netlist.h"
#include "sim/simulator.h"
#include "synth/synthesizer.h"

using namespace eblocks;

int main() {
  const Network net = designs::byName("Two-Zone Security");
  std::printf("== Source design netlist\n%s\n",
              io::writeNetlist(net).c_str());

  for (const char* algorithm : {"aggregation", "paredown"}) {
    synth::SynthOptions options;
    options.algorithm = algorithm;
    const synth::SynthResult result = synth::synthesize(net, options);
    std::printf("== %s\n%s\n", algorithm, result.report().c_str());
  }

  // Simulate an intrusion on the PareDown-synthesized network.
  const synth::SynthResult result = synth::synthesize(net);
  sim::Simulator simulator(result.network);
  std::printf("== Intrusion scenario on the synthesized network\n");
  simulator.apply("arm_z0", 1);      // arm zone 0
  simulator.apply("entry1_z0", 1);   // window opens in zone 0
  for (int i = 0; i < 4; ++i) simulator.tick();  // grace delay expires
  std::printf("zone 0 armed, window opened  -> horn_z0 = %lld\n",
              static_cast<long long>(simulator.outputValue("horn_z0")));
  std::printf("                              -> horn_z1 = %lld (zone 1 "
              "quiet)\n",
              static_cast<long long>(simulator.outputValue("horn_z1")));
  simulator.apply("entry1_z0", 0);   // window closes; latch holds
  for (int i = 0; i < 4; ++i) simulator.tick();
  std::printf("window closed (latch holds)   -> horn_z0 = %lld\n",
              static_cast<long long>(simulator.outputValue("horn_z0")));
  simulator.apply("reset_button", 1);
  simulator.apply("reset_button", 0);
  for (int i = 0; i < 9; ++i) simulator.tick();  // siren prolonger drains
  std::printf("reset pressed, siren drains   -> horn_z0 = %lld\n",
              static_cast<long long>(simulator.outputValue("horn_z0")));
  return 0;
}
