// Waveform capture: run the Two-Zone Security intrusion scenario on both
// the original and the synthesized network and dump VCD traces for a
// waveform viewer (gtkwave original.vcd synthesized.vcd).
#include <cstdio>
#include <fstream>

#include "designs/library.h"
#include "io/vcd.h"
#include "synth/synthesizer.h"

using namespace eblocks;

namespace {

void scenario(sim::Simulator& simulator) {
  simulator.apply("arm_z0", 1);
  simulator.apply("entry1_z0", 1);
  for (int i = 0; i < 5; ++i) simulator.tick();
  simulator.apply("entry1_z0", 0);
  simulator.apply("reset_button", 1);
  simulator.apply("reset_button", 0);
  for (int i = 0; i < 10; ++i) simulator.tick();
}

}  // namespace

int main() {
  const Network original = designs::byName("Two-Zone Security");
  const synth::SynthResult r = synth::synthesize(original);

  sim::Simulator simOriginal(original);
  scenario(simOriginal);
  sim::Simulator simSynth(r.network);
  scenario(simSynth);

  {
    std::ofstream f("original.vcd");
    f << io::toVcd(simOriginal);
  }
  {
    std::ofstream f("synthesized.vcd");
    f << io::toVcd(simSynth);
  }
  std::printf("wrote original.vcd (%zu trace events) and synthesized.vcd "
              "(%zu trace events)\n",
              simOriginal.trace().size(), simSynth.trace().size());
  std::printf("original: %zu blocks; synthesized: %zu blocks (%d "
              "programmable)\n",
              original.blockCount(), r.network.blockCount(),
              r.programmableBlocks);
  std::printf("view with: gtkwave original.vcd\n");
  return 0;
}
