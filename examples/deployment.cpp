// Deployment mapping (Section 6's second future-work item): synthesize a
// design, then place the resulting network onto an existing installation
// of programmable nodes and cables, with the physical sensor/output
// devices pinned where they are mounted.
#include <cstdio>

#include "designs/library.h"
#include "mapping/mapper.h"
#include "synth/synthesizer.h"

using namespace eblocks;
using namespace eblocks::mapping;

int main() {
  // The garage system, synthesized: 2 sensors + 1 programmable + 1 LED.
  const synth::SynthResult r = synth::synthesize(designs::garageOpenAtNight());
  std::printf("%s\n", r.report().c_str());

  // The house wiring: porch - garage - hallway - bedroom, with a spare
  // node in the attic.  Duplex cable along the corridor run.
  Topology house("house");
  const PhysId garage = house.addNode("garage_wall", 2, 2);
  const PhysId porch = house.addNode("porch", 2, 2);
  const PhysId hall = house.addNode("hallway", 2, 2);
  const PhysId bedroom = house.addNode("bedroom", 2, 2);
  const PhysId attic = house.addNode("attic", 2, 2);
  house.addDuplexLink(garage, hall);
  house.addDuplexLink(porch, hall);
  house.addDuplexLink(hall, bedroom);
  house.addDuplexLink(hall, attic);
  // The door contact is at the garage, the light sensor on the porch, the
  // LED in the bedroom; extra cable so both sensor feeds can reach the
  // hallway node that will host the programmable block.
  house.addLink(garage, hall);
  house.addLink(porch, hall);

  MappingOptions options;
  options.pinned[*r.network.findBlock("garage_door")] = garage;
  options.pinned[*r.network.findBlock("daylight")] = porch;
  options.pinned[*r.network.findBlock("bedroom_led")] = bedroom;

  const auto mapping = mapNetwork(r.network, house, options);
  if (!mapping) {
    std::printf("no feasible deployment\n");
    return 1;
  }
  std::printf("deployment (%llu search nodes):\n",
              static_cast<unsigned long long>(mapping->explored));
  for (BlockId b = 0; b < r.network.blockCount(); ++b)
    std::printf("  %-14s -> %s\n", r.network.block(b).name.c_str(),
                house.node(mapping->placement[b]).name.c_str());
  const auto problems = verifyMapping(r.network, house, *mapping);
  std::printf("verification: %s\n",
              problems.empty() ? "ok" : problems.front().c_str());
  return problems.empty() ? 0 : 1;
}
