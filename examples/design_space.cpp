// Design-space exploration with the random generator: how much does
// synthesis shrink typical eBlock networks as they grow, and what would a
// bigger programmable block buy?  (The paper's Section 6 names the
// multiple-block-types extension as future work; this example explores it.)
//
// Usage: design_space [designs-per-point]
#include <cstdio>
#include <cstdlib>

#include "partition/paredown.h"
#include "randgen/generator.h"

using namespace eblocks;

int main(int argc, char** argv) {
  const int designs = argc > 1 ? std::atoi(argv[1]) : 30;
  std::printf("Average network shrinkage by PareDown over %d random designs "
              "per point\n\n", designs);
  std::printf("%6s | %10s %10s %10s | %12s\n", "Inner", "2x2", "3x3", "4x4",
              "best block");

  for (int n : {5, 10, 20, 40, 80}) {
    double totals[3] = {0, 0, 0};
    const int specs[3][2] = {{2, 2}, {3, 3}, {4, 4}};
    for (int d = 0; d < designs; ++d) {
      const Network net = randgen::randomNetwork(
          {.innerBlocks = n, .seed = static_cast<std::uint32_t>(97 * n + d)});
      for (int s = 0; s < 3; ++s) {
        const partition::PartitionProblem problem(
            net, partition::ProgBlockSpec{specs[s][0], specs[s][1]});
        totals[s] +=
            partition::pareDown(problem).result.totalAfter(problem.innerCount());
      }
    }
    for (double& t : totals) t /= designs;
    const int best = totals[0] <= totals[1]
                         ? (totals[0] <= totals[2] ? 0 : 2)
                         : (totals[1] <= totals[2] ? 1 : 2);
    std::printf("%6d | %10.2f %10.2f %10.2f | %dx%d\n", n, totals[0],
                totals[1], totals[2], specs[best][0], specs[best][1]);
  }

  std::printf("\nReduction ratio (2x2): totals above divided by the inner "
              "count show the\nfraction of blocks a deployment would still "
              "need to buy after synthesis.\n");
  return 0;
}
