// Interactive capture/simulate/synthesize shell -- the command-line
// counterpart of the paper's GUI tool chain (Figure 2).  Try:
//
//   $ ./example_shell_repl
//   > design Podium Timer 3
//   > sim
//   > press start_button
//   > tick 12
//   > synth paredown 2 2
//   > use synth
//   > press start_button
//   > emitc prog0
//
// Pipe a script for batch use: ./example_shell_repl < script.ebsh
#include <iostream>

#include "shell/shell.h"

int main() {
  eblocks::shell::Shell shell;
  const bool interactive = static_cast<bool>(std::cin.rdbuf());
  if (interactive)
    std::cout << "eblocks shell -- 'help' lists commands, 'quit' leaves\n";
  shell.run(std::cin, std::cout, /*echo=*/false);
  return 0;
}
