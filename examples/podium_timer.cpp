// The Figure-5 walkthrough, narrated: runs PareDown on the Podium Timer 3
// design with a trace observer and prints every decision the heuristic
// makes -- candidate partition, port usage, border blocks with ranks, and
// the removal choice -- exactly the story the paper tells in Section 4.2.1.
// Finishes with the DOT rendering of the partitioned design.
#include <cstdio>

#include "designs/library.h"
#include "io/dot.h"
#include "partition/paredown.h"

using namespace eblocks;

namespace {

std::string names(const BitSet& set) {
  std::string out;
  set.forEach([&](std::size_t b) {
    if (!out.empty()) out += ",";
    out += std::to_string(b + 1);  // print paper node numbers
  });
  return out;
}

}  // namespace

int main() {
  const Network net = designs::figure5();
  const partition::PartitionProblem problem(net, {});

  std::printf("PareDown on Podium Timer 3 (Figure 5; nodes numbered as in "
              "the paper)\n");
  std::printf("programmable block: 2 inputs, 2 outputs, edge counting\n\n");

  int step = 0;
  partition::PareDownOptions options;
  options.trace = [&](const partition::PareDownStep& s) {
    std::printf("step %d: candidate {%s}  io=%d in / %d out -> %s\n", ++step,
                names(s.candidate).c_str(), s.io.inputs, s.io.outputs,
                s.fits ? "FITS" : "invalid");
    if (s.fits) {
      if (s.candidate.count() > 1)
        std::printf("        accepted as partition\n");
      else
        std::printf("        single block: fits but invalid as a partition; "
                    "left as a pre-defined block\n");
      return;
    }
    std::printf("        border:");
    for (std::size_t i = 0; i < s.border.size(); ++i)
      std::printf(" node%u(rank %+d)", s.border[i] + 1, s.ranks[i]);
    std::printf("\n        remove node %u\n", s.removed + 1);
  };

  const partition::PartitionRun run = partition::pareDown(problem, options);

  std::printf("\nresult: %d inner blocks -> %d (%d programmable + %d "
              "pre-defined), %.3f ms\n",
              problem.innerCount(), run.result.totalAfter(problem.innerCount()),
              run.result.programmableBlocks(),
              run.result.totalAfter(problem.innerCount()) -
                  run.result.programmableBlocks(),
              run.seconds * 1e3);
  std::printf("(paper: 8 -> 3, with partitions {2,3,4,5} and {6,8,9}, "
              "node 7 left)\n\n");

  std::printf("DOT rendering with partition clusters:\n%s",
              io::toDot(net, run.result.partitions).c_str());
  return 0;
}
