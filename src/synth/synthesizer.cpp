#include "synth/synthesizer.h"

#include <map>
#include <set>
#include <stdexcept>

#include "behavior/printer.h"
#include "blocks/catalog.h"
#include "codegen/c_emitter.h"
#include "partition/engine.h"
#include "partition/verify.h"

namespace eblocks::synth {

SynthResult synthesize(const Network& source, const SynthOptions& options) {
  {
    const auto problems = source.validate();
    if (!problems.empty()) {
      std::string msg = "synthesize: source network is not well-formed:";
      for (const std::string& p : problems) msg += "\n  - " + p;
      throw std::invalid_argument(msg);
    }
  }

  partition::PartitionProblem problem(source, options.spec);
  SynthResult result;
  result.originalInner = problem.innerCount();

  // Consult the solution cache (when attached): an exact hit replaces the
  // partitioner run outright -- the stored result is bit-identical to a
  // fresh run by the store's contract, and it still passes through the
  // verification gate below like any other partitioning.  On a miss, a
  // near-miss record (same structure, compatible constraints) seeds the
  // engine's warm-start incumbent, a pure pruning accelerator.
  bool fromCache = false;
  partition::EngineOptions engine = options.engine;
  if (options.cache) {
    if (std::optional<partition::PartitionRun> hit = options.cache->lookup(
            source, options.algorithm, options.spec, options.engine)) {
      result.run = std::move(*hit);
      result.cacheOutcome = CacheOutcome::kHit;
      fromCache = true;
    } else {
      result.cacheOutcome = CacheOutcome::kMiss;
      if (std::optional<partition::Partitioning> incumbent =
              options.cache->nearMiss(source, options.spec, options.engine)) {
        engine.initialIncumbent = std::move(*incumbent);
        result.cacheOutcome = CacheOutcome::kWarmStart;
      }
    }
  }
  if (!fromCache) {
    result.run =
        partition::runPartitioner(options.algorithm, problem, engine);
    // Store against the *requested* options: the warm-start incumbent is
    // not part of the cache key (it cannot change the result).
    if (options.cache)
      options.cache->insert(source, options.algorithm, options.spec,
                            options.engine, result.run);
  }

  {
    const auto violations =
        partition::verifyPartitioning(problem, result.run.result);
    if (!violations.empty()) {
      std::string msg = "synthesize: partitioning failed verification:";
      for (const std::string& v : violations) msg += "\n  - " + v;
      throw std::logic_error(msg);
    }
  }

  const auto& partitions = result.run.result.partitions;
  result.programmableBlocks = static_cast<int>(partitions.size());
  result.innerAfter = result.run.result.totalAfter(result.originalInner);

  // Which partition (if any) owns each block.
  std::vector<int> partOf(source.blockCount(), -1);
  for (std::size_t k = 0; k < partitions.size(); ++k)
    partitions[k].forEach(
        [&](std::size_t b) { partOf[b] = static_cast<int>(k); });

  // Merge behaviors per partition.
  std::vector<codegen::MergedProgram> mergedPrograms;
  mergedPrograms.reserve(partitions.size());
  for (const BitSet& p : partitions)
    mergedPrograms.push_back(codegen::mergePartitionProgram(
        source, p, problem.levels(), options.spec.mode));

  // Build the optimized network.
  Network net(source.name() + "_synth");
  std::vector<BlockId> newId(source.blockCount(), kNoBlock);
  for (BlockId b = 0; b < source.blockCount(); ++b)
    if (partOf[b] < 0)
      newId[b] = net.addBlock(source.block(b).name, source.block(b).type);

  std::vector<BlockId> progId(partitions.size(), kNoBlock);
  for (std::size_t k = 0; k < partitions.size(); ++k) {
    const codegen::MergedProgram& mp = mergedPrograms[k];
    // The synthesized type has exactly the used ports; it targets the
    // physical spec.inputs x spec.outputs programmable block.
    std::vector<std::string> ins, outs;
    for (int i = 0; i < mp.inputCount(); ++i)
      ins.push_back("in" + std::to_string(i));
    for (int i = 0; i < mp.outputCount(); ++i)
      outs.push_back("out" + std::to_string(i));
    bool sequential = false;
    for (BlockId b : mp.members)
      sequential = sequential || source.block(b).type->sequential();
    auto type = std::make_shared<const BlockType>(
        "prog_" + std::to_string(options.spec.inputs) + "x" +
            std::to_string(options.spec.outputs) + "_p" + std::to_string(k),
        BlockClass::kCompute, std::move(ins), std::move(outs),
        behavior::toSource(mp.program), sequential, /*programmable=*/true);
    std::string instance = "prog" + std::to_string(k);
    while (net.findBlock(instance)) instance += "_";
    progId[k] = net.addBlock(instance, std::move(type));

    SynthesizedBlock sb;
    sb.instanceName = instance;
    sb.merged = std::move(mergedPrograms[k]);
    if (options.emitC) sb.cSource = codegen::emitC(sb.merged);
    for (BlockId b : sb.merged.members)
      sb.replaced.push_back(source.block(b).name);
    result.blocks.push_back(std::move(sb));
  }

  // Port lookup tables per partition.
  std::vector<std::map<Connection, int>> inPort(partitions.size());
  std::vector<std::map<Connection, int>> outPort(partitions.size());
  for (std::size_t k = 0; k < partitions.size(); ++k) {
    const codegen::MergedProgram& mp = result.blocks[k].merged;
    for (int port = 0; port < mp.inputCount(); ++port)
      for (const Connection& c :
           mp.inputEdges[static_cast<std::size_t>(port)])
        inPort[k][c] = port;
    for (int port = 0; port < mp.outputCount(); ++port)
      for (const Connection& c :
           mp.outputEdges[static_cast<std::size_t>(port)])
        outPort[k][c] = port;
  }

  // Rewire.
  std::set<std::pair<Endpoint, Endpoint>> added;
  for (const Connection& c : source.connections()) {
    const int pf = partOf[c.from.block];
    const int pt = partOf[c.to.block];
    if (pf >= 0 && pf == pt) continue;  // fully internal to one partition
    Endpoint from, to;
    if (pf >= 0) {
      from = Endpoint{progId[static_cast<std::size_t>(pf)],
                      static_cast<std::uint16_t>(
                          outPort[static_cast<std::size_t>(pf)].at(c))};
    } else {
      from = Endpoint{newId[c.from.block], c.from.port};
    }
    if (pt >= 0) {
      to = Endpoint{progId[static_cast<std::size_t>(pt)],
                    static_cast<std::uint16_t>(
                        inPort[static_cast<std::size_t>(pt)].at(c))};
    } else {
      to = Endpoint{newId[c.to.block], c.to.port};
    }
    if (added.emplace(from, to).second) net.connect(from, to);
  }

  result.network = std::move(net);
  return result;
}

const char* toString(CacheOutcome o) {
  switch (o) {
    case CacheOutcome::kDisabled: return "disabled";
    case CacheOutcome::kMiss: return "miss";
    case CacheOutcome::kHit: return "hit";
    case CacheOutcome::kWarmStart: return "warm-start";
  }
  return "?";
}

std::string SynthResult::report() const {
  std::string s;
  s += "Synthesis report (" + run.algorithm + ")\n";
  if (cacheOutcome != CacheOutcome::kDisabled)
    s += "  cache: " + std::string(toString(cacheOutcome)) + "\n";
  s += "  inner blocks: " + std::to_string(originalInner) + " -> " +
       std::to_string(innerAfter) + " (" +
       std::to_string(programmableBlocks) + " programmable)\n";
  s += "  partitioning time: " + std::to_string(run.seconds * 1000.0) +
       " ms\n";
  for (const SynthesizedBlock& b : blocks) {
    s += "  " + b.instanceName + " <-";
    for (const std::string& r : b.replaced) s += " " + r;
    s += "  [" + std::to_string(b.merged.inputCount()) + " in, " +
         std::to_string(b.merged.outputCount()) + " out]\n";
  }
  return s;
}

}  // namespace eblocks::synth
