// End-to-end synthesis (Figure 2): partition the network, generate merged
// behaviors, and produce the optimized network in which each partition is
// replaced by a programmable block running generated code.
#ifndef EBLOCKS_SYNTH_SYNTHESIZER_H_
#define EBLOCKS_SYNTH_SYNTHESIZER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cache/solution_store.h"
#include "codegen/merge_program.h"
#include "partition/engine.h"
#include "partition/problem.h"
#include "partition/result.h"

namespace eblocks::synth {

/// How the solution cache participated in a synthesis run.
enum class CacheOutcome {
  kDisabled,   ///< no cache attached
  kMiss,       ///< cache consulted, partitioner ran cold, result stored
  kHit,        ///< stored run returned; the partitioner never ran
  kWarmStart,  ///< near-miss incumbent accelerated the partitioner
};

const char* toString(CacheOutcome o);

struct SynthOptions {
  partition::ProgBlockSpec spec;  ///< target programmable block
  /// Registry name of the partitioning algorithm that drives synthesis
  /// ("paredown", "exhaustive", "aggregation", "ladder", or any strategy
  /// added to partition::PartitionerRegistry).  synthesize() throws
  /// std::invalid_argument for unknown names.  With "ladder" the
  /// result's run.degradedTier reports how far the deadline let the
  /// degradation ladder climb (partition/ladder.h); ladder runs are
  /// deliberately never stored in the cache.
  std::string algorithm = "paredown";
  /// Engine knobs forwarded to the selected strategy: time limit, worker
  /// threads, and the PareDown seeding of exhaustive search (on by
  /// default, so `algorithm = "exhaustive"` starts its branch-and-bound
  /// from the heuristic's solution).
  partition::EngineOptions engine;
  bool emitC = true;  ///< produce C sources per block
  /// Optional solution cache.  When attached, synthesize() asks it for a
  /// stored run first (an exact hit skips the partitioner entirely; the
  /// result is still verified and is bit-identical to a fresh run), seeds
  /// the engine's initialIncumbent from a near miss on a miss, and stores
  /// completed cacheable runs afterwards.  Shared so the shell, tests,
  /// and benches can hold one store across many synthesize() calls.
  std::shared_ptr<cache::SolutionStore> cache;
};

/// One synthesized programmable block.
struct SynthesizedBlock {
  std::string instanceName;           ///< name in the synthesized network
  codegen::MergedProgram merged;      ///< behavior + port maps
  std::string cSource;                ///< generated C (empty if !emitC)
  std::vector<std::string> replaced;  ///< names of absorbed blocks
};

/// The synthesis result: the optimized network plus per-block programs and
/// the metrics the paper's tables report.
struct SynthResult {
  Network network;                 ///< optimized network
  partition::PartitionRun run;     ///< partitioning record
  std::vector<SynthesizedBlock> blocks;
  int originalInner = 0;
  int innerAfter = 0;              ///< Table "Inner Blocks (Total)"
  int programmableBlocks = 0;      ///< Table "Inner Blocks (Prog.)"
  /// What the solution cache did for this run (kDisabled without one).
  CacheOutcome cacheOutcome = CacheOutcome::kDisabled;

  /// Human-readable synthesis report.
  std::string report() const;
};

/// Runs the full pipeline.  Throws std::invalid_argument when the source
/// network fails validation, and std::logic_error if the chosen algorithm
/// produces an unverifiable partitioning (internal error by construction).
SynthResult synthesize(const Network& source, const SynthOptions& options = {});

}  // namespace eblocks::synth

#endif  // EBLOCKS_SYNTH_SYNTHESIZER_H_
