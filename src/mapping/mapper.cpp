#include "mapping/mapper.h"

#include <algorithm>
#include <chrono>

namespace eblocks::mapping {

namespace {

class Backtracker {
 public:
  Backtracker(const Network& logical, const Topology& topo,
              const MappingOptions& options)
      : net_(logical),
        topo_(topo),
        options_(options),
        deadline_(options.timeLimitSeconds > 0
                      ? std::chrono::steady_clock::now() +
                            std::chrono::duration_cast<
                                std::chrono::steady_clock::duration>(
                                std::chrono::duration<double>(
                                    options.timeLimitSeconds))
                      : std::chrono::steady_clock::time_point::max()) {}

  std::optional<Mapping> run() {
    const std::size_t n = net_.blockCount();
    if (n > topo_.nodeCount()) return std::nullopt;
    placement_.assign(n, kNoPhys);
    nodeUsed_.assign(topo_.nodeCount(), 0);
    linkUsed_.assign(topo_.links().size(), 0);
    cableOf_.assign(net_.connections().size(), 0);

    // Apply pins.
    for (const auto& [block, phys] : options_.pinned) {
      if (block >= n || phys >= topo_.nodeCount()) return std::nullopt;
      if (nodeUsed_[phys]) return std::nullopt;  // two blocks, one spot
      placement_[block] = phys;
      nodeUsed_[phys] = 1;
    }

    // Assignment order: unpinned blocks, most-connected first (classic
    // most-constrained-variable heuristic).
    for (BlockId b = 0; b < n; ++b)
      if (placement_[b] == kNoPhys) order_.push_back(b);
    std::stable_sort(order_.begin(), order_.end(), [&](BlockId a, BlockId b) {
      return net_.indegree(a) + net_.outdegree(a) >
             net_.indegree(b) + net_.outdegree(b);
    });

    if (!assign(0)) return std::nullopt;
    if (!routeConnections()) return std::nullopt;  // defensive; must hold

    Mapping m;
    m.placement = std::move(placement_);
    m.cableOf = std::move(cableOf_);
    m.explored = explored_;
    return m;
  }

 private:
  bool timeExpired() {
    if (timedOut_) return true;
    if ((explored_ & 0x3ff) == 0 &&
        std::chrono::steady_clock::now() > deadline_)
      timedOut_ = true;
    return timedOut_;
  }

  /// True when placing `b` at `phys` keeps all constraints satisfiable for
  /// the connections whose two endpoints are now both placed.
  bool feasible(BlockId b, PhysId phys) {
    const PhysicalNode& node = topo_.node(phys);
    if (net_.indegree(b) > node.inputs) return false;
    if (net_.outdegree(b) > node.outputs) return false;
    // Every already-placed neighbor needs a free cable on the right route.
    for (const Connection& c : net_.inputsOf(b)) {
      const PhysId src = placement_[c.from.block];
      if (src != kNoPhys && countFreeCables(src, phys) == 0) return false;
    }
    for (const Connection& c : net_.outputsOf(b)) {
      const PhysId dst = placement_[c.to.block];
      if (dst != kNoPhys && countFreeCables(phys, dst) == 0) return false;
    }
    return true;
  }

  int countFreeCables(PhysId from, PhysId to) const {
    int free = 0;
    for (std::size_t li : topo_.linksFrom(from))
      if (topo_.links()[li].to == to && !linkUsed_[li]) ++free;
    return free;
  }

  /// Claims one free cable from->to; returns its index.
  std::size_t claimCable(PhysId from, PhysId to) {
    for (std::size_t li : topo_.linksFrom(from))
      if (topo_.links()[li].to == to && !linkUsed_[li]) {
        linkUsed_[li] = 1;
        return li;
      }
    return static_cast<std::size_t>(-1);
  }

  bool assign(std::size_t idx) {
    ++explored_;
    if (timeExpired()) return false;
    if (idx == order_.size()) return true;
    const BlockId b = order_[idx];
    for (PhysId phys = 0; phys < topo_.nodeCount(); ++phys) {
      if (nodeUsed_[phys] || !feasible(b, phys)) continue;
      // Claim the node and the cables to already-placed neighbors.
      placement_[b] = phys;
      nodeUsed_[phys] = 1;
      std::vector<std::size_t> claimed;
      bool ok = true;
      for (const Connection& c : net_.inputsOf(b)) {
        const PhysId src = placement_[c.from.block];
        if (src == kNoPhys || c.from.block == b) continue;
        const std::size_t li = claimCable(src, phys);
        if (li == static_cast<std::size_t>(-1)) { ok = false; break; }
        claimed.push_back(li);
      }
      if (ok)
        for (const Connection& c : net_.outputsOf(b)) {
          const PhysId dst = placement_[c.to.block];
          if (dst == kNoPhys || c.to.block == b) continue;
          const std::size_t li = claimCable(phys, dst);
          if (li == static_cast<std::size_t>(-1)) { ok = false; break; }
          claimed.push_back(li);
        }
      if (ok && assign(idx + 1)) return true;
      for (std::size_t li : claimed) linkUsed_[li] = 0;
      nodeUsed_[phys] = 0;
      placement_[b] = kNoPhys;
      if (timedOut_) return false;
    }
    return false;
  }

  /// After a full placement, bind each logical connection to a concrete
  /// cable index (the search already guaranteed capacity).
  bool routeConnections() {
    std::fill(linkUsed_.begin(), linkUsed_.end(), 0);
    const auto connections = net_.connections();
    for (std::size_t i = 0; i < connections.size(); ++i) {
      const PhysId from = placement_[connections[i].from.block];
      const PhysId to = placement_[connections[i].to.block];
      const std::size_t li = claimCable(from, to);
      if (li == static_cast<std::size_t>(-1)) return false;
      cableOf_[i] = li;
    }
    return true;
  }

  const Network& net_;
  const Topology& topo_;
  MappingOptions options_;
  std::vector<PhysId> placement_;
  std::vector<char> nodeUsed_;
  std::vector<char> linkUsed_;
  std::vector<std::size_t> cableOf_;
  std::vector<BlockId> order_;
  std::uint64_t explored_ = 0;
  bool timedOut_ = false;
  std::chrono::steady_clock::time_point deadline_;
};

}  // namespace

std::optional<Mapping> mapNetwork(const Network& logical,
                                  const Topology& topo,
                                  const MappingOptions& options) {
  Backtracker search(logical, topo, options);
  return search.run();
}

std::vector<std::string> verifyMapping(const Network& logical,
                                       const Topology& topo,
                                       const Mapping& mapping) {
  std::vector<std::string> problems;
  if (mapping.placement.size() != logical.blockCount()) {
    problems.push_back("placement size mismatch");
    return problems;
  }
  std::vector<int> hosted(topo.nodeCount(), 0);
  for (BlockId b = 0; b < logical.blockCount(); ++b) {
    const PhysId p = mapping.placement[b];
    if (p == kNoPhys || p >= topo.nodeCount()) {
      problems.push_back("block '" + logical.block(b).name + "' unplaced");
      continue;
    }
    if (++hosted[p] > 1)
      problems.push_back("physical node '" + topo.node(p).name +
                         "' hosts more than one block");
    if (logical.indegree(b) > topo.node(p).inputs ||
        logical.outdegree(b) > topo.node(p).outputs)
      problems.push_back("block '" + logical.block(b).name +
                         "' exceeds the ports of '" + topo.node(p).name +
                         "'");
  }
  const auto connections = logical.connections();
  if (mapping.cableOf.size() != connections.size()) {
    problems.push_back("cable assignment size mismatch");
    return problems;
  }
  std::vector<int> cableLoad(topo.links().size(), 0);
  for (std::size_t i = 0; i < connections.size(); ++i) {
    const std::size_t li = mapping.cableOf[i];
    if (li >= topo.links().size()) {
      problems.push_back("connection " + std::to_string(i) +
                         " routed over a nonexistent cable");
      continue;
    }
    const PhysicalLink& link = topo.links()[li];
    if (link.from != mapping.placement[connections[i].from.block] ||
        link.to != mapping.placement[connections[i].to.block])
      problems.push_back("connection " + std::to_string(i) +
                         " routed over a cable that joins other nodes");
    if (++cableLoad[li] > 1)
      problems.push_back("cable " + std::to_string(li) +
                         " carries more than one signal");
  }
  return problems;
}

}  // namespace eblocks::mapping
