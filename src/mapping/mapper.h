// Placement of a (synthesized) network onto a physical topology.
//
// Every logical block goes to a distinct physical node; fixed devices
// (sensors, outputs) can be pinned to the installation points where they
// physically are; every logical connection must ride a distinct physical
// cable from source node to destination node.  This is a subgraph
// monomorphism search (NP-hard), solved by backtracking with
// most-constrained-first ordering and forward checking on port budgets and
// cable capacities -- adequate for building-scale deployments.
#ifndef EBLOCKS_MAPPING_MAPPER_H_
#define EBLOCKS_MAPPING_MAPPER_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/network.h"
#include "mapping/topology.h"

namespace eblocks::mapping {

struct MappingOptions {
  /// Pre-assigned placements (typically sensors and output devices, which
  /// are physically installed at known nodes).
  std::map<BlockId, PhysId> pinned;
  /// Wall-clock budget; 0 disables.
  double timeLimitSeconds = 0.0;
};

struct Mapping {
  /// placement[logical block] = physical node (kNoPhys if unmapped).
  std::vector<PhysId> placement;
  /// cableOf[logical connection index] = index into Topology::links().
  std::vector<std::size_t> cableOf;
  std::uint64_t explored = 0;
  bool timedOut = false;
};

/// Finds a feasible placement, or nullopt when none exists (or the time
/// limit expired; check Mapping::timedOut is unavailable then -- a timeout
/// simply reports infeasible-within-budget via nullopt).
std::optional<Mapping> mapNetwork(const Network& logical,
                                  const Topology& topo,
                                  const MappingOptions& options = {});

/// Independent constraint check; empty result means valid.
std::vector<std::string> verifyMapping(const Network& logical,
                                       const Topology& topo,
                                       const Mapping& mapping);

}  // namespace eblocks::mapping

#endif  // EBLOCKS_MAPPING_MAPPER_H_
