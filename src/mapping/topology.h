// Physical deployment topologies -- the substrate for the paper's second
// future-work item (Section 6): "extend our methods to map to an existing
// underlying network of sensor nodes".
//
// A topology is the already-installed hardware: physical nodes (wall boxes
// with a programmable block of some port size, or fixed sensor/output
// devices) and the point-to-point cables between them.  Synthesis output
// must then be *placed*: every logical block onto a distinct physical
// node, every logical connection onto an existing cable.
#ifndef EBLOCKS_MAPPING_TOPOLOGY_H_
#define EBLOCKS_MAPPING_TOPOLOGY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace eblocks::mapping {

using PhysId = std::uint32_t;
inline constexpr PhysId kNoPhys = 0xffffffffu;

/// A physical installation point.
struct PhysicalNode {
  std::string name;
  int inputs = 2;   ///< input connectors available
  int outputs = 2;  ///< output connectors available
};

/// A directed point-to-point cable; carries one signal.
struct PhysicalLink {
  PhysId from = kNoPhys;
  PhysId to = kNoPhys;
  friend auto operator<=>(const PhysicalLink&, const PhysicalLink&) = default;
};

class Topology {
 public:
  explicit Topology(std::string name = "site") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  PhysId addNode(std::string nodeName, int inputs, int outputs);
  /// Adds a one-way cable.  Duplicates are allowed (parallel cables).
  void addLink(PhysId from, PhysId to);
  /// Adds cables both ways (a pulled cable can be used in either
  /// direction, but each direction is a separate conductor pair here).
  void addDuplexLink(PhysId a, PhysId b);

  std::size_t nodeCount() const { return nodes_.size(); }
  const PhysicalNode& node(PhysId id) const { return nodes_.at(id); }
  const std::vector<PhysicalLink>& links() const { return links_; }
  std::optional<PhysId> findNode(const std::string& nodeName) const;

  /// Indices into links() of the cables leaving / arriving at a node.
  const std::vector<std::size_t>& linksFrom(PhysId id) const {
    return outLinks_.at(id);
  }
  const std::vector<std::size_t>& linksInto(PhysId id) const {
    return inLinks_.at(id);
  }

  // --- convenience builders ------------------------------------------------
  /// n nodes in a line with duplex cables between neighbors.
  static Topology line(int n, int inputs = 2, int outputs = 2);
  /// n nodes in a ring with duplex cables between neighbors.
  static Topology ring(int n, int inputs = 2, int outputs = 2);
  /// rows x cols grid with duplex cables between 4-neighbors.
  static Topology grid(int rows, int cols, int inputs = 2, int outputs = 2);

 private:
  std::string name_;
  std::vector<PhysicalNode> nodes_;
  std::vector<PhysicalLink> links_;
  std::vector<std::vector<std::size_t>> outLinks_, inLinks_;
};

}  // namespace eblocks::mapping

#endif  // EBLOCKS_MAPPING_TOPOLOGY_H_
