#include "mapping/topology.h"

#include <stdexcept>

namespace eblocks::mapping {

PhysId Topology::addNode(std::string nodeName, int inputs, int outputs) {
  if (inputs < 0 || outputs < 0)
    throw std::invalid_argument("Topology::addNode: negative port count");
  for (const PhysicalNode& n : nodes_)
    if (n.name == nodeName)
      throw std::invalid_argument("Topology::addNode: duplicate name " +
                                  nodeName);
  const PhysId id = static_cast<PhysId>(nodes_.size());
  nodes_.push_back(PhysicalNode{std::move(nodeName), inputs, outputs});
  outLinks_.emplace_back();
  inLinks_.emplace_back();
  return id;
}

void Topology::addLink(PhysId from, PhysId to) {
  if (from >= nodes_.size() || to >= nodes_.size())
    throw std::invalid_argument("Topology::addLink: node id out of range");
  if (from == to)
    throw std::invalid_argument("Topology::addLink: self link");
  outLinks_[from].push_back(links_.size());
  inLinks_[to].push_back(links_.size());
  links_.push_back(PhysicalLink{from, to});
}

void Topology::addDuplexLink(PhysId a, PhysId b) {
  addLink(a, b);
  addLink(b, a);
}

std::optional<PhysId> Topology::findNode(const std::string& nodeName) const {
  for (PhysId id = 0; id < nodes_.size(); ++id)
    if (nodes_[id].name == nodeName) return id;
  return std::nullopt;
}

Topology Topology::line(int n, int inputs, int outputs) {
  Topology t("line" + std::to_string(n));
  for (int i = 0; i < n; ++i)
    t.addNode("n" + std::to_string(i), inputs, outputs);
  for (int i = 0; i + 1 < n; ++i)
    t.addDuplexLink(static_cast<PhysId>(i), static_cast<PhysId>(i + 1));
  return t;
}

Topology Topology::ring(int n, int inputs, int outputs) {
  Topology t = line(n, inputs, outputs);
  if (n > 2)
    t.addDuplexLink(static_cast<PhysId>(n - 1), 0);
  return t;
}

Topology Topology::grid(int rows, int cols, int inputs, int outputs) {
  Topology t("grid" + std::to_string(rows) + "x" + std::to_string(cols));
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      t.addNode("n" + std::to_string(r) + "_" + std::to_string(c), inputs,
                outputs);
  const auto id = [cols](int r, int c) {
    return static_cast<PhysId>(r * cols + c);
  };
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) t.addDuplexLink(id(r, c), id(r, c + 1));
      if (r + 1 < rows) t.addDuplexLink(id(r, c), id(r + 1, c));
    }
  return t;
}

}  // namespace eblocks::mapping
