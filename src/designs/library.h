// The design library: the 15 real eBlock systems of Table 1 plus the
// Figure-1 and Figure-5 systems.
//
// The paper's designs come from the public eBlocks "Yes/No systems" list
// [8], which is no longer available; each network here is a reconstruction
// guided by the design name, the block families the paper describes, and
// the Table-1 inner-block counts (which we match exactly).  Where the
// partitioning outcome is structurally forced (or-chains, convergent
// pairs), the reconstructions also reproduce the paper's post-partitioning
// numbers; deviations are recorded in docs/benchmarks.md.
#ifndef EBLOCKS_DESIGNS_LIBRARY_H_
#define EBLOCKS_DESIGNS_LIBRARY_H_

#include <string>
#include <vector>

#include "core/network.h"

namespace eblocks::designs {

/// Expected Table-1 figures for a library design ( -1 = not reported).
struct PaperRow {
  int exhaustiveTotal = -1;
  int exhaustiveProg = -1;
  int paredownTotal = -1;
  int paredownProg = -1;
};

struct DesignEntry {
  std::string name;
  Network network;
  int innerBlocks = 0;  ///< Table 1 "Inner Blocks (Original)"
  PaperRow paper;       ///< the paper's reported results
};

/// All 15 systems in Table-1 order.
std::vector<DesignEntry> designLibrary();

/// A single design by Table-1 name; throws std::out_of_range.
Network byName(const std::string& name);

/// The Figure-5 walkthrough graph (Podium Timer 3).  Blocks are added in
/// paper-node order: node k of Figure 5 is BlockId k-1 (node 1 = sensor =
/// id 0; nodes 10..12 = outputs = ids 9..11).
Network figure5();

/// The Figure-1 garage-open-at-night system (quickstart example).
Network garageOpenAtNight();

}  // namespace eblocks::designs

#endif  // EBLOCKS_DESIGNS_LIBRARY_H_
