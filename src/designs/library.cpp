#include "designs/library.h"

#include <stdexcept>

#include "blocks/catalog.h"

namespace eblocks::designs {

namespace {

using blocks::defaultCatalog;

/// or-chain helper: `stages` two-input OR blocks, each fed by one fresh
/// sensor (the first by two), folding into a single output block.  No
/// subset of the chain ever fits a 2x2 programmable block, which makes
/// these designs partition-proof (paper rows with Prog = 0).
Network orChain(const std::string& name, int stages,
                const std::string& sensorType, const std::string& outType) {
  const auto& cat = defaultCatalog();
  Network net(name);
  const BlockId s0 = net.addBlock("sensor0", cat.get(sensorType));
  BlockId prev = net.addBlock("or1", cat.or2());
  net.connect(s0, 0, prev, 0);
  {
    const BlockId s1 = net.addBlock("sensor1", cat.get(sensorType));
    net.connect(s1, 0, prev, 1);
  }
  for (int i = 2; i <= stages; ++i) {
    const BlockId ori = net.addBlock("or" + std::to_string(i), cat.or2());
    net.connect(prev, 0, ori, 0);
    const BlockId si = net.addBlock("sensor" + std::to_string(i),
                                    cat.get(sensorType));
    net.connect(si, 0, ori, 1);
    prev = ori;
  }
  const BlockId out = net.addBlock("alert", cat.get(outType));
  net.connect(prev, 0, out, 0);
  return net;
}

Network ignitionIlluminator() {
  const auto& cat = defaultCatalog();
  Network net("Ignition Illuminator");
  const BlockId ign = net.addBlock("ignition", cat.contactSwitch());
  const BlockId door = net.addBlock("door", cat.contactSwitch());
  const BlockId inv = net.addBlock("ign_off", cat.inverter());
  const BlockId both = net.addBlock("door_while_off", cat.and2());
  const BlockId lamp = net.addBlock("cabin_light", cat.led());
  net.connect(ign, 0, inv, 0);
  net.connect(inv, 0, both, 0);
  net.connect(door, 0, both, 1);
  net.connect(both, 0, lamp, 0);
  return net;
}

Network nightLampController() {
  const auto& cat = defaultCatalog();
  Network net("Night Lamp Controller");
  const BlockId light = net.addBlock("daylight", cat.lightSensor());
  const BlockId motion = net.addBlock("motion", cat.motionSensor());
  const BlockId dark = net.addBlock("is_dark", cat.inverter());
  const BlockId on = net.addBlock("motion_at_dark", cat.and2());
  const BlockId lamp = net.addBlock("lamp", cat.relay());
  net.connect(light, 0, dark, 0);
  net.connect(dark, 0, on, 0);
  net.connect(motion, 0, on, 1);
  net.connect(on, 0, lamp, 0);
  return net;
}

Network entryGateDetector() {
  const auto& cat = defaultCatalog();
  Network net("Entry Gate Detector");
  const BlockId gate = net.addBlock("gate_magnet", cat.magneticSensor());
  const BlockId tog = net.addBlock("gate_open", cat.toggle());
  const BlockId hold = net.addBlock("hold_alert", cat.prolonger(5));
  const BlockId bell = net.addBlock("chime", cat.beeper());
  net.connect(gate, 0, tog, 0);
  net.connect(tog, 0, hold, 0);
  net.connect(hold, 0, bell, 0);
  return net;
}

Network carpoolAlert() {
  const auto& cat = defaultCatalog();
  Network net("Carpool Alert");
  const BlockId arrive = net.addBlock("driveway_button", cat.button());
  const BlockId home = net.addBlock("at_home", cat.contactSwitch());
  const BlockId hold = net.addBlock("hold", cat.prolonger(10));
  const BlockId gate = net.addBlock("alert_if_home", cat.and2());
  const BlockId buzz = net.addBlock("buzzer", cat.beeper());
  net.connect(arrive, 0, hold, 0);
  net.connect(hold, 0, gate, 0);
  net.connect(home, 0, gate, 1);
  net.connect(gate, 0, buzz, 0);
  return net;
}

Network cafeteriaFoodAlert() {
  const auto& cat = defaultCatalog();
  Network net("Cafeteria Food Alert");
  const BlockId lights = net.addBlock("kitchen_lights", cat.lightSensor());
  const BlockId motion = net.addBlock("counter_motion", cat.motionSensor());
  const BlockId lit = net.addBlock("kitchen_active", cat.buffer());
  const BlockId seen = net.addBlock("staff_seen", cat.trip());
  const BlockId both = net.addBlock("food_out", cat.and2());
  const BlockId sign = net.addBlock("sign", cat.led());
  net.connect(lights, 0, lit, 0);
  net.connect(motion, 0, seen, 0);
  net.connect(lit, 0, both, 0);
  net.connect(seen, 0, both, 1);
  net.connect(both, 0, sign, 0);
  return net;
}

Network podiumTimer2() {
  const auto& cat = defaultCatalog();
  Network net("Podium Timer 2");
  const BlockId start = net.addBlock("start_button", cat.button());
  const BlockId run = net.addBlock("running", cat.toggle());
  const BlockId wait = net.addBlock("talk_time", cat.delay(8));
  const BlockId hold = net.addBlock("hold_warning", cat.prolonger(4));
  const BlockId lampY = net.addBlock("warning_lamp", cat.led());
  net.connect(start, 0, run, 0);
  net.connect(run, 0, wait, 0);
  net.connect(wait, 0, hold, 0);
  net.connect(hold, 0, lampY, 0);
  return net;
}

Network anyWindowOpenAlarm() {
  return orChain("Any Window Open Alarm", 3, "contact_switch", "beeper");
}

Network twoButtonLight() {
  const auto& cat = defaultCatalog();
  Network net("Two Button Light");
  const BlockId b1 = net.addBlock("button_door", cat.button());
  const BlockId b2 = net.addBlock("button_bed", cat.button());
  const BlockId either = net.addBlock("either", cat.or2());
  const BlockId tog = net.addBlock("light_state", cat.toggle());
  const BlockId inv = net.addBlock("light_off_state", cat.inverter());
  const BlockId lamp = net.addBlock("lamp", cat.led());
  const BlockId pilot = net.addBlock("pilot", cat.led());
  net.connect(b1, 0, either, 0);
  net.connect(b2, 0, either, 1);
  net.connect(either, 0, tog, 0);
  net.connect(tog, 0, inv, 0);
  net.connect(tog, 0, lamp, 0);
  net.connect(inv, 0, pilot, 0);
  return net;
}

Network doorbellExtender(int stages, const std::string& name) {
  return orChain(name, stages, "button", "beeper");
}

Network noiseAtNightDetector() {
  // Four monitored rooms, each: or2(two sound sensors) -> prolonger -> lamp
  // (a convergent pair the partitioner should merge), plus two hallway
  // or2's that cannot merge with anything.  10 inner blocks; both
  // algorithms settle at 6 total / 4 programmable, the paper's row.
  const auto& cat = defaultCatalog();
  Network net("Noise At Night Detector");
  for (int room = 0; room < 4; ++room) {
    const std::string r = std::to_string(room);
    const BlockId sa = net.addBlock("mic_a_room" + r, cat.soundSensor());
    const BlockId sb = net.addBlock("mic_b_room" + r, cat.soundSensor());
    const BlockId any = net.addBlock("noise_room" + r, cat.or2());
    const BlockId hold = net.addBlock("hold_room" + r, cat.prolonger(6));
    const BlockId lamp = net.addBlock("lamp_room" + r, cat.led());
    net.connect(sa, 0, any, 0);
    net.connect(sb, 0, any, 1);
    net.connect(any, 0, hold, 0);
    net.connect(hold, 0, lamp, 0);
  }
  for (int hall = 0; hall < 2; ++hall) {
    const std::string h = std::to_string(hall);
    const BlockId sa = net.addBlock("mic_a_hall" + h, cat.soundSensor());
    const BlockId sb = net.addBlock("mic_b_hall" + h, cat.soundSensor());
    const BlockId any = net.addBlock("noise_hall" + h, cat.or2());
    const BlockId lamp = net.addBlock("lamp_hall" + h, cat.led());
    net.connect(sa, 0, any, 0);
    net.connect(sb, 0, any, 1);
    net.connect(any, 0, lamp, 0);
  }
  return net;
}

Network twoZoneSecurity() {
  // Two zones, each: or-chain over three entry sensors, an arm switch, and
  // an alarm pipeline (grace delay -> reset-able latch -> siren prolonger
  // -> chirp-limited pulse) of four mergeable blocks; a master section
  // qualifies "any zone" with night-time and drives a hall lamp through
  // its own four-block pipeline.  19 inner blocks; the three four-block
  // pipelines each fit a 2x2 programmable block (2 in / 2 out), which is
  // what lands this design on the paper's 10-total / 3-programmable row.
  const auto& cat = defaultCatalog();
  Network net("Two-Zone Security");
  const BlockId reset = net.addBlock("reset_button", cat.button());
  std::vector<BlockId> zoneOut;
  for (int z = 0; z < 2; ++z) {
    const std::string s = std::to_string(z);
    const BlockId e0 = net.addBlock("entry0_z" + s, cat.contactSwitch());
    const BlockId e1 = net.addBlock("entry1_z" + s, cat.contactSwitch());
    const BlockId e2 = net.addBlock("entry2_z" + s, cat.motionSensor());
    const BlockId arm = net.addBlock("arm_z" + s, cat.contactSwitch());
    const BlockId or1 = net.addBlock("any01_z" + s, cat.or2());
    const BlockId or2b = net.addBlock("any_z" + s, cat.or2());
    const BlockId gate = net.addBlock("armed_breach_z" + s, cat.and2());
    const BlockId grace = net.addBlock("grace_z" + s, cat.delay(3));
    const BlockId latch = net.addBlock("alarm_latch_z" + s, cat.tripReset());
    const BlockId hold = net.addBlock("sound_z" + s, cat.prolonger(8));
    const BlockId chirp = net.addBlock("chirp_z" + s, cat.pulseGen(12));
    const BlockId horn = net.addBlock("horn_z" + s, cat.beeper());
    net.connect(e0, 0, or1, 0);
    net.connect(e1, 0, or1, 1);
    net.connect(or1, 0, or2b, 0);
    net.connect(e2, 0, or2b, 1);
    net.connect(or2b, 0, gate, 0);
    net.connect(arm, 0, gate, 1);
    net.connect(gate, 0, grace, 0);
    net.connect(grace, 0, latch, 0);
    net.connect(reset, 0, latch, 1);
    net.connect(latch, 0, hold, 0);
    net.connect(hold, 0, chirp, 0);
    net.connect(chirp, 0, horn, 0);
    zoneOut.push_back(latch);
  }
  // Master: any zone in alarm, qualified by night, drives the hall lamp
  // through a hold + chirp pipeline of its own.
  const BlockId anyZone = net.addBlock("any_zone", cat.or2());
  net.connect(zoneOut[0], 0, anyZone, 0);
  net.connect(zoneOut[1], 0, anyZone, 1);
  const BlockId daylight = net.addBlock("daylight", cat.lightSensor());
  const BlockId night = net.addBlock("is_night", cat.inverter());
  const BlockId nightAlarm = net.addBlock("night_alarm", cat.and2());
  const BlockId hallHold = net.addBlock("hall_hold", cat.prolonger(5));
  const BlockId hallChirp = net.addBlock("hall_chirp", cat.pulseGen(10));
  const BlockId hallLamp = net.addBlock("hall_lamp", cat.led());
  net.connect(daylight, 0, night, 0);
  net.connect(anyZone, 0, nightAlarm, 0);
  net.connect(night, 0, nightAlarm, 1);
  net.connect(nightAlarm, 0, hallHold, 0);
  net.connect(hallHold, 0, hallChirp, 0);
  net.connect(hallChirp, 0, hallLamp, 0);
  return net;
}

Network motionOnPropertyAlert() {
  return orChain("Motion on Property Alert", 19, "motion_sensor", "beeper");
}

Network timedPassage() {
  // Four three-stage timed corridors plus one two-stage pair (mergeable
  // motifs, 14 blocks) and a nine-stage or-chain over passage sensors
  // (unmergeable, 9 blocks): 23 inner blocks total.
  const auto& cat = defaultCatalog();
  Network net("Timed Passage");
  for (int c = 0; c < 4; ++c) {
    const std::string s = std::to_string(c);
    const BlockId enter = net.addBlock("enter" + s, cat.motionSensor());
    const BlockId seen = net.addBlock("seen" + s, cat.trip());
    const BlockId wait = net.addBlock("grace" + s, cat.delay(6));
    const BlockId hold = net.addBlock("hold" + s, cat.prolonger(4));
    const BlockId lamp = net.addBlock("lamp" + s, cat.led());
    net.connect(enter, 0, seen, 0);
    net.connect(seen, 0, wait, 0);
    net.connect(wait, 0, hold, 0);
    net.connect(hold, 0, lamp, 0);
  }
  {
    const BlockId gate = net.addBlock("gate_contact", cat.contactSwitch());
    const BlockId tog = net.addBlock("gate_state", cat.toggle());
    const BlockId hold = net.addBlock("gate_hold", cat.prolonger(5));
    const BlockId lamp = net.addBlock("gate_lamp", cat.led());
    net.connect(gate, 0, tog, 0);
    net.connect(tog, 0, hold, 0);
    net.connect(hold, 0, lamp, 0);
  }
  {
    // Passage occupancy chain: nine or2 stages over ten sensors.
    Network chain = orChain("chain", 9, "motion_sensor", "beeper");
    // Splice the chain into this network with prefixed names.
    std::vector<BlockId> map(chain.blockCount());
    for (BlockId b = 0; b < chain.blockCount(); ++b)
      map[b] = net.addBlock("passage_" + chain.block(b).name,
                            chain.block(b).type);
    for (const Connection& c : chain.connections())
      net.connect(map[c.from.block], c.from.port, map[c.to.block], c.to.port);
  }
  return net;
}

DesignEntry entry(Network net, int innerBlocks, PaperRow paper) {
  DesignEntry e;
  e.name = net.name();
  e.innerBlocks = innerBlocks;
  e.paper = paper;
  e.network = std::move(net);
  return e;
}

}  // namespace

Network figure5() {
  // Recovered Figure-5 topology (see docs/pipeline.md):
  //   1 -> 2,5;  2 -> 4,5;  4 -> 3;  3 -> 7;  5 -> 6;
  //   6 -> 8,9;  7 -> 8,10;  8 -> 11;  9 -> 12.
  // Paper node k = BlockId k-1.
  const auto& cat = defaultCatalog();
  Network net("Podium Timer 3");
  const BlockId n1 = net.addBlock("start_button", cat.button());     // 1
  const BlockId n2 = net.addBlock("running", cat.toggle());          // 2
  const BlockId n3 = net.addBlock("limit_time", cat.delay(4));       // 3
  const BlockId n4 = net.addBlock("warn_time", cat.delay(6));        // 4
  // Node 5 must be a hazard-free gate for the button/toggle reconvergence:
  // or2 is monotone under (button, toggle(button)) transitions, so the
  // distributed network cannot latch a packet-race glitch that the merged
  // (atomic, level-ordered) programmable block would not show.
  const BlockId n5 = net.addBlock("active", cat.or2());              // 5
  const BlockId n6 = net.addBlock("blink", cat.pulseGen(3));         // 6
  const BlockId n7 = net.addBlock("warned", cat.trip());             // 7
  const BlockId n8 = net.addBlock("overrun", cat.and2());            // 8
  const BlockId n9 = net.addBlock("steady", cat.inverter());         // 9
  const BlockId n10 = net.addBlock("green_led", cat.led());          // 10
  const BlockId n11 = net.addBlock("yellow_led", cat.led());         // 11
  const BlockId n12 = net.addBlock("red_led", cat.led());            // 12
  net.connect(n1, 0, n2, 0);
  net.connect(n1, 0, n5, 0);
  net.connect(n2, 0, n4, 0);
  net.connect(n2, 0, n5, 1);
  net.connect(n4, 0, n3, 0);
  net.connect(n3, 0, n7, 0);
  net.connect(n5, 0, n6, 0);
  net.connect(n6, 0, n8, 0);
  net.connect(n6, 0, n9, 0);
  net.connect(n7, 0, n8, 1);
  net.connect(n7, 0, n10, 0);
  net.connect(n8, 0, n11, 0);
  net.connect(n9, 0, n12, 0);
  return net;
}

Network garageOpenAtNight() {
  const auto& cat = defaultCatalog();
  Network net("Garage Open At Night");
  const BlockId door = net.addBlock("garage_door", cat.contactSwitch());
  const BlockId light = net.addBlock("daylight", cat.lightSensor());
  const BlockId dark = net.addBlock("is_dark", cat.inverter());
  const BlockId bad = net.addBlock("open_at_night", cat.and2());
  const BlockId lamp = net.addBlock("bedroom_led", cat.led());
  net.connect(light, 0, dark, 0);
  net.connect(door, 0, bad, 0);
  net.connect(dark, 0, bad, 1);
  net.connect(bad, 0, lamp, 0);
  return net;
}

std::vector<DesignEntry> designLibrary() {
  std::vector<DesignEntry> lib;
  lib.push_back(entry(ignitionIlluminator(), 2, {1, 1, 1, 1}));
  lib.push_back(entry(nightLampController(), 2, {1, 1, 1, 1}));
  lib.push_back(entry(entryGateDetector(), 2, {1, 1, 1, 1}));
  lib.push_back(entry(carpoolAlert(), 2, {1, 1, 1, 1}));
  lib.push_back(entry(cafeteriaFoodAlert(), 3, {1, 1, 1, 1}));
  lib.push_back(entry(podiumTimer2(), 3, {1, 1, 1, 1}));
  lib.push_back(entry(anyWindowOpenAlarm(), 3, {3, 0, 3, 0}));
  lib.push_back(entry(twoButtonLight(), 3, {3, 1, 3, 1}));
  lib.push_back(entry(doorbellExtender(5, "Doorbell Extender 1"), 5,
                      {5, 0, 5, 0}));
  lib.push_back(entry(doorbellExtender(6, "Doorbell Extender 2"), 6,
                      {6, 0, 6, 0}));
  lib.push_back(entry(figure5(), 8, {3, 3, 3, 2}));
  lib.push_back(entry(noiseAtNightDetector(), 10, {6, 4, 6, 4}));
  lib.push_back(entry(twoZoneSecurity(), 19, {-1, -1, 10, 3}));
  lib.push_back(entry(motionOnPropertyAlert(), 19, {-1, -1, 19, 0}));
  lib.push_back(entry(timedPassage(), 23, {-1, -1, 14, 5}));
  return lib;
}

Network byName(const std::string& name) {
  for (DesignEntry& e : designLibrary())
    if (e.name == name) return std::move(e.network);
  throw std::out_of_range("designs: no design named '" + name + "'");
}

}  // namespace eblocks::designs
