// Textual netlist format: save/load networks built from catalog types.
//
// Format (line oriented; '#' comments):
//   network <name with spaces allowed>
//   block <instance> <type>
//   connect <src-instance>.<out-port> <dst-instance>.<in-port>
//
// Types are resolved against the catalog (including parameterized families
// like delay_5 or prog_2x2).  Synthesized programmable blocks embed their
// behavior and therefore cannot round-trip through this format; writeNetlist
// rejects them.
#ifndef EBLOCKS_IO_NETLIST_H_
#define EBLOCKS_IO_NETLIST_H_

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "core/network.h"

namespace eblocks::io {

class NetlistError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Serializes `net` to the netlist format.
std::string writeNetlist(const Network& net);

/// Parses a netlist.  Throws NetlistError with a line number on malformed
/// input or unknown block types.
Network readNetlist(const std::string& text);

}  // namespace eblocks::io

#endif  // EBLOCKS_IO_NETLIST_H_
