#include "io/binary.h"

#include <bit>
#include <cstring>
#include <map>
#include <unordered_map>
#include <vector>

#include "blocks/catalog.h"
#include "core/failpoint.h"
#include "io/netlist.h"

namespace eblocks::io {

namespace {

constexpr std::size_t kHeaderSize = 16;   // magic + version + tag + pad + len
constexpr std::size_t kTrailerSize = 8;   // FNV-1a-64 checksum

std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

void putU16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>(v >> 8));
}

void putU32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void putU64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint64_t getU64(std::string_view data, std::size_t off) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data[off + i]))
         << (8 * i);
  return v;
}

/// Interns strings so repeated names (type names, port names) are stored
/// once; ids are assigned in first-use order, so output is deterministic.
class StringTable {
 public:
  std::uint64_t intern(std::string_view s) {
    const auto [it, inserted] = ids_.try_emplace(std::string(s), strings_.size());
    if (inserted) strings_.push_back(it->first);
    return it->second;
  }

  void writeTo(BinaryWriter& w) const {
    w.varint(strings_.size());
    for (const std::string& s : strings_) w.str(s);
  }

 private:
  std::map<std::string, std::uint64_t> ids_;
  std::vector<std::string> strings_;
};

std::vector<std::string> readStringTable(BinaryReader& r) {
  const std::uint64_t count = r.varint();
  // A table can never have more entries than payload bytes remain; this
  // bounds allocation before the (checksum-validated but still possibly
  // adversarial) count is trusted.
  if (count > r.remaining())
    throw BinaryError("binary: string table count exceeds payload size");
  std::vector<std::string> table;
  table.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) table.emplace_back(r.str());
  return table;
}

const std::string& tableAt(const std::vector<std::string>& table,
                           std::uint64_t id) {
  if (id >= table.size())
    throw BinaryError("binary: string reference " + std::to_string(id) +
                      " out of range (table has " +
                      std::to_string(table.size()) + " entries)");
  return table[id];
}

/// True when the catalog resolves `name` to a type interchangeable with
/// `t`, so the frame can reference it by name instead of embedding it.
bool catalogResolvable(const BlockType& t) {
  BlockTypePtr c;
  try {
    c = blocks::defaultCatalog().get(t.name());
  } catch (const std::exception&) {
    return false;
  }
  return c->blockClass() == t.blockClass() &&
         c->inputNames() == t.inputNames() &&
         c->outputNames() == t.outputNames() &&
         c->behaviorSource() == t.behaviorSource() &&
         c->sequential() == t.sequential() &&
         c->programmable() == t.programmable();
}

}  // namespace

// --- BinaryWriter ---------------------------------------------------------

void BinaryWriter::u64(std::uint64_t v) { putU64(payload_, v); }

void BinaryWriter::varint(std::uint64_t v) {
  while (v >= 0x80) {
    payload_.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  payload_.push_back(static_cast<char>(v));
}

void BinaryWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void BinaryWriter::str(std::string_view v) {
  varint(v.size());
  payload_.append(v);
}

std::string BinaryWriter::finish(SectionTag tag, std::uint16_t version) const {
  std::string frame;
  frame.reserve(kHeaderSize + payload_.size() + kTrailerSize);
  putU32(frame, kBinaryMagic);
  putU16(frame, version);
  frame.push_back(static_cast<char>(tag));
  frame.push_back(0);  // reserved
  putU64(frame, payload_.size());
  frame.append(payload_);
  putU64(frame, fnv1a64(frame));
  return frame;
}

// --- BinaryReader ---------------------------------------------------------

BinaryReader::BinaryReader(std::string_view frame, SectionTag expected) {
  if (frame.size() < kHeaderSize + kTrailerSize)
    throw BinaryError("binary: frame truncated (" +
                      std::to_string(frame.size()) + " bytes, minimum " +
                      std::to_string(kHeaderSize + kTrailerSize) + ")");
  std::uint32_t magic = 0;
  std::memcpy(&magic, frame.data(), 4);
  if (magic != kBinaryMagic)
    throw BinaryError("binary: bad magic (not an EBLK frame)");
  const std::uint16_t version =
      static_cast<std::uint16_t>(static_cast<std::uint8_t>(frame[4])) |
      static_cast<std::uint16_t>(static_cast<std::uint8_t>(frame[5]) << 8);
  if (version < kBinaryMinVersion || version > kBinaryVersion)
    throw BinaryError("binary: unsupported format version " +
                      std::to_string(version) + " (this reader handles " +
                      std::to_string(kBinaryMinVersion) + ".." +
                      std::to_string(kBinaryVersion) + ")");
  const std::uint64_t length = getU64(frame, 8);
  if (length != frame.size() - kHeaderSize - kTrailerSize)
    throw BinaryError("binary: payload length mismatch (header says " +
                      std::to_string(length) + ", frame holds " +
                      std::to_string(frame.size() - kHeaderSize -
                                     kTrailerSize) +
                      ")");
  const std::uint64_t stored = getU64(frame, frame.size() - kTrailerSize);
  const std::uint64_t computed =
      fnv1a64(frame.substr(0, frame.size() - kTrailerSize));
  if (stored != computed)
    throw BinaryError("binary: checksum mismatch (frame is corrupt)");
  const auto tag = static_cast<std::uint8_t>(frame[6]);
  if (tag != static_cast<std::uint8_t>(expected))
    throw BinaryError("binary: section tag " + std::to_string(tag) +
                      " where " +
                      std::to_string(static_cast<int>(expected)) +
                      " was expected");
  if (frame[7] != 0)
    throw BinaryError("binary: reserved header byte is not zero");
  payload_ = frame.substr(kHeaderSize, length);
}

std::uint8_t BinaryReader::u8() {
  if (pos_ + 1 > payload_.size())
    throw BinaryError("binary: payload truncated reading u8");
  return static_cast<std::uint8_t>(payload_[pos_++]);
}

std::uint64_t BinaryReader::u64() {
  if (pos_ + 8 > payload_.size())
    throw BinaryError("binary: payload truncated reading u64");
  const std::uint64_t v = getU64(payload_, pos_);
  pos_ += 8;
  return v;
}

std::uint64_t BinaryReader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (pos_ >= payload_.size())
      throw BinaryError("binary: payload truncated reading varint");
    const auto byte = static_cast<std::uint8_t>(payload_[pos_++]);
    if (shift == 63 && (byte & 0x7f) > 1)
      throw BinaryError("binary: varint overflows 64 bits");
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if (!(byte & 0x80)) return v;
    shift += 7;
    if (shift > 63) throw BinaryError("binary: varint longer than 10 bytes");
  }
}

double BinaryReader::f64() { return std::bit_cast<double>(u64()); }

std::string_view BinaryReader::str() {
  const std::uint64_t n = varint();
  return bytes(n);
}

std::string_view BinaryReader::bytes(std::size_t n) {
  if (n > payload_.size() - pos_)
    throw BinaryError("binary: payload truncated reading " +
                      std::to_string(n) + " bytes");
  const std::string_view v = payload_.substr(pos_, n);
  pos_ += n;
  return v;
}

// --- networks ---------------------------------------------------------

namespace {

constexpr std::uint8_t kTypeCatalog = 0;   // resolve by catalog name
constexpr std::uint8_t kTypeEmbedded = 1;  // full descriptor inline

void writeEmbeddedType(BinaryWriter& body, StringTable& strings,
                       const BlockType& t) {
  body.u8(static_cast<std::uint8_t>(t.blockClass()));
  body.u8(static_cast<std::uint8_t>((t.sequential() ? 1 : 0) |
                                    (t.programmable() ? 2 : 0)));
  body.varint(static_cast<std::uint64_t>(t.inputCount()));
  for (const std::string& n : t.inputNames()) body.varint(strings.intern(n));
  body.varint(static_cast<std::uint64_t>(t.outputCount()));
  for (const std::string& n : t.outputNames()) body.varint(strings.intern(n));
  body.varint(strings.intern(t.behaviorSource()));
}

BlockTypePtr readEmbeddedType(BinaryReader& r,
                              const std::vector<std::string>& strings,
                              const std::string& name) {
  const std::uint8_t cls = r.u8();
  if (cls > static_cast<std::uint8_t>(BlockClass::kCommunication))
    throw BinaryError("binary: invalid block class " + std::to_string(cls));
  const std::uint8_t flags = r.u8();
  if (flags & ~0x3u)
    throw BinaryError("binary: invalid type flags " + std::to_string(flags));
  const std::uint64_t inCount = r.varint();
  if (inCount > r.remaining())
    throw BinaryError("binary: input port count exceeds payload size");
  std::vector<std::string> ins;
  ins.reserve(inCount);
  for (std::uint64_t i = 0; i < inCount; ++i)
    ins.push_back(tableAt(strings, r.varint()));
  const std::uint64_t outCount = r.varint();
  if (outCount > r.remaining())
    throw BinaryError("binary: output port count exceeds payload size");
  std::vector<std::string> outs;
  outs.reserve(outCount);
  for (std::uint64_t i = 0; i < outCount; ++i)
    outs.push_back(tableAt(strings, r.varint()));
  const std::string& behavior = tableAt(strings, r.varint());
  try {
    return std::make_shared<const BlockType>(
        name, static_cast<BlockClass>(cls), std::move(ins), std::move(outs),
        behavior, (flags & 1) != 0, (flags & 2) != 0);
  } catch (const std::exception& e) {
    throw BinaryError(std::string("binary: invalid embedded type: ") +
                      e.what());
  }
}

}  // namespace

std::string writeNetworkBinary(const Network& net) {
  StringTable strings;
  BinaryWriter body;

  body.varint(strings.intern(net.name()));

  // Type table: one entry per distinct BlockTypePtr, in first-use order.
  std::unordered_map<const BlockType*, std::uint64_t> typeIds;
  std::vector<const BlockType*> types;
  for (BlockId b = 0; b < net.blockCount(); ++b) {
    const BlockType* t = net.block(b).type.get();
    if (typeIds.try_emplace(t, types.size()).second) types.push_back(t);
  }
  body.varint(types.size());
  for (const BlockType* t : types) {
    body.varint(strings.intern(t->name()));
    if (catalogResolvable(*t)) {
      body.u8(kTypeCatalog);
    } else {
      body.u8(kTypeEmbedded);
      writeEmbeddedType(body, strings, *t);
    }
  }

  body.varint(net.blockCount());
  for (BlockId b = 0; b < net.blockCount(); ++b) {
    const Block& blk = net.block(b);
    body.varint(strings.intern(blk.name));
    body.varint(typeIds.at(blk.type.get()));
  }

  // The arc stripe: every connection in insertion order (the on-disk
  // mirror of compact_graph's flat arc array; insertion order is
  // semantic, see the header comment).
  body.varint(net.connections().size());
  for (const Connection& c : net.connections()) {
    body.varint(c.from.block);
    body.varint(c.from.port);
    body.varint(c.to.block);
    body.varint(c.to.port);
  }

  // The string table is interned while encoding the body but must lead
  // the payload, so the body is spliced in after it.
  BinaryWriter out;
  strings.writeTo(out);
  out.bytes(body.payload());
  return out.finish(SectionTag::kNetwork);
}

Network readNetworkBinary(std::string_view frame) {
  namespace fp = core::failpoint;
  if (const fp::Hit hit = fp::check(fp::name::kIoReadNetwork);
      hit.mode == fp::Mode::kError)
    throw BinaryError("failpoint: injected network read fault");
  BinaryReader r(frame, SectionTag::kNetwork);
  const std::vector<std::string> strings = readStringTable(r);

  Network net(tableAt(strings, r.varint()));

  const std::uint64_t typeCount = r.varint();
  if (typeCount > r.remaining())
    throw BinaryError("binary: type count exceeds payload size");
  std::vector<BlockTypePtr> types;
  types.reserve(typeCount);
  for (std::uint64_t i = 0; i < typeCount; ++i) {
    const std::string& name = tableAt(strings, r.varint());
    const std::uint8_t kind = r.u8();
    if (kind == kTypeCatalog) {
      try {
        types.push_back(blocks::defaultCatalog().get(name));
      } catch (const std::exception&) {
        throw BinaryError("binary: unknown catalog type '" + name + "'");
      }
    } else if (kind == kTypeEmbedded) {
      types.push_back(readEmbeddedType(r, strings, name));
    } else {
      throw BinaryError("binary: invalid type-table kind " +
                        std::to_string(kind));
    }
  }

  const std::uint64_t blockCount = r.varint();
  if (blockCount > r.remaining())
    throw BinaryError("binary: block count exceeds payload size");
  for (std::uint64_t b = 0; b < blockCount; ++b) {
    const std::string& instance = tableAt(strings, r.varint());
    const std::uint64_t typeId = r.varint();
    if (typeId >= types.size())
      throw BinaryError("binary: block type reference out of range");
    try {
      net.addBlock(instance, types[typeId]);
    } catch (const std::exception& e) {
      throw BinaryError(std::string("binary: invalid block: ") + e.what());
    }
  }

  const std::uint64_t arcCount = r.varint();
  if (arcCount > r.remaining())
    throw BinaryError("binary: connection count exceeds payload size");
  for (std::uint64_t i = 0; i < arcCount; ++i) {
    const std::uint64_t fb = r.varint();
    const std::uint64_t fp = r.varint();
    const std::uint64_t tb = r.varint();
    const std::uint64_t tp = r.varint();
    if (fb >= blockCount || tb >= blockCount || fp > 0xffff || tp > 0xffff)
      throw BinaryError("binary: connection endpoint out of range");
    try {
      net.connect(static_cast<BlockId>(fb), static_cast<int>(fp),
                  static_cast<BlockId>(tb), static_cast<int>(tp));
    } catch (const std::exception& e) {
      throw BinaryError(std::string("binary: invalid connection: ") +
                        e.what());
    }
  }
  if (!r.atEnd())
    throw BinaryError("binary: trailing bytes after network payload");
  return net;
}

// --- partitioning results ------------------------------------------------

namespace {

void writeBitSet(BinaryWriter& w, const BitSet& s) {
  const std::vector<std::uint32_t> members = s.toVector();
  w.varint(members.size());
  std::uint32_t prev = 0;
  for (std::size_t i = 0; i < members.size(); ++i) {
    // Ascending members delta-code tightly: first absolute, then gaps.
    w.varint(i == 0 ? members[0] : members[i] - prev);
    prev = members[i];
  }
}

BitSet readBitSet(BinaryReader& r, std::uint64_t universe) {
  BitSet s(universe);
  const std::uint64_t count = r.varint();
  if (count > universe)
    throw BinaryError("binary: partition member count exceeds universe");
  std::uint64_t at = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t delta = r.varint();
    at = i == 0 ? delta : at + delta;
    if (at >= universe || (i > 0 && delta == 0))
      throw BinaryError("binary: partition member out of range");
    s.set(at);
  }
  return s;
}

void writeCounterVector(BinaryWriter& w,
                        const std::vector<std::uint64_t>& v) {
  w.varint(v.size());
  for (const std::uint64_t x : v) w.varint(x);
}

std::vector<std::uint64_t> readCounterVector(BinaryReader& r) {
  const std::uint64_t count = r.varint();
  if (count > r.remaining())
    throw BinaryError("binary: counter vector length exceeds payload size");
  std::vector<std::uint64_t> v;
  v.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) v.push_back(r.varint());
  return v;
}

}  // namespace

std::string writePartitionRunBinary(const partition::PartitionRun& run) {
  BinaryWriter w;
  w.str(run.algorithm);
  const std::uint64_t universe =
      run.result.partitions.empty() ? 0 : run.result.partitions[0].size();
  w.varint(universe);
  w.varint(run.result.partitions.size());
  for (const BitSet& p : run.result.partitions) {
    if (p.size() != universe)
      throw BinaryError(
          "binary: partitions disagree on the block universe size");
    writeBitSet(w, p);
  }
  w.f64(run.seconds);
  w.u8(static_cast<std::uint8_t>((run.optimal ? 1 : 0) |
                                 (run.timedOut ? 2 : 0)));
  w.varint(run.explored);
  w.varint(run.pruned);
  writeCounterVector(w, run.workerExplored);
  writeCounterVector(w, run.workerPruned);
  return w.finish(SectionTag::kPartitionRun);
}

partition::PartitionRun readPartitionRunBinary(std::string_view frame) {
  namespace fp = core::failpoint;
  if (const fp::Hit hit = fp::check(fp::name::kIoReadRun);
      hit.mode == fp::Mode::kError)
    throw BinaryError("failpoint: injected partition-run read fault");
  BinaryReader r(frame, SectionTag::kPartitionRun);
  partition::PartitionRun run;
  run.algorithm = std::string(r.str());
  const std::uint64_t universe = r.varint();
  const std::uint64_t count = r.varint();
  if (count > universe && count > 0)
    throw BinaryError("binary: more partitions than universe blocks");
  run.result.partitions.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i)
    run.result.partitions.push_back(readBitSet(r, universe));
  run.seconds = r.f64();
  const std::uint8_t flags = r.u8();
  if (flags & ~0x3u)
    throw BinaryError("binary: invalid run flags " + std::to_string(flags));
  run.optimal = (flags & 1) != 0;
  run.timedOut = (flags & 2) != 0;
  run.explored = r.varint();
  run.pruned = r.varint();
  run.workerExplored = readCounterVector(r);
  run.workerPruned = readCounterVector(r);
  if (!r.atEnd())
    throw BinaryError("binary: trailing bytes after partition-run payload");
  return run;
}

// --- text <-> binary converters ------------------------------------------

std::string netlistToBinary(const std::string& netlistText) {
  return writeNetworkBinary(readNetlist(netlistText));
}

std::string binaryToNetlist(std::string_view frame) {
  return writeNetlist(readNetworkBinary(frame));
}

}  // namespace eblocks::io
