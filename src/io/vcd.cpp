#include "io/vcd.h"

#include <map>
#include <sstream>

namespace eblocks::io {

namespace {

/// Short printable VCD identifier for the k-th signal.
std::string vcdId(std::size_t k) {
  std::string id;
  do {
    id += static_cast<char>('!' + k % 94);
    k /= 94;
  } while (k > 0);
  return id;
}

}  // namespace

std::string toVcd(const sim::Simulator& simulator) {
  const Network& net = simulator.network();
  std::ostringstream out;
  out << "$comment eblocks-synth simulation trace $end\n";
  out << "$timescale 1 us $end\n";
  out << "$scope module " << (net.name().empty() ? "design" : net.name())
      << " $end\n";
  std::map<BlockId, std::string> idOf;
  for (BlockId b = 0; b < net.blockCount(); ++b)
    if (net.isOutput(b)) {
      idOf[b] = vcdId(idOf.size());
      std::string safe = net.block(b).name;
      for (char& c : safe)
        if (c == ' ') c = '_';
      out << "$var wire 1 " << idOf[b] << " " << safe << " $end\n";
    }
  out << "$upscope $end\n$enddefinitions $end\n";
  out << "$dumpvars\n";
  // Initial values: outputs start at 0; the trace then carries changes.
  for (const auto& [block, id] : idOf) out << "0" << id << "\n";
  out << "$end\n";
  std::uint64_t lastTime = 0;
  bool timeOpen = false;
  for (const sim::TraceEntry& e : simulator.trace()) {
    const auto it = idOf.find(e.block);
    if (it == idOf.end()) continue;
    if (!timeOpen || e.time != lastTime) {
      out << "#" << e.time << "\n";
      lastTime = e.time;
      timeOpen = true;
    }
    out << (e.value ? "1" : "0") << it->second << "\n";
  }
  out << "#" << (simulator.now() + 1) << "\n";
  return out.str();
}

}  // namespace eblocks::io
