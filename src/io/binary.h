// Compact binary wire/disk format for networks and partitioning results.
//
// The text netlist (netlist.h) is the human interface; this is the
// machine one: the solution cache (cache/solution_store.h) persists its
// records in it, and a future synthesis daemon speaks it on the wire.
// Beyond compactness it covers one thing the text format cannot:
// synthesized programmable blocks embed their merged behavior program,
// which the netlist grammar has no syntax for, while the binary type
// table simply inlines the full descriptor -- so *synthesis results*
// round-trip, not just source designs.
//
// Frame layout (all integers little-endian; varints are LEB128):
//
//   offset 0   u32   magic "EBLK" (0x4B4C4245)
//          4   u16   format version (kBinaryVersion; readers reject
//                    anything outside [kBinaryMinVersion, kBinaryVersion])
//          6   u8    section tag (what the payload encodes)
//          7   u8    reserved, must be 0
//          8   u64   payload length in bytes
//         16   ...   payload
//   16+len     u64   FNV-1a-64 checksum of bytes [0, 16+len)
//
// The checksum closes the frame: truncation changes the length
// arithmetic and any bit flip -- header or payload -- changes the
// digest, so a damaged frame is always a clean BinaryError, never a
// silently-wrong decode or UB (tests/io/binary_roundtrip_test.cpp
// flips every bit to prove it).
//
// Payloads begin with a string table (varint count, then varint-length-
// prefixed bytes); everything that repeats -- type names, port names,
// instance names -- is a varint index into it.  A network's connections
// are stored as one flat arc stripe in insertion order: the in-memory
// analogue is partition/compact_graph's CSR arc array, and insertion
// order is semantic (the simulator's activation order and the netlist
// writer both follow it), so the stripe preserves it exactly and a
// decoded network is bit-identical to the source, netlist text included.
//
// Versioning policy (docs/formats.md has the full rules): readers
// accept [kBinaryMinVersion, kBinaryVersion]; a format change bumps
// kBinaryVersion, and either keeps a decode path for the old layout or
// raises kBinaryMinVersion so old files fail with a clear message --
// never a misparse.  tests/data/ pins golden frames for two paper
// designs, and tests/io/binary_roundtrip_test.cpp crafts frames on both
// sides of the version window to hold the policy in place.
#ifndef EBLOCKS_IO_BINARY_H_
#define EBLOCKS_IO_BINARY_H_

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "core/network.h"
#include "partition/result.h"

namespace eblocks::io {

class BinaryError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr std::uint32_t kBinaryMagic = 0x4B4C4245u;  // "EBLK"
inline constexpr std::uint16_t kBinaryVersion = 1;
inline constexpr std::uint16_t kBinaryMinVersion = 1;

/// What a frame's payload encodes.  Tags 4-8 are the synthesis daemon's
/// wire messages (src/server/protocol.h encodes and decodes them; the
/// frame discipline -- magic, version window, length, checksum -- is
/// identical to the disk formats').
enum class SectionTag : std::uint8_t {
  kNetwork = 1,       ///< a Network (writeNetworkBinary)
  kPartitionRun = 2,  ///< a partition::PartitionRun (writePartitionRunBinary)
  kSolutionRecord = 3,  ///< a solution-cache record (cache/solution_store)
  kServerRequest = 4,   ///< client -> server: a synthesis request
  kServerResponse = 5,  ///< server -> client: a completed synthesis
  kServerProgress = 6,  ///< server -> client: a streamed progress tick
  kServerError = 7,     ///< server -> client: a protocol or job error
  kServerCancel = 8,    ///< client -> server: cancel a pending request
};

// --- the frame primitives (shared with cache/solution_store) -----------

/// Accumulates a payload and closes it into a framed binary string.
/// The version parameter exists for the format-compatibility tests;
/// production writers always emit kBinaryVersion.
class BinaryWriter {
 public:
  void u8(std::uint8_t v) { payload_.push_back(static_cast<char>(v)); }
  void u64(std::uint64_t v);              ///< fixed 8 bytes, little-endian
  void varint(std::uint64_t v);           ///< LEB128
  void f64(double v);                     ///< IEEE-754 bits via u64
  void str(std::string_view v);           ///< varint length + bytes
  void bytes(std::string_view v) { payload_.append(v); }  ///< raw append

  /// The unframed payload accumulated so far.  Lets a writer that must
  /// emit a prefix last (e.g. the string table interned while encoding
  /// the body) splice one payload into another via bytes().
  const std::string& payload() const { return payload_; }

  /// Frames the payload: header + payload + checksum.
  std::string finish(SectionTag tag,
                     std::uint16_t version = kBinaryVersion) const;

 private:
  std::string payload_;
};

/// Validates a frame (magic, version window, tag, length, checksum) on
/// construction -- all failure modes throw BinaryError -- then decodes
/// the payload.  Every accessor range-checks; reading past the payload
/// throws instead of reading the checksum trailer or beyond.
class BinaryReader {
 public:
  BinaryReader(std::string_view frame, SectionTag expected);

  std::uint8_t u8();
  std::uint64_t u64();
  std::uint64_t varint();
  double f64();
  std::string_view str();
  std::string_view bytes(std::size_t n);
  bool atEnd() const { return pos_ == payload_.size(); }
  std::size_t remaining() const { return payload_.size() - pos_; }

 private:
  std::string_view payload_;
  std::size_t pos_ = 0;
};

// --- networks -----------------------------------------------------------

/// Serializes a network, including any embedded (synthesized or custom)
/// block types the catalog cannot resolve by name.
std::string writeNetworkBinary(const Network& net);

/// Decodes a network frame.  Throws BinaryError on any malformation
/// (bad frame, unknown catalog type, invalid connection, ...).
Network readNetworkBinary(std::string_view frame);

// --- partitioning results ------------------------------------------------

/// Serializes a PartitionRun (algorithm, partitions as delta-coded
/// member lists over the block universe, metrics and worker counters).
std::string writePartitionRunBinary(const partition::PartitionRun& run);

/// Decodes a PartitionRun frame.  Throws BinaryError on malformation.
partition::PartitionRun readPartitionRunBinary(std::string_view frame);

// --- text <-> binary converters ------------------------------------------

/// readNetlist + writeNetworkBinary: netlist text to a binary frame.
std::string netlistToBinary(const std::string& netlistText);

/// readNetworkBinary + writeNetlist: binary frame back to netlist text.
/// Inherits writeNetlist's restriction: synthesized programmable blocks
/// have no netlist syntax, so frames containing them throw NetlistError.
std::string binaryToNetlist(std::string_view frame);

}  // namespace eblocks::io

#endif  // EBLOCKS_IO_BINARY_H_
