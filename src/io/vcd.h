// VCD (Value Change Dump) export of simulation traces, so output-block
// activity can be inspected in any waveform viewer (GTKWave etc.).
#ifndef EBLOCKS_IO_VCD_H_
#define EBLOCKS_IO_VCD_H_

#include <string>
#include <vector>

#include "sim/simulator.h"

namespace eblocks::io {

/// Renders the display-change trace of `simulator`'s run so far as a VCD
/// document.  One wire per output block; initial values are dumped at
/// time 0, then one change record per trace entry.
std::string toVcd(const sim::Simulator& simulator);

}  // namespace eblocks::io

#endif  // EBLOCKS_IO_VCD_H_
