// Graphviz DOT export, with optional partition highlighting -- handy for
// visually debugging partitioner decisions (mirrors Figure 5's shading).
#ifndef EBLOCKS_IO_DOT_H_
#define EBLOCKS_IO_DOT_H_

#include <string>
#include <vector>

#include "core/bitset.h"
#include "core/network.h"

namespace eblocks::io {

/// Renders the network as DOT.  Sensors are houses, outputs are inverted
/// houses, compute blocks are boxes (programmable: double border).  When
/// `partitions` is non-empty each partition becomes a colored cluster.
std::string toDot(const Network& net,
                  const std::vector<BitSet>& partitions = {});

}  // namespace eblocks::io

#endif  // EBLOCKS_IO_DOT_H_
