#include "io/dot.h"

#include <sstream>

namespace eblocks::io {

namespace {

const char* kClusterColors[] = {"lightblue", "lightgreen", "lightsalmon",
                                "lightgoldenrod", "plum", "khaki",
                                "lightcyan", "mistyrose"};

std::string nodeId(BlockId b) { return "n" + std::to_string(b); }

std::string nodeDecl(const Network& net, BlockId b) {
  const Block& blk = net.block(b);
  std::string shape = "box";
  std::string extra;
  switch (blk.type->blockClass()) {
    case BlockClass::kSensor: shape = "house"; break;
    case BlockClass::kOutput: shape = "invhouse"; break;
    case BlockClass::kCommunication: shape = "cds"; break;
    case BlockClass::kCompute:
      if (blk.type->programmable()) extra = ", peripheries=2";
      break;
  }
  return nodeId(b) + " [label=\"" + blk.name + "\\n(" + blk.type->name() +
         ")\", shape=" + shape + extra + "];\n";
}

}  // namespace

std::string toDot(const Network& net, const std::vector<BitSet>& partitions) {
  std::ostringstream out;
  out << "digraph \"" << net.name() << "\" {\n  rankdir=LR;\n";
  BitSet inCluster = net.emptySet();
  for (std::size_t k = 0; k < partitions.size(); ++k) {
    out << "  subgraph cluster_p" << k << " {\n"
        << "    style=filled; color="
        << kClusterColors[k % std::size(kClusterColors)] << ";\n"
        << "    label=\"partition " << k << "\";\n";
    partitions[k].forEach([&](std::size_t b) {
      inCluster.set(b);
      out << "    " << nodeDecl(net, static_cast<BlockId>(b));
    });
    out << "  }\n";
  }
  for (BlockId b = 0; b < net.blockCount(); ++b)
    if (!inCluster.test(b)) out << "  " << nodeDecl(net, b);
  for (const Connection& c : net.connections())
    out << "  " << nodeId(c.from.block) << " -> " << nodeId(c.to.block)
        << ";\n";
  out << "}\n";
  return out.str();
}

}  // namespace eblocks::io
