#include "io/netlist.h"

#include <sstream>

#include "blocks/catalog.h"

namespace eblocks::io {

std::string writeNetlist(const Network& net) {
  std::ostringstream out;
  out << "network " << net.name() << "\n";
  for (BlockId b = 0; b < net.blockCount(); ++b) {
    const Block& blk = net.block(b);
    if (blk.type->programmable() && !blk.type->behaviorSource().empty())
      throw NetlistError(
          "writeNetlist: synthesized programmable block '" + blk.name +
          "' embeds a generated behavior and cannot be serialized");
    out << "block " << blk.name << " " << blk.type->name() << "\n";
  }
  for (const Connection& c : net.connections())
    out << "connect " << net.block(c.from.block).name << "." << c.from.port
        << " " << net.block(c.to.block).name << "." << c.to.port << "\n";
  return out.str();
}

namespace {

struct EndpointRef {
  std::string block;
  int port = 0;
};

EndpointRef parseEndpoint(const std::string& token, int line) {
  const std::size_t dot = token.rfind('.');
  if (dot == std::string::npos || dot + 1 >= token.size())
    throw NetlistError("netlist line " + std::to_string(line) +
                       ": expected <block>.<port>, got '" + token + "'");
  EndpointRef r;
  r.block = token.substr(0, dot);
  try {
    r.port = std::stoi(token.substr(dot + 1));
  } catch (const std::exception&) {
    throw NetlistError("netlist line " + std::to_string(line) +
                       ": bad port number in '" + token + "'");
  }
  return r;
}

}  // namespace

Network readNetlist(const std::string& text) {
  std::istringstream in(text);
  std::string lineText;
  int lineNo = 0;
  Network net;
  bool named = false;
  while (std::getline(in, lineText)) {
    ++lineNo;
    const std::size_t hash = lineText.find('#');
    if (hash != std::string::npos) lineText.erase(hash);
    std::istringstream line(lineText);
    std::string keyword;
    if (!(line >> keyword)) continue;  // blank line
    if (keyword == "network") {
      std::string name;
      std::getline(line, name);
      const std::size_t start = name.find_first_not_of(" \t");
      if (start == std::string::npos)
        throw NetlistError("netlist line " + std::to_string(lineNo) +
                           ": network needs a name");
      name.erase(0, start);
      const std::size_t end = name.find_last_not_of(" \t\r");
      name.erase(end + 1);
      Network renamed(name);
      if (named || net.blockCount() > 0)
        throw NetlistError("netlist line " + std::to_string(lineNo) +
                           ": 'network' must appear once, first");
      net = std::move(renamed);
      named = true;
    } else if (keyword == "block") {
      std::string instance, type;
      if (!(line >> instance >> type))
        throw NetlistError("netlist line " + std::to_string(lineNo) +
                           ": expected 'block <instance> <type>'");
      try {
        net.addBlock(instance, blocks::defaultCatalog().get(type));
      } catch (const std::exception& e) {
        throw NetlistError("netlist line " + std::to_string(lineNo) + ": " +
                           e.what());
      }
    } else if (keyword == "connect") {
      std::string a, b;
      if (!(line >> a >> b))
        throw NetlistError("netlist line " + std::to_string(lineNo) +
                           ": expected 'connect <src>.<port> <dst>.<port>'");
      const EndpointRef src = parseEndpoint(a, lineNo);
      const EndpointRef dst = parseEndpoint(b, lineNo);
      const auto srcId = net.findBlock(src.block);
      const auto dstId = net.findBlock(dst.block);
      if (!srcId || !dstId)
        throw NetlistError("netlist line " + std::to_string(lineNo) +
                           ": unknown block in connection");
      try {
        net.connect(*srcId, src.port, *dstId, dst.port);
      } catch (const std::exception& e) {
        throw NetlistError("netlist line " + std::to_string(lineNo) + ": " +
                           e.what());
      }
    } else {
      throw NetlistError("netlist line " + std::to_string(lineNo) +
                         ": unknown keyword '" + keyword + "'");
    }
  }
  return net;
}

}  // namespace eblocks::io
