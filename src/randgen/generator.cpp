#include "randgen/generator.h"

#include <algorithm>
#include <random>
#include <stdexcept>

#include "blocks/catalog.h"

namespace eblocks::randgen {

namespace {

using blocks::Catalog;

BlockTypePtr pickOneInputType(const Catalog& cat, std::mt19937& rng) {
  switch (std::uniform_int_distribution<int>(0, 6)(rng)) {
    case 0: return cat.inverter();
    case 1: return cat.buffer();
    case 2: return cat.toggle();
    case 3: return cat.trip();
    case 4: return cat.delay(std::uniform_int_distribution<int>(1, 8)(rng));
    case 5:
      return cat.pulseGen(std::uniform_int_distribution<int>(1, 6)(rng));
    default:
      return cat.prolonger(std::uniform_int_distribution<int>(1, 8)(rng));
  }
}

BlockTypePtr pickTwoInputType(const Catalog& cat, std::mt19937& rng) {
  if (std::uniform_real_distribution<double>(0, 1)(rng) < 0.15)
    return cat.tripReset();
  // Non-degenerate truth tables only (no constants, no single-var copies).
  static constexpr unsigned kInteresting[] = {0b1000, 0b1110, 0b0110,
                                              0b0111, 0b0001, 0b1001,
                                              0b1101, 0b1011, 0b0100, 0b0010};
  return cat.logic2(kInteresting[std::uniform_int_distribution<std::size_t>(
      0, std::size(kInteresting) - 1)(rng)]);
}

BlockTypePtr pickThreeInputType(const Catalog& cat, std::mt19937& rng) {
  switch (std::uniform_int_distribution<int>(0, 3)(rng)) {
    case 0: return cat.and3();
    case 1: return cat.or3();
    case 2: return cat.majority3();
    default:
      return cat.logic3(std::uniform_int_distribution<unsigned>(1, 254)(rng));
  }
}

BlockTypePtr pickSensorType(const Catalog& cat, std::mt19937& rng) {
  switch (std::uniform_int_distribution<int>(0, 4)(rng)) {
    case 0: return cat.button();
    case 1: return cat.contactSwitch();
    case 2: return cat.lightSensor();
    case 3: return cat.motionSensor();
    default: return cat.soundSensor();
  }
}

BlockTypePtr pickOutputType(const Catalog& cat, std::mt19937& rng) {
  switch (std::uniform_int_distribution<int>(0, 2)(rng)) {
    case 0: return cat.led();
    case 1: return cat.beeper();
    default: return cat.relay();
  }
}

}  // namespace

Network randomNetwork(const GeneratorOptions& options) {
  if (options.innerBlocks < 1)
    throw std::invalid_argument("randomNetwork: need at least 1 inner block");
  const Catalog& cat = blocks::defaultCatalog();
  std::mt19937 rng(options.seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);

  Network net("random_n" + std::to_string(options.innerBlocks) + "_s" +
              std::to_string(options.seed));

  std::vector<BlockId> sensors;
  std::vector<BlockId> compute;  // in creation (topological) order
  auto freshSensor = [&] {
    const BlockId s = net.addBlock(
        "s" + std::to_string(sensors.size()), pickSensorType(cat, rng));
    sensors.push_back(s);
    return s;
  };
  auto sensorFor = [&]() -> BlockId {
    if (sensors.empty() || uni(rng) >= options.sensorReuseProb)
      return freshSensor();
    return sensors[std::uniform_int_distribution<std::size_t>(
        0, sensors.size() - 1)(rng)];
  };

  const double wSum = options.oneInputWeight + options.twoInputWeight +
                      options.threeInputWeight;
  if (wSum <= 0)
    throw std::invalid_argument("randomNetwork: fan-in weights must sum > 0");

  for (int i = 0; i < options.innerBlocks; ++i) {
    const double w = uni(rng) * wSum;
    int arity = 1;
    if (w >= options.oneInputWeight)
      arity = w < options.oneInputWeight + options.twoInputWeight ? 2 : 3;
    BlockTypePtr type = arity == 1   ? pickOneInputType(cat, rng)
                        : arity == 2 ? pickTwoInputType(cat, rng)
                                     : pickThreeInputType(cat, rng);
    const BlockId b = net.addBlock("c" + std::to_string(i), std::move(type));
    for (int p = 0; p < net.block(b).type->inputCount(); ++p) {
      const bool useSensor = compute.empty() || uni(rng) < options.sensorInputProb;
      if (useSensor) {
        net.connect(sensorFor(), 0, b, p);
      } else {
        const std::size_t window =
            options.localityWindow <= 1.0
                ? std::max<std::size_t>(
                      1, static_cast<std::size_t>(
                             options.localityWindow *
                                 static_cast<double>(compute.size()) +
                             0.5))
                : std::min(compute.size(),
                           static_cast<std::size_t>(options.localityWindow +
                                                    0.5));
        const std::size_t lo = compute.size() - std::min(window, compute.size());
        const BlockId src = compute[std::uniform_int_distribution<std::size_t>(
            lo, compute.size() - 1)(rng)];
        // Compute blocks in the catalog have exactly one output port.
        net.connect(src, 0, b, p);
      }
    }
    compute.push_back(b);
  }

  // Every compute block must drive something: attach output blocks to
  // sinks, plus random taps.
  int outCount = 0;
  for (BlockId b : compute) {
    const bool isSink = net.outdegree(b) == 0;
    if (isSink || uni(rng) < options.outputTapProb) {
      const BlockId o = net.addBlock("o" + std::to_string(outCount++),
                                     pickOutputType(cat, rng));
      net.connect(b, 0, o, 0);
    }
  }
  return net;
}

GeneratorOptions GeneratorOptions::largeNetwork(int inner,
                                                std::uint32_t seed) {
  GeneratorOptions options;
  options.innerBlocks = inner;
  options.seed = seed;
  // Denser internal wiring than the Table-2 defaults: fewer 1-input
  // chains, fewer sensor-fed inputs, and a wider driver window, so
  // pairing decisions interact across the design instead of decomposing
  // into independent chains.
  options.oneInputWeight = 0.35;
  options.twoInputWeight = 0.52;
  options.threeInputWeight = 0.13;
  options.sensorInputProb = 0.20;
  options.localityWindow = 8.0;
  return options;
}

Network relabeledCopy(const Network& source, std::uint32_t seed,
                      const std::string& namePrefix) {
  std::mt19937 rng(seed);
  std::vector<BlockId> order(source.blockCount());
  for (BlockId b = 0; b < source.blockCount(); ++b) order[b] = b;
  std::shuffle(order.begin(), order.end(), rng);

  Network out(source.name() + "_relabeled");
  std::vector<BlockId> map(source.blockCount(), kNoBlock);
  int n = 0;
  for (const BlockId oldId : order)
    map[oldId] = out.addBlock(namePrefix + std::to_string(n++),
                              source.block(oldId).type);
  // Connection *insertion order* is semantic (simulator activation order,
  // netlist writer order), so it is carried over unpermuted.
  for (const Connection& c : source.connections())
    out.connect(map[c.from.block], c.from.port, map[c.to.block], c.to.port);
  return out;
}

std::vector<Network> randomNetworkCorpus(int count,
                                         const GeneratorOptions& base) {
  std::vector<Network> corpus;
  corpus.reserve(static_cast<std::size_t>(count > 0 ? count : 0));
  for (int i = 0; i < count; ++i) {
    GeneratorOptions options = base;
    options.seed = base.seed + static_cast<std::uint32_t>(i);
    corpus.push_back(randomNetwork(options));
  }
  return corpus;
}

}  // namespace eblocks::randgen
