// Randomized eBlock system generator (Section 5.1).
//
// The paper evaluated PareDown against exhaustive search on nearly 10,000
// randomly generated designs with 3..45 inner blocks.  The generator's
// parameters are not specified in the paper; ours produces layered DAGs of
// catalog blocks with tunable fan-in mix, sensor sharing, and output taps,
// and is fully reproducible from the seed.  Defaults are tuned so the
// Table-2 metrics land in the paper's regime (see docs/benchmarks.md).
#ifndef EBLOCKS_RANDGEN_GENERATOR_H_
#define EBLOCKS_RANDGEN_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "core/network.h"

namespace eblocks::randgen {

struct GeneratorOptions {
  int innerBlocks = 10;
  std::uint32_t seed = 1;

  /// Fan-in mix of compute blocks (normalized internally).
  double oneInputWeight = 0.5;
  double twoInputWeight = 0.42;
  double threeInputWeight = 0.08;

  /// Probability that an input is fed by a sensor rather than an earlier
  /// compute block (inputs with no available predecessor always use a
  /// sensor).
  double sensorInputProb = 0.30;

  /// Probability of reusing an existing sensor instead of adding one.
  double sensorReuseProb = 0.25;

  /// Probability that a compute block with internal consumers *also* taps
  /// an output block (extra primary output).
  double outputTapProb = 0.10;

  /// Driver locality.  Values <= 1.0 are a fraction: drivers are drawn
  /// uniformly from the most recent `ceil(localityWindow * i)` compute
  /// blocks (1.0 = uniform over all earlier blocks).  Values > 1.0 are an
  /// absolute window of that many recent blocks -- the default, because
  /// real eBlock systems grow longer rather than wider, and a constant
  /// window reproduces the paper's Table-2 shrinkage across sizes.
  double localityWindow = 4.0;

  /// Preset for the heuristic partitioners' scaling regime: `inner`
  /// blocks with a wider locality window and more internal wiring than
  /// the Table-2 defaults, so bins have real pairing choices and the
  /// 100+-inner networks the exhaustive search cannot touch still have
  /// partitioning structure worth finding.  Used by the scaling-curve
  /// bench (bench_scalability) and the large-network regression tests.
  static GeneratorOptions largeNetwork(int inner, std::uint32_t seed);
};

/// Generates a well-formed (validate()-clean) random network with exactly
/// `options.innerBlocks` inner blocks.
Network randomNetwork(const GeneratorOptions& options);

/// An isomorphic relabeling of `source`: the same blocks (shared type
/// descriptors) and the same connections in the same insertion order, but
/// with block declaration order permuted by `seed` and every instance
/// renamed to `<namePrefix><n>`.  This is exactly the variation the
/// solution cache's canonical hash must be blind to -- the hash tests and
/// bench_cache use it to produce "the same design, re-drawn".
Network relabeledCopy(const Network& source, std::uint32_t seed,
                      const std::string& namePrefix = "r");

/// Emits a corpus of `count` independent random designs: design i is
/// randomNetwork with seed `base.seed + i` (other options unchanged).
/// The verification layer (sim/batch_equivalence.h) consumes these as the
/// reference side of its differential runs.
std::vector<Network> randomNetworkCorpus(int count,
                                         const GeneratorOptions& base);

}  // namespace eblocks::randgen

#endif  // EBLOCKS_RANDGEN_GENERATOR_H_
