#include "core/network.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace eblocks {

BlockId Network::addBlock(std::string instanceName, BlockTypePtr type) {
  if (!type) throw std::invalid_argument("addBlock: null block type");
  const BlockId id = static_cast<BlockId>(blocks_.size());
  if (instanceName.empty())
    instanceName = type->name() + "_" + std::to_string(id);
  for (const Block& b : blocks_)
    if (b.name == instanceName)
      throw std::invalid_argument("duplicate block instance name: " +
                                  instanceName);
  blocks_.push_back(Block{std::move(instanceName), std::move(type)});
  in_.emplace_back();
  out_.emplace_back();
  return id;
}

void Network::connect(Endpoint from, Endpoint to) {
  if (from.block >= blocks_.size() || to.block >= blocks_.size())
    throw std::invalid_argument("connect: block id out of range");
  const Block& src = blocks_[from.block];
  const Block& dst = blocks_[to.block];
  if (from.port >= src.type->outputCount())
    throw std::invalid_argument("connect: no output port " +
                                std::to_string(from.port) + " on " + src.name);
  if (to.port >= dst.type->inputCount())
    throw std::invalid_argument("connect: no input port " +
                                std::to_string(to.port) + " on " + dst.name);
  if (from.block == to.block)
    throw std::invalid_argument("connect: self loop on " + src.name);
  if (driverOf(to.block, to.port))
    throw std::invalid_argument("connect: input port already driven on " +
                                dst.name);
  const Connection c{from, to};
  connections_.push_back(c);
  out_[from.block].push_back(c);
  in_[to.block].push_back(c);
}

void Network::connect(BlockId fromBlock, int outPort, BlockId toBlock,
                      int inPort) {
  connect(Endpoint{fromBlock, static_cast<std::uint16_t>(outPort)},
          Endpoint{toBlock, static_cast<std::uint16_t>(inPort)});
}

std::span<const Connection> Network::inputsOf(BlockId id) const {
  return in_.at(id);
}

std::span<const Connection> Network::outputsOf(BlockId id) const {
  return out_.at(id);
}

std::optional<Connection> Network::driverOf(BlockId id, int inPort) const {
  for (const Connection& c : in_.at(id))
    if (c.to.port == inPort) return c;
  return std::nullopt;
}

std::vector<Connection> Network::fanoutOf(BlockId id, int outPort) const {
  std::vector<Connection> r;
  for (const Connection& c : out_.at(id))
    if (c.from.port == outPort) r.push_back(c);
  return r;
}

bool Network::isSensor(BlockId id) const {
  return block(id).type->blockClass() == BlockClass::kSensor;
}

bool Network::isOutput(BlockId id) const {
  return block(id).type->blockClass() == BlockClass::kOutput;
}

bool Network::isInner(BlockId id) const {
  const BlockType& t = *block(id).type;
  return t.blockClass() == BlockClass::kCompute && !t.programmable();
}

std::vector<BlockId> Network::innerBlocks() const {
  std::vector<BlockId> r;
  for (BlockId id = 0; id < blocks_.size(); ++id)
    if (isInner(id)) r.push_back(id);
  return r;
}

BitSet Network::innerSet() const {
  BitSet s = emptySet();
  for (BlockId id = 0; id < blocks_.size(); ++id)
    if (isInner(id)) s.set(id);
  return s;
}

std::vector<BlockId> Network::topoOrder() const {
  std::vector<int> indeg(blocks_.size(), 0);
  for (const Connection& c : connections_) ++indeg[c.to.block];
  std::vector<BlockId> ready;
  for (BlockId id = 0; id < blocks_.size(); ++id)
    if (indeg[id] == 0) ready.push_back(id);
  // Process lowest id first for deterministic order.
  std::vector<BlockId> order;
  order.reserve(blocks_.size());
  while (!ready.empty()) {
    std::pop_heap(ready.begin(), ready.end(), std::greater<>{});
    const BlockId u = ready.back();
    ready.pop_back();
    order.push_back(u);
    for (const Connection& c : out_[u])
      if (--indeg[c.to.block] == 0) {
        ready.push_back(c.to.block);
        std::push_heap(ready.begin(), ready.end(), std::greater<>{});
      }
  }
  if (order.size() != blocks_.size())
    throw CycleError("network '" + name_ + "' contains a cycle");
  return order;
}

bool Network::isAcyclic() const {
  try {
    (void)topoOrder();
    return true;
  } catch (const CycleError&) {
    return false;
  }
}

int Network::indegree(BlockId id) const {
  return static_cast<int>(in_.at(id).size());
}

int Network::outdegree(BlockId id) const {
  return static_cast<int>(out_.at(id).size());
}

std::vector<std::string> Network::validate() const {
  std::vector<std::string> problems;
  for (BlockId id = 0; id < blocks_.size(); ++id) {
    const Block& b = blocks_[id];
    for (int p = 0; p < b.type->inputCount(); ++p)
      if (!driverOf(id, p))
        problems.push_back("input port '" + b.type->inputName(p) + "' of '" +
                           b.name + "' is not connected");
    if (b.type->blockClass() != BlockClass::kOutput) {
      bool anyOut = false;
      for (int p = 0; p < b.type->outputCount() && !anyOut; ++p)
        anyOut = !fanoutOf(id, p).empty();
      if (!anyOut)
        problems.push_back("block '" + b.name + "' drives nothing");
    }
  }
  if (!isAcyclic())
    problems.push_back("network contains a cycle (eBlock networks must be "
                       "acyclic)");
  return problems;
}

std::optional<BlockId> Network::findBlock(const std::string& instanceName) const {
  for (BlockId id = 0; id < blocks_.size(); ++id)
    if (blocks_[id].name == instanceName) return id;
  return std::nullopt;
}

}  // namespace eblocks
