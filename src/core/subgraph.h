// Candidate-partition analysis: I/O counting, border blocks, removal rank,
// convexity.  These are the structural primitives shared by all three
// partitioning algorithms (Section 4 of the paper).
#ifndef EBLOCKS_CORE_SUBGRAPH_H_
#define EBLOCKS_CORE_SUBGRAPH_H_

#include <cstdint>
#include <vector>

#include "core/bitset.h"
#include "core/network.h"

namespace eblocks {

/// How partition I/O usage is counted against the programmable block's
/// port budget.
enum class CountingMode {
  /// Each connection crossing the partition boundary occupies one port
  /// (eBlocks wires are point-to-point).  This is the mode that reproduces
  /// the paper's Figure-5 walkthrough exactly, and the default.
  kEdges,
  /// Distinct signals: external fanout of one internal signal shares one
  /// output port, and one external signal consumed by several members
  /// shares one input port.
  kSignals,
};

const char* toString(CountingMode m);

/// Port usage of a candidate partition.
struct IoCount {
  int inputs = 0;
  int outputs = 0;
};

/// Counts the inputs/outputs the subgraph `members` would occupy on a
/// programmable block, under the given counting mode.
IoCount countIo(const Network& net, const BitSet& members, CountingMode mode);

/// A border block has *every* output or *every* input connected to blocks
/// outside the candidate partition (Section 4.2).  Blocks with no
/// connections at all count as border (vacuous truth).
bool isBorderBlock(const Network& net, const BitSet& members, BlockId b);

/// All border blocks of the candidate partition, ascending by id.
std::vector<BlockId> borderBlocks(const Network& net, const BitSet& members);

/// The paper's removal rank: the net increase or decrease in the combined
/// indegree and outdegree (connection counts) of the candidate partition if
/// `b` were removed.  Negative ranks shrink the partition's cut.
int removalRank(const Network& net, const BitSet& members, BlockId b);

/// True if every path between two members stays inside the subgraph.
/// Convex subgraphs can be replaced by a single block without creating a
/// combinational dependency through the outside.
bool isConvex(const Network& net, const BitSet& members);

/// Process-wide tallies of the full-scan subgraph queries above.  The
/// incremental partitioners maintain the same quantities through
/// partition::PortCounter and must not fall back to these rescans on
/// their hot paths; the randomized partition tests snapshot the counts
/// around a run and assert they stay flat.  Counting is a relaxed atomic
/// increment per call -- negligible next to the scans themselves.
struct SubgraphScanCounts {
  std::uint64_t borderScans = 0;  ///< borderBlocks() calls
  std::uint64_t rankScans = 0;    ///< removalRank() calls
};
SubgraphScanCounts subgraphScanCounts();

}  // namespace eblocks

#endif  // EBLOCKS_CORE_SUBGRAPH_H_
