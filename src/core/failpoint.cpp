#include "core/failpoint.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

namespace eblocks::core::failpoint {

namespace {

// The catalog is the allow-list: set()/install() reject names that are
// not probed anywhere, so a typo'd schedule fails loudly instead of
// silently injecting nothing.  Keep descriptions to one line -- they are
// the `eblocksd --failpoints` output the doc-drift check pins.
const std::vector<CatalogEntry>& catalogStorage() {
  static const std::vector<CatalogEntry> entries = {
      {name::kCacheFsync,
       "solution store: fsync of the tmp record file fails"},
      {name::kCacheRead,
       "solution store: reading a record blob fails (error) or truncates "
       "(partial)"},
      {name::kCacheRecordDecode,
       "solution store: decoding a stored record raises a binary-format "
       "error"},
      {name::kCacheRename,
       "solution store: renaming the tmp record into place fails"},
      {name::kCacheTmpTorn,
       "solution store: the tmp record write silently tears to N bytes "
       "but reports success (crash-consistency probe)"},
      {name::kCacheTmpWrite,
       "solution store: writing the tmp record fails (error, default "
       "ENOSPC) or stops short after N bytes"},
      {name::kClientConnect, "client: connect() to the daemon fails"},
      {name::kClientRecv,
       "client: recv() fails (error), returns at most N bytes (partial), "
       "or stalls (delay)"},
      {name::kClientSend,
       "client: send() fails (error) or accepts at most N bytes (partial)"},
      {name::kIoReadNetwork,
       "binary io: reading a network frame raises a binary-format error"},
      {name::kIoReadRun,
       "binary io: reading a partition-run frame raises a binary-format "
       "error"},
      {name::kServerAccept, "event loop: accept() on the listener fails"},
      {name::kServerPoll, "event loop: poll() fails (default EINTR)"},
      {name::kServerRead,
       "event loop: recv() on a connection fails (error) or returns at "
       "most N bytes (partial)"},
      {name::kServerWrite,
       "event loop: send() on a connection fails (error) or accepts at "
       "most N bytes (partial)"},
  };
  return entries;
}

struct SiteState {
  Spec spec;                       // armed configuration (mode kOff = idle)
  std::uint64_t armedEvals = 0;    // evaluations since this arming
  std::uint64_t fired = 0;         // fires since this arming
  std::uint32_t rng = 1;           // kRandom xorshift state
  SiteStats lifetime;              // survives clear()
};

struct Registry {
  std::mutex mutex;
  std::map<std::string, SiteState, std::less<>> sites;
};

Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

std::uint32_t xorshift32(std::uint32_t& state) {
  state ^= state << 13;
  state ^= state >> 17;
  state ^= state << 5;
  return state;
}

bool validSpec(const Spec& spec) {
  switch (spec.mode) {
    case Mode::kOff:
      break;
    case Mode::kError:
      break;
    case Mode::kPartial:
      if (spec.arg == 0) return false;  // a 0-byte clamp would stall, not tear
      break;
    case Mode::kDelay:
      if (spec.arg > 60000) return false;  // cap: a schedule typo must not hang
      break;
    default:
      return false;
  }
  switch (spec.trigger) {
    case Trigger::kAlways:
    case Trigger::kOnce:
      return true;
    case Trigger::kTimes:
    case Trigger::kEveryN:
      return spec.n >= 1;
    case Trigger::kRandom:
      return spec.n >= 1 && spec.n <= 100;
  }
  return false;
}

bool parseUint(std::string_view text, std::uint64_t* out) {
  if (text.empty() || text.size() > 18) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

bool parseErrno(std::string_view text, std::uint64_t* out) {
  static const std::map<std::string_view, int> names = {
      {"eintr", EINTR},       {"eagain", EAGAIN},
      {"econnreset", ECONNRESET}, {"econnaborted", ECONNABORTED},
      {"enospc", ENOSPC},     {"eio", EIO},
      {"emfile", EMFILE},     {"epipe", EPIPE},
      {"etimedout", ETIMEDOUT},
  };
  const auto it = names.find(text);
  if (it != names.end()) {
    *out = static_cast<std::uint64_t>(it->second);
    return true;
  }
  return parseUint(text, out);
}

// Parses one `name=action[*trigger]` entry into (*outName, *outSpec).
bool parseEntry(std::string_view entry, std::string* outName, Spec* outSpec,
                std::string* error) {
  const auto fail = [&](const std::string& what) {
    if (error) *error = "failpoint entry '" + std::string(entry) + "': " + what;
    return false;
  };
  const std::size_t eq = entry.find('=');
  if (eq == std::string_view::npos) return fail("missing '='");
  const std::string_view siteName = entry.substr(0, eq);
  if (!known(siteName))
    return fail("unknown site '" + std::string(siteName) + "'");
  std::string_view rest = entry.substr(eq + 1);

  Spec spec;
  std::string_view action = rest;
  const std::size_t star = rest.find('*');
  if (star != std::string_view::npos) {
    action = rest.substr(0, star);
    const std::string_view trigger = rest.substr(star + 1);
    if (trigger == "once") {
      spec.trigger = Trigger::kOnce;
    } else if (trigger.rfind("times-", 0) == 0) {
      spec.trigger = Trigger::kTimes;
      if (!parseUint(trigger.substr(6), &spec.n) || spec.n == 0)
        return fail("bad times-N trigger");
    } else if (trigger.rfind("every-", 0) == 0) {
      spec.trigger = Trigger::kEveryN;
      if (!parseUint(trigger.substr(6), &spec.n) || spec.n == 0)
        return fail("bad every-N trigger");
    } else if (trigger.rfind("rand-", 0) == 0) {
      spec.trigger = Trigger::kRandom;
      std::string_view tail = trigger.substr(5);
      const std::size_t dash = tail.find('-');
      std::uint64_t seed = 1;
      if (dash != std::string_view::npos) {
        if (!parseUint(tail.substr(dash + 1), &seed) || seed == 0)
          return fail("bad rand seed");
        tail = tail.substr(0, dash);
      }
      if (!parseUint(tail, &spec.n) || spec.n == 0 || spec.n > 100)
        return fail("bad rand percent (1..100)");
      spec.seed = static_cast<std::uint32_t>(seed);
    } else {
      return fail("unknown trigger '" + std::string(trigger) + "'");
    }
  }

  std::string_view argText;
  const std::size_t colon = action.find(':');
  if (colon != std::string_view::npos) {
    argText = action.substr(colon + 1);
    action = action.substr(0, colon);
  }
  if (action == "off") {
    spec.mode = Mode::kOff;
    if (!argText.empty()) return fail("'off' takes no argument");
  } else if (action == "error") {
    spec.mode = Mode::kError;
    if (!argText.empty() && !parseErrno(argText, &spec.arg))
      return fail("unknown errno '" + std::string(argText) + "'");
  } else if (action == "partial") {
    spec.mode = Mode::kPartial;
    if (!parseUint(argText, &spec.arg))
      return fail("'partial' needs :N bytes");
  } else if (action == "delay") {
    spec.mode = Mode::kDelay;
    if (!parseUint(argText, &spec.arg))
      return fail("'delay' needs :MS milliseconds");
  } else {
    return fail("unknown action '" + std::string(action) + "'");
  }
  if (!validSpec(spec)) return fail("argument out of range");
  *outName = std::string(siteName);
  *outSpec = spec;
  return true;
}

// Must be called with registry().mutex held.
void applyLocked(Registry& reg, const std::string& siteName,
                 const Spec& spec) {
  auto it = reg.sites.find(siteName);
  const bool wasArmed =
      it != reg.sites.end() && it->second.spec.mode != Mode::kOff;
  if (spec.mode == Mode::kOff) {
    if (wasArmed) {
      it->second.spec = Spec{};
      detail::gArmed.fetch_sub(1, std::memory_order_relaxed);
    }
    return;
  }
  SiteState& state = reg.sites[siteName];
  state.spec = spec;
  state.armedEvals = 0;
  state.fired = 0;
  state.rng = spec.seed == 0 ? 1u : spec.seed;
  if (!wasArmed) detail::gArmed.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

namespace detail {

Hit evaluate(std::string_view siteName) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  const auto it = reg.sites.find(siteName);
  if (it == reg.sites.end() || it->second.spec.mode == Mode::kOff) return {};
  SiteState& state = it->second;
  ++state.armedEvals;
  ++state.lifetime.evaluations;
  const Spec& spec = state.spec;
  bool fire = false;
  switch (spec.trigger) {
    case Trigger::kAlways:
      fire = true;
      break;
    case Trigger::kOnce:
      fire = state.fired == 0;
      break;
    case Trigger::kTimes:
      fire = state.fired < spec.n;
      break;
    case Trigger::kEveryN:
      fire = state.armedEvals % spec.n == 0;
      break;
    case Trigger::kRandom:
      fire = xorshift32(state.rng) % 100 < spec.n;
      break;
  }
  if (!fire) return {};
  ++state.fired;
  ++state.lifetime.triggers;
  return Hit{spec.mode, spec.arg};
}

}  // namespace detail

void sleepFor(const Hit& hit) {
  if (hit.mode != Mode::kDelay || hit.arg == 0) return;
  std::this_thread::sleep_for(
      std::chrono::milliseconds(std::min<std::uint64_t>(hit.arg, 60000)));
}

bool set(std::string_view siteName, const Spec& spec) {
  if (!known(siteName) || !validSpec(spec)) return false;
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  applyLocked(reg, std::string(siteName), spec);
  return true;
}

void clear(std::string_view siteName) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  const auto it = reg.sites.find(siteName);
  if (it != reg.sites.end() && it->second.spec.mode != Mode::kOff) {
    it->second.spec = Spec{};
    detail::gArmed.fetch_sub(1, std::memory_order_relaxed);
  }
}

void clearAll() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  for (auto& [unused, state] : reg.sites) {
    if (state.spec.mode != Mode::kOff) {
      state.spec = Spec{};
      detail::gArmed.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

bool install(std::string_view schedule, std::string* error) {
  // Two passes: validate everything, then apply, so a bad entry cannot
  // leave a half-installed schedule armed.
  std::vector<std::pair<std::string, Spec>> parsed;
  std::string_view rest = schedule;
  while (!rest.empty()) {
    const std::size_t semi = rest.find(';');
    const std::string_view entry =
        semi == std::string_view::npos ? rest : rest.substr(0, semi);
    rest = semi == std::string_view::npos ? std::string_view{}
                                          : rest.substr(semi + 1);
    if (entry.empty()) continue;
    std::string siteName;
    Spec spec;
    if (!parseEntry(entry, &siteName, &spec, error)) return false;
    parsed.emplace_back(std::move(siteName), spec);
  }
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& [siteName, spec] : parsed) applyLocked(reg, siteName, spec);
  return true;
}

bool installFromEnv(std::string* error) {
  const char* schedule = std::getenv("EBLOCKS_FAILPOINTS");
  if (schedule == nullptr || schedule[0] == '\0') return true;
  return install(schedule, error);
}

SiteStats stats(std::string_view siteName) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  const auto it = reg.sites.find(siteName);
  return it == reg.sites.end() ? SiteStats{} : it->second.lifetime;
}

const std::vector<CatalogEntry>& catalog() { return catalogStorage(); }

bool known(std::string_view siteName) {
  for (const CatalogEntry& entry : catalogStorage())
    if (entry.name == siteName) return true;
  return false;
}

}  // namespace eblocks::core::failpoint
