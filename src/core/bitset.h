// Dynamic bitset used to represent subsets of blocks (candidate partitions,
// visited sets, ...).  std::vector<bool> lacks word-level operations and
// std::bitset is fixed-size; partition algorithms need fast whole-set
// union/intersection/difference over networks with up to a few thousand
// blocks, so we provide a small dedicated type.
#ifndef EBLOCKS_CORE_BITSET_H_
#define EBLOCKS_CORE_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace eblocks {

/// A fixed-universe dynamic bitset.  The universe size is set at
/// construction; all binary operations require equal universe sizes.
class BitSet {
 public:
  BitSet() = default;

  /// Creates an empty set over a universe of `nbits` elements.
  explicit BitSet(std::size_t nbits)
      : nbits_(nbits), words_((nbits + 63) / 64, 0) {}

  /// Universe size (number of addressable bits).
  std::size_t size() const { return nbits_; }

  /// Adds element `i` to the set.
  void set(std::size_t i) { words_[i >> 6] |= (std::uint64_t{1} << (i & 63)); }

  /// Removes element `i` from the set.
  void reset(std::size_t i) {
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }

  /// Returns true if element `i` is in the set.
  bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  /// Number of elements in the set.
  std::size_t count() const;

  /// True if the set is non-empty.
  bool any() const;

  /// True if the set is empty.
  bool none() const { return !any(); }

  /// Removes all elements.
  void clear();

  /// Set union / intersection / difference (in place).
  BitSet& operator|=(const BitSet& o);
  BitSet& operator&=(const BitSet& o);
  /// Removes every element of `o` from this set (this \ o).
  BitSet& andNot(const BitSet& o);

  friend bool operator==(const BitSet& a, const BitSet& b) {
    return a.nbits_ == b.nbits_ && a.words_ == b.words_;
  }

  /// Index of the lowest element, or `size()` if empty.
  std::size_t findFirst() const;

  /// Calls `f(i)` for every element `i` in ascending order.
  template <typename F>
  void forEach(F&& f) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w];
      while (bits) {
        const int b = __builtin_ctzll(bits);
        f(w * 64 + static_cast<std::size_t>(b));
        bits &= bits - 1;
      }
    }
  }

  /// The elements as an ascending vector (handy for tests and printing).
  std::vector<std::uint32_t> toVector() const;

 private:
  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace eblocks

#endif  // EBLOCKS_CORE_BITSET_H_
