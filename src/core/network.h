// The eBlock network: a directed acyclic graph of block instances.
//
// A network corresponds to the user's drawing in the capture tool: block
// instances and point-to-point connections from output ports to input
// ports.  Sensor blocks are the primary inputs of the graph and output
// blocks the primary outputs; the partitioner operates on the remaining
// "inner" blocks (pre-defined, non-programmable compute blocks).
//
// Networks are append-only: blocks and connections are added during
// construction and never removed.  Synthesis produces a fresh network
// rather than mutating the source (see synth/synthesizer.h).
#ifndef EBLOCKS_CORE_NETWORK_H_
#define EBLOCKS_CORE_NETWORK_H_

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/bitset.h"
#include "core/block.h"

namespace eblocks {

/// A directed connection from an output port to an input port.
struct Connection {
  Endpoint from;  ///< (block, output port)
  Endpoint to;    ///< (block, input port)
  friend auto operator<=>(const Connection&, const Connection&) = default;
};

/// Thrown when topological traversal encounters a cycle.
class CycleError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Network {
 public:
  explicit Network(std::string name = "network") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Adds a block instance; returns its dense id.  Instance names must be
  /// unique; an empty name is replaced by "<type>_<id>".
  BlockId addBlock(std::string instanceName, BlockTypePtr type);

  /// Connects `from` (an output port) to `to` (an input port).  Throws
  /// std::invalid_argument on out-of-range ports, class violations (e.g.
  /// connecting into a sensor), or double-driving an input port.
  void connect(Endpoint from, Endpoint to);
  void connect(BlockId fromBlock, int outPort, BlockId toBlock, int inPort);

  std::size_t blockCount() const { return blocks_.size(); }
  const Block& block(BlockId id) const { return blocks_.at(id); }
  std::span<const Connection> connections() const { return connections_; }

  /// Connections arriving at / leaving a block (all ports).
  std::span<const Connection> inputsOf(BlockId id) const;
  std::span<const Connection> outputsOf(BlockId id) const;

  /// The connection driving input port `inPort` of `id`, if connected.
  std::optional<Connection> driverOf(BlockId id, int inPort) const;

  /// Connections leaving output port `outPort` of `id` (fanout list).
  std::vector<Connection> fanoutOf(BlockId id, int outPort) const;

  // --- classification -----------------------------------------------------
  bool isSensor(BlockId id) const;
  bool isOutput(BlockId id) const;
  /// "Inner" blocks are the partitioner's universe: non-programmable
  /// pre-defined compute blocks (communication blocks are not mergeable).
  bool isInner(BlockId id) const;
  std::vector<BlockId> innerBlocks() const;

  /// An empty BitSet sized to this network's block universe.
  BitSet emptySet() const { return BitSet(blocks_.size()); }
  /// The set of all inner blocks as a BitSet.
  BitSet innerSet() const;

  // --- structure ----------------------------------------------------------
  /// Blocks in a topological order (sources first).  Throws CycleError.
  std::vector<BlockId> topoOrder() const;

  /// True if the connection graph contains no directed cycle.
  bool isAcyclic() const;

  /// Graph-structural indegree/outdegree (connection counts).
  int indegree(BlockId id) const;
  int outdegree(BlockId id) const;

  /// Structural sanity check: returns a list of human-readable problems
  /// (unconnected input ports, dangling compute outputs, cycles, ...).
  /// Empty result means the network is well-formed.
  std::vector<std::string> validate() const;

  /// Looks up a block by instance name.
  std::optional<BlockId> findBlock(const std::string& instanceName) const;

 private:
  std::string name_;
  std::vector<Block> blocks_;
  std::vector<Connection> connections_;
  // Per-block connection lists (indices into connections_ are not stable
  // references; we store copies for O(1) span access).
  std::vector<std::vector<Connection>> in_;
  std::vector<std::vector<Connection>> out_;
};

}  // namespace eblocks

#endif  // EBLOCKS_CORE_NETWORK_H_
