#include "core/block.h"

#include <utility>

namespace eblocks {

const char* toString(BlockClass c) {
  switch (c) {
    case BlockClass::kSensor: return "sensor";
    case BlockClass::kOutput: return "output";
    case BlockClass::kCompute: return "compute";
    case BlockClass::kCommunication: return "communication";
  }
  return "?";
}

BlockType::BlockType(std::string name, BlockClass cls,
                     std::vector<std::string> inputNames,
                     std::vector<std::string> outputNames,
                     std::string behaviorSource, bool sequential,
                     bool programmable)
    : name_(std::move(name)),
      class_(cls),
      inputs_(std::move(inputNames)),
      outputs_(std::move(outputNames)),
      behavior_(std::move(behaviorSource)),
      sequential_(sequential),
      programmable_(programmable) {
  if (class_ == BlockClass::kSensor && !inputs_.empty())
    throw std::invalid_argument("sensor block type cannot have inputs: " +
                                name_);
  if (class_ == BlockClass::kOutput && !outputs_.empty())
    throw std::invalid_argument("output block type cannot have outputs: " +
                                name_);
  if (programmable_ && class_ != BlockClass::kCompute)
    throw std::invalid_argument("programmable block must be a compute block: " +
                                name_);
}

}  // namespace eblocks
