#include "core/bitset.h"

#include <bit>

namespace eblocks {

std::size_t BitSet::count() const {
  std::size_t n = 0;
  for (std::uint64_t w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

bool BitSet::any() const {
  for (std::uint64_t w : words_)
    if (w) return true;
  return false;
}

void BitSet::clear() {
  for (std::uint64_t& w : words_) w = 0;
}

BitSet& BitSet::operator|=(const BitSet& o) {
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
  return *this;
}

BitSet& BitSet::operator&=(const BitSet& o) {
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
  return *this;
}

BitSet& BitSet::andNot(const BitSet& o) {
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~o.words_[i];
  return *this;
}

std::size_t BitSet::findFirst() const {
  for (std::size_t w = 0; w < words_.size(); ++w)
    if (words_[w]) {
      return w * 64 +
             static_cast<std::size_t>(std::countr_zero(words_[w]));
    }
  return nbits_;
}

std::vector<std::uint32_t> BitSet::toVector() const {
  std::vector<std::uint32_t> out;
  out.reserve(count());
  forEach([&](std::size_t i) { out.push_back(static_cast<std::uint32_t>(i)); });
  return out;
}

}  // namespace eblocks
