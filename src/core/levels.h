// Level assignment (Section 3.3 of the paper).
//
// Each block's level is the maximum distance between the block and any
// sensor block, analogous to the primary-input-based level definition in
// circuit partitioning.  Sensor blocks have level 0.  The code generator
// orders merged syntax trees by non-decreasing level so that no block's
// tree is evaluated before its producers'; the PareDown heuristic uses the
// level as its final removal tiebreak.
#ifndef EBLOCKS_CORE_LEVELS_H_
#define EBLOCKS_CORE_LEVELS_H_

#include <vector>

#include "core/network.h"

namespace eblocks {

/// Levels for every block, indexed by BlockId.  Blocks unreachable from any
/// sensor get level 0.  Throws CycleError on cyclic networks.
std::vector<int> computeLevels(const Network& net);

}  // namespace eblocks

#endif  // EBLOCKS_CORE_LEVELS_H_
