// Block types: the immutable descriptors of eBlocks.
//
// The eBlocks platform (Cotterell/Vahid et al.) features four classes of
// blocks communicating over a uniform serial packet protocol:
//   - sensor blocks sense environmental stimuli (buttons, light, motion...),
//   - output blocks act on the environment (LEDs, beepers, relays),
//   - compute blocks implement a pre-defined combinational or sequential
//     function on their inputs,
//   - communication blocks forward signals over another medium (RF, X10).
// A *programmable* block is a special compute block with a fixed number of
// input/output ports whose function is downloaded as generated C code.
#ifndef EBLOCKS_CORE_BLOCK_H_
#define EBLOCKS_CORE_BLOCK_H_

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace eblocks {

/// Dense index of a block instance inside a Network.
using BlockId = std::uint32_t;
inline constexpr BlockId kNoBlock = 0xffffffffu;

/// One side of a connection: an input or output port of a block instance.
struct Endpoint {
  BlockId block = kNoBlock;
  std::uint16_t port = 0;
  friend auto operator<=>(const Endpoint&, const Endpoint&) = default;
};

/// The four functional classes of eBlocks.
enum class BlockClass : std::uint8_t {
  kSensor,         ///< primary input; senses the environment
  kOutput,         ///< primary output; acts on the environment
  kCompute,        ///< pre-defined or programmable function
  kCommunication,  ///< medium adaptor (wireless, X10); logically a wire
};

/// Returns a human-readable name ("sensor", "output", ...).
const char* toString(BlockClass c);

/// Immutable descriptor of a block type: port lists, class, and the behavior
/// program (in the behavior DSL; see src/behavior) that the simulator
/// interprets and the code generator merges.
class BlockType {
 public:
  /// `behaviorSource` is a program in the behavior DSL.  For sensors it
  /// forwards the environment value; for outputs it consumes the input.
  /// `sequential` marks types with internal state (toggle, delay, ...).
  BlockType(std::string name, BlockClass cls,
            std::vector<std::string> inputNames,
            std::vector<std::string> outputNames, std::string behaviorSource,
            bool sequential = false, bool programmable = false);

  const std::string& name() const { return name_; }
  BlockClass blockClass() const { return class_; }

  int inputCount() const { return static_cast<int>(inputs_.size()); }
  int outputCount() const { return static_cast<int>(outputs_.size()); }
  const std::string& inputName(int i) const { return inputs_.at(static_cast<std::size_t>(i)); }
  const std::string& outputName(int i) const { return outputs_.at(static_cast<std::size_t>(i)); }
  const std::vector<std::string>& inputNames() const { return inputs_; }
  const std::vector<std::string>& outputNames() const { return outputs_; }

  /// Program text in the behavior DSL (see behavior/parser.h).
  const std::string& behaviorSource() const { return behavior_; }

  /// True for blocks with internal state (toggle, trip, delay, pulse...).
  bool sequential() const { return sequential_; }

  /// True for the programmable compute block (and synthesized replacements).
  bool programmable() const { return programmable_; }

 private:
  std::string name_;
  BlockClass class_;
  std::vector<std::string> inputs_;
  std::vector<std::string> outputs_;
  std::string behavior_;
  bool sequential_;
  bool programmable_;
};

using BlockTypePtr = std::shared_ptr<const BlockType>;

/// A block instance placed in a network.
struct Block {
  std::string name;   ///< unique instance name within the network
  BlockTypePtr type;  ///< shared immutable descriptor
};

}  // namespace eblocks

#endif  // EBLOCKS_CORE_BLOCK_H_
