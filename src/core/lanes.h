// Lane-packed values for the bit-parallel batch simulator (sim/batch_*).
//
// A LaneVector holds one value per simulation lane -- kLanes = 64
// independent stimulus streams advancing in lockstep -- in one of two
// forms:
//   - packed: every lane's value is 0 or 1, stored one bit per lane in a
//     single machine word.  This is the common case for eBlock port
//     traffic (gates, sensors, LEDs), and whole-word operations process
//     all 64 lanes at once, in the style of core/bitset's word loops;
//   - wide: one int64 per lane, for counters/timers and any value outside
//     {0, 1}.
// Values widen on demand and never re-pack; correctness never depends on
// the representation, only speed does.  Wide storage is always fully
// initialized across all kLanes so whole-array loops are well defined
// even when only a subset of lanes is live.
#ifndef EBLOCKS_CORE_LANES_H_
#define EBLOCKS_CORE_LANES_H_

#include <cstdint>
#include <cstring>

namespace eblocks {

/// Number of stimulus lanes packed per machine word.
inline constexpr int kLanes = 64;

/// One bit per lane; bit i refers to lane i.
using LaneMask = std::uint64_t;

inline constexpr LaneMask kAllLanes = ~LaneMask{0};

/// Mask selecting lanes [0, n).
inline constexpr LaneMask firstLanes(int n) {
  return n >= kLanes ? kAllLanes : (LaneMask{1} << n) - 1;
}

/// One value per lane, packed (1 bit/lane) or wide (int64/lane).
class LaneVector {
 public:
  /// All lanes 0, packed.  (User-provided so `const LaneVector` default
  /// constructs; wide_ is intentionally untouched while packed.)
  LaneVector() {}

  LaneVector(const LaneVector& o) { assign(o); }
  LaneVector& operator=(const LaneVector& o) {
    if (this != &o) assign(o);
    return *this;
  }

  /// All lanes set to `v` (packed when v is 0 or 1).
  static LaneVector splat(std::int64_t v) {
    LaneVector r;
    if (v == 0 || v == 1) {
      r.bits_ = v ? kAllLanes : 0;
    } else {
      r.packed_ = false;
      for (int i = 0; i < kLanes; ++i) r.wide_[i] = v;
    }
    return r;
  }

  /// Packed vector from a bit word (lane i = bit i).
  static LaneVector fromBits(LaneMask bits) {
    LaneVector r;
    r.bits_ = bits;
    return r;
  }

  bool packed() const { return packed_; }
  /// Valid only when packed().
  LaneMask bits() const { return bits_; }
  /// Valid only when !packed(); always fully initialized over kLanes.
  const std::int64_t* wide() const { return wide_; }

  std::int64_t lane(int i) const {
    return packed_ ? static_cast<std::int64_t>((bits_ >> i) & 1u) : wide_[i];
  }

  void setLane(int i, std::int64_t v) {
    if (packed_) {
      if (v == 0 || v == 1) {
        bits_ = (bits_ & ~(LaneMask{1} << i)) |
                (static_cast<LaneMask>(v) << i);
        return;
      }
      widen();
    }
    wide_[i] = v;
  }

  /// Overwrites all lanes from a full-width array (aliasing allowed).
  void setWide(const std::int64_t* src) {
    packed_ = false;
    std::memmove(wide_, src, sizeof(wide_));
  }

  /// Mutable wide storage; valid only when !packed().
  std::int64_t* wideData() { return wide_; }

  /// Materializes the wide form in place (no-op when already wide).
  void widen() {
    if (!packed_) return;
    for (int i = 0; i < kLanes; ++i)
      wide_[i] = static_cast<std::int64_t>((bits_ >> i) & 1u);
    packed_ = false;
  }

  /// Lanes whose value is nonzero.
  LaneMask truthy() const {
    if (packed_) return bits_;
    LaneMask m = 0;
    for (int i = 0; i < kLanes; ++i)
      m |= static_cast<LaneMask>(wide_[i] != 0) << i;
    return m;
  }

  /// Overwrites the lanes in `mask` with `src`'s values; other lanes keep
  /// their current value.  Stays packed when both sides are packed.
  void mergeFrom(const LaneVector& src, LaneMask mask) {
    if (mask == kAllLanes) {
      assign(src);
      return;
    }
    if (packed_ && src.packed_) {
      bits_ = (bits_ & ~mask) | (src.bits_ & mask);
      return;
    }
    widen();
    for (int i = 0; i < kLanes; ++i)
      if ((mask >> i) & 1u) wide_[i] = src.lane(i);
  }

  /// Lanes where `a` and `b` differ.
  friend LaneMask laneDiff(const LaneVector& a, const LaneVector& b) {
    if (a.packed_ && b.packed_) return a.bits_ ^ b.bits_;
    LaneMask m = 0;
    for (int i = 0; i < kLanes; ++i)
      m |= static_cast<LaneMask>(a.lane(i) != b.lane(i)) << i;
    return m;
  }

 private:
  void assign(const LaneVector& o) {
    packed_ = o.packed_;
    bits_ = o.bits_;
    if (!o.packed_) std::memcpy(wide_, o.wide_, sizeof(wide_));
  }

  bool packed_ = true;
  LaneMask bits_ = 0;
  std::int64_t wide_[kLanes];  // valid (and fully initialized) iff !packed_
};

}  // namespace eblocks

#endif  // EBLOCKS_CORE_LANES_H_
