#include "core/levels.h"

#include <algorithm>

namespace eblocks {

std::vector<int> computeLevels(const Network& net) {
  std::vector<int> level(net.blockCount(), 0);
  // Longest path from sensors, relaxed along a topological order.  The
  // paper: "assigns levels by tracing the paths in the network, beginning
  // with sensor blocks ... blocks visited multiple times retain the
  // greatest level value".
  for (BlockId u : net.topoOrder())
    for (const Connection& c : net.outputsOf(u))
      level[c.to.block] = std::max(level[c.to.block], level[u] + 1);
  return level;
}

}  // namespace eblocks
