// Failpoints: named fault-injection sites on every syscall-shaped edge.
//
// A failpoint is a compiled-in probe at a place where the real world can
// fail -- a cache write that hits a full disk, a socket read interrupted
// by a signal, a peer that stalls mid-frame.  Production code asks
// `check(name)` before (or instead of) the fragile operation; when the
// site is armed the probe answers with a fault to simulate, and the
// surrounding error-handling path runs exactly as it would on the real
// fault.  The chaos harness (tests/integration/chaos_test.cpp) drives
// randomized schedules through these probes against a live daemon.
//
// Zero cost when disabled: `check()` is a single relaxed atomic load of
// a process-wide arm counter, no lock, no map lookup, no allocation
// (bench_micro's `failpoint/disabled/checks` record pins this).  The
// slow path only runs while at least one site is armed.
//
// Activation:
//   - programmatic: `set(name, spec)` / `clear(name)` / `clearAll()`;
//   - schedule string: `install("cache.rename=error:eio*once;...")`;
//   - environment: `installFromEnv()` reads EBLOCKS_FAILPOINTS (the
//     daemon calls this at startup; library embedders opt in).
//
// Schedule grammar (one entry per site, ';'-separated):
//
//   entry   := name '=' action [ '*' trigger ]
//   action  := 'off'
//            | 'error' [ ':' errno-name-or-number ]   simulated syscall error
//            | 'partial' ':' N                        clamp the op to N bytes
//            | 'delay' ':' MS                         sleep MS milliseconds
//   trigger := 'once'                                 first evaluation only
//            | 'times-' N                             first N evaluations
//            | 'every-' N                             every Nth evaluation
//            | 'rand-' P [ '-' SEED ]                 P% of evaluations,
//                                                     seeded xorshift32
//
// Without a trigger the site fires on every evaluation.  Errno names:
// eintr, eagain, econnreset, econnaborted, enospc, eio, emfile, epipe,
// etimedout.  Unknown site names are rejected at install time -- the
// catalog below is the single source of truth (`eblocksd --failpoints`
// prints it; docs/robustness.md pins it via the doc-drift check).
#ifndef EBLOCKS_CORE_FAILPOINT_H_
#define EBLOCKS_CORE_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace eblocks::core::failpoint {

/// What an armed site injects.
enum class Mode : std::uint8_t {
  kOff = 0,
  kError,    ///< simulate the syscall failing; arg = errno (0 = site default)
  kPartial,  ///< clamp the operation to arg bytes (>= 1)
  kDelay,    ///< sleep arg milliseconds before the operation
};

/// When an armed site fires.
enum class Trigger : std::uint8_t {
  kAlways = 0,
  kOnce,    ///< first evaluation only
  kTimes,   ///< first n evaluations
  kEveryN,  ///< every nth evaluation (n >= 1)
  kRandom,  ///< n% of evaluations, xorshift32 seeded with `seed`
};

/// An armed site's configuration.
struct Spec {
  Mode mode = Mode::kOff;
  std::uint64_t arg = 0;  ///< errno / byte clamp / milliseconds, per mode
  Trigger trigger = Trigger::kAlways;
  std::uint64_t n = 0;        ///< kTimes / kEveryN count, kRandom percent
  std::uint32_t seed = 1;     ///< kRandom xorshift seed
};

/// The answer `check()` gives a site: false-y when the site should
/// proceed normally, otherwise the fault to simulate.
struct Hit {
  Mode mode = Mode::kOff;
  std::uint64_t arg = 0;
  explicit operator bool() const { return mode != Mode::kOff; }
};

namespace detail {
/// Process-wide count of armed sites.  Zero (the norm) short-circuits
/// check() to a single relaxed load.
inline std::atomic<int> gArmed{0};
Hit evaluate(std::string_view name);
}  // namespace detail

/// Probes the named site.  The disabled fast path is one relaxed atomic
/// load; call it freely on syscall-shaped edges, never in inner loops.
inline Hit check(std::string_view name) {
  if (detail::gArmed.load(std::memory_order_relaxed) == 0) [[likely]]
    return {};
  return detail::evaluate(name);
}

/// Sleeps for a kDelay hit (clamped to 60 s); no-op for other modes.
void sleepFor(const Hit& hit);

/// Arms `name` with `spec` (replacing any previous arming).  Returns
/// false (and leaves the site untouched) when `name` is not in the
/// catalog or the spec is malformed.
bool set(std::string_view name, const Spec& spec);

/// Disarms one site / every site.
void clear(std::string_view name);
void clearAll();

/// Parses and installs a schedule string (grammar above).  Entries are
/// applied left to right on top of whatever is already armed; `off`
/// disarms a site.  On a parse error nothing is changed, false is
/// returned, and *error (when non-null) describes the offending entry.
bool install(std::string_view schedule, std::string* error = nullptr);

/// install() from the EBLOCKS_FAILPOINTS environment variable.  Returns
/// true when the variable is unset/empty or installed cleanly.
bool installFromEnv(std::string* error = nullptr);

/// Per-site counters (monotonic since process start, surviving clear()).
struct SiteStats {
  std::uint64_t evaluations = 0;  ///< check() calls while armed
  std::uint64_t triggers = 0;     ///< evaluations that fired
};
SiteStats stats(std::string_view name);

/// The registered catalog, sorted by name.
struct CatalogEntry {
  std::string_view name;
  std::string_view description;
};
const std::vector<CatalogEntry>& catalog();

/// True when `name` is a registered site.
bool known(std::string_view name);

/// Registered site names.  Every name passed to check() in the tree must
/// appear here -- `eblocksd --failpoints` prints name + description and
/// the doc-drift check diffs that against docs/robustness.md.
namespace name {
inline constexpr const char* kCacheTmpWrite = "cache.tmp.write";
inline constexpr const char* kCacheTmpTorn = "cache.tmp.torn";
inline constexpr const char* kCacheFsync = "cache.fsync";
inline constexpr const char* kCacheRename = "cache.rename";
inline constexpr const char* kCacheRead = "cache.read";
inline constexpr const char* kCacheRecordDecode = "cache.record.decode";
inline constexpr const char* kIoReadNetwork = "io.read.network";
inline constexpr const char* kIoReadRun = "io.read.run";
inline constexpr const char* kServerAccept = "server.accept";
inline constexpr const char* kServerRead = "server.read";
inline constexpr const char* kServerWrite = "server.write";
inline constexpr const char* kServerPoll = "server.poll";
inline constexpr const char* kClientConnect = "client.connect";
inline constexpr const char* kClientSend = "client.send";
inline constexpr const char* kClientRecv = "client.recv";
}  // namespace name

}  // namespace eblocks::core::failpoint

#endif  // EBLOCKS_CORE_FAILPOINT_H_
