#include "core/subgraph.h"

#include <algorithm>
#include <atomic>
#include <set>

namespace eblocks {

namespace {
std::atomic<std::uint64_t> borderScanCount{0};
std::atomic<std::uint64_t> rankScanCount{0};
}  // namespace

SubgraphScanCounts subgraphScanCounts() {
  return {borderScanCount.load(std::memory_order_relaxed),
          rankScanCount.load(std::memory_order_relaxed)};
}

const char* toString(CountingMode m) {
  switch (m) {
    case CountingMode::kEdges: return "edges";
    case CountingMode::kSignals: return "signals";
  }
  return "?";
}

IoCount countIo(const Network& net, const BitSet& members, CountingMode mode) {
  IoCount io;
  if (mode == CountingMode::kEdges) {
    members.forEach([&](std::size_t bi) {
      const BlockId b = static_cast<BlockId>(bi);
      for (const Connection& c : net.inputsOf(b))
        if (!members.test(c.from.block)) ++io.inputs;
      for (const Connection& c : net.outputsOf(b))
        if (!members.test(c.to.block)) ++io.outputs;
    });
    return io;
  }
  // kSignals: distinct external source endpoints feeding the partition, and
  // distinct internal source endpoints feeding the outside.
  std::set<Endpoint> inSrc, outSrc;
  members.forEach([&](std::size_t bi) {
    const BlockId b = static_cast<BlockId>(bi);
    for (const Connection& c : net.inputsOf(b))
      if (!members.test(c.from.block)) inSrc.insert(c.from);
    for (const Connection& c : net.outputsOf(b))
      if (!members.test(c.to.block)) outSrc.insert(c.from);
  });
  io.inputs = static_cast<int>(inSrc.size());
  io.outputs = static_cast<int>(outSrc.size());
  return io;
}

bool isBorderBlock(const Network& net, const BitSet& members, BlockId b) {
  bool allOutputsOutside = true;
  for (const Connection& c : net.outputsOf(b))
    if (members.test(c.to.block)) {
      allOutputsOutside = false;
      break;
    }
  if (allOutputsOutside) return true;
  for (const Connection& c : net.inputsOf(b))
    if (members.test(c.from.block)) return false;
  return true;  // every input connects outside
}

std::vector<BlockId> borderBlocks(const Network& net, const BitSet& members) {
  borderScanCount.fetch_add(1, std::memory_order_relaxed);
  std::vector<BlockId> out;
  members.forEach([&](std::size_t bi) {
    const BlockId b = static_cast<BlockId>(bi);
    if (isBorderBlock(net, members, b)) out.push_back(b);
  });
  return out;
}

int removalRank(const Network& net, const BitSet& members, BlockId b) {
  rankScanCount.fetch_add(1, std::memory_order_relaxed);
  // Connections between b and the rest of the partition become part of the
  // cut when b is removed (+1 each); connections between b and the outside
  // leave the cut (-1 each).
  int rank = 0;
  for (const Connection& c : net.inputsOf(b))
    rank += members.test(c.from.block) ? 1 : -1;
  for (const Connection& c : net.outputsOf(b))
    rank += members.test(c.to.block) ? 1 : -1;
  return rank;
}

bool isConvex(const Network& net, const BitSet& members) {
  // A subgraph S is convex iff no path leaves S and re-enters it.  Mark
  // every block outside S that is reachable from S; if any such block feeds
  // back into S, S is non-convex.  Single pass along a topological order.
  const std::vector<BlockId> order = net.topoOrder();
  std::vector<char> tainted(net.blockCount(), 0);  // outside, downstream of S
  for (BlockId u : order) {
    const bool inside = members.test(u);
    if (!inside && !tainted[u]) continue;
    for (const Connection& c : net.outputsOf(u)) {
      const BlockId v = c.to.block;
      if (members.test(v)) {
        if (!inside) return false;  // tainted outside block re-enters S
      } else {
        tainted[v] = 1;
      }
    }
  }
  return true;
}

}  // namespace eblocks
