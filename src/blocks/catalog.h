// The eBlocks catalog: every pre-defined block type plus the programmable
// block factory.
//
// Reconstructed from Section 2 of the paper ("Pre-defined compute functions
// include combinational functions, such as a two or three input truth
// table, AND, OR, and NOT, and basic sequential functions, like a toggle,
// trip, pulse generate, and delay") and the companion eBlocks papers.
//
// Simulator contract for behavior programs:
//   - each input port name is bound to the last value received on that port
//     before the program runs;
//   - each output port name is read after the program runs; a packet is
//     emitted when the value changed;
//   - `tick` is 1 when the activation is a timer tick, else 0;
//   - sensor behaviors read `env` (bound by the stimulus);
//   - output-block behaviors write `display` (read by probes).
#ifndef EBLOCKS_BLOCKS_CATALOG_H_
#define EBLOCKS_BLOCKS_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "core/block.h"

namespace eblocks::blocks {

/// Builds and caches block types.  Copyable handle semantics are not
/// needed; construct one per tool or use defaultCatalog().
class Catalog {
 public:
  Catalog();

  /// Looks a type up by name ("and2", "toggle", "delay_5", ...).  Throws
  /// std::out_of_range for unknown names.  Parameterized names such as
  /// "delay_7" or "logic2_9" are materialized on demand.
  BlockTypePtr get(const std::string& name) const;

  /// Names of all pre-built types (excluding on-demand parameterized ones).
  std::vector<std::string> names() const;

  // --- sensors (0 inputs, 1 output) -------------------------------------
  BlockTypePtr button() const { return get("button"); }
  BlockTypePtr contactSwitch() const { return get("contact_switch"); }
  BlockTypePtr lightSensor() const { return get("light_sensor"); }
  BlockTypePtr motionSensor() const { return get("motion_sensor"); }
  BlockTypePtr soundSensor() const { return get("sound_sensor"); }
  BlockTypePtr magneticSensor() const { return get("magnetic_sensor"); }
  BlockTypePtr temperatureSensor() const { return get("temperature_sensor"); }

  // --- outputs (1 input, 0 outputs) --------------------------------------
  BlockTypePtr led() const { return get("led"); }
  BlockTypePtr beeper() const { return get("beeper"); }
  BlockTypePtr relay() const { return get("relay"); }

  // --- combinational compute ---------------------------------------------
  /// 2-input truth table; bit i of `tt` is f(a,b) with i = a*2+b.
  BlockTypePtr logic2(unsigned tt) const;
  /// 3-input truth table; bit i of `tt` is f(a,b,c) with i = a*4+b*2+c.
  BlockTypePtr logic3(unsigned tt) const;
  BlockTypePtr and2() const { return get("and2"); }
  BlockTypePtr or2() const { return get("or2"); }
  BlockTypePtr xor2() const { return get("xor2"); }
  BlockTypePtr nand2() const { return get("nand2"); }
  BlockTypePtr nor2() const { return get("nor2"); }
  BlockTypePtr and3() const { return get("and3"); }
  BlockTypePtr or3() const { return get("or3"); }
  BlockTypePtr majority3() const { return get("majority3"); }
  BlockTypePtr inverter() const { return get("not"); }
  BlockTypePtr buffer() const { return get("yes"); }
  /// 1 input replicated on `ways` output ports (2 or 3).
  BlockTypePtr splitter(int ways) const;

  // --- sequential compute --------------------------------------------------
  /// Rising edge on input flips the output.
  BlockTypePtr toggle() const { return get("toggle"); }
  /// Latches 1 forever once the input is seen high.
  BlockTypePtr trip() const { return get("trip"); }
  /// Latch with reset input.
  BlockTypePtr tripReset() const { return get("trip_reset"); }
  /// Rising edge emits a 1-pulse lasting `ticks` timer ticks.
  BlockTypePtr pulseGen(int ticks) const;
  /// Output follows input once it has been stable for `ticks` ticks.
  BlockTypePtr delay(int ticks) const;
  /// Holds a 1 for `ticks` extra ticks after the input falls.
  BlockTypePtr prolonger(int ticks) const;

  // --- communication (logical wire over another medium) -------------------
  BlockTypePtr rfLink() const { return get("rf_link"); }
  BlockTypePtr x10Link() const { return get("x10_link"); }

  // --- programmable -----------------------------------------------------
  /// The programmable block: `inputs` x `outputs` ports, no behavior until
  /// programmed.  The paper's experiments use programmable(2, 2).
  BlockTypePtr programmable(int inputs, int outputs) const;

 private:
  void add(BlockTypePtr t);
  mutable std::map<std::string, BlockTypePtr> types_;
};

/// Shared default catalog (built on first use).
const Catalog& defaultCatalog();

}  // namespace eblocks::blocks

#endif  // EBLOCKS_BLOCKS_CATALOG_H_
