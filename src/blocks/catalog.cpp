#include "blocks/catalog.h"

#include <stdexcept>

#include "behavior/parser.h"  // validate behaviors at catalog build time

namespace eblocks::blocks {

namespace {

/// Replaces every occurrence of `${key}` in `tmpl`.
std::string substitute(std::string tmpl, const std::string& key,
                       const std::string& value) {
  const std::string needle = "${" + key + "}";
  std::size_t pos = 0;
  while ((pos = tmpl.find(needle, pos)) != std::string::npos) {
    tmpl.replace(pos, needle.size(), value);
    pos += value.size();
  }
  return tmpl;
}

BlockTypePtr makeType(std::string name, BlockClass cls,
                      std::vector<std::string> ins,
                      std::vector<std::string> outs, std::string src,
                      bool sequential = false, bool programmable = false) {
  // Parse once here so a typo in the catalog fails fast, at startup.
  (void)behavior::parse(src);
  return std::make_shared<const BlockType>(
      std::move(name), cls, std::move(ins), std::move(outs), std::move(src),
      sequential, programmable);
}

std::string truthTable2Source(unsigned tt) {
  std::string src;
  for (int a = 0; a <= 1; ++a)
    for (int b = 0; b <= 1; ++b) {
      const int bit = (tt >> (a * 2 + b)) & 1u;
      src += "if (a == " + std::to_string(a) + " && b == " +
             std::to_string(b) + ") { out = " + std::to_string(bit) + "; }\n";
    }
  return src;
}

std::string truthTable3Source(unsigned tt) {
  std::string src;
  for (int a = 0; a <= 1; ++a)
    for (int b = 0; b <= 1; ++b)
      for (int c = 0; c <= 1; ++c) {
        const int bit = (tt >> (a * 4 + b * 2 + c)) & 1u;
        src += "if (a == " + std::to_string(a) + " && b == " +
               std::to_string(b) + " && c == " + std::to_string(c) +
               ") { out = " + std::to_string(bit) + "; }\n";
      }
  return src;
}

constexpr char kPulseGenSource[] = R"(
var count = 0;
var prev = 0;
if (a == 1 && prev == 0) { count = ${N}; }
prev = a;
if (tick == 1 && count > 0) { count = count - 1; }
if (count > 0) { out = 1; } else { out = 0; }
)";

constexpr char kDelaySource[] = R"(
var target = 0;
var count = 0;
var q = 0;
if (a != target) { target = a; count = ${N}; }
if (tick == 1 && count > 0) { count = count - 1; }
if (count == 0) { q = target; }
out = q;
)";

constexpr char kProlongerSource[] = R"(
var count = 0;
if (a == 1) { count = ${N}; }
if (tick == 1 && a == 0 && count > 0) { count = count - 1; }
if (a == 1 || count > 0) { out = 1; } else { out = 0; }
)";

}  // namespace

Catalog::Catalog() {
  const auto sensor = [](const std::string& n) {
    return makeType(n, BlockClass::kSensor, {}, {"out"}, "out = env;\n");
  };
  add(sensor("button"));
  add(sensor("contact_switch"));
  add(sensor("light_sensor"));
  add(sensor("motion_sensor"));
  add(sensor("sound_sensor"));
  add(sensor("magnetic_sensor"));
  add(sensor("temperature_sensor"));

  const auto output = [](const std::string& n) {
    return makeType(n, BlockClass::kOutput, {"a"}, {},
                    "var display = 0;\ndisplay = a;\n");
  };
  add(output("led"));
  add(output("beeper"));
  add(output("relay"));

  // Named 2-input gates are aliases of logic2 truth tables.
  const auto gate2 = [](const std::string& n, unsigned tt) {
    return makeType(n, BlockClass::kCompute, {"a", "b"}, {"out"},
                    truthTable2Source(tt));
  };
  add(gate2("and2", 0b1000));
  add(gate2("or2", 0b1110));
  add(gate2("xor2", 0b0110));
  add(gate2("nand2", 0b0111));
  add(gate2("nor2", 0b0001));

  const auto gate3 = [](const std::string& n, unsigned tt) {
    return makeType(n, BlockClass::kCompute, {"a", "b", "c"}, {"out"},
                    truthTable3Source(tt));
  };
  add(gate3("and3", 0b10000000));
  add(gate3("or3", 0b11111110));
  add(gate3("majority3", 0b11101000));

  add(makeType("not", BlockClass::kCompute, {"a"}, {"out"}, "out = !a;\n"));
  add(makeType("yes", BlockClass::kCompute, {"a"}, {"out"}, "out = a;\n"));

  add(makeType("toggle", BlockClass::kCompute, {"a"}, {"out"},
               "var q = 0;\nvar prev = 0;\n"
               "if (a == 1 && prev == 0) { q = !q; }\n"
               "prev = a;\nout = q;\n",
               /*sequential=*/true));
  add(makeType("trip", BlockClass::kCompute, {"a"}, {"out"},
               "var q = 0;\nif (a == 1) { q = 1; }\nout = q;\n",
               /*sequential=*/true));
  add(makeType("trip_reset", BlockClass::kCompute, {"a", "r"}, {"out"},
               "var q = 0;\nif (a == 1) { q = 1; }\n"
               "if (r == 1) { q = 0; }\nout = q;\n",
               /*sequential=*/true));

  const auto comm = [](const std::string& n) {
    return makeType(n, BlockClass::kCommunication, {"a"}, {"out"},
                    "out = a;\n");
  };
  add(comm("rf_link"));
  add(comm("x10_link"));
}

void Catalog::add(BlockTypePtr t) {
  const std::string& name = t->name();
  if (!types_.emplace(name, std::move(t)).second)
    throw std::invalid_argument("catalog: duplicate type " + name);
}

BlockTypePtr Catalog::get(const std::string& name) const {
  const auto it = types_.find(name);
  if (it != types_.end()) return it->second;
  // Parameterized families, materialized on demand.
  const auto parseSuffix = [&](const std::string& prefix) -> int {
    if (name.rfind(prefix, 0) != 0) return -1;
    const std::string num = name.substr(prefix.size());
    if (num.empty() ||
        num.find_first_not_of("0123456789") != std::string::npos)
      return -1;
    return std::stoi(num);
  };
  if (const int n = parseSuffix("delay_"); n >= 0) return delay(n);
  if (const int n = parseSuffix("pulse_"); n >= 0) return pulseGen(n);
  if (const int n = parseSuffix("prolong_"); n >= 0) return prolonger(n);
  if (const int n = parseSuffix("logic2_"); n >= 0)
    return logic2(static_cast<unsigned>(n));
  if (const int n = parseSuffix("logic3_"); n >= 0)
    return logic3(static_cast<unsigned>(n));
  if (const int n = parseSuffix("splitter"); n >= 0) return splitter(n);
  if (name.rfind("prog_", 0) == 0) {
    const std::size_t x = name.find('x', 5);
    if (x != std::string::npos)
      return programmable(std::stoi(name.substr(5, x - 5)),
                          std::stoi(name.substr(x + 1)));
  }
  throw std::out_of_range("catalog: unknown block type '" + name + "'");
}

std::vector<std::string> Catalog::names() const {
  std::vector<std::string> out;
  out.reserve(types_.size());
  for (const auto& [name, type] : types_) out.push_back(name);
  return out;
}

BlockTypePtr Catalog::logic2(unsigned tt) const {
  if (tt > 0xf) throw std::invalid_argument("logic2: truth table > 4 bits");
  const std::string name = "logic2_" + std::to_string(tt);
  const auto it = types_.find(name);
  if (it != types_.end()) return it->second;
  auto t = makeType(name, BlockClass::kCompute, {"a", "b"}, {"out"},
                    truthTable2Source(tt));
  types_.emplace(name, t);
  return t;
}

BlockTypePtr Catalog::logic3(unsigned tt) const {
  if (tt > 0xff) throw std::invalid_argument("logic3: truth table > 8 bits");
  const std::string name = "logic3_" + std::to_string(tt);
  const auto it = types_.find(name);
  if (it != types_.end()) return it->second;
  auto t = makeType(name, BlockClass::kCompute, {"a", "b", "c"}, {"out"},
                    truthTable3Source(tt));
  types_.emplace(name, t);
  return t;
}

BlockTypePtr Catalog::splitter(int ways) const {
  if (ways < 2 || ways > 3)
    throw std::invalid_argument("splitter: 2 or 3 ways supported");
  const std::string name = "splitter" + std::to_string(ways);
  const auto it = types_.find(name);
  if (it != types_.end()) return it->second;
  std::vector<std::string> outs;
  std::string src;
  for (int i = 0; i < ways; ++i) {
    outs.push_back("out" + std::to_string(i));
    src += outs.back() + " = a;\n";
  }
  auto t = makeType(name, BlockClass::kCompute, {"a"}, std::move(outs), src);
  types_.emplace(name, t);
  return t;
}

BlockTypePtr Catalog::pulseGen(int ticks) const {
  if (ticks <= 0) throw std::invalid_argument("pulseGen: ticks must be > 0");
  const std::string name = "pulse_" + std::to_string(ticks);
  const auto it = types_.find(name);
  if (it != types_.end()) return it->second;
  auto t = makeType(name, BlockClass::kCompute, {"a"}, {"out"},
                    substitute(kPulseGenSource, "N", std::to_string(ticks)),
                    /*sequential=*/true);
  types_.emplace(name, t);
  return t;
}

BlockTypePtr Catalog::delay(int ticks) const {
  if (ticks < 0) throw std::invalid_argument("delay: ticks must be >= 0");
  const std::string name = "delay_" + std::to_string(ticks);
  const auto it = types_.find(name);
  if (it != types_.end()) return it->second;
  auto t = makeType(name, BlockClass::kCompute, {"a"}, {"out"},
                    substitute(kDelaySource, "N", std::to_string(ticks)),
                    /*sequential=*/true);
  types_.emplace(name, t);
  return t;
}

BlockTypePtr Catalog::prolonger(int ticks) const {
  if (ticks <= 0) throw std::invalid_argument("prolonger: ticks must be > 0");
  const std::string name = "prolong_" + std::to_string(ticks);
  const auto it = types_.find(name);
  if (it != types_.end()) return it->second;
  auto t = makeType(name, BlockClass::kCompute, {"a"}, {"out"},
                    substitute(kProlongerSource, "N", std::to_string(ticks)),
                    /*sequential=*/true);
  types_.emplace(name, t);
  return t;
}

BlockTypePtr Catalog::programmable(int inputs, int outputs) const {
  if (inputs < 1 || outputs < 1)
    throw std::invalid_argument("programmable: need at least 1x1 ports");
  const std::string name =
      "prog_" + std::to_string(inputs) + "x" + std::to_string(outputs);
  const auto it = types_.find(name);
  if (it != types_.end()) return it->second;
  std::vector<std::string> ins, outs;
  for (int i = 0; i < inputs; ++i) ins.push_back("in" + std::to_string(i));
  for (int i = 0; i < outputs; ++i) outs.push_back("out" + std::to_string(i));
  auto t = std::make_shared<const BlockType>(
      name, BlockClass::kCompute, std::move(ins), std::move(outs),
      /*behaviorSource=*/"", /*sequential=*/true, /*programmable=*/true);
  types_.emplace(name, t);
  return t;
}

const Catalog& defaultCatalog() {
  static const Catalog catalog;
  return catalog;
}

}  // namespace eblocks::blocks
