// The aggregation heuristic (Section 4.2, first paragraph).
//
// The paper's first attempt before PareDown: starting from the inner nodes
// connected to primary inputs, greedily grow clusters one neighbor at a
// time as long as the cluster still fits a programmable block.  It is fast
// but has no look-ahead, so it cannot exploit convergence (re-absorbing a
// signal's consumers to cancel outputs) and often yields non-optimal
// results -- which is exactly the behavior our ablation bench demonstrates.
#ifndef EBLOCKS_PARTITION_AGGREGATION_H_
#define EBLOCKS_PARTITION_AGGREGATION_H_

#include "partition/problem.h"
#include "partition/result.h"

namespace eblocks::partition {

/// Runs the aggregation heuristic.  Deterministic: seeds are taken in
/// (level, id) order; growth candidates likewise.
PartitionRun aggregation(const PartitionProblem& problem);

}  // namespace eblocks::partition

#endif  // EBLOCKS_PARTITION_AGGREGATION_H_
