#include "partition/greedy_seed.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "partition/paredown.h"
#include "partition/port_counter.h"
#include "partition/validity.h"

namespace eblocks::partition {

PartitionRun greedySeed(const PartitionProblem& problem) {
  const auto start = std::chrono::steady_clock::now();
  const CompactGraph& graph = problem.graph();
  const ProgBlockSpec& spec = problem.spec();

  PartitionRun run;
  run.algorithm = "greedy";

  // Seeds in (level, id) order, like aggregation: clusters grow downstream
  // from the sensor frontier, which keeps early clusters out of each
  // other's fanout.
  std::vector<BlockId> seeds = problem.innerBlocks();
  std::sort(seeds.begin(), seeds.end(), [&](BlockId a, BlockId b) {
    const int la = problem.levels()[a], lb = problem.levels()[b];
    return la != lb ? la < lb : a < b;
  });

  BitSet unassigned = problem.innerSet();
  PortCounter cluster(graph, spec.mode);
  // BFS frontier of candidate neighbors; `queued` stamps blocks already
  // enqueued for the current cluster so a block is probed at most once
  // per cluster even when several members touch it.
  std::vector<BlockId> frontier;
  std::vector<std::uint32_t> queuedStamp(graph.blockCount(), 0);
  std::uint32_t stamp = 0;

  const auto enqueueNeighbors = [&](BlockId member) {
    const auto consider = [&](BlockId nb) {
      if (queuedStamp[nb] == stamp || !unassigned.test(nb) ||
          cluster.contains(nb))
        return;
      queuedStamp[nb] = stamp;
      frontier.push_back(nb);
    };
    for (const CompactArc& a : graph.inArcs(member)) consider(a.neighbor);
    for (const CompactArc& a : graph.outArcs(member)) consider(a.neighbor);
  };

  for (BlockId seed : seeds) {
    if (!unassigned.test(seed)) continue;
    ++stamp;
    cluster.clear();
    cluster.add(seed);
    ++run.explored;
    if (!fits(cluster.io(), spec)) {
      // The seed alone busts the budget; the PareDown fallback gets it
      // (it may still merge once neighbors internalize its edges).
      continue;
    }
    frontier.clear();
    enqueueNeighbors(seed);
    // FIFO growth: probe each frontier block once; acceptance expands the
    // frontier with the newcomer's neighborhood.
    for (std::size_t head = 0; head < frontier.size(); ++head) {
      const BlockId cand = frontier[head];
      if (!unassigned.test(cand) || cluster.contains(cand)) continue;
      ++run.explored;
      cluster.add(cand);
      if (fits(cluster.io(), spec)) {
        enqueueNeighbors(cand);
      } else {
        cluster.remove(cand);
      }
    }
    if (cluster.memberCount() >= 2) {
      run.result.partitions.push_back(cluster.members());
      unassigned.andNot(cluster.members());
    }
  }

  // Fallback: PareDown over the residual only.  BFS growth accepts the
  // first neighbor that fits with no look-ahead, so it tends to strand
  // blocks whose edges needed internalizing in a specific order;
  // border-paring handles exactly those.
  if (unassigned.any()) {
    PareDownOptions fallback;
    fallback.restrictTo = unassigned;
    const PartitionRun pared = pareDown(problem, fallback);
    run.explored += pared.explored;
    for (const BitSet& p : pared.result.partitions)
      run.result.partitions.push_back(p);
  }

  run.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return run;
}

}  // namespace eblocks::partition
