#include "partition/multitype.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "core/levels.h"
#include "partition/exhaustive.h"
#include "partition/port_counter.h"

namespace eblocks::partition {

namespace {

constexpr double kCostSlack = 1e-9;

/// Shared removal choice (same tiebreaks as classic PareDown).
BlockId chooseRemoval(const Network& net, const std::vector<int>& levels,
                      const std::vector<BlockId>& border,
                      const std::vector<int>& ranks) {
  BlockId best = border.front();
  int bestRank = ranks.front();
  for (std::size_t i = 1; i < border.size(); ++i) {
    const BlockId b = border[i];
    const int r = ranks[i];
    if (r != bestRank) {
      if (r < bestRank) { best = b; bestRank = r; }
      continue;
    }
    if (net.indegree(b) != net.indegree(best)) {
      if (net.indegree(b) > net.indegree(best)) best = b;
      continue;
    }
    if (net.outdegree(b) != net.outdegree(best)) {
      if (net.outdegree(b) > net.outdegree(best)) best = b;
      continue;
    }
    if (levels[b] > levels[best]) best = b;
  }
  return best;
}

}  // namespace

ProgCostModel ProgCostModel::paperDefault() {
  ProgCostModel m;
  m.preDefinedBlockCost = 1.0;
  m.options.push_back(ProgBlockOption{"prog_2x2", 2, 2, 1.5});
  return m;
}

int TypedPartitioning::coveredBlocks() const {
  int covered = 0;
  for (const BitSet& p : partitions) covered += static_cast<int>(p.count());
  return covered;
}

double TypedPartitioning::totalCost(int originalInnerCount,
                                    const ProgCostModel& model) const {
  double cost = model.preDefinedBlockCost *
                (originalInnerCount - coveredBlocks());
  for (int idx : optionIndex)
    cost += model.options.at(static_cast<std::size_t>(idx)).cost;
  return cost;
}

std::optional<int> cheapestFittingOption(const IoCount& io,
                                         const ProgCostModel& model) {
  std::optional<int> best;
  for (std::size_t i = 0; i < model.options.size(); ++i) {
    const ProgBlockOption& o = model.options[i];
    if (io.inputs > o.inputs || io.outputs > o.outputs) continue;
    if (!best ||
        o.cost < model.options[static_cast<std::size_t>(*best)].cost)
      best = static_cast<int>(i);
  }
  return best;
}

std::optional<int> cheapestFittingOption(const Network& net,
                                         const BitSet& members,
                                         const ProgCostModel& model) {
  return cheapestFittingOption(countIo(net, members, model.mode), model);
}

TypedPartitionRun multiTypePareDown(const Network& net,
                                    const ProgCostModel& model) {
  const auto start = std::chrono::steady_clock::now();
  TypedPartitionRun run;
  run.algorithm = "multitype-paredown";
  const std::vector<int> levels = computeLevels(net);

  BitSet blocks = net.innerSet();
  // Port usage of the paring candidate is maintained incrementally (one
  // O(degree) update per removal) on the shared validity kernel.
  PortCounter candidate(net, model.mode);
  while (blocks.any()) {
    candidate.assign(blocks);
    bool accepted = false;
    BlockId lastRemoved = kNoBlock;
    while (candidate.memberCount() > 0) {
      ++run.explored;
      const auto option = cheapestFittingOption(candidate.io(), model);
      if (option) {
        const double replaceCost =
            model.options[static_cast<std::size_t>(*option)].cost;
        const double keepCost =
            model.preDefinedBlockCost *
            static_cast<double>(candidate.memberCount());
        if (replaceCost + kCostSlack < keepCost) {
          run.result.partitions.push_back(candidate.members());
          run.result.optionIndex.push_back(*option);
        }
        // Not beneficial (e.g. a lone block): retire the candidate either
        // way; paring further can only shrink the benefit.
        blocks.andNot(candidate.members());
        accepted = true;
        break;
      }
      const std::vector<BlockId> border =
          borderBlocks(net, candidate.members());
      if (border.empty()) {  // pathological; retire candidate
        blocks.andNot(candidate.members());
        accepted = true;
        break;
      }
      std::vector<int> ranks;
      ranks.reserve(border.size());
      for (BlockId b : border)
        ranks.push_back(removalRank(net, candidate.members(), b));
      lastRemoved = chooseRemoval(net, levels, border, ranks);
      candidate.remove(lastRemoved);
    }
    if (!accepted && candidate.memberCount() == 0) blocks.reset(lastRemoved);
  }

  run.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return run;
}

namespace {

using Clock = std::chrono::steady_clock;

/// One unit of parallel work: the bin assignment of the first
/// `choice.size()` inner blocks (-1 = uncovered, j = join bin j, j ==
/// #bins = open a new bin).  Generated in serial DFS order.
struct MultiTask {
  std::vector<std::int16_t> choice;
};

constexpr std::int16_t kUncovered = -1;

struct MultiShared {
  /// Best cost discovered anywhere; pruning uses the *strict* comparison
  /// `lowerBound > liveCost + slack`, which keeps every subtree that can
  /// still tie the optimum alive, so the deterministic DFS-order
  /// reduction reproduces the serial result exactly.
  std::atomic<double> liveCost{std::numeric_limits<double>::infinity()};
  std::atomic<bool> timedOut{false};
};

void lowerLive(std::atomic<double>& live, double c) {
  double cur = live.load(std::memory_order_relaxed);
  while (c < cur &&
         !live.compare_exchange_weak(cur, c, std::memory_order_relaxed)) {
  }
}

struct MultiSubResult {
  double cost = std::numeric_limits<double>::infinity();
  TypedPartitioning best;
};

/// Immutable per-search configuration shared by every worker.
struct MultiContext {
  MultiContext(const Network& n, const ProgCostModel& m,
               const MultiTypeExhaustiveOptions& o)
      : net(n),
        model(m),
        options(o),
        inner(n.innerBlocks()),
        deadline(o.timeLimitSeconds > 0
                     ? Clock::now() +
                           std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(
                                   o.timeLimitSeconds))
                     : Clock::time_point::max()) {
    minOptionCost = std::numeric_limits<double>::infinity();
    for (const ProgBlockOption& opt : m.options)
      minOptionCost = std::min(minOptionCost, opt.cost);
    if (m.options.empty()) minOptionCost = 0;
  }

  const Network& net;
  const ProgCostModel& model;
  const MultiTypeExhaustiveOptions& options;
  std::vector<BlockId> inner;
  double minOptionCost = 0;
  double initialBound = 0;
  Clock::time_point deadline;
};

class MultiWorker {
 public:
  MultiWorker(const MultiContext& ctx, MultiShared& shared)
      : ctx_(ctx), shared_(shared) {
    bins_.reserve(ctx.inner.size() + 1);
  }

  void runTask(const MultiTask& task, MultiSubResult& out) {
    out_ = &out;
    localBest_ = ctx_.initialBound;
    resetBins();
    int uncovered = 0;
    for (std::size_t i = 0; i < task.choice.size(); ++i) {
      const std::int16_t c = task.choice[i];
      if (c == kUncovered) {
        ++uncovered;
        continue;
      }
      if (static_cast<std::size_t>(c) == binCount_) openBin();
      bins_[static_cast<std::size_t>(c)].add(ctx_.inner[i]);
    }
    dfs(task.choice.size(), uncovered);
  }

  std::uint64_t explored() const { return explored_; }

 private:
  void resetBins() {
    for (std::size_t j = 0; j < binCount_; ++j) bins_[j].clear();
    binCount_ = 0;
  }

  void openBin() {
    if (binCount_ == bins_.size())
      bins_.emplace_back(ctx_.net, ctx_.model.mode);
    ++binCount_;
  }

  bool timeExpired() {
    if (aborted_) return true;
    if ((explored_ & 0xfff) == 0) {
      if (shared_.timedOut.load(std::memory_order_relaxed)) {
        aborted_ = true;
      } else if (Clock::now() > ctx_.deadline) {
        shared_.timedOut.store(true, std::memory_order_relaxed);
        aborted_ = true;
      }
    }
    return aborted_;
  }

  void dfs(std::size_t idx, int uncovered) {
    ++explored_;
    if (timeExpired()) return;
    const double lowerBound =
        static_cast<double>(binCount_) * ctx_.minOptionCost +
        ctx_.model.preDefinedBlockCost * uncovered;
    if (lowerBound + kCostSlack >= localBest_) return;
    if (lowerBound >
        shared_.liveCost.load(std::memory_order_relaxed) + kCostSlack)
      return;
    if (idx == ctx_.inner.size()) {
      finish(uncovered);
      return;
    }
    const BlockId b = ctx_.inner[idx];
    const std::size_t openBins = binCount_;
    for (std::size_t j = 0; j < openBins; ++j) {
      bins_[j].add(b);
      dfs(idx + 1, uncovered);
      bins_[j].remove(b);
    }
    {
      openBin();
      bins_[binCount_ - 1].add(b);
      dfs(idx + 1, uncovered);
      bins_[binCount_ - 1].remove(b);
      --binCount_;
    }
    dfs(idx + 1, uncovered + 1);
  }

  void finish(int uncovered) {
    double cost = ctx_.model.preDefinedBlockCost * uncovered;
    std::vector<int> chosen;
    chosen.reserve(binCount_);
    for (std::size_t j = 0; j < binCount_; ++j) {
      const auto option = cheapestFittingOption(bins_[j].io(), ctx_.model);
      if (!option) return;  // some bin fits no block type
      chosen.push_back(*option);
      cost += ctx_.model.options[static_cast<std::size_t>(*option)].cost;
    }
    if (cost + kCostSlack >= localBest_) return;
    localBest_ = cost;
    out_->cost = cost;
    out_->best.partitions.clear();
    for (std::size_t j = 0; j < binCount_; ++j)
      out_->best.partitions.push_back(bins_[j].members());
    out_->best.optionIndex = std::move(chosen);
    lowerLive(shared_.liveCost, cost);
  }

  const MultiContext& ctx_;
  MultiShared& shared_;
  std::vector<PortCounter> bins_;  // pool; first binCount_ entries live
  std::size_t binCount_ = 0;
  double localBest_ = 0;
  MultiSubResult* out_ = nullptr;
  std::uint64_t explored_ = 0;
  bool aborted_ = false;
};

/// Enumerates the surviving prefixes of the first `depth` inner blocks in
/// serial DFS order, pruning only against the deterministic initial bound.
class MultiPrefixGenerator {
 public:
  explicit MultiPrefixGenerator(const MultiContext& ctx) : ctx_(ctx) {}

  std::vector<MultiTask> generate(std::size_t depth,
                                  std::uint64_t& explored) {
    depth_ = depth;
    tasks_.clear();
    choice_.clear();
    openBins_ = 0;
    explored_ = 0;
    gen(0, 0);
    explored = explored_;
    return std::move(tasks_);
  }

 private:
  void gen(std::size_t idx, int uncovered) {
    ++explored_;
    const double lowerBound =
        static_cast<double>(openBins_) * ctx_.minOptionCost +
        ctx_.model.preDefinedBlockCost * uncovered;
    if (lowerBound + kCostSlack >= ctx_.initialBound) return;
    if (idx == depth_ || idx == ctx_.inner.size()) {
      tasks_.push_back(MultiTask{choice_});
      return;
    }
    for (std::size_t j = 0; j < openBins_; ++j) {
      choice_.push_back(static_cast<std::int16_t>(j));
      gen(idx + 1, uncovered);
      choice_.pop_back();
    }
    choice_.push_back(static_cast<std::int16_t>(openBins_));
    ++openBins_;
    gen(idx + 1, uncovered);
    --openBins_;
    choice_.pop_back();
    choice_.push_back(kUncovered);
    gen(idx + 1, uncovered + 1);
    choice_.pop_back();
  }

  const MultiContext& ctx_;
  std::size_t depth_ = 0;
  std::vector<MultiTask> tasks_;
  std::vector<std::int16_t> choice_;
  std::size_t openBins_ = 0;
  std::uint64_t explored_ = 0;
};

}  // namespace

TypedPartitionRun multiTypeExhaustive(
    const Network& net, const ProgCostModel& model,
    const MultiTypeExhaustiveOptions& options) {
  TypedPartitionRun out;
  out.algorithm = "multitype-exhaustive";
  const auto start = Clock::now();

  MultiContext ctx(net, model, options);
  const int n = static_cast<int>(ctx.inner.size());

  // Initial incumbent: "replace nothing", improved by a feasible seed.
  double bestCost = model.preDefinedBlockCost * n;
  TypedPartitioning best;
  if (options.seed &&
      verifyTypedPartitioning(net, model, *options.seed).empty()) {
    const double c = options.seed->totalCost(n, model);
    if (c < bestCost) {
      bestCost = c;
      best = *options.seed;
    }
  }
  ctx.initialBound = bestCost;

  MultiShared shared;
  shared.liveCost.store(bestCost, std::memory_order_relaxed);

  const int threads = resolveSearchThreads(options.threads);
  std::uint64_t explored = 0;

  std::vector<MultiTask> tasks;
  if (threads > 1 && n >= 2) {
    MultiPrefixGenerator gen(ctx);
    const std::size_t target =
        std::max<std::size_t>(64, static_cast<std::size_t>(threads) * 8);
    std::uint64_t genExplored = 0;
    for (std::size_t depth = 1;; ++depth) {
      tasks = gen.generate(depth, genExplored);
      if (tasks.size() >= target || depth >= static_cast<std::size_t>(n) ||
          tasks.size() > 4096)
        break;
    }
    explored += genExplored;
  } else {
    tasks.push_back(MultiTask{});
  }

  std::vector<MultiSubResult> results(tasks.size());
  const int workerCount =
      static_cast<int>(std::min<std::size_t>(
          static_cast<std::size_t>(threads), tasks.size()));
  std::atomic<std::size_t> next{0};
  std::atomic<std::uint64_t> totalExplored{0};
  auto workFn = [&] {
    MultiWorker worker(ctx, shared);
    for (;;) {
      if (shared.timedOut.load(std::memory_order_relaxed)) break;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= tasks.size()) break;
      worker.runTask(tasks[i], results[i]);
    }
    totalExplored.fetch_add(worker.explored(), std::memory_order_relaxed);
  };
  if (workerCount <= 1) {
    workFn();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workerCount) - 1);
    for (int t = 1; t < workerCount; ++t) pool.emplace_back(workFn);
    workFn();
    for (std::thread& th : pool) th.join();
  }
  explored += totalExplored.load(std::memory_order_relaxed);

  // Deterministic DFS-order reduction (see exhaustive.cpp).
  for (MultiSubResult& r : results) {
    if (r.cost + kCostSlack < bestCost) {
      bestCost = r.cost;
      best = std::move(r.best);
    }
  }

  out.result = std::move(best);
  out.explored = explored;
  out.timedOut = shared.timedOut.load(std::memory_order_relaxed);
  out.optimal = !out.timedOut;
  out.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return out;
}

std::vector<std::string> verifyTypedPartitioning(
    const Network& net, const ProgCostModel& model,
    const TypedPartitioning& typed) {
  std::vector<std::string> problems;
  if (typed.partitions.size() != typed.optionIndex.size()) {
    problems.push_back("partition/option count mismatch");
    return problems;
  }
  BitSet seen = net.emptySet();
  for (std::size_t i = 0; i < typed.partitions.size(); ++i) {
    const BitSet& p = typed.partitions[i];
    const std::string label = "partition #" + std::to_string(i);
    const int idx = typed.optionIndex[i];
    if (idx < 0 || idx >= static_cast<int>(model.options.size())) {
      problems.push_back(label + ": option index out of range");
      continue;
    }
    const ProgBlockOption& o = model.options[static_cast<std::size_t>(idx)];
    const IoCount io = countIo(net, p, model.mode);
    if (io.inputs > o.inputs || io.outputs > o.outputs)
      problems.push_back(label + ": does not fit option " + o.name);
    if (p.none()) problems.push_back(label + ": empty");
    p.forEach([&](std::size_t bi) {
      const BlockId b = static_cast<BlockId>(bi);
      if (!net.isInner(b))
        problems.push_back(label + ": member '" + net.block(b).name +
                           "' is not inner");
      if (seen.test(bi))
        problems.push_back(label + ": member '" + net.block(b).name +
                           "' in two partitions");
      seen.set(bi);
    });
    // Cost sanity: a rational result never uses a partition that costs
    // more than the blocks it replaces.
    if (o.cost > model.preDefinedBlockCost * static_cast<double>(p.count()) +
                     kCostSlack)
      problems.push_back(label + ": option " + o.name +
                         " costs more than the blocks it replaces");
  }
  return problems;
}

}  // namespace eblocks::partition
