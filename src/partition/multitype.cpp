#include "partition/multitype.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "core/levels.h"

namespace eblocks::partition {

namespace {

constexpr double kCostSlack = 1e-9;

/// Shared removal choice (same tiebreaks as classic PareDown).
BlockId chooseRemoval(const Network& net, const std::vector<int>& levels,
                      const std::vector<BlockId>& border,
                      const std::vector<int>& ranks) {
  BlockId best = border.front();
  int bestRank = ranks.front();
  for (std::size_t i = 1; i < border.size(); ++i) {
    const BlockId b = border[i];
    const int r = ranks[i];
    if (r != bestRank) {
      if (r < bestRank) { best = b; bestRank = r; }
      continue;
    }
    if (net.indegree(b) != net.indegree(best)) {
      if (net.indegree(b) > net.indegree(best)) best = b;
      continue;
    }
    if (net.outdegree(b) != net.outdegree(best)) {
      if (net.outdegree(b) > net.outdegree(best)) best = b;
      continue;
    }
    if (levels[b] > levels[best]) best = b;
  }
  return best;
}

}  // namespace

ProgCostModel ProgCostModel::paperDefault() {
  ProgCostModel m;
  m.preDefinedBlockCost = 1.0;
  m.options.push_back(ProgBlockOption{"prog_2x2", 2, 2, 1.5});
  return m;
}

int TypedPartitioning::coveredBlocks() const {
  int covered = 0;
  for (const BitSet& p : partitions) covered += static_cast<int>(p.count());
  return covered;
}

double TypedPartitioning::totalCost(int originalInnerCount,
                                    const ProgCostModel& model) const {
  double cost = model.preDefinedBlockCost *
                (originalInnerCount - coveredBlocks());
  for (int idx : optionIndex)
    cost += model.options.at(static_cast<std::size_t>(idx)).cost;
  return cost;
}

std::optional<int> cheapestFittingOption(const Network& net,
                                         const BitSet& members,
                                         const ProgCostModel& model) {
  const IoCount io = countIo(net, members, model.mode);
  std::optional<int> best;
  for (std::size_t i = 0; i < model.options.size(); ++i) {
    const ProgBlockOption& o = model.options[i];
    if (io.inputs > o.inputs || io.outputs > o.outputs) continue;
    if (!best ||
        o.cost < model.options[static_cast<std::size_t>(*best)].cost)
      best = static_cast<int>(i);
  }
  return best;
}

TypedPartitionRun multiTypePareDown(const Network& net,
                                    const ProgCostModel& model) {
  const auto start = std::chrono::steady_clock::now();
  TypedPartitionRun run;
  run.algorithm = "multitype-paredown";
  const std::vector<int> levels = computeLevels(net);

  BitSet blocks = net.innerSet();
  while (blocks.any()) {
    BitSet candidate = blocks;
    bool accepted = false;
    BlockId lastRemoved = kNoBlock;
    while (candidate.any()) {
      ++run.explored;
      const auto option = cheapestFittingOption(net, candidate, model);
      if (option) {
        const double replaceCost =
            model.options[static_cast<std::size_t>(*option)].cost;
        const double keepCost =
            model.preDefinedBlockCost * static_cast<double>(candidate.count());
        if (replaceCost + kCostSlack < keepCost) {
          run.result.partitions.push_back(candidate);
          run.result.optionIndex.push_back(*option);
        }
        // Not beneficial (e.g. a lone block): retire the candidate either
        // way; paring further can only shrink the benefit.
        blocks.andNot(candidate);
        accepted = true;
        break;
      }
      const std::vector<BlockId> border = borderBlocks(net, candidate);
      if (border.empty()) {  // pathological; retire candidate
        blocks.andNot(candidate);
        accepted = true;
        break;
      }
      std::vector<int> ranks;
      ranks.reserve(border.size());
      for (BlockId b : border)
        ranks.push_back(removalRank(net, candidate, b));
      lastRemoved = chooseRemoval(net, levels, border, ranks);
      candidate.reset(lastRemoved);
    }
    if (!accepted && candidate.none()) blocks.reset(lastRemoved);
  }

  run.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return run;
}

namespace {

class MultiSearch {
 public:
  MultiSearch(const Network& net, const ProgCostModel& model,
              const MultiTypeExhaustiveOptions& options)
      : net_(net),
        model_(model),
        options_(options),
        inner_(net.innerBlocks()),
        deadline_(options.timeLimitSeconds > 0
                      ? std::chrono::steady_clock::now() +
                            std::chrono::duration_cast<
                                std::chrono::steady_clock::duration>(
                                std::chrono::duration<double>(
                                    options.timeLimitSeconds))
                      : std::chrono::steady_clock::time_point::max()) {
    minOptionCost_ = std::numeric_limits<double>::infinity();
    for (const ProgBlockOption& o : model.options)
      minOptionCost_ = std::min(minOptionCost_, o.cost);
    if (model.options.empty()) minOptionCost_ = 0;
  }

  TypedPartitionRun run() {
    TypedPartitionRun out;
    out.algorithm = "multitype-exhaustive";
    const auto start = std::chrono::steady_clock::now();

    const int n = static_cast<int>(inner_.size());
    bestCost_ = model_.preDefinedBlockCost * n;  // "replace nothing"
    best_ = TypedPartitioning{};
    if (options_.seed &&
        verifyTypedPartitioning(net_, model_, *options_.seed).empty()) {
      const double c = options_.seed->totalCost(n, model_);
      if (c < bestCost_) {
        bestCost_ = c;
        best_ = *options_.seed;
      }
    }
    bins_.clear();
    bins_.reserve(inner_.size() + 1);
    dfs(0, 0);

    out.result = best_;
    out.explored = explored_;
    out.timedOut = timedOut_;
    out.optimal = !timedOut_;
    out.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    return out;
  }

 private:
  bool timeExpired() {
    if (timedOut_) return true;
    if ((explored_ & 0xfff) == 0 &&
        std::chrono::steady_clock::now() > deadline_)
      timedOut_ = true;
    return timedOut_;
  }

  void dfs(std::size_t idx, int uncovered) {
    ++explored_;
    if (timeExpired()) return;
    const double lowerBound =
        static_cast<double>(bins_.size()) * minOptionCost_ +
        model_.preDefinedBlockCost * uncovered;
    if (lowerBound + kCostSlack >= bestCost_) return;
    if (idx == inner_.size()) {
      finish(uncovered);
      return;
    }
    const BlockId b = inner_[idx];
    const std::size_t openBins = bins_.size();
    for (std::size_t j = 0; j < openBins; ++j) {
      bins_[j].set(b);
      dfs(idx + 1, uncovered);
      bins_[j].reset(b);
    }
    {
      BitSet bin = net_.emptySet();
      bin.set(b);
      bins_.push_back(std::move(bin));
      dfs(idx + 1, uncovered);
      bins_.pop_back();
    }
    dfs(idx + 1, uncovered + 1);
  }

  void finish(int uncovered) {
    double cost = model_.preDefinedBlockCost * uncovered;
    std::vector<int> chosen;
    chosen.reserve(bins_.size());
    for (const BitSet& bin : bins_) {
      const auto option = cheapestFittingOption(net_, bin, model_);
      if (!option) return;  // some bin fits no block type
      chosen.push_back(*option);
      cost += model_.options[static_cast<std::size_t>(*option)].cost;
    }
    if (cost + kCostSlack >= bestCost_) return;
    bestCost_ = cost;
    best_.partitions.assign(bins_.begin(), bins_.end());
    best_.optionIndex = std::move(chosen);
  }

  const Network& net_;
  const ProgCostModel& model_;
  MultiTypeExhaustiveOptions options_;
  std::vector<BlockId> inner_;
  double minOptionCost_ = 0;
  std::vector<BitSet> bins_;
  TypedPartitioning best_;
  double bestCost_ = 0;
  std::uint64_t explored_ = 0;
  bool timedOut_ = false;
  std::chrono::steady_clock::time_point deadline_;
};

}  // namespace

TypedPartitionRun multiTypeExhaustive(
    const Network& net, const ProgCostModel& model,
    const MultiTypeExhaustiveOptions& options) {
  MultiSearch search(net, model, options);
  return search.run();
}

std::vector<std::string> verifyTypedPartitioning(
    const Network& net, const ProgCostModel& model,
    const TypedPartitioning& typed) {
  std::vector<std::string> problems;
  if (typed.partitions.size() != typed.optionIndex.size()) {
    problems.push_back("partition/option count mismatch");
    return problems;
  }
  BitSet seen = net.emptySet();
  for (std::size_t i = 0; i < typed.partitions.size(); ++i) {
    const BitSet& p = typed.partitions[i];
    const std::string label = "partition #" + std::to_string(i);
    const int idx = typed.optionIndex[i];
    if (idx < 0 || idx >= static_cast<int>(model.options.size())) {
      problems.push_back(label + ": option index out of range");
      continue;
    }
    const ProgBlockOption& o = model.options[static_cast<std::size_t>(idx)];
    const IoCount io = countIo(net, p, model.mode);
    if (io.inputs > o.inputs || io.outputs > o.outputs)
      problems.push_back(label + ": does not fit option " + o.name);
    if (p.none()) problems.push_back(label + ": empty");
    p.forEach([&](std::size_t bi) {
      const BlockId b = static_cast<BlockId>(bi);
      if (!net.isInner(b))
        problems.push_back(label + ": member '" + net.block(b).name +
                           "' is not inner");
      if (seen.test(bi))
        problems.push_back(label + ": member '" + net.block(b).name +
                           "' in two partitions");
      seen.set(bi);
    });
    // Cost sanity: a rational result never uses a partition that costs
    // more than the blocks it replaces.
    if (o.cost > model.preDefinedBlockCost * static_cast<double>(p.count()) +
                     kCostSlack)
      problems.push_back(label + ": option " + o.name +
                         " costs more than the blocks it replaces");
  }
  return problems;
}

}  // namespace eblocks::partition
