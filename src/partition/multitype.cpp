#include "partition/multitype.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <thread>
#include <tuple>
#include <vector>

#include "core/levels.h"
#include "partition/exhaustive.h"
#include "partition/port_counter.h"
#include "partition/validity.h"
#include "partition/work_steal.h"

namespace eblocks::partition {

namespace {

constexpr double kCostSlack = 1e-9;

/// Shared removal choice (same tiebreaks as classic PareDown).
BlockId chooseRemoval(const Network& net, const std::vector<int>& levels,
                      const std::vector<BlockId>& border,
                      const std::vector<int>& ranks) {
  BlockId best = border.front();
  int bestRank = ranks.front();
  for (std::size_t i = 1; i < border.size(); ++i) {
    const BlockId b = border[i];
    const int r = ranks[i];
    if (r != bestRank) {
      if (r < bestRank) { best = b; bestRank = r; }
      continue;
    }
    if (net.indegree(b) != net.indegree(best)) {
      if (net.indegree(b) > net.indegree(best)) best = b;
      continue;
    }
    if (net.outdegree(b) != net.outdegree(best)) {
      if (net.outdegree(b) > net.outdegree(best)) best = b;
      continue;
    }
    if (levels[b] > levels[best]) best = b;
  }
  return best;
}

}  // namespace

ProgCostModel ProgCostModel::paperDefault() {
  ProgCostModel m;
  m.preDefinedBlockCost = 1.0;
  m.options.push_back(ProgBlockOption{"prog_2x2", 2, 2, 1.5});
  return m;
}

int TypedPartitioning::coveredBlocks() const {
  int covered = 0;
  for (const BitSet& p : partitions) covered += static_cast<int>(p.count());
  return covered;
}

double TypedPartitioning::totalCost(int originalInnerCount,
                                    const ProgCostModel& model) const {
  double cost = model.preDefinedBlockCost *
                (originalInnerCount - coveredBlocks());
  for (int idx : optionIndex)
    cost += model.options.at(static_cast<std::size_t>(idx)).cost;
  return cost;
}

std::optional<int> cheapestFittingOption(const IoCount& io,
                                         const ProgCostModel& model) {
  std::optional<int> best;
  for (std::size_t i = 0; i < model.options.size(); ++i) {
    const ProgBlockOption& o = model.options[i];
    if (io.inputs > o.inputs || io.outputs > o.outputs) continue;
    if (!best ||
        o.cost < model.options[static_cast<std::size_t>(*best)].cost)
      best = static_cast<int>(i);
  }
  return best;
}

std::optional<int> cheapestFittingOption(const Network& net,
                                         const BitSet& members,
                                         const ProgCostModel& model) {
  return cheapestFittingOption(countIo(net, members, model.mode), model);
}

TypedPartitionRun multiTypePareDown(const Network& net,
                                    const ProgCostModel& model) {
  const auto start = std::chrono::steady_clock::now();
  TypedPartitionRun run;
  run.algorithm = "multitype-paredown";
  const std::vector<int> levels = computeLevels(net);

  BitSet blocks = net.innerSet();
  // Port usage, border set, and removal ranks of the paring candidate are
  // maintained incrementally (one O(degree) update per removal) on the
  // shared validity kernel, walking a CSR view built once per run.
  const CompactGraph graph(net);
  PortCounter candidate(graph, model.mode, BorderTracking::kOn);
  std::vector<BlockId> border;  // reused across rounds
  std::vector<int> ranks;
  while (blocks.any()) {
    candidate.assign(blocks);
    bool accepted = false;
    BlockId lastRemoved = kNoBlock;
    while (candidate.memberCount() > 0) {
      ++run.explored;
      const auto option = cheapestFittingOption(candidate.io(), model);
      if (option) {
        const double replaceCost =
            model.options[static_cast<std::size_t>(*option)].cost;
        const double keepCost =
            model.preDefinedBlockCost *
            static_cast<double>(candidate.memberCount());
        if (replaceCost + kCostSlack < keepCost) {
          run.result.partitions.push_back(candidate.members());
          run.result.optionIndex.push_back(*option);
        }
        // Not beneficial (e.g. a lone block): retire the candidate either
        // way; paring further can only shrink the benefit.
        blocks.andNot(candidate.members());
        accepted = true;
        break;
      }
      border.clear();
      ranks.clear();
      candidate.border().forEach([&](std::size_t b) {
        border.push_back(static_cast<BlockId>(b));
        ranks.push_back(candidate.rank(static_cast<BlockId>(b)));
      });
      if (border.empty()) {  // pathological; retire candidate
        blocks.andNot(candidate.members());
        accepted = true;
        break;
      }
      lastRemoved = chooseRemoval(net, levels, border, ranks);
      candidate.remove(lastRemoved);
    }
    if (!accepted && candidate.memberCount() == 0) blocks.reset(lastRemoved);
  }

  run.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return run;
}

namespace {

using Clock = std::chrono::steady_clock;

/// One unit of parallel work: the bin assignment of the first
/// `choice.size()` inner blocks (-1 = uncovered, j = join bin j, j ==
/// #bins = open a new bin), plus the half-open DFS-ordinal range
/// [ordLo, ordHi) owned by the subtree -- see the Task comment in
/// exhaustive.cpp for how ordinals realize the deterministic tie-break.
struct MultiTask {
  std::vector<std::int16_t> choice;
  std::uint32_t ordLo = 1;
  std::uint32_t ordHi = std::numeric_limits<std::uint32_t>::max();
};

constexpr std::int16_t kUncovered = -1;

struct MultiShared {
  /// Best cost discovered anywhere; pruning uses the *strict* comparison
  /// `lowerBound > liveCost + slack`, which keeps every subtree that can
  /// still tie the optimum alive, so the deterministic ordinal tie-break
  /// in the reduction reproduces the serial result exactly.  (Costs are
  /// doubles, so unlike exhaustive.cpp the ordinal cannot be packed into
  /// the atomic; ties stay alive globally and are settled per worker.)
  std::atomic<double> liveCost{std::numeric_limits<double>::infinity()};
  std::atomic<bool> timedOut{false};
};

void lowerLive(std::atomic<double>& live, double c) {
  double cur = live.load(std::memory_order_relaxed);
  while (c < cur &&
         !live.compare_exchange_weak(cur, c, std::memory_order_relaxed)) {
  }
}

/// The deterministic reduction order: better cost (beyond FP slack)
/// first, then the smaller DFS ordinal among (slack-)equal costs.
bool betterTyped(double cost, std::uint32_t ord, double bestCost,
                 std::uint32_t bestOrd) {
  if (cost < bestCost - kCostSlack) return true;
  if (cost > bestCost + kCostSlack) return false;
  return ord < bestOrd;
}

/// Immutable per-search configuration shared by every worker.
struct MultiContext {
  MultiContext(const Network& n, const ProgCostModel& m,
               const MultiTypeExhaustiveOptions& o)
      : net(n),
        model(m),
        options(o),
        graph(n),
        inner(n.innerBlocks()),
        deadline(o.timeLimitSeconds > 0
                     ? Clock::now() +
                           std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(
                                   o.timeLimitSeconds))
                     : Clock::time_point::max()) {
    minOptionCost = std::numeric_limits<double>::infinity();
    for (const ProgBlockOption& opt : m.options)
      minOptionCost = std::min(minOptionCost, opt.cost);
    if (m.options.empty()) minOptionCost = 0;
    if (o.pruningBound) {
      // Static half of the admissible bound: the frozen-set root and the
      // unbinnable suffix -- a block whose own irreducible I/O fits no
      // option stays a pre-defined block in every valid completion.
      baseFrozen = graph.nonInnerSet();
      suffixUnbinnable.assign(inner.size() + 1, 0);
      for (std::size_t i = inner.size(); i-- > 0;) {
        const IoCount own = irreducibleBlockIo(n, inner[i], m.mode);
        const bool unbinnable = !cheapestFittingOption(own, m).has_value();
        suffixUnbinnable[i] = suffixUnbinnable[i + 1] + (unbinnable ? 1 : 0);
      }
    }
  }

  const Network& net;
  const ProgCostModel& model;
  const MultiTypeExhaustiveOptions& options;
  // The CSR view every bin counter of this search walks (owned: the
  // multi-type entry points take a raw Network, not a PartitionProblem).
  CompactGraph graph;
  std::vector<BlockId> inner;
  double minOptionCost = 0;
  // pruningBound statics (empty / unused when the layer is off).
  std::vector<int> suffixUnbinnable;
  BitSet baseFrozen;
  double initialBound = 0;
  Clock::time_point deadline;
};

class MultiWorker {
 public:
  MultiWorker(const MultiContext& ctx, MultiShared& shared,
              detail::WorkStealingPool<MultiTask>* pool, int workerId)
      : ctx_(ctx),
        shared_(shared),
        pool_(pool),
        workerId_(workerId),
        pruning_(ctx.options.pruningBound),
        frozen_(ctx.baseFrozen),
        bestCost_(ctx.initialBound) {
    bins_.reserve(ctx.inner.size() + 1);
    choice_.reserve(ctx.inner.size());
  }

  void runTask(const MultiTask& task) {
    localBest_ = ctx_.initialBound;
    resetBins();
    choice_ = task.choice;
    int uncovered = 0;
    for (std::size_t i = 0; i < task.choice.size(); ++i) {
      const std::int16_t c = task.choice[i];
      const BlockId b = ctx_.inner[i];
      if (c == kUncovered) {
        ++uncovered;
        if (pruning_) freezeAssigned(b, kNoOwnBin);
        continue;
      }
      if (static_cast<std::size_t>(c) == binCount_) openBin();
      bins_[static_cast<std::size_t>(c)].add(b);
      if (pruning_) freezeAssigned(b, static_cast<std::size_t>(c));
    }
    dfs(task.choice.size(), uncovered, task.ordLo, task.ordHi);
  }

  /// Frame recycling; see Worker::takeFrame in exhaustive.cpp.
  MultiTask takeFrame() {
    if (frames_.empty()) return {};
    MultiTask t = std::move(frames_.back());
    frames_.pop_back();
    return t;
  }
  void recycleFrame(MultiTask&& t) { frames_.push_back(std::move(t)); }

  std::uint64_t explored() const { return explored_; }
  std::uint64_t pruned() const { return pruned_; }
  double bestCost() const { return bestCost_; }
  std::uint32_t bestOrdinal() const { return bestOrd_; }
  TypedPartitioning takeBest() { return std::move(best_); }

 private:
  static constexpr std::size_t kNoOwnBin = static_cast<std::size_t>(-1);

  void resetBins() {
    for (std::size_t j = 0; j < binCount_; ++j) bins_[j].clear();
    binCount_ = 0;
    if (pruning_) frozen_ = ctx_.baseFrozen;
  }

  void openBin() {
    if (binCount_ == bins_.size())
      bins_.emplace_back(ctx_.graph, ctx_.model.mode, BorderTracking::kOff,
                         pruning_ ? &frozen_ : nullptr);
    ++binCount_;
  }

  /// See Worker::freezeAssigned in exhaustive.cpp: just-assigned `b` is
  /// fixed for the whole subtree, so every other bin's crossing edges to
  /// it turn irreducible.
  void freezeAssigned(BlockId b, std::size_t own) {
    frozen_.set(b);
    for (std::size_t j = 0; j < binCount_; ++j)
      if (j != own) bins_[j].freeze(b);
  }

  void unfreezeAssigned(BlockId b, std::size_t own) {
    for (std::size_t j = 0; j < binCount_; ++j)
      if (j != own) bins_[j].unfreeze(b);
    frozen_.reset(b);
  }

  bool timeExpired() {
    if (aborted_) return true;
    if ((explored_ & 0xfff) == 0) {
      if (shared_.timedOut.load(std::memory_order_relaxed)) {
        aborted_ = true;
      } else if (Clock::now() > ctx_.deadline) {
        shared_.timedOut.store(true, std::memory_order_relaxed);
        aborted_ = true;
      }
    }
    return aborted_;
  }

  void dfs(std::size_t idx, int uncovered, std::uint32_t lo,
           std::uint32_t hi) {
    ++explored_;
    if (timeExpired()) return;
    // Baseline bound first (cheap, and pruning here keeps the admissible
    // layer off the node entirely -- mirrors exhaustive.cpp).  The
    // strengthened bound dominates the weak one, so the set of pruned
    // nodes is identical either way; only the work per node changes.
    const double weakBound =
        static_cast<double>(binCount_) * ctx_.minOptionCost +
        ctx_.model.preDefinedBlockCost * uncovered;
    const double live = shared_.liveCost.load(std::memory_order_relaxed);
    if (weakBound + kCostSlack >= localBest_) return;
    if (weakBound > live + kCostSlack) return;
    if (pruning_) {
      // The admissible layer: each bin's final option must fit its
      // irreducible crossing I/O, so the cheapest such option floors the
      // bin's cost (none fitting kills the subtree outright); remaining
      // unbinnable blocks each stay pre-defined.  Counted as a pruned
      // subtree only here, past the baseline checks above.
      double binFloor = 0;
      for (std::size_t j = 0; j < binCount_; ++j) {
        const auto opt = cheapestFittingOption(bins_[j].fixedIo(),
                                               ctx_.model);
        if (!opt) {
          ++pruned_;
          return;
        }
        binFloor += ctx_.model.options[static_cast<std::size_t>(*opt)].cost;
      }
      const double lowerBound =
          binFloor + ctx_.model.preDefinedBlockCost *
                         (uncovered + ctx_.suffixUnbinnable[idx]);
      if (lowerBound + kCostSlack >= localBest_ ||
          lowerBound > live + kCostSlack) {
        ++pruned_;
        return;
      }
    }
    if (idx == ctx_.inner.size()) {
      finish(uncovered, lo);
      return;
    }
    const BlockId b = ctx_.inner[idx];
    // Children in serial DFS order: join each open bin, open a new bin,
    // leave uncovered.  The multi-type search has no per-child
    // feasibility filter, so the child count is simply binCount_ + 2.
    const std::size_t openBins = binCount_;
    // Split ordinal ranges only where offloading is possible; see the
    // matching comment in exhaustive.cpp.
    std::optional<detail::RangeSplitter> ranges;
    if (pool_ != nullptr && ctx_.inner.size() - idx > detail::kLeafMargin)
      ranges.emplace(lo, hi, openBins + 2);
    const bool offloadable = ranges && ranges->offloadable();
    bool firstChild = true;
    const auto visit = [&](std::int16_t c, int childUncovered,
                           auto&& apply, auto&& undo) {
      std::uint32_t clo = lo, chi = hi;
      if (ranges) std::tie(clo, chi) = ranges->next();
      const bool inlineChild = firstChild;
      firstChild = false;
      if (!inlineChild && offloadable && pool_->hungry() > 0 &&
          pool_->queueDepth(workerId_) < detail::kMaxLocalBacklog) {
        MultiTask t = takeFrame();
        t.choice = choice_;
        t.choice.push_back(c);
        t.ordLo = clo;
        t.ordHi = chi;
        pool_->push(workerId_, std::move(t));
        return;
      }
      apply();
      choice_.push_back(c);
      dfs(idx + 1, childUncovered, clo, chi);
      choice_.pop_back();
      undo();
    };
    for (std::size_t j = 0; j < openBins; ++j) {
      visit(static_cast<std::int16_t>(j), uncovered,
            [&] {
              bins_[j].add(b);
              if (pruning_) freezeAssigned(b, j);
            },
            [&] {
              if (pruning_) unfreezeAssigned(b, j);
              bins_[j].remove(b);
            });
    }
    visit(static_cast<std::int16_t>(openBins), uncovered,
          [&] {
            openBin();
            bins_[binCount_ - 1].add(b);
            if (pruning_) freezeAssigned(b, binCount_ - 1);
          },
          [&] {
            if (pruning_) unfreezeAssigned(b, binCount_ - 1);
            bins_[binCount_ - 1].remove(b);
            --binCount_;
          });
    visit(kUncovered, uncovered + 1,
          [&] {
            if (pruning_) freezeAssigned(b, kNoOwnBin);
          },
          [&] {
            if (pruning_) unfreezeAssigned(b, kNoOwnBin);
          });
  }

  void finish(int uncovered, std::uint32_t lo) {
    double cost = ctx_.model.preDefinedBlockCost * uncovered;
    // chosen_ is a pooled scratch: finish() runs at every surviving
    // leaf, so a fresh vector here would be a per-leaf allocation.
    chosen_.clear();
    for (std::size_t j = 0; j < binCount_; ++j) {
      const auto option = cheapestFittingOption(bins_[j].io(), ctx_.model);
      if (!option) return;  // some bin fits no block type
      chosen_.push_back(*option);
      cost += ctx_.model.options[static_cast<std::size_t>(*option)].cost;
    }
    // Within a task only strict (beyond-slack) improvements pass, so the
    // first solution of the task's best cost is kept in DFS order;
    // across tasks betterTyped()'s ordinal tie-break decides.
    if (cost + kCostSlack >= localBest_) return;
    localBest_ = cost;
    if (betterTyped(cost, lo, bestCost_, bestOrd_)) {
      bestCost_ = cost;
      bestOrd_ = lo;
      best_.partitions.clear();
      for (std::size_t j = 0; j < binCount_; ++j)
        best_.partitions.push_back(bins_[j].members());
      best_.optionIndex = chosen_;
    }
    lowerLive(shared_.liveCost, cost);
  }

  const MultiContext& ctx_;
  MultiShared& shared_;
  detail::WorkStealingPool<MultiTask>* pool_;  // null = no splitting
  int workerId_ = 0;
  bool pruning_ = false;
  BitSet frozen_;  // non-inner + assigned prefix; bins point at this
  std::vector<PortCounter> bins_;  // pool; first binCount_ entries live
  std::size_t binCount_ = 0;
  std::vector<std::int16_t> choice_;  // live assignment of blocks [0, idx)
  std::vector<MultiTask> frames_;  // recycled task frames (see takeFrame)
  std::vector<int> chosen_;        // finish() scratch (option per bin)
  double localBest_ = 0;
  double bestCost_;
  std::uint32_t bestOrd_ = 0;
  TypedPartitioning best_;
  std::uint64_t explored_ = 0;
  std::uint64_t pruned_ = 0;
  bool aborted_ = false;
};

/// Enumerates the surviving prefixes of the first `depth` inner blocks in
/// serial DFS order, pruning only against the deterministic initial bound.
class MultiPrefixGenerator {
 public:
  explicit MultiPrefixGenerator(const MultiContext& ctx) : ctx_(ctx) {}

  std::vector<MultiTask> generate(std::size_t depth,
                                  std::uint64_t& explored) {
    depth_ = depth;
    tasks_.clear();
    choice_.clear();
    openBins_ = 0;
    explored_ = 0;
    gen(0, 0);
    explored = explored_;
    return std::move(tasks_);
  }

 private:
  void gen(std::size_t idx, int uncovered) {
    ++explored_;
    const double lowerBound =
        static_cast<double>(openBins_) * ctx_.minOptionCost +
        ctx_.model.preDefinedBlockCost * uncovered;
    if (lowerBound + kCostSlack >= ctx_.initialBound) return;
    if (idx == depth_ || idx == ctx_.inner.size()) {
      // Degenerate range [i+1, i+2): one ordinal per fixed-split task.
      const auto ord = static_cast<std::uint32_t>(tasks_.size()) + 1;
      tasks_.push_back(MultiTask{choice_, ord, ord + 1});
      return;
    }
    for (std::size_t j = 0; j < openBins_; ++j) {
      choice_.push_back(static_cast<std::int16_t>(j));
      gen(idx + 1, uncovered);
      choice_.pop_back();
    }
    choice_.push_back(static_cast<std::int16_t>(openBins_));
    ++openBins_;
    gen(idx + 1, uncovered);
    --openBins_;
    choice_.pop_back();
    choice_.push_back(kUncovered);
    gen(idx + 1, uncovered + 1);
    choice_.pop_back();
  }

  const MultiContext& ctx_;
  std::size_t depth_ = 0;
  std::vector<MultiTask> tasks_;
  std::vector<std::int16_t> choice_;
  std::size_t openBins_ = 0;
  std::uint64_t explored_ = 0;
};

}  // namespace

TypedPartitionRun multiTypeExhaustive(
    const Network& net, const ProgCostModel& model,
    const MultiTypeExhaustiveOptions& options) {
  TypedPartitionRun out;
  out.algorithm = "multitype-exhaustive";
  const auto start = Clock::now();

  MultiContext ctx(net, model, options);
  const int n = static_cast<int>(ctx.inner.size());

  // Initial incumbent: "replace nothing", improved by a feasible seed.
  double bestCost = model.preDefinedBlockCost * n;
  TypedPartitioning best;
  if (options.seed &&
      verifyTypedPartitioning(net, model, *options.seed).empty()) {
    const double c = options.seed->totalCost(n, model);
    if (c < bestCost) {
      bestCost = c;
      best = *options.seed;
    }
  }
  ctx.initialBound = bestCost;

  MultiShared shared;
  shared.liveCost.store(bestCost, std::memory_order_relaxed);

  const int threads = resolveSearchThreads(options.threads);
  std::uint64_t explored = 0;
  std::vector<std::unique_ptr<MultiWorker>> workers;
  std::atomic<std::uint64_t> totalExplored{0};
  std::atomic<std::uint64_t> totalPruned{0};

  if (options.scheduler == SearchScheduler::kFixedSplit && threads > 1 &&
      n >= 2) {
    // One-shot fixed-depth split; see exhaustive.cpp.
    MultiPrefixGenerator gen(ctx);
    const std::size_t target =
        std::max<std::size_t>(64, static_cast<std::size_t>(threads) * 8);
    std::uint64_t genExplored = 0;
    std::vector<MultiTask> tasks;
    for (std::size_t depth = 1;; ++depth) {
      tasks = gen.generate(depth, genExplored);
      if (tasks.size() >= target || depth >= static_cast<std::size_t>(n) ||
          tasks.size() > 4096)
        break;
    }
    explored += genExplored;

    const int workerCount = static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(threads), tasks.size()));
    workers.resize(static_cast<std::size_t>(std::max(workerCount, 1)));
    std::atomic<std::size_t> next{0};
    detail::runOnWorkers(workerCount, [&](int w) {
      auto worker = std::make_unique<MultiWorker>(ctx, shared, nullptr, w);
      for (;;) {
        if (shared.timedOut.load(std::memory_order_relaxed)) break;
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= tasks.size()) break;
        worker->runTask(tasks[i]);
      }
      totalExplored.fetch_add(worker->explored(),
                              std::memory_order_relaxed);
      totalPruned.fetch_add(worker->pruned(), std::memory_order_relaxed);
      workers[static_cast<std::size_t>(w)] = std::move(worker);
    });
  } else {
    // Work-stealing over on-demand subtree splits; see exhaustive.cpp.
    const int workerCount = n >= 2 ? threads : 1;
    detail::WorkStealingPool<MultiTask> taskPool(workerCount);
    taskPool.push(0, MultiTask{});
    workers.resize(static_cast<std::size_t>(workerCount));
    detail::runOnWorkers(workerCount, [&](int w) {
      auto worker = std::make_unique<MultiWorker>(
          ctx, shared, workerCount > 1 ? &taskPool : nullptr, w);
      MultiTask task;
      while (taskPool.acquire(w, task, shared.timedOut)) {
        worker->runTask(task);
        taskPool.release();
        // The executed frame's buffer feeds this worker's future splits.
        worker->recycleFrame(std::move(task));
      }
      totalExplored.fetch_add(worker->explored(),
                              std::memory_order_relaxed);
      totalPruned.fetch_add(worker->pruned(), std::memory_order_relaxed);
      workers[static_cast<std::size_t>(w)] = std::move(worker);
    });
  }
  explored += totalExplored.load(std::memory_order_relaxed);

  // Deterministic reduction: replay the serial acceptance rule (strict
  // beyond-slack improvement only) over the worker bests in ascending
  // DFS-ordinal order, starting from the initial incumbent at ordinal 0.
  // Scanning in ordinal order -- not worker order -- matters because the
  // slack comparison is not transitive: a fixed scan order makes the
  // fold independent of which worker happened to hold which candidate.
  std::vector<MultiWorker*> byOrdinal;
  for (const auto& worker : workers)
    if (worker) byOrdinal.push_back(worker.get());
  std::sort(byOrdinal.begin(), byOrdinal.end(),
            [](const MultiWorker* a, const MultiWorker* b) {
              return a->bestOrdinal() < b->bestOrdinal();
            });
  for (MultiWorker* worker : byOrdinal) {
    if (worker->bestCost() + kCostSlack < bestCost) {
      bestCost = worker->bestCost();
      best = worker->takeBest();
    }
  }
  if (workers.size() > 1)
    for (const auto& worker : workers)
      if (worker) {
        out.workerExplored.push_back(worker->explored());
        out.workerPruned.push_back(worker->pruned());
      }

  out.result = std::move(best);
  out.explored = explored;
  out.pruned = totalPruned.load(std::memory_order_relaxed);
  out.timedOut = shared.timedOut.load(std::memory_order_relaxed);
  out.optimal = !out.timedOut;
  out.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return out;
}

std::vector<std::string> verifyTypedPartitioning(
    const Network& net, const ProgCostModel& model,
    const TypedPartitioning& typed) {
  std::vector<std::string> problems;
  if (typed.partitions.size() != typed.optionIndex.size()) {
    problems.push_back("partition/option count mismatch");
    return problems;
  }
  BitSet seen = net.emptySet();
  for (std::size_t i = 0; i < typed.partitions.size(); ++i) {
    const BitSet& p = typed.partitions[i];
    const std::string label = "partition #" + std::to_string(i);
    const int idx = typed.optionIndex[i];
    if (idx < 0 || idx >= static_cast<int>(model.options.size())) {
      problems.push_back(label + ": option index out of range");
      continue;
    }
    const ProgBlockOption& o = model.options[static_cast<std::size_t>(idx)];
    const IoCount io = countIo(net, p, model.mode);
    if (io.inputs > o.inputs || io.outputs > o.outputs)
      problems.push_back(label + ": does not fit option " + o.name);
    if (p.none()) problems.push_back(label + ": empty");
    p.forEach([&](std::size_t bi) {
      const BlockId b = static_cast<BlockId>(bi);
      if (!net.isInner(b))
        problems.push_back(label + ": member '" + net.block(b).name +
                           "' is not inner");
      if (seen.test(bi))
        problems.push_back(label + ": member '" + net.block(b).name +
                           "' in two partitions");
      seen.set(bi);
    });
    // Cost sanity: a rational result never uses a partition that costs
    // more than the blocks it replaces.
    if (o.cost > model.preDefinedBlockCost * static_cast<double>(p.count()) +
                     kCostSlack)
      problems.push_back(label + ": option " + o.name +
                         " costs more than the blocks it replaces");
  }
  return problems;
}

}  // namespace eblocks::partition
