// Work-stealing task pool and subtree-splitting helpers shared by the
// parallel branch-and-bound searches (exhaustive.cpp and multitype.cpp).
//
// Design: one deque of tasks per worker.  A worker pushes and pops at the
// *back* of its own deque (LIFO keeps it close to serial DFS order, which
// finds strong incumbents early); a starved worker steals the front
// *half* of a victim's deque (the oldest entries are the shallowest --
// and therefore largest -- subtrees, so one steal buys a long stretch of
// independent work).  Workers signal starvation through a shared counter;
// the searches consult hungry() while walking a subtree and peel off
// stealable child tasks only when somebody is actually starved, so a
// single-threaded or well-balanced run degenerates to plain DFS with no
// task traffic at all.
//
// Deques are mutex-per-worker rather than lock-free: steals and splits
// are rare next to the millions of search nodes between them, and the
// mutexes keep the pool trivially correct under ASan/TSan.  Termination
// uses an in-flight task count -- tasks are counted when pushed and
// released when fully executed, so when the count reaches zero every
// deque is empty and no worker holds work.  Starved workers park on a
// condition variable (with a short timeout as a lost-wakeup backstop)
// instead of spinning, so the unsplittable tail of a search does not
// burn the idle cores.
//
// The pool moves *tasks*, not results: determinism is the callers' job
// (each task carries a DFS-ordinal range split with RangeSplitter; see
// docs/partitioning.md for the tie-break argument).
#ifndef EBLOCKS_PARTITION_WORK_STEAL_H_
#define EBLOCKS_PARTITION_WORK_STEAL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace eblocks::partition::detail {

// Shared splitting granularity.  A subtree is only split into stealable
// tasks while it is at least kLeafMargin levels above the leaves
// (smaller subtrees finish faster than a steal round-trip), while every
// child can receive an ordinal range at least kMinSplitWidth wide (once
// ranges run dry, the subtree runs inline under one ordinal and the
// within-task DFS order settles ties), and only while the worker's own
// deque holds fewer than kMaxLocalBacklog unstolen tasks (starved peers
// just have not stolen them yet; fragmenting further only adds overhead,
// acute on oversubscribed machines where "starved" workers are merely
// descheduled).
constexpr std::size_t kLeafMargin = 6;
constexpr std::uint32_t kMinSplitWidth = 64;
constexpr std::size_t kMaxLocalBacklog = 16;

/// Splits a subtree's half-open ordinal range [lo, hi) into k
/// consecutive child subranges in DFS order -- the arithmetic behind the
/// deterministic tie-break, kept in one place so both searches stay in
/// lock-step.  When the range is too narrow to give every child a
/// non-empty slice (width < k), splitting is off: every child inherits
/// the parent range, shares its lo, and must run inline on one worker.
class RangeSplitter {
 public:
  RangeSplitter(std::uint32_t lo, std::uint32_t hi, std::size_t k)
      : lo_(lo),
        hi_(hi),
        split_(hi - lo >= static_cast<std::uint32_t>(k)),
        base_(split_ ? (hi - lo) / static_cast<std::uint32_t>(k) : 0),
        extra_(split_ ? (hi - lo) % static_cast<std::uint32_t>(k) : 0),
        cursor_(lo) {}

  /// True when children received disjoint ranges (offloading is sound)
  /// and every child's slice is at least kMinSplitWidth wide (offloading
  /// is worthwhile).
  bool offloadable() const { return split_ && base_ >= kMinSplitWidth; }

  /// The next child's range; call exactly once per child, in DFS order.
  std::pair<std::uint32_t, std::uint32_t> next() {
    if (!split_) return {lo_, hi_};
    const std::uint32_t clo = cursor_;
    const std::uint32_t chi =
        cursor_ + base_ + (index_++ < extra_ ? 1u : 0u);
    cursor_ = chi;
    return {clo, chi};
  }

 private:
  std::uint32_t lo_, hi_;
  bool split_;
  std::uint32_t base_, extra_;
  std::uint32_t cursor_;
  std::uint32_t index_ = 0;
};

/// Runs fn(0..workerCount-1) on workerCount threads (worker 0 on the
/// calling thread) and joins.
template <typename Fn>
void runOnWorkers(int workerCount, Fn&& fn) {
  if (workerCount <= 1) {
    fn(0);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workerCount) - 1);
  for (int t = 1; t < workerCount; ++t) pool.emplace_back(fn, t);
  fn(0);
  for (std::thread& th : pool) th.join();
}

template <typename Task>
class WorkStealingPool {
 public:
  explicit WorkStealingPool(int workers)
      : slots_(static_cast<std::size_t>(workers)) {}

  int workers() const { return static_cast<int>(slots_.size()); }

  /// Number of workers currently failing to find work.  Searches check
  /// this (relaxed) to decide whether to split their current subtree.
  int hungry() const { return hungry_.load(std::memory_order_relaxed); }

  /// Current size of worker w's own deque (the kMaxLocalBacklog gate).
  std::size_t queueDepth(int w) {
    Slot& slot = slots_[static_cast<std::size_t>(w)];
    const std::lock_guard<std::mutex> lock(slot.mutex);
    return slot.queue.size();
  }

  /// Makes `task` stealable.  Called by worker `w` for its own deque --
  /// including the initial seeding of the root task.
  void push(int w, Task&& task) {
    inFlight_.fetch_add(1, std::memory_order_relaxed);
    Slot& slot = slots_[static_cast<std::size_t>(w)];
    {
      const std::lock_guard<std::mutex> lock(slot.mutex);
      slot.queue.push_back(std::move(task));
    }
    idleCv_.notify_all();
  }

  /// Releases one task obtained from acquire() after it has been fully
  /// executed (or deliberately abandoned, e.g. on timeout).
  void release() {
    if (inFlight_.fetch_sub(1, std::memory_order_acq_rel) == 1)
      idleCv_.notify_all();  // drained: wake everyone to terminate
  }

  /// Blocks until a task is available (true) or the pool is drained /
  /// `stop` is set (false).  Every successful acquire() must be paired
  /// with exactly one release().
  bool acquire(int w, Task& out, const std::atomic<bool>& stop) {
    if (popOwn(w, out)) return true;
    hungry_.fetch_add(1, std::memory_order_relaxed);
    for (;;) {
      if (stop.load(std::memory_order_relaxed)) break;
      if (popOwn(w, out) || (stealInto(w) && popOwn(w, out))) {
        hungry_.fetch_sub(1, std::memory_order_relaxed);
        return true;
      }
      // All deques empty *and* nothing executing: the search is complete.
      if (inFlight_.load(std::memory_order_acquire) == 0) break;
      // Park until work is pushed or the pool drains.  The timeout
      // bounds the stall if a push slips between the scan above and the
      // wait, and doubles as the stop-flag poll interval.
      std::unique_lock<std::mutex> lock(idleMutex_);
      idleCv_.wait_for(lock, std::chrono::milliseconds(1));
    }
    hungry_.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }

 private:
  struct Slot {
    std::mutex mutex;
    std::deque<Task> queue;
  };

  bool popOwn(int w, Task& out) {
    Slot& slot = slots_[static_cast<std::size_t>(w)];
    const std::lock_guard<std::mutex> lock(slot.mutex);
    if (slot.queue.empty()) return false;
    out = std::move(slot.queue.back());
    slot.queue.pop_back();
    return true;
  }

  /// Steals the front half of the first non-empty victim deque into w's
  /// own deque.  Stolen tasks are re-pushed in reverse so the thief pops
  /// them oldest-first (closest to serial DFS order).  The loot buffer
  /// is thread-local so repeated steals reuse its capacity instead of
  /// allocating (two locks are never held at once, so the transfer must
  /// stage through a buffer).
  bool stealInto(int w) {
    const std::size_t n = slots_.size();
    static thread_local std::vector<Task> lootBuffer;
    std::vector<Task>& loot = lootBuffer;
    loot.clear();
    for (std::size_t step = 1; step < n && loot.empty(); ++step) {
      Slot& victim =
          slots_[(static_cast<std::size_t>(w) + step) % n];
      const std::lock_guard<std::mutex> lock(victim.mutex);
      const std::size_t take = (victim.queue.size() + 1) / 2;
      for (std::size_t i = 0; i < take; ++i) {
        loot.push_back(std::move(victim.queue.front()));
        victim.queue.pop_front();
      }
    }
    if (loot.empty()) return false;
    Slot& own = slots_[static_cast<std::size_t>(w)];
    const std::lock_guard<std::mutex> lock(own.mutex);
    for (auto it = loot.rbegin(); it != loot.rend(); ++it)
      own.queue.push_back(std::move(*it));
    return true;
  }

  std::vector<Slot> slots_;
  std::atomic<long> inFlight_{0};
  std::atomic<int> hungry_{0};
  std::mutex idleMutex_;
  std::condition_variable idleCv_;
};

}  // namespace eblocks::partition::detail

#endif  // EBLOCKS_PARTITION_WORK_STEAL_H_
