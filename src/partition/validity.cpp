#include "partition/validity.h"

#include <algorithm>
#include <vector>

namespace eblocks::partition {

IoCount irreducibleBlockIo(const Network& net, BlockId b,
                           CountingMode mode) {
  IoCount io;
  if (mode == CountingMode::kEdges) {
    for (const Connection& c : net.inputsOf(b))
      if (!net.isInner(c.from.block)) ++io.inputs;
    for (const Connection& c : net.outputsOf(b))
      if (!net.isInner(c.to.block)) ++io.outputs;
    return io;
  }
  // kSignals: distinct non-inner source endpoints feeding b (each is a
  // separate external signal no bin can merge or internalize), and b's
  // own output endpoints with at least one non-inner consumer (each
  // occupies one port of any bin containing b, forever).
  std::vector<std::uint64_t> srcs;
  for (const Connection& c : net.inputsOf(b))
    if (!net.isInner(c.from.block))
      srcs.push_back((static_cast<std::uint64_t>(c.from.block) << 16) |
                     c.from.port);
  std::sort(srcs.begin(), srcs.end());
  io.inputs = static_cast<int>(
      std::unique(srcs.begin(), srcs.end()) - srcs.begin());
  std::vector<std::uint64_t> ports;
  for (const Connection& c : net.outputsOf(b))
    if (!net.isInner(c.to.block))
      ports.push_back(c.from.port);
  std::sort(ports.begin(), ports.end());
  io.outputs = static_cast<int>(
      std::unique(ports.begin(), ports.end()) - ports.begin());
  return io;
}

bool fitsProgrammable(const Network& net, const BitSet& members,
                      const ProgBlockSpec& spec) {
  // One-shot query: the from-scratch count is the right tool.  The
  // incremental algorithms keep a PortCounter instead and test its io()
  // with fits() directly.
  return fits(countIo(net, members, spec.mode), spec);
}

bool isValidPartition(const PartitionProblem& problem, const BitSet& members,
                      bool requireConvex) {
  if (members.count() < 2) return false;
  bool allInner = true;
  members.forEach([&](std::size_t b) {
    if (!problem.network().isInner(static_cast<BlockId>(b))) allInner = false;
  });
  if (!allInner) return false;
  if (!fitsProgrammable(problem.network(), members, problem.spec()))
    return false;
  if (requireConvex && !isConvex(problem.network(), members)) return false;
  return true;
}

}  // namespace eblocks::partition
