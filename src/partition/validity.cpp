#include "partition/validity.h"

namespace eblocks::partition {

bool fitsProgrammable(const Network& net, const BitSet& members,
                      const ProgBlockSpec& spec) {
  // One-shot query: the from-scratch count is the right tool.  The
  // incremental algorithms keep a PortCounter instead and test its io()
  // with fits() directly.
  return fits(countIo(net, members, spec.mode), spec);
}

bool isValidPartition(const PartitionProblem& problem, const BitSet& members,
                      bool requireConvex) {
  if (members.count() < 2) return false;
  bool allInner = true;
  members.forEach([&](std::size_t b) {
    if (!problem.network().isInner(static_cast<BlockId>(b))) allInner = false;
  });
  if (!allInner) return false;
  if (!fitsProgrammable(problem.network(), members, problem.spec()))
    return false;
  if (requireConvex && !isConvex(problem.network(), members)) return false;
  return true;
}

}  // namespace eblocks::partition
