// The incremental validity kernel: a subgraph's port usage maintained
// under single-block add/remove in O(degree of the block).
//
// Every partitioner probes thousands to millions of candidate subgraphs
// that differ from their predecessor by one block (PareDown removes one
// border block per round, aggregation grows by one neighbor, the
// branch-and-bound searches move one block between bins).  Recomputing
// countIo() from scratch on each probe costs O(|members| * degree) -- the
// scalability wall the paper hits at 19+ inner blocks (Table 1).  A
// PortCounter carries the same IoCount forward incrementally, so a probe
// costs only the touched block's degree.
//
// Beyond port usage, the kernel can optionally maintain the *border set*
// and *removal ranks* PareDown consults every round (Section 4.2).  Both
// derive from two per-member integers that update in O(degree) per move:
//   internalIn(b)  = #input  connections of member b fed by members
//   internalOut(b) = #output connections of member b consumed by members
// A member is border iff internalIn == 0 or internalOut == 0, and its
// removal rank is 2*(internalIn + internalOut) - indegree - outdegree.
// Tracking is opt-in (BorderTracking::kOn) because the branch-and-bound
// bins never ask for borders and should not pay for them.
//
// For the branch-and-bound's admissible lower bound the kernel can also
// maintain the *irreducible* part of the crossing I/O: the subset whose
// outside endpoint is "frozen" -- a block that can provably never join
// this member set (non-inner blocks, and blocks the search has already
// fixed in another bin or left uncovered).  Frozen crossing I/O can only
// grow as the member set grows, so it is a sound monotone floor on the
// final I/O of any superset -- including in kSignals mode, where pruning
// on the full io() would be unsound (adding a member can internalize
// shared fanout and *shrink* the count; it can never shrink the frozen
// part, because a frozen endpoint stays outside forever).  Tracking is
// enabled by handing the constructor a caller-owned frozen BitSet;
// freeze()/unfreeze() notify the counter when an outside block's bit
// flips, in O(degree) per flip.
//
// countIo(), borderBlocks(), and removalRank() in core/subgraph.h remain
// the independent from-scratch references; the randomized kernel tests
// cross-check every incremental state against them.
#ifndef EBLOCKS_PARTITION_PORT_COUNTER_H_
#define EBLOCKS_PARTITION_PORT_COUNTER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/bitset.h"
#include "core/network.h"
#include "core/subgraph.h"

namespace eblocks::partition {

/// Whether a PortCounter additionally maintains the border set and the
/// removal ranks of its members (see the header comment).
enum class BorderTracking { kOff, kOn };

/// Incrementally maintained I/O usage of a member set.  The network must
/// outlive the counter.  Not thread-safe; parallel search gives each
/// worker (and each bin) its own counter.
class PortCounter {
 public:
  /// `frozen` (optional, caller-owned, must outlive the counter) enables
  /// irreducible-I/O tracking: fixedIo() counts the crossing I/O whose
  /// outside endpoint block is in `*frozen`.  The caller owns the bit
  /// flips and must keep the counter in sync: add(b)/remove(b) require
  /// `b` itself to be un-frozen at call time, and every flip of an
  /// *outside* block's bit must be bracketed by freeze()/unfreeze()
  /// calls on this counter (flipping a bit while the block is a member
  /// needs no call -- members have no crossing edges to themselves).
  PortCounter(const Network& net, CountingMode mode,
              BorderTracking tracking = BorderTracking::kOff,
              const BitSet* frozen = nullptr)
      : net_(&net),
        mode_(mode),
        tracking_(tracking),
        frozen_(frozen),
        members_(net.blockCount()) {
    if (tracking_ == BorderTracking::kOn) {
      internalIn_.resize(net.blockCount(), 0);
      internalOut_.resize(net.blockCount(), 0);
      border_ = BitSet(net.blockCount());
    }
  }

  CountingMode mode() const { return mode_; }
  bool tracksBorder() const { return tracking_ == BorderTracking::kOn; }
  bool tracksFixed() const { return frozen_ != nullptr; }
  const BitSet& members() const { return members_; }
  int memberCount() const { return count_; }
  bool contains(BlockId b) const { return members_.test(b); }

  /// Current port usage; always equal to
  /// countIo(net, members(), mode()).
  const IoCount& io() const { return io_; }

  /// The irreducible part of io(): crossing I/O whose outside endpoint
  /// block is frozen.  Component-wise <= io(), and component-wise <= the
  /// final io() of *any* superset of members() reachable without
  /// unfreezing -- the admissible floor the branch-and-bound prunes on.
  /// Requires a frozen set at construction.
  const IoCount& fixedIo() const { return fixed_; }

  /// Notifies the counter that outside block `x` was frozen (its bit in
  /// the shared frozen set was just set): crossing edges between `x` and
  /// members become irreducible.  O(degree(x)).  `x` must not be a
  /// member.
  void freeze(BlockId x);

  /// Exact inverse of freeze(); call before (or after) clearing `x`'s
  /// bit in the shared frozen set.
  void unfreeze(BlockId x);

  /// The current border members; always equal (as a set) to
  /// borderBlocks(net, members()).  Requires BorderTracking::kOn.
  const BitSet& border() const { return border_; }

  /// Removal rank of member `b`; always equal to
  /// removalRank(net, members(), b).  O(1).  Requires BorderTracking::kOn
  /// and `b` to be a member.
  int rank(BlockId b) const {
    return 2 * (internalIn_[b] + internalOut_[b]) -
           static_cast<int>(net_->indegree(b)) -
           static_cast<int>(net_->outdegree(b));
  }

  /// Adds `b` to the set in O(degree(b)).  `b` must not be a member.
  void add(BlockId b);

  /// Removes `b` from the set in O(degree(b)).  `b` must be a member.
  void remove(BlockId b);

  /// Empties the set.
  void clear();

  /// Replaces the set: clear() followed by add() of every member.
  void assign(const BitSet& members);

 private:
  // kSignals bookkeeping: reference counts of boundary-crossing edges per
  // source endpoint.  An endpoint counts toward io_ while its count > 0.
  static std::uint64_t key(const Endpoint& e) {
    return (static_cast<std::uint64_t>(e.block) << 16) | e.port;
  }
  void incIn(const Endpoint& e) {
    if (++inSrc_[key(e)] == 1) ++io_.inputs;
  }
  void decIn(const Endpoint& e) {
    auto it = inSrc_.find(key(e));
    if (--it->second == 0) {
      inSrc_.erase(it);
      --io_.inputs;
    }
  }
  void incOut(const Endpoint& e) {
    if (++outSrc_[key(e)] == 1) ++io_.outputs;
  }
  void decOut(const Endpoint& e) {
    auto it = outSrc_.find(key(e));
    if (--it->second == 0) {
      outSrc_.erase(it);
      --io_.outputs;
    }
  }

  // Irreducible-I/O bookkeeping (kSignals): a source endpoint occupies an
  // irreducible input while it has > 0 member consumers and its block is
  // frozen; a member endpoint occupies an irreducible output while it has
  // > 0 frozen outside consumers.  Same refcount discipline as
  // inSrc_/outSrc_ above.
  void fixedIncIn(const Endpoint& e) {
    if (++fixedInSrc_[key(e)] == 1) ++fixed_.inputs;
  }
  void fixedDecIn(const Endpoint& e) {
    auto it = fixedInSrc_.find(key(e));
    if (--it->second == 0) {
      fixedInSrc_.erase(it);
      --fixed_.inputs;
    }
  }
  void fixedIncOut(const Endpoint& e) {
    if (++fixedOutSrc_[key(e)] == 1) ++fixed_.outputs;
  }
  void fixedDecOut(const Endpoint& e) {
    auto it = fixedOutSrc_.find(key(e));
    if (--it->second == 0) {
      fixedOutSrc_.erase(it);
      --fixed_.outputs;
    }
  }

  /// Recomputes the border bit of member `b` from its internal-degree
  /// counters (border iff every input or every output crosses the
  /// boundary -- vacuously true for disconnected sides).
  void refreshBorderBit(BlockId b) {
    if (internalIn_[b] == 0 || internalOut_[b] == 0)
      border_.set(b);
    else
      border_.reset(b);
  }
  void trackAdd(BlockId b);
  void trackRemove(BlockId b);

  const Network* net_;
  CountingMode mode_;
  BorderTracking tracking_;
  const BitSet* frozen_;
  BitSet members_;
  int count_ = 0;
  IoCount io_;
  std::unordered_map<std::uint64_t, int> inSrc_, outSrc_;
  // Irreducible-I/O bookkeeping (frozen set provided only; empty
  // otherwise).  The maps are used in kSignals mode; kEdges counts each
  // crossing connection directly into fixed_.
  IoCount fixed_;
  std::unordered_map<std::uint64_t, int> fixedInSrc_, fixedOutSrc_;
  // Border/rank bookkeeping (BorderTracking::kOn only; empty otherwise).
  std::vector<int> internalIn_, internalOut_;
  BitSet border_;
};

}  // namespace eblocks::partition

#endif  // EBLOCKS_PARTITION_PORT_COUNTER_H_
