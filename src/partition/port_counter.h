// The incremental validity kernel: a subgraph's port usage maintained
// under single-block add/remove in O(degree of the block).
//
// Every partitioner probes thousands to millions of candidate subgraphs
// that differ from their predecessor by one block (PareDown removes one
// border block per round, aggregation grows by one neighbor, the
// branch-and-bound searches move one block between bins).  Recomputing
// countIo() from scratch on each probe costs O(|members| * degree) -- the
// scalability wall the paper hits at 19+ inner blocks (Table 1).  A
// PortCounter carries the same IoCount forward incrementally, so a probe
// costs only the touched block's degree.
//
// Data layout: the counter walks a CompactGraph -- the immutable CSR
// view of the network (see compact_graph.h) -- and all kSignals
// reference counts live in dense arrays indexed by the graph's dense
// endpoint ids.  A move therefore does zero hashing and zero heap
// allocation: each touched arc is one flat-array load (the arc), one
// bitset test (the neighbor side), and at most one array
// increment/decrement (the endpoint refcount).  Tables reset in
// O(touched endpoints), not O(universe), via a live-list per table.
// kEdges mode never touches the tables at all; it counts crossing
// connections directly.
//
// Beyond port usage, the kernel can optionally maintain the *border set*
// and *removal ranks* PareDown consults every round (Section 4.2).  Both
// derive from two per-member integers that update in O(degree) per move:
//   internalIn(b)  = #input  connections of member b fed by members
//   internalOut(b) = #output connections of member b consumed by members
// A member is border iff internalIn == 0 or internalOut == 0, and its
// removal rank is 2*(internalIn + internalOut) - indegree - outdegree.
// Tracking is opt-in (BorderTracking::kOn) because the branch-and-bound
// bins never ask for borders and should not pay for them.
//
// For the branch-and-bound's admissible lower bound the kernel can also
// maintain the *irreducible* part of the crossing I/O: the subset whose
// outside endpoint is "frozen" -- a block that can provably never join
// this member set (non-inner blocks, and blocks the search has already
// fixed in another bin or left uncovered).  Frozen crossing I/O can only
// grow as the member set grows, so it is a sound monotone floor on the
// final I/O of any superset -- including in kSignals mode, where pruning
// on the full io() would be unsound (adding a member can internalize
// shared fanout and *shrink* the count; it can never shrink the frozen
// part, because a frozen endpoint stays outside forever).  Tracking is
// enabled by handing the constructor a caller-owned frozen BitSet;
// freeze()/unfreeze() notify the counter when an outside block's bit
// flips, in O(degree) per flip.
//
// countIo(), borderBlocks(), and removalRank() in core/subgraph.h remain
// the independent from-scratch references; the randomized kernel tests
// cross-check every incremental state against them.  In debug builds the
// refcount tables additionally assert range and non-underflow on every
// decrement, so a desynced counter fails loudly instead of silently
// corrupting the search.
#ifndef EBLOCKS_PARTITION_PORT_COUNTER_H_
#define EBLOCKS_PARTITION_PORT_COUNTER_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/bitset.h"
#include "core/network.h"
#include "core/subgraph.h"
#include "partition/compact_graph.h"

namespace eblocks::partition {

/// Whether a PortCounter additionally maintains the border set and the
/// removal ranks of its members (see the header comment).
enum class BorderTracking { kOff, kOn };

namespace detail {

/// Dense per-endpoint reference counts with O(touched) reset: counts_
/// spans the whole endpoint universe, live_ lists exactly the endpoints
/// with a non-zero count (their position kept in pos_ for O(1)
/// swap-removal).  All operations are hash-free and allocation-free
/// after init().
class EndpointRefCount {
 public:
  void init(std::size_t universe) {
    counts_.assign(universe, 0);
    pos_.assign(universe, 0);
    live_.clear();
    live_.reserve(universe);
  }

  /// Increments `e`; true when the count became non-zero (0 -> 1).
  bool inc(std::uint32_t e) {
    assert(e < counts_.size() && "endpoint id out of range");
    if (counts_[e]++ != 0) return false;
    pos_[e] = static_cast<std::uint32_t>(live_.size());
    live_.push_back(e);
    return true;
  }

  /// Decrements `e`; true when the count reached zero (1 -> 0).
  /// Debug builds assert against underflow -- a desynced caller.
  bool dec(std::uint32_t e) {
    assert(e < counts_.size() && "endpoint id out of range");
    assert(counts_[e] > 0 && "endpoint refcount underflow");
    if (--counts_[e] != 0) return false;
    const std::uint32_t last = live_.back();
    live_[pos_[e]] = last;
    pos_[last] = pos_[e];
    live_.pop_back();
    return true;
  }

  /// Zeroes every non-zero count in O(touched).
  void clear() {
    for (const std::uint32_t e : live_) counts_[e] = 0;
    live_.clear();
  }

  int liveCount() const { return static_cast<int>(live_.size()); }

 private:
  std::vector<std::int32_t> counts_;
  std::vector<std::uint32_t> pos_;
  std::vector<std::uint32_t> live_;
};

}  // namespace detail

/// Incrementally maintained I/O usage of a member set.  The CompactGraph
/// (and the network behind it) must outlive the counter.  Not
/// thread-safe; parallel search gives each worker (and each bin) its own
/// counter over the one shared CompactGraph.
class PortCounter {
 public:
  /// `frozen` (optional, caller-owned, must outlive the counter) enables
  /// irreducible-I/O tracking: fixedIo() counts the crossing I/O whose
  /// outside endpoint block is in `*frozen`.  The caller owns the bit
  /// flips and must keep the counter in sync: add(b)/remove(b) require
  /// `b` itself to be un-frozen at call time, and every flip of an
  /// *outside* block's bit must be bracketed by freeze()/unfreeze()
  /// calls on this counter (flipping a bit while the block is a member
  /// needs no call -- members have no crossing edges to themselves).
  PortCounter(const CompactGraph& graph, CountingMode mode,
              BorderTracking tracking = BorderTracking::kOff,
              const BitSet* frozen = nullptr)
      : graph_(&graph), mode_(mode), tracking_(tracking), frozen_(frozen) {
    init();
  }

  /// Convenience for one-off counters (tests, single-run algorithms):
  /// builds and owns a CompactGraph of `net`.  Code that creates many
  /// counters over one network (the branch-and-bound's bins) should
  /// build the graph once and use the CompactGraph constructor.
  PortCounter(const Network& net, CountingMode mode,
              BorderTracking tracking = BorderTracking::kOff,
              const BitSet* frozen = nullptr)
      : owned_(std::make_shared<CompactGraph>(net)),
        graph_(owned_.get()),
        mode_(mode),
        tracking_(tracking),
        frozen_(frozen) {
    init();
  }

  const CompactGraph& graph() const { return *graph_; }
  CountingMode mode() const { return mode_; }
  bool tracksBorder() const { return tracking_ == BorderTracking::kOn; }
  bool tracksFixed() const { return frozen_ != nullptr; }
  const BitSet& members() const { return members_; }
  int memberCount() const { return count_; }
  bool contains(BlockId b) const { return members_.test(b); }

  /// Current port usage; always equal to
  /// countIo(net, members(), mode()).
  const IoCount& io() const { return io_; }

  /// The irreducible part of io(): crossing I/O whose outside endpoint
  /// block is frozen.  Component-wise <= io(), and component-wise <= the
  /// final io() of *any* superset of members() reachable without
  /// unfreezing -- the admissible floor the branch-and-bound prunes on.
  /// Requires a frozen set at construction.
  const IoCount& fixedIo() const { return fixed_; }

  /// Notifies the counter that outside block `x` was frozen (its bit in
  /// the shared frozen set was just set): crossing edges between `x` and
  /// members become irreducible.  O(degree(x)).  `x` must not be a
  /// member.
  void freeze(BlockId x);

  /// Exact inverse of freeze(); call before (or after) clearing `x`'s
  /// bit in the shared frozen set.
  void unfreeze(BlockId x);

  /// The current border members; always equal (as a set) to
  /// borderBlocks(net, members()).  Requires BorderTracking::kOn.
  const BitSet& border() const { return border_; }

  /// Removal rank of member `b`; always equal to
  /// removalRank(net, members(), b).  O(1).  Requires BorderTracking::kOn
  /// and `b` to be a member.
  int rank(BlockId b) const {
    return 2 * (internalIn_[b] + internalOut_[b]) - graph_->indegree(b) -
           graph_->outdegree(b);
  }

  /// Adds `b` to the set in O(degree(b)).  `b` must not be a member.
  void add(BlockId b);

  /// Removes `b` from the set in O(degree(b)).  `b` must be a member.
  void remove(BlockId b);

  /// Empties the set in O(members + touched endpoints).
  void clear();

  /// Replaces the set: clear() followed by add() of every member.
  void assign(const BitSet& members);

 private:
  // kSignals bookkeeping: reference counts of boundary-crossing edges per
  // source endpoint, in dense arrays indexed by the graph's endpoint
  // ids.  An endpoint counts toward io_ while its count > 0.
  void incIn(std::uint32_t e) {
    if (inSrc_.inc(e)) ++io_.inputs;
  }
  void decIn(std::uint32_t e) {
    if (inSrc_.dec(e)) --io_.inputs;
  }
  void incOut(std::uint32_t e) {
    if (outSrc_.inc(e)) ++io_.outputs;
  }
  void decOut(std::uint32_t e) {
    if (outSrc_.dec(e)) --io_.outputs;
  }

  // Irreducible-I/O bookkeeping (kSignals): a source endpoint occupies an
  // irreducible input while it has > 0 member consumers and its block is
  // frozen; a member endpoint occupies an irreducible output while it has
  // > 0 frozen outside consumers.  Same refcount discipline as
  // inSrc_/outSrc_ above.
  void fixedIncIn(std::uint32_t e) {
    if (fixedInSrc_.inc(e)) ++fixed_.inputs;
  }
  void fixedDecIn(std::uint32_t e) {
    if (fixedInSrc_.dec(e)) --fixed_.inputs;
  }
  void fixedIncOut(std::uint32_t e) {
    if (fixedOutSrc_.inc(e)) ++fixed_.outputs;
  }
  void fixedDecOut(std::uint32_t e) {
    if (fixedOutSrc_.dec(e)) --fixed_.outputs;
  }

  /// Recomputes the border bit of member `b` from its internal-degree
  /// counters (border iff every input or every output crosses the
  /// boundary -- vacuously true for disconnected sides).
  void refreshBorderBit(BlockId b) {
    if (internalIn_[b] == 0 || internalOut_[b] == 0)
      border_.set(b);
    else
      border_.reset(b);
  }
  void trackAdd(BlockId b);
  void trackRemove(BlockId b);

  void init() {
    members_ = BitSet(graph_->blockCount());
    if (mode_ == CountingMode::kSignals) {
      inSrc_.init(graph_->endpointCount());
      outSrc_.init(graph_->endpointCount());
      if (frozen_) {
        fixedInSrc_.init(graph_->endpointCount());
        fixedOutSrc_.init(graph_->endpointCount());
      }
    }
    if (tracking_ == BorderTracking::kOn) {
      internalIn_.resize(graph_->blockCount(), 0);
      internalOut_.resize(graph_->blockCount(), 0);
      border_ = BitSet(graph_->blockCount());
    }
  }

  // Backs the Network convenience constructor only (declared before
  // graph_ so graph_ can point at it during member initialization).
  std::shared_ptr<const CompactGraph> owned_;
  const CompactGraph* graph_;
  CountingMode mode_;
  BorderTracking tracking_;
  const BitSet* frozen_;
  BitSet members_;
  int count_ = 0;
  IoCount io_;
  detail::EndpointRefCount inSrc_, outSrc_;
  // Irreducible-I/O bookkeeping (frozen set provided only; empty
  // otherwise).  The tables are used in kSignals mode; kEdges counts
  // each crossing connection directly into fixed_.
  IoCount fixed_;
  detail::EndpointRefCount fixedInSrc_, fixedOutSrc_;
  // Border/rank bookkeeping (BorderTracking::kOn only; empty otherwise).
  std::vector<int> internalIn_, internalOut_;
  BitSet border_;
};

}  // namespace eblocks::partition

#endif  // EBLOCKS_PARTITION_PORT_COUNTER_H_
