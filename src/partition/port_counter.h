// The incremental validity kernel: a subgraph's port usage maintained
// under single-block add/remove in O(degree of the block).
//
// Every partitioner probes thousands to millions of candidate subgraphs
// that differ from their predecessor by one block (PareDown removes one
// border block per round, aggregation grows by one neighbor, the
// branch-and-bound searches move one block between bins).  Recomputing
// countIo() from scratch on each probe costs O(|members| * degree) -- the
// scalability wall the paper hits at 19+ inner blocks (Table 1).  A
// PortCounter carries the same IoCount forward incrementally, so a probe
// costs only the touched block's degree.
//
// Beyond port usage, the kernel can optionally maintain the *border set*
// and *removal ranks* PareDown consults every round (Section 4.2).  Both
// derive from two per-member integers that update in O(degree) per move:
//   internalIn(b)  = #input  connections of member b fed by members
//   internalOut(b) = #output connections of member b consumed by members
// A member is border iff internalIn == 0 or internalOut == 0, and its
// removal rank is 2*(internalIn + internalOut) - indegree - outdegree.
// Tracking is opt-in (BorderTracking::kOn) because the branch-and-bound
// bins never ask for borders and should not pay for them.
//
// countIo(), borderBlocks(), and removalRank() in core/subgraph.h remain
// the independent from-scratch references; the randomized kernel tests
// cross-check every incremental state against them.
#ifndef EBLOCKS_PARTITION_PORT_COUNTER_H_
#define EBLOCKS_PARTITION_PORT_COUNTER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/bitset.h"
#include "core/network.h"
#include "core/subgraph.h"

namespace eblocks::partition {

/// Whether a PortCounter additionally maintains the border set and the
/// removal ranks of its members (see the header comment).
enum class BorderTracking { kOff, kOn };

/// Incrementally maintained I/O usage of a member set.  The network must
/// outlive the counter.  Not thread-safe; parallel search gives each
/// worker (and each bin) its own counter.
class PortCounter {
 public:
  PortCounter(const Network& net, CountingMode mode,
              BorderTracking tracking = BorderTracking::kOff)
      : net_(&net),
        mode_(mode),
        tracking_(tracking),
        members_(net.blockCount()) {
    if (tracking_ == BorderTracking::kOn) {
      internalIn_.resize(net.blockCount(), 0);
      internalOut_.resize(net.blockCount(), 0);
      border_ = BitSet(net.blockCount());
    }
  }

  CountingMode mode() const { return mode_; }
  bool tracksBorder() const { return tracking_ == BorderTracking::kOn; }
  const BitSet& members() const { return members_; }
  int memberCount() const { return count_; }
  bool contains(BlockId b) const { return members_.test(b); }

  /// Current port usage; always equal to
  /// countIo(net, members(), mode()).
  const IoCount& io() const { return io_; }

  /// The current border members; always equal (as a set) to
  /// borderBlocks(net, members()).  Requires BorderTracking::kOn.
  const BitSet& border() const { return border_; }

  /// Removal rank of member `b`; always equal to
  /// removalRank(net, members(), b).  O(1).  Requires BorderTracking::kOn
  /// and `b` to be a member.
  int rank(BlockId b) const {
    return 2 * (internalIn_[b] + internalOut_[b]) -
           static_cast<int>(net_->indegree(b)) -
           static_cast<int>(net_->outdegree(b));
  }

  /// Adds `b` to the set in O(degree(b)).  `b` must not be a member.
  void add(BlockId b);

  /// Removes `b` from the set in O(degree(b)).  `b` must be a member.
  void remove(BlockId b);

  /// Empties the set.
  void clear();

  /// Replaces the set: clear() followed by add() of every member.
  void assign(const BitSet& members);

 private:
  // kSignals bookkeeping: reference counts of boundary-crossing edges per
  // source endpoint.  An endpoint counts toward io_ while its count > 0.
  static std::uint64_t key(const Endpoint& e) {
    return (static_cast<std::uint64_t>(e.block) << 16) | e.port;
  }
  void incIn(const Endpoint& e) {
    if (++inSrc_[key(e)] == 1) ++io_.inputs;
  }
  void decIn(const Endpoint& e) {
    auto it = inSrc_.find(key(e));
    if (--it->second == 0) {
      inSrc_.erase(it);
      --io_.inputs;
    }
  }
  void incOut(const Endpoint& e) {
    if (++outSrc_[key(e)] == 1) ++io_.outputs;
  }
  void decOut(const Endpoint& e) {
    auto it = outSrc_.find(key(e));
    if (--it->second == 0) {
      outSrc_.erase(it);
      --io_.outputs;
    }
  }

  /// Recomputes the border bit of member `b` from its internal-degree
  /// counters (border iff every input or every output crosses the
  /// boundary -- vacuously true for disconnected sides).
  void refreshBorderBit(BlockId b) {
    if (internalIn_[b] == 0 || internalOut_[b] == 0)
      border_.set(b);
    else
      border_.reset(b);
  }
  void trackAdd(BlockId b);
  void trackRemove(BlockId b);

  const Network* net_;
  CountingMode mode_;
  BorderTracking tracking_;
  BitSet members_;
  int count_ = 0;
  IoCount io_;
  std::unordered_map<std::uint64_t, int> inSrc_, outSrc_;
  // Border/rank bookkeeping (BorderTracking::kOn only; empty otherwise).
  std::vector<int> internalIn_, internalOut_;
  BitSet border_;
};

}  // namespace eblocks::partition

#endif  // EBLOCKS_PARTITION_PORT_COUNTER_H_
