// The incremental validity kernel: a subgraph's port usage maintained
// under single-block add/remove in O(degree of the block).
//
// Every partitioner probes thousands to millions of candidate subgraphs
// that differ from their predecessor by one block (PareDown removes one
// border block per round, aggregation grows by one neighbor, the
// branch-and-bound searches move one block between bins).  Recomputing
// countIo() from scratch on each probe costs O(|members| * degree) -- the
// scalability wall the paper hits at 19+ inner blocks (Table 1).  A
// PortCounter carries the same IoCount forward incrementally, so a probe
// costs only the touched block's degree.
//
// countIo() in core/subgraph.h remains the independent from-scratch
// reference; the randomized kernel tests cross-check every incremental
// state against it.
#ifndef EBLOCKS_PARTITION_PORT_COUNTER_H_
#define EBLOCKS_PARTITION_PORT_COUNTER_H_

#include <cstdint>
#include <unordered_map>

#include "core/bitset.h"
#include "core/network.h"
#include "core/subgraph.h"

namespace eblocks::partition {

/// Incrementally maintained I/O usage of a member set.  The network must
/// outlive the counter.  Not thread-safe; parallel search gives each
/// worker (and each bin) its own counter.
class PortCounter {
 public:
  PortCounter(const Network& net, CountingMode mode)
      : net_(&net), mode_(mode), members_(net.blockCount()) {}

  CountingMode mode() const { return mode_; }
  const BitSet& members() const { return members_; }
  int memberCount() const { return count_; }
  bool contains(BlockId b) const { return members_.test(b); }

  /// Current port usage; always equal to
  /// countIo(net, members(), mode()).
  const IoCount& io() const { return io_; }

  /// Adds `b` to the set in O(degree(b)).  `b` must not be a member.
  void add(BlockId b);

  /// Removes `b` from the set in O(degree(b)).  `b` must be a member.
  void remove(BlockId b);

  /// Empties the set.
  void clear();

  /// Replaces the set: clear() followed by add() of every member.
  void assign(const BitSet& members);

 private:
  // kSignals bookkeeping: reference counts of boundary-crossing edges per
  // source endpoint.  An endpoint counts toward io_ while its count > 0.
  static std::uint64_t key(const Endpoint& e) {
    return (static_cast<std::uint64_t>(e.block) << 16) | e.port;
  }
  void incIn(const Endpoint& e) {
    if (++inSrc_[key(e)] == 1) ++io_.inputs;
  }
  void decIn(const Endpoint& e) {
    auto it = inSrc_.find(key(e));
    if (--it->second == 0) {
      inSrc_.erase(it);
      --io_.inputs;
    }
  }
  void incOut(const Endpoint& e) {
    if (++outSrc_[key(e)] == 1) ++io_.outputs;
  }
  void decOut(const Endpoint& e) {
    auto it = outSrc_.find(key(e));
    if (--it->second == 0) {
      outSrc_.erase(it);
      --io_.outputs;
    }
  }

  const Network* net_;
  CountingMode mode_;
  BitSet members_;
  int count_ = 0;
  IoCount io_;
  std::unordered_map<std::uint64_t, int> inSrc_, outSrc_;
};

}  // namespace eblocks::partition

#endif  // EBLOCKS_PARTITION_PORT_COUNTER_H_
