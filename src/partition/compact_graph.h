// The flat search-kernel view of a Network: an immutable CSR adjacency
// plus a dense endpoint index, built once per search (or per run) and
// shared by every PortCounter probing that network.
//
// Why it exists: a branch-and-bound move walks the touched block's
// neighborhood.  Through Network that walk goes vector<vector<Connection>>
// -> Connection (two Endpoints = 8 bytes each) -> hash of the source
// endpoint into four unordered_map refcount tables.  Each step is a
// pointer chase or a hash, and together they set the per-move constant
// that dominates the search once the node count is near-optimal (PRs
// 2-4).  The CSR view removes all of them:
//
//   - Per-block in/out adjacency lives in two flat arc arrays with
//     offset tables -- one contiguous stripe per block, no per-block
//     vector headers between a block's arcs and the next's.
//   - Each arc carries exactly what a move needs: the far-side block and
//     the dense id of the connection's *source* endpoint (the unit
//     kSignals counting refcounts).  Port numbers, directions, and the
//     rest of Connection are dropped.
//   - The dense endpoint index maps every (block, output port) pair to a
//     small integer, so refcount tables become plain arrays indexed by
//     arc.endpoint -- zero hashing (see port_counter.h).
//   - Inner blocks are additionally reindexed to a contiguous 0..N-1
//     universe (innerIndex/innerBlocks) so per-inner-block search tables
//     (e.g. the irreducible-I/O floors in exhaustive.cpp) are dense and
//     indexable by search depth instead of by global block id.
//
// The view is read-only and never outlives its Network; it copies what
// it needs, so the Network itself is not referenced after construction.
// tests/partition/compact_graph_test.cpp cross-checks every accessor
// against Network::inputsOf/outputsOf/innerBlocks on randomized designs.
#ifndef EBLOCKS_PARTITION_COMPACT_GRAPH_H_
#define EBLOCKS_PARTITION_COMPACT_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/bitset.h"
#include "core/network.h"

namespace eblocks::partition {

/// One adjacency entry: the block on the far side of a connection plus
/// the dense id of the connection's source endpoint.  For a block's
/// in-arcs the endpoint belongs to the neighbor (the external driver);
/// for its out-arcs it belongs to the block itself.
struct CompactArc {
  std::uint32_t neighbor;  ///< block on the other side of the connection
  std::uint32_t endpoint;  ///< dense id of the connection's source endpoint
};

class CompactGraph {
 public:
  explicit CompactGraph(const Network& net);

  std::size_t blockCount() const { return blockCount_; }

  /// Connections arriving at / leaving block `b`, in the same order as
  /// Network::inputsOf/outputsOf (connection insertion order).
  std::span<const CompactArc> inArcs(BlockId b) const {
    return {arcs_.data() + inOff_[b], arcs_.data() + inOff_[b + 1]};
  }
  std::span<const CompactArc> outArcs(BlockId b) const {
    return {arcs_.data() + outOff_[b], arcs_.data() + outOff_[b + 1]};
  }

  int indegree(BlockId b) const {
    return static_cast<int>(inOff_[b + 1] - inOff_[b]);
  }
  int outdegree(BlockId b) const {
    return static_cast<int>(outOff_[b + 1] - outOff_[b]);
  }

  /// Size of the dense endpoint universe: every (block, output port)
  /// pair gets one id, so refcount arrays of this size cover every
  /// endpoint that can ever cross a partition boundary.
  std::size_t endpointCount() const { return endpointCount_; }

  /// Dense id of source endpoint `e` (must be a valid output port).
  std::uint32_t endpointId(const Endpoint& e) const {
    return endpointBase_[e.block] + e.port;
  }

  // --- the contiguous inner universe ---------------------------------
  std::size_t innerCount() const { return inner_.size(); }
  /// Inner blocks ascending by id; position in this vector is the
  /// block's dense inner index.
  const std::vector<BlockId>& innerBlocks() const { return inner_; }
  /// Dense inner index of `b`, or -1 when `b` is not inner.
  std::int32_t innerIndex(BlockId b) const { return innerIndex_[b]; }
  bool isInner(BlockId b) const { return innerIndex_[b] >= 0; }
  /// All non-inner blocks as a BitSet -- the frozen-set root of the
  /// branch-and-bound's admissible bound (they can never join a bin).
  const BitSet& nonInnerSet() const { return nonInner_; }

 private:
  std::size_t blockCount_ = 0;
  std::size_t endpointCount_ = 0;
  // In-arcs of all blocks, then out-arcs of all blocks, in one array:
  // the offset tables address disjoint stripes of arcs_.
  std::vector<CompactArc> arcs_;
  std::vector<std::uint32_t> inOff_;   // blockCount + 1 entries
  std::vector<std::uint32_t> outOff_;  // blockCount + 1 entries
  std::vector<std::uint32_t> endpointBase_;  // per block: first output
                                             // port's endpoint id
  std::vector<BlockId> inner_;
  std::vector<std::int32_t> innerIndex_;
  BitSet nonInner_;
};

}  // namespace eblocks::partition

#endif  // EBLOCKS_PARTITION_COMPACT_GRAPH_H_
