#include "partition/exhaustive.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "partition/port_counter.h"
#include "partition/validity.h"

namespace eblocks::partition {

namespace {

using Clock = std::chrono::steady_clock;

constexpr int kNoCost = std::numeric_limits<int>::max();
constexpr std::int16_t kUncovered = -1;

Clock::time_point deadlineFor(double seconds) {
  return seconds > 0
             ? Clock::now() +
                   std::chrono::duration_cast<Clock::duration>(
                       std::chrono::duration<double>(seconds))
             : Clock::time_point::max();
}

/// Immutable per-search configuration shared by every worker.
struct SearchContext {
  SearchContext(const PartitionProblem& p, const ExhaustiveOptions& o)
      : problem(p),
        options(o),
        net(p.network()),
        edgesMode(p.spec().mode == CountingMode::kEdges),
        inner(p.innerBlocks()),
        deadline(deadlineFor(o.timeLimitSeconds)) {
    // Pre-compute each block's irreducible I/O: connections to non-inner
    // neighbors can never be internalized by growing the bin.
    fixedIn.resize(net.blockCount(), 0);
    fixedOut.resize(net.blockCount(), 0);
    for (BlockId b : inner) {
      for (const Connection& c : net.inputsOf(b))
        if (!net.isInner(c.from.block)) ++fixedIn[b];
      for (const Connection& c : net.outputsOf(b))
        if (!net.isInner(c.to.block)) ++fixedOut[b];
    }
  }

  const PartitionProblem& problem;
  const ExhaustiveOptions& options;
  const Network& net;
  bool edgesMode;
  const std::vector<BlockId>& inner;
  std::vector<int> fixedIn, fixedOut;
  /// Cost of the initial incumbent (seed or "replace nothing").
  int initialBound = 0;
  Clock::time_point deadline;
};

/// One unit of parallel work: the assignment of the first `choice.size()`
/// inner blocks.  choice[i] is kUncovered, a bin index, or the number of
/// bins open so far (meaning "open a new bin").  Tasks are generated in
/// serial DFS order, which is what makes the final tie-break well-defined.
struct Task {
  std::vector<std::int16_t> choice;
};

/// Mutable state shared across workers.
///
/// The incumbent is a packed (cost, DFS-ordinal) pair: ordinal 0 is the
/// initial seed/baseline incumbent and task i publishes ordinal i+1.  A
/// node in task i prunes iff ((costSoFar << 32) | i+1) >= liveKey, which
/// is exactly the lexicographic rule "worse cost, or equal cost but not
/// earlier in serial DFS order".  This keeps the subtree containing the
/// serial winner alive while still pruning equal-cost subtrees behind it,
/// so the parallel result is bit-identical to the serial one.
struct SharedState {
  std::atomic<std::uint64_t> liveKey{0};
  std::atomic<bool> timedOut{false};
};

struct SubResult {
  int cost = kNoCost;
  Partitioning best;
};

std::uint64_t packKey(int cost, std::uint32_t ordinal) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cost))
          << 32) |
         ordinal;
}

/// Depth-first branch-and-bound below one task's prefix.  One instance per
/// worker thread; reused across tasks.
class Worker {
 public:
  Worker(const SearchContext& ctx, SharedState& shared)
      : ctx_(ctx), shared_(shared) {
    bins_.reserve(ctx.inner.size() + 1);
  }

  void runTask(const Task& task, std::uint32_t ordinal, SubResult& out) {
    myOrdinal_ = ordinal;
    out_ = &out;
    localBest_ = ctx_.initialBound;
    resetBins();
    int uncovered = 0;
    for (std::size_t i = 0; i < task.choice.size(); ++i) {
      const std::int16_t c = task.choice[i];
      if (c == kUncovered) {
        ++uncovered;
        continue;
      }
      if (static_cast<std::size_t>(c) == binCount_) openBin();
      addToBin(static_cast<std::size_t>(c), ctx_.inner[i]);
    }
    dfs(task.choice.size(), uncovered);
  }

  std::uint64_t explored() const { return explored_; }

 private:
  struct Bin {
    Bin(const Network& net, CountingMode mode) : counter(net, mode) {}
    PortCounter counter;
    int fixedIn = 0;   // irreducible inputs (edges from non-inner blocks)
    int fixedOut = 0;  // irreducible outputs (edges to non-inner blocks)
  };

  void resetBins() {
    for (std::size_t j = 0; j < binCount_; ++j) {
      bins_[j].counter.clear();
      bins_[j].fixedIn = 0;
      bins_[j].fixedOut = 0;
    }
    binCount_ = 0;
  }

  void openBin() {
    if (binCount_ == bins_.size())
      bins_.emplace_back(ctx_.net, ctx_.problem.spec().mode);
    ++binCount_;
  }

  void addToBin(std::size_t j, BlockId b) {
    bins_[j].counter.add(b);
    bins_[j].fixedIn += ctx_.fixedIn[b];
    bins_[j].fixedOut += ctx_.fixedOut[b];
  }

  void removeFromBin(std::size_t j, BlockId b) {
    bins_[j].fixedOut -= ctx_.fixedOut[b];
    bins_[j].fixedIn -= ctx_.fixedIn[b];
    bins_[j].counter.remove(b);
  }

  bool fixedOverflow(std::size_t j, BlockId b) const {
    return ctx_.edgesMode &&
           (bins_[j].fixedIn + ctx_.fixedIn[b] > ctx_.problem.spec().inputs ||
            bins_[j].fixedOut + ctx_.fixedOut[b] >
                ctx_.problem.spec().outputs);
  }

  bool timeExpired() {
    if (aborted_) return true;
    if ((explored_ & 0xfff) == 0) {
      if (shared_.timedOut.load(std::memory_order_relaxed)) {
        aborted_ = true;
      } else if (Clock::now() > ctx_.deadline) {
        shared_.timedOut.store(true, std::memory_order_relaxed);
        aborted_ = true;
      }
    }
    return aborted_;
  }

  bool boundPrunes(int costSoFar) const {
    if (costSoFar >= localBest_) return true;
    return packKey(costSoFar, myOrdinal_) >=
           shared_.liveKey.load(std::memory_order_relaxed);
  }

  void dfs(std::size_t idx, int uncovered) {
    ++explored_;
    if (timeExpired()) return;
    // Lower bound on the final cost: every open bin stays a bin, every
    // uncovered block stays uncovered.
    const int costSoFar = static_cast<int>(binCount_) + uncovered;
    if (boundPrunes(costSoFar)) return;
    if (idx == ctx_.inner.size()) {
      finish(uncovered);
      return;
    }
    const BlockId b = ctx_.inner[idx];
    // Choice 1: join an existing bin (indexed access: openBin() may grow
    // the pool vector during recursion).
    const std::size_t openBins = binCount_;
    for (std::size_t j = 0; j < openBins; ++j) {
      if (fixedOverflow(j, b)) continue;  // irreducible I/O over budget
      addToBin(j, b);
      dfs(idx + 1, uncovered);
      removeFromBin(j, b);
    }
    // Choice 2: open a new bin (all empty bins are interchangeable, so a
    // single branch suffices -- the paper's symmetry pruning).
    if (!(ctx_.edgesMode &&
          (ctx_.fixedIn[b] > ctx_.problem.spec().inputs ||
           ctx_.fixedOut[b] > ctx_.problem.spec().outputs))) {
      openBin();
      addToBin(binCount_ - 1, b);
      dfs(idx + 1, uncovered);
      removeFromBin(binCount_ - 1, b);
      --binCount_;
    }
    // Choice 3: leave uncovered.
    dfs(idx + 1, uncovered + 1);
  }

  void finish(int uncovered) {
    const int cost = static_cast<int>(binCount_) + uncovered;
    if (cost >= localBest_) return;
    for (std::size_t j = 0; j < binCount_; ++j) {
      const Bin& bin = bins_[j];
      if (bin.counter.memberCount() < 2)
        return;  // single-node partitions are invalid
      if (!fits(bin.counter.io(), ctx_.problem.spec())) return;
      if (ctx_.options.requireConvex &&
          !isConvex(ctx_.net, bin.counter.members()))
        return;
    }
    if (ctx_.options.requireAcyclicQuotient && !quotientAcyclic()) return;
    // Tie handling: strictly better cost only, so the first optimum found
    // in DFS order is kept (deterministic).
    localBest_ = cost;
    out_->cost = cost;
    out_->best.partitions.clear();
    for (std::size_t j = 0; j < binCount_; ++j)
      out_->best.partitions.push_back(bins_[j].counter.members());
    // Publish to the shared incumbent (monotone lexicographic minimum).
    const std::uint64_t key = packKey(cost, myOrdinal_);
    std::uint64_t cur = shared_.liveKey.load(std::memory_order_relaxed);
    while (key < cur && !shared_.liveKey.compare_exchange_weak(
                            cur, key, std::memory_order_relaxed)) {
    }
  }

  /// Checks that contracting every bin leaves the block graph acyclic.
  bool quotientAcyclic() const {
    // Map each block to its group: bins get ids [n, n+k), others self.
    const std::size_t n = ctx_.net.blockCount();
    std::vector<std::uint32_t> group(n);
    for (std::size_t i = 0; i < n; ++i)
      group[i] = static_cast<std::uint32_t>(i);
    for (std::size_t k = 0; k < binCount_; ++k)
      bins_[k].counter.members().forEach([&](std::size_t b) {
        group[b] = static_cast<std::uint32_t>(n + k);
      });
    const std::size_t total = n + binCount_;
    std::vector<std::vector<std::uint32_t>> adj(total);
    std::vector<int> indeg(total, 0);
    for (const Connection& c : ctx_.net.connections()) {
      const std::uint32_t u = group[c.from.block], v = group[c.to.block];
      if (u == v) continue;
      adj[u].push_back(v);
      ++indeg[v];
    }
    std::vector<std::uint32_t> stack;
    for (std::size_t v = 0; v < total; ++v)
      if (indeg[v] == 0) stack.push_back(static_cast<std::uint32_t>(v));
    std::size_t seen = 0;
    while (!stack.empty()) {
      const std::uint32_t u = stack.back();
      stack.pop_back();
      ++seen;
      for (std::uint32_t v : adj[u])
        if (--indeg[v] == 0) stack.push_back(v);
    }
    return seen == total;
  }

  const SearchContext& ctx_;
  SharedState& shared_;
  std::vector<Bin> bins_;  // pool; the first binCount_ entries are live
  std::size_t binCount_ = 0;
  int localBest_ = 0;
  std::uint32_t myOrdinal_ = 0;
  SubResult* out_ = nullptr;
  std::uint64_t explored_ = 0;
  bool aborted_ = false;
};

/// Enumerates every surviving assignment of the first `depth` inner blocks
/// in serial DFS order.  Applies only deterministic prunes (the initial
/// bound and the irreducible-I/O rule), so the task list is a superset of
/// the subtrees the serial search would enter -- including equal-cost ties.
class PrefixGenerator {
 public:
  explicit PrefixGenerator(const SearchContext& ctx) : ctx_(ctx) {}

  std::vector<Task> generate(std::size_t depth, std::uint64_t& explored) {
    depth_ = depth;
    tasks_.clear();
    choice_.clear();
    binFixedIn_.clear();
    binFixedOut_.clear();
    explored_ = 0;
    gen(0, 0);
    explored = explored_;
    return std::move(tasks_);
  }

 private:
  void gen(std::size_t idx, int uncovered) {
    ++explored_;
    const int costSoFar = static_cast<int>(binFixedIn_.size()) + uncovered;
    if (costSoFar >= ctx_.initialBound) return;
    if (idx == depth_ || idx == ctx_.inner.size()) {
      tasks_.push_back(Task{choice_});
      return;
    }
    const BlockId b = ctx_.inner[idx];
    const std::size_t openBins = binFixedIn_.size();
    for (std::size_t j = 0; j < openBins; ++j) {
      if (ctx_.edgesMode &&
          (binFixedIn_[j] + ctx_.fixedIn[b] > ctx_.problem.spec().inputs ||
           binFixedOut_[j] + ctx_.fixedOut[b] > ctx_.problem.spec().outputs))
        continue;
      binFixedIn_[j] += ctx_.fixedIn[b];
      binFixedOut_[j] += ctx_.fixedOut[b];
      choice_.push_back(static_cast<std::int16_t>(j));
      gen(idx + 1, uncovered);
      choice_.pop_back();
      binFixedOut_[j] -= ctx_.fixedOut[b];
      binFixedIn_[j] -= ctx_.fixedIn[b];
    }
    if (!(ctx_.edgesMode &&
          (ctx_.fixedIn[b] > ctx_.problem.spec().inputs ||
           ctx_.fixedOut[b] > ctx_.problem.spec().outputs))) {
      binFixedIn_.push_back(ctx_.fixedIn[b]);
      binFixedOut_.push_back(ctx_.fixedOut[b]);
      choice_.push_back(static_cast<std::int16_t>(openBins));
      gen(idx + 1, uncovered);
      choice_.pop_back();
      binFixedOut_.pop_back();
      binFixedIn_.pop_back();
    }
    choice_.push_back(kUncovered);
    gen(idx + 1, uncovered + 1);
    choice_.pop_back();
  }

  const SearchContext& ctx_;
  std::size_t depth_ = 0;
  std::vector<Task> tasks_;
  std::vector<std::int16_t> choice_;
  std::vector<int> binFixedIn_, binFixedOut_;
  std::uint64_t explored_ = 0;
};

}  // namespace

int resolveSearchThreads(int threads) {
  if (threads > 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

PartitionRun exhaustiveSearch(const PartitionProblem& problem,
                              const ExhaustiveOptions& options) {
  PartitionRun out;
  out.algorithm = "exhaustive";
  const auto start = Clock::now();

  SearchContext ctx(problem, options);
  const int n = static_cast<int>(ctx.inner.size());

  // Initial incumbent, exactly as the serial search has always set it.
  int bestCost = n + 1;  // worse than "no-op"
  Partitioning best;
  if (options.seed) {
    const int seedCost = options.seed->totalAfter(n);
    // Trust but verify: only use a seed that is actually feasible.
    bool feasible = true;
    for (const BitSet& p : options.seed->partitions)
      if (!isValidPartition(problem, p, options.requireConvex))
        feasible = false;
    if (feasible && seedCost <= bestCost) {
      bestCost = seedCost;
      best = *options.seed;
    }
  }
  // "No partitions" is always feasible with cost n.
  if (n < bestCost) {
    bestCost = n;
    best.partitions.clear();
  }
  ctx.initialBound = bestCost;

  SharedState shared;
  shared.liveKey.store(packKey(bestCost, 0), std::memory_order_relaxed);

  const int threads = resolveSearchThreads(options.threads);
  std::uint64_t explored = 0;

  std::vector<Task> tasks;
  if (threads > 1 && n >= 2) {
    // Split the tree at the shallowest depth that yields enough subtrees
    // to keep every worker busy (the branching factor is ~3, so this
    // converges in a handful of cheap enumeration passes).
    PrefixGenerator gen(ctx);
    const std::size_t target =
        std::max<std::size_t>(64, static_cast<std::size_t>(threads) * 8);
    std::uint64_t genExplored = 0;
    for (std::size_t depth = 1;; ++depth) {
      tasks = gen.generate(depth, genExplored);
      if (tasks.size() >= target || depth >= static_cast<std::size_t>(n) ||
          tasks.size() > 4096)
        break;
    }
    explored += genExplored;
  } else {
    tasks.push_back(Task{});  // one task: the whole tree, on this thread
  }

  std::vector<SubResult> results(tasks.size());
  const int workerCount =
      static_cast<int>(std::min<std::size_t>(
          static_cast<std::size_t>(threads), tasks.size()));
  std::atomic<std::size_t> next{0};
  std::atomic<std::uint64_t> totalExplored{0};
  auto workFn = [&] {
    Worker worker(ctx, shared);
    for (;;) {
      if (shared.timedOut.load(std::memory_order_relaxed)) break;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= tasks.size()) break;
      worker.runTask(tasks[i], static_cast<std::uint32_t>(i) + 1,
                     results[i]);
    }
    totalExplored.fetch_add(worker.explored(), std::memory_order_relaxed);
  };
  if (workerCount <= 1) {
    workFn();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workerCount) - 1);
    for (int t = 1; t < workerCount; ++t) pool.emplace_back(workFn);
    workFn();
    for (std::thread& th : pool) th.join();
  }
  explored += totalExplored.load(std::memory_order_relaxed);

  // Deterministic reduction: tasks are in serial DFS order and each task
  // recorded the first solution of its local minimum cost, so taking the
  // first strict improvement reproduces the serial result bit for bit.
  for (SubResult& r : results) {
    if (r.cost < bestCost) {
      bestCost = r.cost;
      best = std::move(r.best);
    }
  }

  out.result = std::move(best);
  out.explored = explored;
  out.timedOut = shared.timedOut.load(std::memory_order_relaxed);
  out.optimal = !out.timedOut;
  out.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return out;
}

}  // namespace eblocks::partition
