#include "partition/exhaustive.h"

#include <algorithm>
#include <chrono>

#include "partition/validity.h"

namespace eblocks::partition {

namespace {

class Search {
 public:
  Search(const PartitionProblem& problem, const ExhaustiveOptions& options)
      : problem_(problem),
        options_(options),
        net_(problem.network()),
        edgesMode_(problem.spec().mode == CountingMode::kEdges),
        inner_(problem.innerBlocks()),
        deadline_(options.timeLimitSeconds > 0
                      ? std::chrono::steady_clock::now() +
                            std::chrono::duration_cast<
                                std::chrono::steady_clock::duration>(
                                std::chrono::duration<double>(
                                    options.timeLimitSeconds))
                      : std::chrono::steady_clock::time_point::max()) {
    // Pre-compute each block's irreducible I/O: connections to non-inner
    // neighbors can never be internalized by growing the bin.
    fixedIn_.resize(net_.blockCount(), 0);
    fixedOut_.resize(net_.blockCount(), 0);
    for (BlockId b : inner_) {
      for (const Connection& c : net_.inputsOf(b))
        if (!net_.isInner(c.from.block)) ++fixedIn_[b];
      for (const Connection& c : net_.outputsOf(b))
        if (!net_.isInner(c.to.block)) ++fixedOut_[b];
    }
  }

  PartitionRun run() {
    PartitionRun out;
    out.algorithm = "exhaustive";
    const auto start = std::chrono::steady_clock::now();

    bestCost_ = static_cast<int>(inner_.size()) + 1;  // worse than "no-op"
    best_.partitions.clear();
    if (options_.seed) {
      const int seedCost =
          options_.seed->totalAfter(static_cast<int>(inner_.size()));
      // Trust but verify: only use a seed that is actually feasible.
      bool feasible = true;
      for (const BitSet& p : options_.seed->partitions)
        if (!isValidPartition(problem_, p, options_.requireConvex))
          feasible = false;
      if (feasible && seedCost <= bestCost_) {
        bestCost_ = seedCost;
        best_ = *options_.seed;
      }
    }
    // "No partitions" is always feasible with cost n.
    if (static_cast<int>(inner_.size()) < bestCost_) {
      bestCost_ = static_cast<int>(inner_.size());
      best_.partitions.clear();
    }

    bins_.clear();
    // Reserve so recursive push_back never reallocates (dfs holds indices
    // across recursion).
    bins_.reserve(inner_.size() + 1);
    dfs(0, /*uncovered=*/0);

    out.result = best_;
    out.explored = explored_;
    out.timedOut = timedOut_;
    out.optimal = !timedOut_;
    out.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    return out;
  }

 private:
  struct Bin {
    BitSet members;
    int count = 0;
    int fixedIn = 0;   // irreducible inputs (edges from non-inner blocks)
    int fixedOut = 0;  // irreducible outputs (edges to non-inner blocks)
  };

  bool timeExpired() {
    if (timedOut_) return true;
    if ((explored_ & 0xfff) == 0 &&
        std::chrono::steady_clock::now() > deadline_)
      timedOut_ = true;
    return timedOut_;
  }

  void dfs(std::size_t idx, int uncovered) {
    ++explored_;
    if (timeExpired()) return;
    // Lower bound on the final cost: every open bin stays a bin, every
    // uncovered block stays uncovered.
    const int costSoFar = static_cast<int>(bins_.size()) + uncovered;
    if (costSoFar >= bestCost_) return;
    if (idx == inner_.size()) {
      finishAssignment(uncovered);
      return;
    }
    const BlockId b = inner_[idx];
    // Choice 1: join an existing bin.  Indexed access: the recursion below
    // appends to bins_, so references across the call would dangle if the
    // vector ever reallocated.
    const std::size_t openBins = bins_.size();
    for (std::size_t j = 0; j < openBins; ++j) {
      if (edgesMode_ &&
          (bins_[j].fixedIn + fixedIn_[b] > problem_.spec().inputs ||
           bins_[j].fixedOut + fixedOut_[b] > problem_.spec().outputs))
        continue;  // irreducible I/O already over budget
      bins_[j].members.set(b);
      bins_[j].count++;
      bins_[j].fixedIn += fixedIn_[b];
      bins_[j].fixedOut += fixedOut_[b];
      dfs(idx + 1, uncovered);
      bins_[j].fixedOut -= fixedOut_[b];
      bins_[j].fixedIn -= fixedIn_[b];
      bins_[j].count--;
      bins_[j].members.reset(b);
    }
    // Choice 2: open a new bin (all empty bins are interchangeable, so a
    // single branch suffices -- the paper's symmetry pruning).
    {
      Bin bin;
      bin.members = net_.emptySet();
      bin.members.set(b);
      bin.count = 1;
      bin.fixedIn = fixedIn_[b];
      bin.fixedOut = fixedOut_[b];
      if (!(edgesMode_ && (bin.fixedIn > problem_.spec().inputs ||
                           bin.fixedOut > problem_.spec().outputs))) {
        bins_.push_back(std::move(bin));
        dfs(idx + 1, uncovered);
        bins_.pop_back();
      }
    }
    // Choice 3: leave uncovered.
    dfs(idx + 1, uncovered + 1);
  }

  void finishAssignment(int uncovered) {
    const int cost = static_cast<int>(bins_.size()) + uncovered;
    if (cost >= bestCost_) return;
    for (const Bin& bin : bins_) {
      if (bin.count < 2) return;  // single-node partitions are invalid
      if (!fitsProgrammable(net_, bin.members, problem_.spec())) return;
      if (options_.requireConvex && !isConvex(net_, bin.members)) return;
    }
    if (options_.requireAcyclicQuotient && !quotientAcyclic()) return;
    // Tie handling: strictly better cost only, so the first optimal found
    // in DFS order is kept (deterministic).
    bestCost_ = cost;
    best_.partitions.clear();
    for (const Bin& bin : bins_) best_.partitions.push_back(bin.members);
  }

  /// Checks that contracting every bin leaves the block graph acyclic.
  bool quotientAcyclic() const {
    // Map each block to its group: bins get ids [n, n+k), others self.
    const std::size_t n = net_.blockCount();
    std::vector<std::uint32_t> group(n);
    for (std::size_t i = 0; i < n; ++i)
      group[i] = static_cast<std::uint32_t>(i);
    for (std::size_t k = 0; k < bins_.size(); ++k)
      bins_[k].members.forEach([&](std::size_t b) {
        group[b] = static_cast<std::uint32_t>(n + k);
      });
    const std::size_t total = n + bins_.size();
    std::vector<std::vector<std::uint32_t>> adj(total);
    std::vector<int> indeg(total, 0);
    for (const Connection& c : net_.connections()) {
      const std::uint32_t u = group[c.from.block], v = group[c.to.block];
      if (u == v) continue;
      adj[u].push_back(v);
      ++indeg[v];
    }
    std::vector<std::uint32_t> stack;
    for (std::size_t v = 0; v < total; ++v)
      if (indeg[v] == 0) stack.push_back(static_cast<std::uint32_t>(v));
    std::size_t seen = 0;
    while (!stack.empty()) {
      const std::uint32_t u = stack.back();
      stack.pop_back();
      ++seen;
      for (std::uint32_t v : adj[u])
        if (--indeg[v] == 0) stack.push_back(v);
    }
    return seen == total;
  }

  const PartitionProblem& problem_;
  ExhaustiveOptions options_;
  const Network& net_;
  bool edgesMode_ = false;
  const std::vector<BlockId>& inner_;
  std::vector<int> fixedIn_, fixedOut_;
  std::vector<Bin> bins_;
  Partitioning best_;
  int bestCost_ = 0;
  std::uint64_t explored_ = 0;
  bool timedOut_ = false;
  std::chrono::steady_clock::time_point deadline_;
};

}  // namespace

PartitionRun exhaustiveSearch(const PartitionProblem& problem,
                              const ExhaustiveOptions& options) {
  Search search(problem, options);
  return search.run();
}

}  // namespace eblocks::partition
