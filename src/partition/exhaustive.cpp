#include "partition/exhaustive.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <thread>
#include <tuple>
#include <vector>

#include "partition/port_counter.h"
#include "partition/validity.h"
#include "partition/work_steal.h"

namespace eblocks::partition {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::int16_t kUncovered = -1;

Clock::time_point deadlineFor(double seconds) {
  return seconds > 0
             ? Clock::now() +
                   std::chrono::duration_cast<Clock::duration>(
                       std::chrono::duration<double>(seconds))
             : Clock::time_point::max();
}

/// Immutable per-search configuration shared by every worker.
struct SearchContext {
  SearchContext(const PartitionProblem& p, const ExhaustiveOptions& o)
      : problem(p),
        options(o),
        net(p.network()),
        graph(p.graph()),
        edgesMode(p.spec().mode == CountingMode::kEdges),
        inner(p.innerBlocks()),
        deadline(deadlineFor(o.timeLimitSeconds)) {
    // Pre-compute each inner block's irreducible connection counts
    // (edges to non-inner neighbors can never be internalized), indexed
    // by the block's dense inner rank -- the search always knows the
    // rank (its depth), so no per-block-id table is needed.
    fixedIn.resize(inner.size(), 0);
    fixedOut.resize(inner.size(), 0);
    for (std::size_t i = 0; i < inner.size(); ++i) {
      for (const CompactArc& a : graph.inArcs(inner[i]))
        if (!graph.isInner(a.neighbor)) ++fixedIn[i];
      for (const CompactArc& a : graph.outArcs(inner[i]))
        if (!graph.isInner(a.neighbor)) ++fixedOut[i];
    }
    if (o.pruningBound) {
      // The admissible-bound layer's static half: the frozen-set root
      // (non-inner blocks can never join any bin) and the unbinnable
      // suffix floor -- a block whose own mode-aware irreducible I/O
      // exceeds the budget is coverable by no feasible bin, so every
      // valid completion leaves it uncovered at cost +1.
      baseFrozen = graph.nonInnerSet();
      suffixUnbinnable.assign(inner.size() + 1, 0);
      for (std::size_t i = inner.size(); i-- > 0;) {
        const IoCount own =
            irreducibleBlockIo(net, inner[i], p.spec().mode);
        const bool unbinnable = own.inputs > p.spec().inputs ||
                                own.outputs > p.spec().outputs;
        suffixUnbinnable[i] = suffixUnbinnable[i + 1] + (unbinnable ? 1 : 0);
      }
    }
  }

  const PartitionProblem& problem;
  const ExhaustiveOptions& options;
  const Network& net;
  const CompactGraph& graph;
  bool edgesMode;
  const std::vector<BlockId>& inner;
  // Irreducible in/out connection counts per *inner rank* (not block id).
  std::vector<int> fixedIn, fixedOut;
  // pruningBound statics (empty / unused when the layer is off).
  std::vector<int> suffixUnbinnable;
  BitSet baseFrozen;
  /// Strict cost bound from the initial incumbent: nodes at or above it
  /// prune.  "Replace nothing" baseline -> n; a cheaper heuristic seed
  /// -> seedCost + 1 (equal-cost solutions must stay reachable so the
  /// returned optimum is bit-identical to the unseeded search's).
  int initialBound = 0;
  Clock::time_point deadline;
};

/// One unit of parallel work: the assignment of the first `choice.size()`
/// inner blocks (kUncovered, a bin index, or the number of bins open so
/// far meaning "open a new bin"), plus the half-open DFS-ordinal range
/// [ordLo, ordHi) owned by the subtree.
///
/// Ordinals realize the deterministic tie-break: the serial DFS visits
/// subtrees in ordinal order, every leaf reached inside a task carries an
/// ordinal from the task's range, and ranges of distinct tasks are
/// disjoint -- so "earlier in serial DFS order" is exactly "smaller
/// ordinal", no matter which worker runs the subtree or when.  When a
/// range becomes too narrow to subdivide, the whole remaining subtree
/// shares ordLo and runs inline on one worker, whose in-order DFS settles
/// the remaining ties.
struct Task {
  std::vector<std::int16_t> choice;
  std::uint32_t ordLo = 1;
  std::uint32_t ordHi = std::numeric_limits<std::uint32_t>::max();
};

/// Mutable state shared across workers.
///
/// The incumbent is a packed (cost, DFS-ordinal) pair: ordinal 0 is the
/// initial seed/baseline incumbent.  A node with ordinal o prunes iff
/// ((costSoFar << 32) | o) >= liveKey, which is exactly the
/// lexicographic rule "worse cost, or equal cost but not earlier in
/// serial DFS order".  This keeps the subtree containing the serial
/// winner alive while still pruning equal-cost subtrees behind it, so
/// the parallel result is bit-identical to the serial one.
struct SharedState {
  std::atomic<std::uint64_t> liveKey{0};
  std::atomic<bool> timedOut{false};
  /// Nodes charged against ExhaustiveOptions::nodeBudget, in 4096-node
  /// granules (workers charge a granule each time their periodic check
  /// fires, so the counter lags explored_ by at most one granule per
  /// worker).
  std::atomic<std::uint64_t> budgetUsed{0};
};

std::uint64_t packKey(int cost, std::uint32_t ordinal) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cost))
          << 32) |
         ordinal;
}

/// Depth-first branch-and-bound below one task's prefix.  One instance
/// per worker thread; reused across tasks.  Accumulates the worker's best
/// solution as a packed (cost, ordinal) key plus partitioning; the final
/// reduction takes the smallest key over all workers.
class Worker {
 public:
  Worker(const SearchContext& ctx, SharedState& shared,
         detail::WorkStealingPool<Task>* pool, int workerId)
      : ctx_(ctx),
        shared_(shared),
        pool_(pool),
        workerId_(workerId),
        pruning_(ctx.options.pruningBound),
        frozen_(ctx.baseFrozen),
        bestKey_(packKey(ctx.initialBound, 0)) {
    bins_.reserve(ctx.inner.size() + 1);
    choice_.reserve(ctx.inner.size());
  }

  void runTask(const Task& task) {
    localBest_ = ctx_.initialBound;
    resetBins();
    choice_ = task.choice;  // copy into retained capacity
    int uncovered = 0;
    for (std::size_t i = 0; i < task.choice.size(); ++i) {
      const std::int16_t c = task.choice[i];
      const BlockId b = ctx_.inner[i];
      if (c == kUncovered) {
        ++uncovered;
        if (pruning_) freezeAssigned(b, kNoOwnBin);
        continue;
      }
      if (static_cast<std::size_t>(c) == binCount_) openBin();
      addToBin(static_cast<std::size_t>(c), i);
      if (pruning_) freezeAssigned(b, static_cast<std::size_t>(c));
    }
    dfs(task.choice.size(), uncovered, task.ordLo, task.ordHi);
  }

  /// A recycled task frame for the next push: its choice vector keeps
  /// the capacity it grew while circulating through the pool, so
  /// steady-state splits copy into existing storage instead of
  /// allocating.  Frames come back via recycleFrame() after execution.
  Task takeFrame() {
    if (frames_.empty()) return {};
    Task t = std::move(frames_.back());
    frames_.pop_back();
    return t;
  }
  void recycleFrame(Task&& t) { frames_.push_back(std::move(t)); }

  std::uint64_t explored() const { return explored_; }
  std::uint64_t pruned() const { return pruned_; }
  std::uint64_t bestKey() const { return bestKey_; }
  Partitioning takeBest() { return std::move(best_); }

 private:
  static constexpr std::size_t kNoOwnBin = static_cast<std::size_t>(-1);

  struct Bin {
    Bin(const CompactGraph& graph, CountingMode mode, const BitSet* frozen)
        : counter(graph, mode, BorderTracking::kOff, frozen) {}
    PortCounter counter;
    int fixedIn = 0;   // irreducible inputs (edges from non-inner blocks)
    int fixedOut = 0;  // irreducible outputs (edges to non-inner blocks)
  };

  void resetBins() {
    for (std::size_t j = 0; j < binCount_; ++j) {
      bins_[j].counter.clear();
      bins_[j].fixedIn = 0;
      bins_[j].fixedOut = 0;
    }
    binCount_ = 0;
    if (pruning_) frozen_ = ctx_.baseFrozen;
  }

  void openBin() {
    if (binCount_ == bins_.size())
      bins_.emplace_back(ctx_.graph, ctx_.problem.spec().mode,
                         pruning_ ? &frozen_ : nullptr);
    ++binCount_;
  }

  /// Marks just-assigned block `b` frozen (its fate is fixed for the
  /// whole subtree) and tells every *other* open bin, whose crossing
  /// edges to `b` just turned irreducible.  `own` is the bin `b` joined
  /// (kNoOwnBin when left uncovered).
  void freezeAssigned(BlockId b, std::size_t own) {
    frozen_.set(b);
    for (std::size_t j = 0; j < binCount_; ++j)
      if (j != own) bins_[j].counter.freeze(b);
  }

  void unfreezeAssigned(BlockId b, std::size_t own) {
    for (std::size_t j = 0; j < binCount_; ++j)
      if (j != own) bins_[j].counter.unfreeze(b);
    frozen_.reset(b);
  }

  /// True when some open bin's irreducible crossing I/O already exceeds
  /// the port budget: every completion of this subtree keeps that I/O
  /// crossing, so no valid leaf exists below.
  bool binInfeasible() const {
    for (std::size_t j = 0; j < binCount_; ++j)
      if (!fits(bins_[j].counter.fixedIo(), ctx_.problem.spec()))
        return true;
    return false;
  }

  // Bin updates take the block's dense inner rank `i` (the search
  // depth); the fixed-I/O tables are rank-indexed.
  void addToBin(std::size_t j, std::size_t i) {
    bins_[j].counter.add(ctx_.inner[i]);
    bins_[j].fixedIn += ctx_.fixedIn[i];
    bins_[j].fixedOut += ctx_.fixedOut[i];
  }

  void removeFromBin(std::size_t j, std::size_t i) {
    bins_[j].fixedOut -= ctx_.fixedOut[i];
    bins_[j].fixedIn -= ctx_.fixedIn[i];
    bins_[j].counter.remove(ctx_.inner[i]);
  }

  bool fixedOverflow(std::size_t j, std::size_t i) const {
    return ctx_.edgesMode &&
           (bins_[j].fixedIn + ctx_.fixedIn[i] > ctx_.problem.spec().inputs ||
            bins_[j].fixedOut + ctx_.fixedOut[i] >
                ctx_.problem.spec().outputs);
  }

  bool canOpenNewBin(std::size_t i) const {
    return !(ctx_.edgesMode &&
             (ctx_.fixedIn[i] > ctx_.problem.spec().inputs ||
              ctx_.fixedOut[i] > ctx_.problem.spec().outputs));
  }

  bool timeExpired() {
    if (aborted_) return true;
    if ((explored_ & 0xfff) == 0) {
      if (ctx_.options.progressNodes)
        ctx_.options.progressNodes->fetch_add(0x1000,
                                              std::memory_order_relaxed);
      if (shared_.timedOut.load(std::memory_order_relaxed)) {
        aborted_ = true;
      } else if (Clock::now() > ctx_.deadline ||
                 (ctx_.options.cancel &&
                  ctx_.options.cancel->load(std::memory_order_relaxed))) {
        shared_.timedOut.store(true, std::memory_order_relaxed);
        aborted_ = true;
      } else if (ctx_.options.nodeBudget != 0 &&
                 shared_.budgetUsed.fetch_add(
                     0x1000, std::memory_order_relaxed) +
                         0x1000 >=
                     ctx_.options.nodeBudget) {
        shared_.timedOut.store(true, std::memory_order_relaxed);
        aborted_ = true;
      }
    }
    return aborted_;
  }

  bool boundPrunes(int costSoFar, std::uint32_t lo) const {
    if (costSoFar >= localBest_) return true;
    return packKey(costSoFar, lo) >=
           shared_.liveKey.load(std::memory_order_relaxed);
  }

  void dfs(std::size_t idx, int uncovered, std::uint32_t lo,
           std::uint32_t hi) {
    ++explored_;
    if (timeExpired()) return;
    // Lower bound on the final cost: every open bin stays a bin, every
    // uncovered block stays uncovered.
    const int costSoFar = static_cast<int>(binCount_) + uncovered;
    if (boundPrunes(costSoFar, lo)) return;
    if (pruning_) {
      // The admissible layer: remaining unbinnable blocks each add +1 to
      // any valid completion, and a bin whose irreducible I/O already
      // overflows admits no valid completion at all.  Counted as a
      // pruned subtree only here, where the baseline bound above did not
      // already cut the node.
      const int floor = ctx_.suffixUnbinnable[idx];
      if ((floor > 0 && boundPrunes(costSoFar + floor, lo)) ||
          binInfeasible()) {
        ++pruned_;
        return;
      }
    }
    if (idx == ctx_.inner.size()) {
      finish(uncovered, lo);
      return;
    }
    const BlockId b = ctx_.inner[idx];
    // Children, in serial DFS order: join each feasible open bin, open a
    // new bin (all empty bins are interchangeable, so a single branch
    // suffices -- the paper's symmetry pruning), leave uncovered.
    const std::size_t openBins = binCount_;
    const bool newBin = canOpenNewBin(idx);
    // Ordinal ranges are split only where a child could be offloaded
    // (parallel pool present, subtree above the leaf margin): everywhere
    // else -- the serial and fixed-split modes, and the leaf region that
    // dominates node counts -- children inherit [lo, hi) wholesale and
    // the within-task DFS order settles ties, sparing the hot path the
    // child-count scan and the split arithmetic.
    std::optional<detail::RangeSplitter> ranges;
    if (pool_ != nullptr && ctx_.inner.size() - idx > detail::kLeafMargin) {
      std::size_t k = 1;  // "leave uncovered" is always a child
      for (std::size_t j = 0; j < openBins; ++j)
        if (!fixedOverflow(j, idx)) ++k;
      if (newBin) ++k;
      ranges.emplace(lo, hi, k);
    }
    // A child subtree is offloaded to the pool instead of recursed into
    // when peers are starved -- except the first child, which this worker
    // always walks itself (guaranteed progress, and the earliest ordinals
    // stay on the worker that already holds the bins).
    const bool offloadable = ranges && ranges->offloadable();
    bool firstChild = true;
    // Visits child `c` with its ordinal slice: either inline (apply the
    // choice, recurse, undo) or as a pushed task built in a recycled
    // frame (no allocation once frame capacities have warmed up).
    const auto visit = [&](std::int16_t c, int childUncovered,
                           auto&& apply, auto&& undo) {
      std::uint32_t clo = lo, chi = hi;
      if (ranges) std::tie(clo, chi) = ranges->next();
      const bool inlineChild = firstChild;
      firstChild = false;
      if (!inlineChild && offloadable && pool_->hungry() > 0 &&
          pool_->queueDepth(workerId_) < detail::kMaxLocalBacklog) {
        Task t = takeFrame();
        t.choice = choice_;
        t.choice.push_back(c);
        t.ordLo = clo;
        t.ordHi = chi;
        pool_->push(workerId_, std::move(t));
        return;
      }
      apply();
      choice_.push_back(c);
      dfs(idx + 1, childUncovered, clo, chi);
      choice_.pop_back();
      undo();
    };
    for (std::size_t j = 0; j < openBins; ++j) {
      if (fixedOverflow(j, idx)) continue;  // irreducible I/O over budget
      visit(static_cast<std::int16_t>(j), uncovered,
            [&] {
              addToBin(j, idx);
              if (pruning_) freezeAssigned(b, j);
            },
            [&] {
              if (pruning_) unfreezeAssigned(b, j);
              removeFromBin(j, idx);
            });
    }
    if (newBin) {
      visit(static_cast<std::int16_t>(openBins), uncovered,
            [&] {
              openBin();
              addToBin(binCount_ - 1, idx);
              if (pruning_) freezeAssigned(b, binCount_ - 1);
            },
            [&] {
              if (pruning_) unfreezeAssigned(b, binCount_ - 1);
              removeFromBin(binCount_ - 1, idx);
              --binCount_;
            });
    }
    visit(kUncovered, uncovered + 1,
          [&] {
            if (pruning_) freezeAssigned(b, kNoOwnBin);
          },
          [&] {
            if (pruning_) unfreezeAssigned(b, kNoOwnBin);
          });
  }

  void finish(int uncovered, std::uint32_t lo) {
    const int cost = static_cast<int>(binCount_) + uncovered;
    if (cost >= localBest_) return;
    for (std::size_t j = 0; j < binCount_; ++j) {
      const Bin& bin = bins_[j];
      if (bin.counter.memberCount() < 2)
        return;  // single-node partitions are invalid
      if (!fits(bin.counter.io(), ctx_.problem.spec())) return;
      if (ctx_.options.requireConvex &&
          !isConvex(ctx_.net, bin.counter.members()))
        return;
    }
    if (ctx_.options.requireAcyclicQuotient && !quotientAcyclic()) return;
    // Tie handling: within a task only strict cost improvements are
    // recorded, so the first optimum found in DFS order is kept; across
    // tasks the packed (cost, ordinal) key decides.
    localBest_ = cost;
    const std::uint64_t key = packKey(cost, lo);
    if (key < bestKey_) {
      bestKey_ = key;
      best_.partitions.clear();
      for (std::size_t j = 0; j < binCount_; ++j)
        best_.partitions.push_back(bins_[j].counter.members());
    }
    // Publish to the shared incumbent (monotone lexicographic minimum).
    std::uint64_t cur = shared_.liveKey.load(std::memory_order_relaxed);
    while (key < cur && !shared_.liveKey.compare_exchange_weak(
                            cur, key, std::memory_order_relaxed)) {
    }
  }

  /// Checks that contracting every bin leaves the block graph acyclic.
  bool quotientAcyclic() const {
    // Map each block to its group: bins get ids [n, n+k), others self.
    const std::size_t n = ctx_.net.blockCount();
    std::vector<std::uint32_t> group(n);
    for (std::size_t i = 0; i < n; ++i)
      group[i] = static_cast<std::uint32_t>(i);
    for (std::size_t k = 0; k < binCount_; ++k)
      bins_[k].counter.members().forEach([&](std::size_t b) {
        group[b] = static_cast<std::uint32_t>(n + k);
      });
    const std::size_t total = n + binCount_;
    std::vector<std::vector<std::uint32_t>> adj(total);
    std::vector<int> indeg(total, 0);
    for (const Connection& c : ctx_.net.connections()) {
      const std::uint32_t u = group[c.from.block], v = group[c.to.block];
      if (u == v) continue;
      adj[u].push_back(v);
      ++indeg[v];
    }
    std::vector<std::uint32_t> stack;
    for (std::size_t v = 0; v < total; ++v)
      if (indeg[v] == 0) stack.push_back(static_cast<std::uint32_t>(v));
    std::size_t seen = 0;
    while (!stack.empty()) {
      const std::uint32_t u = stack.back();
      stack.pop_back();
      ++seen;
      for (std::uint32_t v : adj[u])
        if (--indeg[v] == 0) stack.push_back(v);
    }
    return seen == total;
  }

  const SearchContext& ctx_;
  SharedState& shared_;
  detail::WorkStealingPool<Task>* pool_;  // null = no splitting (fixed mode)
  int workerId_ = 0;
  bool pruning_ = false;
  BitSet frozen_;  // non-inner + assigned prefix; bins point at this
  std::vector<Bin> bins_;  // pool; the first binCount_ entries are live
  std::size_t binCount_ = 0;
  std::vector<std::int16_t> choice_;  // live assignment of blocks [0, idx)
  std::vector<Task> frames_;  // recycled task frames (see takeFrame)
  int localBest_ = 0;
  std::uint64_t bestKey_;
  Partitioning best_;
  std::uint64_t explored_ = 0;
  std::uint64_t pruned_ = 0;
  bool aborted_ = false;
};

/// Enumerates every surviving assignment of the first `depth` inner blocks
/// in serial DFS order -- the kFixedSplit task generator.  Applies only
/// deterministic prunes (the initial bound and the irreducible-I/O rule),
/// so the task list is a superset of the subtrees the serial search would
/// enter -- including equal-cost ties.
class PrefixGenerator {
 public:
  explicit PrefixGenerator(const SearchContext& ctx) : ctx_(ctx) {}

  std::vector<Task> generate(std::size_t depth, std::uint64_t& explored) {
    depth_ = depth;
    tasks_.clear();
    choice_.clear();
    binFixedIn_.clear();
    binFixedOut_.clear();
    explored_ = 0;
    gen(0, 0);
    explored = explored_;
    return std::move(tasks_);
  }

 private:
  void gen(std::size_t idx, int uncovered) {
    ++explored_;
    const int costSoFar = static_cast<int>(binFixedIn_.size()) + uncovered;
    if (costSoFar >= ctx_.initialBound) return;
    if (idx == depth_ || idx == ctx_.inner.size()) {
      // Task i owns the degenerate ordinal range [i+1, i+2): the fixed
      // split never subdivides further, so one ordinal per task is
      // exactly the PR-2 tie-break.
      const auto ord = static_cast<std::uint32_t>(tasks_.size()) + 1;
      tasks_.push_back(Task{choice_, ord, ord + 1});
      return;
    }
    const std::size_t openBins = binFixedIn_.size();
    for (std::size_t j = 0; j < openBins; ++j) {
      if (ctx_.edgesMode &&
          (binFixedIn_[j] + ctx_.fixedIn[idx] > ctx_.problem.spec().inputs ||
           binFixedOut_[j] + ctx_.fixedOut[idx] >
               ctx_.problem.spec().outputs))
        continue;
      binFixedIn_[j] += ctx_.fixedIn[idx];
      binFixedOut_[j] += ctx_.fixedOut[idx];
      choice_.push_back(static_cast<std::int16_t>(j));
      gen(idx + 1, uncovered);
      choice_.pop_back();
      binFixedOut_[j] -= ctx_.fixedOut[idx];
      binFixedIn_[j] -= ctx_.fixedIn[idx];
    }
    if (!(ctx_.edgesMode &&
          (ctx_.fixedIn[idx] > ctx_.problem.spec().inputs ||
           ctx_.fixedOut[idx] > ctx_.problem.spec().outputs))) {
      binFixedIn_.push_back(ctx_.fixedIn[idx]);
      binFixedOut_.push_back(ctx_.fixedOut[idx]);
      choice_.push_back(static_cast<std::int16_t>(openBins));
      gen(idx + 1, uncovered);
      choice_.pop_back();
      binFixedOut_.pop_back();
      binFixedIn_.pop_back();
    }
    choice_.push_back(kUncovered);
    gen(idx + 1, uncovered + 1);
    choice_.pop_back();
  }

  const SearchContext& ctx_;
  std::size_t depth_ = 0;
  std::vector<Task> tasks_;
  std::vector<std::int16_t> choice_;
  std::vector<int> binFixedIn_, binFixedOut_;
  std::uint64_t explored_ = 0;
};

}  // namespace

int resolveSearchThreads(int threads) {
  if (threads > 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

PartitionRun exhaustiveSearch(const PartitionProblem& problem,
                              const ExhaustiveOptions& options) {
  PartitionRun out;
  out.algorithm = "exhaustive";
  const auto start = Clock::now();

  SearchContext ctx(problem, options);
  const int n = static_cast<int>(ctx.inner.size());

  // Initial incumbent: "no partitions" is always feasible with cost n.
  // A heuristic seed that beats it is installed at ordinal UINT32_MAX --
  // lexicographically *behind* every real DFS node of equal cost -- so
  // the search still rediscovers and returns the canonical (first in
  // serial DFS order) optimum whenever the seed merely ties it, and the
  // result stays bit-identical to the unseeded search's.  The strict
  // bound is seedCost + 1 for the same reason: equal-cost subtrees ahead
  // of the incumbent's ordinal must stay alive.  Unseeded searches keep
  // the historical (n, ordinal 0, bound n) baseline, so their node
  // counts are unchanged.
  int bestCost = n;
  std::uint32_t bestOrdinal = 0;
  Partitioning best;
  ctx.initialBound = n;
  if (options.seed) {
    const int seedCost = options.seed->totalAfter(n);
    // Trust but verify: only use a seed that is actually feasible --
    // every partition valid on its own AND all pairwise disjoint
    // (overlap would understate totalAfter and over-tighten the bound).
    bool feasible = true;
    BitSet seen = problem.network().emptySet();
    for (const BitSet& p : options.seed->partitions) {
      if (!isValidPartition(problem, p, options.requireConvex))
        feasible = false;
      p.forEach([&](std::size_t b) {
        if (seen.test(b)) feasible = false;
        seen.set(b);
      });
    }
    if (feasible && seedCost < n) {
      bestCost = seedCost;
      bestOrdinal = std::numeric_limits<std::uint32_t>::max();
      best = *options.seed;
      ctx.initialBound = seedCost + 1;
    }
  }

  SharedState shared;
  shared.liveKey.store(packKey(bestCost, bestOrdinal),
                       std::memory_order_relaxed);

  const int threads = resolveSearchThreads(options.threads);
  std::uint64_t explored = 0;
  std::vector<std::unique_ptr<Worker>> workers;
  std::atomic<std::uint64_t> totalExplored{0};
  std::atomic<std::uint64_t> totalPruned{0};

  if (options.scheduler == SearchScheduler::kFixedSplit && threads > 1 &&
      n >= 2) {
    // Fixed-depth split: cut the tree once at the shallowest depth that
    // yields enough subtrees to keep every worker busy (the branching
    // factor is ~3, so this converges in a few cheap enumeration passes),
    // then drain the list through a shared cursor.
    PrefixGenerator gen(ctx);
    const std::size_t target =
        std::max<std::size_t>(64, static_cast<std::size_t>(threads) * 8);
    std::uint64_t genExplored = 0;
    std::vector<Task> tasks;
    for (std::size_t depth = 1;; ++depth) {
      tasks = gen.generate(depth, genExplored);
      if (tasks.size() >= target || depth >= static_cast<std::size_t>(n) ||
          tasks.size() > 4096)
        break;
    }
    explored += genExplored;

    const int workerCount = static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(threads), tasks.size()));
    workers.resize(static_cast<std::size_t>(std::max(workerCount, 1)));
    std::atomic<std::size_t> next{0};
    detail::runOnWorkers(workerCount, [&](int w) {
      auto worker =
          std::make_unique<Worker>(ctx, shared, nullptr, w);
      for (;;) {
        if (shared.timedOut.load(std::memory_order_relaxed)) break;
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= tasks.size()) break;
        worker->runTask(tasks[i]);
      }
      totalExplored.fetch_add(worker->explored(),
                              std::memory_order_relaxed);
      totalPruned.fetch_add(worker->pruned(), std::memory_order_relaxed);
      workers[static_cast<std::size_t>(w)] = std::move(worker);
    });
  } else {
    // Work-stealing: seed the pool with the whole tree as one task owning
    // the full ordinal range; workers split subtrees on demand when peers
    // are starved and steal half a victim's deque when their own is dry.
    const int workerCount = n >= 2 ? threads : 1;
    detail::WorkStealingPool<Task> taskPool(workerCount);
    taskPool.push(0, Task{});
    workers.resize(static_cast<std::size_t>(workerCount));
    detail::runOnWorkers(workerCount, [&](int w) {
      auto worker = std::make_unique<Worker>(
          ctx, shared, workerCount > 1 ? &taskPool : nullptr, w);
      Task task;
      while (taskPool.acquire(w, task, shared.timedOut)) {
        worker->runTask(task);
        taskPool.release();
        // The executed frame's buffer feeds this worker's future splits.
        worker->recycleFrame(std::move(task));
      }
      totalExplored.fetch_add(worker->explored(),
                              std::memory_order_relaxed);
      totalPruned.fetch_add(worker->pruned(), std::memory_order_relaxed);
      workers[static_cast<std::size_t>(w)] = std::move(worker);
    });
  }
  explored += totalExplored.load(std::memory_order_relaxed);

  // Deterministic reduction: every worker accumulated its best solution
  // as a packed (cost, DFS-ordinal) key; the smallest key over all
  // workers -- against the initial incumbent at ordinal 0 -- reproduces
  // the serial result bit for bit.
  std::uint64_t bestKey = packKey(bestCost, bestOrdinal);
  for (const auto& worker : workers) {
    if (worker && worker->bestKey() < bestKey) {
      bestKey = worker->bestKey();
      best = worker->takeBest();
      bestCost = static_cast<int>(bestKey >> 32);
    }
  }
  if (workers.size() > 1)
    for (const auto& worker : workers)
      if (worker) {
        out.workerExplored.push_back(worker->explored());
        out.workerPruned.push_back(worker->pruned());
      }

  out.result = std::move(best);
  out.explored = explored;
  out.pruned = totalPruned.load(std::memory_order_relaxed);
  out.timedOut = shared.timedOut.load(std::memory_order_relaxed);
  out.optimal = !out.timedOut;
  out.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return out;
}

}  // namespace eblocks::partition
