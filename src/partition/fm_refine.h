// Fiduccia-Mattheyses-style pass-based refinement over the PortCounter
// move kernel.
//
// The refiner takes a valid partitioning (typically greedySeed's) and
// improves it by single-block moves.  The solution is represented as a
// set of *bins*: every partition is a bin, and every uncovered inner
// block is a singleton bin -- so "pair two uncovered blocks" and "peel a
// block off an overfull neighborhood" are both ordinary one-block moves,
// and the objective is a plain sum of per-bin costs:
//
//   cost(bin) = 0                      empty
//             = uncoveredCost          one member (an uncovered block)
//             = binCost(io)            two or more members
//
// Costs are scaled integers.  The plain problem uses
// binCost = W + inputs + outputs and uncoveredCost = W with W chosen
// larger than any possible port-sum, so the primary objective (the
// paper's "inner blocks after replacement" = #bins) strictly dominates
// and the port-sum only breaks ties -- fewer crossing ports is what
// later merges feed on.  The multi-type problem uses the cost model
// directly (cheapest fitting option, x1024 fixed point), so the integer
// total is the model's totalCost up to rounding.
//
// One FM pass: compute each unlocked block's best feasible move (target
// bins = bins of its CSR neighbors, plus detaching into a new singleton)
// and file it in a gain bucket; repeatedly pop the best-gain block
// (revalidating the cached gain against a fresh probe -- stale entries
// are re-filed, not trusted), apply the move *even at negative gain*
// (the FM hallmark: climbing out of local minima within a pass), lock
// the block, and re-probe the blocks whose gains the move touched
// (members of the two bins plus the mover's neighbors).  When no movable
// block remains the pass rolls back to the best prefix seen; passes
// repeat until one fails to improve.  Every probe is an O(degree)
// PortCounter add/remove pair over the shared CSR -- hash-free, and
// allocation-free in steady state.
//
// Feasibility note: bin I/O is not monotone under member removal in
// kSignals mode (removing a member can *expose* previously-internal
// fanout), so a move probes BOTH touched bins -- the source bin must
// still fit after the removal whenever it keeps >= 2 members.
//
// Deterministic: bucket ties break toward the lowest block id, so a
// given initial solution refines identically everywhere.
#ifndef EBLOCKS_PARTITION_FM_REFINE_H_
#define EBLOCKS_PARTITION_FM_REFINE_H_

#include "partition/multitype.h"
#include "partition/problem.h"
#include "partition/result.h"

namespace eblocks::partition {

struct FmOptions {
  /// Maximum refinement passes; 0 = until a pass fails to improve.
  int maxPasses = 0;
};

/// Refines `initial` (which must be verifyPartitioning-clean) for the
/// plain problem.  `run.explored` counts move probes; the result is
/// never worse than `initial` under (#bins, port-sum) lexicographic
/// order.
PartitionRun fmRefine(const PartitionProblem& problem,
                      const Partitioning& initial,
                      const FmOptions& options = {});

/// Multi-type counterpart: refines under the cost model's objective
/// (cheapest-fitting-option cost per bin, preDefinedBlockCost per
/// uncovered block).  `initial` must be verifyTypedPartitioning-clean.
TypedPartitionRun multiTypeFmRefine(const Network& net,
                                    const ProgCostModel& model,
                                    const TypedPartitioning& initial,
                                    const FmOptions& options = {});

}  // namespace eblocks::partition

#endif  // EBLOCKS_PARTITION_FM_REFINE_H_
