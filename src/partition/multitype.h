// Multi-type, cost-aware partitioning -- the extension Section 6 of the
// paper names as future work: "extend the PareDown heuristic to consider
// multiple types of programmable blocks (having different number of inputs
// and outputs) and varying compute block costs".
//
// The objective generalizes from block count to cost: pre-defined blocks
// have a unit-ish cost, each programmable block option has its own cost
// ("a programmable compute block has slightly higher cost due to the
// programmability hardware, but less cost than two pre-defined compute
// blocks", Section 4), and the partitioner minimizes
//     sum(option cost of each partition) + preDefinedCost * uncovered.
// A partition is only worth forming when its cheapest fitting option costs
// less than the pre-defined blocks it replaces -- the |P| >= 2 rule of the
// base problem falls out as the special case cost(prog) in (1, 2).
#ifndef EBLOCKS_PARTITION_MULTITYPE_H_
#define EBLOCKS_PARTITION_MULTITYPE_H_

#include <optional>
#include <string>
#include <vector>

#include "partition/problem.h"
#include "partition/result.h"
#include "partition/scheduler.h"

namespace eblocks::partition {

/// One programmable block model the synthesis may instantiate.
struct ProgBlockOption {
  std::string name;   ///< e.g. "prog_2x2"
  int inputs = 2;
  int outputs = 2;
  double cost = 1.5;  ///< relative to ProgCostModel::preDefinedBlockCost
};

/// The cost landscape of the target platform.
struct ProgCostModel {
  double preDefinedBlockCost = 1.0;
  std::vector<ProgBlockOption> options;
  /// Counting mode shared by every option.
  CountingMode mode = CountingMode::kEdges;

  /// The paper's experimental setup: a single 2x2 programmable block whose
  /// cost sits between one and two pre-defined blocks.
  static ProgCostModel paperDefault();
};

/// A partitioning with a chosen block option per partition.
struct TypedPartitioning {
  std::vector<BitSet> partitions;
  std::vector<int> optionIndex;  ///< into ProgCostModel::options, per partition

  int coveredBlocks() const;
  /// Total network cost after replacement.
  double totalCost(int originalInnerCount, const ProgCostModel& model) const;
};

struct TypedPartitionRun {
  std::string algorithm;
  TypedPartitioning result;
  double seconds = 0.0;
  bool optimal = false;
  bool timedOut = false;
  std::uint64_t explored = 0;
  /// Subtrees cut by the admissible lower-bound layer beyond the
  /// baseline cost bound; see PartitionRun::pruned.
  std::uint64_t pruned = 0;
  /// Per-worker explored counts (parallel searches only); see
  /// PartitionRun::workerExplored.
  std::vector<std::uint64_t> workerExplored;
  /// Per-worker counterpart of `pruned` (parallel to workerExplored).
  std::vector<std::uint64_t> workerPruned;
};

/// Index of the cheapest option that fits the subgraph, or nullopt.
std::optional<int> cheapestFittingOption(const Network& net,
                                         const BitSet& members,
                                         const ProgCostModel& model);

/// Same, for a port usage already known (e.g. from an incremental
/// PortCounter) -- O(#options), no rescan of the member set.
std::optional<int> cheapestFittingOption(const IoCount& io,
                                         const ProgCostModel& model);

/// PareDown generalized to the cost model.  Pares while *no* option fits;
/// accepts a candidate when its cheapest fitting option is cheaper than
/// the pre-defined blocks it replaces, otherwise keeps paring.
TypedPartitionRun multiTypePareDown(const Network& net,
                                    const ProgCostModel& model);

struct MultiTypeExhaustiveOptions {
  double timeLimitSeconds = 0.0;
  std::optional<TypedPartitioning> seed;
  /// Worker threads for the branch-and-bound.  0 = one per hardware
  /// thread, 1 = the original serial search.  Every thread count returns
  /// the identical result (deterministic DFS-order tie-break) unless the
  /// time limit cuts the search short (see exhaustive.h).
  int threads = 0;
  /// Subtree distribution policy, as in ExhaustiveOptions::scheduler.
  SearchScheduler scheduler = SearchScheduler::kWorkStealing;
  /// Admissible lower-bound pruning, generalized to the cost model: each
  /// bin's future option cost is floored by the cheapest option fitting
  /// its *irreducible* crossing I/O (a bin fitting no option kills the
  /// subtree), and remaining blocks no option can ever host each add
  /// preDefinedBlockCost.  Bit-identical results on or off; see
  /// exhaustive.h and docs/partitioning.md.
  bool pruningBound = true;
};

/// Exhaustive branch-and-bound over assignments and option choices.
TypedPartitionRun multiTypeExhaustive(
    const Network& net, const ProgCostModel& model,
    const MultiTypeExhaustiveOptions& options = {});

/// Constraint check; empty result means valid.
std::vector<std::string> verifyTypedPartitioning(
    const Network& net, const ProgCostModel& model,
    const TypedPartitioning& typed);

}  // namespace eblocks::partition

#endif  // EBLOCKS_PARTITION_MULTITYPE_H_
