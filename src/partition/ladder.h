// The deadline degradation ladder: degrade, don't die.
//
// A service request with a deadline should never come back empty-handed:
// the paper's own anytime framing (partial results under a time limit)
// extends to service semantics where a burned-down deadline buys a
// cheaper tier instead of a failure.  The ladder climbs the existing
// anytime family, spending whatever deadline remains at each rung:
//
//   1. greedy   -- always runs, even with the deadline already spent:
//                  near-linear, so a feasible partitioning is
//                  unconditionally guaranteed (the floor of the ladder);
//   2. fm       -- pass-based refinement, if any deadline remains;
//   3. lns      -- pocket destroy/repair, given roughly half of the
//                  remaining deadline (so the exact search below is
//                  never starved by a long LNS tail);
//   4. exact    -- the work-stealing branch-and-bound, warm-started with
//                  the best incumbent so far, given all remaining time.
//
// The result is tagged with PartitionRun::degradedTier: "" when rung 4
// ran to completion (the result is then the proven optimum --
// bit-identical to the `exhaustive` strategy's, by the PR 7 warm-start
// guarantee that seeding never changes a completed search's answer),
// otherwise the rung that produced the best solution ("exact-anytime"
// when the timed-out B&B improved on the heuristics, else "lns" / "fm" /
// "greedy").  Quality is monotone down the ladder: each rung starts from
// the previous rung's solution and can only improve it.
//
// timeLimitSeconds <= 0 means no deadline: the heuristic rungs still run
// (they are cheap and make the exact search faster via the warm start),
// and rung 4 runs unbounded to completion.
//
// Registered as `ladder` in the PartitionerRegistry.  Never cached: how
// deep the ladder descends depends on the wall clock (see
// cache/solution_store.cpp's cacheable()); the server's idempotency
// table is what makes retried ladder requests stable.
#ifndef EBLOCKS_PARTITION_LADDER_H_
#define EBLOCKS_PARTITION_LADDER_H_

#include "partition/engine.h"
#include "partition/problem.h"
#include "partition/result.h"

namespace eblocks::partition {

/// Runs the ladder under options.timeLimitSeconds.  Honors
/// options.cancel (stops at the current rung, like a spent deadline) and
/// options.progressNodes; `run.explored`/`run.seconds` aggregate across
/// rungs; `run.optimal` is set iff the exact rung completed.
PartitionRun degradationLadder(const PartitionProblem& problem,
                               const EngineOptions& options);

}  // namespace eblocks::partition

#endif  // EBLOCKS_PARTITION_LADDER_H_
