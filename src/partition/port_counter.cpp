#include "partition/port_counter.h"

namespace eblocks::partition {

void PortCounter::add(BlockId b) {
  // Classify b's edges against the membership *before* b joins.  An edge
  // between b and a member stops crossing the boundary; an edge between b
  // and a non-member starts crossing it.
  //
  // Irreducible tracking rides along: a new crossing edge is irreducible
  // iff its outside endpoint is frozen.  The internalized edges need no
  // fixed_ updates -- their outside endpoint was b itself, which must be
  // un-frozen at add() time (see the header contract), so they were
  // never counted as irreducible.
  if (mode_ == CountingMode::kEdges) {
    for (const Connection& c : net_->inputsOf(b)) {
      if (members_.test(c.from.block)) {
        --io_.outputs;  // member -> b: was an output edge, now internal
      } else {
        ++io_.inputs;  // outside -> b: new input edge
        if (frozen_ && frozen_->test(c.from.block)) ++fixed_.inputs;
      }
    }
    for (const Connection& c : net_->outputsOf(b)) {
      if (members_.test(c.to.block)) {
        --io_.inputs;  // b -> member: was an input edge, now internal
      } else {
        ++io_.outputs;  // b -> outside: new output edge
        if (frozen_ && frozen_->test(c.to.block)) ++fixed_.outputs;
      }
    }
  } else {
    for (const Connection& c : net_->inputsOf(b)) {
      if (members_.test(c.from.block)) {
        decOut(c.from);  // member endpoint fed b from outside the set
      } else {
        incIn(c.from);  // external endpoint now feeds the set
        if (frozen_ && frozen_->test(c.from.block)) fixedIncIn(c.from);
      }
    }
    for (const Connection& c : net_->outputsOf(b)) {
      if (members_.test(c.to.block)) {
        decIn(c.from);  // b's endpoint was an external source for the set
      } else {
        incOut(c.from);  // b's endpoint now feeds the outside
        if (frozen_ && frozen_->test(c.to.block)) fixedIncOut(c.from);
      }
    }
  }
  if (tracking_ == BorderTracking::kOn) trackAdd(b);
  members_.set(b);
  ++count_;
}

void PortCounter::remove(BlockId b) {
  // Exact inverse of add(): classify against the membership *after* b
  // leaves (networks are DAGs, so b never connects to itself).
  members_.reset(b);
  --count_;
  if (mode_ == CountingMode::kEdges) {
    for (const Connection& c : net_->inputsOf(b)) {
      if (members_.test(c.from.block)) {
        ++io_.outputs;
      } else {
        --io_.inputs;
        if (frozen_ && frozen_->test(c.from.block)) --fixed_.inputs;
      }
    }
    for (const Connection& c : net_->outputsOf(b)) {
      if (members_.test(c.to.block)) {
        ++io_.inputs;
      } else {
        --io_.outputs;
        if (frozen_ && frozen_->test(c.to.block)) --fixed_.outputs;
      }
    }
  } else {
    for (const Connection& c : net_->inputsOf(b)) {
      if (members_.test(c.from.block)) {
        incOut(c.from);
      } else {
        decIn(c.from);
        if (frozen_ && frozen_->test(c.from.block)) fixedDecIn(c.from);
      }
    }
    for (const Connection& c : net_->outputsOf(b)) {
      if (members_.test(c.to.block)) {
        incIn(c.from);
      } else {
        decOut(c.from);
        if (frozen_ && frozen_->test(c.to.block)) fixedDecOut(c.from);
      }
    }
  }
  if (tracking_ == BorderTracking::kOn) trackRemove(b);
}

void PortCounter::freeze(BlockId x) {
  // x just became permanently un-addable: each crossing edge between x
  // and a member turns irreducible.  Edges between x and non-members are
  // not crossing and contribute nothing (if their other end joins later,
  // add() will see x's frozen bit).
  if (mode_ == CountingMode::kEdges) {
    for (const Connection& c : net_->outputsOf(x))  // x -> member: input
      if (members_.test(c.to.block)) ++fixed_.inputs;
    for (const Connection& c : net_->inputsOf(x))  // member -> x: output
      if (members_.test(c.from.block)) ++fixed_.outputs;
  } else {
    for (const Connection& c : net_->outputsOf(x))
      if (members_.test(c.to.block)) fixedIncIn(c.from);
    for (const Connection& c : net_->inputsOf(x))
      if (members_.test(c.from.block)) fixedIncOut(c.from);
  }
}

void PortCounter::unfreeze(BlockId x) {
  if (mode_ == CountingMode::kEdges) {
    for (const Connection& c : net_->outputsOf(x))
      if (members_.test(c.to.block)) --fixed_.inputs;
    for (const Connection& c : net_->inputsOf(x))
      if (members_.test(c.from.block)) --fixed_.outputs;
  } else {
    for (const Connection& c : net_->outputsOf(x))
      if (members_.test(c.to.block)) fixedDecIn(c.from);
    for (const Connection& c : net_->inputsOf(x))
      if (members_.test(c.from.block)) fixedDecOut(c.from);
  }
}

void PortCounter::trackAdd(BlockId b) {
  // Called with members_ still *excluding* b.  b's own internal degrees
  // are counted from scratch (O(degree)); each member neighbor gains one
  // internal edge on the side facing b.
  int in = 0, out = 0;
  for (const Connection& c : net_->inputsOf(b)) {
    const BlockId u = c.from.block;
    if (!members_.test(u)) continue;
    ++in;
    if (++internalOut_[u] == 1) refreshBorderBit(u);
  }
  for (const Connection& c : net_->outputsOf(b)) {
    const BlockId v = c.to.block;
    if (!members_.test(v)) continue;
    ++out;
    if (++internalIn_[v] == 1) refreshBorderBit(v);
  }
  internalIn_[b] = in;
  internalOut_[b] = out;
  refreshBorderBit(b);
}

void PortCounter::trackRemove(BlockId b) {
  // Called with members_ already *excluding* b.  Each member neighbor
  // loses one internal edge on the side facing b; a counter reaching zero
  // can only make that neighbor border.
  for (const Connection& c : net_->inputsOf(b)) {
    const BlockId u = c.from.block;
    if (members_.test(u) && --internalOut_[u] == 0) border_.set(u);
  }
  for (const Connection& c : net_->outputsOf(b)) {
    const BlockId v = c.to.block;
    if (members_.test(v) && --internalIn_[v] == 0) border_.set(v);
  }
  internalIn_[b] = 0;
  internalOut_[b] = 0;
  border_.reset(b);
}

void PortCounter::clear() {
  if (tracking_ == BorderTracking::kOn) {
    members_.forEach([&](std::size_t b) {
      internalIn_[b] = 0;
      internalOut_[b] = 0;
    });
    border_.clear();
  }
  members_.clear();
  count_ = 0;
  io_ = IoCount{};
  inSrc_.clear();
  outSrc_.clear();
  fixed_ = IoCount{};
  fixedInSrc_.clear();
  fixedOutSrc_.clear();
}

void PortCounter::assign(const BitSet& members) {
  clear();
  members.forEach([&](std::size_t b) { add(static_cast<BlockId>(b)); });
}

}  // namespace eblocks::partition
