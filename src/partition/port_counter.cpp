#include "partition/port_counter.h"

namespace eblocks::partition {

void PortCounter::add(BlockId b) {
  // Classify b's edges against the membership *before* b joins.  An edge
  // between b and a member stops crossing the boundary; an edge between b
  // and a non-member starts crossing it.
  if (mode_ == CountingMode::kEdges) {
    for (const Connection& c : net_->inputsOf(b)) {
      if (members_.test(c.from.block))
        --io_.outputs;  // member -> b: was an output edge, now internal
      else
        ++io_.inputs;  // outside -> b: new input edge
    }
    for (const Connection& c : net_->outputsOf(b)) {
      if (members_.test(c.to.block))
        --io_.inputs;  // b -> member: was an input edge, now internal
      else
        ++io_.outputs;  // b -> outside: new output edge
    }
  } else {
    for (const Connection& c : net_->inputsOf(b)) {
      if (members_.test(c.from.block))
        decOut(c.from);  // member endpoint fed b from outside the set
      else
        incIn(c.from);  // external endpoint now feeds the set
    }
    for (const Connection& c : net_->outputsOf(b)) {
      if (members_.test(c.to.block))
        decIn(c.from);  // b's endpoint was an external source for the set
      else
        incOut(c.from);  // b's endpoint now feeds the outside
    }
  }
  members_.set(b);
  ++count_;
}

void PortCounter::remove(BlockId b) {
  // Exact inverse of add(): classify against the membership *after* b
  // leaves (networks are DAGs, so b never connects to itself).
  members_.reset(b);
  --count_;
  if (mode_ == CountingMode::kEdges) {
    for (const Connection& c : net_->inputsOf(b)) {
      if (members_.test(c.from.block))
        ++io_.outputs;
      else
        --io_.inputs;
    }
    for (const Connection& c : net_->outputsOf(b)) {
      if (members_.test(c.to.block))
        ++io_.inputs;
      else
        --io_.outputs;
    }
  } else {
    for (const Connection& c : net_->inputsOf(b)) {
      if (members_.test(c.from.block))
        incOut(c.from);
      else
        decIn(c.from);
    }
    for (const Connection& c : net_->outputsOf(b)) {
      if (members_.test(c.to.block))
        incIn(c.from);
      else
        decOut(c.from);
    }
  }
}

void PortCounter::clear() {
  members_.clear();
  count_ = 0;
  io_ = IoCount{};
  inSrc_.clear();
  outSrc_.clear();
}

void PortCounter::assign(const BitSet& members) {
  clear();
  members.forEach([&](std::size_t b) { add(static_cast<BlockId>(b)); });
}

}  // namespace eblocks::partition
