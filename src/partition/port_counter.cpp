#include "partition/port_counter.h"

namespace eblocks::partition {

void PortCounter::add(BlockId b) {
  assert(!members_.test(b) && "add: already a member");
  assert((!frozen_ || !frozen_->test(b)) && "add: block is frozen");
  // Classify b's arcs against the membership *before* b joins.  An edge
  // between b and a member stops crossing the boundary; an edge between b
  // and a non-member starts crossing it.
  //
  // Irreducible tracking rides along: a new crossing edge is irreducible
  // iff its outside endpoint is frozen.  The internalized edges need no
  // fixed_ updates -- their outside endpoint was b itself, which must be
  // un-frozen at add() time (see the header contract), so they were
  // never counted as irreducible.
  if (mode_ == CountingMode::kEdges) {
    for (const CompactArc& a : graph_->inArcs(b)) {
      if (members_.test(a.neighbor)) {
        --io_.outputs;  // member -> b: was an output edge, now internal
      } else {
        ++io_.inputs;  // outside -> b: new input edge
        if (frozen_ && frozen_->test(a.neighbor)) ++fixed_.inputs;
      }
    }
    for (const CompactArc& a : graph_->outArcs(b)) {
      if (members_.test(a.neighbor)) {
        --io_.inputs;  // b -> member: was an input edge, now internal
      } else {
        ++io_.outputs;  // b -> outside: new output edge
        if (frozen_ && frozen_->test(a.neighbor)) ++fixed_.outputs;
      }
    }
  } else {
    for (const CompactArc& a : graph_->inArcs(b)) {
      if (members_.test(a.neighbor)) {
        decOut(a.endpoint);  // member endpoint fed b from outside the set
      } else {
        incIn(a.endpoint);  // external endpoint now feeds the set
        if (frozen_ && frozen_->test(a.neighbor)) fixedIncIn(a.endpoint);
      }
    }
    for (const CompactArc& a : graph_->outArcs(b)) {
      if (members_.test(a.neighbor)) {
        decIn(a.endpoint);  // b's endpoint was an external source
      } else {
        incOut(a.endpoint);  // b's endpoint now feeds the outside
        if (frozen_ && frozen_->test(a.neighbor)) fixedIncOut(a.endpoint);
      }
    }
  }
  if (tracking_ == BorderTracking::kOn) trackAdd(b);
  members_.set(b);
  ++count_;
}

void PortCounter::remove(BlockId b) {
  assert(members_.test(b) && "remove: not a member");
  // Exact inverse of add(): classify against the membership *after* b
  // leaves (networks are DAGs, so b never connects to itself).
  members_.reset(b);
  --count_;
  if (mode_ == CountingMode::kEdges) {
    for (const CompactArc& a : graph_->inArcs(b)) {
      if (members_.test(a.neighbor)) {
        ++io_.outputs;
      } else {
        --io_.inputs;
        if (frozen_ && frozen_->test(a.neighbor)) --fixed_.inputs;
      }
    }
    for (const CompactArc& a : graph_->outArcs(b)) {
      if (members_.test(a.neighbor)) {
        ++io_.inputs;
      } else {
        --io_.outputs;
        if (frozen_ && frozen_->test(a.neighbor)) --fixed_.outputs;
      }
    }
  } else {
    for (const CompactArc& a : graph_->inArcs(b)) {
      if (members_.test(a.neighbor)) {
        incOut(a.endpoint);
      } else {
        decIn(a.endpoint);
        if (frozen_ && frozen_->test(a.neighbor)) fixedDecIn(a.endpoint);
      }
    }
    for (const CompactArc& a : graph_->outArcs(b)) {
      if (members_.test(a.neighbor)) {
        incIn(a.endpoint);
      } else {
        decOut(a.endpoint);
        if (frozen_ && frozen_->test(a.neighbor)) fixedDecOut(a.endpoint);
      }
    }
  }
  if (tracking_ == BorderTracking::kOn) trackRemove(b);
}

void PortCounter::freeze(BlockId x) {
  assert(!members_.test(x) && "freeze: block is a member");
  // x just became permanently un-addable: each crossing edge between x
  // and a member turns irreducible.  Edges between x and non-members are
  // not crossing and contribute nothing (if their other end joins later,
  // add() will see x's frozen bit).
  if (mode_ == CountingMode::kEdges) {
    for (const CompactArc& a : graph_->outArcs(x))  // x -> member: input
      if (members_.test(a.neighbor)) ++fixed_.inputs;
    for (const CompactArc& a : graph_->inArcs(x))  // member -> x: output
      if (members_.test(a.neighbor)) ++fixed_.outputs;
  } else {
    for (const CompactArc& a : graph_->outArcs(x))
      if (members_.test(a.neighbor)) fixedIncIn(a.endpoint);
    for (const CompactArc& a : graph_->inArcs(x))
      if (members_.test(a.neighbor)) fixedIncOut(a.endpoint);
  }
}

void PortCounter::unfreeze(BlockId x) {
  assert(!members_.test(x) && "unfreeze: block is a member");
  if (mode_ == CountingMode::kEdges) {
    for (const CompactArc& a : graph_->outArcs(x))
      if (members_.test(a.neighbor)) --fixed_.inputs;
    for (const CompactArc& a : graph_->inArcs(x))
      if (members_.test(a.neighbor)) --fixed_.outputs;
  } else {
    for (const CompactArc& a : graph_->outArcs(x))
      if (members_.test(a.neighbor)) fixedDecIn(a.endpoint);
    for (const CompactArc& a : graph_->inArcs(x))
      if (members_.test(a.neighbor)) fixedDecOut(a.endpoint);
  }
}

void PortCounter::trackAdd(BlockId b) {
  // Called with members_ still *excluding* b.  b's own internal degrees
  // are counted from scratch (O(degree)); each member neighbor gains one
  // internal edge on the side facing b.
  int in = 0, out = 0;
  for (const CompactArc& a : graph_->inArcs(b)) {
    const BlockId u = a.neighbor;
    if (!members_.test(u)) continue;
    ++in;
    if (++internalOut_[u] == 1) refreshBorderBit(u);
  }
  for (const CompactArc& a : graph_->outArcs(b)) {
    const BlockId v = a.neighbor;
    if (!members_.test(v)) continue;
    ++out;
    if (++internalIn_[v] == 1) refreshBorderBit(v);
  }
  internalIn_[b] = in;
  internalOut_[b] = out;
  refreshBorderBit(b);
}

void PortCounter::trackRemove(BlockId b) {
  // Called with members_ already *excluding* b.  Each member neighbor
  // loses one internal edge on the side facing b; a counter reaching zero
  // can only make that neighbor border.
  for (const CompactArc& a : graph_->inArcs(b)) {
    const BlockId u = a.neighbor;
    if (members_.test(u) && --internalOut_[u] == 0) border_.set(u);
  }
  for (const CompactArc& a : graph_->outArcs(b)) {
    const BlockId v = a.neighbor;
    if (members_.test(v) && --internalIn_[v] == 0) border_.set(v);
  }
  internalIn_[b] = 0;
  internalOut_[b] = 0;
  border_.reset(b);
}

void PortCounter::clear() {
  if (tracking_ == BorderTracking::kOn) {
    members_.forEach([&](std::size_t b) {
      internalIn_[b] = 0;
      internalOut_[b] = 0;
    });
    border_.clear();
  }
  members_.clear();
  count_ = 0;
  io_ = IoCount{};
  fixed_ = IoCount{};
  // O(touched): each table zeroes only the endpoints its live-list
  // names.  No-ops in kEdges mode (the tables were never initialized
  // and hold no live entries).
  inSrc_.clear();
  outSrc_.clear();
  fixedInSrc_.clear();
  fixedOutSrc_.clear();
}

void PortCounter::assign(const BitSet& members) {
  clear();
  members.forEach([&](std::size_t b) { add(static_cast<BlockId>(b)); });
}

}  // namespace eblocks::partition
