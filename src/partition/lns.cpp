#include "partition/lns.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "blocks/catalog.h"
#include "partition/exhaustive.h"

namespace eblocks::partition {

namespace {

using Clock = std::chrono::steady_clock;

/// Deterministic destroy RNG (xorshift32).
struct Rng {
  std::uint32_t state;
  explicit Rng(std::uint32_t seed) : state(seed ? seed : 0x9e3779b9u) {}
  std::uint32_t next() {
    state ^= state << 13;
    state ^= state >> 17;
    state ^= state << 5;
    return state;
  }
  std::uint32_t below(std::uint32_t n) { return next() % n; }
};

/// The stub subnetwork a pocket is repaired in, plus the id mapping back
/// to the full network.
struct PocketProblem {
  Network net{"lns_pocket"};
  std::vector<BlockId> subToFull;          // inner (pocket) blocks only
  std::vector<std::int32_t> fullToSub;     // -1 for non-pocket blocks
};

/// Lifts `pocket` (full-network ids) into a stub subnetwork whose port
/// counting matches the original in both modes (see the header comment).
PocketProblem liftPocket(const Network& net, const CompactGraph& graph,
                         const std::vector<BlockId>& pocket) {
  PocketProblem out;
  out.fullToSub.assign(net.blockCount(), -1);
  for (const BlockId b : pocket) {
    const Block& block = net.block(b);
    const BlockId sub = out.net.addBlock(block.name, block.type);
    out.fullToSub[b] = static_cast<std::int32_t>(sub);
    out.subToFull.push_back(b);
  }
  const blocks::Catalog& catalog = blocks::defaultCatalog();
  // One stub sensor per distinct outside source endpoint, addressed by
  // the full graph's dense endpoint id.
  std::vector<std::int32_t> stubFor(graph.endpointCount(), -1);
  int stubs = 0;
  for (const BlockId b : pocket) {
    const BlockId sub =
        static_cast<BlockId>(out.fullToSub[b]);
    for (const Connection& c : net.inputsOf(b)) {
      const std::int32_t srcSub = out.fullToSub[c.from.block];
      if (srcSub >= 0) {
        out.net.connect(static_cast<BlockId>(srcSub), c.from.port, sub,
                        c.to.port);
        continue;
      }
      const std::uint32_t e = graph.endpointId(c.from);
      if (stubFor[e] < 0) {
        stubFor[e] = static_cast<std::int32_t>(out.net.addBlock(
            "__lns_in_" + std::to_string(stubs++), catalog.button()));
      }
      out.net.connect(static_cast<BlockId>(stubFor[e]), 0, sub, c.to.port);
    }
    for (const Connection& c : net.outputsOf(b)) {
      if (out.fullToSub[c.to.block] >= 0) continue;  // mirrored above
      const BlockId led = out.net.addBlock(
          "__lns_out_" + std::to_string(stubs++), catalog.led());
      out.net.connect(sub, c.from.port, led, 0);
    }
  }
  return out;
}

}  // namespace

PartitionRun lnsSearch(const PartitionProblem& problem,
                       const Partitioning& initial,
                       const LnsOptions& options) {
  const auto start = Clock::now();
  const Clock::time_point deadline =
      options.timeLimitSeconds > 0
          ? start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(
                            options.timeLimitSeconds))
          : Clock::time_point::max();
  const Network& net = problem.network();
  const CompactGraph& graph = problem.graph();
  const int innerCount = problem.innerCount();

  PartitionRun run;
  run.algorithm = "lns";
  run.result = initial;
  if (innerCount == 0) return run;

  const int pocketSize =
      options.pocketSize > 0 ? options.pocketSize : std::min(innerCount, 12);
  Rng rng(options.rngSeed);

  int stall = 0;
  std::vector<std::int32_t> binOf(net.blockCount());
  std::vector<BlockId> pocket, queue, uncovered;
  BitSet inPocket(net.blockCount());
  for (int round = 0; options.maxRounds == 0 || round < options.maxRounds;
       ++round) {
    if (Clock::now() > deadline ||
        (options.cancel &&
         options.cancel->load(std::memory_order_relaxed))) {
      run.timedOut = true;
      break;
    }
    if (options.stallRounds > 0 && stall >= options.stallRounds) break;

    // Current assignment + uncovered list (ascending ids).
    std::fill(binOf.begin(), binOf.end(), -1);
    for (std::size_t p = 0; p < run.result.partitions.size(); ++p)
      run.result.partitions[p].forEach(
          [&](std::size_t b) { binOf[b] = static_cast<std::int32_t>(p); });
    uncovered.clear();
    for (const BlockId b : problem.innerBlocks())
      if (binOf[b] < 0) uncovered.push_back(b);

    // Destroy: BFS a pocket of whole bins from a boundary-biased start.
    const BlockId startBlock =
        (!uncovered.empty() && round % 2 == 0)
            ? uncovered[rng.below(
                  static_cast<std::uint32_t>(uncovered.size()))]
            : problem.innerBlocks()[rng.below(
                  static_cast<std::uint32_t>(innerCount))];
    pocket.clear();
    queue.clear();
    inPocket.clear();
    const auto absorb = [&](BlockId b) {
      // Whole-bin granularity keeps the untouched remainder a valid
      // partitioning by construction.
      const auto take = [&](BlockId m) {
        if (inPocket.test(m)) return;
        inPocket.set(m);
        pocket.push_back(m);
        queue.push_back(m);
      };
      if (binOf[b] >= 0)
        run.result.partitions[binOf[b]].forEach(
            [&](std::size_t m) { take(static_cast<BlockId>(m)); });
      else
        take(b);
    };
    absorb(startBlock);
    std::size_t head = 0;
    const auto expand = [&] {
      for (; head < queue.size() &&
             static_cast<int>(pocket.size()) < pocketSize;
           ++head) {
        const BlockId x = queue[head];
        const auto visit = [&](BlockId nb) {
          if (static_cast<int>(pocket.size()) < pocketSize &&
              graph.isInner(nb) && !inPocket.test(nb))
            absorb(nb);
        };
        for (const CompactArc& a : graph.inArcs(x)) visit(a.neighbor);
        for (const CompactArc& a : graph.outArcs(x)) visit(a.neighbor);
      }
    };
    expand();
    // A drained frontier short of the target means the start's component
    // is exhausted; restart from the lowest-id unabsorbed inner block so
    // a full-design pocket covers disconnected inner graphs too.
    for (const BlockId b : problem.innerBlocks()) {
      if (static_cast<int>(pocket.size()) >= pocketSize) break;
      if (inPocket.test(b)) continue;
      absorb(b);
      expand();
    }
    if (pocket.size() < 2) {
      ++stall;
      continue;
    }
    std::sort(pocket.begin(), pocket.end());

    // Repair: exact search on the lifted pocket, seeded with what the
    // destroy removed, clipped by the node budget and the deadline.
    PocketProblem sub = liftPocket(net, graph, pocket);
    const PartitionProblem subProblem(sub.net, problem.spec());
    ExhaustiveOptions repair;
    repair.threads = 1;
    repair.nodeBudget = options.repairNodeBudget;
    repair.pruningBound = true;
    repair.cancel = options.cancel;
    repair.progressNodes = options.progressNodes;
    if (deadline != Clock::time_point::max()) {
      const double remaining =
          std::chrono::duration<double>(deadline - Clock::now()).count();
      if (remaining <= 0) {
        // The deadline lapsed since the round-start check; a non-positive
        // limit would mean "unlimited" to the repair search.
        run.timedOut = true;
        break;
      }
      repair.timeLimitSeconds = remaining;
    }
    Partitioning seed;
    int pocketBins = 0;
    for (const BitSet& p : run.result.partitions) {
      if (!inPocket.test(p.findFirst())) continue;
      ++pocketBins;
      BitSet mapped = sub.net.emptySet();
      p.forEach([&](std::size_t b) {
        mapped.set(static_cast<std::size_t>(sub.fullToSub[b]));
      });
      seed.partitions.push_back(std::move(mapped));
    }
    repair.seed = std::move(seed);
    const PartitionRun repaired = exhaustiveSearch(subProblem, repair);
    run.explored += repaired.explored;
    run.pruned += repaired.pruned;

    // Accept strict improvements of the paper's objective.  The repair
    // was seeded with the destroyed pocket solution, so it can never
    // come back worse -- only equal (stall) or better.
    int pocketCoveredBefore = 0;
    for (const BitSet& p : run.result.partitions)
      if (inPocket.test(p.findFirst()))
        pocketCoveredBefore += static_cast<int>(p.count());
    const int before = pocketBins + static_cast<int>(pocket.size()) -
                       pocketCoveredBefore;
    const int after = repaired.result.totalAfter(
        static_cast<int>(sub.subToFull.size()));
    if (after < before) {
      std::vector<BitSet> next;
      for (const BitSet& p : run.result.partitions)
        if (!inPocket.test(p.findFirst())) next.push_back(p);
      for (const BitSet& p : repaired.result.partitions) {
        BitSet mapped = net.emptySet();
        p.forEach([&](std::size_t b) {
          mapped.set(sub.subToFull[b]);
        });
        next.push_back(std::move(mapped));
      }
      std::sort(next.begin(), next.end(),
                [](const BitSet& a, const BitSet& b) {
                  return a.findFirst() < b.findFirst();
                });
      run.result.partitions = std::move(next);
      stall = 0;
    } else {
      ++stall;
    }
    if (static_cast<int>(pocket.size()) == innerCount && repaired.optimal) {
      // The round was a completed exact search of the whole design.
      run.optimal = true;
      break;
    }
  }

  run.seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  return run;
}

}  // namespace eblocks::partition
