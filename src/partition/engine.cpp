#include "partition/engine.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <stdexcept>

#include "partition/aggregation.h"
#include "partition/exhaustive.h"
#include "partition/paredown.h"

namespace eblocks::partition {

namespace {

class PareDownStrategy final : public Partitioner {
 public:
  std::string name() const override { return "paredown"; }
  std::string description() const override {
    return "border-paring heuristic (Section 4.2); O(n^2), near-optimal";
  }
  PartitionRun run(const PartitionProblem& problem,
                   const EngineOptions&) const override {
    return pareDown(problem);
  }
};

class AggregationStrategy final : public Partitioner {
 public:
  std::string name() const override { return "aggregation"; }
  std::string description() const override {
    return "greedy neighbor aggregation (Section 4.2); fast, no look-ahead";
  }
  PartitionRun run(const PartitionProblem& problem,
                   const EngineOptions&) const override {
    return aggregation(problem);
  }
};

class ExhaustiveStrategy final : public Partitioner {
 public:
  std::string name() const override { return "exhaustive"; }
  std::string description() const override {
    return "optimal work-stealing branch-and-bound (Section 4.1), "
           "PareDown-seeded, admissible-bound pruned";
  }
  PartitionRun run(const PartitionProblem& problem,
                   const EngineOptions& options) const override {
    ExhaustiveOptions ex;
    ex.timeLimitSeconds = options.timeLimitSeconds;
    ex.requireConvex = options.requireConvex;
    ex.threads = options.threads;
    ex.scheduler = options.scheduler;
    ex.pruningBound = options.pruningBound;
    if (options.seedFromPareDown) ex.seed = pareDown(problem).result;
    return exhaustiveSearch(problem, ex);
  }
};

class MultiTypePareDownStrategy final : public TypedPartitioner {
 public:
  std::string name() const override { return "paredown"; }
  std::string description() const override {
    return "cost-aware PareDown over multiple programmable block types";
  }
  TypedPartitionRun run(const Network& net, const ProgCostModel& model,
                        const EngineOptions&) const override {
    return multiTypePareDown(net, model);
  }
};

class MultiTypeExhaustiveStrategy final : public TypedPartitioner {
 public:
  std::string name() const override { return "exhaustive"; }
  std::string description() const override {
    return "optimal work-stealing branch-and-bound over types and "
           "assignments, admissible-bound pruned";
  }
  TypedPartitionRun run(const Network& net, const ProgCostModel& model,
                        const EngineOptions& options) const override {
    MultiTypeExhaustiveOptions ex;
    ex.timeLimitSeconds = options.timeLimitSeconds;
    ex.threads = options.threads;
    ex.scheduler = options.scheduler;
    ex.pruningBound = options.pruningBound;
    if (options.seedFromPareDown)
      ex.seed = multiTypePareDown(net, model).result;
    return multiTypeExhaustive(net, model, ex);
  }
};

std::string joinNames(const std::vector<std::string>& names) {
  std::string joined;
  for (const std::string& n : names) {
    if (!joined.empty()) joined += ", ";
    joined += n;
  }
  return joined;
}

}  // namespace

struct PartitionerRegistry::Impl {
  mutable std::mutex mutex;
  std::map<std::string, std::unique_ptr<Partitioner>, std::less<>> plain;
  std::map<std::string, std::unique_ptr<TypedPartitioner>, std::less<>> typed;
};

PartitionerRegistry::PartitionerRegistry() : impl_(std::make_shared<Impl>()) {}

PartitionerRegistry& PartitionerRegistry::instance() {
  static PartitionerRegistry* registry = [] {
    auto* r = new PartitionerRegistry();
    r->add(std::make_unique<PareDownStrategy>());
    r->add(std::make_unique<ExhaustiveStrategy>());
    r->add(std::make_unique<AggregationStrategy>());
    r->add(std::make_unique<MultiTypePareDownStrategy>());
    r->add(std::make_unique<MultiTypeExhaustiveStrategy>());
    return r;
  }();
  return *registry;
}

void PartitionerRegistry::add(std::unique_ptr<Partitioner> partitioner) {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->plain[partitioner->name()] = std::move(partitioner);
}

void PartitionerRegistry::add(std::unique_ptr<TypedPartitioner> partitioner) {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->typed[partitioner->name()] = std::move(partitioner);
}

const Partitioner* PartitionerRegistry::find(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->plain.find(name);
  return it == impl_->plain.end() ? nullptr : it->second.get();
}

const TypedPartitioner* PartitionerRegistry::findTyped(
    std::string_view name) const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->typed.find(name);
  return it == impl_->typed.end() ? nullptr : it->second.get();
}

std::vector<std::string> PartitionerRegistry::names() const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<std::string> out;
  out.reserve(impl_->plain.size());
  for (const auto& [name, unused] : impl_->plain) out.push_back(name);
  return out;  // std::map iterates sorted
}

std::vector<std::string> PartitionerRegistry::typedNames() const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<std::string> out;
  out.reserve(impl_->typed.size());
  for (const auto& [name, unused] : impl_->typed) out.push_back(name);
  return out;
}

std::string PartitionerRegistry::describe(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->plain.find(name);
  if (it != impl_->plain.end()) return it->second->description();
  const auto typedIt = impl_->typed.find(name);
  if (typedIt != impl_->typed.end()) return typedIt->second->description();
  return "";
}

PartitionRun runPartitioner(std::string_view name,
                            const PartitionProblem& problem,
                            const EngineOptions& options) {
  PartitionerRegistry& registry = PartitionerRegistry::instance();
  const Partitioner* partitioner = registry.find(name);
  if (!partitioner)
    throw std::invalid_argument(
        "unknown partitioning algorithm '" + std::string(name) +
        "' (registered: " + joinNames(registry.names()) + ")");
  return partitioner->run(problem, options);
}

TypedPartitionRun runTypedPartitioner(std::string_view name,
                                      const Network& net,
                                      const ProgCostModel& model,
                                      const EngineOptions& options) {
  PartitionerRegistry& registry = PartitionerRegistry::instance();
  const TypedPartitioner* partitioner = registry.findTyped(name);
  if (!partitioner)
    throw std::invalid_argument(
        "unknown multi-type partitioning algorithm '" + std::string(name) +
        "' (registered: " + joinNames(registry.typedNames()) + ")");
  return partitioner->run(net, model, options);
}

}  // namespace eblocks::partition
