#include "partition/engine.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <stdexcept>

#include "partition/aggregation.h"
#include "partition/exhaustive.h"
#include "partition/fm_refine.h"
#include "partition/greedy_seed.h"
#include "partition/ladder.h"
#include "partition/lns.h"
#include "partition/paredown.h"

namespace eblocks::partition {

namespace {

class PareDownStrategy final : public Partitioner {
 public:
  std::string name() const override { return "paredown"; }
  std::string description() const override {
    return "border-paring heuristic (Section 4.2); O(n^2), near-optimal";
  }
  PartitionRun run(const PartitionProblem& problem,
                   const EngineOptions&) const override {
    return pareDown(problem);
  }
};

class AggregationStrategy final : public Partitioner {
 public:
  std::string name() const override { return "aggregation"; }
  std::string description() const override {
    return "greedy neighbor aggregation (Section 4.2); fast, no look-ahead";
  }
  PartitionRun run(const PartitionProblem& problem,
                   const EngineOptions&) const override {
    return aggregation(problem);
  }
};

class ExhaustiveStrategy final : public Partitioner {
 public:
  std::string name() const override { return "exhaustive"; }
  std::string description() const override {
    return "optimal work-stealing branch-and-bound (Section 4.1), "
           "PareDown-seeded, admissible-bound pruned";
  }
  PartitionRun run(const PartitionProblem& problem,
                   const EngineOptions& options) const override {
    ExhaustiveOptions ex;
    ex.timeLimitSeconds = options.timeLimitSeconds;
    ex.requireConvex = options.requireConvex;
    ex.threads = options.threads;
    ex.scheduler = options.scheduler;
    ex.pruningBound = options.pruningBound;
    ex.cancel = options.cancel;
    ex.progressNodes = options.progressNodes;
    // Warm start: seed the incumbent with the cheapest known solution.
    // Both sources are pure accelerators (trust-but-verify inside the
    // search), so taking the cheaper one never changes the optimum.
    if (options.seedFromPareDown) ex.seed = pareDown(problem).result;
    if (options.initialIncumbent) {
      const int n = problem.innerCount();
      if (!ex.seed || options.initialIncumbent->totalAfter(n) <
                          ex.seed->totalAfter(n))
        ex.seed = options.initialIncumbent;
    }
    return exhaustiveSearch(problem, ex);
  }
};

class GreedySeedStrategy final : public Partitioner {
 public:
  std::string name() const override { return "greedy"; }
  std::string description() const override {
    return "constructive BFS cluster growth + residual PareDown; "
           "near-linear seed for fm/lns";
  }
  PartitionRun run(const PartitionProblem& problem,
                   const EngineOptions&) const override {
    return greedySeed(problem);
  }
};

class FmStrategy final : public Partitioner {
 public:
  std::string name() const override { return "fm"; }
  std::string description() const override {
    return "FM-style pass-based refinement of the greedy seed (gain "
           "buckets, rollback-to-best-prefix)";
  }
  PartitionRun run(const PartitionProblem& problem,
                   const EngineOptions&) const override {
    const PartitionRun seed = greedySeed(problem);
    PartitionRun refined = fmRefine(problem, seed.result);
    refined.explored += seed.explored;
    refined.seconds += seed.seconds;
    return refined;
  }
};

class LnsStrategy final : public Partitioner {
 public:
  std::string name() const override { return "lns"; }
  std::string description() const override {
    return "anytime large-neighborhood search over fm's solution "
           "(pocket destroy + exact B&B repair)";
  }
  PartitionRun run(const PartitionProblem& problem,
                   const EngineOptions& options) const override {
    const PartitionRun seed = greedySeed(problem);
    const PartitionRun refined = fmRefine(problem, seed.result);
    LnsOptions lns;
    lns.timeLimitSeconds = options.timeLimitSeconds;
    lns.pocketSize = options.lnsPocket;
    lns.maxRounds = options.lnsRounds;
    lns.repairNodeBudget = options.lnsRepairNodes;
    lns.rngSeed = options.rngSeed;
    lns.cancel = options.cancel;
    lns.progressNodes = options.progressNodes;
    PartitionRun out = lnsSearch(problem, refined.result, lns);
    out.explored += seed.explored + refined.explored;
    out.seconds += seed.seconds + refined.seconds;
    return out;
  }
};

class LadderStrategy final : public Partitioner {
 public:
  std::string name() const override { return "ladder"; }
  std::string description() const override {
    return "deadline degradation ladder greedy -> fm -> lns -> exact "
           "B&B; always feasible, run.degradedTier reports the rung";
  }
  PartitionRun run(const PartitionProblem& problem,
                   const EngineOptions& options) const override {
    return degradationLadder(problem, options);
  }
};

class MultiTypePareDownStrategy final : public TypedPartitioner {
 public:
  std::string name() const override { return "paredown"; }
  std::string description() const override {
    return "cost-aware PareDown over multiple programmable block types";
  }
  TypedPartitionRun run(const Network& net, const ProgCostModel& model,
                        const EngineOptions&) const override {
    return multiTypePareDown(net, model);
  }
};

class MultiTypeExhaustiveStrategy final : public TypedPartitioner {
 public:
  std::string name() const override { return "exhaustive"; }
  std::string description() const override {
    return "optimal work-stealing branch-and-bound over types and "
           "assignments, admissible-bound pruned";
  }
  TypedPartitionRun run(const Network& net, const ProgCostModel& model,
                        const EngineOptions& options) const override {
    MultiTypeExhaustiveOptions ex;
    ex.timeLimitSeconds = options.timeLimitSeconds;
    ex.threads = options.threads;
    ex.scheduler = options.scheduler;
    ex.pruningBound = options.pruningBound;
    if (options.seedFromPareDown)
      ex.seed = multiTypePareDown(net, model).result;
    if (options.initialTypedIncumbent) {
      const int n = static_cast<int>(net.innerBlocks().size());
      if (!ex.seed || options.initialTypedIncumbent->totalCost(n, model) <
                          ex.seed->totalCost(n, model))
        ex.seed = options.initialTypedIncumbent;
    }
    return multiTypeExhaustive(net, model, ex);
  }
};

class MultiTypeFmStrategy final : public TypedPartitioner {
 public:
  std::string name() const override { return "fm"; }
  std::string description() const override {
    return "FM-style refinement of the cost-aware PareDown solution "
           "under the option cost model";
  }
  TypedPartitionRun run(const Network& net, const ProgCostModel& model,
                        const EngineOptions&) const override {
    const TypedPartitionRun seed = multiTypePareDown(net, model);
    TypedPartitionRun refined = multiTypeFmRefine(net, model, seed.result);
    refined.explored += seed.explored;
    refined.seconds += seed.seconds;
    return refined;
  }
};

std::string joinNames(const std::vector<std::string>& names) {
  std::string joined;
  for (const std::string& n : names) {
    if (!joined.empty()) joined += ", ";
    joined += n;
  }
  return joined;
}

}  // namespace

struct PartitionerRegistry::Impl {
  mutable std::mutex mutex;
  std::map<std::string, std::unique_ptr<Partitioner>, std::less<>> plain;
  std::map<std::string, std::unique_ptr<TypedPartitioner>, std::less<>> typed;
};

PartitionerRegistry::PartitionerRegistry() : impl_(std::make_shared<Impl>()) {}

PartitionerRegistry& PartitionerRegistry::instance() {
  static PartitionerRegistry* registry = [] {
    auto* r = new PartitionerRegistry();
    r->add(std::make_unique<PareDownStrategy>());
    r->add(std::make_unique<ExhaustiveStrategy>());
    r->add(std::make_unique<AggregationStrategy>());
    r->add(std::make_unique<GreedySeedStrategy>());
    r->add(std::make_unique<FmStrategy>());
    r->add(std::make_unique<LnsStrategy>());
    r->add(std::make_unique<LadderStrategy>());
    r->add(std::make_unique<MultiTypePareDownStrategy>());
    r->add(std::make_unique<MultiTypeExhaustiveStrategy>());
    r->add(std::make_unique<MultiTypeFmStrategy>());
    return r;
  }();
  return *registry;
}

void PartitionerRegistry::add(std::unique_ptr<Partitioner> partitioner) {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->plain[partitioner->name()] = std::move(partitioner);
}

void PartitionerRegistry::add(std::unique_ptr<TypedPartitioner> partitioner) {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->typed[partitioner->name()] = std::move(partitioner);
}

const Partitioner* PartitionerRegistry::find(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->plain.find(name);
  return it == impl_->plain.end() ? nullptr : it->second.get();
}

const TypedPartitioner* PartitionerRegistry::findTyped(
    std::string_view name) const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->typed.find(name);
  return it == impl_->typed.end() ? nullptr : it->second.get();
}

std::vector<std::string> PartitionerRegistry::names() const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<std::string> out;
  out.reserve(impl_->plain.size());
  for (const auto& [name, unused] : impl_->plain) out.push_back(name);
  return out;  // std::map iterates sorted
}

std::vector<std::string> PartitionerRegistry::typedNames() const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<std::string> out;
  out.reserve(impl_->typed.size());
  for (const auto& [name, unused] : impl_->typed) out.push_back(name);
  return out;
}

std::string PartitionerRegistry::describe(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->plain.find(name);
  if (it != impl_->plain.end()) return it->second->description();
  const auto typedIt = impl_->typed.find(name);
  if (typedIt != impl_->typed.end()) return typedIt->second->description();
  return "";
}

PartitionRun runPartitioner(std::string_view name,
                            const PartitionProblem& problem,
                            const EngineOptions& options) {
  PartitionerRegistry& registry = PartitionerRegistry::instance();
  const Partitioner* partitioner = registry.find(name);
  if (!partitioner)
    throw std::invalid_argument(
        "unknown partitioning algorithm '" + std::string(name) +
        "' (registered: " + joinNames(registry.names()) + ")");
  return partitioner->run(problem, options);
}

TypedPartitionRun runTypedPartitioner(std::string_view name,
                                      const Network& net,
                                      const ProgCostModel& model,
                                      const EngineOptions& options) {
  PartitionerRegistry& registry = PartitionerRegistry::instance();
  const TypedPartitioner* partitioner = registry.findTyped(name);
  if (!partitioner)
    throw std::invalid_argument(
        "unknown multi-type partitioning algorithm '" + std::string(name) +
        "' (registered: " + joinNames(registry.typedNames()) + ")");
  return partitioner->run(net, model, options);
}

}  // namespace eblocks::partition
