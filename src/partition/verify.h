// Independent verification of partitioning results.  Every algorithm's
// output is checked against the problem constraints; the test suite and the
// synthesizer both refuse unverified partitionings.
#ifndef EBLOCKS_PARTITION_VERIFY_H_
#define EBLOCKS_PARTITION_VERIFY_H_

#include <string>
#include <vector>

#include "partition/problem.h"
#include "partition/result.h"

namespace eblocks::partition {

struct VerifyOptions {
  /// Convexity is informational, not required (see validity.h).
  bool requireConvex = false;
};

/// Returns human-readable constraint violations; empty means valid.
/// Checks: members are inner blocks; partitions are pairwise disjoint;
/// every partition has >= 2 members and fits the programmable block; and
/// (optionally) every partition is convex.
std::vector<std::string> verifyPartitioning(const PartitionProblem& problem,
                                            const Partitioning& partitioning,
                                            const VerifyOptions& options = {});

}  // namespace eblocks::partition

#endif  // EBLOCKS_PARTITION_VERIFY_H_
