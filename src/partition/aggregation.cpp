#include "partition/aggregation.h"

#include <algorithm>
#include <chrono>

#include "partition/port_counter.h"
#include "partition/validity.h"

namespace eblocks::partition {

PartitionRun aggregation(const PartitionProblem& problem) {
  const auto start = std::chrono::steady_clock::now();
  const CompactGraph& graph = problem.graph();
  const ProgBlockSpec& spec = problem.spec();

  PartitionRun run;
  run.algorithm = "aggregation";

  // Seeds in (level, id) order: nodes fed by primary inputs come first.
  std::vector<BlockId> seeds = problem.innerBlocks();
  std::sort(seeds.begin(), seeds.end(), [&](BlockId a, BlockId b) {
    const int la = problem.levels()[a], lb = problem.levels()[b];
    return la != lb ? la < lb : a < b;
  });

  BitSet unassigned = problem.innerSet();
  // The cluster's port usage is maintained incrementally: every growth
  // probe adds one block, checks the counter, and backs the block out on a
  // miss -- O(degree) per probe instead of a full fit recount.  Both the
  // counter and the neighbor walk below use the problem's CSR view.
  PortCounter cluster(graph, spec.mode);
  std::vector<BlockId> candidates;  // reused across rounds
  for (BlockId seed : seeds) {
    if (!unassigned.test(seed)) continue;
    cluster.clear();
    cluster.add(seed);
    if (!fits(cluster.io(), spec)) {
      // Even alone the seed exceeds the port budget; leave it uncovered.
      unassigned.reset(seed);
      continue;
    }
    // Greedy growth: keep trying unassigned neighbors (fanin/fanout of the
    // cluster) until none can join without breaking the port budget or
    // convexity.
    bool grew = true;
    while (grew) {
      ++run.explored;
      grew = false;
      candidates.clear();
      cluster.members().forEach([&](std::size_t m) {
        const BlockId mb = static_cast<BlockId>(m);
        for (const CompactArc& a : graph.inArcs(mb))
          if (unassigned.test(a.neighbor) && !cluster.contains(a.neighbor))
            candidates.push_back(a.neighbor);
        for (const CompactArc& a : graph.outArcs(mb))
          if (unassigned.test(a.neighbor) && !cluster.contains(a.neighbor))
            candidates.push_back(a.neighbor);
      });
      std::sort(candidates.begin(), candidates.end());
      candidates.erase(std::unique(candidates.begin(), candidates.end()),
                       candidates.end());
      for (BlockId cand : candidates) {
        cluster.add(cand);
        if (fits(cluster.io(), spec)) {
          grew = true;
          break;  // accept the first neighbor that fits (no look-ahead)
        }
        cluster.remove(cand);
      }
    }
    if (cluster.memberCount() >= 2)
      run.result.partitions.push_back(cluster.members());
    unassigned.andNot(cluster.members());
  }

  run.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return run;
}

}  // namespace eblocks::partition
