// The eBlock partitioning problem (Section 4).
//
// Given a network G=(V,E) with sensor blocks as primary inputs and output
// blocks as primary outputs, find disjoint subgraphs of inner blocks such
// that each subgraph (1) uses at most i inputs and o outputs of a
// programmable block, (2) is replaceable by a programmable block with
// equivalent functionality, and (3) the number of inner blocks after
// replacement (#unreplaced + #programmable) is minimized.  Single-node
// subgraphs are invalid: replacing one pre-defined block by one (slightly
// costlier) programmable block yields no reduction.
#ifndef EBLOCKS_PARTITION_PROBLEM_H_
#define EBLOCKS_PARTITION_PROBLEM_H_

#include <vector>

#include "core/levels.h"
#include "core/network.h"
#include "core/subgraph.h"
#include "partition/compact_graph.h"

namespace eblocks::partition {

/// Capabilities of the programmable block used for replacement.  The
/// paper's experiments assume two inputs and two outputs.
struct ProgBlockSpec {
  int inputs = 2;
  int outputs = 2;
  /// How port usage is counted (kEdges reproduces the paper's Figure 5).
  CountingMode mode = CountingMode::kEdges;
};

/// An analyzed problem instance: the network plus precomputed inner-block
/// universe and levels.  The network must outlive the problem.
class PartitionProblem {
 public:
  PartitionProblem(const Network& net, ProgBlockSpec spec);

  const Network& network() const { return *net_; }
  const ProgBlockSpec& spec() const { return spec_; }

  /// The flat CSR view every kernel walk uses (see compact_graph.h);
  /// built once here so PareDown, aggregation, and every branch-and-
  /// bound bin share one copy.
  const CompactGraph& graph() const { return graph_; }

  /// Inner blocks: the replaceable pre-defined compute blocks.
  const std::vector<BlockId>& innerBlocks() const { return inner_; }
  const BitSet& innerSet() const { return innerSet_; }
  int innerCount() const { return static_cast<int>(inner_.size()); }

  /// Level of every block (max distance from any sensor); the PareDown
  /// removal tiebreak and the code generator both use this.
  const std::vector<int>& levels() const { return levels_; }

 private:
  const Network* net_;
  ProgBlockSpec spec_;
  CompactGraph graph_;
  std::vector<BlockId> inner_;
  BitSet innerSet_;
  std::vector<int> levels_;
};

}  // namespace eblocks::partition

#endif  // EBLOCKS_PARTITION_PROBLEM_H_
