#include "partition/fm_refine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <vector>

#include "partition/port_counter.h"
#include "partition/validity.h"

namespace eblocks::partition {

namespace {

constexpr long long kNoEntry = std::numeric_limits<long long>::min();
constexpr int kDetach = -1;  // move target: a fresh singleton bin

/// The objective seen by the refiner: scaled-integer cost of one bin.
/// fitsBin() is the feasibility test for bins of >= 2 members (empty and
/// singleton bins are always feasible -- a singleton is just an
/// uncovered block paying its pre-defined cost).
class CostAdapter {
 public:
  virtual ~CostAdapter() = default;
  virtual bool fitsBin(const IoCount& io) const = 0;
  virtual long long binCost(const IoCount& io, int size) const = 0;
};

/// Plain problem: (#bins, port-sum) lexicographic via W-scaling.  W
/// exceeds any possible whole-solution port-sum, so minimizing the
/// scaled total minimizes the paper's "inner blocks after replacement"
/// first and crossing ports second.
class PlainCost final : public CostAdapter {
 public:
  PlainCost(const ProgBlockSpec& spec, long long w) : spec_(spec), w_(w) {}
  bool fitsBin(const IoCount& io) const override { return fits(io, spec_); }
  long long binCost(const IoCount& io, int size) const override {
    if (size == 0) return 0;
    if (size == 1) return w_;
    return w_ + io.inputs + io.outputs;
  }

 private:
  ProgBlockSpec spec_;
  long long w_;
};

/// Multi-type problem: the cost model itself, in 1/1024ths of a cost
/// unit so the integer total tracks TypedPartitioning::totalCost exactly
/// up to rounding.
class TypedCost final : public CostAdapter {
 public:
  explicit TypedCost(const ProgCostModel& model)
      : model_(&model),
        preDefScaled_(std::llround(model.preDefinedBlockCost * 1024.0)) {}
  bool fitsBin(const IoCount& io) const override {
    return cheapestFittingOption(io, *model_).has_value();
  }
  long long binCost(const IoCount& io, int size) const override {
    if (size == 0) return 0;
    if (size == 1) return preDefScaled_;
    const std::optional<int> opt = cheapestFittingOption(io, *model_);
    // The refiner never forms a bin no option fits; a desynced caller
    // would have tripped the feasibility probes long before this.
    return std::llround(model_->options[*opt].cost * 1024.0);
  }

 private:
  const ProgCostModel* model_;
  long long preDefScaled_;
};

struct Move {
  long long gain = 0;
  int target = kDetach;
  bool feasible = false;
};

/// The shared pass engine (see the header comment for the algorithm).
class Refiner {
 public:
  Refiner(const CompactGraph& graph, CountingMode mode,
          const CostAdapter& cost)
      : graph_(&graph),
        mode_(mode),
        cost_(&cost),
        binOf_(graph.blockCount(), -1),
        entryGain_(graph.blockCount(), kNoEntry),
        locked_(graph.blockCount(), 0),
        binStamp_() {}

  /// Installs a solution: the given member sets become bins, every inner
  /// block outside them becomes a singleton bin.
  void load(const std::vector<BitSet>& partitions) {
    for (auto& bin : bins_)
      if (bin) bin->clear();
    freeBins_.clear();
    for (int i = 0; i < static_cast<int>(bins_.size()); ++i)
      freeBins_.push_back(i);
    std::fill(binOf_.begin(), binOf_.end(), -1);
    total_ = 0;
    for (const BitSet& members : partitions) {
      const int q = newBin();
      members.forEach([&](std::size_t b) {
        bins_[q]->add(static_cast<BlockId>(b));
        binOf_[b] = q;
      });
      total_ += cost_->binCost(bins_[q]->io(), bins_[q]->memberCount());
    }
    for (const BlockId b : graph_->innerBlocks()) {
      if (binOf_[b] >= 0) continue;
      const int q = newBin();
      bins_[q]->add(b);
      binOf_[b] = q;
      total_ += cost_->binCost(bins_[q]->io(), 1);
    }
  }

  long long totalCost() const { return total_; }
  std::uint64_t probes() const { return probes_; }

  /// Runs passes until one fails to improve (or maxPasses).  Returns the
  /// number of passes run.
  int refine(int maxPasses) {
    int passes = 0;
    while (maxPasses == 0 || passes < maxPasses) {
      ++passes;
      if (!pass()) break;
    }
    return passes;
  }

  /// The current bins of >= 2 members, sorted by lowest member id.
  std::vector<BitSet> partitions() const {
    std::vector<BitSet> out;
    for (const auto& bin : bins_)
      if (bin && bin->memberCount() >= 2) out.push_back(bin->members());
    std::sort(out.begin(), out.end(), [](const BitSet& a, const BitSet& b) {
      return a.findFirst() < b.findFirst();
    });
    return out;
  }

 private:
  int newBin() {
    if (!freeBins_.empty()) {
      const int q = freeBins_.back();
      freeBins_.pop_back();
      return q;
    }
    bins_.push_back(std::make_unique<PortCounter>(*graph_, mode_));
    binStamp_.push_back(0);
    return static_cast<int>(bins_.size()) - 1;
  }

  /// Target bins of `b`: the bins of its CSR neighbors, deduped,
  /// ascending, excluding its own.
  void collectTargets(BlockId b) {
    targets_.clear();
    ++stamp_;
    const int own = binOf_[b];
    const auto consider = [&](BlockId nb) {
      const int q = binOf_[nb];
      if (q < 0 || q == own || binStamp_[q] == stamp_) return;
      binStamp_[q] = stamp_;
      targets_.push_back(q);
    };
    for (const CompactArc& a : graph_->inArcs(b)) consider(a.neighbor);
    for (const CompactArc& a : graph_->outArcs(b)) consider(a.neighbor);
    std::sort(targets_.begin(), targets_.end());
  }

  /// Probes every candidate move of `b` and returns the best (highest
  /// gain; ties toward the lowest target bin index, detach last).
  Move bestMove(BlockId b) {
    const int p = binOf_[b];
    PortCounter& src = *bins_[p];
    const int psize = src.memberCount();
    const long long oldP = cost_->binCost(src.io(), psize);
    // Source-after-removal probe: I/O is not monotone under removal, so
    // the shrunk bin must re-prove it still fits.
    ++probes_;
    src.remove(b);
    const bool srcOk = psize - 1 < 2 || cost_->fitsBin(src.io());
    // Cost the shrunk bin only once it has re-proved feasibility: under
    // the typed model binCost on an infeasible bin has no answer.
    const long long newP = srcOk ? cost_->binCost(src.io(), psize - 1) : 0;
    src.add(b);
    Move best;
    if (!srcOk) return best;
    collectTargets(b);
    for (const int q : targets_) {
      PortCounter& dst = *bins_[q];
      const long long oldQ = cost_->binCost(dst.io(), dst.memberCount());
      ++probes_;
      dst.add(b);
      const bool ok = cost_->fitsBin(dst.io());
      const long long newQ =
          ok ? cost_->binCost(dst.io(), dst.memberCount()) : 0;
      dst.remove(b);
      if (!ok) continue;
      const long long gain = oldP + oldQ - newP - newQ;
      if (!best.feasible || gain > best.gain) best = {gain, q, true};
    }
    if (psize >= 2) {
      // Detach into a fresh singleton (back to uncovered).
      const long long gain = oldP - newP - cost_->binCost(IoCount{}, 1);
      if (!best.feasible || gain > best.gain) best = {gain, kDetach, true};
    }
    return best;
  }

  void file(BlockId b) {
    const Move m = bestMove(b);
    if (m.feasible) {
      entryGain_[b] = m.gain;
      buckets_[m.gain].push_back(b);
    } else {
      entryGain_[b] = kNoEntry;
    }
  }

  /// Pops the best valid entry: greatest gain bucket, lowest block id.
  /// Stale entries (gain no longer current, or block locked) are
  /// discarded along the way.  Returns kNoBlock when the queue is dry.
  BlockId pop(long long* key) {
    while (!buckets_.empty()) {
      const auto top = buckets_.begin();
      std::vector<BlockId>& bucket = top->second;
      BlockId best = kNoBlock;
      std::size_t w = 0;
      for (const BlockId b : bucket) {
        if (locked_[b] || entryGain_[b] != top->first) continue;  // stale
        bucket[w++] = b;
        if (best == kNoBlock || b < best) best = b;
      }
      bucket.resize(w);
      if (best == kNoBlock) {
        buckets_.erase(top);
        continue;
      }
      bucket.erase(std::find(bucket.begin(), bucket.end(), best));
      *key = top->first;
      if (bucket.empty()) buckets_.erase(top);
      return best;
    }
    return kNoBlock;
  }

  void apply(BlockId b, const Move& m) {
    const int p = binOf_[b];
    PortCounter& src = *bins_[p];
    const long long oldP = cost_->binCost(src.io(), src.memberCount());
    src.remove(b);
    total_ += cost_->binCost(src.io(), src.memberCount()) - oldP;
    if (src.memberCount() == 0) freeBins_.push_back(p);
    const int q = m.target == kDetach ? newBin() : m.target;
    PortCounter& dst = *bins_[q];
    const long long oldQ = cost_->binCost(dst.io(), dst.memberCount());
    dst.add(b);
    total_ += cost_->binCost(dst.io(), dst.memberCount()) - oldQ;
    binOf_[b] = q;
  }

  /// Re-files every unlocked block whose best gain the move may have
  /// changed: both touched bins' members plus the mover's neighbors.
  void refileAffected(BlockId b, int fromBin) {
    ++stamp2_;
    const auto touch = [&](BlockId x) {
      if (locked_[x] || blockStamp_[x] == stamp2_) return;
      blockStamp_[x] = stamp2_;
      file(x);
    };
    if (fromBin >= 0)
      bins_[fromBin]->members().forEach(
          [&](std::size_t x) { touch(static_cast<BlockId>(x)); });
    bins_[binOf_[b]]->members().forEach(
        [&](std::size_t x) { touch(static_cast<BlockId>(x)); });
    for (const CompactArc& a : graph_->inArcs(b))
      if (binOf_[a.neighbor] >= 0) touch(a.neighbor);
    for (const CompactArc& a : graph_->outArcs(b))
      if (binOf_[a.neighbor] >= 0) touch(a.neighbor);
  }

  /// Snapshot of the full assignment (every non-empty bin, singletons
  /// included) -- rollback-to-best-prefix reloads the cheapest one.
  std::vector<BitSet> snapshot() const {
    std::vector<BitSet> out;
    for (const auto& bin : bins_)
      if (bin && bin->memberCount() > 0) out.push_back(bin->members());
    return out;
  }

  bool pass() {
    if (blockStamp_.size() != graph_->blockCount())
      blockStamp_.assign(graph_->blockCount(), 0);
    std::fill(locked_.begin(), locked_.end(), 0);
    buckets_.clear();
    std::fill(entryGain_.begin(), entryGain_.end(), kNoEntry);
    for (const BlockId b : graph_->innerBlocks()) file(b);

    const long long startCost = total_;
    long long bestCost = total_;
    std::vector<BitSet> bestState = snapshot();
    while (true) {
      long long key = 0;
      const BlockId b = pop(&key);
      if (b == kNoBlock) break;
      const Move m = bestMove(b);
      if (!m.feasible) {
        entryGain_[b] = kNoEntry;
        continue;
      }
      if (m.gain != key) {  // stale: re-file at the fresh gain
        entryGain_[b] = m.gain;
        buckets_[m.gain].push_back(b);
        continue;
      }
      const int fromBin = binOf_[b];
      apply(b, m);
      locked_[b] = 1;
      entryGain_[b] = kNoEntry;
      if (total_ < bestCost) {
        bestCost = total_;
        bestState = snapshot();
      }
      refileAffected(b, fromBin);
    }
    // Roll back to the best prefix of the move sequence.
    load(bestState);
    return bestCost < startCost;
  }

  const CompactGraph* graph_;
  CountingMode mode_;
  const CostAdapter* cost_;
  std::vector<std::unique_ptr<PortCounter>> bins_;
  std::vector<int> freeBins_;
  std::vector<int> binOf_;
  long long total_ = 0;
  std::uint64_t probes_ = 0;
  // Pass state.
  std::map<long long, std::vector<BlockId>, std::greater<long long>> buckets_;
  std::vector<long long> entryGain_;
  std::vector<char> locked_;
  // Dedup stamps: per-bin for target collection, per-block for refiling.
  std::vector<std::uint32_t> binStamp_;
  std::uint32_t stamp_ = 0;
  std::vector<std::uint32_t> blockStamp_;
  std::uint32_t stamp2_ = 0;
  std::vector<int> targets_;
};

}  // namespace

PartitionRun fmRefine(const PartitionProblem& problem,
                      const Partitioning& initial, const FmOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  const ProgBlockSpec& spec = problem.spec();
  // W > any possible whole-solution port-sum, so #bins dominates.
  const long long w =
      static_cast<long long>(problem.innerCount() + 1) *
          (spec.inputs + spec.outputs) +
      1;
  const PlainCost cost(spec, w);
  Refiner refiner(problem.graph(), spec.mode, cost);
  refiner.load(initial.partitions);
  refiner.refine(options.maxPasses);

  PartitionRun run;
  run.algorithm = "fm";
  run.result.partitions = refiner.partitions();
  run.explored = refiner.probes();
  run.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return run;
}

TypedPartitionRun multiTypeFmRefine(const Network& net,
                                    const ProgCostModel& model,
                                    const TypedPartitioning& initial,
                                    const FmOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  const CompactGraph graph(net);
  const TypedCost cost(model);
  Refiner refiner(graph, model.mode, cost);
  refiner.load(initial.partitions);
  refiner.refine(options.maxPasses);

  TypedPartitionRun run;
  run.algorithm = "multitype-fm";
  run.result.partitions = refiner.partitions();
  for (const BitSet& members : run.result.partitions)
    run.result.optionIndex.push_back(
        *cheapestFittingOption(net, members, model));
  run.explored = refiner.probes();
  run.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return run;
}

}  // namespace eblocks::partition
