// Large-neighborhood search: destroy a pocket of blocks, re-solve it
// exactly, accept improvements, repeat until the anytime budget runs out.
//
// Each round picks a pocket of ~pocketSize inner blocks by BFS from a
// start block (boundary-biased: rounds alternate between starting at an
// uncovered block -- the blocks a better solution must pair up -- and a
// uniformly random inner block).  The BFS absorbs *whole bins*, so the
// pocket is always a union of complete partitions plus uncovered blocks,
// and the rest of the solution is untouched by construction.
//
// The pocket is then re-solved with the existing branch-and-bound as the
// repair oracle.  The pocket is lifted into a stub subnetwork that
// reproduces its port-counting environment exactly, in both modes:
//   - one stub sensor per distinct outside source endpoint feeding the
//     pocket, wired per original connection (kEdges sees the same
//     crossing-connection counts; kSignals the same distinct sources);
//   - one stub output block per boundary out-connection (kEdges exact;
//     kSignals collapses to distinct member endpoints, as the original
//     outside consumers would);
//   - pocket-internal connections mirrored verbatim.
// Outside blocks can never join a pocket bin, so treating them as
// non-inner stubs is exact, not an approximation: any repair of the stub
// problem scores identically when mapped back.  The repair search runs
// serially, seeded with the current pocket solution and clipped by
// ExhaustiveOptions::nodeBudget, so a round costs bounded, deterministic
// work and can never return worse than what it destroyed; strictly
// better pocket solutions are accepted (monotone descent on the paper's
// objective).
//
// Anytime contract: lnsSearch honors a wall-clock deadline, stops early
// after a stall streak, and returns the best solution found.  A round
// whose pocket covered *every* inner block and whose repair ran to
// completion is a completed exact search -- run.optimal is set, which is
// how `lns` with a generous budget proves optimality on small designs.
//
// Determinism: the destroy RNG is a fixed xorshift seeded from
// LnsOptions::rngSeed and every repair is serial, so a run that is not
// cut off mid-round by the wall clock replays identically.
#ifndef EBLOCKS_PARTITION_LNS_H_
#define EBLOCKS_PARTITION_LNS_H_

#include <atomic>
#include <cstdint>

#include "partition/problem.h"
#include "partition/result.h"

namespace eblocks::partition {

struct LnsOptions {
  /// Wall-clock budget for the whole search; <= 0 disables the clock
  /// (rounds/stall limits then bound the run).
  double timeLimitSeconds = 60.0;
  /// Blocks per destroyed pocket; 0 = auto (12, clamped to the design).
  /// >= the design's inner count turns each round into a full exact
  /// search seeded by the incumbent.
  int pocketSize = 0;
  /// Destroy/repair rounds; 0 = until the time limit or stall limit.
  int maxRounds = 0;
  /// Consecutive non-improving rounds before giving up; 0 = never stall
  /// out.
  int stallRounds = 64;
  /// Node budget per repair search (ExhaustiveOptions::nodeBudget).
  std::uint64_t repairNodeBudget = 200000;
  /// Seed of the destroy RNG.
  std::uint32_t rngSeed = 1;
  /// Cooperative cancellation (ExhaustiveOptions::cancel): checked at
  /// every round boundary and forwarded into each repair search, so a
  /// cancelled run stops within one repair granule and returns the best
  /// solution so far with run.timedOut = true.
  const std::atomic<bool>* cancel = nullptr;
  /// Live telemetry (ExhaustiveOptions::progressNodes): forwarded into
  /// the repair searches, which add their explored nodes in 4096-node
  /// granules.
  std::atomic<std::uint64_t>* progressNodes = nullptr;
};

/// Runs the search from `initial` (which must be verifyPartitioning-
/// clean; typically fm's output).  `run.explored` sums the repair
/// searches' explored nodes; `run.timedOut` reports whether the wall
/// clock (rather than convergence or optimality) ended the run.
PartitionRun lnsSearch(const PartitionProblem& problem,
                       const Partitioning& initial,
                       const LnsOptions& options = {});

}  // namespace eblocks::partition

#endif  // EBLOCKS_PARTITION_LNS_H_
