#include "partition/result.h"

namespace eblocks::partition {

int Partitioning::coveredBlocks() const {
  int covered = 0;
  for (const BitSet& p : partitions) covered += static_cast<int>(p.count());
  return covered;
}

}  // namespace eblocks::partition
