#include "partition/verify.h"

#include "partition/validity.h"

namespace eblocks::partition {

namespace {

std::string setToString(const Network& net, const BitSet& members) {
  std::string s = "{";
  bool first = true;
  members.forEach([&](std::size_t b) {
    if (!first) s += ", ";
    first = false;
    s += net.block(static_cast<BlockId>(b)).name;
  });
  return s + "}";
}

}  // namespace

std::vector<std::string> verifyPartitioning(const PartitionProblem& problem,
                                            const Partitioning& partitioning,
                                            const VerifyOptions& options) {
  std::vector<std::string> problems;
  const Network& net = problem.network();
  BitSet seen = net.emptySet();
  for (std::size_t i = 0; i < partitioning.partitions.size(); ++i) {
    const BitSet& p = partitioning.partitions[i];
    const std::string label =
        "partition #" + std::to_string(i) + " " + setToString(net, p);
    if (p.count() < 2)
      problems.push_back(label + ": fewer than two members");
    p.forEach([&](std::size_t bi) {
      const BlockId b = static_cast<BlockId>(bi);
      if (!net.isInner(b))
        problems.push_back(label + ": member '" + net.block(b).name +
                           "' is not an inner block");
      if (seen.test(bi))
        problems.push_back(label + ": member '" + net.block(b).name +
                           "' already belongs to another partition");
      seen.set(bi);
    });
    const IoCount io = countIo(net, p, problem.spec().mode);
    if (io.inputs > problem.spec().inputs)
      problems.push_back(label + ": uses " + std::to_string(io.inputs) +
                         " inputs > " + std::to_string(problem.spec().inputs));
    if (io.outputs > problem.spec().outputs)
      problems.push_back(label + ": uses " + std::to_string(io.outputs) +
                         " outputs > " +
                         std::to_string(problem.spec().outputs));
    if (options.requireConvex && !isConvex(net, p))
      problems.push_back(label + ": not convex (a path leaves and re-enters)");
  }
  return problems;
}

}  // namespace eblocks::partition
