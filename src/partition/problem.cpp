#include "partition/problem.h"

namespace eblocks::partition {

PartitionProblem::PartitionProblem(const Network& net, ProgBlockSpec spec)
    : net_(&net),
      spec_(spec),
      graph_(net),
      inner_(net.innerBlocks()),
      innerSet_(net.innerSet()),
      levels_(computeLevels(net)) {}

}  // namespace eblocks::partition
