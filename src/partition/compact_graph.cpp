#include "partition/compact_graph.h"

#include "core/block.h"

namespace eblocks::partition {

CompactGraph::CompactGraph(const Network& net)
    : blockCount_(net.blockCount()),
      inOff_(net.blockCount() + 1, 0),
      outOff_(net.blockCount() + 1, 0),
      endpointBase_(net.blockCount(), 0),
      innerIndex_(net.blockCount(), -1),
      nonInner_(net.blockCount()) {
  // Endpoint ids: one per (block, output port), assigned in (block,
  // port) order -- deterministic and O(1) to look up.
  for (BlockId b = 0; b < blockCount_; ++b) {
    endpointBase_[b] = static_cast<std::uint32_t>(endpointCount_);
    endpointCount_ +=
        static_cast<std::size_t>(net.block(b).type->outputCount());
  }

  // Offsets, then a fill pass: in-arc stripes first, out-arc stripes
  // after them, both in Network's per-block connection order.
  std::size_t total = 0;
  for (BlockId b = 0; b < blockCount_; ++b) {
    inOff_[b] = static_cast<std::uint32_t>(total);
    total += net.inputsOf(b).size();
  }
  inOff_[blockCount_] = static_cast<std::uint32_t>(total);
  for (BlockId b = 0; b < blockCount_; ++b) {
    outOff_[b] = static_cast<std::uint32_t>(total);
    total += net.outputsOf(b).size();
  }
  outOff_[blockCount_] = static_cast<std::uint32_t>(total);
  arcs_.resize(total);
  for (BlockId b = 0; b < blockCount_; ++b) {
    CompactArc* in = arcs_.data() + inOff_[b];
    for (const Connection& c : net.inputsOf(b))
      *in++ = {c.from.block, endpointId(c.from)};
    CompactArc* out = arcs_.data() + outOff_[b];
    for (const Connection& c : net.outputsOf(b))
      *out++ = {c.to.block, endpointId(c.from)};
  }

  for (BlockId b = 0; b < blockCount_; ++b) {
    if (net.isInner(b)) {
      innerIndex_[b] = static_cast<std::int32_t>(inner_.size());
      inner_.push_back(b);
    } else {
      nonInner_.set(b);
    }
  }
}

}  // namespace eblocks::partition
