// Exhaustive search over block-to-programmable-block assignments
// (Section 4.1).
//
// The search space is every combination of the n inner blocks into up to n
// programmable blocks, where a combination need not use every block.  As
// in the paper we prune symmetric branches: all empty programmable blocks
// are indistinguishable, so opening "a new bin" is a single choice.  We
// additionally apply two sound prunings that do not affect optimality:
//   - cost bound: open bins + uncovered blocks already meets/exceeds the
//     best known cost;
//   - irreducible I/O: connections between a bin and non-inner blocks
//     (sensors, outputs, communication blocks) can never be internalized
//     by adding more members, so a bin whose non-inner I/O alone exceeds
//     the port budget is dead (edge-counting mode only).
// An optional initial solution (e.g. PareDown's) seeds the bound.
//
// On top of those, ExhaustiveOptions::pruningBound (default on) enables
// the admissible lower-bound layer: per-bin *irreducible* crossing I/O
// (signals to non-inner blocks and to blocks the search already fixed
// elsewhere -- maintained incrementally by PortCounter's frozen-set
// tracking, sound in both counting modes) kills subtrees whose bins can
// no longer fit any completion, and a per-block unbinnable floor adds
// the cost every remaining unplaceable block must pay.  The bound is
// admissible (never exceeds the cost of any valid completion), so
// results stay bit-identical to the unpruned search; see
// docs/partitioning.md for the derivation and soundness argument.
//
// With threads != 1 the search runs as a parallel branch-and-bound.
// Workers share the incumbent bound through an atomic packed
// (cost, DFS-ordinal) key, and every subtree handed to a worker carries a
// DFS-ordinal range, so a *completed* search returns a partitioning
// bit-identical to the serial search's, on every run at every thread
// count -- under either scheduler (see scheduler.h and
// docs/partitioning.md): the default work-stealing scheduler splits
// subtrees on demand when workers starve, while kFixedSplit reproduces
// the original one-shot fixed-depth split.  Only a run that hits the
// time limit is scheduling-dependent: workers stop at whatever node they
// reach, so the (still feasible, timedOut-flagged) best-so-far may
// differ between runs -- exactly as two serial runs with different time
// budgets may.
#ifndef EBLOCKS_PARTITION_EXHAUSTIVE_H_
#define EBLOCKS_PARTITION_EXHAUSTIVE_H_

#include <atomic>
#include <optional>

#include "partition/problem.h"
#include "partition/result.h"
#include "partition/scheduler.h"

namespace eblocks::partition {

struct ExhaustiveOptions {
  /// Wall-clock budget; exceeded -> run.timedOut = true and the best
  /// solution found so far is returned.  <= 0 disables the limit.
  double timeLimitSeconds = 0.0;
  /// Require every partition to be convex (the classical DAG-covering
  /// constraint).  Off by default: the packet protocol keeps non-convex
  /// replacements behaviorally equivalent (see validity.h), and PareDown
  /// itself can produce non-convex partitions in later rounds.
  bool requireConvex = false;
  /// Additionally require the replaced network to stay acyclic at the
  /// block level.  The packet protocol tolerates benign block-level
  /// cycles, so this defaults off; see the ablation bench.
  bool requireAcyclicQuotient = false;
  /// Seed the branch-and-bound with a known solution (commonly PareDown's).
  /// Purely an accelerator: never changes the optimum found.
  std::optional<Partitioning> seed;
  /// Abort after (approximately) this many explored nodes, returning the
  /// best solution so far with run.timedOut = true -- the LNS repair
  /// oracle's budget (lns.h).  Checked at the same 4096-node cadence as
  /// the wall clock, so the effective budget rounds up to that granule
  /// and a serial run aborts at a machine-independent node.  0 = no
  /// budget.
  std::uint64_t nodeBudget = 0;
  /// Worker threads for the branch-and-bound.  0 = one per hardware
  /// thread (std::thread::hardware_concurrency), 1 = the original serial
  /// search.  Every thread count returns the identical result unless the
  /// time limit cuts the search short (see the header comment).
  int threads = 0;
  /// How subtrees are distributed over workers (threads != 1 only).
  /// Both schedulers return the identical result; work-stealing
  /// rebalances unbalanced trees that starve the fixed split.
  SearchScheduler scheduler = SearchScheduler::kWorkStealing;
  /// Admissible lower-bound pruning (see the header comment).  Purely an
  /// accelerator: the result is bit-identical with it on or off, at
  /// every thread count, under both schedulers, in both counting modes.
  /// Off exists for measurement (bench_exhaustive_blowup ablates it) and
  /// as the equivalence-test baseline.
  bool pruningBound = true;
  /// Cooperative cancellation: when non-null and set, the search stops at
  /// its next periodic check -- the same 4096-node cadence as the wall
  /// clock -- and returns the best solution so far with
  /// run.timedOut = true, exactly as if the time limit had expired.  The
  /// flag is owned by the caller (the synthesis daemon flips it when a
  /// client cancels or disconnects) and is only ever read here.
  const std::atomic<bool>* cancel = nullptr;
  /// Live search-effort telemetry: when non-null, workers add their
  /// explored nodes to this counter in the same 4096-node granules as
  /// the budget accounting, so an observer (the daemon's progress ticks)
  /// can read approximate progress without touching the search.  The
  /// counter is add-only here; the caller zeroes it.
  std::atomic<std::uint64_t>* progressNodes = nullptr;
};

/// Runs the exhaustive search.  `run.optimal` is true iff the search
/// completed within the time limit.
PartitionRun exhaustiveSearch(const PartitionProblem& problem,
                              const ExhaustiveOptions& options = {});

/// The thread count `threads = 0` resolves to (>= 1).
int resolveSearchThreads(int threads);

}  // namespace eblocks::partition

#endif  // EBLOCKS_PARTITION_EXHAUSTIVE_H_
