// Exhaustive search over block-to-programmable-block assignments
// (Section 4.1).
//
// The search space is every combination of the n inner blocks into up to n
// programmable blocks, where a combination need not use every block.  As
// in the paper we prune symmetric branches: all empty programmable blocks
// are indistinguishable, so opening "a new bin" is a single choice.  We
// additionally apply two sound prunings that do not affect optimality:
//   - cost bound: open bins + uncovered blocks already meets/exceeds the
//     best known cost;
//   - irreducible I/O: connections between a bin and non-inner blocks
//     (sensors, outputs, communication blocks) can never be internalized
//     by adding more members, so a bin whose non-inner I/O alone exceeds
//     the port budget is dead (edge-counting mode only).
// An optional initial solution (e.g. PareDown's) seeds the bound.
#ifndef EBLOCKS_PARTITION_EXHAUSTIVE_H_
#define EBLOCKS_PARTITION_EXHAUSTIVE_H_

#include <optional>

#include "partition/problem.h"
#include "partition/result.h"

namespace eblocks::partition {

struct ExhaustiveOptions {
  /// Wall-clock budget; exceeded -> run.timedOut = true and the best
  /// solution found so far is returned.  <= 0 disables the limit.
  double timeLimitSeconds = 0.0;
  /// Require every partition to be convex (the classical DAG-covering
  /// constraint).  Off by default: the packet protocol keeps non-convex
  /// replacements behaviorally equivalent (see validity.h), and PareDown
  /// itself can produce non-convex partitions in later rounds.
  bool requireConvex = false;
  /// Additionally require the replaced network to stay acyclic at the
  /// block level.  The packet protocol tolerates benign block-level
  /// cycles, so this defaults off; see the ablation bench.
  bool requireAcyclicQuotient = false;
  /// Seed the branch-and-bound with a known solution (commonly PareDown's).
  /// Purely an accelerator: never changes the optimum found.
  std::optional<Partitioning> seed;
};

/// Runs the exhaustive search.  `run.optimal` is true iff the search
/// completed within the time limit.
PartitionRun exhaustiveSearch(const PartitionProblem& problem,
                              const ExhaustiveOptions& options = {});

}  // namespace eblocks::partition

#endif  // EBLOCKS_PARTITION_EXHAUSTIVE_H_
