#include "partition/ladder.h"

#include <chrono>
#include <limits>
#include <utility>

#include "partition/exhaustive.h"
#include "partition/fm_refine.h"
#include "partition/greedy_seed.h"
#include "partition/lns.h"
#include "partition/paredown.h"

namespace eblocks::partition {

namespace {

using Clock = std::chrono::steady_clock;

double elapsedSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

bool cancelled(const EngineOptions& options) {
  return options.cancel != nullptr &&
         options.cancel->load(std::memory_order_relaxed);
}

int costOf(const Partitioning& p, int innerCount) {
  return p.totalAfter(innerCount);
}

}  // namespace

PartitionRun degradationLadder(const PartitionProblem& problem,
                               const EngineOptions& options) {
  const auto start = Clock::now();
  const double limit = options.timeLimitSeconds;
  const bool unlimited = limit <= 0.0;
  const auto remaining = [&] {
    return unlimited ? std::numeric_limits<double>::infinity()
                     : limit - elapsedSince(start);
  };
  const int inner = problem.innerCount();

  // Rung 1: greedy.  Unconditional -- the feasibility floor.
  PartitionRun best = greedySeed(problem);
  std::string tier = "greedy";
  std::uint64_t explored = best.explored;
  std::uint64_t pruned = best.pruned;

  // Rung 2: fm, if the deadline has anything left.
  if (!cancelled(options) && remaining() > 0.0) {
    PartitionRun refined = fmRefine(problem, best.result);
    explored += refined.explored;
    pruned += refined.pruned;
    best.result = std::move(refined.result);
    best.seconds += refined.seconds;
    tier = "fm";
  }

  // Rung 3: lns, on roughly half of what remains (never starving the
  // exact rung below; irrelevant when unlimited -- lns then runs to its
  // own stall/round limits, which is still finite).
  if (!cancelled(options) && remaining() > 0.0) {
    LnsOptions lns;
    lns.timeLimitSeconds = unlimited ? 0.0 : remaining() * 0.5;
    lns.pocketSize = options.lnsPocket;
    lns.maxRounds = options.lnsRounds;
    lns.repairNodeBudget = options.lnsRepairNodes;
    lns.rngSeed = options.rngSeed;
    lns.cancel = options.cancel;
    lns.progressNodes = options.progressNodes;
    PartitionRun searched = lnsSearch(problem, best.result, lns);
    explored += searched.explored;
    pruned += searched.pruned;
    // lnsSearch never returns worse than its seed.
    best.result = std::move(searched.result);
    best.seconds += searched.seconds;
    tier = "lns";
  }

  // Rung 4: the exact branch-and-bound, warm-started with the cheapest
  // known incumbent, on every remaining second.
  bool optimal = false;
  if (!cancelled(options) && remaining() > 0.0) {
    ExhaustiveOptions ex;
    ex.timeLimitSeconds = unlimited ? 0.0 : remaining();
    ex.requireConvex = options.requireConvex;
    ex.threads = options.threads;
    ex.scheduler = options.scheduler;
    ex.pruningBound = options.pruningBound;
    ex.cancel = options.cancel;
    ex.progressNodes = options.progressNodes;
    ex.seed = best.result;
    if (options.seedFromPareDown) {
      const PartitionRun pd = pareDown(problem);
      if (costOf(pd.result, inner) < costOf(*ex.seed, inner))
        ex.seed = pd.result;
    }
    if (options.initialIncumbent &&
        costOf(*options.initialIncumbent, inner) < costOf(*ex.seed, inner))
      ex.seed = options.initialIncumbent;
    PartitionRun exact = exhaustiveSearch(problem, ex);
    explored += exact.explored;
    pruned += exact.pruned;
    // The search's incumbent starts at the seed, so its answer is never
    // worse than the heuristic rungs'.  Attribute the tier honestly:
    // a timed-out B&B that only echoed its seed did not improve it.
    if (exact.optimal) {
      optimal = true;
      tier.clear();
    } else if (costOf(exact.result, inner) < costOf(best.result, inner)) {
      tier = "exact-anytime";
    }
    best.workerExplored = std::move(exact.workerExplored);
    best.workerPruned = std::move(exact.workerPruned);
    best.result = std::move(exact.result);
  }

  best.algorithm = "ladder";
  best.degradedTier = tier;
  best.optimal = optimal;
  best.timedOut = !optimal;
  best.explored = explored;
  best.pruned = pruned;
  best.seconds = elapsedSince(start);
  return best;
}

}  // namespace eblocks::partition
