// Candidate-partition validity: the "fits in a programmable block" test.
#ifndef EBLOCKS_PARTITION_VALIDITY_H_
#define EBLOCKS_PARTITION_VALIDITY_H_

#include "core/subgraph.h"
#include "partition/problem.h"

namespace eblocks::partition {

/// True when the given port usage fits the programmable block.  The
/// incremental algorithms test their PortCounter's io() with this.
inline bool fits(const IoCount& io, const ProgBlockSpec& spec) {
  return io.inputs <= spec.inputs && io.outputs <= spec.outputs;
}

/// True when the subgraph's port usage fits the programmable block
/// (inputs <= spec.inputs and outputs <= spec.outputs, under spec.mode).
/// Note: a single-node subgraph can fit yet still be an *invalid
/// partition*; that rule (|P| >= 2) is enforced by the algorithms and by
/// verifyPartitioning, not here.
bool fitsProgrammable(const Network& net, const BitSet& members,
                      const ProgBlockSpec& spec);

/// The irreducible I/O block `b` contributes to *any* bin containing it:
/// its connections (kEdges) or distinct signals (kSignals) to and from
/// non-inner blocks, which no member set can ever internalize.  A block
/// whose own irreducible I/O exceeds the port budget can be a member of
/// no feasible bin -- the static floor of the branch-and-bound's
/// admissible pruning bound (see exhaustive.h).
IoCount irreducibleBlockIo(const Network& net, BlockId b, CountingMode mode);

/// Full subgraph validity as required of a final partition: fits, has at
/// least two members, all members inner, and (optionally) convex.
///
/// Convexity is NOT required by default.  The paper never imposes it, and
/// in the eBlocks packet model a non-convex replacement stays behaviorally
/// equivalent: when a path leaves the partition and re-enters, the merged
/// block is simply re-activated by the returning packet, and emit-on-change
/// makes the interim evaluation idempotent.  (The classical DAG-covering
/// convexity constraint guards clocked combinational cycles, which do not
/// exist here.)  Pass `requireConvex = true` for the classical formulation;
/// the ablation bench compares both.
bool isValidPartition(const PartitionProblem& problem, const BitSet& members,
                      bool requireConvex = false);

}  // namespace eblocks::partition

#endif  // EBLOCKS_PARTITION_VALIDITY_H_
