// How the parallel branch-and-bound distributes search subtrees over
// worker threads.  Both schedulers preserve the deterministic
// (cost, DFS-ordinal) incumbent tie-break, so a *completed* search
// returns the bit-identical serial result under either of them at any
// thread count; they differ only in load balance (see exhaustive.h and
// docs/partitioning.md).
#ifndef EBLOCKS_PARTITION_SCHEDULER_H_
#define EBLOCKS_PARTITION_SCHEDULER_H_

#include <optional>
#include <string_view>

namespace eblocks::partition {

enum class SearchScheduler {
  /// Per-worker deques with on-demand subtree splitting: a worker that
  /// observes starved peers splits the shallowest unexplored level of its
  /// current subtree into stealable tasks, and starved workers steal half
  /// of the oldest (largest) tasks from a victim's deque.  Granularity
  /// adapts to the tree, so unbalanced trees cannot strand the whole
  /// remaining search on one worker.  The default.
  kWorkStealing,
  /// The original fixed-depth splitter: the tree is cut once, up front,
  /// at the shallowest depth that yields several subtrees per worker, and
  /// workers drain that fixed task list.  Balances well when tasks vastly
  /// outnumber workers, but one oversized subtree can starve the rest of
  /// the pool near the end of a run.  Kept for comparison
  /// (bench_parallel_speedup races the two).
  kFixedSplit,
};

constexpr const char* toString(SearchScheduler s) {
  return s == SearchScheduler::kWorkStealing ? "work-stealing"
                                             : "fixed-split";
}

/// Parses a scheduler name ("work-stealing"/"steal", "fixed-split"/
/// "split"); nullopt when unknown.
inline std::optional<SearchScheduler> parseScheduler(std::string_view name) {
  if (name == "work-stealing" || name == "steal")
    return SearchScheduler::kWorkStealing;
  if (name == "fixed-split" || name == "split")
    return SearchScheduler::kFixedSplit;
  return std::nullopt;
}

}  // namespace eblocks::partition

#endif  // EBLOCKS_PARTITION_SCHEDULER_H_
