#include "partition/paredown.h"

#include <chrono>

#include "partition/port_counter.h"
#include "partition/validity.h"

namespace eblocks::partition {

namespace {

/// Chooses the border block to remove: least rank, then greatest indegree,
/// then greatest outdegree, then highest level (paper Section 4.2), then
/// lowest id for full determinism.
BlockId chooseRemoval(const Network& net, const std::vector<int>& levels,
                      const std::vector<BlockId>& border,
                      const std::vector<int>& ranks) {
  BlockId best = border.front();
  int bestRank = ranks.front();
  for (std::size_t i = 1; i < border.size(); ++i) {
    const BlockId b = border[i];
    const int r = ranks[i];
    if (r != bestRank) {
      if (r < bestRank) { best = b; bestRank = r; }
      continue;
    }
    if (net.indegree(b) != net.indegree(best)) {
      if (net.indegree(b) > net.indegree(best)) best = b;
      continue;
    }
    if (net.outdegree(b) != net.outdegree(best)) {
      if (net.outdegree(b) > net.outdegree(best)) best = b;
      continue;
    }
    if (levels[b] != levels[best]) {
      if (levels[b] > levels[best]) best = b;
      continue;
    }
    // ids ascend during iteration, so `best` is already the lowest id.
  }
  return best;
}

}  // namespace

PartitionRun pareDown(const PartitionProblem& problem,
                      const PareDownOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  const Network& net = problem.network();
  const ProgBlockSpec& spec = problem.spec();

  PartitionRun run;
  run.algorithm = "paredown";

  BitSet blocks =
      options.restrictTo ? *options.restrictTo : problem.innerSet();
  // The candidate's port usage, border set, and removal ranks are all
  // maintained incrementally: each paring round removes one block, so the
  // counter update is O(degree) instead of a full countIo() /
  // borderBlocks() / removalRank() rescan of the member set per decision.
  // The counter walks the problem's shared CSR view (compact_graph.h).
  PortCounter candidate(problem.graph(), spec.mode, BorderTracking::kOn);
  PareDownStep step;  // reused across rounds; the buffers keep capacity
  while (blocks.any()) {
    candidate.assign(blocks);
    bool accepted = false;
    BlockId lastRemoved = kNoBlock;
    while (candidate.memberCount() > 0) {
      ++run.explored;
      step.border.clear();
      step.ranks.clear();
      step.removed = kNoBlock;  // step.candidate/io/fits are set below
      step.io = candidate.io();
      step.fits = fits(step.io, spec);
      if (options.trace) step.candidate = candidate.members();
      if (step.fits) {
        if (candidate.memberCount() > 1)
          run.result.partitions.push_back(candidate.members());
        // A single fitting block is dropped: replacing one pre-defined
        // block with one programmable block brings no reduction.
        blocks.andNot(candidate.members());
        accepted = true;
        if (options.trace) options.trace(step);
        break;
      }
      candidate.border().forEach([&](std::size_t b) {
        step.border.push_back(static_cast<BlockId>(b));
        step.ranks.push_back(candidate.rank(static_cast<BlockId>(b)));
      });
      if (step.border.empty()) {
        // Cannot happen on DAGs (a maximal-level member is always border),
        // but guard against pathological inputs: abandon this candidate.
        blocks.andNot(candidate.members());
        if (options.trace) options.trace(step);
        break;
      }
      step.removed =
          chooseRemoval(net, problem.levels(), step.border, step.ranks);
      lastRemoved = step.removed;
      candidate.remove(step.removed);
      if (options.trace) options.trace(step);
    }
    if (!accepted && candidate.memberCount() == 0) {
      // The candidate pared away entirely without ever fitting ("partition
      // contains zero blocks").
      if (options.strictFigure4) break;  // Figure 4 literally returns here
      // Robust default: the last surviving block is unpartitionable on its
      // own; retire it and keep decomposing the rest.
      blocks.reset(lastRemoved);
    }
  }

  run.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return run;
}

}  // namespace eblocks::partition
