// The PareDown decomposition heuristic (Section 4.2, Figure 4).
//
// PareDown starts with *all* inner blocks as one candidate partition and
// pares it down: while the candidate does not fit in a programmable block,
// it removes the border block with the least rank (the net increase or
// decrease of the candidate's combined indegree and outdegree caused by
// the removal).  Rank ties are broken by, in order: greatest indegree,
// greatest outdegree, highest level.  When a candidate fits it becomes a
// partition (unless it is a single block, which brings no reduction), and
// the algorithm repeats on the remaining blocks.  Total work is
// n*(n+1)/2 fit checks in the worst case: O(n^2).
#ifndef EBLOCKS_PARTITION_PAREDOWN_H_
#define EBLOCKS_PARTITION_PAREDOWN_H_

#include <functional>
#include <optional>
#include <vector>

#include "partition/problem.h"
#include "partition/result.h"

namespace eblocks::partition {

/// One decision point of the algorithm, for tracing/visualization (the
/// Figure-5 walkthrough test consumes this).
struct PareDownStep {
  BitSet candidate;             ///< candidate partition before the decision
  IoCount io;                   ///< port usage of the candidate
  bool fits = false;            ///< candidate fits the programmable block
  std::vector<BlockId> border;  ///< border blocks considered
  std::vector<int> ranks;       ///< rank of each border block (same order)
  BlockId removed = kNoBlock;   ///< block removed (kNoBlock if accepted)
};

struct PareDownOptions {
  /// Observer invoked at every decision point; keep cheap.
  std::function<void(const PareDownStep&)> trace;

  /// Figure 4's literal pseudocode *returns* when a candidate pares down to
  /// zero blocks, abandoning every block not yet partitioned.  That reading
  /// cannot reproduce the paper's own results (Table 2's smooth averages,
  /// the 465-node run): one unpartitionable block -- e.g. a three-input
  /// gate whose lone self does not fit a 2x2 block -- would zero out whole
  /// designs.  By default we drop just that block and continue (still
  /// O(n^2): every round retires at least one block); set this flag to get
  /// the literal behavior.
  bool strictFigure4 = false;

  /// Pare down only this subset of the problem's inner blocks (the
  /// default is all of them).  greedy_seed.cpp uses this to run PareDown
  /// on the residual its cluster growth left uncovered, without paying
  /// for -- or disturbing -- the blocks already assigned.  Must be a
  /// subset of `problem.innerSet()` over the same universe.
  std::optional<BitSet> restrictTo;
};

/// Runs PareDown.  Deterministic: ties beyond the paper's three criteria
/// resolve to the lowest block id.
PartitionRun pareDown(const PartitionProblem& problem,
                      const PareDownOptions& options = {});

}  // namespace eblocks::partition

#endif  // EBLOCKS_PARTITION_PAREDOWN_H_
