// The partition engine: one registration point for every partitioning
// strategy.
//
// The four partitioners grew up behind two incompatible call conventions
// (free functions over PartitionProblem for the plain problem, free
// functions over Network+ProgCostModel for the multi-type one), so adding
// an algorithm meant touching the synthesizer's enum, the shell's parser,
// and every bench by hand.  The engine replaces that with a name-keyed
// registry of strategy objects: `synthesize()` and the shell select by
// name, new algorithms register once and are immediately reachable
// everywhere, and engine-level options (time limit, threads, seeding)
// apply uniformly.
//
// Registered built-ins -- plain: paredown, aggregation, exhaustive,
// greedy, fm, lns, ladder; multi-type: paredown, exhaustive, fm.  The
// heuristic chain greedy -> fm -> lns is anytime (each stage refines the
// last, never worse); `initialIncumbent` feeds any of their solutions
// back into the exact searches as a warm start; `ladder` climbs the
// whole chain into the exact B&B under one deadline, tagging how far it
// got (ladder.h).
#ifndef EBLOCKS_PARTITION_ENGINE_H_
#define EBLOCKS_PARTITION_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "partition/multitype.h"
#include "partition/problem.h"
#include "partition/result.h"
#include "partition/scheduler.h"

namespace eblocks::partition {

/// Engine-level knobs forwarded to whichever strategy runs.  Strategies
/// ignore knobs that do not apply to them (the heuristics have no time
/// limit or thread pool, for example).
struct EngineOptions {
  /// Wall-clock budget for anytime strategies (exhaustive search).
  double timeLimitSeconds = 60.0;
  /// Worker threads for parallel strategies.  0 = one per hardware
  /// thread, 1 = serial.  Completed searches return identical results at
  /// every thread count; only timed-out runs are scheduling-dependent.
  int threads = 0;
  /// How parallel strategies distribute search subtrees over workers
  /// (work-stealing by default; fixed-split kept for comparison).  Does
  /// not affect results, only load balance -- see scheduler.h.
  SearchScheduler scheduler = SearchScheduler::kWorkStealing;
  /// Require convex partitions (classical DAG covering; see validity.h).
  bool requireConvex = false;
  /// Exhaustive strategies seed their branch-and-bound with the PareDown
  /// solution by default -- a pure accelerator that never changes the
  /// optimum.  Disable to measure the unseeded search.
  bool seedFromPareDown = true;
  /// Admissible lower-bound pruning for the exhaustive strategies
  /// (irreducible-I/O floors; see exhaustive.h).  Like the seed, a pure
  /// accelerator: results are bit-identical on or off.  Disable to
  /// measure the unpruned search (bench_exhaustive_blowup ablates it).
  bool pruningBound = true;
  /// Warm start for the exhaustive strategies: a known-valid solution
  /// (commonly `fm`'s) that seeds the shared atomic incumbent.  A pure
  /// pruning accelerator like seedFromPareDown -- the optimum returned
  /// is bit-identical -- but a tighter incumbent cuts more subtrees; the
  /// exhaustive strategies seed with whichever of PareDown's solution
  /// and this one is cheaper.  Heuristic strategies ignore it.
  std::optional<Partitioning> initialIncumbent;
  /// Multi-type counterpart of initialIncumbent.
  std::optional<TypedPartitioning> initialTypedIncumbent;
  /// `lns` strategy: blocks per destroyed pocket (0 = auto; see lns.h).
  int lnsPocket = 0;
  /// `lns` strategy: destroy/repair rounds (0 = until the time limit).
  int lnsRounds = 0;
  /// `lns` strategy: node budget per repair search.
  std::uint64_t lnsRepairNodes = 200000;
  /// Seed for randomized strategies (`lns`'s destroy step).
  std::uint32_t rngSeed = 1;
  /// Cooperative cancellation, riding the searches' timeout plumbing
  /// (ExhaustiveOptions::cancel / LnsOptions::cancel): when non-null and
  /// set, the anytime strategies (`exhaustive`, `lns`) stop at their next
  /// periodic check and return the best solution so far with
  /// run.timedOut = true.  The fast constructive strategies (paredown,
  /// aggregation, greedy, fm) finish in milliseconds and ignore it.  The
  /// synthesis daemon (src/server) flips this when a client cancels or
  /// disconnects.
  const std::atomic<bool>* cancel = nullptr;
  /// Live search-effort telemetry (ExhaustiveOptions::progressNodes):
  /// the anytime strategies add explored nodes in 4096-node granules;
  /// the daemon's progress ticks read it.
  std::atomic<std::uint64_t>* progressNodes = nullptr;
};

/// A partitioning strategy for the plain (single block type) problem.
class Partitioner {
 public:
  virtual ~Partitioner() = default;
  /// Registry key; lowercase, stable across releases.
  virtual std::string name() const = 0;
  /// One-line human description (the shell's `algorithms` listing).
  virtual std::string description() const = 0;
  virtual PartitionRun run(const PartitionProblem& problem,
                           const EngineOptions& options) const = 0;
};

/// A partitioning strategy for the multi-type, cost-aware problem.
class TypedPartitioner {
 public:
  virtual ~TypedPartitioner() = default;
  virtual std::string name() const = 0;
  virtual std::string description() const = 0;
  virtual TypedPartitionRun run(const Network& net,
                                const ProgCostModel& model,
                                const EngineOptions& options) const = 0;
};

/// Name-keyed registry of strategies.  The process-wide instance() comes
/// pre-loaded with the built-ins (paredown, exhaustive, aggregation, and
/// the multi-type pair); add() registers custom strategies at runtime.
/// Thread-safe.
class PartitionerRegistry {
 public:
  static PartitionerRegistry& instance();

  /// Registers a strategy; replaces any previous holder of the name.
  void add(std::unique_ptr<Partitioner> partitioner);
  void add(std::unique_ptr<TypedPartitioner> partitioner);

  /// Lookup by name; nullptr when unknown.
  const Partitioner* find(std::string_view name) const;
  const TypedPartitioner* findTyped(std::string_view name) const;

  /// Registered names, sorted.
  std::vector<std::string> names() const;
  std::vector<std::string> typedNames() const;

  /// Description of a registered strategy ("" when unknown).
  std::string describe(std::string_view name) const;

 private:
  PartitionerRegistry();

  struct Impl;
  std::shared_ptr<Impl> impl_;
};

/// Runs the named strategy from the process registry.  Throws
/// std::invalid_argument (listing the registered names) when unknown.
PartitionRun runPartitioner(std::string_view name,
                            const PartitionProblem& problem,
                            const EngineOptions& options = {});

/// Multi-type counterpart of runPartitioner().
TypedPartitionRun runTypedPartitioner(std::string_view name,
                                      const Network& net,
                                      const ProgCostModel& model,
                                      const EngineOptions& options = {});

}  // namespace eblocks::partition

#endif  // EBLOCKS_PARTITION_ENGINE_H_
