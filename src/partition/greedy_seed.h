// Constructive initial assignment for the heuristic partitioner family.
//
// The FM refiner and the LNS both want to *start* from a full feasible
// solution rather than construct one themselves.  greedySeed() builds one
// in near-linear time: BFS cluster growth under the bin I/O caps (grow a
// cluster from each unassigned seed by probing frontier neighbors with an
// incremental PortCounter, keeping every neighbor that still fits),
// followed by a PareDown fallback restricted to whatever the growth phase
// left uncovered -- PareDown's border-paring ordering is much better than
// BFS at carving valid partitions out of awkward leftovers, and running
// it on the residual only keeps the fallback cheap.
//
// The result is always a valid partitioning (verifyPartitioning-clean) in
// both counting modes; quality is deliberately traded for speed -- the FM
// pass refines it, and `greedy` is registered mostly as the family's
// seed stage and as a baseline for the scaling-curve bench.
#ifndef EBLOCKS_PARTITION_GREEDY_SEED_H_
#define EBLOCKS_PARTITION_GREEDY_SEED_H_

#include "partition/problem.h"
#include "partition/result.h"

namespace eblocks::partition {

/// Runs the constructive seed heuristic.  Deterministic: seeds are taken
/// in (level, id) order and frontiers expand in CSR arc order.
/// `run.explored` counts fit probes (PortCounter add/remove pairs).
PartitionRun greedySeed(const PartitionProblem& problem);

}  // namespace eblocks::partition

#endif  // EBLOCKS_PARTITION_GREEDY_SEED_H_
