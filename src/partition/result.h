// Partitioning results and the paper's reported metrics.
#ifndef EBLOCKS_PARTITION_RESULT_H_
#define EBLOCKS_PARTITION_RESULT_H_

#include <string>
#include <vector>

#include "core/bitset.h"
#include "partition/problem.h"

namespace eblocks::partition {

/// The outcome of a partitioning run: disjoint member sets, each destined
/// for one programmable block.
struct Partitioning {
  std::vector<BitSet> partitions;

  /// Number of inner blocks covered by some partition.
  int coveredBlocks() const;

  /// Blocks replaced: covered inner blocks that disappear from the network.
  /// Table 1/2's "Inner Blocks (Prog.)" is partitions.size() and
  /// "Inner Blocks (Total)" is totalAfter().
  int programmableBlocks() const {
    return static_cast<int>(partitions.size());
  }

  /// Inner blocks remaining after replacement:
  ///   (#inner - covered) + #partitions.
  int totalAfter(int originalInnerCount) const {
    return originalInnerCount - coveredBlocks() + programmableBlocks();
  }
};

/// A run record: result plus measured wall-clock time, as reported in the
/// paper's tables.
struct PartitionRun {
  std::string algorithm;
  Partitioning result;
  double seconds = 0.0;
  /// True when the algorithm proves its result optimal (exhaustive search
  /// that ran to completion).
  bool optimal = false;
  /// True when the algorithm gave up (e.g. exhaustive hit its time limit);
  /// `result` then holds the best solution found so far.
  bool timedOut = false;
  /// Degradation tier, set only by the `ladder` strategy (ladder.h):
  /// "" when the deadline let the exact search prove optimality,
  /// otherwise the deepest rung that produced `result` ("exact-anytime",
  /// "lns", "fm", or "greedy").  A service-level annotation: it rides
  /// the server's SynthResponse on the wire but is *not* part of the
  /// io/binary PartitionRun frame (ladder runs are never cached, so no
  /// record persists it).
  std::string degradedTier;
  /// Nodes explored (search-effort metric; 0 when not applicable).
  std::uint64_t explored = 0;
  /// Subtrees cut by the admissible lower-bound layer
  /// (ExhaustiveOptions::pruningBound): nodes where the irreducible-I/O
  /// bound pruned and the baseline cost bound alone would not have.
  /// Always 0 with the layer disabled.
  std::uint64_t pruned = 0;
  /// Nodes explored per worker thread (parallel searches only; empty
  /// otherwise).  The spread is the hardware-independent witness of load
  /// balance: max/mean near 1 means every worker carried equal search
  /// effort, regardless of how the OS scheduled the threads.
  std::vector<std::uint64_t> workerExplored;
  /// Per-worker counterpart of `pruned` (parallel searches only;
  /// parallel to workerExplored).
  std::vector<std::uint64_t> workerPruned;
};

}  // namespace eblocks::partition

#endif  // EBLOCKS_PARTITION_RESULT_H_
