// The eblocksd wire protocol: synthesis-as-a-service messages framed by
// the io/binary discipline (magic, version window, section tag, payload
// length, FNV-1a-64 checksum -- see io/binary.h and docs/server.md).
//
// A connection is a byte stream of frames in either direction.  The
// client sends kServerRequest and kServerCancel frames; the server
// answers with exactly one kServerResponse *or* kServerError per
// request, plus any number of kServerProgress ticks in between.
// Request ids are chosen by the client and scoped to its connection, so
// concurrent requests over one connection multiplex cleanly.
//
// Stream reassembly is the 16-byte header's job: peekFrameHeader()
// validates the magic/version/reserved byte and the payload-length cap
// as soon as the header bytes arrive -- before the payload is buffered,
// so a frame claiming an absurd length is rejected without allocating
// -- and frameSize() says how many bytes the complete frame occupies.
// Full validation (checksum, tag, payload decode) happens once the
// whole frame is in hand, through the same BinaryReader every disk
// format uses: a damaged or truncated frame is always a clean
// ProtocolError, never UB (tests/server/protocol_test.cpp flips bits
// and truncates at every boundary to prove it).
#ifndef EBLOCKS_SERVER_PROTOCOL_H_
#define EBLOCKS_SERVER_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "io/binary.h"

namespace eblocks::server {

/// Protocol-level failure: a frame or payload that cannot be decoded.
/// Derives from BinaryError so callers catching the io layer's error
/// catch this too.
class ProtocolError : public io::BinaryError {
 public:
  using io::BinaryError::BinaryError;
};

/// Hard cap on a wire frame's payload (16 MiB).  Far above any real
/// design (the largest bench networks serialize to a few hundred KiB)
/// and small enough that a hostile length field cannot balloon a
/// connection's read buffer.
inline constexpr std::uint64_t kMaxWirePayload = 16ull << 20;

/// Error codes carried by kServerError frames (docs/server.md has the
/// table).  Stable on the wire: new codes append, old codes never
/// renumber.
enum class ErrorCode : std::uint16_t {
  kBadFrame = 1,      ///< unparseable frame; the server closes after sending
  kBadRequest = 2,    ///< well-formed frame, invalid content (unknown
                      ///< algorithm, bad network payload, bad option value)
  kOverloaded = 3,    ///< job queue full; retry after `retryAfterMs`
  kCancelled = 4,     ///< request cancelled (kServerCancel or disconnect)
  kSynthFailed = 5,   ///< synthesize() threw (e.g. network fails validation)
  kShuttingDown = 6,  ///< server is draining; no new work accepted
  kUnknownRequest = 7,  ///< cancel for an id this connection never sent
  kDuplicateRequest = 8,  ///< request id already in flight on the connection
};

const char* toString(ErrorCode code);

/// A synthesis request.  Options mirror synth::SynthOptions /
/// partition::EngineOptions; knobs not on the wire (scheduler,
/// convexity, LNS tuning) take their defaults, so a served result is
/// bit-identical to a one-shot synthesize() with these options.
struct SynthRequest {
  std::uint64_t id = 0;  ///< client-chosen, unique per connection
  std::string algorithm = "paredown";  ///< partitioner registry name
  int inputs = 2;      ///< programmable-block port budget
  int outputs = 2;
  int threads = 1;     ///< search workers (0 = hardware concurrency)
  double timeLimitSeconds = 60.0;  ///< anytime budget (0 = no limit)
  bool prune = true;   ///< admissible lower-bound pruning
  bool useCache = true;  ///< consult the server's solution store
  std::string networkFrame;  ///< the design, as a kNetwork binary frame
};

/// What the server did with a request, mirroring synth::SynthResult:
/// the synthesized network and the partition run ride along as nested
/// binary frames, so clients decode them with the standard readers and
/// bit-identity against a local run is a byte comparison.
struct SynthResponse {
  std::uint64_t id = 0;
  std::uint8_t cacheOutcome = 0;  ///< synth::CacheOutcome
  int originalInner = 0;
  int innerAfter = 0;
  int programmableBlocks = 0;
  double seconds = 0.0;  ///< partitioning wall time (informational)
  /// Degradation tier of the result ("" = exact/undegraded).  Set only
  /// by the `ladder` strategy when the deadline stopped it short of a
  /// proven optimum: "exact-anytime", "lns", "fm", or "greedy" -- the
  /// deepest rung the deadline allowed (see docs/robustness.md).
  std::string degradedTier;
  std::string networkFrame;  ///< synthesized network (kNetwork frame)
  std::string runFrame;      ///< partition::PartitionRun (kPartitionRun)
};

/// A streamed progress tick for one in-flight request.
struct Progress {
  std::uint64_t id = 0;
  enum class State : std::uint8_t { kQueued = 0, kRunning = 1 };
  State state = State::kQueued;
  std::uint64_t queuePosition = 0;  ///< jobs ahead (kQueued only)
  std::uint64_t exploredNodes = 0;  ///< search effort so far (4096 granules)
  double elapsedSeconds = 0.0;      ///< since the request was accepted
};

/// An error reply.  `id` 0 means the error is not attributable to a
/// request (an unparseable frame).  `retryAfterMs` is non-zero only for
/// kOverloaded: the backpressure contract's "come back later" hint.
struct ErrorReply {
  std::uint64_t id = 0;
  ErrorCode code = ErrorCode::kBadFrame;
  std::uint64_t retryAfterMs = 0;
  std::string message;
};

/// Client-initiated cancellation of a pending or running request.
struct CancelRequest {
  std::uint64_t id = 0;
};

// --- framing ------------------------------------------------------------

/// The frame header, as peeked from the first 16 bytes of a stream.
struct FrameHeader {
  std::uint16_t version = 0;
  io::SectionTag tag{};
  std::uint64_t payloadLength = 0;
};

/// Validates the fixed 16-byte header prefix of `buffer` (magic,
/// version window, reserved byte, payload cap) and returns it; nullopt
/// when fewer than 16 bytes are available yet.  Throws ProtocolError on
/// a header that can never become a valid frame -- the caller must drop
/// the connection, since stream sync is lost.
std::optional<FrameHeader> peekFrameHeader(std::string_view buffer);

/// Total frame size (header + payload + checksum) for a peeked header.
std::size_t frameSize(const FrameHeader& header);

// --- message encode / decode --------------------------------------------

std::string encodeRequest(const SynthRequest& request);
SynthRequest decodeRequest(std::string_view frame);

std::string encodeResponse(const SynthResponse& response);
SynthResponse decodeResponse(std::string_view frame);

std::string encodeProgress(const Progress& progress);
Progress decodeProgress(std::string_view frame);

std::string encodeError(const ErrorReply& error);
ErrorReply decodeError(std::string_view frame);

std::string encodeCancel(const CancelRequest& cancel);
CancelRequest decodeCancel(std::string_view frame);

}  // namespace eblocks::server

#endif  // EBLOCKS_SERVER_PROTOCOL_H_
