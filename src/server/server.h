// eblocksd's core: synthesis as a service over the wire protocol of
// protocol.h, built from three kinds of long-lived processes
// communicating through explicit queues:
//
//   - ONE event-loop thread (event_loop.h) owns every socket and all
//     request-lifecycle state: admission, validation, duplicate and
//     cancel bookkeeping, progress streaming, and replies.
//   - N executor threads pop accepted jobs from the bounded JobQueue
//     and run the existing synthesize() pipeline -- including its
//     work-stealing parallel search -- then post the completion closure
//     back into the loop.  Executors never touch a socket.
//   - The bounded queue between them is the backpressure point: a full
//     queue rejects at admission with kOverloaded + retryAfterMs; an
//     accepted job is never dropped.
//
// Served results are bit-identical to one-shot synth::synthesize() with
// the same options: the request carries exactly the knobs it forwards,
// everything else defaults, and the response returns the synthesized
// network and PartitionRun as the standard binary frames
// (tests/server/server_test.cpp byte-compares them against local runs).
//
// Cancellation rides the search's timeout plumbing: a kServerCancel
// frame (or the owning connection disconnecting) flips the job's atomic
// cancel flag, which EngineOptions::cancel delivers to the 4096-node
// periodic check inside the branch-and-bound workers and to LNS round
// boundaries.  No thread is ever killed; the search unwinds cleanly.
//
// Shutdown is a graceful drain: stop() closes the listener, makes new
// requests fail with kShuttingDown, waits for every in-flight job
// (optionally cancelling them), flushes replies, then joins all
// threads.  docs/server.md is the operator-facing contract.
#ifndef EBLOCKS_SERVER_SERVER_H_
#define EBLOCKS_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cache/solution_store.h"
#include "server/event_loop.h"
#include "server/job_queue.h"
#include "server/protocol.h"

namespace eblocks::server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 = pick a free port (see Server::port())
  /// Synthesis executor threads.  Each runs one job at a time; a job's
  /// own search may fan out further (SynthRequest::threads).
  int executors = 2;
  /// Bounded queue capacity -- the backpressure knob.  Admissions
  /// beyond it are rejected with kOverloaded.
  std::size_t queueCapacity = 16;
  /// Cadence of streamed kServerProgress ticks.
  double progressIntervalSeconds = 0.25;
  /// The retryAfterMs hint carried by kOverloaded rejections.
  double retryAfterSeconds = 0.25;
  /// Attach a solution store shared by all requests (per-request
  /// useCache=false opts out).  Empty directory = in-memory store;
  /// cacheEnabled=false = no store at all.
  bool cacheEnabled = false;
  std::string cacheDir;
  /// A pre-built store to share instead -- the shell's `serve` command
  /// hands in its own store so interactive `synth` runs and served
  /// requests hit one cache.  Overrides cacheEnabled/cacheDir.
  std::shared_ptr<cache::SolutionStore> store;
  /// Byte budget of the idempotent-replay table (0 disables it): an LRU
  /// of completed responses keyed on the request's exact *content* --
  /// the network frame bytes verbatim plus every option knob, which is
  /// everything except the client-chosen id -- so a client retrying a
  /// request whose first reply was lost in transit gets the completed
  /// answer replayed byte-identically instead of recomputed.  Distinct
  /// from the solution cache: it keys on exact request bytes (never the
  /// rename-invariant structure hash -- isomorphic designs synthesize
  /// to differently-named networks and must not replay each other),
  /// works for every algorithm including `ladder`, and never persists.
  std::uint64_t idempotencyBytes = 32ull << 20;
};

/// Monotonic counters plus live gauges; stats() returns a snapshot.
struct ServerStats {
  std::uint64_t accepted = 0;    ///< requests admitted to the queue
  std::uint64_t completed = 0;   ///< responses sent
  std::uint64_t rejectedOverload = 0;
  std::uint64_t rejectedShutdown = 0;
  std::uint64_t badRequests = 0;    ///< kBadRequest / kDuplicateRequest /
                                    ///< kUnknownRequest replies
  std::uint64_t protocolErrors = 0; ///< kBadFrame closes
  std::uint64_t cancelled = 0;      ///< kCancelled replies + orphaned jobs
  std::uint64_t synthFailed = 0;
  /// Requests answered from the idempotent-replay table (these also
  /// count as completed; they never touch the queue or an executor).
  std::uint64_t idempotentReplays = 0;
  std::uint64_t connectionsNow = 0;
  std::uint64_t queuedNow = 0;
  std::uint64_t runningNow = 0;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();  ///< force-stops (cancelling in-flight work) if still running
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spins up the loop + executor threads.
  /// Returns false with a message when the address cannot be bound.
  bool start(std::string* error = nullptr);

  /// Graceful drain: no new connections or requests, every in-flight
  /// job completes (immediately when `cancelInFlight`, via the search's
  /// cancellation cadence), replies flush, threads join.  Idempotent.
  void stop(bool cancelInFlight = false);

  /// Flips the cancel flag on every in-flight job (they finish with
  /// kCancelled at the search's next periodic check).  Safe during a
  /// drain -- eblocksd's second-signal escalation.
  void cancelAll();

  bool running() const { return running_.load(); }
  int port() const { return loop_.port(); }
  ServerStats stats() const;

  /// The shared solution store (null unless cacheEnabled).  Exposed so
  /// the shell's `serve` command and tests can inspect or pre-warm it.
  std::shared_ptr<cache::SolutionStore> cache() const { return store_; }

 private:
  void onFrame(std::uint64_t conn, std::string frame);
  void onProtocolError(std::uint64_t conn, const std::string& reason);
  void onClosed(std::uint64_t conn);
  void onTick();
  void handleRequest(std::uint64_t conn, std::string_view frame);
  void handleCancel(std::uint64_t conn, std::string_view frame);
  void sendError(std::uint64_t conn, std::uint64_t id, ErrorCode code,
                 std::string message, std::uint64_t retryAfterMs = 0);
  void finishJob(const std::shared_ptr<Job>& job, std::string reply,
                 bool asCancelled, bool asFailure,
                 std::shared_ptr<SynthResponse> response);
  void maybeFinishDrain();
  void executorMain();
  /// Loop-thread only: completed-response table bookkeeping.
  void rememberResponse(const std::string& key,
                        const SynthResponse& response);
  const SynthResponse* findRemembered(const std::string& key);

  ServerOptions options_;
  EventLoop loop_;
  std::unique_ptr<JobQueue> queue_;
  std::shared_ptr<cache::SolutionStore> store_;
  std::thread loopThread_;
  std::vector<std::thread> executors_;
  std::atomic<bool> running_{false};

  // --- event-loop-thread state ------------------------------------------
  bool draining_ = false;
  std::uint64_t nextJobKey_ = 1;
  std::map<std::uint64_t, std::shared_ptr<Job>> jobs_;  ///< by job key
  /// (connection, request id) -> job key, for cancel + duplicate checks.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> byConnReq_;
  /// Idempotent-replay table (loop-thread only): content key -> the
  /// completed response, LRU-bounded by options_.idempotencyBytes.
  struct RememberedResponse {
    SynthResponse response;
    std::uint64_t bytes = 0;
    std::uint64_t lastUse = 0;
  };
  std::map<std::string, RememberedResponse> remembered_;
  std::uint64_t rememberedBytes_ = 0;
  std::uint64_t rememberedClock_ = 0;

  mutable std::mutex statsMu_;
  ServerStats stats_;
};

}  // namespace eblocks::server

#endif  // EBLOCKS_SERVER_SERVER_H_
