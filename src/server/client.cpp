#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace eblocks::server {

namespace {

using Clock = std::chrono::steady_clock;

void setError(std::string* error, const std::string& what) {
  if (error) *error = what;
}

}  // namespace

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  inbox_.clear();
}

bool Client::connectTo(const std::string& host, int port, std::string* error) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    setError(error, std::string("socket: ") + std::strerror(errno));
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    setError(error, "invalid address '" + host + "'");
    close();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    setError(error, "connect " + host + ":" + std::to_string(port) + ": " +
                        std::strerror(errno));
    close();
    return false;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return true;
}

bool Client::sendFrame(std::string_view frame, std::string* error) {
  if (fd_ < 0) {
    setError(error, "not connected");
    return false;
  }
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      setError(error, std::string("send: ") + std::strerror(errno));
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<std::string> Client::nextFrame(int timeoutMs,
                                             std::string* error) {
  if (fd_ < 0) {
    setError(error, "not connected");
    return std::nullopt;
  }
  const auto deadline =
      timeoutMs > 0 ? std::optional<Clock::time_point>(
                          Clock::now() + std::chrono::milliseconds(timeoutMs))
                    : std::nullopt;
  for (;;) {
    // A complete frame already buffered?
    const std::optional<FrameHeader> header = peekFrameHeader(inbox_);
    if (header) {
      const std::size_t total = frameSize(*header);
      if (inbox_.size() >= total) {
        std::string frame = inbox_.substr(0, total);
        inbox_.erase(0, total);
        return frame;
      }
    }
    int waitMs = -1;
    if (deadline) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            *deadline - Clock::now())
                            .count();
      if (left <= 0) {
        setError(error, "timeout");
        return std::nullopt;
      }
      waitMs = static_cast<int>(left);
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, waitMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      setError(error, std::string("poll: ") + std::strerror(errno));
      return std::nullopt;
    }
    if (ready == 0) {
      setError(error, "timeout");
      return std::nullopt;
    }
    char buf[65536];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      setError(error, "connection closed by server");
      close();
      return std::nullopt;
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      setError(error, std::string("recv: ") + std::strerror(errno));
      close();
      return std::nullopt;
    }
    inbox_.append(buf, static_cast<std::size_t>(n));
  }
}

std::optional<ServerMessage> Client::nextMessage(int timeoutMs,
                                                 std::string* error) {
  const std::optional<std::string> frame = nextFrame(timeoutMs, error);
  if (!frame) return std::nullopt;
  const FrameHeader header = *peekFrameHeader(*frame);
  ServerMessage msg;
  switch (header.tag) {
    case io::SectionTag::kServerResponse:
      msg.kind = ServerMessage::Kind::kResponse;
      msg.response = decodeResponse(*frame);
      return msg;
    case io::SectionTag::kServerProgress:
      msg.kind = ServerMessage::Kind::kProgress;
      msg.progress = decodeProgress(*frame);
      return msg;
    case io::SectionTag::kServerError:
      msg.kind = ServerMessage::Kind::kError;
      msg.error = decodeError(*frame);
      return msg;
    default:
      throw ProtocolError("protocol: unexpected frame tag " +
                          std::to_string(static_cast<int>(header.tag)) +
                          " from server");
  }
}

CallResult Client::call(const SynthRequest& request, int timeoutMs) {
  CallResult result;
  if (!sendFrame(encodeRequest(request))) return result;
  const auto deadline =
      timeoutMs > 0 ? std::optional<Clock::time_point>(
                          Clock::now() + std::chrono::milliseconds(timeoutMs))
                    : std::nullopt;
  for (;;) {
    int waitMs = 0;
    if (deadline) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            *deadline - Clock::now())
                            .count();
      if (left <= 0) return result;
      waitMs = static_cast<int>(left);
    }
    const std::optional<ServerMessage> msg = nextMessage(waitMs);
    if (!msg) return result;  // timeout or connection loss
    switch (msg->kind) {
      case ServerMessage::Kind::kResponse:
        if (msg->response.id != request.id) continue;
        result.response = msg->response;
        return result;
      case ServerMessage::Kind::kProgress:
        if (msg->progress.id == request.id)
          result.progress.push_back(msg->progress);
        continue;
      case ServerMessage::Kind::kError:
        // id 0 errors (unattributable, e.g. bad frame) end the call too:
        // the server is about to close the connection.
        if (msg->error.id != request.id && msg->error.id != 0) continue;
        result.error = msg->error;
        return result;
    }
  }
}

bool Client::cancelRequest(std::uint64_t id) {
  CancelRequest cancel;
  cancel.id = id;
  return sendFrame(encodeCancel(cancel));
}

}  // namespace eblocks::server
