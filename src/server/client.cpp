#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "core/failpoint.h"

namespace eblocks::server {

namespace {

namespace fp = core::failpoint;

using Clock = std::chrono::steady_clock;

void setError(std::string* error, const std::string& what) {
  if (error) *error = what;
}

}  // namespace

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  inbox_.clear();
}

bool Client::connectTo(const std::string& host, int port, std::string* error) {
  close();
  host_ = host;
  port_ = port;
  if (const fp::Hit hit = fp::check(fp::name::kClientConnect)) {
    fp::sleepFor(hit);
    if (hit.mode == fp::Mode::kError) {
      errno = hit.arg != 0 ? static_cast<int>(hit.arg) : ECONNREFUSED;
      setError(error, "connect " + host + ":" + std::to_string(port) + ": " +
                          std::strerror(errno));
      return false;
    }
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    setError(error, std::string("socket: ") + std::strerror(errno));
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    setError(error, "invalid address '" + host + "'");
    close();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    // A signal can interrupt connect() after the handshake has started;
    // the connection then completes asynchronously.  Poll for
    // writability and read the final verdict from SO_ERROR instead of
    // treating the interruption as failure.
    bool recovered = false;
    if (errno == EINTR) {
      pollfd pfd{fd_, POLLOUT, 0};
      int ready;
      do {
        ready = ::poll(&pfd, 1, -1);
      } while (ready < 0 && errno == EINTR);
      int soerr = 0;
      socklen_t len = sizeof(soerr);
      if (ready > 0 &&
          ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &soerr, &len) == 0 &&
          soerr == 0)
        recovered = true;
      else if (soerr != 0)
        errno = soerr;
    }
    if (!recovered) {
      setError(error, "connect " + host + ":" + std::to_string(port) + ": " +
                          std::strerror(errno));
      close();
      return false;
    }
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return true;
}

bool Client::sendFrame(std::string_view frame, std::string* error) {
  if (fd_ < 0) {
    setError(error, "not connected");
    return false;
  }
  std::size_t sent = 0;
  bool injected = false;
  while (sent < frame.size()) {
    // One injected fault per frame; a partial clamp exercises the
    // short-send continuation below.
    std::size_t len = frame.size() - sent;
    bool simulatedError = false;
    if (!injected) {
      if (const fp::Hit hit = fp::check(fp::name::kClientSend)) {
        injected = true;
        fp::sleepFor(hit);
        if (hit.mode == fp::Mode::kError) {
          errno = hit.arg != 0 ? static_cast<int>(hit.arg) : EINTR;
          simulatedError = true;
        } else if (hit.mode == fp::Mode::kPartial && hit.arg < len) {
          len = static_cast<std::size_t>(hit.arg);
        }
      }
    }
    const ssize_t n =
        simulatedError ? -1
                       : ::send(fd_, frame.data() + sent, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // The socket buffer is full (possible under SO_SNDTIMEO or a
        // nonblocking fd); wait for writability instead of failing.
        pollfd pfd{fd_, POLLOUT, 0};
        int ready;
        do {
          ready = ::poll(&pfd, 1, -1);
        } while (ready < 0 && errno == EINTR);
        if (ready > 0) continue;
        setError(error, std::string("poll: ") + std::strerror(errno));
        return false;
      }
      setError(error, std::string("send: ") + std::strerror(errno));
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<std::string> Client::nextFrame(int timeoutMs,
                                             std::string* error) {
  if (fd_ < 0) {
    setError(error, "not connected");
    return std::nullopt;
  }
  const auto deadline =
      timeoutMs > 0 ? std::optional<Clock::time_point>(
                          Clock::now() + std::chrono::milliseconds(timeoutMs))
                    : std::nullopt;
  bool injected = false;  // at most one injected fault per nextFrame call
  for (;;) {
    // A complete frame already buffered?
    const std::optional<FrameHeader> header = peekFrameHeader(inbox_);
    if (header) {
      const std::size_t total = frameSize(*header);
      if (inbox_.size() >= total) {
        std::string frame = inbox_.substr(0, total);
        inbox_.erase(0, total);
        return frame;
      }
    }
    int waitMs = -1;
    if (deadline) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            *deadline - Clock::now())
                            .count();
      if (left <= 0) {
        setError(error, "timeout");
        return std::nullopt;
      }
      waitMs = static_cast<int>(left);
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, waitMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      setError(error, std::string("poll: ") + std::strerror(errno));
      return std::nullopt;
    }
    if (ready == 0) {
      setError(error, "timeout");
      return std::nullopt;
    }
    char buf[65536];
    std::size_t want = sizeof(buf);
    bool simulatedError = false;
    if (!injected) {
      if (const fp::Hit hit = fp::check(fp::name::kClientRecv)) {
        injected = true;
        // delay = a stalled peer (data arrives, late); partial = a
        // dribbling peer; error = a signal or reset mid-read.
        fp::sleepFor(hit);
        if (hit.mode == fp::Mode::kError) {
          errno = hit.arg != 0 ? static_cast<int>(hit.arg) : EINTR;
          simulatedError = true;
        } else if (hit.mode == fp::Mode::kPartial && hit.arg < want) {
          want = static_cast<std::size_t>(hit.arg);
        }
      }
    }
    const ssize_t n = simulatedError ? -1 : ::recv(fd_, buf, want, 0);
    if (n == 0) {
      setError(error, "connection closed by server");
      close();
      return std::nullopt;
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      setError(error, std::string("recv: ") + std::strerror(errno));
      close();
      return std::nullopt;
    }
    inbox_.append(buf, static_cast<std::size_t>(n));
  }
}

std::optional<ServerMessage> Client::nextMessage(int timeoutMs,
                                                 std::string* error) {
  const std::optional<std::string> frame = nextFrame(timeoutMs, error);
  if (!frame) return std::nullopt;
  const FrameHeader header = *peekFrameHeader(*frame);
  ServerMessage msg;
  switch (header.tag) {
    case io::SectionTag::kServerResponse:
      msg.kind = ServerMessage::Kind::kResponse;
      msg.response = decodeResponse(*frame);
      return msg;
    case io::SectionTag::kServerProgress:
      msg.kind = ServerMessage::Kind::kProgress;
      msg.progress = decodeProgress(*frame);
      return msg;
    case io::SectionTag::kServerError:
      msg.kind = ServerMessage::Kind::kError;
      msg.error = decodeError(*frame);
      return msg;
    default:
      throw ProtocolError("protocol: unexpected frame tag " +
                          std::to_string(static_cast<int>(header.tag)) +
                          " from server");
  }
}

CallResult Client::call(const SynthRequest& request, int timeoutMs) {
  CallResult result;
  if (!sendFrame(encodeRequest(request))) return result;
  const auto deadline =
      timeoutMs > 0 ? std::optional<Clock::time_point>(
                          Clock::now() + std::chrono::milliseconds(timeoutMs))
                    : std::nullopt;
  for (;;) {
    int waitMs = 0;
    if (deadline) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            *deadline - Clock::now())
                            .count();
      if (left <= 0) return result;
      waitMs = static_cast<int>(left);
    }
    const std::optional<ServerMessage> msg = nextMessage(waitMs);
    if (!msg) return result;  // timeout or connection loss
    switch (msg->kind) {
      case ServerMessage::Kind::kResponse:
        if (msg->response.id != request.id) continue;
        result.response = msg->response;
        return result;
      case ServerMessage::Kind::kProgress:
        if (msg->progress.id == request.id)
          result.progress.push_back(msg->progress);
        continue;
      case ServerMessage::Kind::kError:
        // id 0 errors (unattributable, e.g. bad frame) end the call too:
        // the server is about to close the connection.
        if (msg->error.id != request.id && msg->error.id != 0) continue;
        result.error = msg->error;
        return result;
    }
  }
}

bool retryable(const CallResult& result) {
  if (result.response) return false;
  if (!result.error) return true;  // timeout / connection loss / no reply
  switch (result.error->code) {
    case ErrorCode::kOverloaded:
    case ErrorCode::kShuttingDown:
      return true;
    default:
      return false;  // deterministic rejections would only repeat
  }
}

CallResult Client::callWithRetry(const SynthRequest& request,
                                 const RetryPolicy& policy) {
  // Deterministic jitter: xorshift32 seeded from the policy, so a test
  // (or a chaos schedule) replays the exact sleep sequence.
  std::uint32_t rng = policy.rngSeed == 0 ? 1u : policy.rngSeed;
  const auto nextJitter = [&rng, &policy]() {
    rng ^= rng << 13;
    rng ^= rng >> 17;
    rng ^= rng << 5;
    const double unit = static_cast<double>(rng % 10000) / 10000.0;  // [0,1)
    return 1.0 + policy.jitterFraction * (2.0 * unit - 1.0);
  };

  CallResult result;
  double backoffMs = policy.initialBackoffMs;
  const int attempts = std::max(policy.maxAttempts, 1);
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (!connected() && port_ >= 0) {
      std::string connectError;
      if (!connectTo(host_, port_, &connectError)) {
        result = CallResult{};  // connection-level failure: no reply at all
        if (attempt == attempts) return result;
        const double sleepMs = std::max(backoffMs, 0.0) * nextJitter();
        if (policy.onRetry)
          policy.onRetry(attempt, sleepMs, "connect: " + connectError);
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            std::max(sleepMs, 0.0)));
        backoffMs = std::min(backoffMs * policy.multiplier,
                             policy.maxBackoffMs);
        continue;
      }
    }
    result = call(request, policy.attemptTimeoutMs);
    if (!retryable(result) || attempt == attempts) return result;

    std::string reason;
    if (result.error) {
      reason = toString(result.error->code);
    } else {
      reason = connected() ? "timeout" : "connection lost";
      // The request may still be in flight server-side; resubmitting it
      // on this connection would collide with its id (kDuplicateRequest)
      // and a stale late reply could be mistaken for the fresh one.
      // Drop the connection -- the server orphans the old attempt and
      // the idempotency table keeps a completed one from recomputing.
      close();
    }
    // Back off: exponential base, floored by the server's explicit
    // retry-after hint, then jittered so a fleet of retrying clients
    // does not stampede in lockstep.
    double sleepMs = backoffMs;
    if (result.error && result.error->retryAfterMs > 0)
      sleepMs = std::max(
          sleepMs, static_cast<double>(result.error->retryAfterMs));
    sleepMs *= nextJitter();
    if (policy.onRetry) policy.onRetry(attempt, sleepMs, reason);
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(std::max(sleepMs, 0.0)));
    backoffMs = std::min(backoffMs * policy.multiplier, policy.maxBackoffMs);
  }
  return result;
}

bool Client::cancelRequest(std::uint64_t id) {
  CancelRequest cancel;
  cancel.id = id;
  return sendFrame(encodeCancel(cancel));
}

}  // namespace eblocks::server
